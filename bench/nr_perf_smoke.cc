// NR perf smoke (tier-1): proves the flat combiner actually combines.
//
// The failure mode this guards against is silent: a regression in the wait
// window, the exit re-scan, or the parked-slot handoff degenerates every
// combining session back to batch size 1 — NR still passes every functional
// test (it is just a slow ticket lock at that point), so only a batching
// *distribution* check catches it. This binary drives 16 writer threads
// that yield between ops (the same emulated-concurrency idiom as the
// nr/flat_combining_batches VC: on hosts with fewer cores than threads,
// yielding is what lets announcers genuinely overlap) and then asserts on
// the combiner's own instruments:
//
//   - batch_ops p99 >= 8  (most sessions drain half the announcers or more)
//   - combines <= combined_ops  (a session is only counted when it applies
//     at least one op; empty sessions have their own counter)
//   - handoff_ops > 0  (parked losers got their ops applied by a combiner)
//
// Exit code 1 on violation — scripts/tier1.sh runs this as the perf-smoke
// stage. Under VNROS_METRICS=OFF the instruments are compiled out and the
// check degrades to a plain run (still exercises the paths under load).
//
//   ./build/bench/nr_perf_smoke
#include <cstdio>
#include <thread>
#include <vector>

#include "src/hw/topology.h"
#include "src/nr/node_replicated.h"
#include "src/obs/counter.h"

namespace vnros {
namespace {

struct CounterDs {
  struct WriteOp {
    u64 delta = 0;
  };
  struct ReadOp {};
  using Response = u64;
  u64 value = 0;
  Response dispatch(ReadOp) const { return value; }
  Response dispatch_mut(const WriteOp& op) { return value += op.delta; }
};

constexpr u32 kThreads = 16;
constexpr u64 kOpsPerThread = 2000;

int run() {
  Topology topo(kThreads, kThreads);  // one replica: pure write contention
  NrConfig config;
  // Announce patience is what makes combining observable regardless of how
  // many hardware threads the host has: an announcer waits (yielding) for a
  // combiner to drain it before self-combining, so concurrent writers pile
  // into one session instead of each running a private size-1 session.
  config.announce_patience = 2;
  NodeReplicated<CounterDs> nr(topo, CounterDs{}, config);

  std::vector<std::thread> workers;
  for (u32 t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      auto token = nr.register_thread(t);
      for (u64 i = 0; i < kOpsPerThread; ++i) {
        nr.execute_mut(token, CounterDs::WriteOp{1});
      }
    });
  }
  for (auto& w : workers) {
    w.join();
  }

  auto tok = nr.register_thread(0);
  u64 total = nr.execute(tok, CounterDs::ReadOp{});
  if (total != u64{kThreads} * kOpsPerThread) {
    std::fprintf(stderr, "FAIL: lost ops: counter=%lu expected=%lu\n", total,
                 u64{kThreads} * kOpsPerThread);
    return 1;
  }

  auto stats = nr.stats_snapshot();
  std::printf("nr_perf_smoke: combined_ops=%lu combines=%lu empty=%lu handoffs=%lu batch_p99=%lu\n",
              stats.combined_ops, stats.combines, stats.empty_combines, stats.handoff_ops,
              stats.batch_p99);
  if (!kMetricsEnabled) {
    std::printf("nr_perf_smoke: metrics disabled; distribution checks skipped\n");
    return 0;
  }
  int rc = 0;
  if (stats.combines > stats.combined_ops) {
    std::fprintf(stderr, "FAIL: combines (%lu) > combined_ops (%lu) — empty sessions are being "
                         "counted as combines\n",
                 stats.combines, stats.combined_ops);
    rc = 1;
  }
  if (stats.batch_p99 < 8) {
    std::fprintf(stderr, "FAIL: batch_ops p99 = %lu < 8 — flat combining has degenerated to "
                         "size-1 sessions\n",
                 stats.batch_p99);
    rc = 1;
  }
  if (stats.handoff_ops == 0) {
    std::fprintf(stderr, "FAIL: handoff_ops = 0 — parked announcers are never being drained by "
                         "a combiner\n");
    rc = 1;
  }
  if (rc == 0) {
    std::printf("nr_perf_smoke: PASS\n");
  }
  return rc;
}

}  // namespace
}  // namespace vnros

int main() { return vnros::run(); }
