// Timed measurement harness for the bench binaries.
//
// The first generation of these benches ran a fixed (small) op count per
// thread and divided by wall time — at 300 ops/thread the measured interval
// was dominated by thread creation and first-touch table population, which
// is how a bench can "show" a mutex at 8x or 1/8x its steady-state rate from
// run to run. This harness measures the only thing that means anything on a
// shared host: ops completed inside a fixed wall-clock window, after a
// warmup phase has populated tables, faulted in memory, and let the workers
// reach steady state.
//
// Usage:
//   TimedResult r = timed_run(threads, [&](u32 t, TimedLoop& loop) {
//     auto token = as.register_thread(t);       // per-thread setup (unmeasured)
//     u64 i = 0;
//     while (loop.next()) { op(token, i++); }   // body runs until the window closes
//   });
//   printf("%.1f kops/s\n", r.kops());
//
// Phases: workers spin through their body immediately (warmup, ops
// discarded), the driver flips to "measuring" after bench_warmup_ms, closes
// the window after bench_window_ms, and kops() is window-ops over the
// driver's measured interval. VNROS_BENCH_QUICK=1 shrinks both phases so
// scripts/bench_quick.sh stays CI-sized.
#ifndef VNROS_BENCH_TIMED_H_
#define VNROS_BENCH_TIMED_H_

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <thread>
#include <vector>

#include "src/base/types.h"

namespace vnros {

inline bool bench_quick() { return std::getenv("VNROS_BENCH_QUICK") != nullptr; }
inline u32 bench_warmup_ms() { return bench_quick() ? 20 : 100; }
inline u32 bench_window_ms() { return bench_quick() ? 60 : 400; }

struct TimedResult {
  u64 ops = 0;      // ops started inside the measurement window (all threads)
  double secs = 0;  // the driver's measured window length
  double kops() const { return secs > 0 ? static_cast<double>(ops) / secs / 1000.0 : 0.0; }
};

// Per-worker loop handle: next() is the phase gate each iteration passes
// through. An op is counted iff it *starts* while the window is open (the
// one op straddling each boundary is noise at any sane window length).
class TimedLoop {
 public:
  explicit TimedLoop(const std::atomic<int>& phase) : phase_(phase) {}

  bool next() {
    int p = phase_.load(std::memory_order_relaxed);
    if (p == 2) {
      return false;
    }
    ops_ += (p == 1) ? 1 : 0;
    return true;
  }

  u64 measured_ops() const { return ops_; }

 private:
  const std::atomic<int>& phase_;
  u64 ops_ = 0;
};

template <typename Body>
TimedResult timed_run(u32 threads, Body&& body) {
  std::atomic<int> phase{0};  // 0 = warmup, 1 = measuring, 2 = done
  std::atomic<u64> total{0};
  std::vector<std::thread> workers;
  workers.reserve(threads);
  for (u32 t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      TimedLoop loop(phase);
      body(t, loop);
      total.fetch_add(loop.measured_ops(), std::memory_order_relaxed);
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(bench_warmup_ms()));
  auto t0 = std::chrono::steady_clock::now();
  phase.store(1, std::memory_order_relaxed);
  std::this_thread::sleep_for(std::chrono::milliseconds(bench_window_ms()));
  phase.store(2, std::memory_order_relaxed);
  auto t1 = std::chrono::steady_clock::now();
  for (auto& w : workers) {
    w.join();
  }
  TimedResult r;
  r.ops = total.load(std::memory_order_relaxed);
  r.secs = std::chrono::duration<double>(t1 - t0).count();
  return r;
}

}  // namespace vnros

#endif  // VNROS_BENCH_TIMED_H_
