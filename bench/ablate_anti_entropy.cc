// Ablation: Merkle anti-entropy vs full-inventory sync (EXPERIMENTS.md A9).
//
// Two replicas share a seeded keyspace; a fraction of the keys diverge
// (newer versions and tombstones on one side). The stale node then repairs
// through the SAME rpc layer and byte accounting (AntiEntropyScheduler)
// under both strategies:
//   - merkle: root exchange + top-down descent into divergent subtrees
//     (sync_with) — wire cost tracks divergence;
//   - full:   the PR 7 baseline, ship the whole (key, crc, seq) inventory
//     every pass (sync_full) — wire cost tracks keyspace.
//
// Reported per divergence point:
//   - pass_bytes:  one repair pass that actually fixes the divergence;
//   - clean_bytes: one pass over the already-converged pair (the steady
//     state a periodic repair loop spends almost all of its time in);
//   - epoch_bytes: a repair epoch of `epoch_passes` periodic passes during
//     which the divergence arises once — the deployment measurand, where
//     full-inventory pays O(keyspace) every period and Merkle pays one root
//     exchange;
//   - fg_p50/p95:  latency (in pump polls) of a closed-loop foreground
//     reader against the serving node for a fixed poll window that contains
//     the repair pass — background repair must not move the foreground tail
//     (compare against the `none` baseline rows).
//
// Everything is virtual-time and seeded: the sweep replays bit-identically.
// Emits BENCH_ablate_anti_entropy.json. Honors VNROS_BENCH_QUICK.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_json.h"
#include "src/app/anti_entropy.h"
#include "src/app/blockstore.h"
#include "src/base/contracts.h"
#include "src/base/rng.h"
#include "src/base/serde.h"
#include "src/hw/network.h"
#include "src/kernel/kernel.h"
#include "src/kernel/syscall.h"

namespace vnros {
namespace {

constexpr Port kPortA = 9400;
constexpr Port kPortB = 9401;

struct Host {
  Kernel kernel;
  SyscallDispatcher disp;
  Pid pid;
  Sys sys;

  explicit Host(Network* net) : kernel(config_of(net)), disp(kernel), pid(spawn(disp)),
                                sys(disp, pid, 0) {}

  static KernelConfig config_of(Network* net) {
    KernelConfig c;
    c.network = net;
    return c;
  }

  static Pid spawn(SyscallDispatcher& disp) {
    Sys boot(disp, kInvalidPid, 0);
    auto p = boot.spawn();
    VNROS_CHECK(p.ok());
    return p.value();
  }
};

// Closed-loop foreground reader against the node that also serves repair
// RPCs: one step per pump poll, latency measured in polls from send to
// reply. Repair is supposed to be invisible here.
class Foreground {
 public:
  Foreground(Sys& sys, const BsPeer& peer, usize keys, u64 seed)
      : sys_(sys), peer_(peer), keys_(keys), rng_(seed) {
    auto sock = sys_.udp_socket();
    VNROS_CHECK(sock.ok());
    sock_ = sock.value();
  }

  void step() {
    ++polls_;
    if (!waiting_) {
      send();
      return;
    }
    auto reply = sys_.udp_recvfrom(sock_);
    if (!reply.ok()) {
      return;
    }
    Reader r(reply.value().payload);
    auto rid = r.get_u64();
    auto err = r.get_u32();
    if (!rid || !err || *rid != req_id_) {
      return;
    }
    latencies.push_back(polls_ - sent_at_);
    waiting_ = false;
  }

  u64 polls() const { return polls_; }
  std::vector<u64> latencies;

 private:
  void send() {
    req_id_ = next_id_++;
    Writer w;
    w.put_u8(static_cast<u8>(BsOp::kGet));
    w.put_u64(req_id_);
    w.put_string("ae" + std::to_string(rng_.next_below(keys_)));
    (void)sys_.udp_sendto(sock_, peer_.addr, peer_.port, w.bytes());
    sent_at_ = polls_;
    waiting_ = true;
  }

  Sys& sys_;
  BsPeer peer_;
  usize keys_;
  Rng rng_;
  Fd sock_ = kInvalidFd;
  u64 polls_ = 0;
  u64 next_id_ = 1;
  u64 req_id_ = 0;
  u64 sent_at_ = 0;
  bool waiting_ = false;
};

u64 percentile(std::vector<u64>& v, double p) {
  if (v.empty()) {
    return 0;
  }
  std::sort(v.begin(), v.end());
  return v[static_cast<usize>(p * static_cast<double>(v.size() - 1))];
}

enum class Strategy { kNone, kMerkle, kFull };

struct Point {
  usize divergent = 0;
  u64 pass_bytes = 0;   // the repairing pass
  u64 clean_bytes = 0;  // one steady-state pass after convergence
  u64 pass_rpcs = 0;
  u64 pulled = 0;
  u64 fg_p50 = 0;
  u64 fg_p95 = 0;
  u64 fg_samples = 0;
};

// One measured cell: seed `keys` identical blocks on both nodes, diverge
// `frac` of them on B (newer versions, every 4th a tombstone), repair A
// against B under `strategy` while a foreground reader hammers B, then run
// one more (clean) pass for the steady-state cost.
Point run_cell(Strategy strategy, usize keys, double frac, usize value_bytes,
               u64 window_polls, u64 seed) {
  Network net;
  Host a_host(&net);
  Host b_host(&net);
  Host fg_host(&net);
  BlockStoreNode a(a_host.sys, kPortA);
  BlockStoreNode b(b_host.sys, kPortB);
  VNROS_CHECK(a.init().ok() && b.init().ok());

  Rng rng(seed);
  std::vector<u8> value(value_bytes);
  for (usize k = 0; k < keys; ++k) {
    for (auto& byte : value) {
      byte = static_cast<u8>(rng.next_u64());
    }
    std::string key = "ae" + std::to_string(k);
    VNROS_CHECK(a.apply_remote(key, value, k + 1, false).ok());
    VNROS_CHECK(b.apply_remote(key, value, k + 1, false).ok());
  }

  Point pt;
  pt.divergent = std::max<usize>(static_cast<usize>(static_cast<double>(keys) * frac),
                                 frac > 0 ? 1 : 0);
  usize stride = pt.divergent == 0 ? 1 : std::max<usize>(keys / pt.divergent, 1);
  for (usize i = 0; i < pt.divergent; ++i) {
    std::string key = "ae" + std::to_string((i * stride) % keys);
    bool tomb = (i % 4) == 3;
    if (!tomb) {
      for (auto& byte : value) {
        byte = static_cast<u8>(rng.next_u64());
      }
    }
    VNROS_CHECK(b.apply_remote(key, tomb ? std::vector<u8>{} : value,
                               keys + 1 + i, tomb).ok());
  }

  BsPeer peer_b{b_host.kernel.net_addr(), kPortB};
  Foreground fg(fg_host.sys, peer_b, keys, seed ^ 0xF9ull);
  auto pump = [&] {
    b.serve_once();
    fg.step();
  };

  AntiEntropyConfig cfg;
  cfg.tokens_per_pass = ~u64{0} >> 1;  // the budget is not under test here
  AntiEntropyScheduler sched(a_host.sys, a, pump, cfg);

  auto sync_once = [&] {
    auto r = strategy == Strategy::kMerkle ? sched.sync_with(peer_b) : sched.sync_full(peer_b);
    VNROS_CHECK(r.ok());
  };
  if (strategy != Strategy::kNone) {
    sync_once();
    VNROS_CHECK(MerkleTree::build(a.list()).root() == MerkleTree::build(b.list()).root());
    pt.pass_bytes = sched.stats().bytes_sent + sched.stats().bytes_received;
    pt.pass_rpcs = sched.stats().rpcs;
    pt.pulled = sched.stats().pulled;
    sync_once();  // steady state: the pair is already converged
    pt.clean_bytes = sched.stats().bytes_sent + sched.stats().bytes_received - pt.pass_bytes;
  }
  while (fg.polls() < window_polls) {  // equal-length foreground window per cell
    pump();
  }
  pt.fg_p50 = percentile(fg.latencies, 0.50);
  pt.fg_p95 = percentile(fg.latencies, 0.95);
  pt.fg_samples = fg.latencies.size();
  return pt;
}

}  // namespace
}  // namespace vnros

int main() {
  using namespace vnros;
  const bool quick = std::getenv("VNROS_BENCH_QUICK") != nullptr;
  const usize keys = quick ? 256 : 512;
  const usize value_bytes = 96;
  const u64 window_polls = quick ? 1024 : 4096;
  const u64 epoch_passes = 8;  // periodic passes per divergence event
  const std::vector<double> fractions = quick ? std::vector<double>{0.01, 0.25}
                                              : std::vector<double>{0.01, 0.05, 0.25};

  BenchJson json("ablate_anti_entropy");
  json.config("keys", static_cast<unsigned long long>(keys));
  json.config("value_bytes", static_cast<unsigned long long>(value_bytes));
  json.config("window_polls", static_cast<unsigned long long>(window_polls));
  json.config("epoch_passes", static_cast<unsigned long long>(epoch_passes));
  json.config("quick", quick);

  std::printf("# ablate_anti_entropy: repair bytes should track divergence, not keyspace\n");
  std::printf("# %8s %10s %9s %11s %11s %11s %7s %7s\n", "strategy", "divergence",
              "divergent", "pass_bytes", "clean_bytes", "epoch_bytes", "fg_p50", "fg_p95");

  double merkle_epoch_at_1pct = 0;
  double full_epoch_at_1pct = 0;
  double merkle_pass_at_1pct = 0;
  double full_pass_at_1pct = 0;
  u64 none_p50 = 0;

  for (Strategy strategy : {Strategy::kNone, Strategy::kMerkle, Strategy::kFull}) {
    const char* tag = strategy == Strategy::kNone    ? "none"
                      : strategy == Strategy::kMerkle ? "merkle"
                                                       : "full";
    for (double frac : fractions) {
      Point pt = run_cell(strategy, keys, frac, value_bytes, window_polls, 0xAB1A7Eull);
      // A repair epoch: the divergence arises once, the periodic loop runs
      // `epoch_passes` times — one repairing pass plus steady-state passes.
      u64 epoch_bytes = pt.pass_bytes + (epoch_passes - 1) * pt.clean_bytes;
      double x = frac * 100.0;
      std::printf("  %8s %9.1f%% %9zu %11llu %11llu %11llu %7llu %7llu\n", tag, x,
                  pt.divergent, static_cast<unsigned long long>(pt.pass_bytes),
                  static_cast<unsigned long long>(pt.clean_bytes),
                  static_cast<unsigned long long>(epoch_bytes),
                  static_cast<unsigned long long>(pt.fg_p50),
                  static_cast<unsigned long long>(pt.fg_p95));
      std::string prefix = std::string(tag) + "_";
      json.row(prefix + "pass_bytes", x, static_cast<double>(pt.pass_bytes));
      json.row(prefix + "clean_bytes", x, static_cast<double>(pt.clean_bytes));
      json.row(prefix + "epoch_bytes", x, static_cast<double>(epoch_bytes));
      json.row(prefix + "pass_rpcs", x, static_cast<double>(pt.pass_rpcs));
      json.row(prefix + "pulled", x, static_cast<double>(pt.pulled));
      json.row(prefix + "fg_p50_polls", x, static_cast<double>(pt.fg_p50));
      json.row(prefix + "fg_p95_polls", x, static_cast<double>(pt.fg_p95));
      if (strategy == Strategy::kNone) {
        none_p50 = pt.fg_p50;
      }
      if (frac <= 0.011) {
        if (strategy == Strategy::kMerkle) {
          merkle_epoch_at_1pct = static_cast<double>(epoch_bytes);
          merkle_pass_at_1pct = static_cast<double>(pt.pass_bytes);
        } else if (strategy == Strategy::kFull) {
          full_epoch_at_1pct = static_cast<double>(epoch_bytes);
          full_pass_at_1pct = static_cast<double>(pt.pass_bytes);
        }
      }
    }
  }

  double epoch_ratio = merkle_epoch_at_1pct > 0 ? full_epoch_at_1pct / merkle_epoch_at_1pct : 0;
  double pass_ratio = merkle_pass_at_1pct > 0 ? full_pass_at_1pct / merkle_pass_at_1pct : 0;
  std::printf("# at 1%% divergence: full/merkle = %.1fx per repair pass, %.1fx per epoch "
              "(baseline fg p50 = %llu polls)\n",
              pass_ratio, epoch_ratio, static_cast<unsigned long long>(none_p50));
  json.row("full_over_merkle_pass_ratio", 1.0, pass_ratio);
  json.row("full_over_merkle_epoch_ratio", 1.0, epoch_ratio);
  json.write();
  return 0;
}
