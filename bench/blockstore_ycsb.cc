// Closed-loop YCSB-style load generator against the sharded blockstore
// cluster: N virtual clients (each its own streams + seeded op stream, 50/50
// read/update over a hot-spotted key universe, YCSB-A shape) drive a 3-node
// ring-placed cluster, swept over client counts with the admission gate OFF
// and ON.
//
// The point of the experiment (DESIGN.md §9, EXPERIMENTS.md A7): past the
// cluster's service capacity, the UNGATED cluster's tail latency collapses —
// queues grow without bound, timeouts dominate — while the GATED cluster
// sheds the excess with typed kOverloaded replies, holding goodput near
// capacity and the tail near its uncontended value. Shedding is visible,
// bounded degradation; queue collapse is not.
//
// Time is virtual: one tick = one serve_once() per node (the cluster's fixed
// service capacity) + one VTP clock tick per host + one state-machine step
// per client. Latency is measured in ticks, so the whole sweep replays
// bit-identically — no wall clock anywhere.
//
// The client-facing RPC plane rides VTP streams: each virtual client keeps
// one connection per owner node and frames requests/replies as
// [u32 len][body]; nodes serve them from ring-parked stream recvs. The
// node-to-node plane (replication pushes) stays on datagrams.
// Emits BENCH_blockstore_ycsb.json. Honors VNROS_BENCH_QUICK.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "bench/bench_json.h"
#include "src/app/blockstore.h"
#include "src/base/contracts.h"
#include "src/base/rng.h"
#include "src/base/serde.h"
#include "src/hw/network.h"
#include "src/kernel/kernel.h"
#include "src/kernel/syscall.h"

namespace vnros {
namespace {

constexpr Port kPort = 9300;

struct Host {
  Kernel kernel;
  SyscallDispatcher disp;
  Pid pid;
  Sys sys;

  explicit Host(Network* net) : kernel(config_of(net)), disp(kernel), pid(spawn(disp)),
                                sys(disp, pid, 0) {}

  static KernelConfig config_of(Network* net) {
    KernelConfig c;
    c.network = net;
    return c;
  }

  static Pid spawn(SyscallDispatcher& disp) {
    Sys boot(disp, kInvalidPid, 0);
    auto p = boot.spawn();
    VNROS_CHECK(p.ok());
    return p.value();
  }
};

struct SweepConfig {
  usize nodes = 3;
  usize replication = 2;
  usize keys = 64;
  usize value_bytes = 128;
  usize ticks = 30'000;
  usize warmup_ticks = 2'000;
  bool del_heavy = false;  // 40/35/25 read/update/delete instead of 50/50
  u64 reply_timeout_ticks = 600;
  // Gated runs: tokens granted per node per tick, and bucket capacity.
  u64 admission_rate_ppm = 400'000;  // 0.4 ops/tick/node, below the 1/tick serve rate
  u64 admission_burst = 8;
};

// One closed-loop virtual client: send, await the reply, account it, repeat.
// kOverloaded replies trigger multiplicative backoff on the same owner —
// the same discipline BlockStoreClient implements — so a gated sweep models
// well-behaved tenants, not a retry stampede.
class VClient {
 public:
  VClient(Sys& sys, const ClusterView& view, const SweepConfig& cfg, u64 seed,
          Port sport_base)
      : sys_(sys), view_(view), cfg_(cfg), rng_(seed), sport_base_(sport_base) {
    value_.resize(cfg_.value_bytes);
    for (auto& b : value_) {
      b = static_cast<u8>(rng_.next_u64());
    }
  }

  void step(u64 tick) {
    switch (state_) {
      case State::kIdle:
        begin_op(tick);
        break;
      case State::kBackoff:
        if (tick >= resume_tick_) {
          send(tick);  // re-issue the shed op
        }
        break;
      case State::kWaiting:
        poll(tick);
        break;
    }
  }

  u64 completed = 0;   // acked ops (goodput numerator)
  u64 sheds = 0;       // kOverloaded replies absorbed
  u64 timeouts = 0;    // re-sends after a silent reply window
  u64 errors = 0;      // non-shed error replies (kNotFound on a cold key, ...)
  std::vector<u64> latencies;  // ticks from first send to the final ack

 private:
  enum class State { kIdle, kWaiting, kBackoff };

  void begin_op(u64 tick) {
    // YCSB-A: 50/50 read/update; the delete-heavy variant trades updates and
    // reads for 25% sequenced deletes (tombstone churn under load, DESIGN
    // §11). 80% of ops land on the hottest 20% of keys either way.
    u64 roll = rng_.next_below(100);
    if (cfg_.del_heavy) {
      op_ = roll < 40 ? BsOp::kGet : roll < 75 ? BsOp::kPut : BsOp::kDel;
    } else {
      op_ = roll < 50 ? BsOp::kGet : BsOp::kPut;
    }
    usize universe = rng_.chance(8, 10) ? std::max<usize>(cfg_.keys / 5, 1) : cfg_.keys;
    key_ = "ycsb" + std::to_string(rng_.next_below(universe));
    op_start_ = tick;
    backoff_ = 16;
    send(tick);
  }

  // One VTP stream per owner node, lazily connected; requests and replies
  // ride it framed as [u32 len][body]. A connection-level failure drops the
  // channel — the next send() reconnects and the reply-timeout resend covers
  // anything lost in between.
  struct Chan {
    Fd fd = kInvalidFd;
    std::vector<u8> inbuf;
    std::vector<u8> outbuf;
  };

  Chan* chan(BsNodeId owner) {
    auto it = chans_.find(owner);
    if (it != chans_.end()) {
      return &it->second;
    }
    const BsPeer& peer = view_.directory.at(owner);
    Port sport = static_cast<Port>(sport_base_ + (sport_off_++ & 7));
    auto fd = sys_.vtp_connect(peer.addr, peer.port, sport);
    if (!fd.ok()) {
      return nullptr;
    }
    Chan& ch = chans_[owner];
    ch.fd = fd.value();
    return &ch;
  }

  void drop_chan(BsNodeId owner) {
    auto it = chans_.find(owner);
    if (it == chans_.end()) {
      return;
    }
    if (it->second.fd != kInvalidFd) {
      (void)sys_.vtp_close(it->second.fd);
    }
    chans_.erase(it);
  }

  // Push queued bytes into the stream. kWouldBlock keeps the remainder queued
  // (never truncate mid-frame); a terminal error drops the channel.
  void flush(BsNodeId owner) {
    auto it = chans_.find(owner);
    if (it == chans_.end() || it->second.outbuf.empty()) {
      return;
    }
    Chan& ch = it->second;
    while (!ch.outbuf.empty()) {
      auto sent = sys_.vtp_send(ch.fd, std::span<const u8>(ch.outbuf));
      if (sent.ok() && sent.value() > 0) {
        ch.outbuf.erase(ch.outbuf.begin(),
                        ch.outbuf.begin() + static_cast<isize>(sent.value()));
        continue;
      }
      if (!sent.ok() && sent.error() != ErrorCode::kWouldBlock) {
        drop_chan(owner);
      }
      return;
    }
  }

  static std::optional<std::vector<u8>> pop_frame(Chan& ch) {
    if (ch.inbuf.size() < 4) {
      return std::nullopt;
    }
    Reader hdr(std::span<const u8>(ch.inbuf.data(), 4));
    auto len = hdr.get_u32();
    if (!len || ch.inbuf.size() < 4 + *len) {
      return std::nullopt;
    }
    std::vector<u8> body(ch.inbuf.begin() + 4, ch.inbuf.begin() + 4 + *len);
    ch.inbuf.erase(ch.inbuf.begin(), ch.inbuf.begin() + 4 + *len);
    return body;
  }

  void send(u64 tick) {
    req_id_ = next_req_id_++;
    Writer w;
    w.put_u8(static_cast<u8>(op_));
    w.put_u64(req_id_);
    w.put_string(key_);
    if (op_ != BsOp::kGet) {
      w.put_u64(++put_seq_);  // write-sequence stamp (see BlockStoreClient::rpc)
    }
    if (op_ == BsOp::kPut) {
      w.put_bytes(value_);
    }
    owner_ = view_.owners(key_).front();
    Chan* ch = chan(owner_);
    if (ch != nullptr) {
      Writer framed;
      framed.put_u32(static_cast<u32>(w.bytes().size()));
      ch->outbuf.insert(ch->outbuf.end(), framed.bytes().begin(), framed.bytes().end());
      ch->outbuf.insert(ch->outbuf.end(), w.bytes().begin(), w.bytes().end());
      flush(owner_);
    }
    // Connect failure: stay in kWaiting; the timeout resend retries the op.
    sent_tick_ = tick;
    state_ = State::kWaiting;
  }

  void poll(u64 tick) {
    flush(owner_);  // drain any backpressured frames first
    std::optional<std::vector<u8>> frame;
    auto it = chans_.find(owner_);
    if (it != chans_.end()) {
      Chan& ch = it->second;
      auto bytes = sys_.vtp_recv(ch.fd, 32 * 1024);
      if (bytes.ok()) {
        ch.inbuf.insert(ch.inbuf.end(), bytes.value().begin(), bytes.value().end());
      } else if (bytes.error() != ErrorCode::kWouldBlock) {
        drop_chan(owner_);
      }
      it = chans_.find(owner_);
      if (it != chans_.end()) {
        frame = pop_frame(it->second);
      }
    }
    if (!frame) {
      if (tick - sent_tick_ >= cfg_.reply_timeout_ticks) {
        ++timeouts;
        send(tick);  // resend with a fresh req id; ops are idempotent
      }
      return;
    }
    Reader r(*frame);
    auto rid = r.get_u64();
    auto err = r.get_u32();
    if (!rid || !err || *rid != req_id_) {
      return;  // malformed or stale: keep waiting
    }
    ErrorCode code = static_cast<ErrorCode>(*err);
    if (code == ErrorCode::kOverloaded) {
      ++sheds;
      resume_tick_ = tick + backoff_;
      backoff_ = std::min<u64>(backoff_ * 2, 256);
      state_ = State::kBackoff;
      return;
    }
    if (code != ErrorCode::kOk && code != ErrorCode::kNotFound) {
      ++errors;
    }
    ++completed;
    latencies.push_back(tick - op_start_);
    state_ = State::kIdle;
  }

  Sys& sys_;
  const ClusterView& view_;
  const SweepConfig& cfg_;
  Rng rng_;
  Port sport_base_ = 0;
  u16 sport_off_ = 0;
  std::map<BsNodeId, Chan> chans_;
  BsNodeId owner_ = 0;
  State state_ = State::kIdle;
  std::string key_;
  BsOp op_ = BsOp::kGet;
  std::vector<u8> value_;
  u64 next_req_id_ = 1;
  u64 put_seq_ = 0;
  u64 req_id_ = 0;
  u64 op_start_ = 0;
  u64 sent_tick_ = 0;
  u64 backoff_ = 16;
  u64 resume_tick_ = 0;
};

u64 percentile(std::vector<u64>& v, double p) {
  if (v.empty()) {
    return 0;
  }
  std::sort(v.begin(), v.end());
  usize idx = static_cast<usize>(p * static_cast<double>(v.size() - 1));
  return v[idx];
}

struct SweepPoint {
  double goodput_per_kilotick = 0;
  u64 p50 = 0;
  u64 p95 = 0;
  u64 p99 = 0;
  double shed_rate = 0;
  u64 timeouts = 0;
};

SweepPoint run_sweep(const SweepConfig& cfg, usize num_clients, bool gated) {
  Network net;
  std::vector<std::unique_ptr<Host>> hosts;
  std::vector<std::unique_ptr<BlockStoreNode>> nodes;
  ClusterView view;
  view.ring = PlacementRing(32);
  view.replication = cfg.replication;
  for (usize i = 0; i < cfg.nodes; ++i) {
    hosts.push_back(std::make_unique<Host>(&net));
  }
  for (usize i = 0; i < cfg.nodes; ++i) {
    nodes.push_back(std::make_unique<BlockStoreNode>(
        hosts[i]->sys, kPort, std::vector<BsPeer>{},
        [&nodes, i] {
          for (usize j = 0; j < nodes.size(); ++j) {
            if (j != i) {
              nodes[j]->serve_once();
            }
          }
        },
        std::string{}, BsTransport::kVtp));
    VNROS_CHECK(nodes[i]->init().ok());
    view.ring.add_node(static_cast<BsNodeId>(i));
    view.directory[static_cast<BsNodeId>(i)] =
        BsPeer{hosts[i]->kernel.net_addr(), kPort};
  }
  for (usize i = 0; i < cfg.nodes; ++i) {
    ClusterConfig cc;
    cc.self = static_cast<BsNodeId>(i);
    nodes[i]->configure_cluster(cc, view);
  }

  // Preload the key universe (ungated, local API) so reads hit.
  {
    Rng rng(0x9C5Bull);
    std::vector<u8> v(cfg.value_bytes);
    for (usize k = 0; k < cfg.keys; ++k) {
      for (auto& b : v) {
        b = static_cast<u8>(rng.next_u64());
      }
      std::string key = "ycsb" + std::to_string(k);
      BsNodeId owner = view.owners(key).front();
      VNROS_CHECK(nodes[owner]->put(key, v).ok());
    }
  }
  if (gated) {
    for (auto& node : nodes) {
      AdmissionConfig ac;
      ac.enabled = true;
      ac.burst_ops = cfg.admission_burst;
      node->set_admission(ac);
      node->grant_tokens(cfg.admission_burst * 1'000'000);
    }
  }

  // One shared client kernel; each virtual client gets a disjoint source-port
  // block (8 ports: up to cfg.nodes streams plus reconnect slack).
  Host client_host(&net);
  std::vector<std::unique_ptr<VClient>> clients;
  for (usize c = 0; c < num_clients; ++c) {
    clients.push_back(std::make_unique<VClient>(client_host.sys, view, cfg,
                                                0x5EEDull * (c + 1) + 17,
                                                static_cast<Port>(20'000 + c * 8)));
  }

  auto tick_once = [&](u64 tick) {
    for (auto& node : nodes) {
      if (gated) {
        node->grant_tokens(cfg.admission_rate_ppm);
      }
      node->serve_once();
    }
    for (auto& h : hosts) {
      h->kernel.vtp().tick();
    }
    client_host.kernel.vtp().tick();
    for (auto& c : clients) {
      c->step(tick);
    }
  };
  for (u64 t = 0; t < cfg.warmup_ticks; ++t) {
    tick_once(t);
  }
  for (auto& c : clients) {  // drop warmup accounting
    c->completed = 0;
    c->sheds = 0;
    c->timeouts = 0;
    c->errors = 0;
    c->latencies.clear();
  }
  for (u64 t = cfg.warmup_ticks; t < cfg.warmup_ticks + cfg.ticks; ++t) {
    tick_once(t);
  }

  SweepPoint pt;
  u64 completed = 0;
  u64 sheds = 0;
  std::vector<u64> all_latencies;
  for (auto& c : clients) {
    completed += c->completed;
    sheds += c->sheds;
    pt.timeouts += c->timeouts;
    all_latencies.insert(all_latencies.end(), c->latencies.begin(), c->latencies.end());
  }
  pt.goodput_per_kilotick =
      static_cast<double>(completed) * 1000.0 / static_cast<double>(cfg.ticks);
  pt.p50 = percentile(all_latencies, 0.50);
  pt.p95 = percentile(all_latencies, 0.95);
  pt.p99 = percentile(all_latencies, 0.99);
  pt.shed_rate = completed + sheds == 0
                     ? 0
                     : static_cast<double>(sheds) / static_cast<double>(completed + sheds);
  return pt;
}

}  // namespace
}  // namespace vnros

int main() {
  using namespace vnros;
  const bool quick = std::getenv("VNROS_BENCH_QUICK") != nullptr;
  SweepConfig cfg;
  std::vector<usize> client_counts;
  if (quick) {
    cfg.ticks = 6'000;
    cfg.warmup_ticks = 500;
    client_counts = {4, 16, 64};
  } else {
    client_counts = {8, 32, 128, 256, 1024};
  }

  BenchJson json("blockstore_ycsb");
  json.config("nodes", static_cast<unsigned long long>(cfg.nodes));
  json.config("replication", static_cast<unsigned long long>(cfg.replication));
  json.config("keys", static_cast<unsigned long long>(cfg.keys));
  json.config("value_bytes", static_cast<unsigned long long>(cfg.value_bytes));
  json.config("ticks", static_cast<unsigned long long>(cfg.ticks));
  json.config("admission_rate_ppm", static_cast<unsigned long long>(cfg.admission_rate_ppm));
  json.config("admission_burst", static_cast<unsigned long long>(cfg.admission_burst));
  json.config("transport", "vtp");
  json.config("quick", quick);

  std::printf("# blockstore_ycsb: closed-loop YCSB over the sharded cluster\n");
  std::printf("# %8s %8s %7s %12s %8s %8s %8s %10s %9s\n", "clients", "mix", "gate",
              "goodput/kt", "p50", "p95", "p99", "shed_rate", "timeouts");
  for (bool del_heavy : {false, true}) {
    cfg.del_heavy = del_heavy;
    for (bool gated : {false, true}) {
      for (usize n : client_counts) {
        SweepPoint pt = run_sweep(cfg, n, gated);
        const char* mix = del_heavy ? "del" : "a";
        const char* tag = gated ? "gated" : "open";
        std::printf("  %8zu %8s %7s %12.1f %8llu %8llu %8llu %10.3f %9llu\n", n, mix, tag,
                    pt.goodput_per_kilotick, static_cast<unsigned long long>(pt.p50),
                    static_cast<unsigned long long>(pt.p95),
                    static_cast<unsigned long long>(pt.p99), pt.shed_rate,
                    static_cast<unsigned long long>(pt.timeouts));
        std::string prefix =
            std::string(del_heavy ? "del_" : "") + (gated ? "gated_" : "open_");
        double x = static_cast<double>(n);
        json.row(prefix + "goodput_per_kilotick", x, pt.goodput_per_kilotick);
        json.row(prefix + "p50_ticks", x, static_cast<double>(pt.p50));
        json.row(prefix + "p95_ticks", x, static_cast<double>(pt.p95));
        json.row(prefix + "p99_ticks", x, static_cast<double>(pt.p99));
        json.row(prefix + "shed_rate", x, pt.shed_rate);
        json.row(prefix + "timeouts", x, static_cast<double>(pt.timeouts));
      }
    }
  }
  json.write();
  return 0;
}
