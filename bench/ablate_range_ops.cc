// Ablation A5: range operations end-to-end vs per-page loops.
//
// Maps (and unmaps) `range_pages`-page regions through the NR-replicated
// address space two ways:
//   per_page  — one log entry + full 4-level walk + one shootdown round per
//               page (the baseline protocol);
//   range_op  — ONE MapRangeOp/UnmapRangeOp log entry for the whole region,
//               replayed with the walk-cached table fill, retired with ONE
//               batched shootdown round.
// The quotient is the price of treating a region as N independent pages:
// N log entries, N root-to-leaf walks, and N IPI rounds that one entry, one
// cached walk and one round can cover.
//
//   ./build/bench/ablate_range_ops
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench/bench_json.h"
#include "src/hw/tlb.h"
#include "src/kernel/frame_alloc.h"
#include "src/pt/address_space.h"

namespace vnros {
namespace {

struct RangeBenchConfig {
  u64 range_pages = 512;   // one full PT worth of pages per region
  u64 regions_per_thread = 4;
  u32 max_cores = 28;
  u32 cores_per_node = 14;
  u64 ipi_cost_cycles = 500;  // makes the shootdown component visible
  u32 repetitions = 3;
};

// Per-PAGE latency (microseconds) of mapping+unmapping regions on `threads`
// concurrent threads, either as range ops or as per-page loops.
double run_regions(u32 threads, const RangeBenchConfig& cfg, bool use_range_ops) {
  Topology topo(cfg.max_cores, cfg.cores_per_node);
  PhysMem mem(u64{1} << 15);
  FrameAllocator frames(mem, topo);
  TlbSystem tlbs(topo);
  tlbs.set_ipi_cost_cycles(cfg.ipi_cost_cycles);
  AddressSpace<PageTable> as(mem, frames, topo, &tlbs);

  auto region_base = [&](u32 thread, u64 r) {
    return VAddr{(u64{thread} + 1) << 34 | (r * (cfg.range_pages + 16) * kPageSize)};
  };

  std::vector<std::thread> workers;
  workers.reserve(threads);
  auto start = std::chrono::steady_clock::now();
  for (u32 t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      auto tok = as.register_thread(t % cfg.max_cores);
      for (u64 r = 0; r < cfg.regions_per_thread; ++r) {
        VAddr base = region_base(t, r);
        PAddr fbase = PAddr::from_frame((u64{t} * 131 + r * 17) % 1024);
        if (use_range_ops) {
          VNROS_CHECK(as.map_range(tok, base, fbase, cfg.range_pages, Perms::rw()) ==
                      ErrorCode::kOk);
          VNROS_CHECK(as.unmap_range(tok, base, cfg.range_pages) == ErrorCode::kOk);
        } else {
          for (u64 i = 0; i < cfg.range_pages; ++i) {
            VNROS_CHECK(as.map(tok, base.offset(i * kPageSize), fbase.offset(i * kPageSize),
                               kPageSize, Perms::rw()) == ErrorCode::kOk);
          }
          for (u64 i = 0; i < cfg.range_pages; ++i) {
            VNROS_CHECK(as.unmap(tok, base.offset(i * kPageSize)) == ErrorCode::kOk);
          }
        }
      }
    });
  }
  for (auto& w : workers) {
    w.join();
  }
  double us = std::chrono::duration<double, std::micro>(std::chrono::steady_clock::now() -
                                                        start)
                  .count();
  // Each thread touched regions_per_thread * range_pages pages (map+unmap
  // counts as one page visit for the per-page normalization).
  return us / static_cast<double>(cfg.regions_per_thread * cfg.range_pages);
}

double median_of(u32 threads, const RangeBenchConfig& cfg, bool use_range_ops) {
  std::vector<double> samples;
  for (u32 rep = 0; rep < cfg.repetitions; ++rep) {
    samples.push_back(run_regions(threads, cfg, use_range_ops));
  }
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2];
}

}  // namespace
}  // namespace vnros

int main() {
  using namespace vnros;
  RangeBenchConfig cfg;
  std::printf("# Ablation A5: %lu-page regions, range ops vs per-page loops\n",
              static_cast<unsigned long>(cfg.range_pages));
  std::printf("# per-page latency includes map + unmap + TLB shootdown (ipi cost %lu cycles)\n",
              static_cast<unsigned long>(cfg.ipi_cost_cycles));
  std::printf("%-6s %-20s %-20s %s\n", "cores", "per_page_us/page", "range_op_us/page",
              "speedup");
  BenchJson json("ablate_range_ops");
  json.config("range_pages", static_cast<unsigned long long>(cfg.range_pages));
  json.config("regions_per_thread", static_cast<unsigned long long>(cfg.regions_per_thread));
  json.config("ipi_cost_cycles", static_cast<unsigned long long>(cfg.ipi_cost_cycles));
  json.config("repetitions", cfg.repetitions);
  // Warmup.
  (void)run_regions(2, cfg, true);
  for (u32 cores : {1u, 2u, 4u, 8u, 16u}) {
    double per_page = median_of(cores, cfg, /*use_range_ops=*/false);
    double range_op = median_of(cores, cfg, /*use_range_ops=*/true);
    std::printf("%-6u %-20.3f %-20.3f %.1fx\n", cores, per_page, range_op,
                per_page / range_op);
    json.row("per_page_us_per_page", cores, per_page);
    json.row("range_op_us_per_page", cores, range_op);
    json.row("speedup", cores, per_page / range_op);
  }
  json.write();
  std::printf("#\n# shape check: the speedup grows with core count — per-page ops pay one\n");
  std::printf("# log entry and one shootdown ROUND per page, range ops pay one of each\n");
  std::printf("# per region; at 8+ cores the quotient should exceed 3x.\n");
  return 0;
}
