// Ablation A1: the NR design choice (§4.1) versus conventional locking.
//
// The same map workload of Figure 1b runs over three concurrency wrappers
// around the same verified page table: node replication (the NrOS design),
// a single global mutex, and a readers-writer lock. The paper's background
// claim: "conventional OS designs suffer from degraded performance due to
// lock contention" while NR "achieves near-linear scalability".
//
// Measurement is a timed window with warmup (bench/timed.h); the write
// workload alternates map/unmap over a bounded per-thread region so the
// loop runs indefinitely without exhausting frames, and every op is a real
// state transition (no failing-map fast paths).
//
//   ./build/bench/ablate_nr_vs_locks
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_json.h"
#include "bench/timed.h"

#include "src/kernel/frame_alloc.h"
#include "src/nr/baselines.h"
#include "src/pt/address_space.h"

namespace vnros {
namespace {

constexpr u32 kMaxCores = 32;
// Per-thread page slots the write mix cycles through (map then unmap each).
constexpr u64 kSlotsPerThread = 1024;

// Best-of-N over independent runs: on a shared (and possibly single-core)
// host a 400 ms window can lose a big slice to unrelated load, and that
// noise exceeds the effects under measurement. The max over fresh runs is
// the standard de-noised throughput estimate; every wrapper gets the same
// treatment.
inline u32 bench_reps() { return bench_quick() ? 1 : 3; }

template <template <typename> class Repl>
double throughput_kops_once(u32 threads, bool read_heavy) {
  Topology topo(kMaxCores, kMaxCores / 2);
  PhysMem mem(1u << 15);
  FrameAllocator frames(mem, topo);
  AddressSpace<PageTable, Repl> as(mem, frames, topo);

  // Pre-populate some mappings for the read mix to resolve.
  auto tok0 = as.register_thread(0);
  for (u64 i = 0; i < 64; ++i) {
    (void)as.map(tok0, VAddr{u64{1} << 40 | (i * kPageSize)}, PAddr::from_frame(i + 1),
                 kPageSize, Perms::rw());
  }

  // Register every worker up front ("at boot"): NR requires a node's first
  // registration to precede the first log wraparound — passive replicas are
  // skip-forwarded, not replayed, once the log fills.
  std::vector<decltype(tok0)> tokens;
  tokens.reserve(threads);
  for (u32 t = 0; t < threads; ++t) {
    tokens.push_back(as.register_thread(t % kMaxCores));
  }

  TimedResult r = timed_run(threads, [&](u32 t, TimedLoop& loop) {
    auto token = tokens[t];
    u64 i = 0;
    u64 w = 0;  // write-op counter: map/unmap must alternate per WRITE, not per op
    while (loop.next()) {
      if (read_heavy && i % 1000 != 0) {
        // 99.9% resolves / 0.1% maps. Resolves model per-access translation
        // and map/unmap model mmap-rate events; real address spaces see an
        // mmap once per ~1e5..1e6 accesses, so even 1000:1 overweights
        // writes. Anything much hotter (90:10, even 99:1) is a diluted
        // write benchmark (the write-only sweep already covers that axis) —
        // replica replay cost drowns the read path this mix exists to probe.
        (void)as.resolve(token, VAddr{u64{1} << 40 | ((i % 64) * kPageSize)});
      } else {
        // Map a fresh slot, unmap it on the next write op: the table stays
        // bounded and every write really mutates (a stale parity here would
        // degenerate the mix into always-failing re-maps).
        u64 slot = (w / 2) % kSlotsPerThread;
        VAddr va{(u64{t} + 2) << 34 | (slot * kPageSize)};
        if (w % 2 == 0) {
          (void)as.map(token, va, PAddr::from_frame((slot % 1000) + 100), kPageSize, Perms::rw());
        } else {
          (void)as.unmap(token, va);
        }
        ++w;
      }
      ++i;
    }
  });
  return r.kops();
}

void sweep(bool read_heavy, BenchJson& json) {
  std::printf("\n== %s workload ==\n", read_heavy ? "read-heavy (99.9% resolve)" : "write-only (map)");
  std::printf("%-8s %-16s %-16s %-16s\n", "threads", "NR_kops/s", "mutex_kops/s", "rwlock_kops/s");
  std::string suffix = read_heavy ? "_read_heavy" : "_write_only";
  for (u32 threads : {1u, 2u, 4u, 8u, 16u, 32u}) {
    // Reps are interleaved across the wrappers (NR, mutex, rwlock, NR, ...)
    // rather than blocked per wrapper: host-load drift over the ~10 s a row
    // takes then biases all three estimates equally instead of whichever
    // wrapper happened to run during the quiet stretch.
    double nr = 0;
    double mu = 0;
    double rw = 0;
    for (u32 rep = 0; rep < bench_reps(); ++rep) {
      nr = std::max(nr, throughput_kops_once<NodeReplicated>(threads, read_heavy));
      mu = std::max(mu, throughput_kops_once<MutexReplicated>(threads, read_heavy));
      rw = std::max(rw, throughput_kops_once<RwLockReplicated>(threads, read_heavy));
    }
    std::printf("%-8u %-16.1f %-16.1f %-16.1f\n", threads, nr, mu, rw);
    json.row("nr_kops" + suffix, threads, nr);
    json.row("mutex_kops" + suffix, threads, mu);
    json.row("rwlock_kops" + suffix, threads, rw);
  }
}

}  // namespace
}  // namespace vnros

int main() {
  std::printf("# Ablation A1: node replication vs global mutex vs rwlock\n");
  std::printf("# (same verified page table under each concurrency wrapper)\n");
  vnros::BenchJson json("ablate_nr_vs_locks");
  json.config("max_cores", vnros::kMaxCores);
  json.config("warmup_ms", vnros::bench_warmup_ms());
  json.config("window_ms", vnros::bench_window_ms());
  json.config("slots_per_thread", static_cast<unsigned long long>(vnros::kSlotsPerThread));
  json.config("best_of_reps", vnros::bench_reps());
  vnros::sweep(false, json);
  vnros::sweep(true, json);
  json.write();
  std::printf(
      "\n# interpretation: NR's advantage is *parallel* reads on replicas across\n"
      "# NUMA nodes; it needs real cores to show. On hosts with few hardware\n"
      "# threads the global mutex's lower constant cost wins instead — which is\n"
      "# itself the paper's point in reverse: NR trades single-thread overhead\n"
      "# (log append + replay) for multi-core scalability. Compare the read-heavy\n"
      "# NR column's growth with its own write-only column to see the replica-\n"
      "# local read path working even when parallelism is emulated.\n");
  return 0;
}
