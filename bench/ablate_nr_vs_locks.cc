// Ablation A1: the NR design choice (§4.1) versus conventional locking.
//
// The same map workload of Figure 1b runs over three concurrency wrappers
// around the same verified page table: node replication (the NrOS design),
// a single global mutex, and a readers-writer lock. The paper's background
// claim: "conventional OS designs suffer from degraded performance due to
// lock contention" while NR "achieves near-linear scalability".
//
//   ./build/bench/ablate_nr_vs_locks
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_json.h"

#include "src/kernel/frame_alloc.h"
#include "src/nr/baselines.h"
#include "src/pt/address_space.h"

namespace vnros {
namespace {

constexpr u32 kMaxCores = 16;
constexpr u64 kOpsPerThread = 300;

template <template <typename> class Repl>
double throughput_kops(u32 threads, bool read_heavy) {
  Topology topo(kMaxCores, kMaxCores / 2);
  PhysMem mem(1u << 15);
  FrameAllocator frames(mem, topo);
  AddressSpace<PageTable, Repl> as(mem, frames, topo);

  // Pre-populate some mappings for the read mix to resolve.
  auto tok0 = as.register_thread(0);
  for (u64 i = 0; i < 64; ++i) {
    (void)as.map(tok0, VAddr{u64{1} << 40 | (i * kPageSize)}, PAddr::from_frame(i + 1),
                 kPageSize, Perms::rw());
  }

  std::vector<std::thread> workers;
  auto start = std::chrono::steady_clock::now();
  for (u32 t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      auto token = as.register_thread(t % kMaxCores);
      for (u64 i = 0; i < kOpsPerThread; ++i) {
        if (read_heavy && i % 10 != 0) {
          // 90% resolves: where NR's per-replica read path shines.
          (void)as.resolve(token, VAddr{u64{1} << 40 | ((i % 64) * kPageSize)});
        } else {
          VAddr va{(u64{t} + 2) << 34 | (i * kPageSize)};
          (void)as.map(token, va, PAddr::from_frame((i % 1000) + 100), kPageSize, Perms::rw());
        }
      }
    });
  }
  for (auto& w : workers) {
    w.join();
  }
  double secs = std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  return static_cast<double>(threads) * kOpsPerThread / secs / 1000.0;
}

void sweep(bool read_heavy, BenchJson& json) {
  std::printf("\n== %s workload ==\n", read_heavy ? "read-heavy (90% resolve)" : "write-only (map)");
  std::printf("%-8s %-16s %-16s %-16s\n", "threads", "NR_kops/s", "mutex_kops/s", "rwlock_kops/s");
  std::string suffix = read_heavy ? "_read_heavy" : "_write_only";
  for (u32 threads : {1u, 2u, 4u, 8u, 16u}) {
    double nr = throughput_kops<NodeReplicated>(threads, read_heavy);
    double mu = throughput_kops<MutexReplicated>(threads, read_heavy);
    double rw = throughput_kops<RwLockReplicated>(threads, read_heavy);
    std::printf("%-8u %-16.1f %-16.1f %-16.1f\n", threads, nr, mu, rw);
    json.row("nr_kops" + suffix, threads, nr);
    json.row("mutex_kops" + suffix, threads, mu);
    json.row("rwlock_kops" + suffix, threads, rw);
  }
}

}  // namespace
}  // namespace vnros

int main() {
  std::printf("# Ablation A1: node replication vs global mutex vs rwlock\n");
  std::printf("# (same verified page table under each concurrency wrapper)\n");
  vnros::BenchJson json("ablate_nr_vs_locks");
  json.config("max_cores", vnros::kMaxCores);
  json.config("ops_per_thread", static_cast<unsigned long long>(vnros::kOpsPerThread));
  vnros::sweep(false, json);
  vnros::sweep(true, json);
  json.write();
  std::printf(
      "\n# interpretation: NR's advantage is *parallel* reads on replicas across\n"
      "# NUMA nodes; it needs real cores to show. On hosts with few hardware\n"
      "# threads the global mutex's lower constant cost wins instead — which is\n"
      "# itself the paper's point in reverse: NR trades single-thread overhead\n"
      "# (log append + replay) for multi-core scalability. Compare the read-heavy\n"
      "# NR column's growth with its own write-only column to see the replica-\n"
      "# local read path working even when parallelism is emulated.\n");
  return 0;
}
