// Ablation A8b: one unified NR log vs per-subsystem log shards.
//
// The kernel could funnel every subsystem's mutations through ONE
// NodeReplicated instance whose WriteOp is a variant over all subsystems
// (one log tail, one combiner domain), or give each subsystem its own
// NrLogShard (src/kernel/nr_shards.h) — own log, own tail cacheline, own
// combiner. This bench runs both layouts under the same mixed load: half
// the threads issue slow "fs-ish" writes (~1 us replay), half issue cheap
// "vm-ish" writes, and the per-class throughput shows the interference. In
// the unified layout a cheap vm op parks behind whatever fs batch the
// shared combiner is draining; sharded, the vm combiner never waits for fs.
//
//   ./build/bench/ablate_log_sharding
#include <array>
#include <atomic>
#include <cstdio>
#include <variant>

#include "bench/bench_json.h"
#include "bench/timed.h"
#include "src/hw/topology.h"
#include "src/nr/node_replicated.h"

namespace vnros {
namespace {

constexpr u32 kThreads = 8;  // first half: fs-ish writers; second half: vm-ish

inline u64 slow_replay() {
  volatile u64 sink = 0;
  for (int i = 0; i < 1500; ++i) {
    sink = sink + 1;
  }
  return sink & 0;
}

struct FsishDs {
  struct WriteOp {
    u64 delta = 0;
  };
  struct ReadOp {};
  using Response = u64;
  u64 value = 0;
  Response dispatch(ReadOp) const { return value; }
  Response dispatch_mut(const WriteOp& op) { return value += op.delta + slow_replay(); }
};

struct VmishDs {
  struct WriteOp {
    u64 delta = 0;
  };
  struct ReadOp {};
  using Response = u64;
  u64 value = 0;
  Response dispatch(ReadOp) const { return value; }
  Response dispatch_mut(const WriteOp& op) { return value += op.delta; }
};

// The unified alternative: both subsystems' ops share one log as a variant.
struct UnifiedDs {
  struct FsWrite {
    u64 delta = 0;
  };
  struct VmWrite {
    u64 delta = 0;
  };
  struct WriteOp {
    std::variant<std::monostate, FsWrite, VmWrite> op;
  };
  struct ReadOp {};
  using Response = u64;
  u64 fs_value = 0;
  u64 vm_value = 0;
  Response dispatch(ReadOp) const { return fs_value + vm_value; }
  Response dispatch_mut(const WriteOp& op) {
    if (const auto* f = std::get_if<FsWrite>(&op.op)) {
      return fs_value += f->delta + slow_replay();
    }
    if (const auto* v = std::get_if<VmWrite>(&op.op)) {
      return vm_value += v->delta;
    }
    return 0;
  }
};

struct ClassKops {
  double fs = 0;
  double vm = 0;
};

ClassKops run_unified() {
  Topology topo(kThreads, kThreads);
  NodeReplicated<UnifiedDs> nr(topo, UnifiedDs{});
  std::array<std::atomic<u64>, 2> cls{};
  TimedResult r = timed_run(kThreads, [&](u32 t, TimedLoop& loop) {
    auto token = nr.register_thread(t);
    bool fs = t < kThreads / 2;
    while (loop.next()) {
      UnifiedDs::WriteOp op;
      if (fs) {
        op.op = UnifiedDs::FsWrite{1};
      } else {
        op.op = UnifiedDs::VmWrite{1};
      }
      nr.execute_mut(token, op);
    }
    cls[fs ? 0 : 1].fetch_add(loop.measured_ops(), std::memory_order_relaxed);
  });
  ClassKops k;
  k.fs = static_cast<double>(cls[0].load()) / r.secs / 1000.0;
  k.vm = static_cast<double>(cls[1].load()) / r.secs / 1000.0;
  return k;
}

ClassKops run_sharded() {
  Topology topo(kThreads, kThreads);
  NrConfig fs_cfg;
  fs_cfg.shard = NrLogShard{"fsish", usize{1} << 12};
  NrConfig vm_cfg;
  vm_cfg.shard = NrLogShard{"vmish", usize{1} << 14};
  NodeReplicated<FsishDs> fs_nr(topo, FsishDs{}, fs_cfg);
  NodeReplicated<VmishDs> vm_nr(topo, VmishDs{}, vm_cfg);
  std::array<std::atomic<u64>, 2> cls{};
  TimedResult r = timed_run(kThreads, [&](u32 t, TimedLoop& loop) {
    bool fs = t < kThreads / 2;
    if (fs) {
      auto token = fs_nr.register_thread(t);
      while (loop.next()) {
        fs_nr.execute_mut(token, FsishDs::WriteOp{1});
      }
    } else {
      auto token = vm_nr.register_thread(t);
      while (loop.next()) {
        vm_nr.execute_mut(token, VmishDs::WriteOp{1});
      }
    }
    cls[fs ? 0 : 1].fetch_add(loop.measured_ops(), std::memory_order_relaxed);
  });
  ClassKops k;
  k.fs = static_cast<double>(cls[0].load()) / r.secs / 1000.0;
  k.vm = static_cast<double>(cls[1].load()) / r.secs / 1000.0;
  return k;
}

}  // namespace
}  // namespace vnros

int main() {
  std::printf("# Ablation A8b: unified NR log vs per-subsystem shards (%u threads,\n",
              vnros::kThreads);
  std::printf("# half slow fs-ish writers, half cheap vm-ish writers)\n\n");
  vnros::BenchJson json("ablate_log_sharding");
  json.config("threads", vnros::kThreads);
  json.config("warmup_ms", vnros::bench_warmup_ms());
  json.config("window_ms", vnros::bench_window_ms());
  auto uni = vnros::run_unified();
  auto shd = vnros::run_sharded();
  std::printf("%-10s %-16s %-16s\n", "layout", "fs_kops/s", "vm_kops/s");
  std::printf("%-10s %-16.1f %-16.1f\n", "unified", uni.fs, uni.vm);
  std::printf("%-10s %-16.1f %-16.1f\n", "sharded", shd.fs, shd.vm);
  json.row("unified_fs_kops", 0, uni.fs);
  json.row("unified_vm_kops", 0, uni.vm);
  json.row("sharded_fs_kops", 0, shd.fs);
  json.row("sharded_vm_kops", 0, shd.vm);
  json.write();
  std::printf(
      "\n# interpretation: the vm row is the one to read — cheap ops behind a\n"
      "# shared combiner inherit the fs batches' replay latency; with its own\n"
      "# shard the vm combiner drains its announcers without ever waiting on\n"
      "# an fs apply. The fs rate barely moves: slow replays dominate it in\n"
      "# either layout.\n");
  return 0;
}
