// Ablation A2: flat-combining batch size.
//
// NR "achieves ... write-concurrency through flat combining, which batches
// operations from multiple threads and logs them atomically" (§4.1). This
// sweep caps the combiner's batch size and measures write throughput and
// the realized average batch, showing how much of NR's write path comes
// from batching.
//
// Throughput comes from a timed window with warmup (bench/timed.h); the
// batching columns (avg_batch, combines) are whole-run NR stats, which is
// what they describe — the combiner has no warmup/steady distinction.
//
//   ./build/bench/ablate_fc_batch
#include <cstdio>
#include <string>

#include "bench/bench_json.h"
#include "bench/timed.h"
#include "src/hw/topology.h"
#include "src/nr/node_replicated.h"

namespace vnros {

struct CounterDs {
  struct WriteOp {
    u64 delta = 0;
  };
  struct ReadOp {};
  using Response = u64;
  u64 value = 0;
  Response dispatch(ReadOp) const { return value; }
  Response dispatch_mut(const WriteOp& op) { return value += op.delta; }
};

// Variant whose mutation costs ~a microsecond: widens the combining window,
// so batching is visible even when hardware parallelism is limited.
struct SlowCounterDs {
  struct WriteOp {
    u64 delta = 0;
  };
  struct ReadOp {};
  using Response = u64;
  u64 value = 0;
  Response dispatch(ReadOp) const { return value; }
  Response dispatch_mut(const WriteOp& op) {
    volatile u64 sink = 0;
    for (int i = 0; i < 1500; ++i) {
      sink = sink + 1;
    }
    return value += op.delta + (sink & 0);
  }
};

template <typename Ds>
void run(usize batch_cap, u32 threads, BenchJson& json, const char* series_prefix) {
  Topology topo(threads, threads);  // one replica: pure combining pressure
  NrConfig config;
  config.max_combiner_batch = batch_cap;
  NodeReplicated<Ds> nr(topo, Ds{}, config);

  TimedResult r = timed_run(threads, [&](u32 t, TimedLoop& loop) {
    auto token = nr.register_thread(t);
    while (loop.next()) {
      nr.execute_mut(token, typename Ds::WriteOp{1});
    }
  });
  auto stats = nr.stats_snapshot();
  double avg_batch = stats.combines == 0
                         ? 0.0
                         : static_cast<double>(stats.combined_ops) /
                               static_cast<double>(stats.combines);
  // Combining sessions that batched >1 op (lower bound from the counters).
  u64 multi = stats.combined_ops - stats.combines;
  std::printf("%-10s %-14.0f %-12.3f %-10lu %lu\n",
              batch_cap == 0 ? "unbounded" : std::to_string(batch_cap).c_str(), r.kops(),
              avg_batch, stats.combines, multi);
  // x = cap (0 encodes "unbounded").
  json.row(std::string(series_prefix) + "_kops", static_cast<double>(batch_cap), r.kops());
  json.row(std::string(series_prefix) + "_avg_batch", static_cast<double>(batch_cap),
           avg_batch);
}

}  // namespace vnros

int main() {
  constexpr vnros::u32 kThreads = 8;
  std::printf("# Ablation A2: flat-combining batch-size cap (%u threads)\n", kThreads);
  vnros::BenchJson json("ablate_fc_batch");
  json.config("threads", kThreads);
  json.config("warmup_ms", vnros::bench_warmup_ms());
  json.config("window_ms", vnros::bench_window_ms());
  std::printf("\n== cheap ops (counter increment) ==\n");
  std::printf("%-10s %-14s %-12s %-10s %s\n", "batch_cap", "kops/s", "avg_batch", "combines",
              "batched_extra_ops");
  for (vnros::usize cap : {vnros::usize{1}, vnros::usize{2}, vnros::usize{4}, vnros::usize{8},
                           vnros::usize{0}}) {
    vnros::run<vnros::CounterDs>(cap, kThreads, json, "cheap");
  }
  std::printf("\n== slow ops (~1 us each; wider combining window) ==\n");
  std::printf("%-10s %-14s %-12s %-10s %s\n", "batch_cap", "kops/s", "avg_batch", "combines",
              "batched_extra_ops");
  for (vnros::usize cap : {vnros::usize{1}, vnros::usize{2}, vnros::usize{4}, vnros::usize{8},
                           vnros::usize{0}}) {
    vnros::run<vnros::SlowCounterDs>(cap, kThreads, json, "slow");
  }
  json.write();
  std::printf(
      "\n# interpretation: batching needs overlapping publishers; on hosts with\n"
      "# few hardware threads overlap only arises at preemption points, so the\n"
      "# batched_extra_ops column (not avg_batch) is the evidence to read there.\n"
      "# With real parallelism avg_batch climbs toward the thread count and\n"
      "# batch_cap=1 degenerates NR's write path into a ticket lock.\n");
  return 0;
}
