// Figure 1c: unmap latency vs core count (including TLB shootdown),
// NrOS-Verified vs NrOS-Unverified.
//
//   ./build/bench/fig1c_unmap_latency
#include "bench/map_unmap_common.h"

int main() {
  vnros::run_sweep("Fig. 1c", "unmap", /*do_unmap=*/true, "fig1c_unmap_latency");
  return 0;
}
