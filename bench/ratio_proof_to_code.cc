// §5 evaluation text: "the proof-to-code ratio is 10:1 ... SeL4 and CertiKOS
// are 19:1 and 20:1 ... SeKVM ~10:1 ... Verve 3:1."
//
// The analogue here: specification/verification lines (spec state machines,
// interpretation functions, VC files, the checking framework, contracts)
// versus implementation lines, counted over src/. The interesting paper
// claim this checks is the *library effect* (§5): library-style code (ulib,
// app, net protocols) needs a far lower spec ratio than the layered
// page-table refinement — we print the ratio per module to show exactly
// that gradient.
//
//   ./build/bench/ratio_proof_to_code
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <string>

namespace fs = std::filesystem;
using usize = std::size_t;

namespace {

// Counts non-empty, non-comment-only lines.
usize count_loc(const fs::path& file) {
  std::ifstream in(file);
  std::string line;
  usize n = 0;
  while (std::getline(in, line)) {
    usize i = line.find_first_not_of(" \t");
    if (i == std::string::npos) {
      continue;
    }
    if (line[i] == '/' && i + 1 < line.size() && line[i + 1] == '/') {
      continue;
    }
    ++n;
  }
  return n;
}

// Classifies a source file as specification/verification or implementation.
bool is_spec_file(const fs::path& p) {
  std::string name = p.filename().string();
  std::string dir = p.parent_path().filename().string();
  if (dir == "spec") {
    return true;  // the whole verification framework
  }
  if (name.find("_vcs") != std::string::npos || name == "vcs.h" || name == "self_vcs.h" ||
      name == "all_vcs.cc") {
    return true;  // verification conditions
  }
  if (name == "hl_spec.h" || name == "interp.h" || name == "interp.cc" ||
      name == "contracts.h" || name == "contracts.cc") {
    return true;  // specs, interpretation functions, contract machinery
  }
  return false;
}

}  // namespace

int main() {
  const fs::path root = fs::path(VNROS_SOURCE_DIR) / "src";
  std::map<std::string, std::pair<usize, usize>> per_module;  // module -> (spec, impl)
  usize spec_total = 0, impl_total = 0;

  for (const auto& entry : fs::recursive_directory_iterator(root)) {
    if (!entry.is_regular_file()) {
      continue;
    }
    auto ext = entry.path().extension();
    if (ext != ".h" && ext != ".cc") {
      continue;
    }
    std::string module = entry.path().parent_path().filename().string();
    if (module == "src") {
      module = "(root)";
    }
    usize loc = count_loc(entry.path());
    if (is_spec_file(entry.path())) {
      per_module[module].first += loc;
      spec_total += loc;
    } else {
      per_module[module].second += loc;
      impl_total += loc;
    }
  }

  std::printf("# Proof(spec/check)-to-code ratio, per module and total\n");
  std::printf("# (paper §5: page-table prototype 10:1; seL4 19:1; CertiKOS 20:1;\n");
  std::printf("#  SeKVM ~10:1; Verve 3:1 — and the prediction that *library* code\n");
  std::printf("#  needs much less proof than layered refinements)\n\n");
  std::printf("%-10s %10s %10s %8s\n", "module", "spec_loc", "impl_loc", "ratio");
  for (const auto& [module, counts] : per_module) {
    double ratio = counts.second == 0
                       ? 0.0
                       : static_cast<double>(counts.first) / static_cast<double>(counts.second);
    std::printf("%-10s %10zu %10zu %7.2f:1\n", module.c_str(), counts.first, counts.second,
                ratio);
  }
  std::printf("%-10s %10zu %10zu %7.2f:1\n", "TOTAL", spec_total, impl_total,
              static_cast<double>(spec_total) / static_cast<double>(impl_total));

  std::printf(
      "\n# expected gradient: pt (layered refinement) carries the highest ratio;\n"
      "# ulib/app/net (library-style code) the lowest — the paper's §5 argument\n"
      "# for why full-OS scope is cheaper than extrapolating 10:1 suggests.\n");
  return 0;
}
