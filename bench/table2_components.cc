// Table 2: verified OS components per project.
//
// Same scheme as table1_projects: published rows are static facts from the
// paper, the vnros column is derived live from the VC registry — a component
// row is claimed only while its category has existing, passing checks.
//
//   ./build/bench/table2_components
#include <cstdio>
#include <vector>

#include "src/spec/vc.h"

namespace {

using vnros::usize;
using vnros::VcCategory;

struct Row {
  const char* component;
  // seL4, Verve, Hyperkernel, CertiKOS, SeKVM+VRM (paper's Table 2 entries).
  const char* published[5];
  VcCategory backing;
};

}  // namespace

int main() {
  vnros::VcRegistry registry;
  vnros::register_all_vcs(registry);
  std::printf("# Table 2 reproduction: Verified OS components\n");
  std::printf("# legend: # = yes/checked, (#) = partial, x = no\n\n");
  auto summary = registry.run_all();

  const Row rows[] = {
      {"Scheduler", {"#", "#", "#", "#", "#"}, VcCategory::kScheduler},
      {"Memory management", {"#", "#", "#", "#", "#"}, VcCategory::kMemoryManagement},
      {"Filesystem", {"x", "x", "(#)", "x", "x"}, VcCategory::kFilesystem},
      {"Complex drivers", {"x", "#", "x", "x", "#"}, VcCategory::kDrivers},
      {"Process management", {"#", "x", "#", "#", "#"}, VcCategory::kProcessManagement},
      {"Threads and synchronization", {"x", "#", "x", "#", "x"}, VcCategory::kThreadsSync},
      {"Network stack", {"x", "x", "x", "x", "x"}, VcCategory::kNetworkStack},
      {"System libraries", {"x", "x", "x", "x", "x"}, VcCategory::kSystemLibraries},
  };

  std::printf("%-30s %-6s %-6s %-12s %-9s %-10s %s\n", "", "seL4", "Verve", "Hyperkernel",
              "CertiKOS", "SeKVM+VRM", "vnros");
  usize vnros_count = 0;
  for (const auto& row : rows) {
    bool covered = summary.category_covered(row.backing);
    vnros_count += covered ? 1 : 0;
    std::printf("%-30s %-6s %-6s %-12s %-9s %-10s %s\n", row.component, row.published[0],
                row.published[1], row.published[2], row.published[3], row.published[4],
                covered ? "#" : "x");
  }
  // The paper's motivating application sits on top of all eight rows.
  std::printf("%-30s %-6s %-6s %-12s %-9s %-10s %s\n", "(client application)", "x", "x", "x",
              "x", "x", summary.category_covered(VcCategory::kApplication) ? "#" : "x");

  std::printf("\n# vnros covers %zu/8 component rows — the paper's point is exactly that\n",
              vnros_count);
  std::printf("# no published project covers the full set an application needs (the\n"
              "# bottom rows), which is what this reproduction builds and checks.\n");
  return summary.all_passed() ? 0 : 1;
}
