// Transport ablation for the blockstore RPC plane: raw request/reply
// datagrams (every lost packet is paid for by the CLIENT's timeout+retry
// ladder, a full attempt window each time) vs VTP streams (the TRANSPORT
// retransmits at its RTO, far below the rpc attempt timeout, and the rpc
// layer almost never notices the loss).
//
// One node, one closed-loop BlockStoreClient, identical retry policy on both
// arms, fabric loss swept 0% / 1% / 5%. Time is virtual: one tick = one pump
// (serve_once + both VTP stacks' clock), so the sweep replays bit-identically
// — no wall clock anywhere. Goodput is completed ops per kilotick; latency is
// per-op pump ticks. Emits BENCH_ablate_transport.json. Honors
// VNROS_BENCH_QUICK.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/bench_json.h"
#include "src/app/blockstore.h"
#include "src/base/contracts.h"
#include "src/hw/network.h"
#include "src/kernel/kernel.h"
#include "src/kernel/syscall.h"

namespace vnros {
namespace {

constexpr Port kPort = 9400;

struct Host {
  Kernel kernel;
  SyscallDispatcher disp;
  Pid pid;
  Sys sys;

  explicit Host(Network* net) : kernel(config_of(net)), disp(kernel), pid(spawn(disp)),
                                sys(disp, pid, 0) {}

  static KernelConfig config_of(Network* net) {
    KernelConfig c;
    c.network = net;
    return c;
  }

  static Pid spawn(SyscallDispatcher& disp) {
    Sys boot(disp, kInvalidPid, 0);
    auto p = boot.spawn();
    VNROS_CHECK(p.ok());
    return p.value();
  }
};

struct ArmResult {
  double ops_per_kilotick = 0;
  double p50_ticks = 0;
  double p99_ticks = 0;
  u64 rpc_retries = 0;     // attempts the CLIENT had to repeat
  u64 retransmits = 0;     // segments the TRANSPORT repeated (vtp arm only)
};

double percentile(std::vector<u64>& samples, double p) {
  if (samples.empty()) {
    return 0;
  }
  std::sort(samples.begin(), samples.end());
  usize idx = static_cast<usize>(p * static_cast<double>(samples.size() - 1));
  return static_cast<double>(samples[idx]);
}

ArmResult run_arm(BsTransport transport, u64 loss_ppm, usize ops, usize value_bytes,
                  u64 seed) {
  FabricConfig fabric;
  fabric.loss_ppm = loss_ppm;
  Network net(fabric, seed);
  Host server(&net);
  Host client_host(&net);
  BlockStoreNode node(server.sys, kPort, {}, {}, {}, transport);
  VNROS_CHECK(node.init().ok());
  u64 ticks = 0;
  auto pump = [&] {
    node.serve_once();
    server.kernel.vtp().tick();
    client_host.kernel.vtp().tick();
    ++ticks;
  };
  BlockStoreClient client(client_host.sys, server.kernel.net_addr(), kPort, pump,
                          RetryPolicy{}, transport);
  VNROS_CHECK(client.init().ok());

  std::vector<u8> value(value_bytes, 0xAB);
  std::vector<u64> op_ticks;
  op_ticks.reserve(ops);
  for (usize i = 0; i < ops; ++i) {
    // Put/get pairs over a 64-key universe: the odd op reads back the key
    // the even op just wrote, so every get hits.
    std::string key = "k" + std::to_string((i / 2) % 64);
    u64 start = ticks;
    if (i % 2 == 0) {
      VNROS_CHECK(client.put(key, value).ok());
    } else {
      VNROS_CHECK(client.get(key).ok());
    }
    op_ticks.push_back(ticks - start);
  }

  ArmResult res;
  res.ops_per_kilotick =
      ticks > 0 ? static_cast<double>(ops) * 1000.0 / static_cast<double>(ticks) : 0;
  res.p50_ticks = percentile(op_ticks, 0.50);
  res.p99_ticks = percentile(op_ticks, 0.99);
  res.rpc_retries = client.retries();
  res.retransmits =
      server.kernel.vtp().stats().retransmits + client_host.kernel.vtp().stats().retransmits;
  return res;
}

}  // namespace
}  // namespace vnros

int main() {
  using namespace vnros;
  const bool quick = std::getenv("VNROS_BENCH_QUICK") != nullptr;
  const usize ops = quick ? 400 : 2'000;
  const usize value_bytes = 1024;
  const std::vector<u64> loss_sweep = {0, 10'000, 50'000};  // 0%, 1%, 5%

  BenchJson json("ablate_transport");
  json.config("ops", static_cast<unsigned long long>(ops));
  json.config("value_bytes", static_cast<unsigned long long>(value_bytes));
  json.config("workload", "alternating put/get over 64 keys, closed loop");
  json.config("quick", quick);

  std::printf("# ablate_transport: datagram timeout+retry vs VTP stream retransmit\n");
  std::printf("# %6s | %12s %9s %9s %8s | %12s %9s %9s %8s %10s\n", "loss%", "dgram op/kt",
              "p50", "p99", "retries", "vtp op/kt", "p50", "p99", "retries", "rexmits");
  for (u64 loss_ppm : loss_sweep) {
    ArmResult dgram = run_arm(BsTransport::kDatagram, loss_ppm, ops, value_bytes,
                              /*seed=*/0xAB1A7E + loss_ppm);
    ArmResult vtp = run_arm(BsTransport::kVtp, loss_ppm, ops, value_bytes,
                            /*seed=*/0xAB1A7E + loss_ppm);
    double loss_pct = static_cast<double>(loss_ppm) / 10'000.0;
    std::printf("  %6.1f | %12.1f %9.1f %9.1f %8llu | %12.1f %9.1f %9.1f %8llu %10llu\n",
                loss_pct, dgram.ops_per_kilotick, dgram.p50_ticks, dgram.p99_ticks,
                static_cast<unsigned long long>(dgram.rpc_retries), vtp.ops_per_kilotick,
                vtp.p50_ticks, vtp.p99_ticks,
                static_cast<unsigned long long>(vtp.rpc_retries),
                static_cast<unsigned long long>(vtp.retransmits));
    json.row("datagram_ops_per_kilotick", loss_pct, dgram.ops_per_kilotick);
    json.row("vtp_ops_per_kilotick", loss_pct, vtp.ops_per_kilotick);
    json.row("datagram_p99_ticks", loss_pct, dgram.p99_ticks);
    json.row("vtp_p99_ticks", loss_pct, vtp.p99_ticks);
    json.row("datagram_rpc_retries", loss_pct, static_cast<double>(dgram.rpc_retries));
    json.row("vtp_rpc_retries", loss_pct, static_cast<double>(vtp.rpc_retries));
    json.row("vtp_retransmits", loss_pct, static_cast<double>(vtp.retransmits));
    json.row("vtp_over_datagram_goodput", loss_pct,
             dgram.ops_per_kilotick > 0 ? vtp.ops_per_kilotick / dgram.ops_per_kilotick : 0);
  }
  json.write();
  return 0;
}
