// Ablation A4: what would runtime contract checking cost if it were left on?
//
// Verus erases all ghost code at compile time, so verification is free at
// run time — that is why Figure 1b/c's verified/unverified curves coincide.
// vnros' executable contracts can be left enabled; this google-benchmark
// binary quantifies exactly what that would cost on the map/unmap/resolve
// hot paths, i.e. the runtime price a *dynamic* checking deployment would
// pay and a static one does not.
//
//   ./build/bench/ablate_contract_overhead
#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "src/base/contracts.h"
#include "src/pt/frame_source.h"
#include "src/pt/page_table.h"

namespace vnros {
namespace {

struct Fixture {
  PhysMem mem{1u << 14};
  SimpleFrameSource frames{mem, (1u << 14) - 512};
  PageTable pt;

  Fixture()
      : pt([this] {
          auto r = PageTable::create(mem, frames);
          VNROS_CHECK(r.ok());
          return std::move(r.value());
        }()) {}
};

void BM_MapUnmap(benchmark::State& state) {
  ScopedContracts contracts(state.range(0) != 0);
  Fixture f;
  u64 i = 0;
  for (auto _ : state) {
    VAddr va{(i % 4096) * kPageSize};
    benchmark::DoNotOptimize(f.pt.map_frame(va, PAddr::from_frame(8 + i % 1000), kPageSize,
                                            Perms::rw()));
    benchmark::DoNotOptimize(f.pt.unmap(va));
    ++i;
  }
  state.SetLabel(state.range(0) != 0 ? "contracts=on" : "contracts=off");
}
BENCHMARK(BM_MapUnmap)->Arg(0)->Arg(1);

void BM_Resolve(benchmark::State& state) {
  ScopedContracts contracts(state.range(0) != 0);
  Fixture f;
  for (u64 i = 0; i < 64; ++i) {
    VNROS_CHECK(
        f.pt.map_frame(VAddr{i * kPageSize}, PAddr::from_frame(8 + i), kPageSize, Perms::rw())
            .ok());
  }
  u64 i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.pt.resolve(VAddr{(i % 64) * kPageSize + (i % kPageSize)}));
    ++i;
  }
  state.SetLabel(state.range(0) != 0 ? "contracts=on" : "contracts=off");
}
BENCHMARK(BM_Resolve)->Arg(0)->Arg(1);

void BM_ContractCheckItself(benchmark::State& state) {
  ScopedContracts contracts(state.range(0) != 0);
  u64 x = 1;
  for (auto _ : state) {
    VNROS_REQUIRES(x != 0);
    benchmark::DoNotOptimize(x);
  }
  state.SetLabel(state.range(0) != 0 ? "contracts=on" : "contracts=off");
}
BENCHMARK(BM_ContractCheckItself)->Arg(0)->Arg(1);

}  // namespace
}  // namespace vnros

// Custom main so the run also lands in BENCH_ablate_contract_overhead.json
// (google-benchmark's own JSON schema), matching the BENCH_<name>.json
// convention of the other binaries. The flags are injected rather than a
// custom file reporter passed, because RunSpecifiedBenchmarks(display, file)
// refuses a file reporter unless --benchmark_out was given on the CLI.
int main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  std::string out_flag = "--benchmark_out=BENCH_ablate_contract_overhead.json";
  std::string fmt_flag = "--benchmark_out_format=json";
  bool user_out = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]).rfind("--benchmark_out=", 0) == 0) {
      user_out = true;
    }
  }
  if (!user_out) {
    args.push_back(out_flag.data());
    args.push_back(fmt_flag.data());
  }
  int ac = static_cast<int>(args.size());
  benchmark::Initialize(&ac, args.data());
  if (benchmark::ReportUnrecognizedArguments(ac, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
