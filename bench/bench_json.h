// Tiny JSON emitter for the bench binaries: each figure/ablation writes a
// machine-readable BENCH_<name>.json next to its stdout table so sweeps can
// be diffed across commits without re-parsing the human-formatted output.
//
// Shape:
//   {
//     "name": "fig1b_map_latency",
//     "config": { "ops_per_thread": 1000, ... },
//     "series": { "verified_us_per_op": [[1, 2.53], [2, 3.10], ...], ... },
//     "obs": { "counters": {...}, "histograms": {...}, "spans": {...} }
//   }
// Series rows are (x, y) pairs — typically (core count, median latency).
// The "obs" section is the process-global ObsRegistry snapshot at write()
// time, so every bench run ships its kernel/app counters alongside the
// measured series (empty shells when built with VNROS_METRICS=OFF).
#ifndef VNROS_BENCH_BENCH_JSON_H_
#define VNROS_BENCH_BENCH_JSON_H_

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "src/obs/registry.h"

namespace vnros {

class BenchJson {
 public:
  explicit BenchJson(std::string name) : name_(std::move(name)) {}

  void config(const std::string& key, double value) { config_num(key, format_double(value)); }
  void config(const std::string& key, unsigned long long value) {
    config_num(key, std::to_string(value));
  }
  void config(const std::string& key, unsigned long value) {
    config_num(key, std::to_string(value));
  }
  void config(const std::string& key, unsigned value) { config_num(key, std::to_string(value)); }
  void config(const std::string& key, int value) { config_num(key, std::to_string(value)); }
  void config(const std::string& key, bool value) { config_num(key, value ? "true" : "false"); }
  void config(const std::string& key, const std::string& value) {
    config_num(key, "\"" + escape(value) + "\"");
  }
  void config(const std::string& key, const char* value) { config(key, std::string(value)); }

  // Appends an (x, y) point to `series` (created on first use, insertion
  // order preserved).
  void row(const std::string& series, double x, double y) {
    for (auto& [s, rows] : series_) {
      if (s == series) {
        rows.emplace_back(x, y);
        return;
      }
    }
    series_.push_back({series, {{x, y}}});
  }

  // Writes BENCH_<name>.json in the working directory.
  void write() const {
    std::string path = "BENCH_" + name_ + ".json";
    std::ofstream out(path);
    if (!out) {
      std::fprintf(stderr, "bench_json: cannot write %s\n", path.c_str());
      return;
    }
    out << "{\n  \"name\": \"" << escape(name_) << "\",\n  \"config\": {";
    for (size_t i = 0; i < config_.size(); ++i) {
      out << (i ? ",\n    " : "\n    ") << "\"" << escape(config_[i].first)
          << "\": " << config_[i].second;
    }
    out << (config_.empty() ? "" : "\n  ") << "},\n  \"series\": {";
    for (size_t s = 0; s < series_.size(); ++s) {
      out << (s ? ",\n    " : "\n    ") << "\"" << escape(series_[s].first) << "\": [";
      const auto& rows = series_[s].second;
      for (size_t r = 0; r < rows.size(); ++r) {
        out << (r ? ", " : "") << "[" << format_double(rows[r].first) << ", "
            << format_double(rows[r].second) << "]";
      }
      out << "]";
    }
    out << (series_.empty() ? "" : "\n  ") << "},\n  \"obs\": " << ObsRegistry::global().json()
        << "\n}\n";
    std::printf("# wrote %s\n", path.c_str());
  }

 private:
  void config_num(const std::string& key, std::string json_value) {
    for (auto& [k, v] : config_) {
      if (k == key) {
        v = std::move(json_value);
        return;
      }
    }
    config_.emplace_back(key, std::move(json_value));
  }

  static std::string format_double(double v) {
    std::ostringstream oss;
    oss << v;
    std::string s = oss.str();
    // JSON has no inf/nan: clamp to null-ish sentinel.
    if (s.find("inf") != std::string::npos || s.find("nan") != std::string::npos) {
      return "null";
    }
    return s;
  }

  static std::string escape(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
      if (c == '"' || c == '\\') {
        out.push_back('\\');
      }
      out.push_back(c);
    }
    return out;
  }

  std::string name_;
  std::vector<std::pair<std::string, std::string>> config_;
  std::vector<std::pair<std::string, std::vector<std::pair<double, double>>>> series_;
};

}  // namespace vnros

#endif  // VNROS_BENCH_BENCH_JSON_H_
