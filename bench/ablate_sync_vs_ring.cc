// Ablation: synchronous per-call syscalls vs the SysRing submission/
// completion queues on a UDP request/reply server (DESIGN.md §12,
// EXPERIMENTS.md A10).
//
// Both arms run the SAME tiny put/get file server — the request handler
// executes identical Sys fs calls — and the same closed-loop clients. The
// only difference is the serve path:
//
//   sync: one udp_recvfrom poll per tick. One boundary crossing can yield at
//         most one request, so service capacity is pinned at 1 op/tick no
//         matter how deep the socket queue gets.
//   ring: a worker pool of parked recv SQEs drained once per tick. One
//         ring_wait reaps every completed receive, so a deep queue is served
//         as a batch — capacity scales to the pool width.
//
// Time is virtual (one tick = one serve pass + one step per client), so the
// sweep replays bit-identically. At 1-2 clients the arms tie (the queue
// never deepens); from 8 clients up the ring arm's goodput must be >= the
// sync arm's — that is the acceptance gate this JSON feeds.
// Emits BENCH_ablate_sync_vs_ring.json. Honors VNROS_BENCH_QUICK.
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_json.h"
#include "src/base/contracts.h"
#include "src/base/rng.h"
#include "src/base/serde.h"
#include "src/hw/network.h"
#include "src/kernel/kernel.h"
#include "src/kernel/ring.h"
#include "src/kernel/syscall.h"

namespace vnros {
namespace {

constexpr Port kPort = 9400;
constexpr usize kWorkers = 4;  // ring arm: parked recv SQEs (mirrors BlockStoreNode)

struct Host {
  Kernel kernel;
  SyscallDispatcher disp;
  Pid pid;
  Sys sys;

  explicit Host(Network* net) : kernel(config_of(net)), disp(kernel), pid(spawn(disp)),
                                sys(disp, pid, 0) {}

  static KernelConfig config_of(Network* net) {
    KernelConfig c;
    c.network = net;
    return c;
  }

  static Pid spawn(SyscallDispatcher& disp) {
    Sys boot(disp, kInvalidPid, 0);
    auto p = boot.spawn();
    VNROS_CHECK(p.ok());
    return p.value();
  }
};

enum class MiniOp : u8 { kPut = 1, kGet = 2 };

// The shared request handler: identical Sys fs work in both arms.
std::vector<u8> handle_request(Sys& sys, std::span<const u8> request) {
  Reader r(request);
  auto op = r.get_u8();
  auto req_id = r.get_u64();
  auto key = r.get_string();
  Writer reply;
  reply.put_u64(req_id.value_or(0));
  if (!op || !req_id || !key) {
    reply.put_u32(static_cast<u32>(ErrorCode::kInvalidArgument));
    reply.put_bytes(std::span<const u8>());
    return reply.take();
  }
  std::string path = "/kv_" + *key;
  ErrorCode err = ErrorCode::kInvalidArgument;
  std::vector<u8> out;
  switch (static_cast<MiniOp>(*op)) {
    case MiniOp::kPut: {
      auto value = r.get_bytes();
      if (value) {
        auto fd = sys.open(path, kOpenCreate | kOpenTrunc);
        if (fd.ok()) {
          auto wr = sys.write(fd.value(), *value);
          err = wr.ok() ? ErrorCode::kOk : wr.error();
          (void)sys.close(fd.value());
        } else {
          err = fd.error();
        }
      }
      break;
    }
    case MiniOp::kGet: {
      auto fd = sys.open(path, 0);
      if (fd.ok()) {
        auto rd = sys.read(fd.value(), 4096);
        if (rd.ok()) {
          err = ErrorCode::kOk;
          out = std::move(rd.value());
        } else {
          err = rd.error();
        }
        (void)sys.close(fd.value());
      } else {
        err = fd.error();
      }
      break;
    }
  }
  reply.put_u32(static_cast<u32>(err));
  reply.put_bytes(out);
  return reply.take();
}

// The sync arm: the pre-ring serve shape — one recvfrom poll per tick.
class SyncServer {
 public:
  explicit SyncServer(Sys& sys) : sys_(sys) {
    auto sock = sys_.udp_socket();
    VNROS_CHECK(sock.ok());
    sock_ = sock.value();
    VNROS_CHECK(sys_.udp_bind(sock_, kPort).ok());
  }

  usize serve_tick() {
    auto dg = sys_.udp_recvfrom(sock_);
    if (!dg.ok()) {
      return 0;
    }
    auto reply = handle_request(sys_, dg.value().payload);
    (void)sys_.udp_sendto(sock_, dg.value().src_addr, dg.value().src_port, reply);
    return 1;
  }

 private:
  Sys& sys_;
  Fd sock_ = kInvalidFd;
};

// The ring arm: BlockStoreNode's serve shape — a parked worker pool drained
// as a batch, replies submitted back through the ring.
class RingServer {
 public:
  explicit RingServer(Sys& sys) : sys_(sys) {
    auto sock = sys_.udp_socket();
    VNROS_CHECK(sock.ok());
    sock_ = sock.value();
    VNROS_CHECK(sys_.udp_bind(sock_, kPort).ok());
    auto ring = sys_.ring_setup(16, 64);
    VNROS_CHECK(ring.ok());
    ring_ = ring.value();
    arm();
  }

  usize serve_tick() {
    auto cqes = sys_.ring_wait(ring_, 0, static_cast<u32>(2 * kWorkers + 8));
    if (!cqes.ok()) {
      return 0;
    }
    usize served = 0;
    for (RingCqe& cqe : cqes.value()) {
      if ((cqe.user_data & kReplyTag) != 0) {
        continue;
      }
      if (recvs_ > 0) {
        --recvs_;
      }
      if (static_cast<ErrorCode>(cqe.err) != ErrorCode::kOk) {
        continue;
      }
      Reader dg(cqe.payload);
      auto src = dg.get_u32();
      auto sport = dg.get_u16();
      auto payload = dg.get_bytes();
      if (!src || !sport || !payload) {
        continue;
      }
      auto reply = handle_request(sys_, *payload);
      RingSqe sqe{kReplyTag | next_ud_++, static_cast<u32>(SysNr::kUdpSendTo),
                  ring_args::udp_sendto(sock_, *src, *sport, reply)};
      auto acc = sys_.ring_submit(ring_, std::span<const RingSqe>(&sqe, 1));
      if (!acc.ok() || acc.value() != 1) {
        (void)sys_.udp_sendto(sock_, *src, *sport, reply);
      }
      ++served;
    }
    arm();
    return served;
  }

 private:
  static constexpr u64 kReplyTag = 1ull << 63;

  void arm() {
    while (recvs_ < kWorkers) {
      RingSqe sqe{static_cast<u64>(recvs_), static_cast<u32>(SysNr::kUdpRecvFrom),
                  ring_args::udp_recvfrom(sock_)};
      auto acc = sys_.ring_submit(ring_, std::span<const RingSqe>(&sqe, 1));
      if (!acc.ok() || acc.value() != 1) {
        break;
      }
      ++recvs_;
    }
  }

  Sys& sys_;
  Fd sock_ = kInvalidFd;
  u32 ring_ = 0;
  usize recvs_ = 0;
  u64 next_ud_ = 0;
};

// One closed-loop client: send an op, await the reply (sync recvfrom on its
// own socket — the ablation isolates the SERVER's serve path), repeat.
class Client {
 public:
  Client(Sys& sys, NetAddr server, usize keys, usize value_bytes, u64 seed)
      : sys_(sys), server_(server), keys_(keys), rng_(seed) {
    auto sock = sys_.udp_socket();
    VNROS_CHECK(sock.ok());
    sock_ = sock.value();
    value_.resize(value_bytes);
    for (auto& b : value_) {
      b = static_cast<u8>(rng_.next_u64());
    }
  }

  void step() {
    if (!waiting_) {
      send();
      return;
    }
    auto reply = sys_.udp_recvfrom(sock_);
    if (!reply.ok()) {
      return;
    }
    Reader r(reply.value().payload);
    auto rid = r.get_u64();
    if (!rid || *rid != req_id_) {
      return;
    }
    ++completed;
    waiting_ = false;
  }

  u64 completed = 0;

 private:
  void send() {
    req_id_ = next_req_id_++;
    Writer w;
    bool put = rng_.chance(1, 2);
    w.put_u8(static_cast<u8>(put ? MiniOp::kPut : MiniOp::kGet));
    w.put_u64(req_id_);
    w.put_string("k" + std::to_string(rng_.next_below(keys_)));
    if (put) {
      w.put_bytes(value_);
    }
    (void)sys_.udp_sendto(sock_, server_, kPort, w.bytes());
    waiting_ = true;
  }

  Sys& sys_;
  NetAddr server_;
  usize keys_;
  Rng rng_;
  Fd sock_ = kInvalidFd;
  std::vector<u8> value_;
  u64 next_req_id_ = 1;
  u64 req_id_ = 0;
  bool waiting_ = false;
};

struct ArmResult {
  double ops_per_kilotick = 0;
};

template <typename Server>
ArmResult run_arm(usize num_clients, usize ticks, usize warmup) {
  Network net;
  Host server_host(&net);
  Server server(server_host.sys);
  Host client_host(&net);
  std::vector<std::unique_ptr<Client>> clients;
  for (usize c = 0; c < num_clients; ++c) {
    clients.push_back(std::make_unique<Client>(client_host.sys, server_host.kernel.net_addr(),
                                               /*keys=*/32, /*value_bytes=*/64,
                                               0xAB1E5EEDull * (c + 1) + 3));
  }
  auto tick = [&] {
    server.serve_tick();
    for (auto& c : clients) {
      c->step();
    }
  };
  for (usize t = 0; t < warmup; ++t) {
    tick();
  }
  for (auto& c : clients) {
    c->completed = 0;
  }
  for (usize t = 0; t < ticks; ++t) {
    tick();
  }
  u64 completed = 0;
  for (auto& c : clients) {
    completed += c->completed;
  }
  ArmResult res;
  res.ops_per_kilotick = static_cast<double>(completed) * 1000.0 / static_cast<double>(ticks);
  return res;
}

}  // namespace
}  // namespace vnros

int main() {
  using namespace vnros;
  const bool quick = std::getenv("VNROS_BENCH_QUICK") != nullptr;
  usize ticks = quick ? 4'000 : 20'000;
  usize warmup = quick ? 400 : 2'000;
  std::vector<usize> client_counts =
      quick ? std::vector<usize>{2, 8, 32} : std::vector<usize>{1, 2, 4, 8, 16, 32, 64};

  BenchJson json("ablate_sync_vs_ring");
  json.config("ticks", static_cast<unsigned long long>(ticks));
  json.config("warmup_ticks", static_cast<unsigned long long>(warmup));
  json.config("ring_workers", static_cast<unsigned long long>(kWorkers));
  json.config("quick", quick);

  std::printf("# ablate_sync_vs_ring: per-call syscalls vs SysRing worker pool\n");
  std::printf("# %8s %14s %14s %8s\n", "clients", "sync ops/kt", "ring ops/kt", "ratio");
  for (usize n : client_counts) {
    ArmResult sync_arm = run_arm<SyncServer>(n, ticks, warmup);
    ArmResult ring_arm = run_arm<RingServer>(n, ticks, warmup);
    double ratio = sync_arm.ops_per_kilotick > 0
                       ? ring_arm.ops_per_kilotick / sync_arm.ops_per_kilotick
                       : 0;
    std::printf("  %8zu %14.1f %14.1f %8.2f\n", n, sync_arm.ops_per_kilotick,
                ring_arm.ops_per_kilotick, ratio);
    double x = static_cast<double>(n);
    json.row("sync_ops_per_kilotick", x, sync_arm.ops_per_kilotick);
    json.row("ring_ops_per_kilotick", x, ring_arm.ops_per_kilotick);
    json.row("ring_over_sync", x, ratio);
  }
  json.write();
  return 0;
}
