// Table 1: comparison of OS verification projects.
//
// The five published systems' rows are the paper's (static facts); the vnros
// column is *live*: each property is claimed only if the corresponding
// verification-condition categories exist and pass right now. Rerunning this
// binary re-derives the table from the code.
//
//   ./build/bench/table1_projects
#include <cstdio>
#include <string>
#include <vector>

#include "src/spec/vc.h"

namespace {

using vnros::VcCategory;
using vnros::VcRunSummary;

struct Row {
  const char* property;
  // seL4, Verve, Hyperkernel, CertiKOS, SeKVM+VRM (paper's Table 1 entries).
  const char* published[5];
  // Which live VC categories back the vnros cell (all must be covered).
  std::vector<VcCategory> backing;
};

const char* vnros_cell(const VcRunSummary& summary, const std::vector<VcCategory>& backing) {
  if (backing.empty()) {
    return "x";  // property out of scope (the paper defers security too)
  }
  for (VcCategory c : backing) {
    if (!summary.category_covered(c)) {
      return "x";
    }
  }
  return "#";  // checked (executable analogue of "verified")
}

}  // namespace

int main() {
  vnros::VcRegistry registry;
  vnros::register_all_vcs(registry);
  std::printf("# Table 1 reproduction: Comparison of OS verification projects\n");
  std::printf("# legend: # = yes/checked, (#) = partial, x = no\n");
  std::printf("# (vnros column derived live from %zu verification conditions)\n\n",
              registry.size());
  auto summary = registry.run_all();

  const Row rows[] = {
      {"Kernel memory safety",
       {"#", "#", "#", "#", "#"},
       {VcCategory::kMemorySafety}},
      {"Specification refinement",
       {"#", "#", "#", "#", "#"},
       {VcCategory::kRefinement}},
      {"Security properties",
       {"#", "x", "#", "(#)", "#"},
       {}},  // out of scope here, exactly as the paper defers it (§1)
      {"Multi-processor support",
       {"x", "x", "x", "#", "#"},
       {VcCategory::kConcurrency}},
      {"Process-centric spec",
       {"x", "x", "x", "x", "x"},
       {VcCategory::kRefinement, VcCategory::kProcessManagement,
        VcCategory::kMemoryManagement}},
  };

  std::printf("%-26s %-6s %-6s %-12s %-9s %-10s %s\n", "", "seL4", "Verve", "Hyperkernel",
              "CertiKOS", "SeKVM+VRM", "vnros");
  for (const auto& row : rows) {
    std::printf("%-26s %-6s %-6s %-12s %-9s %-10s %s\n", row.property, row.published[0],
                row.published[1], row.published[2], row.published[3], row.published[4],
                vnros_cell(summary, row.backing));
  }

  std::printf(
      "\n# The paper's thesis row is the last one: none of the published projects\n"
      "# give applications a process-centric spec; the vnros cell is backed by the\n"
      "# live syscall-contract, process and memory-management checks.\n");
  std::printf("# note: 'checked' here = bounded exhaustive + property checking, the\n"
              "# C++ substitute for static proof (see DESIGN.md substitution table).\n");
  return summary.all_passed() ? 0 : 1;
}
