// Figure 1b: map latency vs core count, NrOS-Verified vs NrOS-Unverified.
//
//   ./build/bench/fig1b_map_latency
#include "bench/map_unmap_common.h"

int main() {
  vnros::run_sweep("Fig. 1b", "map", /*do_unmap=*/false, "fig1b_map_latency");
  return 0;
}
