// Ablation A6: what does the observability substrate cost on the hot paths?
//
// The obs acceptance bar (DESIGN.md §8): instrumented hot paths slow down by
// under 5% with VNROS_METRICS=ON versus OFF, and a disarmed span site costs
// at most one relaxed load. This binary measures the instrumented paths —
// NR dispatch (counters + batch histogram + combine span) and page-table
// map_range/unmap_range (range-op spans) — plus the obs primitives
// themselves. Run it from both build trees and diff the numbers:
//
//   ./build/bench/ablate_obs_overhead            # VNROS_METRICS=ON
//   ./build-nometrics/bench/ablate_obs_overhead  # VNROS_METRICS=OFF
//
// VNROS_BENCH_QUICK=1 shrinks the op counts (CI smoke mode).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "bench/bench_json.h"

#include "src/base/contracts.h"
#include "src/kernel/frame_alloc.h"
#include "src/nr/node_replicated.h"
#include "src/obs/registry.h"
#include "src/pt/address_space.h"
#include "src/pt/frame_source.h"
#include "src/pt/page_table.h"

namespace vnros {
namespace {

bool quick_mode() {
  const char* q = std::getenv("VNROS_BENCH_QUICK");
  return q != nullptr && q[0] != '\0' && q[0] != '0';
}

// Median of `repeats` timed runs of `body(ops)`, in ns per op.
template <typename Body>
double median_ns_per_op(u64 ops, int repeats, Body&& body) {
  std::vector<double> runs;
  runs.reserve(static_cast<usize>(repeats));
  for (int r = 0; r < repeats; ++r) {
    auto start = std::chrono::steady_clock::now();
    body(ops);
    double secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
    runs.push_back(secs * 1e9 / static_cast<double>(ops));
  }
  std::sort(runs.begin(), runs.end());
  return runs[runs.size() / 2];
}

// NR dispatch: one map op through the replicated page table. The combine path
// carries c_combines_/c_combined_ops_ counters, the batch-size histogram, and
// the "nr/combine" span site.
double bench_nr_dispatch(u64 ops, int repeats) {
  Topology topo(4, 2);
  PhysMem mem(1u << 15);
  FrameAllocator frames(mem, topo);
  AddressSpace<PageTable, NodeReplicated> as(mem, frames, topo);
  auto token = as.register_thread(0);
  u64 i = 0;
  return median_ns_per_op(ops, repeats, [&](u64 n) {
    for (u64 k = 0; k < n; ++k, ++i) {
      VAddr va{u64{2} << 34 | ((i % 4096) * kPageSize)};
      (void)as.map(token, va, PAddr::from_frame((i % 1000) + 8), kPageSize, Perms::rw());
      (void)as.unmap(token, va);
    }
  });
}

// Page-table range ops: map_range + unmap_range of a 64-page batch, per page.
// Both entry points open a span site ("pt/map_range"/"pt/unmap_range").
double bench_range_ops(u64 batches, int repeats) {
  constexpr u64 kPages = 64;
  PhysMem mem(1u << 14);
  SimpleFrameSource frames(mem, (1u << 14) - 512);
  auto made = PageTable::create(mem, frames);
  VNROS_CHECK(made.ok());
  PageTable pt = std::move(made.value());
  double ns_per_batch = median_ns_per_op(batches, repeats, [&](u64 n) {
    for (u64 k = 0; k < n; ++k) {
      VAddr base{u64{3} << 34};
      (void)pt.map_range(base, PAddr::from_frame(8), kPages, Perms::rw());
      (void)pt.unmap_range(base, kPages);
    }
  });
  return ns_per_batch / static_cast<double>(kPages);
}

}  // namespace
}  // namespace vnros

int main() {
  using namespace vnros;
  const bool quick = quick_mode();
  const u64 scale = quick ? 1 : 10;
  const int repeats = quick ? 3 : 7;

  std::printf("# Ablation A6: observability substrate overhead (metrics %s)\n",
              kMetricsEnabled ? "ON" : "OFF");
  BenchJson json("ablate_obs_overhead");
  json.config("metrics_enabled", kMetricsEnabled);
  json.config("quick", quick);

  double nr = bench_nr_dispatch(2000 * scale, repeats);
  double range = bench_range_ops(200 * scale, repeats);

  auto& reg = ObsRegistry::global();
  Counter& counter = reg.counter("obsbench/counter");
  Histogram& hist = reg.histogram("obsbench/hist");
  const u32 site = reg.tracer().intern_site("obsbench/span");

  double counter_ns = median_ns_per_op(200000 * scale, repeats, [&](u64 n) {
    for (u64 k = 0; k < n; ++k) {
      counter.add(1);
    }
  });
  double hist_ns = median_ns_per_op(200000 * scale, repeats, [&](u64 n) {
    for (u64 k = 0; k < n; ++k) {
      hist.record(k & 0xFFFF);
    }
  });
  reg.tracer().set_enabled(false);
  double span_disarmed_ns = median_ns_per_op(200000 * scale, repeats, [&](u64 n) {
    for (u64 k = 0; k < n; ++k) {
      SpanScope span(reg.tracer(), site);
    }
  });
  reg.tracer().set_enabled(true);
  double span_armed_ns = median_ns_per_op(100000 * scale, repeats, [&](u64 n) {
    for (u64 k = 0; k < n; ++k) {
      SpanScope span(reg.tracer(), site);
    }
  });
  reg.tracer().set_enabled(false);

  std::printf("%-28s %12s\n", "path", "ns/op");
  std::printf("%-28s %12.1f\n", "nr_dispatch_map_unmap", nr);
  std::printf("%-28s %12.2f\n", "range_ops_per_page", range);
  std::printf("%-28s %12.2f\n", "counter_add", counter_ns);
  std::printf("%-28s %12.2f\n", "histogram_record", hist_ns);
  std::printf("%-28s %12.2f\n", "span_disarmed", span_disarmed_ns);
  std::printf("%-28s %12.2f\n", "span_armed", span_armed_ns);

  json.row("nr_dispatch_ns", 0, nr);
  json.row("range_ops_ns_per_page", 0, range);
  json.row("counter_add_ns", 0, counter_ns);
  json.row("histogram_record_ns", 0, hist_ns);
  json.row("span_disarmed_ns", 0, span_disarmed_ns);
  json.row("span_armed_ns", 0, span_armed_ns);
  json.write();
  return 0;
}
