// Shared harness for the Figure 1b/1c reproductions: drives the map/unmap
// syscall path of the NrOS design (NR-replicated address space over the
// simulated hardware) for the verified and the unverified page-table
// implementations, sweeping the number of cores.
//
// Faithfulness notes (also in EXPERIMENTS.md):
//   - "verified" and "unverified" are two independently written page tables;
//     contracts in the verified one are compiled to a disabled runtime flag,
//     mirroring Verus erasing ghost code — so the *shape* claim of Fig. 1b/c
//     (verified ≈ unverified at every core count) is exactly what is tested;
//   - absolute numbers depend on the host (this is a simulator on shared
//     hardware, not a 28-core bare-metal testbed); the paper's claim under
//     reproduction is the relationship between the two curves, not the axis.
#ifndef VNROS_BENCH_MAP_UNMAP_COMMON_H_
#define VNROS_BENCH_MAP_UNMAP_COMMON_H_

#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench/bench_json.h"
#include "src/hw/tlb.h"
#include "src/kernel/frame_alloc.h"
#include "src/pt/address_space.h"
#include "src/pt/page_table.h"
#include "src/pt/unverified.h"

namespace vnros {

struct SweepConfig {
  u32 max_cores = 28;          // paper sweeps 1..28
  u32 cores_per_node = 14;     // two NUMA nodes, as a 2-socket testbed
  u64 ops_per_thread = 1000;   // maps (or unmaps) per thread per run
  u64 phys_frames = 1u << 15;  // 128 MiB simulated memory
  u32 repetitions = 5;         // median filters host-scheduler noise
  u64 range_pages = 512;       // batch size for the range-op ablation
  usize tlb_batch_flush_threshold = 64;  // shootdown_batch full-flush point
};

// Mean per-op latency (microseconds) of `threads` concurrent mappers.
// If `do_unmap`, the regions are pre-mapped and the timed phase unmaps
// (including TLB shootdowns, as the kernel's unmap path must).
template <typename Table>
double run_map_workload(u32 threads, const SweepConfig& config, bool do_unmap) {
  Topology topo(config.max_cores, config.cores_per_node);
  PhysMem mem(config.phys_frames);
  FrameAllocator frames(mem, topo);
  TlbSystem tlbs(topo);
  AddressSpace<Table> as(mem, frames, topo, &tlbs);

  // Each thread owns a disjoint VA window so every map succeeds.
  auto va_of = [&](u32 thread, u64 i) {
    return VAddr{(u64{thread} + 1) << 34 | (i * kPageSize)};
  };

  if (do_unmap) {
    auto tok = as.register_thread(0);
    for (u32 t = 0; t < threads; ++t) {
      for (u64 i = 0; i < config.ops_per_thread; ++i) {
        ErrorCode err = as.map(tok, va_of(t, i),
                               PAddr::from_frame((u64{t} * config.ops_per_thread + i) % (config.phys_frames - 1)),
                               kPageSize, Perms::rw());
        VNROS_CHECK(err == ErrorCode::kOk);
      }
    }
  }

  std::vector<std::thread> workers;
  workers.reserve(threads);
  auto start = std::chrono::steady_clock::now();
  for (u32 t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      auto token = as.register_thread(t % config.max_cores);
      for (u64 i = 0; i < config.ops_per_thread; ++i) {
        if (do_unmap) {
          ErrorCode err = as.unmap(token, va_of(t, i));
          VNROS_CHECK(err == ErrorCode::kOk);
        } else {
          ErrorCode err = as.map(token, va_of(t, i),
                                 PAddr::from_frame((u64{t} * config.ops_per_thread + i) %
                                                   (config.phys_frames - 1)),
                                 kPageSize, Perms::rw());
          VNROS_CHECK(err == ErrorCode::kOk);
        }
      }
    });
  }
  for (auto& w : workers) {
    w.join();
  }
  auto end = std::chrono::steady_clock::now();
  double total_us = std::chrono::duration<double, std::micro>(end - start).count();
  // Threads run concurrently, so wall time / per-thread ops is the mean
  // latency one thread experiences per operation.
  return total_us / static_cast<double>(config.ops_per_thread);
}

// Median over repetitions: individual runs on a shared/oversubscribed host
// carry multi-x scheduler noise that the median filters out.
template <typename Table>
double median_latency(u32 threads, const SweepConfig& config, bool do_unmap) {
  std::vector<double> samples;
  samples.reserve(config.repetitions);
  for (u32 rep = 0; rep < config.repetitions; ++rep) {
    samples.push_back(run_map_workload<Table>(threads, config, do_unmap));
  }
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2];
}

inline void run_sweep(const char* figure, const char* op_name, bool do_unmap,
                      const char* json_name) {
  SweepConfig config;
  std::printf("# %s reproduction: %s latency vs cores\n", figure, op_name);
  std::printf("# workload: each thread repeatedly %ss 4 KiB frames in a shared NR\n", op_name);
  std::printf("# address space (2 replicas); 'verified' vs 'unverified' page tables.\n");
  std::printf("# median of %u runs per cell, %lu ops per thread per run\n", config.repetitions,
              static_cast<unsigned long>(config.ops_per_thread));
  std::printf("#\n");
  std::printf("%-6s %-18s %-18s %s\n", "cores", "verified_us/op", "unverified_us/op", "ratio");
  BenchJson json(json_name);
  json.config("figure", figure);
  json.config("op", op_name);
  json.config("ops_per_thread", static_cast<unsigned long long>(config.ops_per_thread));
  json.config("phys_frames", static_cast<unsigned long long>(config.phys_frames));
  json.config("repetitions", config.repetitions);
  json.config("max_cores", config.max_cores);
  json.config("cores_per_node", config.cores_per_node);
  const u32 core_counts[] = {1, 2, 4, 8, 12, 16, 20, 24, 28};
  // Warmup run (first-touch page faults, allocator warm paths).
  (void)run_map_workload<PageTable>(2, config, do_unmap);
  for (u32 cores : core_counts) {
    double verified = median_latency<PageTable>(cores, config, do_unmap);
    double unverified = median_latency<UnverifiedPageTable>(cores, config, do_unmap);
    std::printf("%-6u %-18.2f %-18.2f %.2fx\n", cores, verified, unverified,
                verified / unverified);
    json.row("verified_us_per_op", cores, verified);
    json.row("unverified_us_per_op", cores, unverified);
    json.row("ratio", cores, verified / unverified);
  }
  json.write();
  std::printf("#\n# shape check (paper Fig. %s): the two curves coincide at every core\n",
              figure + 5);
  std::printf("# count — verification costs no runtime performance.\n");
}

}  // namespace vnros

#endif  // VNROS_BENCH_MAP_UNMAP_COMMON_H_
