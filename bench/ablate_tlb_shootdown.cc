// Ablation A3: the TLB-shootdown component of unmap latency.
//
// The verified unmap path must invalidate remote TLBs before completing
// (pt/tlb_shootdown_required VC shows why). This sweep charges a synthetic
// per-IPI cost and measures how unmap latency scales with it and with the
// number of remote cores — the piece of Figure 1c's latency that is pure
// correctness tax.
//
//   ./build/bench/ablate_tlb_shootdown
#include <chrono>
#include <cstdio>
#include <string>

#include "bench/bench_json.h"
#include "src/kernel/frame_alloc.h"
#include "src/pt/address_space.h"

namespace vnros {
namespace {

double unmap_latency_us(u32 cores, u64 ipi_cost, bool with_shootdown) {
  Topology topo(cores, cores);
  PhysMem mem(1u << 14);
  FrameAllocator frames(mem, topo);
  TlbSystem tlbs(topo);
  tlbs.set_ipi_cost_cycles(ipi_cost);
  AddressSpace<PageTable> as(mem, frames, topo, with_shootdown ? &tlbs : nullptr);

  auto tok = as.register_thread(0);
  constexpr u64 kOps = 500;
  for (u64 i = 0; i < kOps; ++i) {
    VNROS_CHECK(as.map(tok, VAddr{u64{1} << 36 | (i * kPageSize)},
                       PAddr::from_frame(16 + i % 1000), kPageSize,
                       Perms::rw()) == ErrorCode::kOk);
  }
  auto start = std::chrono::steady_clock::now();
  for (u64 i = 0; i < kOps; ++i) {
    VNROS_CHECK(as.unmap(tok, VAddr{u64{1} << 36 | (i * kPageSize)}) == ErrorCode::kOk);
  }
  double us =
      std::chrono::duration<double, std::micro>(std::chrono::steady_clock::now() - start)
          .count();
  return us / kOps;
}

}  // namespace
}  // namespace vnros

int main() {
  std::printf("# Ablation A3: TLB shootdown cost in the unmap path\n");
  std::printf("%-8s %-10s %-22s %-18s\n", "cores", "ipi_cost", "unmap_us (shootdown)",
              "unmap_us (none)");
  vnros::BenchJson json("ablate_tlb_shootdown");
  json.config("ops", 500);
  for (vnros::u32 cores : {1u, 4u, 8u, 16u}) {
    for (vnros::u64 ipi : {vnros::u64{0}, vnros::u64{1000}, vnros::u64{10000}}) {
      double with = vnros::unmap_latency_us(cores, ipi, true);
      double without = vnros::unmap_latency_us(cores, ipi, false);
      std::printf("%-8u %-10lu %-22.2f %-18.2f\n", cores, ipi, with, without);
      std::string suffix = "_ipi" + std::to_string(ipi);
      json.row("shootdown_us" + suffix, cores, with);
      json.row("none_us" + suffix, cores, without);
    }
  }
  json.write();
  std::printf("\n# shape check: the shootdown column grows with cores x ipi_cost while\n");
  std::printf("# the no-shootdown column stays flat — that delta is the price of the\n");
  std::printf("# correctness obligation, which a verified kernel cannot skip.\n");
  return 0;
}
