// Figure 1a: CDF of verification-condition times.
//
// Paper: "Figure 1a shows ... all 220 verification conditions" — most verify
// in single-digit seconds, the maximum is ~11 s, the total ~40 s. Here the
// verifier is the executable VC engine: every registered obligation runs
// (bounded-exhaustive / property checks with contracts enabled), is timed,
// and the same cumulative distribution is printed.
//
//   ./build/bench/fig1a_vc_cdf [--verbose]
#include <algorithm>
#include <cstdio>
#include <cstring>

#include "bench/bench_json.h"
#include "src/spec/vc.h"

using vnros::usize;

int main(int argc, char** argv) {
  bool verbose = argc > 1 && std::strcmp(argv[1], "--verbose") == 0;

  vnros::VcRegistry registry;
  vnros::register_all_vcs(registry);
  std::printf("# Figure 1a reproduction: CDF of verification times\n");
  std::printf("# running %zu verification conditions (paper: 220)...\n\n", registry.size());

  auto summary = registry.run_all(verbose);

  std::vector<double> times;
  times.reserve(summary.results.size());
  for (const auto& r : summary.results) {
    times.push_back(r.seconds);
  }
  std::sort(times.begin(), times.end());

  std::printf("time_s  cumulative_fraction\n");
  const double quantiles[] = {0.10, 0.25, 0.50, 0.75, 0.90, 0.95, 0.99, 1.00};
  for (double q : quantiles) {
    usize idx = static_cast<usize>(q * static_cast<double>(times.size()));
    if (idx >= times.size()) {
      idx = times.size() - 1;
    }
    std::printf("%6.3f  %.2f\n", times[idx], q);
  }

  std::printf("\n# per-VC CDF points (plot-ready, one line per VC)\n");
  std::printf("# t_seconds cum_fraction\n");
  for (usize i = 0; i < times.size(); ++i) {
    std::printf("%.6f %.4f\n", times[i],
                static_cast<double>(i + 1) / static_cast<double>(times.size()));
  }

  vnros::BenchJson json("fig1a_vc_cdf");
  json.config("vcs", static_cast<unsigned long long>(summary.total));
  json.config("passed", static_cast<unsigned long long>(summary.passed));
  json.config("total_seconds", summary.total_seconds);
  json.config("max_seconds", summary.max_seconds);
  for (usize i = 0; i < times.size(); ++i) {
    json.row("cdf", times[i], static_cast<double>(i + 1) / static_cast<double>(times.size()));
  }
  json.write();

  std::printf("\nsummary:\n");
  std::printf("  VCs:          %zu (%zu passed)\n", summary.total, summary.passed);
  std::printf("  total time:   %.1f s   (paper: ~40 s)\n", summary.total_seconds);
  std::printf("  max per VC:   %.1f s   (paper: <= 11 s)\n", summary.max_seconds);
  std::printf("  shape check:  every VC bounded, heavy mass at small times, short tail\n");
  return summary.all_passed() ? 0 : 1;
}
