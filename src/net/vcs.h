// Registration hook for the network-stack verification conditions.
#ifndef VNROS_SRC_NET_VCS_H_
#define VNROS_SRC_NET_VCS_H_

#include "src/spec/vc.h"

namespace vnros {

// Registers net/* VCs: header round-trips, UDP integrity/no-misdelivery,
// RTP prefix-delivery under loss/reorder/duplication, handshake convergence.
void register_net_vcs(VcRegistry& registry);

// Registers net/vtp_* VCs: stream-socket refinement of the reliable FIFO
// pipe spec under loss/dup/reorder/partition, window safety, handshake
// convergence under loss, and typed backlog-shed / SYN-timeout contracts.
void register_vtp_vcs(VcRegistry& registry);

}  // namespace vnros

#endif  // VNROS_SRC_NET_VCS_H_
