// Registration hook for the network-stack verification conditions.
#ifndef VNROS_SRC_NET_VCS_H_
#define VNROS_SRC_NET_VCS_H_

#include "src/spec/vc.h"

namespace vnros {

// Registers net/* VCs: header round-trips, UDP integrity/no-misdelivery,
// RTP prefix-delivery under loss/reorder/duplication, handshake convergence.
void register_net_vcs(VcRegistry& registry);

}  // namespace vnros

#endif  // VNROS_SRC_NET_VCS_H_
