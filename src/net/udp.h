// UDP-lite: unreliable datagram sockets over IpStack.
//
// Spec (net/udp_* VCs): a datagram received on a bound socket is exactly one
// datagram some peer sent to that (addr, port), with an intact payload
// (checksum verified); corrupted or unbound-port datagrams are dropped, never
// misdelivered. Delivery itself is best-effort — loss/reorder/duplication
// come from the fabric model and are the application's problem (that's UDP).
#ifndef VNROS_SRC_NET_UDP_H_
#define VNROS_SRC_NET_UDP_H_

#include <deque>
#include <map>
#include <mutex>

#include "src/base/result.h"
#include "src/net/ip.h"

namespace vnros {

struct Datagram {
  NetAddr src_addr = 0;
  Port src_port = 0;
  std::vector<u8> payload;
};

struct UdpStats {
  u64 tx = 0;
  u64 rx_delivered = 0;
  u64 rx_bad_checksum = 0;
  u64 rx_unbound = 0;
};

class UdpStack {
 public:
  explicit UdpStack(IpStack& ip);

  // Binds `port`; datagrams to it queue until recv()ed.
  Result<Unit> bind(Port port);
  Result<Unit> unbind(Port port);

  Result<Unit> send(NetAddr dst, Port dst_port, Port src_port, std::span<const u8> payload);

  // Non-blocking: kWouldBlock when the queue is empty.
  Result<Datagram> recv(Port port);

  usize pending(Port port) const;

  const UdpStats& stats() const { return stats_; }

 private:
  void on_datagram(const IpHeader& ip, std::span<const u8> payload);

  IpStack& ip_;
  mutable std::mutex mu_;
  std::map<Port, std::deque<Datagram>> bound_;
  UdpStats stats_;
};

}  // namespace vnros

#endif  // VNROS_SRC_NET_UDP_H_
