#include "src/net/udp.h"

#include "src/base/crc.h"

namespace vnros {

void UdpHeader::encode(Writer& w) const {
  w.put_u16(src_port);
  w.put_u16(dst_port);
  w.put_u32(checksum);
}

std::optional<UdpHeader> UdpHeader::decode(Reader& r) {
  auto src = r.get_u16();
  auto dst = r.get_u16();
  auto csum = r.get_u32();
  if (!src || !dst || !csum) {
    return std::nullopt;
  }
  return UdpHeader{*src, *dst, *csum};
}

UdpStack::UdpStack(IpStack& ip) : ip_(ip) {
  ip_.register_proto(IpProto::kUdp, [this](const IpHeader& hdr, std::span<const u8> payload) {
    on_datagram(hdr, payload);
  });
}

Result<Unit> UdpStack::bind(Port port) {
  std::lock_guard<std::mutex> lock(mu_);
  if (bound_.count(port) != 0) {
    return ErrorCode::kAlreadyExists;
  }
  bound_[port];
  return Unit{};
}

Result<Unit> UdpStack::unbind(Port port) {
  std::lock_guard<std::mutex> lock(mu_);
  if (bound_.erase(port) == 0) {
    return ErrorCode::kNotFound;
  }
  return Unit{};
}

Result<Unit> UdpStack::send(NetAddr dst, Port dst_port, Port src_port,
                            std::span<const u8> payload) {
  Writer w;
  UdpHeader hdr{src_port, dst_port, crc32c(payload)};
  hdr.encode(w);
  w.put_raw(payload);
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.tx;
  }
  return ip_.send(dst, IpProto::kUdp, w.bytes());
}

Result<Datagram> UdpStack::recv(Port port) {
  ip_.poll();
  std::lock_guard<std::mutex> lock(mu_);
  auto it = bound_.find(port);
  if (it == bound_.end()) {
    return ErrorCode::kNotFound;
  }
  if (it->second.empty()) {
    return ErrorCode::kWouldBlock;
  }
  Datagram d = std::move(it->second.front());
  it->second.pop_front();
  return d;
}

usize UdpStack::pending(Port port) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = bound_.find(port);
  return it == bound_.end() ? 0 : it->second.size();
}

void UdpStack::on_datagram(const IpHeader& ip, std::span<const u8> payload) {
  Reader r(payload);
  auto hdr = UdpHeader::decode(r);
  std::lock_guard<std::mutex> lock(mu_);
  if (!hdr) {
    ++stats_.rx_bad_checksum;
    return;
  }
  std::span<const u8> data(payload.data() + r.position(), payload.size() - r.position());
  if (crc32c(data) != hdr->checksum) {
    ++stats_.rx_bad_checksum;  // corrupted payloads are dropped, not delivered
    return;
  }
  auto it = bound_.find(hdr->dst_port);
  if (it == bound_.end()) {
    ++stats_.rx_unbound;
    return;
  }
  ++stats_.rx_delivered;
  it->second.push_back(Datagram{ip.src, hdr->src_port, std::vector<u8>(data.begin(), data.end())});
}

}  // namespace vnros
