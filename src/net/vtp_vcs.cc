// Verification conditions for VTP, the stream-socket transport.
//
// The centerpiece is the net/vtp_refines_pipe family: both directions of a
// connection, driven through an adversarial fabric (loss + duplication +
// reordering, plus an explicit partition variant), refine the reliable FIFO
// pipe spec in src/spec/pipe.h — every byte the application pops is checked
// against the pushed stream at the instant it is popped (safety), and at
// quiesce the streams are complete (liveness). Window safety and the
// handshake contract (backlog shedding with typed kOverloaded, SYN-retry
// exhaustion with typed kTimedOut) are pinned by their own VCs.
#include "src/net/vcs.h"

#include <string>
#include <vector>

#include "src/base/rng.h"
#include "src/hw/network.h"
#include "src/hw/timer.h"
#include "src/net/ip.h"
#include "src/net/vtp.h"
#include "src/spec/pipe.h"

namespace vnros {
namespace {

// Two hosts, one fabric, one virtual clock, a VTP stack on each.
struct VtpPair {
  Network net;
  NetDevice& dev_a;
  NetDevice& dev_b;
  IpStack ip_a;
  IpStack ip_b;
  VirtualClock clock;
  VtpStack vtp_a;
  VtpStack vtp_b;

  explicit VtpPair(FabricConfig config = {})
      : net(config),
        dev_a(net.attach()),
        dev_b(net.attach()),
        ip_a(dev_a),
        ip_b(dev_b),
        vtp_a(ip_a, clock),
        vtp_b(ip_b, clock) {}

  void pump(usize rounds) {
    for (usize i = 0; i < rounds; ++i) {
      vtp_a.tick();
      vtp_b.tick();
    }
  }
};

Result<std::pair<ConnId, ConnId>> establish(VtpPair& pair, usize budget = 600,
                                            Port sport = 1234) {
  auto l = pair.vtp_b.listen(80);
  if (!l.ok() && l.error() != ErrorCode::kAlreadyExists) {
    return l.error();  // listen is per-pair idempotent across establish calls
  }
  auto client = pair.vtp_a.connect(pair.dev_b.addr(), 80, sport);
  if (!client.ok()) {
    return client.error();
  }
  for (usize i = 0; i < budget; ++i) {
    pair.pump(1);
    auto server = pair.vtp_b.accept(80);
    if (server.ok() && pair.vtp_a.is_established(client.value())) {
      return std::pair<ConnId, ConnId>{client.value(), server.value()};
    }
  }
  return ErrorCode::kTimedOut;
}

VcOutcome vc_vtp_header_roundtrip(u64 seed) {
  Rng rng(seed);
  const VtpType types[] = {VtpType::kSyn, VtpType::kSynAck, VtpType::kData,
                           VtpType::kAck, VtpType::kFin, VtpType::kRst};
  for (int i = 0; i < 200; ++i) {
    VtpHeader hdr{static_cast<Port>(rng.next_u32()), static_cast<Port>(rng.next_u32()),
                  types[rng.next_below(6)], rng.next_u64(), rng.next_u64(),
                  rng.next_u32(), rng.next_u32()};
    Writer w;
    hdr.encode(w);
    Reader r(w.bytes());
    auto back = VtpHeader::decode(r);
    if (!back || !(*back == hdr) || !r.exhausted()) {
      return VcOutcome::fail("VTP header did not round-trip");
    }
    for (usize cut = 0; cut < w.size(); ++cut) {
      Reader rt(std::span<const u8>(w.bytes().data(), cut));
      if (VtpHeader::decode(rt)) {
        return VcOutcome::fail("truncated VTP header decoded");
      }
    }
  }
  return VcOutcome::pass();
}

// Bidirectional transfer against the fabric adversary, with the application
// boundary mirrored into a PipeSpec per direction. `partition_at` (nonzero)
// cuts the fabric for `partition_len` ticks mid-transfer and heals it.
VcOutcome vc_vtp_refines_pipe(FabricConfig config, u64 seed, usize total_bytes,
                              usize tick_budget, usize partition_at = 0,
                              usize partition_len = 0) {
  VtpPair pair(config);
  auto conns = establish(pair);
  if (!conns.ok()) {
    return VcOutcome::fail("handshake did not converge");
  }
  auto [client, server] = conns.value();

  Rng rng(seed);
  std::vector<u8> stream_ab(total_bytes), stream_ba(total_bytes);
  for (auto& b : stream_ab) {
    b = static_cast<u8>(rng.next_u64());
  }
  for (auto& b : stream_ba) {
    b = static_cast<u8>(rng.next_u64());
  }
  PipeSpec pipe_ab, pipe_ba;  // one spec instance per direction
  usize fed_ab = 0, fed_ba = 0;
  bool cut = false;

  for (usize tick = 0; tick < tick_budget; ++tick) {
    if (partition_at != 0 && tick == partition_at) {
      pair.net.partition(pair.dev_a.addr(), pair.dev_b.addr());
      cut = true;
    }
    if (cut && tick == partition_at + partition_len) {
      pair.net.heal(pair.dev_a.addr(), pair.dev_b.addr());
      cut = false;
    }
    if (fed_ab < total_bytes && rng.chance(2, 3)) {
      usize chunk = std::min<usize>(static_cast<usize>(rng.next_range(1, 2000)),
                                    total_bytes - fed_ab);
      auto n = pair.vtp_a.send(client, std::span<const u8>(stream_ab.data() + fed_ab, chunk));
      if (n.ok()) {
        pipe_ab.push(std::span<const u8>(stream_ab.data() + fed_ab, n.value()));
        fed_ab += n.value();
      } else if (n.error() != ErrorCode::kWouldBlock) {
        return VcOutcome::fail("send a->b failed: " + std::string(error_name(n.error())));
      }
    }
    if (fed_ba < total_bytes && rng.chance(2, 3)) {
      usize chunk = std::min<usize>(static_cast<usize>(rng.next_range(1, 2000)),
                                    total_bytes - fed_ba);
      auto n = pair.vtp_b.send(server, std::span<const u8>(stream_ba.data() + fed_ba, chunk));
      if (n.ok()) {
        pipe_ba.push(std::span<const u8>(stream_ba.data() + fed_ba, n.value()));
        fed_ba += n.value();
      } else if (n.error() != ErrorCode::kWouldBlock) {
        return VcOutcome::fail("send b->a failed: " + std::string(error_name(n.error())));
      }
    }
    // SAFETY: every popped chunk is checked against the pushed stream.
    if (auto got = pair.vtp_b.recv(server, static_cast<usize>(rng.next_range(1, 3000)));
        got.ok() && !pipe_ab.pop(got.value())) {
      return VcOutcome::fail("a->b violates FIFO pipe: " + pipe_ab.failure());
    }
    if (auto got = pair.vtp_a.recv(client, static_cast<usize>(rng.next_range(1, 3000)));
        got.ok() && !pipe_ba.pop(got.value())) {
      return VcOutcome::fail("b->a violates FIFO pipe: " + pipe_ba.failure());
    }
    pair.pump(1);
    if (pipe_ab.complete() && pipe_ba.complete() && fed_ab == total_bytes &&
        fed_ba == total_bytes) {
      break;
    }
  }

  // LIVENESS at quiesce: the adversary was fair (loss is probabilistic,
  // partitions healed), so the whole stream must have crossed.
  if (fed_ab != total_bytes || fed_ba != total_bytes || !pipe_ab.complete() ||
      !pipe_ba.complete()) {
    return VcOutcome::fail("incomplete at quiesce: a->b " +
                           std::to_string(pipe_ab.delivered_len()) + "/" +
                           std::to_string(pipe_ab.sent_len()) + ", b->a " +
                           std::to_string(pipe_ba.delivered_len()) + "/" +
                           std::to_string(pipe_ba.sent_len()));
  }

  // Full lifecycle: both sides close; FIN/ACK retransmissions must converge
  // and both stacks must reap the connection.
  (void)pair.vtp_a.close(client);
  (void)pair.vtp_b.close(server);
  for (usize i = 0; i < 4000 && (pair.vtp_a.active_conns() + pair.vtp_b.active_conns()) > 0;
       ++i) {
    pair.pump(1);
  }
  if (pair.vtp_a.active_conns() + pair.vtp_b.active_conns() != 0) {
    return VcOutcome::fail("close did not converge: conns still live at quiesce");
  }
  if (pair.vtp_a.stats().window_violations + pair.vtp_b.stats().window_violations != 0) {
    return VcOutcome::fail("window safety violated during transfer");
  }
  return VcOutcome::pass();
}

// Window safety as its own VC: a slow reader forces the advertised window to
// zero; the sender must stall (probing, never shipping bytes past the
// advertisement) and resume when reads reopen the window.
VcOutcome vc_vtp_window_safety(u64 seed) {
  FabricConfig config;
  config.loss_ppm = 50'000;
  VtpPair pair(config);
  auto conns = establish(pair);
  if (!conns.ok()) {
    return VcOutcome::fail("handshake did not converge");
  }
  auto [client, server] = conns.value();

  Rng rng(seed);
  const usize total = 3 * VtpStack::kRcvWindow;  // 3x the receive buffer
  std::vector<u8> stream(total);
  for (auto& b : stream) {
    b = static_cast<u8>(rng.next_u64());
  }
  PipeSpec pipe;
  usize fed = 0;
  for (usize tick = 0; tick < 120'000 && pipe.delivered_len() < total; ++tick) {
    if (fed < total) {
      auto n = pair.vtp_a.send(client, std::span<const u8>(stream.data() + fed, total - fed));
      if (n.ok()) {
        pipe.push(std::span<const u8>(stream.data() + fed, n.value()));
        fed += n.value();
      }
    }
    // Slow reader: a tiny read every 8th tick slams the window shut; a total
    // read blackout for ticks [500, 700) holds it shut across several RTOs so
    // the sender's zero-window probes (not just the receiver's proactive
    // window-update ACKs) are exercised.
    const bool blackout = tick >= 500 && tick < 700;
    if (tick % 8 == 0 && !blackout) {
      if (auto got = pair.vtp_b.recv(server, 512); got.ok() && !pipe.pop(got.value())) {
        return VcOutcome::fail("FIFO violated under zero-window: " + pipe.failure());
      }
    }
    pair.pump(1);
  }
  if (!pipe.complete()) {
    return VcOutcome::fail("transfer did not complete past the zero-window stalls");
  }
  if (pair.vtp_b.stats().window_updates == 0) {
    return VcOutcome::fail("window never closed: VC exercised nothing");
  }
  if (pair.vtp_a.stats().window_probes == 0) {
    return VcOutcome::fail("sender never probed the zero window during the blackout");
  }
  if (pair.vtp_a.stats().window_violations + pair.vtp_b.stats().window_violations != 0) {
    return VcOutcome::fail("sender shipped bytes past the advertised window");
  }
  return VcOutcome::pass();
}

// Handshake-state VC: sequential connects under heavy loss all converge to a
// symmetric established pair, proven by a byte roundtrip on each connection.
VcOutcome vc_vtp_handshake_loss(u64 seed) {
  FabricConfig config;
  config.loss_ppm = 150'000;
  config.dup_ppm = 50'000;
  VtpPair pair(config);
  Rng rng(seed);
  for (u32 i = 0; i < 6; ++i) {
    auto conns = establish(pair, 2'000, static_cast<Port>(2000 + i));
    if (!conns.ok()) {
      return VcOutcome::fail("handshake " + std::to_string(i) + " did not converge");
    }
    auto [client, server] = conns.value();
    u8 ping = static_cast<u8>(rng.next_u64());
    if (!pair.vtp_a.send(client, std::span<const u8>(&ping, 1)).ok()) {
      return VcOutcome::fail("established conn refused send");
    }
    std::vector<u8> got;
    for (usize t = 0; t < 2'000 && got.empty(); ++t) {
      pair.pump(1);
      if (auto r = pair.vtp_b.recv(server, 8); r.ok()) {
        got = r.value();
      }
    }
    if (got.size() != 1 || got[0] != ping) {
      return VcOutcome::fail("roundtrip on established conn failed");
    }
  }
  return VcOutcome::pass();
}

// Backlog shedding is typed: connects beyond the listener's backlog surface
// kOverloaded at the connecting end, and accepted peers are unaffected.
VcOutcome vc_vtp_backlog_typed_overload() {
  VtpPair pair;
  if (!pair.vtp_b.listen(80, 2).ok()) {
    return VcOutcome::fail("listen failed");
  }
  std::vector<ConnId> conns;
  for (u32 i = 0; i < 5; ++i) {
    auto c = pair.vtp_a.connect(pair.dev_b.addr(), 80, static_cast<Port>(3000 + i));
    if (!c.ok()) {
      return VcOutcome::fail("connect failed");
    }
    conns.push_back(c.value());
    pair.pump(4);
  }
  pair.pump(40);
  usize established = 0, overloaded = 0;
  for (ConnId id : conns) {
    if (pair.vtp_a.is_established(id)) {
      ++established;
    } else if (pair.vtp_a.conn_error(id) == ErrorCode::kOverloaded) {
      ++overloaded;
    }
  }
  if (established != 2) {
    return VcOutcome::fail("backlog admitted " + std::to_string(established) +
                           " conns, want 2");
  }
  if (overloaded != 3) {
    return VcOutcome::fail("sheds were not typed kOverloaded (" +
                           std::to_string(overloaded) + "/3)");
  }
  if (pair.vtp_b.stats().accept_shed != 3) {
    return VcOutcome::fail("listener shed counter disagrees");
  }
  return VcOutcome::pass();
}

// SYN-retry exhaustion is typed: connecting across a partitioned fabric
// fails with kTimedOut after the retry budget, never silently.
VcOutcome vc_vtp_syn_timeout_typed() {
  VtpPair pair;
  if (!pair.vtp_b.listen(80).ok()) {
    return VcOutcome::fail("listen failed");
  }
  pair.net.partition(pair.dev_a.addr(), pair.dev_b.addr());
  auto c = pair.vtp_a.connect(pair.dev_b.addr(), 80, 4000);
  if (!c.ok()) {
    return VcOutcome::fail("connect failed");
  }
  pair.pump((VtpStack::kMaxSynRetries + 2) * VtpStack::kRtoTicks + 8);
  if (pair.vtp_a.conn_error(c.value()) != ErrorCode::kTimedOut) {
    return VcOutcome::fail("SYN exhaustion did not surface kTimedOut");
  }
  auto r = pair.vtp_a.recv(c.value(), 16);
  if (r.ok() || r.error() != ErrorCode::kTimedOut) {
    return VcOutcome::fail("recv on the dead conn is not typed kTimedOut");
  }
  return VcOutcome::pass();
}

}  // namespace

void register_vtp_vcs(VcRegistry& reg) {
  for (u64 seed = 1; seed <= 3; ++seed) {
    reg.add("net/vtp_header_roundtrip_seed" + std::to_string(seed), VcCategory::kNetworkStack,
            [seed] { return vc_vtp_header_roundtrip(seed); });
  }
  reg.add("net/vtp_refines_pipe_clean", VcCategory::kNetworkStack, [] {
    return vc_vtp_refines_pipe(FabricConfig{}, 42, 64 * 1024, 8'000);
  });
  for (u64 seed = 1; seed <= 3; ++seed) {
    reg.add("net/vtp_refines_pipe_seed" + std::to_string(seed), VcCategory::kNetworkStack,
            [seed] {
              FabricConfig config;
              config.loss_ppm = 100'000;    // 10% loss
              config.dup_ppm = 50'000;      // 5% duplication
              config.reorder_ppm = 50'000;  // 5% reordering
              return vc_vtp_refines_pipe(config, seed, 16 * 1024, 60'000);
            });
  }
  reg.add("net/vtp_refines_pipe_partition", VcCategory::kNetworkStack, [] {
    FabricConfig config;
    config.loss_ppm = 50'000;
    config.reorder_ppm = 50'000;
    // Cut the fabric for 400 ticks mid-transfer; retransmission must carry
    // the stream across the heal.
    return vc_vtp_refines_pipe(config, 7, 16 * 1024, 60'000, 120, 400);
  });
  for (u64 seed = 1; seed <= 2; ++seed) {
    reg.add("net/vtp_window_safety_seed" + std::to_string(seed), VcCategory::kNetworkStack,
            [seed] { return vc_vtp_window_safety(seed); });
    reg.add("net/vtp_handshake_loss_seed" + std::to_string(seed), VcCategory::kNetworkStack,
            [seed] { return vc_vtp_handshake_loss(seed); });
  }
  reg.add("net/vtp_backlog_typed_overload", VcCategory::kNetworkStack,
          [] { return vc_vtp_backlog_typed_overload(); });
  reg.add("net/vtp_syn_timeout_typed", VcCategory::kNetworkStack,
          [] { return vc_vtp_syn_timeout_typed(); });
}

}  // namespace vnros
