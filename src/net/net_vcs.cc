// Verification conditions for the network stack.
//
// The integrity statements hold against an adversarial fabric (loss,
// duplication, reordering): UDP may lose datagrams but never delivers a
// corrupted or misrouted one; RTP delivers, at every instant, a prefix of
// the peer's sent byte stream, and the whole stream once the fabric
// cooperates enough.
#include "src/net/vcs.h"

#include <string>

#include "src/base/crc.h"
#include "src/base/rng.h"
#include "src/hw/network.h"
#include "src/hw/timer.h"
#include "src/net/ip.h"
#include "src/net/rtp.h"
#include "src/net/udp.h"

namespace vnros {
namespace {

// Two hosts on one fabric.
struct NetPair {
  Network net;
  NetDevice& dev_a;
  NetDevice& dev_b;
  IpStack ip_a;
  IpStack ip_b;

  explicit NetPair(FabricConfig config = {})
      : net(config), dev_a(net.attach()), dev_b(net.attach()), ip_a(dev_a), ip_b(dev_b) {}
};

// --- Header round-trips -----------------------------------------------------

VcOutcome vc_ip_header_roundtrip(u64 seed) {
  Rng rng(seed);
  for (int i = 0; i < 200; ++i) {
    IpHeader hdr{static_cast<NetAddr>(rng.next_u32()), static_cast<NetAddr>(rng.next_u32()),
                 rng.chance(1, 2) ? IpProto::kUdp : IpProto::kRtp,
                 static_cast<u8>(rng.next_range(1, 255))};
    Writer w;
    hdr.encode(w);
    Reader r(w.bytes());
    auto back = IpHeader::decode(r);
    if (!back || !(*back == hdr) || !r.exhausted()) {
      return VcOutcome::fail("IP header did not round-trip");
    }
    // Any strict prefix must fail to decode, not misparse.
    for (usize cut = 0; cut < w.size(); ++cut) {
      Reader rt(std::span<const u8>(w.bytes().data(), cut));
      if (IpHeader::decode(rt)) {
        return VcOutcome::fail("truncated IP header decoded");
      }
    }
  }
  return VcOutcome::pass();
}

VcOutcome vc_udp_header_roundtrip(u64 seed) {
  Rng rng(seed);
  for (int i = 0; i < 200; ++i) {
    UdpHeader hdr{static_cast<Port>(rng.next_u32()), static_cast<Port>(rng.next_u32()),
                  rng.next_u32()};
    Writer w;
    hdr.encode(w);
    Reader r(w.bytes());
    auto back = UdpHeader::decode(r);
    if (!back || !(*back == hdr)) {
      return VcOutcome::fail("UDP header did not round-trip");
    }
  }
  return VcOutcome::pass();
}

VcOutcome vc_rtp_header_roundtrip(u64 seed) {
  Rng rng(seed);
  const RtpType types[] = {RtpType::kSyn, RtpType::kSynAck, RtpType::kData,
                           RtpType::kAck, RtpType::kFin, RtpType::kRst};
  for (int i = 0; i < 200; ++i) {
    RtpHeader hdr{static_cast<Port>(rng.next_u32()), static_cast<Port>(rng.next_u32()),
                  types[rng.next_below(6)], rng.next_u64(), rng.next_u64(), rng.next_u32()};
    Writer w;
    hdr.encode(w);
    Reader r(w.bytes());
    auto back = RtpHeader::decode(r);
    if (!back || !(*back == hdr)) {
      return VcOutcome::fail("RTP header did not round-trip");
    }
  }
  return VcOutcome::pass();
}

// --- UDP ---------------------------------------------------------------------

VcOutcome vc_udp_delivery_clean() {
  NetPair p;
  UdpStack udp_a(p.ip_a), udp_b(p.ip_b);
  if (!udp_b.bind(700).ok()) {
    return VcOutcome::fail("bind failed");
  }
  for (u32 i = 0; i < 50; ++i) {
    std::string msg = "datagram-" + std::to_string(i);
    if (!udp_a.send(p.dev_b.addr(), 700, 900, string_bytes(msg)).ok()) {
      return VcOutcome::fail("send failed");
    }
  }
  for (u32 i = 0; i < 50; ++i) {
    auto d = udp_b.recv(700);
    std::string expect = "datagram-" + std::to_string(i);
    if (!d.ok() || std::string(d.value().payload.begin(), d.value().payload.end()) != expect ||
        d.value().src_port != 900 || d.value().src_addr != p.dev_a.addr()) {
      return VcOutcome::fail("datagram " + std::to_string(i) + " wrong or missing");
    }
  }
  if (udp_b.recv(700).ok()) {
    return VcOutcome::fail("phantom datagram delivered");
  }
  return VcOutcome::pass();
}

VcOutcome vc_udp_drops_corruption() {
  NetPair p;
  UdpStack udp_b(p.ip_b);
  (void)udp_b.bind(700);
  // Hand-craft a datagram whose checksum does not match its payload.
  Writer w;
  UdpHeader hdr{900, 700, 0xDEADBEEF};
  hdr.encode(w);
  w.put_raw(string_bytes("corrupted payload"));
  (void)p.ip_a.send(p.dev_b.addr(), IpProto::kUdp, w.bytes());
  if (udp_b.recv(700).ok()) {
    return VcOutcome::fail("corrupted datagram was delivered");
  }
  if (udp_b.stats().rx_bad_checksum != 1) {
    return VcOutcome::fail("corruption not accounted");
  }
  return VcOutcome::pass();
}

VcOutcome vc_udp_no_misdelivery(u64 seed) {
  NetPair p;
  UdpStack udp_a(p.ip_a), udp_b(p.ip_b);
  (void)udp_b.bind(700);
  (void)udp_b.bind(701);
  Rng rng(seed);
  u32 n700 = 0, n701 = 0;
  for (int i = 0; i < 100; ++i) {
    Port dst = rng.chance(1, 2) ? 700 : 701;
    (dst == 700 ? n700 : n701)++;
    std::string msg = "to-" + std::to_string(dst);
    (void)udp_a.send(p.dev_b.addr(), dst, 900, string_bytes(msg));
  }
  for (Port port : {Port{700}, Port{701}}) {
    u32 got = 0;
    std::string expect = "to-" + std::to_string(port);
    while (auto d = udp_b.recv(port)) {
      if (std::string(d.value().payload.begin(), d.value().payload.end()) != expect) {
        return VcOutcome::fail("datagram misdelivered across ports");
      }
      ++got;
    }
    if (got != (port == 700 ? n700 : n701)) {
      return VcOutcome::fail("datagram count mismatch on clean fabric");
    }
  }
  return VcOutcome::pass();
}

// --- RTP -----------------------------------------------------------------------

struct RtpPair {
  NetPair p;
  VirtualClock clock;
  RtpStack rtp_a;
  RtpStack rtp_b;

  explicit RtpPair(FabricConfig config = {})
      : p(config), rtp_a(p.ip_a, clock), rtp_b(p.ip_b, clock) {}

  void pump(usize rounds) {
    for (usize i = 0; i < rounds; ++i) {
      rtp_a.tick();
      rtp_b.tick();
    }
  }
};

// Establishes a connection pair (client id, server id) or fails.
Result<std::pair<ConnId, ConnId>> establish(RtpPair& pair, usize budget = 400) {
  if (!pair.rtp_b.listen(80).ok()) {
    return ErrorCode::kBusy;
  }
  auto client = pair.rtp_a.connect(pair.p.dev_b.addr(), 80, 1234);
  if (!client.ok()) {
    return client.error();
  }
  for (usize i = 0; i < budget; ++i) {
    pair.pump(1);
    auto server = pair.rtp_b.accept(80);
    if (server.ok() && pair.rtp_a.is_established(client.value())) {
      return std::pair<ConnId, ConnId>{client.value(), server.value()};
    }
  }
  return ErrorCode::kTimedOut;
}

VcOutcome vc_rtp_transfer(FabricConfig config, u64 seed, usize total_bytes, usize tick_budget) {
  RtpPair pair(config);
  auto conns = establish(pair);
  if (!conns.ok()) {
    return VcOutcome::fail("handshake did not converge");
  }
  auto [client, server] = conns.value();

  Rng rng(seed);
  std::vector<u8> sent(total_bytes);
  for (auto& b : sent) {
    b = static_cast<u8>(rng.next_u64());
  }
  // Feed in random chunks.
  usize fed = 0;
  std::vector<u8> received;
  usize ticks = 0;
  while (received.size() < total_bytes && ticks < tick_budget) {
    if (fed < total_bytes) {
      usize chunk = static_cast<usize>(rng.next_range(1, 2000));
      chunk = std::min(chunk, total_bytes - fed);
      if (!pair.rtp_a.send(client, std::span<const u8>(sent.data() + fed, chunk)).ok()) {
        return VcOutcome::fail("send failed");
      }
      fed += chunk;
    }
    pair.pump(1);
    ++ticks;
    while (auto got = pair.rtp_b.recv(server, 4096)) {
      received.insert(received.end(), got.value().begin(), got.value().end());
      if (got.value().empty()) {
        break;
      }
    }
    // Prefix invariant: what arrived so far is exactly the head of `sent`.
    if (received.size() > sent.size() ||
        !std::equal(received.begin(), received.end(), sent.begin())) {
      return VcOutcome::fail("received bytes are not a prefix of sent bytes");
    }
  }
  if (received.size() != total_bytes) {
    return VcOutcome::fail("transfer incomplete after " + std::to_string(ticks) + " ticks (" +
                           std::to_string(received.size()) + "/" +
                           std::to_string(total_bytes) + ")");
  }
  return VcOutcome::pass();
}

VcOutcome vc_rtp_fin_semantics() {
  RtpPair pair;
  auto conns = establish(pair);
  if (!conns.ok()) {
    return VcOutcome::fail("handshake failed");
  }
  auto [client, server] = conns.value();
  std::string msg = "last words";
  (void)pair.rtp_a.send(client, string_bytes(msg));
  pair.pump(4);
  (void)pair.rtp_a.close(client);
  pair.pump(64);
  auto got = pair.rtp_b.recv(server, 64);
  if (!got.ok() || std::string(got.value().begin(), got.value().end()) != msg) {
    return VcOutcome::fail("data before FIN lost");
  }
  auto after = pair.rtp_b.recv(server, 64);
  if (after.ok() || after.error() != ErrorCode::kPipeClosed) {
    return VcOutcome::fail("FIN not surfaced as PipeClosed after drain");
  }
  return VcOutcome::pass();
}

VcOutcome vc_rtp_duplicate_syn_safe() {
  RtpPair pair;
  (void)pair.rtp_b.listen(80);
  auto c = pair.rtp_a.connect(pair.p.dev_b.addr(), 80, 1234);
  if (!c.ok()) {
    return VcOutcome::fail("connect failed");
  }
  // Let the handshake finish, then hammer with time so duplicate SYNs from
  // retransmission paths are exercised; exactly one server conn must appear.
  pair.pump(200);
  auto s1 = pair.rtp_b.accept(80);
  if (!s1.ok()) {
    return VcOutcome::fail("no connection accepted");
  }
  auto s2 = pair.rtp_b.accept(80);
  if (s2.ok()) {
    return VcOutcome::fail("duplicate SYN spawned a second connection");
  }
  return VcOutcome::pass();
}


// Bidirectional transfer under loss: both directions must satisfy the prefix
// property simultaneously (ACKs piggyback nothing in this stack, so reverse
// data shares the wire with forward ACKs).
VcOutcome vc_rtp_bidirectional_lossy(u64 seed) {
  FabricConfig config;
  config.loss_ppm = 80'000;
  config.reorder_ppm = 30'000;
  RtpPair pair(config);
  auto conns = establish(pair);
  if (!conns.ok()) {
    return VcOutcome::fail("handshake failed");
  }
  auto [client, server] = conns.value();
  Rng rng(seed);
  std::vector<u8> fwd(6000), rev(6000);
  for (auto& b : fwd) {
    b = static_cast<u8>(rng.next_u64());
  }
  for (auto& b : rev) {
    b = static_cast<u8>(rng.next_u64());
  }
  (void)pair.rtp_a.send(client, fwd);
  (void)pair.rtp_b.send(server, rev);
  std::vector<u8> got_fwd, got_rev;
  for (int i = 0; i < 40'000 && (got_fwd.size() < fwd.size() || got_rev.size() < rev.size());
       ++i) {
    pair.pump(1);
    if (auto r = pair.rtp_b.recv(server, 4096)) {
      got_fwd.insert(got_fwd.end(), r.value().begin(), r.value().end());
    }
    if (auto r = pair.rtp_a.recv(client, 4096)) {
      got_rev.insert(got_rev.end(), r.value().begin(), r.value().end());
    }
    if (!std::equal(got_fwd.begin(), got_fwd.end(), fwd.begin()) ||
        !std::equal(got_rev.begin(), got_rev.end(), rev.begin())) {
      return VcOutcome::fail("prefix property violated in one direction");
    }
  }
  if (got_fwd != fwd || got_rev != rev) {
    return VcOutcome::fail("bidirectional transfer incomplete");
  }
  return VcOutcome::pass();
}

// Two clients to one listener: connections must stay separate streams.
VcOutcome vc_rtp_two_clients_isolated() {
  Network net;
  NetDevice& ds = net.attach();
  NetDevice& dc1 = net.attach();
  NetDevice& dc2 = net.attach();
  IpStack ip_s(ds), ip_c1(dc1), ip_c2(dc2);
  VirtualClock clock;
  RtpStack server(ip_s, clock), c1(ip_c1, clock), c2(ip_c2, clock);
  (void)server.listen(80);
  auto conn1 = c1.connect(ds.addr(), 80, 1111);
  auto conn2 = c2.connect(ds.addr(), 80, 2222);
  std::vector<ConnId> accepted;
  for (int i = 0; i < 600 && accepted.size() < 2; ++i) {
    server.tick();
    c1.tick();
    c2.tick();
    if (auto a = server.accept(80)) {
      accepted.push_back(a.value());
    }
  }
  if (accepted.size() != 2) {
    return VcOutcome::fail("second connection never accepted");
  }
  (void)c1.send(conn1.value(), string_bytes("from-one"));
  (void)c2.send(conn2.value(), string_bytes("from-two"));
  std::string got1, got2;
  for (int i = 0; i < 600 && (got1.size() < 8 || got2.size() < 8); ++i) {
    server.tick();
    c1.tick();
    c2.tick();
    if (auto r = server.recv(accepted[0], 64)) {
      got1.append(r.value().begin(), r.value().end());
    }
    if (auto r = server.recv(accepted[1], 64)) {
      got2.append(r.value().begin(), r.value().end());
    }
  }
  // Each stream carries exactly its own client's bytes.
  bool ok = (got1 == "from-one" && got2 == "from-two") ||
            (got1 == "from-two" && got2 == "from-one");
  if (!ok) {
    return VcOutcome::fail("streams mixed across connections: '" + got1 + "' / '" + got2 + "'");
  }
  return VcOutcome::pass();
}

// Large and empty UDP payloads survive the stack unharmed.
VcOutcome vc_udp_payload_extremes() {
  NetPair p;
  UdpStack ua(p.ip_a), ub(p.ip_b);
  (void)ub.bind(80);
  // Empty payload.
  if (!ua.send(p.dev_b.addr(), 80, 90, {}).ok()) {
    return VcOutcome::fail("empty send failed");
  }
  auto d = ub.recv(80);
  if (!d.ok() || !d.value().payload.empty()) {
    return VcOutcome::fail("empty datagram mangled");
  }
  // 256 KiB payload (our fabric has no MTU; framing must still be exact).
  Rng rng(404);
  std::vector<u8> big(256 * 1024);
  for (auto& b : big) {
    b = static_cast<u8>(rng.next_u64());
  }
  if (!ua.send(p.dev_b.addr(), 80, 90, big).ok()) {
    return VcOutcome::fail("large send failed");
  }
  d = ub.recv(80);
  if (!d.ok() || d.value().payload != big) {
    return VcOutcome::fail("large datagram corrupted");
  }
  return VcOutcome::pass();
}

// TTL zero datagrams are dropped at the IP layer, counted, never delivered.
VcOutcome vc_ip_ttl_zero_dropped() {
  NetPair p;
  UdpStack ub(p.ip_b);
  (void)ub.bind(80);
  Writer w;
  IpHeader hdr{p.dev_a.addr(), p.dev_b.addr(), IpProto::kUdp, 0};
  hdr.encode(w);
  UdpHeader uh{90, 80, crc32c({})};
  uh.encode(w);
  (void)p.dev_a.send(p.dev_b.addr(), w.take());
  p.ip_b.poll();
  if (ub.recv(80).ok()) {
    return VcOutcome::fail("TTL-0 datagram delivered");
  }
  if (p.ip_b.stats().rx_ttl_expired != 1) {
    return VcOutcome::fail("TTL expiry not accounted");
  }
  return VcOutcome::pass();
}

}  // namespace

void register_net_vcs(VcRegistry& reg) {
  for (u64 seed = 1; seed <= 3; ++seed) {
    reg.add("net/ip_header_roundtrip_seed" + std::to_string(seed), VcCategory::kNetworkStack,
            [seed] { return vc_ip_header_roundtrip(seed); });
    reg.add("net/udp_header_roundtrip_seed" + std::to_string(seed), VcCategory::kNetworkStack,
            [seed] { return vc_udp_header_roundtrip(seed); });
    reg.add("net/rtp_header_roundtrip_seed" + std::to_string(seed), VcCategory::kNetworkStack,
            [seed] { return vc_rtp_header_roundtrip(seed); });
  }
  reg.add("net/udp_delivery_clean", VcCategory::kNetworkStack,
          [] { return vc_udp_delivery_clean(); });
  reg.add("net/udp_drops_corruption", VcCategory::kNetworkStack,
          [] { return vc_udp_drops_corruption(); });
  for (u64 seed = 1; seed <= 2; ++seed) {
    reg.add("net/udp_no_misdelivery_seed" + std::to_string(seed), VcCategory::kNetworkStack,
            [seed] { return vc_udp_no_misdelivery(seed); });
  }
  reg.add("net/rtp_transfer_clean", VcCategory::kNetworkStack,
          [] { return vc_rtp_transfer(FabricConfig{}, 42, 64 * 1024, 4000); });
  for (u64 seed = 1; seed <= 3; ++seed) {
    reg.add("net/rtp_transfer_lossy_seed" + std::to_string(seed), VcCategory::kNetworkStack,
            [seed] {
              FabricConfig config;
              config.loss_ppm = 100'000;     // 10% loss
              config.dup_ppm = 50'000;       // 5% duplication
              config.reorder_ppm = 50'000;   // 5% reordering
              return vc_rtp_transfer(config, seed, 16 * 1024, 60'000);
            });
  }
  reg.add("net/rtp_fin_semantics", VcCategory::kNetworkStack,
          [] { return vc_rtp_fin_semantics(); });
  reg.add("net/rtp_duplicate_syn_safe", VcCategory::kNetworkStack,
          [] { return vc_rtp_duplicate_syn_safe(); });
  for (u64 seed = 1; seed <= 2; ++seed) {
    reg.add("net/rtp_bidirectional_lossy_seed" + std::to_string(seed),
            VcCategory::kNetworkStack, [seed] { return vc_rtp_bidirectional_lossy(seed); });
  }
  reg.add("net/rtp_two_clients_isolated", VcCategory::kNetworkStack,
          [] { return vc_rtp_two_clients_isolated(); });
  reg.add("net/udp_payload_extremes", VcCategory::kNetworkStack,
          [] { return vc_udp_payload_extremes(); });
  reg.add("net/ip_ttl_zero_dropped", VcCategory::kNetworkStack,
          [] { return vc_ip_ttl_zero_dropped(); });
}

}  // namespace vnros
