// RTP — the Reliable Transport Protocol (TCP-lite) of the vnros stack.
//
// Three-way handshake, byte-stream semantics, cumulative ACKs, Go-Back-N
// retransmission driven by virtual time. Deliberately smaller than TCP (no
// congestion control, no window scaling) but facing the same adversary: the
// fabric drops, duplicates and reorders frames.
//
// Spec (net/rtp_* VCs): for every connection, the byte sequence delivered to
// the receiving application is a *prefix* of the byte sequence the peer's
// application sent — in order, without gaps, duplication or corruption —
// and, if the fabric delivers each retransmission with nonzero probability,
// eventually the whole sequence (checked with bounded tick budgets).
#ifndef VNROS_SRC_NET_RTP_H_
#define VNROS_SRC_NET_RTP_H_

#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "src/base/result.h"
#include "src/hw/timer.h"
#include "src/net/ip.h"
#include "src/obs/registry.h"

namespace vnros {

using ConnId = u64;

enum class RtpState : u8 {
  kClosed,
  kListen,      // synthetic state for listener bookkeeping
  kSynSent,
  kSynRcvd,
  kEstablished,
  kFinWait,     // we sent FIN, draining
  kPeerClosed,  // peer sent FIN; reads drain then report PipeClosed
};

// Point-in-time snapshot of a stack's obs counters (see stats()).
struct RtpStats {
  u64 segments_tx = 0;
  u64 segments_rx = 0;
  u64 retransmits = 0;
  u64 out_of_order_dropped = 0;
  u64 duplicate_data = 0;
};

class RtpStack {
 public:
  static constexpr usize kMss = 1024;          // max payload per segment
  static constexpr usize kWindowSegments = 8;  // Go-Back-N window
  static constexpr u64 kRtoTicks = 16;         // retransmission timeout

  RtpStack(IpStack& ip, VirtualClock& clock);

  // --- Connection management -------------------------------------------------
  Result<Unit> listen(Port port);
  Result<ConnId> connect(NetAddr dst, Port dst_port, Port src_port);
  // Pops an established connection from `port`'s accept queue (kWouldBlock
  // while the handshake is incomplete).
  Result<ConnId> accept(Port port);
  Result<Unit> close(ConnId id);

  // --- Data ------------------------------------------------------------------
  // Appends to the send buffer; transmission happens on tick().
  Result<Unit> send(ConnId id, std::span<const u8> data);
  // Pops up to max_len in-order bytes; kWouldBlock when none buffered and the
  // peer is still open, kPipeClosed once drained after the peer's FIN.
  Result<std::vector<u8>> recv(ConnId id, usize max_len);

  // Drives the protocol: polls the IP layer, transmits eligible segments,
  // fires retransmission timeouts, advances virtual time by one tick.
  void tick();

  bool is_established(ConnId id) const;
  u64 unacked_bytes(ConnId id) const;

  // Thin view over the per-core obs counters ("rtp<N>/..."): race-free by
  // construction — each field is a merged relaxed read, no lock shared with
  // the datapath.
  RtpStats stats() const {
    return RtpStats{c_segments_tx_.value(), c_segments_rx_.value(), c_retransmits_.value(),
                    c_out_of_order_dropped_.value(), c_duplicate_data_.value()};
  }

 private:
  struct Conn {
    RtpState state = RtpState::kClosed;
    NetAddr peer = 0;
    Port local_port = 0;
    Port peer_port = 0;

    // Send side: bytes the app handed us, indexed from snd_base_seq.
    std::deque<u8> snd_buf;
    u64 snd_una = 1;       // lowest unacked byte seq
    u64 snd_base_seq = 1;  // seq of snd_buf.front()
    u64 last_tx_tick = 0;
    bool fin_queued = false;
    bool fin_acked = false;
    u64 fin_seq = 0;

    // Receive side.
    u64 rcv_nxt = 1;
    std::deque<u8> rcv_ready;  // in-order bytes awaiting the app
    bool peer_fin = false;
  };

  void on_segment(const IpHeader& ip, std::span<const u8> payload);
  void transmit(Conn& conn, RtpType type, u64 seq, u64 ack, std::span<const u8> payload);
  void send_window(ConnId id, Conn& conn);
  Conn* find_locked(ConnId id);
  ConnId match_locked(NetAddr peer, Port local, Port remote);

  IpStack& ip_;
  VirtualClock& clock_;
  mutable std::mutex mu_;
  std::map<ConnId, Conn> conns_;
  std::map<Port, std::deque<ConnId>> accept_queues_;  // listening ports
  ConnId next_id_ = 1;

  // Metrics: registry-owned per-core counters plus an instant span per
  // retransmission (the protocol's interesting event for traces).
  const std::string obs_prefix_;
  Counter& c_segments_tx_;
  Counter& c_segments_rx_;
  Counter& c_retransmits_;
  Counter& c_out_of_order_dropped_;
  Counter& c_duplicate_data_;
  const u32 span_retransmit_;
};

}  // namespace vnros

#endif  // VNROS_SRC_NET_RTP_H_
