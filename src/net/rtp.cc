#include "src/net/rtp.h"

#include <algorithm>

#include "src/base/contracts.h"
#include "src/base/crc.h"

namespace vnros {

void RtpHeader::encode(Writer& w) const {
  w.put_u16(src_port);
  w.put_u16(dst_port);
  w.put_u8(static_cast<u8>(type));
  w.put_u64(seq);
  w.put_u64(ack);
  w.put_u32(checksum);
}

std::optional<RtpHeader> RtpHeader::decode(Reader& r) {
  auto src = r.get_u16();
  auto dst = r.get_u16();
  auto type = r.get_u8();
  auto seq = r.get_u64();
  auto ack = r.get_u64();
  auto csum = r.get_u32();
  if (!src || !dst || !type || !seq || !ack || !csum) {
    return std::nullopt;
  }
  if (*type < static_cast<u8>(RtpType::kSyn) || *type > static_cast<u8>(RtpType::kRst)) {
    return std::nullopt;
  }
  return RtpHeader{*src, *dst, static_cast<RtpType>(*type), *seq, *ack, *csum};
}

RtpStack::RtpStack(IpStack& ip, VirtualClock& clock)
    : ip_(ip),
      clock_(clock),
      obs_prefix_(ObsRegistry::global().instance_prefix("rtp")),
      c_segments_tx_(ObsRegistry::global().counter(obs_prefix_ + "segments_tx")),
      c_segments_rx_(ObsRegistry::global().counter(obs_prefix_ + "segments_rx")),
      c_retransmits_(ObsRegistry::global().counter(obs_prefix_ + "retransmits")),
      c_out_of_order_dropped_(
          ObsRegistry::global().counter(obs_prefix_ + "out_of_order_dropped")),
      c_duplicate_data_(ObsRegistry::global().counter(obs_prefix_ + "duplicate_data")),
      span_retransmit_(ObsRegistry::global().tracer().intern_site("rtp/retransmit")) {
  ip_.register_proto(IpProto::kRtp, [this](const IpHeader& hdr, std::span<const u8> payload) {
    on_segment(hdr, payload);
  });
}

Result<Unit> RtpStack::listen(Port port) {
  std::lock_guard<std::mutex> lock(mu_);
  if (accept_queues_.count(port) != 0) {
    return ErrorCode::kAlreadyExists;
  }
  accept_queues_[port];
  return Unit{};
}

Result<ConnId> RtpStack::connect(NetAddr dst, Port dst_port, Port src_port) {
  std::lock_guard<std::mutex> lock(mu_);
  ConnId id = next_id_++;
  Conn conn;
  conn.state = RtpState::kSynSent;
  conn.peer = dst;
  conn.local_port = src_port;
  conn.peer_port = dst_port;
  conn.last_tx_tick = clock_.now();
  conns_[id] = conn;
  transmit(conns_[id], RtpType::kSyn, 0, 0, {});
  return id;
}

Result<ConnId> RtpStack::accept(Port port) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = accept_queues_.find(port);
  if (it == accept_queues_.end()) {
    return ErrorCode::kNotFound;
  }
  if (it->second.empty()) {
    return ErrorCode::kWouldBlock;
  }
  ConnId id = it->second.front();
  it->second.pop_front();
  return id;
}

Result<Unit> RtpStack::close(ConnId id) {
  std::lock_guard<std::mutex> lock(mu_);
  Conn* conn = find_locked(id);
  if (conn == nullptr) {
    return ErrorCode::kNotFound;
  }
  if (conn->state == RtpState::kEstablished || conn->state == RtpState::kPeerClosed) {
    conn->fin_queued = true;
    conn->state = RtpState::kFinWait;
    return Unit{};
  }
  conns_.erase(id);
  return Unit{};
}

Result<Unit> RtpStack::send(ConnId id, std::span<const u8> data) {
  std::lock_guard<std::mutex> lock(mu_);
  Conn* conn = find_locked(id);
  if (conn == nullptr) {
    return ErrorCode::kNotFound;
  }
  if (conn->state != RtpState::kEstablished && conn->state != RtpState::kSynSent &&
      conn->state != RtpState::kSynRcvd && conn->state != RtpState::kPeerClosed) {
    return ErrorCode::kNotConnected;
  }
  conn->snd_buf.insert(conn->snd_buf.end(), data.begin(), data.end());
  return Unit{};
}

Result<std::vector<u8>> RtpStack::recv(ConnId id, usize max_len) {
  std::lock_guard<std::mutex> lock(mu_);
  Conn* conn = find_locked(id);
  if (conn == nullptr) {
    return ErrorCode::kNotFound;
  }
  if (conn->rcv_ready.empty()) {
    if (conn->peer_fin) {
      return ErrorCode::kPipeClosed;
    }
    return ErrorCode::kWouldBlock;
  }
  usize n = std::min(max_len, conn->rcv_ready.size());
  std::vector<u8> out(conn->rcv_ready.begin(),
                      conn->rcv_ready.begin() + static_cast<std::ptrdiff_t>(n));
  conn->rcv_ready.erase(conn->rcv_ready.begin(),
                        conn->rcv_ready.begin() + static_cast<std::ptrdiff_t>(n));
  return out;
}

void RtpStack::transmit(Conn& conn, RtpType type, u64 seq, u64 ack,
                        std::span<const u8> payload) {
  Writer w;
  RtpHeader hdr{conn.local_port, conn.peer_port, type, seq, ack, crc32c(payload)};
  hdr.encode(w);
  w.put_raw(payload);
  c_segments_tx_.inc();
  (void)ip_.send(conn.peer, IpProto::kRtp, w.bytes());
}

void RtpStack::send_window(ConnId, Conn& conn) {
  if (conn.state != RtpState::kEstablished && conn.state != RtpState::kFinWait &&
      conn.state != RtpState::kPeerClosed) {
    return;
  }
  // Go-Back-N: (re)send up to kWindowSegments segments starting at snd_una.
  u64 seq = conn.snd_una;
  const u64 buffered_end = conn.snd_base_seq + conn.snd_buf.size();
  for (usize i = 0; i < kWindowSegments && seq < buffered_end; ++i) {
    u64 off = seq - conn.snd_base_seq;
    usize len = static_cast<usize>(std::min<u64>(kMss, buffered_end - seq));
    std::vector<u8> chunk(conn.snd_buf.begin() + static_cast<std::ptrdiff_t>(off),
                          conn.snd_buf.begin() + static_cast<std::ptrdiff_t>(off + len));
    transmit(conn, RtpType::kData, seq, conn.rcv_nxt, chunk);
    seq += len;
  }
  // FIN goes after all data is sent (it consumes one sequence number).
  if (conn.fin_queued && conn.snd_una >= buffered_end && !conn.fin_acked) {
    conn.fin_seq = buffered_end;
    transmit(conn, RtpType::kFin, conn.fin_seq, conn.rcv_nxt, {});
  }
  conn.last_tx_tick = clock_.now();
}

void RtpStack::tick() {
  ip_.poll();
  std::lock_guard<std::mutex> lock(mu_);
  const u64 now = clock_.now();
  for (auto& [id, conn] : conns_) {
    switch (conn.state) {
      case RtpState::kSynSent:
        if (now - conn.last_tx_tick >= kRtoTicks) {
          c_retransmits_.inc();
          ObsRegistry::global().tracer().point(span_retransmit_);
          transmit(conn, RtpType::kSyn, 0, 0, {});
          conn.last_tx_tick = now;
        }
        break;
      case RtpState::kSynRcvd:
        if (now - conn.last_tx_tick >= kRtoTicks) {
          c_retransmits_.inc();
          ObsRegistry::global().tracer().point(span_retransmit_);
          transmit(conn, RtpType::kSynAck, 0, 1, {});
          conn.last_tx_tick = now;
        }
        break;
      case RtpState::kEstablished:
      case RtpState::kFinWait:
      case RtpState::kPeerClosed: {
        const u64 buffered_end = conn.snd_base_seq + conn.snd_buf.size();
        const bool has_unacked = conn.snd_una < buffered_end ||
                                 (conn.fin_queued && !conn.fin_acked);
        if (has_unacked && now - conn.last_tx_tick >= kRtoTicks) {
          c_retransmits_.inc();
          ObsRegistry::global().tracer().point(span_retransmit_);
          send_window(id, conn);
        } else if (conn.snd_una < buffered_end &&
                   conn.last_tx_tick + 1 <= now) {
          // Fresh data waiting: transmit eagerly (one window per tick).
          send_window(id, conn);
        } else if (conn.fin_queued && !conn.fin_acked && conn.snd_una >= buffered_end &&
                   conn.last_tx_tick + 1 <= now) {
          send_window(id, conn);
        }
        break;
      }
      default:
        break;
    }
  }
  clock_.advance(1);
}

void RtpStack::on_segment(const IpHeader& ip, std::span<const u8> payload) {
  Reader r(payload);
  auto hdr = RtpHeader::decode(r);
  std::lock_guard<std::mutex> lock(mu_);
  c_segments_rx_.inc();
  if (!hdr) {
    return;
  }
  std::span<const u8> data(payload.data() + r.position(), payload.size() - r.position());
  if (crc32c(data) != hdr->checksum) {
    return;  // integrity: corrupted segments are dropped
  }

  switch (hdr->type) {
    case RtpType::kSyn: {
      auto lq = accept_queues_.find(hdr->dst_port);
      if (lq == accept_queues_.end()) {
        return;  // no listener: silently drop (a full stack would RST)
      }
      ConnId existing = match_locked(ip.src, hdr->dst_port, hdr->src_port);
      if (existing != 0) {
        // Duplicate SYN: re-send SYN-ACK.
        transmit(conns_[existing], RtpType::kSynAck, 0, 1, {});
        return;
      }
      ConnId id = next_id_++;
      Conn conn;
      conn.state = RtpState::kSynRcvd;
      conn.peer = ip.src;
      conn.local_port = hdr->dst_port;
      conn.peer_port = hdr->src_port;
      conn.last_tx_tick = clock_.now();
      conns_[id] = conn;
      transmit(conns_[id], RtpType::kSynAck, 0, 1, {});
      return;
    }
    case RtpType::kSynAck: {
      ConnId id = match_locked(ip.src, hdr->dst_port, hdr->src_port);
      if (id == 0) {
        return;
      }
      Conn& conn = conns_[id];
      if (conn.state == RtpState::kSynSent) {
        conn.state = RtpState::kEstablished;
      }
      // Complete the handshake (also answers duplicate SYN-ACKs).
      transmit(conn, RtpType::kAck, 0, conn.rcv_nxt, {});
      return;
    }
    case RtpType::kAck: {
      ConnId id = match_locked(ip.src, hdr->dst_port, hdr->src_port);
      if (id == 0) {
        return;
      }
      Conn& conn = conns_[id];
      if (conn.state == RtpState::kSynRcvd) {
        conn.state = RtpState::kEstablished;
        auto lq = accept_queues_.find(conn.local_port);
        if (lq != accept_queues_.end()) {
          lq->second.push_back(id);
        }
      }
      // Cumulative ACK: discard acked bytes.
      if (hdr->ack > conn.snd_una) {
        u64 advance = std::min<u64>(hdr->ack, conn.snd_base_seq + conn.snd_buf.size()) -
                      conn.snd_base_seq;
        conn.snd_buf.erase(conn.snd_buf.begin(),
                           conn.snd_buf.begin() + static_cast<std::ptrdiff_t>(advance));
        conn.snd_base_seq += advance;
        conn.snd_una = hdr->ack;
      }
      if (conn.fin_queued && hdr->ack > conn.fin_seq && conn.fin_seq != 0) {
        conn.fin_acked = true;
      }
      return;
    }
    case RtpType::kData: {
      ConnId id = match_locked(ip.src, hdr->dst_port, hdr->src_port);
      if (id == 0) {
        return;
      }
      Conn& conn = conns_[id];
      if (conn.state == RtpState::kSynRcvd) {
        // Data implies our SYN-ACK arrived: promote (the ACK was lost).
        conn.state = RtpState::kEstablished;
        auto lq = accept_queues_.find(conn.local_port);
        if (lq != accept_queues_.end()) {
          lq->second.push_back(id);
        }
      }
      if (hdr->seq == conn.rcv_nxt) {
        conn.rcv_ready.insert(conn.rcv_ready.end(), data.begin(), data.end());
        conn.rcv_nxt += data.size();
      } else if (hdr->seq < conn.rcv_nxt) {
        c_duplicate_data_.inc();  // retransmission we already have
      } else {
        c_out_of_order_dropped_.inc();  // Go-Back-N: receiver drops gaps
      }
      transmit(conn, RtpType::kAck, 0, conn.rcv_nxt, {});
      return;
    }
    case RtpType::kFin: {
      ConnId id = match_locked(ip.src, hdr->dst_port, hdr->src_port);
      if (id == 0) {
        return;
      }
      Conn& conn = conns_[id];
      if (hdr->seq == conn.rcv_nxt) {
        conn.rcv_nxt += 1;  // FIN consumes a sequence number
        conn.peer_fin = true;
        if (conn.state == RtpState::kEstablished) {
          conn.state = RtpState::kPeerClosed;
        }
      }
      transmit(conn, RtpType::kAck, 0, conn.rcv_nxt, {});
      return;
    }
    case RtpType::kRst:
      return;  // not generated by this stack
  }
}

RtpStack::Conn* RtpStack::find_locked(ConnId id) {
  auto it = conns_.find(id);
  return it == conns_.end() ? nullptr : &it->second;
}

ConnId RtpStack::match_locked(NetAddr peer, Port local, Port remote) {
  for (auto& [id, conn] : conns_) {
    if (conn.peer == peer && conn.local_port == local && conn.peer_port == remote) {
      return id;
    }
  }
  return 0;
}

bool RtpStack::is_established(ConnId id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = conns_.find(id);
  return it != conns_.end() && (it->second.state == RtpState::kEstablished ||
                                it->second.state == RtpState::kPeerClosed ||
                                it->second.state == RtpState::kFinWait);
}

u64 RtpStack::unacked_bytes(ConnId id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = conns_.find(id);
  if (it == conns_.end()) {
    return 0;
  }
  return it->second.snd_base_seq + it->second.snd_buf.size() - it->second.snd_una;
}

}  // namespace vnros
