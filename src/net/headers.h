// Wire formats for the vnros network stack.
//
// A deliberately small stack (§6 names a verified network stack as an open
// research artifact): link frames carry IPv4-lite datagrams, which carry
// either UDP segments or RTP (reliable transport protocol, a TCP-lite)
// segments. All headers serialize through src/base/serde so the round-trip
// verification conditions (net/header_roundtrip_*) cover every field, and a
// truncated or corrupted header decodes to nullopt rather than garbage.
#ifndef VNROS_SRC_NET_HEADERS_H_
#define VNROS_SRC_NET_HEADERS_H_

#include <optional>
#include <span>
#include <vector>

#include "src/base/serde.h"
#include "src/base/types.h"

namespace vnros {

// Host address: the fabric link address doubles as the IP-lite address.
using NetAddr = u32;
using Port = u16;

enum class IpProto : u8 {
  kUdp = 17,
  kRtp = 142,  // our reliable transport (datagram-era, Go-Back-N)
  kVtp = 143,  // verified transport protocol: stream sockets, windowed + AIMD
};

struct IpHeader {
  NetAddr src = 0;
  NetAddr dst = 0;
  IpProto proto = IpProto::kUdp;
  u8 ttl = 16;

  void encode(Writer& w) const;
  static std::optional<IpHeader> decode(Reader& r);

  bool operator==(const IpHeader&) const = default;
};

struct UdpHeader {
  Port src_port = 0;
  Port dst_port = 0;
  u32 checksum = 0;  // crc32c of the payload

  void encode(Writer& w) const;
  static std::optional<UdpHeader> decode(Reader& r);

  bool operator==(const UdpHeader&) const = default;
};

// RTP segment types.
enum class RtpType : u8 {
  kSyn = 1,
  kSynAck = 2,
  kData = 3,
  kAck = 4,
  kFin = 5,
  kRst = 6,
};

struct RtpHeader {
  Port src_port = 0;
  Port dst_port = 0;
  RtpType type = RtpType::kData;
  u64 seq = 0;   // first payload byte's sequence number (kData), or ISN (kSyn)
  u64 ack = 0;   // cumulative: next byte expected from the peer
  u32 checksum = 0;

  void encode(Writer& w) const;
  static std::optional<RtpHeader> decode(Reader& r);

  bool operator==(const RtpHeader&) const = default;
};

// VTP segment types. Same handshake alphabet as RTP; VTP additionally uses
// kRst as a typed connection abort (the reject reason rides in `seq`).
enum class VtpType : u8 {
  kSyn = 1,
  kSynAck = 2,
  kData = 3,
  kAck = 4,
  kFin = 5,
  kRst = 6,
};

struct VtpHeader {
  Port src_port = 0;
  Port dst_port = 0;
  VtpType type = VtpType::kData;
  u64 seq = 0;   // first payload byte's sequence number (kData), or the
                 // ErrorCode reject reason (kRst)
  u64 ack = 0;   // cumulative: next byte expected from the peer
  u32 wnd = 0;   // receiver-advertised window, in bytes past `ack`
  u32 checksum = 0;

  void encode(Writer& w) const;
  static std::optional<VtpHeader> decode(Reader& r);

  bool operator==(const VtpHeader&) const = default;
};

}  // namespace vnros

#endif  // VNROS_SRC_NET_HEADERS_H_
