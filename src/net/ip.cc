#include "src/net/ip.h"

namespace vnros {

void IpHeader::encode(Writer& w) const {
  w.put_u32(src);
  w.put_u32(dst);
  w.put_u8(static_cast<u8>(proto));
  w.put_u8(ttl);
}

std::optional<IpHeader> IpHeader::decode(Reader& r) {
  auto src = r.get_u32();
  auto dst = r.get_u32();
  auto proto = r.get_u8();
  auto ttl = r.get_u8();
  if (!src || !dst || !proto || !ttl) {
    return std::nullopt;
  }
  if (*proto != static_cast<u8>(IpProto::kUdp) && *proto != static_cast<u8>(IpProto::kRtp) &&
      *proto != static_cast<u8>(IpProto::kVtp)) {
    return std::nullopt;
  }
  return IpHeader{*src, *dst, static_cast<IpProto>(*proto), *ttl};
}

Result<Unit> IpStack::send(NetAddr dst, IpProto proto, std::span<const u8> payload) {
  Writer w;
  IpHeader hdr{addr(), dst, proto, 16};
  hdr.encode(w);
  w.put_raw(payload);
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.tx;
  }
  return dev_.send(dst, w.take());
}

void IpStack::register_proto(IpProto proto,
                             std::function<void(const IpHeader&, std::span<const u8>)> handler) {
  std::lock_guard<std::mutex> lock(mu_);
  handlers_[static_cast<u8>(proto)] = std::move(handler);
}

usize IpStack::poll() {
  usize processed = 0;
  while (auto frame = dev_.poll_rx()) {
    ++processed;
    Reader r(frame->payload);
    auto hdr = IpHeader::decode(r);
    std::function<void(const IpHeader&, std::span<const u8>)> handler;
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.rx;
      if (!hdr) {
        ++stats_.rx_bad_header;
        continue;
      }
      if (hdr->ttl == 0) {
        ++stats_.rx_ttl_expired;
        continue;
      }
      auto it = handlers_.find(static_cast<u8>(hdr->proto));
      if (it == handlers_.end()) {
        ++stats_.rx_no_handler;
        continue;
      }
      handler = it->second;
    }
    std::span<const u8> payload(frame->payload.data() + r.position(),
                                frame->payload.size() - r.position());
    handler(*hdr, payload);
  }
  return processed;
}

}  // namespace vnros
