// VTP — the Verified Transport Protocol: the stream-socket promotion of RTP.
//
// Where RTP stops at Go-Back-N with a fixed window, VTP carries the full
// connection-oriented contract the Sys socket surface exposes:
//   - listen with a bounded backlog + accept queue; SYNs past the backlog are
//     shed with a typed kOverloaded RST (visible at the connecting end);
//   - a three-way handshake whose SYN retransmits are budgeted — exhaustion
//     surfaces kTimedOut on the connection instead of retrying forever;
//   - sliding-window flow control against the receiver-advertised window
//     (every segment carries the advertisement; a zero window stalls the
//     sender, which probes with empty kData segments, and the receiver posts
//     a window-update ACK when the application read reopens it);
//   - an AIMD congestion window: slow start to ssthresh, additive increase
//     past it, multiplicative decrease (and a fresh ssthresh) on RTO loss;
//   - selective cumulative-ACK retransmission: only the segment at snd_una is
//     resent on timeout, out-of-order arrivals are buffered for reassembly
//     instead of dropped (RTP's receiver discards gaps).
//
// Spec (net/vtp_* VCs, src/spec/pipe.h): each direction of every connection
// refines a reliable FIFO pipe — the byte sequence delivered to the receiving
// application is a prefix of the byte sequence the sender's application
// pushed, and under a fair-loss fabric (every retransmission delivered with
// nonzero probability; partitions eventually healed) the whole sequence is
// delivered. Window safety is an invariant, not a liveness property: bytes
// in flight past snd_una never exceed the last advertised window.
//
// Fault sites: "net/vtp_handshake" (an armed fire drops one handshake step —
// connect's SYN, a listener's SYN-ACK, or the final ACK) and
// "net/vtp_segment" (an armed fire drops one outbound segment at the stack
// boundary, below which the fabric's own loss/dup/reorder model applies).
#ifndef VNROS_SRC_NET_VTP_H_
#define VNROS_SRC_NET_VTP_H_

#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "src/base/fault.h"
#include "src/base/result.h"
#include "src/hw/timer.h"
#include "src/net/ip.h"
#include "src/obs/registry.h"

namespace vnros {

using ConnId = u64;

enum class VtpState : u8 {
  kClosed,
  kSynSent,
  kSynRcvd,
  kEstablished,
  kFinWait,     // we sent FIN; draining our unacked data + awaiting FIN ack
  kPeerClosed,  // peer sent FIN; reads drain then report kPipeClosed
  kError,       // terminal typed failure (kTimedOut / kConnReset / kOverloaded)
};

// Point-in-time snapshot of a stack's obs counters (see stats()).
struct VtpStats {
  u64 segments_tx = 0;
  u64 segments_rx = 0;
  u64 retransmits = 0;
  u64 cwnd_halvings = 0;
  u64 accept_shed = 0;          // SYNs refused because the backlog was full
  u64 ooo_buffered = 0;         // out-of-order segments kept for reassembly
  u64 duplicate_data = 0;
  u64 window_probes = 0;        // empty kData probes sent against a zero window
  u64 window_updates = 0;       // ACKs posted because a read reopened the window
  u64 window_violations = 0;    // safety tripwire: must stay 0 (VC-pinned)
  u64 resets_tx = 0;
  u64 conns_opened = 0;
  u64 conns_closed = 0;
};

class VtpStack {
 public:
  static constexpr usize kMss = 1024;            // max payload per segment
  static constexpr usize kRcvWindow = 16 * 1024; // receive buffer / max advertisement
  static constexpr usize kSndBufMax = 256 * 1024;  // send-side backpressure bound
  static constexpr u64 kRtoTicks = 16;           // retransmission timeout
  static constexpr u32 kMaxSynRetries = 5;       // then kTimedOut on the conn
  static constexpr usize kDefaultBacklog = 16;

  VtpStack(IpStack& ip, VirtualClock& clock);

  // --- Connection management -------------------------------------------------
  // `backlog` bounds accept queue + in-progress handshakes; SYNs beyond it
  // are shed with a typed kOverloaded RST.
  Result<Unit> listen(Port port, usize backlog = kDefaultBacklog);
  // Tears the listener down; queued-but-unaccepted connections are reset.
  Result<Unit> unlisten(Port port);
  Result<ConnId> connect(NetAddr dst, Port dst_port, Port src_port);
  // Pops an established connection from `port`'s accept queue (kWouldBlock
  // while empty — transient, ring-parkable).
  Result<ConnId> accept(Port port);
  Result<Unit> close(ConnId id);

  // --- Data ------------------------------------------------------------------
  // Appends up to `data.size()` bytes to the send buffer and returns how many
  // were accepted; kWouldBlock when the buffer is full (transient,
  // ring-parkable). Transmission is driven by tick() and ACK clocking.
  Result<usize> send(ConnId id, std::span<const u8> data);
  // Pops up to max_len in-order bytes; kWouldBlock when none buffered and the
  // peer is still open, kPipeClosed once drained after the peer's FIN, or the
  // connection's typed terminal error.
  Result<std::vector<u8>> recv(ConnId id, usize max_len);

  // Drains the IP layer and dispatches inbound segments (no time advance);
  // send/recv/accept call this so ring-parked retries make progress.
  void poll();
  // poll() + transmit eligible segments + fire retransmission/probe timers +
  // reap fully-closed connections; advances virtual time by one tick.
  void tick();

  bool is_established(ConnId id) const;
  VtpState state(ConnId id) const;
  // The connection's terminal typed error (kOk while healthy).
  ErrorCode conn_error(ConnId id) const;
  u64 unacked_bytes(ConnId id) const;
  usize active_conns() const;
  u64 accept_queue_p99() const { return h_accept_queue_->snapshot().percentile(99.0); }

  // Thin race-free view over the per-core obs counters ("vtp<N>/...").
  VtpStats stats() const {
    return VtpStats{c_segments_tx_.value(),   c_segments_rx_.value(),
                    c_retransmits_.value(),   c_cwnd_halvings_.value(),
                    c_accept_shed_.value(),   c_ooo_buffered_.value(),
                    c_duplicate_data_.value(), c_window_probes_.value(),
                    c_window_updates_.value(), c_window_violations_.value(),
                    c_resets_tx_.value(),     c_conns_opened_.value(),
                    c_conns_closed_.value()};
  }

 private:
  struct Conn {
    VtpState state = VtpState::kClosed;
    NetAddr peer = 0;
    Port local_port = 0;
    Port peer_port = 0;
    ErrorCode error = ErrorCode::kOk;  // terminal reason when state == kError

    // Send side: bytes the app handed us, indexed from snd_base_seq.
    std::deque<u8> snd_buf;
    u64 snd_base_seq = 1;
    u64 snd_una = 1;   // lowest unacked byte seq
    u64 snd_nxt = 1;   // next never-transmitted byte seq
    u64 peer_wnd = kRcvWindow;  // last receiver advertisement
    u64 cwnd = 2 * kMss;
    u64 ssthresh = kRcvWindow;
    u64 last_progress_tick = 0;  // last snd_una advance or head (re)transmit
    u32 syn_retries = 0;
    bool fin_queued = false;
    bool fin_acked = false;
    u64 fin_seq = 0;

    // Receive side: in-order bytes ready for the app, plus a bounded
    // reassembly buffer of out-of-order segments keyed by sequence.
    u64 rcv_nxt = 1;
    std::deque<u8> rcv_ready;
    std::map<u64, std::vector<u8>> ooo;
    usize ooo_bytes = 0;
    bool peer_fin = false;
    u64 peer_fin_seq = 0;  // nonzero once the peer's FIN seq is known

    u64 bytes_in_flight() const { return snd_nxt - snd_una; }
    u64 buffered_end() const { return snd_base_seq + snd_buf.size(); }
    u64 advertised_wnd() const {
      usize used = rcv_ready.size() + ooo_bytes;
      return used >= kRcvWindow ? 0 : kRcvWindow - used;
    }
  };

  struct Listener {
    usize backlog = kDefaultBacklog;
    std::deque<ConnId> queue;  // established, awaiting accept()
  };

  void on_segment(const IpHeader& ip, std::span<const u8> payload);
  void transmit(Conn& conn, VtpType type, u64 seq, u64 ack, std::span<const u8> payload);
  void transmit_rst(NetAddr dst, Port src_port, Port dst_port, ErrorCode reason);
  // Sends new data permitted by min(cwnd, peer_wnd) starting at snd_nxt;
  // called from tick(), send() and ACK arrival (ack clocking).
  void pump_send_locked(Conn& conn);
  void retransmit_head_locked(Conn& conn);
  void ack_locked(Conn& conn);
  void fail_locked(Conn& conn, ErrorCode reason);
  usize synrcvd_count_locked(Port port) const;
  Conn* find_locked(ConnId id);
  const Conn* find_locked(ConnId id) const;
  ConnId match_locked(NetAddr peer, Port local, Port remote) const;

  IpStack& ip_;
  VirtualClock& clock_;
  mutable std::mutex mu_;
  std::map<ConnId, Conn> conns_;
  std::map<Port, Listener> listeners_;
  ConnId next_id_ = 1;

  const std::string obs_prefix_;
  Counter& c_segments_tx_;
  Counter& c_segments_rx_;
  Counter& c_retransmits_;
  Counter& c_cwnd_halvings_;
  Counter& c_accept_shed_;
  Counter& c_ooo_buffered_;
  Counter& c_duplicate_data_;
  Counter& c_window_probes_;
  Counter& c_window_updates_;
  Counter& c_window_violations_;
  Counter& c_resets_tx_;
  Counter& c_conns_opened_;
  Counter& c_conns_closed_;
  Histogram* h_accept_queue_;  // queue depth sampled at each enqueue
  const u32 span_handshake_;
  const u32 span_retransmit_;
  FaultSite* fault_handshake_;
  FaultSite* fault_segment_;
};

}  // namespace vnros

#endif  // VNROS_SRC_NET_VTP_H_
