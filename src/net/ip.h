// IPv4-lite layer: encapsulation over the link fabric plus dispatch to the
// transport layers by protocol number.
#ifndef VNROS_SRC_NET_IP_H_
#define VNROS_SRC_NET_IP_H_

#include <functional>
#include <map>
#include <mutex>

#include "src/base/result.h"
#include "src/hw/network.h"
#include "src/net/headers.h"

namespace vnros {

struct IpStats {
  u64 tx = 0;
  u64 rx = 0;
  u64 rx_bad_header = 0;
  u64 rx_ttl_expired = 0;
  u64 rx_no_handler = 0;
};

class IpStack {
 public:
  explicit IpStack(NetDevice& dev) : dev_(dev) {}

  NetAddr addr() const { return dev_.addr(); }

  Result<Unit> send(NetAddr dst, IpProto proto, std::span<const u8> payload);

  // Registers the transport handler for `proto` (payload, header).
  void register_proto(IpProto proto,
                      std::function<void(const IpHeader&, std::span<const u8>)> handler);

  // Drains the device RX ring, dispatching every datagram. Returns how many
  // frames were processed (drivers poll; no interrupt plumbing needed here).
  usize poll();

  const IpStats& stats() const { return stats_; }

 private:
  NetDevice& dev_;
  std::mutex mu_;
  std::map<u8, std::function<void(const IpHeader&, std::span<const u8>)>> handlers_;
  IpStats stats_;
};

}  // namespace vnros

#endif  // VNROS_SRC_NET_IP_H_
