#include "src/net/vtp.h"

#include <algorithm>

#include "src/base/contracts.h"
#include "src/base/crc.h"

namespace vnros {
namespace {

// RST reject reasons a peer may legitimately carry in the seq field; anything
// else decodes to the generic kConnReset so a corrupted-but-checksummed RST
// cannot smuggle an arbitrary error code into the application.
ErrorCode rst_reason(u64 raw) {
  switch (static_cast<ErrorCode>(raw)) {
    case ErrorCode::kConnRefused:
    case ErrorCode::kOverloaded:
    case ErrorCode::kConnReset:
      return static_cast<ErrorCode>(raw);
    default:
      return ErrorCode::kConnReset;
  }
}

}  // namespace

void VtpHeader::encode(Writer& w) const {
  w.put_u16(src_port);
  w.put_u16(dst_port);
  w.put_u8(static_cast<u8>(type));
  w.put_u64(seq);
  w.put_u64(ack);
  w.put_u32(wnd);
  w.put_u32(checksum);
}

std::optional<VtpHeader> VtpHeader::decode(Reader& r) {
  auto src = r.get_u16();
  auto dst = r.get_u16();
  auto type = r.get_u8();
  auto seq = r.get_u64();
  auto ack = r.get_u64();
  auto wnd = r.get_u32();
  auto csum = r.get_u32();
  if (!src || !dst || !type || !seq || !ack || !wnd || !csum) {
    return std::nullopt;
  }
  if (*type < static_cast<u8>(VtpType::kSyn) || *type > static_cast<u8>(VtpType::kRst)) {
    return std::nullopt;
  }
  return VtpHeader{*src, *dst, static_cast<VtpType>(*type), *seq, *ack, *wnd, *csum};
}

VtpStack::VtpStack(IpStack& ip, VirtualClock& clock)
    : ip_(ip),
      clock_(clock),
      obs_prefix_(ObsRegistry::global().instance_prefix("vtp")),
      c_segments_tx_(ObsRegistry::global().counter(obs_prefix_ + "segments_tx")),
      c_segments_rx_(ObsRegistry::global().counter(obs_prefix_ + "segments_rx")),
      c_retransmits_(ObsRegistry::global().counter(obs_prefix_ + "retransmits")),
      c_cwnd_halvings_(ObsRegistry::global().counter(obs_prefix_ + "cwnd_halvings")),
      c_accept_shed_(ObsRegistry::global().counter(obs_prefix_ + "accept_shed")),
      c_ooo_buffered_(ObsRegistry::global().counter(obs_prefix_ + "ooo_buffered")),
      c_duplicate_data_(ObsRegistry::global().counter(obs_prefix_ + "duplicate_data")),
      c_window_probes_(ObsRegistry::global().counter(obs_prefix_ + "window_probes")),
      c_window_updates_(ObsRegistry::global().counter(obs_prefix_ + "window_updates")),
      c_window_violations_(ObsRegistry::global().counter(obs_prefix_ + "window_violations")),
      c_resets_tx_(ObsRegistry::global().counter(obs_prefix_ + "resets_tx")),
      c_conns_opened_(ObsRegistry::global().counter(obs_prefix_ + "conns_opened")),
      c_conns_closed_(ObsRegistry::global().counter(obs_prefix_ + "conns_closed")),
      h_accept_queue_(&ObsRegistry::global().histogram(obs_prefix_ + "accept_queue")),
      span_handshake_(ObsRegistry::global().tracer().intern_site("vtp/handshake")),
      span_retransmit_(ObsRegistry::global().tracer().intern_site("vtp/retransmit")),
      fault_handshake_(&FaultRegistry::global().site("net/vtp_handshake")),
      fault_segment_(&FaultRegistry::global().site("net/vtp_segment")) {
  ip_.register_proto(IpProto::kVtp, [this](const IpHeader& hdr, std::span<const u8> payload) {
    on_segment(hdr, payload);
  });
}

Result<Unit> VtpStack::listen(Port port, usize backlog) {
  if (backlog == 0) {
    return ErrorCode::kInvalidArgument;
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (listeners_.count(port) != 0) {
    return ErrorCode::kAlreadyExists;
  }
  listeners_[port].backlog = backlog;
  return Unit{};
}

Result<Unit> VtpStack::unlisten(Port port) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = listeners_.find(port);
  if (it == listeners_.end()) {
    return ErrorCode::kNotFound;
  }
  // Queued-but-unaccepted connections will never reach an application: abort
  // them so the peer sees a typed reset instead of a silent black hole.
  for (ConnId id : it->second.queue) {
    Conn* conn = find_locked(id);
    if (conn != nullptr) {
      transmit_rst(conn->peer, conn->local_port, conn->peer_port, ErrorCode::kConnReset);
      conns_.erase(id);
      c_conns_closed_.inc();
    }
  }
  listeners_.erase(it);
  return Unit{};
}

Result<ConnId> VtpStack::connect(NetAddr dst, Port dst_port, Port src_port) {
  std::lock_guard<std::mutex> lock(mu_);
  ConnId id = next_id_++;
  Conn conn;
  conn.state = VtpState::kSynSent;
  conn.peer = dst;
  conn.local_port = src_port;
  conn.peer_port = dst_port;
  conn.last_progress_tick = clock_.now();
  conns_[id] = conn;
  c_conns_opened_.inc();
  if (!fault_handshake_->fire()) {
    transmit(conns_[id], VtpType::kSyn, 0, 0, {});
  }
  return id;
}

Result<ConnId> VtpStack::accept(Port port) {
  poll();
  std::lock_guard<std::mutex> lock(mu_);
  auto it = listeners_.find(port);
  if (it == listeners_.end()) {
    return ErrorCode::kNotFound;
  }
  if (it->second.queue.empty()) {
    return ErrorCode::kWouldBlock;
  }
  ConnId id = it->second.queue.front();
  it->second.queue.pop_front();
  return id;
}

Result<Unit> VtpStack::close(ConnId id) {
  std::lock_guard<std::mutex> lock(mu_);
  Conn* conn = find_locked(id);
  if (conn == nullptr) {
    return ErrorCode::kNotFound;
  }
  if (conn->state == VtpState::kEstablished || conn->state == VtpState::kPeerClosed ||
      conn->state == VtpState::kFinWait) {
    if (!conn->fin_queued) {
      conn->fin_queued = true;
      conn->state = VtpState::kFinWait;
      pump_send_locked(*conn);
    }
    return Unit{};
  }
  // Handshake-stage or already-failed connection: nothing to drain.
  conns_.erase(id);
  c_conns_closed_.inc();
  return Unit{};
}

Result<usize> VtpStack::send(ConnId id, std::span<const u8> data) {
  poll();
  std::lock_guard<std::mutex> lock(mu_);
  Conn* conn = find_locked(id);
  if (conn == nullptr) {
    return ErrorCode::kNotFound;
  }
  if (conn->state == VtpState::kError) {
    return conn->error;
  }
  if (conn->state != VtpState::kEstablished && conn->state != VtpState::kSynSent &&
      conn->state != VtpState::kSynRcvd && conn->state != VtpState::kPeerClosed) {
    return ErrorCode::kNotConnected;
  }
  if (conn->snd_buf.size() >= kSndBufMax) {
    return ErrorCode::kWouldBlock;  // transient: ring-parkable backpressure
  }
  usize n = std::min(data.size(), kSndBufMax - conn->snd_buf.size());
  conn->snd_buf.insert(conn->snd_buf.end(), data.begin(), data.begin() + n);
  pump_send_locked(*conn);
  return n;
}

Result<std::vector<u8>> VtpStack::recv(ConnId id, usize max_len) {
  poll();
  std::lock_guard<std::mutex> lock(mu_);
  Conn* conn = find_locked(id);
  if (conn == nullptr) {
    return ErrorCode::kNotFound;
  }
  if (conn->rcv_ready.empty()) {
    if (conn->state == VtpState::kError) {
      return conn->error;
    }
    if (conn->peer_fin) {
      return ErrorCode::kPipeClosed;
    }
    return ErrorCode::kWouldBlock;
  }
  const bool was_closed = conn->advertised_wnd() == 0;
  usize n = std::min(max_len, conn->rcv_ready.size());
  std::vector<u8> out(conn->rcv_ready.begin(),
                      conn->rcv_ready.begin() + static_cast<std::ptrdiff_t>(n));
  conn->rcv_ready.erase(conn->rcv_ready.begin(),
                        conn->rcv_ready.begin() + static_cast<std::ptrdiff_t>(n));
  // The read reopened a closed (or shrunken-to-zero) window: tell the peer
  // proactively, or its only recovery is the slow zero-window probe.
  if (was_closed && conn->advertised_wnd() > 0 && conn->state != VtpState::kError) {
    c_window_updates_.inc();
    ack_locked(*conn);
  }
  return out;
}

void VtpStack::poll() {
  ip_.poll();
}

void VtpStack::transmit(Conn& conn, VtpType type, u64 seq, u64 ack,
                        std::span<const u8> payload) {
  if (fault_segment_->fire()) {
    return;  // injected loss at the stack boundary (retransmit must recover)
  }
  Writer w;
  VtpHeader hdr{conn.local_port, conn.peer_port, type, seq, ack,
                static_cast<u32>(conn.advertised_wnd()), crc32c(payload)};
  hdr.encode(w);
  w.put_raw(payload);
  c_segments_tx_.inc();
  (void)ip_.send(conn.peer, IpProto::kVtp, w.bytes());
}

void VtpStack::transmit_rst(NetAddr dst, Port src_port, Port dst_port, ErrorCode reason) {
  Writer w;
  VtpHeader hdr{src_port, dst_port, VtpType::kRst, static_cast<u64>(reason), 0, 0,
                crc32c(std::span<const u8>{})};
  hdr.encode(w);
  c_resets_tx_.inc();
  c_segments_tx_.inc();
  (void)ip_.send(dst, IpProto::kVtp, w.bytes());
}

void VtpStack::ack_locked(Conn& conn) {
  transmit(conn, VtpType::kAck, 0, conn.rcv_nxt, {});
}

void VtpStack::fail_locked(Conn& conn, ErrorCode reason) {
  conn.state = VtpState::kError;
  conn.error = reason;
  conn.snd_buf.clear();
  conn.ooo.clear();
  conn.ooo_bytes = 0;
}

void VtpStack::pump_send_locked(Conn& conn) {
  if (conn.state != VtpState::kEstablished && conn.state != VtpState::kFinWait &&
      conn.state != VtpState::kPeerClosed) {
    return;
  }
  const u64 buffered_end = conn.buffered_end();
  const u64 wnd = std::min<u64>(conn.cwnd, conn.peer_wnd);
  while (conn.snd_nxt < buffered_end && conn.bytes_in_flight() < wnd) {
    usize len = static_cast<usize>(std::min<u64>(
        {kMss, buffered_end - conn.snd_nxt, wnd - conn.bytes_in_flight()}));
    // Window safety tripwire: this transmission must sit inside the peer's
    // advertisement. The arithmetic above guarantees it; the counter makes
    // the guarantee observable to the window-safety VC.
    if (conn.snd_nxt + len > conn.snd_una + conn.peer_wnd) {
      c_window_violations_.inc();
      return;
    }
    u64 off = conn.snd_nxt - conn.snd_base_seq;
    std::vector<u8> chunk(conn.snd_buf.begin() + static_cast<std::ptrdiff_t>(off),
                          conn.snd_buf.begin() + static_cast<std::ptrdiff_t>(off + len));
    if (conn.bytes_in_flight() == 0) {
      conn.last_progress_tick = clock_.now();  // (re)arm the RTO at head send
    }
    transmit(conn, VtpType::kData, conn.snd_nxt, conn.rcv_nxt, chunk);
    conn.snd_nxt += len;
  }
  // FIN goes after all data has been transmitted (it consumes one seq).
  if (conn.fin_queued && !conn.fin_acked && conn.snd_nxt >= buffered_end &&
      conn.fin_seq == 0) {
    conn.fin_seq = buffered_end;
    conn.last_progress_tick = clock_.now();
    transmit(conn, VtpType::kFin, conn.fin_seq, conn.rcv_nxt, {});
  }
}

void VtpStack::retransmit_head_locked(Conn& conn) {
  c_retransmits_.inc();
  ObsRegistry::global().tracer().point(span_retransmit_);
  // Multiplicative decrease + fresh slow-start threshold, then resend only
  // the segment at snd_una (selective: the reassembly buffer at the receiver
  // keeps everything after the gap, unlike Go-Back-N).
  conn.ssthresh = std::max<u64>(conn.cwnd / 2, kMss);
  conn.cwnd = std::max<u64>(conn.cwnd / 2, kMss);
  c_cwnd_halvings_.inc();
  const u64 buffered_end = conn.buffered_end();
  if (conn.snd_una < buffered_end && conn.snd_una < conn.snd_nxt) {
    usize len = static_cast<usize>(
        std::min<u64>({kMss, buffered_end - conn.snd_una, conn.snd_nxt - conn.snd_una}));
    u64 off = conn.snd_una - conn.snd_base_seq;
    std::vector<u8> chunk(conn.snd_buf.begin() + static_cast<std::ptrdiff_t>(off),
                          conn.snd_buf.begin() + static_cast<std::ptrdiff_t>(off + len));
    transmit(conn, VtpType::kData, conn.snd_una, conn.rcv_nxt, chunk);
  } else if (conn.fin_queued && !conn.fin_acked && conn.fin_seq != 0) {
    transmit(conn, VtpType::kFin, conn.fin_seq, conn.rcv_nxt, {});
  }
  conn.last_progress_tick = clock_.now();
}

void VtpStack::tick() {
  ip_.poll();
  std::lock_guard<std::mutex> lock(mu_);
  const u64 now = clock_.now();
  std::vector<ConnId> reap;
  for (auto& [id, conn] : conns_) {
    switch (conn.state) {
      case VtpState::kSynSent:
        if (now - conn.last_progress_tick >= kRtoTicks) {
          if (conn.syn_retries >= kMaxSynRetries) {
            fail_locked(conn, ErrorCode::kTimedOut);
            break;
          }
          ++conn.syn_retries;
          c_retransmits_.inc();
          ObsRegistry::global().tracer().point(span_retransmit_);
          if (!fault_handshake_->fire()) {
            transmit(conn, VtpType::kSyn, 0, 0, {});
          }
          conn.last_progress_tick = now;
        }
        break;
      case VtpState::kSynRcvd:
        if (now - conn.last_progress_tick >= kRtoTicks) {
          if (conn.syn_retries >= kMaxSynRetries) {
            // Give up on a half-open handshake quietly: the connecting end
            // times itself out; nothing was ever surfaced to accept().
            reap.push_back(id);
            break;
          }
          ++conn.syn_retries;
          c_retransmits_.inc();
          if (!fault_handshake_->fire()) {
            transmit(conn, VtpType::kSynAck, 0, 1, {});
          }
          conn.last_progress_tick = now;
        }
        break;
      case VtpState::kEstablished:
      case VtpState::kFinWait:
      case VtpState::kPeerClosed: {
        const bool fin_outstanding =
            conn.fin_queued && !conn.fin_acked && conn.fin_seq != 0;
        const bool has_unacked = conn.snd_una < conn.snd_nxt || fin_outstanding;
        if (has_unacked && now - conn.last_progress_tick >= kRtoTicks) {
          retransmit_head_locked(conn);
        } else if (conn.peer_wnd == 0 && conn.snd_nxt < conn.buffered_end() &&
                   now - conn.last_progress_tick >= kRtoTicks) {
          // Zero-window probe: an empty kData at snd_nxt elicits an ACK
          // carrying the current advertisement without breaking window
          // safety (it occupies no sequence space).
          c_window_probes_.inc();
          transmit(conn, VtpType::kData, conn.snd_nxt, conn.rcv_nxt, {});
          conn.last_progress_tick = now;
        } else {
          pump_send_locked(conn);
        }
        if (conn.state == VtpState::kFinWait && conn.fin_acked && conn.peer_fin &&
            conn.rcv_ready.empty()) {
          reap.push_back(id);  // both directions shut and drained
        }
        break;
      }
      default:
        break;
    }
  }
  for (ConnId id : reap) {
    conns_.erase(id);
    c_conns_closed_.inc();
  }
  clock_.advance(1);
}

void VtpStack::on_segment(const IpHeader& ip, std::span<const u8> payload) {
  Reader r(payload);
  auto hdr = VtpHeader::decode(r);
  std::lock_guard<std::mutex> lock(mu_);
  c_segments_rx_.inc();
  if (!hdr) {
    return;
  }
  std::span<const u8> data(payload.data() + r.position(), payload.size() - r.position());
  if (crc32c(data) != hdr->checksum) {
    return;  // integrity: corrupted segments are dropped
  }

  switch (hdr->type) {
    case VtpType::kSyn: {
      auto lq = listeners_.find(hdr->dst_port);
      if (lq == listeners_.end()) {
        transmit_rst(ip.src, hdr->dst_port, hdr->src_port, ErrorCode::kConnRefused);
        return;
      }
      ConnId existing = match_locked(ip.src, hdr->dst_port, hdr->src_port);
      if (existing != 0) {
        Conn& conn = conns_[existing];
        if (conn.state == VtpState::kSynRcvd || conn.state == VtpState::kEstablished) {
          transmit(conn, VtpType::kSynAck, 0, 1, {});  // duplicate SYN
        }
        return;
      }
      if (fault_handshake_->fire()) {
        return;  // injected handshake drop: the peer's SYN retransmit retries
      }
      // Backlog covers both the accept queue and in-progress handshakes:
      // beyond it the listener sheds with a typed kOverloaded reset instead
      // of queueing without bound.
      if (lq->second.queue.size() + synrcvd_count_locked(hdr->dst_port) >=
          lq->second.backlog) {
        c_accept_shed_.inc();
        transmit_rst(ip.src, hdr->dst_port, hdr->src_port, ErrorCode::kOverloaded);
        return;
      }
      ConnId id = next_id_++;
      Conn conn;
      conn.state = VtpState::kSynRcvd;
      conn.peer = ip.src;
      conn.local_port = hdr->dst_port;
      conn.peer_port = hdr->src_port;
      conn.peer_wnd = hdr->wnd;
      conn.last_progress_tick = clock_.now();
      conns_[id] = conn;
      c_conns_opened_.inc();
      transmit(conns_[id], VtpType::kSynAck, 0, 1, {});
      return;
    }
    case VtpType::kSynAck: {
      ConnId id = match_locked(ip.src, hdr->dst_port, hdr->src_port);
      if (id == 0) {
        transmit_rst(ip.src, hdr->dst_port, hdr->src_port, ErrorCode::kConnReset);
        return;
      }
      Conn& conn = conns_[id];
      conn.peer_wnd = hdr->wnd;
      if (conn.state == VtpState::kSynSent) {
        if (fault_handshake_->fire()) {
          return;
        }
        conn.state = VtpState::kEstablished;
        conn.last_progress_tick = clock_.now();
        ObsRegistry::global().tracer().point(span_handshake_);
      }
      // Complete the handshake (also answers duplicate SYN-ACKs).
      ack_locked(conn);
      pump_send_locked(conn);
      return;
    }
    case VtpType::kAck: {
      ConnId id = match_locked(ip.src, hdr->dst_port, hdr->src_port);
      if (id == 0) {
        transmit_rst(ip.src, hdr->dst_port, hdr->src_port, ErrorCode::kConnReset);
        return;
      }
      Conn& conn = conns_[id];
      conn.peer_wnd = hdr->wnd;
      if (conn.state == VtpState::kSynRcvd) {
        conn.state = VtpState::kEstablished;
        ObsRegistry::global().tracer().point(span_handshake_);
        auto lq = listeners_.find(conn.local_port);
        if (lq != listeners_.end()) {
          lq->second.queue.push_back(id);
          h_accept_queue_->record(lq->second.queue.size());
        }
      }
      if (hdr->ack > conn.snd_una) {
        // Cumulative ACK: discard acked bytes, grow the congestion window
        // (slow start below ssthresh, additive increase above it).
        u64 acked = hdr->ack - conn.snd_una;
        u64 advance = std::min<u64>(hdr->ack, conn.buffered_end()) - conn.snd_base_seq;
        conn.snd_buf.erase(conn.snd_buf.begin(),
                           conn.snd_buf.begin() + static_cast<std::ptrdiff_t>(advance));
        conn.snd_base_seq += advance;
        conn.snd_una = hdr->ack;
        conn.snd_nxt = std::max(conn.snd_nxt, conn.snd_una);
        if (conn.cwnd < conn.ssthresh) {
          conn.cwnd += std::min<u64>(acked, kMss);
        } else {
          conn.cwnd += std::max<u64>(kMss * kMss / conn.cwnd, 1);
        }
        conn.last_progress_tick = clock_.now();
      }
      if (conn.fin_queued && conn.fin_seq != 0 && hdr->ack > conn.fin_seq) {
        conn.fin_acked = true;
      }
      pump_send_locked(conn);  // ACK clocking: freed window sends new data
      return;
    }
    case VtpType::kData: {
      ConnId id = match_locked(ip.src, hdr->dst_port, hdr->src_port);
      if (id == 0) {
        transmit_rst(ip.src, hdr->dst_port, hdr->src_port, ErrorCode::kConnReset);
        return;
      }
      Conn& conn = conns_[id];
      conn.peer_wnd = hdr->wnd;
      if (conn.state == VtpState::kSynRcvd) {
        // Data implies our SYN-ACK arrived: promote (the ACK was lost).
        conn.state = VtpState::kEstablished;
        ObsRegistry::global().tracer().point(span_handshake_);
        auto lq = listeners_.find(conn.local_port);
        if (lq != listeners_.end()) {
          lq->second.queue.push_back(id);
          h_accept_queue_->record(lq->second.queue.size());
        }
      }
      const u64 seq = hdr->seq;
      const u64 end = seq + data.size();
      if (data.empty()) {
        // Zero-window probe: answer with the current advertisement.
      } else if (end <= conn.rcv_nxt) {
        c_duplicate_data_.inc();  // retransmission we fully have
      } else if (seq <= conn.rcv_nxt) {
        // In-order (possibly with an already-received prefix): deliver the
        // new suffix, then drain any reassembled continuation.
        usize skip = static_cast<usize>(conn.rcv_nxt - seq);
        conn.rcv_ready.insert(conn.rcv_ready.end(), data.begin() + skip, data.end());
        conn.rcv_nxt = end;
        auto it = conn.ooo.begin();
        while (it != conn.ooo.end() && it->first <= conn.rcv_nxt) {
          const u64 seg_end = it->first + it->second.size();
          if (seg_end > conn.rcv_nxt) {
            usize s = static_cast<usize>(conn.rcv_nxt - it->first);
            conn.rcv_ready.insert(conn.rcv_ready.end(), it->second.begin() + s,
                                  it->second.end());
            conn.rcv_nxt = seg_end;
          }
          conn.ooo_bytes -= it->second.size();
          it = conn.ooo.erase(it);
        }
        if (conn.peer_fin_seq != 0 && conn.rcv_nxt == conn.peer_fin_seq) {
          conn.rcv_nxt += 1;
          conn.peer_fin = true;
          if (conn.state == VtpState::kEstablished) {
            conn.state = VtpState::kPeerClosed;
          }
        }
      } else if (end <= conn.rcv_nxt + kRcvWindow &&
                 conn.ooo.count(seq) == 0) {
        // Out-of-order but inside the window: keep it for reassembly (this
        // is the "selective" in selective retransmit — only the gap segment
        // needs resending).
        c_ooo_buffered_.inc();
        conn.ooo[seq] = std::vector<u8>(data.begin(), data.end());
        conn.ooo_bytes += data.size();
      } else {
        c_duplicate_data_.inc();  // outside the window or exact re-buffer
      }
      ack_locked(conn);
      return;
    }
    case VtpType::kFin: {
      ConnId id = match_locked(ip.src, hdr->dst_port, hdr->src_port);
      if (id == 0) {
        transmit_rst(ip.src, hdr->dst_port, hdr->src_port, ErrorCode::kConnReset);
        return;
      }
      Conn& conn = conns_[id];
      conn.peer_wnd = hdr->wnd;
      if (hdr->seq == conn.rcv_nxt) {
        conn.rcv_nxt += 1;  // FIN consumes a sequence number
        conn.peer_fin = true;
        if (conn.state == VtpState::kEstablished) {
          conn.state = VtpState::kPeerClosed;
        }
      } else if (hdr->seq > conn.rcv_nxt) {
        conn.peer_fin_seq = hdr->seq;  // FIN ahead of a data gap: remember it
      }
      ack_locked(conn);
      return;
    }
    case VtpType::kRst: {
      ConnId id = match_locked(ip.src, hdr->dst_port, hdr->src_port);
      if (id == 0) {
        return;  // never answer a RST (no reset storms)
      }
      Conn& conn = conns_[id];
      if (conn.state == VtpState::kFinWait && conn.peer_fin) {
        // Both sides were closing and the peer already reaped: treat the
        // reset as the close completing, not as a failure.
        conns_.erase(id);
        c_conns_closed_.inc();
        return;
      }
      fail_locked(conn, rst_reason(hdr->seq));
      return;
    }
  }
}

usize VtpStack::synrcvd_count_locked(Port port) const {
  usize n = 0;
  for (const auto& [id, conn] : conns_) {
    if (conn.local_port == port && conn.state == VtpState::kSynRcvd) {
      ++n;
    }
  }
  return n;
}

VtpStack::Conn* VtpStack::find_locked(ConnId id) {
  auto it = conns_.find(id);
  return it == conns_.end() ? nullptr : &it->second;
}

const VtpStack::Conn* VtpStack::find_locked(ConnId id) const {
  auto it = conns_.find(id);
  return it == conns_.end() ? nullptr : &it->second;
}

ConnId VtpStack::match_locked(NetAddr peer, Port local, Port remote) const {
  for (const auto& [id, conn] : conns_) {
    if (conn.peer == peer && conn.local_port == local && conn.peer_port == remote) {
      return id;
    }
  }
  return 0;
}

bool VtpStack::is_established(ConnId id) const {
  std::lock_guard<std::mutex> lock(mu_);
  const Conn* conn = find_locked(id);
  return conn != nullptr &&
         (conn->state == VtpState::kEstablished || conn->state == VtpState::kPeerClosed ||
          conn->state == VtpState::kFinWait);
}

VtpState VtpStack::state(ConnId id) const {
  std::lock_guard<std::mutex> lock(mu_);
  const Conn* conn = find_locked(id);
  return conn == nullptr ? VtpState::kClosed : conn->state;
}

ErrorCode VtpStack::conn_error(ConnId id) const {
  std::lock_guard<std::mutex> lock(mu_);
  const Conn* conn = find_locked(id);
  return conn == nullptr ? ErrorCode::kOk : conn->error;
}

u64 VtpStack::unacked_bytes(ConnId id) const {
  std::lock_guard<std::mutex> lock(mu_);
  const Conn* conn = find_locked(id);
  if (conn == nullptr) {
    return 0;
  }
  return conn->buffered_end() - conn->snd_una;
}

usize VtpStack::active_conns() const {
  std::lock_guard<std::mutex> lock(mu_);
  return conns_.size();
}

}  // namespace vnros
