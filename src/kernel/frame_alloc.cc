#include "src/kernel/frame_alloc.h"

#include "src/base/contracts.h"

namespace vnros {

FrameAllocator::FrameAllocator(PhysMem& mem, const Topology& topo, u64 reserved_low)
    : mem_(mem),
      obs_prefix_(ObsRegistry::global().instance_prefix("frames")),
      c_allocations_(ObsRegistry::global().counter(obs_prefix_ + "allocations")),
      c_frees_(ObsRegistry::global().counter(obs_prefix_ + "frees")),
      c_remote_fallbacks_(ObsRegistry::global().counter(obs_prefix_ + "remote_fallbacks")),
      c_injected_oom_(ObsRegistry::global().counter(obs_prefix_ + "injected_oom")) {
  const u64 first = reserved_low;
  const u64 managed = mem.num_frames() > first ? mem.num_frames() - first : 0;
  total_frames_ = managed;
  const u32 nodes = topo.num_nodes();
  const u64 per_node = managed / nodes;
  u64 next = first;
  for (u32 n = 0; n < nodes; ++n) {
    Pool pool;
    pool.first_frame = next;
    pool.num_frames = (n == nodes - 1) ? (first + managed - next) : per_node;
    pool.bitmap.assign((pool.num_frames + 63) / 64, 0);
    pool.free_count = pool.num_frames;
    next += pool.num_frames;
    pools_.push_back(std::move(pool));
  }
}

Result<PAddr> FrameAllocator::alloc_on_node(NodeId preferred) {
  std::lock_guard<std::mutex> lock(mu_);
  VNROS_CHECK(preferred < pools_.size());
  if (oom_site_->fire()) {
    c_injected_oom_.inc();
    return ErrorCode::kNoMemory;
  }
  for (usize attempt = 0; attempt < pools_.size(); ++attempt) {
    usize idx = (preferred + attempt) % pools_.size();
    auto r = alloc_from_pool(pools_[idx]);
    if (r.ok()) {
      c_allocations_.inc();
      if (attempt != 0) {
        c_remote_fallbacks_.inc();
      }
      mem_.zero_frame(r.value());
      return r;
    }
  }
  return ErrorCode::kNoMemory;
}

Result<PAddr> FrameAllocator::alloc_from_pool(Pool& pool) {
  if (pool.free_count == 0) {
    return ErrorCode::kNoMemory;
  }
  if (!pool.freelist.empty()) {
    u64 frame = pool.freelist.back();
    pool.freelist.pop_back();
    u64 rel = frame - pool.first_frame;
    VNROS_INVARIANT((pool.bitmap[rel / 64] >> (rel % 64) & 1) == 0);
    pool.bitmap[rel / 64] |= u64{1} << (rel % 64);
    --pool.free_count;
    return PAddr::from_frame(frame);
  }
  // Bitmap scan from the rotating cursor.
  const u64 words = pool.bitmap.size();
  for (u64 step = 0; step < words; ++step) {
    u64 w = (pool.cursor + step) % words;
    u64 bits = pool.bitmap[w];
    if (bits == ~u64{0}) {
      continue;
    }
    u64 bit = static_cast<u64>(__builtin_ctzll(~bits));
    u64 rel = w * 64 + bit;
    if (rel >= pool.num_frames) {
      continue;  // padding bits of the last word
    }
    pool.bitmap[w] |= u64{1} << bit;
    pool.cursor = w;
    --pool.free_count;
    return PAddr::from_frame(pool.first_frame + rel);
  }
  return ErrorCode::kNoMemory;
}

void FrameAllocator::free(PAddr frame) {
  std::lock_guard<std::mutex> lock(mu_);
  u64 fn = frame.frame_number();
  for (auto& pool : pools_) {
    if (fn >= pool.first_frame && fn < pool.first_frame + pool.num_frames) {
      u64 rel = fn - pool.first_frame;
      u64 bit = u64{1} << (rel % 64);
      // Freeing an unallocated frame is the double-free bug class.
      VNROS_CHECK((pool.bitmap[rel / 64] & bit) != 0);
      pool.bitmap[rel / 64] &= ~bit;
      pool.freelist.push_back(fn);
      ++pool.free_count;
      c_frees_.inc();
      return;
    }
  }
  VNROS_CHECK(false && "free of a frame outside every pool");
}

u64 FrameAllocator::free_frames() const {
  std::lock_guard<std::mutex> lock(mu_);
  u64 total = 0;
  for (const auto& pool : pools_) {
    total += pool.free_count;
  }
  return total;
}

bool FrameAllocator::is_allocated(PAddr frame) const {
  std::lock_guard<std::mutex> lock(mu_);
  u64 fn = frame.frame_number();
  for (const auto& pool : pools_) {
    if (fn >= pool.first_frame && fn < pool.first_frame + pool.num_frames) {
      u64 rel = fn - pool.first_frame;
      return (pool.bitmap[rel / 64] >> (rel % 64) & 1) != 0;
    }
  }
  return false;
}

}  // namespace vnros
