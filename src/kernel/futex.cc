#include "src/kernel/futex.h"

namespace vnros {

ErrorCode FutexTable::wait(const std::atomic<u32>* addr, u32 expected) {
  Bucket& b = bucket_for(addr);
  std::unique_lock<std::mutex> lock(b.mu);
  // The value check under the bucket lock is the futex's whole point: a
  // waker that changed the value and then called wake() must either see us
  // queued or we must see the new value here — no lost wakeups.
  if (addr->load(std::memory_order_acquire) != expected) {
    std::lock_guard<std::mutex> slock(stats_mu_);
    ++stats_.immediate_returns;
    return ErrorCode::kWouldBlock;
  }
  Waiter self{addr, false};
  b.waiters.push_back(&self);
  {
    std::lock_guard<std::mutex> slock(stats_mu_);
    ++stats_.waits;
  }
  b.cv.wait(lock, [&] { return self.woken; });
  return ErrorCode::kOk;
}

usize FutexTable::wake(const std::atomic<u32>* addr, usize n) {
  Bucket& b = bucket_for(addr);
  usize woken = 0;
  {
    std::lock_guard<std::mutex> lock(b.mu);
    for (auto it = b.waiters.begin(); it != b.waiters.end() && woken < n;) {
      if ((*it)->addr == addr) {
        (*it)->woken = true;
        it = b.waiters.erase(it);
        ++woken;
      } else {
        ++it;
      }
    }
  }
  if (woken > 0) {
    b.cv.notify_all();
  }
  std::lock_guard<std::mutex> slock(stats_mu_);
  ++stats_.wakes;
  stats_.woken_threads += woken;
  return woken;
}

FutexStats FutexTable::stats() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return stats_;
}

ErrorCode SimFutex::wait(const ThreadToken& t, Pid pid, VAddr uaddr, u32 current, u32 expected,
                         Tid tid) {
  std::lock_guard<std::mutex> lock(mu_);
  if (current != expected) {
    return ErrorCode::kWouldBlock;
  }
  ErrorCode err = sched_.block(t, tid);
  if (err != ErrorCode::kOk) {
    return err;
  }
  queues_[{pid, uaddr.value}].push_back(tid);
  return ErrorCode::kOk;
}

usize SimFutex::wake(const ThreadToken& t, Pid pid, VAddr uaddr, usize n) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = queues_.find({pid, uaddr.value});
  if (it == queues_.end()) {
    return 0;
  }
  usize woken = 0;
  while (woken < n && !it->second.empty()) {
    Tid tid = it->second.front();
    it->second.pop_front();
    sched_.wake(t, tid);
    ++woken;
  }
  if (it->second.empty()) {
    queues_.erase(it);
  }
  return woken;
}

usize SimFutex::waiters(Pid pid, VAddr uaddr) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = queues_.find({pid, uaddr.value});
  return it == queues_.end() ? 0 : it->second.size();
}

}  // namespace vnros
