#include "src/kernel/scheduler.h"

#include "src/base/contracts.h"

namespace vnros {

void SchedulerDs::enqueue(Tid tid) {
  auto it = threads.find(tid);
  VNROS_CHECK(it != threads.end());
  CoreId core = it->second.affinity;
  VNROS_CHECK(core < queues.size());
  queues[core].push_back(tid);
}

std::optional<Tid> SchedulerDs::dequeue_best(CoreId core) {
  VNROS_CHECK(core < queues.size());
  auto& q = queues[core];
  if (q.empty()) {
    return std::nullopt;
  }
  // Highest priority wins; FIFO within a priority class (round-robin
  // fairness). Linear scan: queues are short relative to op costs here.
  usize best = 0;
  u32 best_prio = threads.at(q[0]).priority;
  for (usize i = 1; i < q.size(); ++i) {
    u32 p = threads.at(q[i]).priority;
    if (p > best_prio) {
      best_prio = p;
      best = i;
    }
  }
  Tid tid = q[best];
  q.erase(q.begin() + static_cast<std::ptrdiff_t>(best));
  return tid;
}

SchedulerDs::Response SchedulerDs::dispatch(const ReadOp& op) const {
  const auto& get = std::get<GetState>(op.op);
  auto it = threads.find(get.tid);
  if (it == threads.end()) {
    return Response{ErrorCode::kNotFound, 0, ThreadState::kExited};
  }
  return Response{ErrorCode::kOk, get.tid, it->second.state};
}

SchedulerDs::Response SchedulerDs::dispatch_mut(const WriteOp& op) {
  if (const auto* add = std::get_if<AddThread>(&op.op)) {
    if (threads.count(add->tid) != 0) {
      return Response{ErrorCode::kAlreadyExists, 0, {}};
    }
    if (add->affinity >= queues.size()) {
      return Response{ErrorCode::kInvalidArgument, 0, {}};
    }
    threads[add->tid] =
        ThreadInfo{ThreadState::kReady, add->priority, add->affinity, add->owner};
    enqueue(add->tid);
    return Response{ErrorCode::kOk, add->tid, ThreadState::kReady};
  }

  if (const auto* blk = std::get_if<Block>(&op.op)) {
    auto it = threads.find(blk->tid);
    if (it == threads.end() || it->second.state == ThreadState::kExited) {
      return Response{ErrorCode::kNotFound, 0, {}};
    }
    if (it->second.state == ThreadState::kBlocked) {
      return Response{ErrorCode::kOk, blk->tid, ThreadState::kBlocked};
    }
    // Remove from ready queue or running slot.
    if (it->second.state == ThreadState::kReady) {
      auto& q = queues[it->second.affinity];
      for (auto qi = q.begin(); qi != q.end(); ++qi) {
        if (*qi == blk->tid) {
          q.erase(qi);
          break;
        }
      }
    } else {  // running
      for (auto& r : running) {
        if (r == blk->tid) {
          r = 0;
        }
      }
    }
    it->second.state = ThreadState::kBlocked;
    return Response{ErrorCode::kOk, blk->tid, ThreadState::kBlocked};
  }

  if (const auto* wk = std::get_if<Wake>(&op.op)) {
    auto it = threads.find(wk->tid);
    if (it == threads.end() || it->second.state == ThreadState::kExited) {
      return Response{ErrorCode::kNotFound, 0, {}};
    }
    if (it->second.state != ThreadState::kBlocked) {
      // Waking a non-blocked thread is a no-op (futex race tolerance).
      return Response{ErrorCode::kOk, wk->tid, it->second.state};
    }
    it->second.state = ThreadState::kReady;
    enqueue(wk->tid);
    return Response{ErrorCode::kOk, wk->tid, ThreadState::kReady};
  }

  if (const auto* ex = std::get_if<Exit>(&op.op)) {
    auto it = threads.find(ex->tid);
    if (it == threads.end()) {
      return Response{ErrorCode::kNotFound, 0, {}};
    }
    if (it->second.state == ThreadState::kReady) {
      auto& q = queues[it->second.affinity];
      for (auto qi = q.begin(); qi != q.end(); ++qi) {
        if (*qi == ex->tid) {
          q.erase(qi);
          break;
        }
      }
    } else if (it->second.state == ThreadState::kRunning) {
      for (auto& r : running) {
        if (r == ex->tid) {
          r = 0;
        }
      }
    }
    it->second.state = ThreadState::kExited;
    return Response{ErrorCode::kOk, ex->tid, ThreadState::kExited};
  }

  if (const auto* pick = std::get_if<Pick>(&op.op)) {
    if (pick->core >= queues.size()) {
      return Response{ErrorCode::kInvalidArgument, 0, {}};
    }
    // Current thread (if any) goes back to ready.
    Tid cur = running[pick->core];
    if (cur != 0) {
      threads.at(cur).state = ThreadState::kReady;
      enqueue(cur);
    }
    auto next = dequeue_best(pick->core);
    if (!next) {
      running[pick->core] = 0;
      return Response{ErrorCode::kOk, 0, {}};
    }
    threads.at(*next).state = ThreadState::kRunning;
    running[pick->core] = *next;
    return Response{ErrorCode::kOk, *next, ThreadState::kRunning};
  }

  if (const auto* y = std::get_if<Yield>(&op.op)) {
    WriteOp pick_op;
    pick_op.op = Pick{y->core};
    return dispatch_mut(pick_op);
  }

  return Response{ErrorCode::kInvalidArgument, 0, {}};
}

ErrorCode Scheduler::add_thread(const ThreadToken& t, Tid tid, Pid owner, u32 priority,
                                CoreId affinity) {
  SchedulerDs::WriteOp op;
  op.op = SchedulerDs::AddThread{tid, owner, priority, affinity};
  return repl_.execute_mut(t, op).err;
}

ErrorCode Scheduler::block(const ThreadToken& t, Tid tid) {
  SchedulerDs::WriteOp op;
  op.op = SchedulerDs::Block{tid};
  return repl_.execute_mut(t, op).err;
}

ErrorCode Scheduler::wake(const ThreadToken& t, Tid tid) {
  SchedulerDs::WriteOp op;
  op.op = SchedulerDs::Wake{tid};
  return repl_.execute_mut(t, op).err;
}

ErrorCode Scheduler::exit_thread(const ThreadToken& t, Tid tid) {
  SchedulerDs::WriteOp op;
  op.op = SchedulerDs::Exit{tid};
  return repl_.execute_mut(t, op).err;
}

Tid Scheduler::pick(const ThreadToken& t, CoreId core) {
  SchedulerDs::WriteOp op;
  op.op = SchedulerDs::Pick{core};
  return repl_.execute_mut(t, op).tid;
}

Tid Scheduler::yield(const ThreadToken& t, CoreId core) {
  SchedulerDs::WriteOp op;
  op.op = SchedulerDs::Yield{core};
  return repl_.execute_mut(t, op).tid;
}

Result<ThreadState> Scheduler::thread_state(const ThreadToken& t, Tid tid) {
  SchedulerDs::ReadOp op;
  op.op = SchedulerDs::GetState{tid};
  auto resp = repl_.execute(t, op);
  if (resp.err != ErrorCode::kOk) {
    return resp.err;
  }
  return resp.state;
}

}  // namespace vnros
