#include "src/kernel/fs.h"

#include <algorithm>
#include <cstring>

#include "src/base/contracts.h"
#include "src/base/crc.h"
#include "src/base/serde.h"

namespace vnros {
namespace {

constexpr u64 kSbMagic = 0x766E'726F'7346'5321ull;  // "vnrosFS!"
constexpr u32 kRecMagic = 0x4A524E4C;               // "JRNL"
constexpr u64 kRootIno = 1;

// Journal payload opcodes.
enum class FsOp : u8 {
  kMkdir = 1,
  kRmdir = 2,
  kCreate = 3,
  kUnlink = 4,
  kRename = 5,
  kWrite = 6,
  kTruncate = 7,
};

// On-disk record header (fixed prefix, before the payload).
struct RecHeader {
  u32 magic;
  u64 epoch;
  u32 len;
  u32 crc;
};
constexpr usize kRecHeaderBytes = 4 + 8 + 4 + 4;

u64 sectors_for(u64 bytes) { return (bytes + kSectorSize - 1) / kSectorSize; }

bool valid_name(std::string_view name) {
  return !name.empty() && name.size() <= 255 && name.find('/') == std::string_view::npos;
}

}  // namespace

MemFs::MemFs() : MemFs(nullptr) {}

MemFs::MemFs(BlockDevice* dev) : dev_(dev) {
  ObsRegistry& reg = ObsRegistry::global();
  const std::string prefix = reg.instance_prefix("fs");
  c_journal_records_ = &reg.counter(prefix + "journal_records");
  c_journal_bytes_ = &reg.counter(prefix + "journal_bytes");
  c_checkpoints_ = &reg.counter(prefix + "checkpoints");
  c_fsyncs_ = &reg.counter(prefix + "fsyncs");
  h_journal_record_bytes_ = &reg.histogram(prefix + "journal_record_bytes");
  span_journal_commit_ = reg.tracer().intern_site("fs/journal_commit");
  span_fsync_ = reg.tracer().intern_site("fs/fsync");
  inodes_[kRootIno] = Inode{.is_dir = true, .data = {}, .entries = {}};
}

u64 MemFs::journal_start_sector() const {
  // Sector 0: superblock. Checkpoint area: a quarter of the device.
  return 1 + (dev_ != nullptr ? dev_->num_sectors() / 4 : 0);
}

u64 MemFs::journal_capacity_sectors() const {
  return dev_ != nullptr ? dev_->num_sectors() - journal_start_sector() : 0;
}

// --- Formatting / recovery ----------------------------------------------------

Result<MemFs> MemFs::format(BlockDevice& dev) {
  if (dev.num_sectors() < 16) {
    return ErrorCode::kInvalidArgument;
  }
  MemFs fs(&dev);
  fs.journal_head_ = fs.journal_start_sector();
  auto sb = fs.write_superblock();
  if (!sb.ok()) {
    return sb.error();
  }
  dev.flush();
  return fs;
}

Result<MemFs> MemFs::recover(BlockDevice& dev) {
  MemFs fs(&dev);

  // Read and validate the superblock.
  std::vector<u8> sb_bytes(kSectorSize);
  auto rd = dev.read(0, sb_bytes);
  if (!rd.ok()) {
    return rd.error();
  }
  Reader sb(sb_bytes);
  auto magic = sb.get_u64();
  auto epoch = sb.get_u64();
  auto ckpt_valid = sb.get_bool();
  auto ckpt_sectors = sb.get_u64();
  auto crc = sb.get_u32();
  if (!magic || *magic != kSbMagic || !epoch || !ckpt_valid || !ckpt_sectors || !crc) {
    return ErrorCode::kCorrupted;
  }
  u32 expect = crc32c(std::span<const u8>(sb_bytes.data(), sb.position() - 4));
  if (*crc != expect) {
    return ErrorCode::kCorrupted;
  }
  fs.epoch_ = *epoch;
  fs.ckpt_valid_ = *ckpt_valid;
  fs.ckpt_sectors_ = *ckpt_sectors;

  // Load the checkpoint, if one is valid.
  if (fs.ckpt_valid_) {
    std::vector<u8> raw(fs.ckpt_sectors_ * kSectorSize);
    for (u64 s = 0; s < fs.ckpt_sectors_; ++s) {
      auto r = dev.read(1 + s, std::span<u8>(raw.data() + s * kSectorSize, kSectorSize));
      if (!r.ok()) {
        return r.error();
      }
    }
    Reader hdr(raw);
    auto rmagic = hdr.get_u32();
    auto repoch = hdr.get_u64();
    auto rlen = hdr.get_u32();
    auto rcrc = hdr.get_u32();
    // The checkpoint epoch must match the superblock's: a failed checkpoint
    // attempt can leave a newer-epoch image in the checkpoint area while the
    // superblock still describes the old one — that mix must be detected,
    // never loaded.
    if (!rmagic || *rmagic != kRecMagic || !repoch || *repoch != fs.epoch_ || !rlen || !rcrc ||
        kRecHeaderBytes + *rlen > raw.size()) {
      return ErrorCode::kCorrupted;
    }
    std::span<const u8> payload(raw.data() + kRecHeaderBytes, *rlen);
    if (crc32c(payload) != *rcrc) {
      return ErrorCode::kCorrupted;
    }
    auto loaded = fs.load_state(payload);
    if (!loaded.ok()) {
      return loaded.error();
    }
  }

  // Replay the longest valid journal prefix of this epoch.
  fs.journal_head_ = fs.journal_start_sector();
  auto replayed = fs.replay_journal();
  if (!replayed.ok()) {
    return replayed.error();
  }

  // Re-anchor durability: checkpoint the recovered state under a fresh
  // epoch. This makes the mount durable and invalidates any stale records
  // beyond the replayed prefix (they carry the old epoch).
  std::lock_guard<std::mutex> lock(*fs.mu_);
  auto ck = fs.checkpoint_locked();
  if (!ck.ok()) {
    return ck.error();
  }
  return fs;
}

Result<Unit> MemFs::replay_journal() {
  u64 s = journal_start_sector();
  const u64 end = dev_->num_sectors();
  std::vector<u8> sector(kSectorSize);
  while (s < end) {
    auto r = dev_->read(s, sector);
    if (!r.ok()) {
      // A device error is not "end of journal": silently truncating the
      // replay prefix here would drop acknowledged operations. Surface it
      // so recovery fails loudly instead of recovering a stale state.
      return r.error();
    }
    Reader hdr(sector);
    auto magic = hdr.get_u32();
    auto epoch = hdr.get_u64();
    auto len = hdr.get_u32();
    auto crc = hdr.get_u32();
    if (!magic || *magic != kRecMagic || !epoch || *epoch != epoch_ || !len || !crc) {
      break;
    }
    u64 rec_sectors = sectors_for(kRecHeaderBytes + *len);
    if (s + rec_sectors > end) {
      break;
    }
    std::vector<u8> raw(rec_sectors * kSectorSize);
    for (u64 i = 0; i < rec_sectors; ++i) {
      auto rr = dev_->read(s + i, std::span<u8>(raw.data() + i * kSectorSize, kSectorSize));
      if (!rr.ok()) {
        return rr.error();  // device error, not a torn record: fail recovery
      }
    }
    std::span<const u8> payload(raw.data() + kRecHeaderBytes, *len);
    if (crc32c(payload) != *crc) {
      break;  // torn record: end of valid prefix
    }
    // Apply. Replay of a record journaled after a successful apply cannot
    // fail; a failure means the journal and state machine disagree.
    Reader body(payload);
    auto opcode = body.get_u8();
    if (!opcode) {
      break;
    }
    switch (static_cast<FsOp>(*opcode)) {
      case FsOp::kMkdir: {
        auto path = body.get_string();
        if (!path || !do_mkdir(*path).ok()) {
          return ErrorCode::kCorrupted;
        }
        break;
      }
      case FsOp::kRmdir: {
        auto path = body.get_string();
        if (!path || !do_rmdir(*path).ok()) {
          return ErrorCode::kCorrupted;
        }
        break;
      }
      case FsOp::kCreate: {
        auto path = body.get_string();
        if (!path || !do_create(*path).ok()) {
          return ErrorCode::kCorrupted;
        }
        break;
      }
      case FsOp::kUnlink: {
        auto path = body.get_string();
        if (!path || !do_unlink(*path).ok()) {
          return ErrorCode::kCorrupted;
        }
        break;
      }
      case FsOp::kRename: {
        auto from = body.get_string();
        auto to = body.get_string();
        if (!from || !to || !do_rename(*from, *to).ok()) {
          return ErrorCode::kCorrupted;
        }
        break;
      }
      case FsOp::kWrite: {
        auto path = body.get_string();
        auto offset = body.get_u64();
        auto data = body.get_bytes();
        if (!path || !offset || !data || !do_write(*path, *offset, *data).ok()) {
          return ErrorCode::kCorrupted;
        }
        break;
      }
      case FsOp::kTruncate: {
        auto path = body.get_string();
        auto size = body.get_u64();
        if (!path || !size || !do_truncate(*path, *size).ok()) {
          return ErrorCode::kCorrupted;
        }
        break;
      }
      default:
        return ErrorCode::kCorrupted;
    }
    s += rec_sectors;
  }
  journal_head_ = s;
  return Unit{};
}

Result<Unit> MemFs::write_superblock() {
  Writer w;
  w.put_u64(kSbMagic);
  w.put_u64(epoch_);
  w.put_bool(ckpt_valid_);
  w.put_u64(ckpt_sectors_);
  w.put_u32(crc32c(w.bytes()));
  std::vector<u8> sector(kSectorSize, 0);
  VNROS_CHECK(w.size() <= kSectorSize);
  std::memcpy(sector.data(), w.bytes().data(), w.size());
  return dev_->write(0, sector);
}

std::vector<u8> MemFs::serialize_state_locked() const {
  FsAbsState state;
  // Enumerate via the same traversal as view() (but we already hold the
  // lock): rebuild paths from the inode tree.
  struct Item {
    u64 ino;
    std::string path;
  };
  std::vector<Item> stack{{kRootIno, ""}};
  while (!stack.empty()) {
    Item item = stack.back();
    stack.pop_back();
    const Inode& node = inodes_.at(item.ino);
    for (const auto& [name, child_ino] : node.entries) {
      const Inode& child = inodes_.at(child_ino);
      std::string child_path = item.path + "/" + name;
      if (child.is_dir) {
        state.dirs.insert(child_path);
        stack.push_back({child_ino, child_path});
      } else {
        state.files[child_path] = child.data;
      }
    }
  }

  Writer w;
  w.put_u32(static_cast<u32>(state.dirs.size()));
  for (const auto& d : state.dirs) {
    w.put_string(d);
  }
  w.put_u32(static_cast<u32>(state.files.size()));
  for (const auto& [path, data] : state.files) {
    w.put_string(path);
    w.put_bytes(data);
  }
  return w.take();
}

Result<Unit> MemFs::load_state(std::span<const u8> bytes) {
  inodes_.clear();
  next_ino_ = 2;
  inodes_[kRootIno] = Inode{.is_dir = true, .data = {}, .entries = {}};

  Reader r(bytes);
  auto ndirs = r.get_u32();
  if (!ndirs) {
    return ErrorCode::kCorrupted;
  }
  // dirs came from a std::set => sorted => parents precede children.
  for (u32 i = 0; i < *ndirs; ++i) {
    auto path = r.get_string();
    if (!path || !do_mkdir(*path).ok()) {
      return ErrorCode::kCorrupted;
    }
  }
  auto nfiles = r.get_u32();
  if (!nfiles) {
    return ErrorCode::kCorrupted;
  }
  for (u32 i = 0; i < *nfiles; ++i) {
    auto path = r.get_string();
    auto data = r.get_bytes();
    if (!path || !data || !do_create(*path).ok()) {
      return ErrorCode::kCorrupted;
    }
    if (!data->empty() && !do_write(*path, 0, *data).ok()) {
      return ErrorCode::kCorrupted;
    }
  }
  return Unit{};
}

Result<Unit> MemFs::checkpoint_locked() {
  VNROS_CHECK(dev_ != nullptr);
  std::vector<u8> payload = serialize_state_locked();
  u64 total = kRecHeaderBytes + payload.size();
  u64 need_sectors = sectors_for(total);
  u64 ckpt_cap = journal_start_sector() - 1;
  if (need_sectors > ckpt_cap) {
    return ErrorCode::kNoSpace;  // device misconfigured for this dataset
  }

  Writer w;
  w.put_u32(kRecMagic);
  w.put_u64(epoch_ + 1);
  w.put_u32(static_cast<u32>(payload.size()));
  w.put_u32(crc32c(payload));
  w.put_raw(payload);
  std::vector<u8> raw = w.take();
  raw.resize(need_sectors * kSectorSize, 0);
  for (u64 s = 0; s < need_sectors; ++s) {
    auto wr = dev_->write(1 + s, std::span<const u8>(raw.data() + s * kSectorSize, kSectorSize));
    if (!wr.ok()) {
      return wr.error();
    }
  }
  dev_->flush();  // checkpoint durable before the superblock points at it

  const u64 old_epoch = epoch_;
  const bool old_ckpt_valid = ckpt_valid_;
  const u64 old_ckpt_sectors = ckpt_sectors_;
  epoch_ += 1;
  ckpt_valid_ = true;
  ckpt_sectors_ = need_sectors;
  auto sb = write_superblock();
  if (!sb.ok()) {
    // The switch did not commit: keep describing the old checkpoint so the
    // in-memory superblock stays consistent with the on-disk one.
    epoch_ = old_epoch;
    ckpt_valid_ = old_ckpt_valid;
    ckpt_sectors_ = old_ckpt_sectors;
    return sb.error();
  }
  dev_->flush();  // superblock switch is the commit point

  journal_head_ = journal_start_sector();
  c_checkpoints_->inc();
  return Unit{};
}

Result<Unit> MemFs::journal_append(std::span<const u8> payload) {
  if (dev_ == nullptr) {
    return Unit{};  // in-memory mode
  }
  SpanScope span(ObsRegistry::global().tracer(), span_journal_commit_);
  u64 total = kRecHeaderBytes + payload.size();
  u64 need = sectors_for(total);
  if (journal_head_ + need > dev_->num_sectors()) {
    auto ck = checkpoint_locked();
    if (!ck.ok()) {
      return ck.error();
    }
    // After compaction the record is already part of the checkpointed state;
    // nothing further to journal.
    return Unit{};
  }
  Writer w;
  w.put_u32(kRecMagic);
  w.put_u64(epoch_);
  w.put_u32(static_cast<u32>(payload.size()));
  w.put_u32(crc32c(payload));
  w.put_raw(payload);
  std::vector<u8> raw = w.take();
  raw.resize(need * kSectorSize, 0);
  for (u64 s = 0; s < need; ++s) {
    auto wr = dev_->write(journal_head_ + s,
                          std::span<const u8>(raw.data() + s * kSectorSize, kSectorSize));
    if (!wr.ok()) {
      return wr.error();
    }
  }
  journal_head_ += need;
  c_journal_records_->inc();
  c_journal_bytes_->add(total);
  h_journal_record_bytes_->record(total);
  return Unit{};
}

// --- Path plumbing -------------------------------------------------------------

Result<std::vector<std::string>> MemFs::split_path(std::string_view path) {
  if (path.empty() || path[0] != '/') {
    return ErrorCode::kInvalidArgument;
  }
  std::vector<std::string> parts;
  usize i = 1;
  while (i < path.size()) {
    usize j = path.find('/', i);
    if (j == std::string_view::npos) {
      j = path.size();
    }
    std::string_view name = path.substr(i, j - i);
    if (!valid_name(name)) {
      return ErrorCode::kInvalidArgument;
    }
    parts.emplace_back(name);
    i = j + 1;
  }
  return parts;
}

Result<u64> MemFs::lookup(std::string_view path) const {
  auto parts = split_path(path);
  if (!parts.ok()) {
    return parts.error();
  }
  u64 ino = kRootIno;
  for (const auto& name : parts.value()) {
    const Inode& node = inodes_.at(ino);
    if (!node.is_dir) {
      return ErrorCode::kNotDirectory;
    }
    auto it = node.entries.find(name);
    if (it == node.entries.end()) {
      return ErrorCode::kNotFound;
    }
    ino = it->second;
  }
  return ino;
}

Result<std::pair<u64, std::string>> MemFs::lookup_parent(std::string_view path) const {
  auto parts = split_path(path);
  if (!parts.ok()) {
    return parts.error();
  }
  if (parts.value().empty()) {
    return ErrorCode::kInvalidArgument;  // root has no parent
  }
  u64 ino = kRootIno;
  for (usize i = 0; i + 1 < parts.value().size(); ++i) {
    const Inode& node = inodes_.at(ino);
    if (!node.is_dir) {
      return ErrorCode::kNotDirectory;
    }
    auto it = node.entries.find(parts.value()[i]);
    if (it == node.entries.end()) {
      return ErrorCode::kNotFound;
    }
    ino = it->second;
  }
  if (!inodes_.at(ino).is_dir) {
    return ErrorCode::kNotDirectory;
  }
  return std::pair<u64, std::string>{ino, parts.value().back()};
}

// --- Unjournaled mutation cores --------------------------------------------------

Result<Unit> MemFs::do_mkdir(std::string_view path) {
  auto parent = lookup_parent(path);
  if (!parent.ok()) {
    return parent.error();
  }
  auto& [pino, name] = parent.value();
  Inode& dir = inodes_.at(pino);
  if (dir.entries.count(name) != 0) {
    return ErrorCode::kAlreadyExists;
  }
  u64 ino = next_ino_++;
  inodes_[ino] = Inode{.is_dir = true, .data = {}, .entries = {}};
  inodes_.at(pino).entries[name] = ino;  // re-lookup: map may have rehashed
  return Unit{};
}

Result<Unit> MemFs::do_rmdir(std::string_view path) {
  auto parent = lookup_parent(path);
  if (!parent.ok()) {
    return parent.error();
  }
  auto& [pino, name] = parent.value();
  Inode& dir = inodes_.at(pino);
  auto it = dir.entries.find(name);
  if (it == dir.entries.end()) {
    return ErrorCode::kNotFound;
  }
  Inode& target = inodes_.at(it->second);
  if (!target.is_dir) {
    return ErrorCode::kNotDirectory;
  }
  if (!target.entries.empty()) {
    return ErrorCode::kNotEmpty;
  }
  inodes_.erase(it->second);
  dir.entries.erase(it);
  return Unit{};
}

Result<Unit> MemFs::do_create(std::string_view path) {
  auto parent = lookup_parent(path);
  if (!parent.ok()) {
    return parent.error();
  }
  auto& [pino, name] = parent.value();
  Inode& dir = inodes_.at(pino);
  if (dir.entries.count(name) != 0) {
    return ErrorCode::kAlreadyExists;
  }
  u64 ino = next_ino_++;
  inodes_[ino] = Inode{.is_dir = false, .data = {}, .entries = {}};
  inodes_.at(pino).entries[name] = ino;
  return Unit{};
}

Result<Unit> MemFs::do_unlink(std::string_view path) {
  auto parent = lookup_parent(path);
  if (!parent.ok()) {
    return parent.error();
  }
  auto& [pino, name] = parent.value();
  Inode& dir = inodes_.at(pino);
  auto it = dir.entries.find(name);
  if (it == dir.entries.end()) {
    return ErrorCode::kNotFound;
  }
  if (inodes_.at(it->second).is_dir) {
    return ErrorCode::kIsDirectory;
  }
  inodes_.erase(it->second);
  dir.entries.erase(it);
  return Unit{};
}

Result<Unit> MemFs::do_rename(std::string_view from, std::string_view to) {
  auto src = lookup_parent(from);
  if (!src.ok()) {
    return src.error();
  }
  auto dst = lookup_parent(to);
  if (!dst.ok()) {
    return dst.error();
  }
  auto& [src_ino, src_name] = src.value();
  auto& [dst_ino, dst_name] = dst.value();
  Inode& src_dir = inodes_.at(src_ino);
  auto it = src_dir.entries.find(src_name);
  if (it == src_dir.entries.end()) {
    return ErrorCode::kNotFound;
  }
  u64 moving = it->second;
  Inode& dst_dir = inodes_.at(dst_ino);
  auto existing = dst_dir.entries.find(dst_name);
  if (existing != dst_dir.entries.end()) {
    // POSIX replace semantics for files: rename atomically unlinks the old
    // destination file (this is what makes write-temp-then-rename a crash-safe
    // publish). Directories are never replaced.
    if (inodes_.at(existing->second).is_dir) {
      return ErrorCode::kIsDirectory;
    }
    if (inodes_.at(moving).is_dir) {
      return ErrorCode::kNotDirectory;
    }
    // Renaming a path onto itself is a no-op, not a self-unlink.
    if (existing->second == moving) {
      return Unit{};
    }
  }
  // Moving a directory under itself would orphan the subtree.
  if (inodes_.at(moving).is_dir) {
    std::string from_prefix = std::string(from) + "/";
    if (std::string(to).rfind(from_prefix, 0) == 0) {
      return ErrorCode::kInvalidArgument;
    }
  }
  if (existing != dst_dir.entries.end()) {
    inodes_.erase(existing->second);
    dst_dir.entries.erase(existing);
  }
  src_dir.entries.erase(it);
  inodes_.at(dst_ino).entries[dst_name] = moving;
  return Unit{};
}

Result<u64> MemFs::do_write(std::string_view path, u64 offset, std::span<const u8> data) {
  auto ino = lookup(path);
  if (!ino.ok()) {
    return ino.error();
  }
  Inode& node = inodes_.at(ino.value());
  if (node.is_dir) {
    return ErrorCode::kIsDirectory;
  }
  if (offset + data.size() > node.data.size()) {
    node.data.resize(offset + data.size(), 0);
  }
  std::copy(data.begin(), data.end(), node.data.begin() + static_cast<std::ptrdiff_t>(offset));
  return static_cast<u64>(data.size());
}

Result<Unit> MemFs::do_truncate(std::string_view path, u64 new_size) {
  auto ino = lookup(path);
  if (!ino.ok()) {
    return ino.error();
  }
  Inode& node = inodes_.at(ino.value());
  if (node.is_dir) {
    return ErrorCode::kIsDirectory;
  }
  node.data.resize(new_size, 0);
  return Unit{};
}

// --- Public (journaled) operations -----------------------------------------------

std::vector<u8> MemFs::file_data_locked(std::string_view path) const {
  auto ino = lookup(path);
  VNROS_CHECK(ino.ok());
  return inodes_.at(ino.value()).data;
}

void MemFs::set_file_data_locked(std::string_view path, std::vector<u8> data) {
  auto ino = lookup(path);
  VNROS_CHECK(ino.ok());
  inodes_.at(ino.value()).data = std::move(data);
}

Result<Unit> MemFs::mkdir(std::string_view path) {
  std::lock_guard<std::mutex> lock(*mu_);
  auto r = do_mkdir(path);
  if (!r.ok()) {
    return r;
  }
  Writer w;
  w.put_u8(static_cast<u8>(FsOp::kMkdir));
  w.put_string(path);
  auto j = journal_append(w.bytes());
  if (!j.ok()) {
    VNROS_CHECK(do_rmdir(path).ok());
    return j;
  }
  return j;
}

Result<Unit> MemFs::rmdir(std::string_view path) {
  std::lock_guard<std::mutex> lock(*mu_);
  auto r = do_rmdir(path);
  if (!r.ok()) {
    return r;
  }
  Writer w;
  w.put_u8(static_cast<u8>(FsOp::kRmdir));
  w.put_string(path);
  auto j = journal_append(w.bytes());
  if (!j.ok()) {
    VNROS_CHECK(do_mkdir(path).ok());
    return j;
  }
  return j;
}

Result<Unit> MemFs::create(std::string_view path) {
  std::lock_guard<std::mutex> lock(*mu_);
  auto r = do_create(path);
  if (!r.ok()) {
    return r;
  }
  Writer w;
  w.put_u8(static_cast<u8>(FsOp::kCreate));
  w.put_string(path);
  auto j = journal_append(w.bytes());
  if (!j.ok()) {
    VNROS_CHECK(do_unlink(path).ok());
    return j;
  }
  return j;
}

Result<Unit> MemFs::unlink(std::string_view path) {
  std::lock_guard<std::mutex> lock(*mu_);
  auto pre = lookup(path);
  std::vector<u8> old_data;
  if (pre.ok() && !inodes_.at(pre.value()).is_dir) {
    old_data = inodes_.at(pre.value()).data;
  }
  auto r = do_unlink(path);
  if (!r.ok()) {
    return r;
  }
  Writer w;
  w.put_u8(static_cast<u8>(FsOp::kUnlink));
  w.put_string(path);
  auto j = journal_append(w.bytes());
  if (!j.ok()) {
    VNROS_CHECK(do_create(path).ok());
    set_file_data_locked(path, std::move(old_data));
    return j;
  }
  return j;
}

Result<Unit> MemFs::rename(std::string_view from, std::string_view to) {
  std::lock_guard<std::mutex> lock(*mu_);
  // If this rename will replace an existing destination file, capture its
  // bytes so a failed journal append can roll the replacement back too.
  bool replaced = false;
  std::vector<u8> old_dest;
  auto from_ino = lookup(from);
  auto to_ino = lookup(to);
  if (from_ino.ok() && to_ino.ok() && from_ino.value() != to_ino.value() &&
      !inodes_.at(to_ino.value()).is_dir) {
    replaced = true;
    old_dest = inodes_.at(to_ino.value()).data;
  }
  auto r = do_rename(from, to);
  if (!r.ok()) {
    return r;
  }
  Writer w;
  w.put_u8(static_cast<u8>(FsOp::kRename));
  w.put_string(from);
  w.put_string(to);
  auto j = journal_append(w.bytes());
  if (!j.ok()) {
    VNROS_CHECK(do_rename(to, from).ok());
    if (replaced) {
      VNROS_CHECK(do_create(to).ok());
      set_file_data_locked(to, std::move(old_dest));
    }
    return j;
  }
  return j;
}

Result<u64> MemFs::write(std::string_view path, u64 offset, std::span<const u8> data) {
  std::lock_guard<std::mutex> lock(*mu_);
  auto pre = lookup(path);
  std::vector<u8> old_data;
  if (pre.ok() && !inodes_.at(pre.value()).is_dir) {
    old_data = inodes_.at(pre.value()).data;
  }
  auto r = do_write(path, offset, data);
  if (!r.ok()) {
    return r;
  }
  Writer w;
  w.put_u8(static_cast<u8>(FsOp::kWrite));
  w.put_string(path);
  w.put_u64(offset);
  w.put_bytes(data);
  auto j = journal_append(w.bytes());
  if (!j.ok()) {
    set_file_data_locked(path, std::move(old_data));
    return j.error();
  }
  return r;
}

Result<Unit> MemFs::truncate(std::string_view path, u64 new_size) {
  std::lock_guard<std::mutex> lock(*mu_);
  auto pre = lookup(path);
  std::vector<u8> old_data;
  if (pre.ok() && !inodes_.at(pre.value()).is_dir) {
    old_data = inodes_.at(pre.value()).data;
  }
  auto r = do_truncate(path, new_size);
  if (!r.ok()) {
    return r;
  }
  Writer w;
  w.put_u8(static_cast<u8>(FsOp::kTruncate));
  w.put_string(path);
  w.put_u64(new_size);
  auto j = journal_append(w.bytes());
  if (!j.ok()) {
    set_file_data_locked(path, std::move(old_data));
    return j;
  }
  return j;
}

Result<Unit> MemFs::fsync() {
  std::lock_guard<std::mutex> lock(*mu_);
  SpanScope span(ObsRegistry::global().tracer(), span_fsync_);
  c_fsyncs_->inc();
  if (dev_ != nullptr) {
    dev_->flush();
  }
  return Unit{};
}

// --- Read-only operations ---------------------------------------------------------

Result<std::vector<std::string>> MemFs::readdir(std::string_view path) const {
  std::lock_guard<std::mutex> lock(*mu_);
  auto ino = lookup(path);
  if (!ino.ok()) {
    return ino.error();
  }
  const Inode& node = inodes_.at(ino.value());
  if (!node.is_dir) {
    return ErrorCode::kNotDirectory;
  }
  std::vector<std::string> names;
  names.reserve(node.entries.size());
  for (const auto& [name, child] : node.entries) {
    names.push_back(name);
  }
  return names;
}

Result<FileStat> MemFs::stat(std::string_view path) const {
  std::lock_guard<std::mutex> lock(*mu_);
  auto ino = lookup(path);
  if (!ino.ok()) {
    return ino.error();
  }
  const Inode& node = inodes_.at(ino.value());
  return FileStat{ino.value(), node.data.size(), node.is_dir};
}

Result<u64> MemFs::read(std::string_view path, u64 offset, std::span<u8> out) const {
  std::lock_guard<std::mutex> lock(*mu_);
  auto ino = lookup(path);
  if (!ino.ok()) {
    return ino.error();
  }
  const Inode& node = inodes_.at(ino.value());
  if (node.is_dir) {
    return ErrorCode::kIsDirectory;
  }
  if (offset >= node.data.size()) {
    return u64{0};
  }
  u64 n = std::min<u64>(out.size(), node.data.size() - offset);
  std::memcpy(out.data(), node.data.data() + offset, n);
  // The paper's read_spec postcondition, executably:
  VNROS_ENSURES(n == std::min<u64>(out.size(), node.data.size() - offset));
  return n;
}

FsAbsState MemFs::view() const {
  std::lock_guard<std::mutex> lock(*mu_);
  FsAbsState state;
  struct Item {
    u64 ino;
    std::string path;
  };
  std::vector<Item> stack{{kRootIno, ""}};
  while (!stack.empty()) {
    Item item = stack.back();
    stack.pop_back();
    const Inode& node = inodes_.at(item.ino);
    for (const auto& [name, child_ino] : node.entries) {
      const Inode& child = inodes_.at(child_ino);
      std::string child_path = item.path + "/" + name;
      if (child.is_dir) {
        state.dirs.insert(child_path);
        stack.push_back({child_ino, child_path});
      } else {
        state.files[child_path] = child.data;
      }
    }
  }
  return state;
}

}  // namespace vnros
