// Per-process virtual memory manager (Table 2 "memory management").
//
// Tracks mmap-style regions, backs them with frames from the FrameAllocator,
// installs the mappings through the verified PageTable, and provides the
// user-memory copy routines the syscall layer uses (the paper's *mapping*
// obligation: "the process memory for the buffer appear[s] at a known
// location in kernel space" — here: copy_in/copy_out translate through the
// same tree the MMU model walks, so a wrong mapping is caught by the
// kernel/vm_* VCs, not silently read as garbage).
#ifndef VNROS_SRC_KERNEL_VM_H_
#define VNROS_SRC_KERNEL_VM_H_

#include <map>
#include <mutex>
#include <span>
#include <vector>

#include "src/base/result.h"
#include "src/base/types.h"
#include "src/hw/mmu.h"
#include "src/kernel/frame_alloc.h"
#include "src/pt/page_table.h"

namespace vnros {

struct VmRegion {
  u64 length = 0;          // bytes, page-multiple
  Perms perms;
  bool lazy = false;          // demand-paged: frames allocated on first touch
  std::vector<PAddr> frames;  // backing frames, one per page (lazy: may be 0)
};

struct VmStats {
  u64 faults_served = 0;   // demand-paging faults resolved
  u64 eager_pages = 0;     // pages backed at mmap time
  u64 lazy_pages = 0;      // pages backed on fault
};

class VmManager {
 public:
  // User mappings start here; below is reserved (null guard + kernel image
  // analogue).
  static constexpr u64 kUserBase = 0x1000'0000;

  VmManager(PhysMem& mem, FrameAllocator& frames);
  ~VmManager();

  VmManager(const VmManager&) = delete;
  VmManager& operator=(const VmManager&) = delete;

  // Allocates a region of `length` bytes (rounded up to pages), backs it with
  // zeroed frames and maps it. Returns the region base.
  Result<VAddr> mmap(u64 length, Perms perms);

  // Reserves a region without backing it: each page is allocated and mapped
  // on first touch (the demand-paging fault path every copy routine takes).
  // Memory-overcommit semantics: a touch may fail with kNoMemory later even
  // though the mmap itself succeeded.
  Result<VAddr> mmap_lazy(u64 length, Perms perms);

  // Unmaps the region based exactly at `vbase`, freeing its frames.
  Result<Unit> munmap(VAddr vbase);

  // Copies between user memory and kernel buffers, translating page by page
  // through the page table. Fails with kNotMapped/kNotPermitted if any page
  // of the range is absent or (for copy_in to writes) lacks rights.
  Result<Unit> copy_out(VAddr dst, std::span<const u8> src);  // kernel -> user
  Result<Unit> copy_in(VAddr src, std::span<u8> dst);         // user -> kernel

  // Single-value accessors for futex words and similar.
  Result<u32> read_u32(VAddr va);
  Result<Unit> write_u32(VAddr va, u32 value);

  const PageTable& page_table() const { return *pt_; }
  PAddr root() const { return pt_->root(); }

  u64 mapped_bytes() const;
  usize region_count() const;
  // Frames currently backing a region (for lazy regions: touched pages).
  Result<usize> resident_pages(VAddr region_base) const;
  const VmStats& stats() const { return stats_; }

 private:
  Result<PAddr> translate(VAddr va, Access access);
  // Demand-paging fault handler: backs the page covering `va` if it belongs
  // to a lazy region; returns the new translation or the original fault.
  Result<PAddr> handle_fault(VAddr va, Access access);
  Result<VAddr> mmap_impl(u64 length, Perms perms, bool lazy);

  PhysMem& mem_;
  FrameAllocator& frames_;
  mutable std::mutex mu_;
  std::optional<PageTable> pt_;
  std::map<u64, VmRegion> regions_;
  u64 next_base_ = kUserBase;
  VmStats stats_;
};

}  // namespace vnros

#endif  // VNROS_SRC_KERNEL_VM_H_
