// NrFs: the filesystem served through node replication (§4.1 — NrOS's main
// services, the file system included, are sequential structures scaled with
// NR).
//
// FsDs wraps the in-memory MemFs as an NR Dispatch structure: every mutation
// is a logged WriteOp replayed identically on every replica (MemFs is
// deterministic, including inode-number assignment), reads are served
// replica-locally under the distributed reader lock. Persistence composes at
// a different layer (the journaled MemFs over a BlockDevice); NrFs is the
// scalability half of the design, and kernel/nrfs_* VCs check that the
// replicas never diverge and that NrFs is observationally equivalent to a
// single MemFs.
#ifndef VNROS_SRC_KERNEL_NRFS_H_
#define VNROS_SRC_KERNEL_NRFS_H_

#include <string>
#include <variant>
#include <vector>

#include "src/kernel/fs.h"
#include "src/kernel/nr_shards.h"
#include "src/nr/node_replicated.h"

namespace vnros {

struct FsDs {
  struct MkdirOp {
    std::string path;
  };
  struct RmdirOp {
    std::string path;
  };
  struct CreateOp {
    std::string path;
  };
  struct UnlinkOp {
    std::string path;
  };
  struct RenameOp {
    std::string from;
    std::string to;
  };
  struct WriteDataOp {
    std::string path;
    u64 offset = 0;
    std::vector<u8> data;
  };
  struct TruncateOp {
    std::string path;
    u64 size = 0;
  };

  struct WriteOp {
    std::variant<std::monostate, MkdirOp, RmdirOp, CreateOp, UnlinkOp, RenameOp, WriteDataOp,
                 TruncateOp>
        op;
  };

  struct ReadDataOp {
    std::string path;
    u64 offset = 0;
    u64 len = 0;
  };
  struct ReaddirOp {
    std::string path;
  };
  struct StatOp {
    std::string path;
  };
  struct ReadOp {
    std::variant<std::monostate, ReadDataOp, ReaddirOp, StatOp> op;
  };

  struct Response {
    ErrorCode err = ErrorCode::kOk;
    u64 length = 0;                   // bytes read / written
    std::vector<u8> data;             // read payload
    std::vector<std::string> names;   // readdir
    FileStat stat;

    bool operator==(const Response&) const = default;
  };

  // Each replica holds its own in-memory tree; copying a (fresh) FsDs for a
  // new replica starts it empty — the log replay reconstructs identical
  // state everywhere.
  MemFs fs;

  FsDs() = default;
  FsDs(const FsDs&) : fs() {}
  FsDs& operator=(const FsDs&) = delete;

  Response dispatch(const ReadOp& op) const {
    Response resp;
    if (const auto* rd = std::get_if<ReadDataOp>(&op.op)) {
      std::vector<u8> buf(rd->len);
      auto r = fs.read(rd->path, rd->offset, buf);
      resp.err = r.error();
      if (r.ok()) {
        resp.err = ErrorCode::kOk;
        resp.length = r.value();
        buf.resize(r.value());
        resp.data = std::move(buf);
      }
      return resp;
    }
    if (const auto* dd = std::get_if<ReaddirOp>(&op.op)) {
      auto r = fs.readdir(dd->path);
      resp.err = r.error();
      if (r.ok()) {
        resp.err = ErrorCode::kOk;
        resp.names = r.value();
      }
      return resp;
    }
    if (const auto* st = std::get_if<StatOp>(&op.op)) {
      auto r = fs.stat(st->path);
      resp.err = r.error();
      if (r.ok()) {
        resp.err = ErrorCode::kOk;
        resp.stat = r.value();
      }
      return resp;
    }
    resp.err = ErrorCode::kInvalidArgument;
    return resp;
  }

  Response dispatch_mut(const WriteOp& op) {
    Response resp;
    if (const auto* m = std::get_if<MkdirOp>(&op.op)) {
      resp.err = fs.mkdir(m->path).error();
    } else if (const auto* r = std::get_if<RmdirOp>(&op.op)) {
      resp.err = fs.rmdir(r->path).error();
    } else if (const auto* c = std::get_if<CreateOp>(&op.op)) {
      resp.err = fs.create(c->path).error();
    } else if (const auto* u = std::get_if<UnlinkOp>(&op.op)) {
      resp.err = fs.unlink(u->path).error();
    } else if (const auto* rn = std::get_if<RenameOp>(&op.op)) {
      resp.err = fs.rename(rn->from, rn->to).error();
    } else if (const auto* w = std::get_if<WriteDataOp>(&op.op)) {
      auto wr = fs.write(w->path, w->offset, w->data);
      resp.err = wr.error();
      if (wr.ok()) {
        resp.err = ErrorCode::kOk;
        resp.length = wr.value();
      }
    } else if (const auto* t = std::get_if<TruncateOp>(&op.op)) {
      resp.err = fs.truncate(t->path, t->size).error();
    } else {
      resp.err = ErrorCode::kInvalidArgument;
    }
    return resp;
  }
};

// User-facing replicated filesystem with a MemFs-shaped API.
class NrFs {
 public:
  explicit NrFs(const Topology& topo, NrConfig config = KernelNrShards::fs())
      : repl_(topo, FsDs{}, config) {}

  ThreadToken register_thread(CoreId core) { return repl_.register_thread(core); }

  ErrorCode mkdir(const ThreadToken& t, std::string path) {
    FsDs::WriteOp op;
    op.op = FsDs::MkdirOp{std::move(path)};
    return repl_.execute_mut(t, op).err;
  }
  ErrorCode rmdir(const ThreadToken& t, std::string path) {
    FsDs::WriteOp op;
    op.op = FsDs::RmdirOp{std::move(path)};
    return repl_.execute_mut(t, op).err;
  }
  ErrorCode create(const ThreadToken& t, std::string path) {
    FsDs::WriteOp op;
    op.op = FsDs::CreateOp{std::move(path)};
    return repl_.execute_mut(t, op).err;
  }
  ErrorCode unlink(const ThreadToken& t, std::string path) {
    FsDs::WriteOp op;
    op.op = FsDs::UnlinkOp{std::move(path)};
    return repl_.execute_mut(t, op).err;
  }
  ErrorCode rename(const ThreadToken& t, std::string from, std::string to) {
    FsDs::WriteOp op;
    op.op = FsDs::RenameOp{std::move(from), std::move(to)};
    return repl_.execute_mut(t, op).err;
  }
  Result<u64> write(const ThreadToken& t, std::string path, u64 offset, std::vector<u8> data) {
    FsDs::WriteOp op;
    op.op = FsDs::WriteDataOp{std::move(path), offset, std::move(data)};
    auto resp = repl_.execute_mut(t, op);
    if (resp.err != ErrorCode::kOk) {
      return resp.err;
    }
    return resp.length;
  }
  ErrorCode truncate(const ThreadToken& t, std::string path, u64 size) {
    FsDs::WriteOp op;
    op.op = FsDs::TruncateOp{std::move(path), size};
    return repl_.execute_mut(t, op).err;
  }

  Result<std::vector<u8>> read(const ThreadToken& t, std::string path, u64 offset, u64 len) {
    FsDs::ReadOp op;
    op.op = FsDs::ReadDataOp{std::move(path), offset, len};
    auto resp = repl_.execute(t, op);
    if (resp.err != ErrorCode::kOk) {
      return resp.err;
    }
    return std::move(resp.data);
  }
  Result<std::vector<std::string>> readdir(const ThreadToken& t, std::string path) {
    FsDs::ReadOp op;
    op.op = FsDs::ReaddirOp{std::move(path)};
    auto resp = repl_.execute(t, op);
    if (resp.err != ErrorCode::kOk) {
      return resp.err;
    }
    return std::move(resp.names);
  }
  Result<FileStat> stat(const ThreadToken& t, std::string path) {
    FsDs::ReadOp op;
    op.op = FsDs::StatOp{std::move(path)};
    auto resp = repl_.execute(t, op);
    if (resp.err != ErrorCode::kOk) {
      return resp.err;
    }
    return resp.stat;
  }

  void sync(const ThreadToken& t) { repl_.sync(t); }
  usize num_replicas() const { return repl_.num_replicas(); }
  const FsDs& peek(usize replica) const { return repl_.peek(replica); }

 private:
  NodeReplicated<FsDs> repl_;
};

}  // namespace vnros

#endif  // VNROS_SRC_KERNEL_NRFS_H_
