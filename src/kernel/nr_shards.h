// The kernel's NR log shard plan (DESIGN.md §10.4).
//
// Every NR-replicated kernel subsystem appends to its own NrLogShard: the
// scheduler, the process directory, the filesystem and the vm/address-space
// layer each get an independent log (own tail cacheline, capacity tuned to
// the subsystem's op size and rate), so a burst of fs writes never delays a
// vm map through tail contention, and a stall in one subsystem's replicas
// never wedges another subsystem's garbage collection. The shard name also
// namespaces the obs instruments ("nr.fs0/batch_ops", "nr.vm0/...") so the
// tier-1 perf smoke and the chaos traces can attribute combiner behaviour to
// a subsystem.
//
// Capacities: entries are full WriteOp values, so capacity is a memory knob
// too. fs ops carry payload vectors (keep the log small); sched/vm ops are a
// few words (deeper logs tolerate laggard replicas without forcing help()).
#ifndef VNROS_SRC_KERNEL_NR_SHARDS_H_
#define VNROS_SRC_KERNEL_NR_SHARDS_H_

#include "src/nr/node_replicated.h"

namespace vnros {

struct KernelNrShards {
  static NrConfig sched() {
    NrConfig c;
    c.shard = NrLogShard{"sched", usize{1} << 14};
    return c;
  }
  static NrConfig procs() {
    NrConfig c;
    c.shard = NrLogShard{"procs", usize{1} << 12};
    return c;
  }
  static NrConfig fs() {
    NrConfig c;
    c.shard = NrLogShard{"fs", usize{1} << 12};
    return c;
  }
  // The vm shard default lives with its owner: AddressSpace::default_config()
  // in src/pt/address_space.h (the pt layer cannot see kernel headers).
};

}  // namespace vnros

#endif  // VNROS_SRC_KERNEL_NR_SHARDS_H_
