// Futex (Table 2 "threads and synchronization"; §3: "we might expose futexes
// from the kernel and then verify a userspace mutex implementation on top").
//
// Two variants share the futex spec ("wait(addr, expected) sleeps iff the
// word still equals expected when the queue lock is held; wake(addr, n)
// releases at most n waiters; no waiter is lost if a wake follows the word
// change that the waiter observed"):
//
//   - FutexTable: blocks real host threads (condvar under a bucket lock).
//     The verified user-space primitives in src/ulib run on this one, so
//     their linearizability tests exercise true parallelism.
//   - SimFutex: parks simulated kernel threads via the NR Scheduler; used by
//     the process-model syscalls, fully deterministic.
#ifndef VNROS_SRC_KERNEL_FUTEX_H_
#define VNROS_SRC_KERNEL_FUTEX_H_

#include <atomic>
#include <condition_variable>
#include <deque>
#include <map>
#include <mutex>

#include "src/base/result.h"
#include "src/base/types.h"
#include "src/kernel/scheduler.h"

namespace vnros {

struct FutexStats {
  u64 waits = 0;
  u64 immediate_returns = 0;  // value already differed
  u64 wakes = 0;
  u64 woken_threads = 0;
};

// Host-thread futex.
class FutexTable {
 public:
  // Blocks the calling thread while *addr == expected. Returns kOk when
  // woken, kWouldBlock if the value already differed at queue time.
  ErrorCode wait(const std::atomic<u32>* addr, u32 expected);

  // Wakes up to `n` waiters on addr; returns how many were woken.
  usize wake(const std::atomic<u32>* addr, usize n);

  FutexStats stats() const;

 private:
  struct Waiter {
    const std::atomic<u32>* addr;
    bool woken = false;
  };

  static constexpr usize kBuckets = 64;

  struct Bucket {
    std::mutex mu;
    std::condition_variable cv;
    std::deque<Waiter*> waiters;
  };

  Bucket& bucket_for(const std::atomic<u32>* addr) {
    auto h = reinterpret_cast<usize>(addr) >> 2;
    return buckets_[h % kBuckets];
  }

  Bucket buckets_[kBuckets];
  mutable std::mutex stats_mu_;
  FutexStats stats_;
};

// Simulated-thread futex: parks Tids in per-(pid, uaddr) queues and defers
// blocking/waking to the replicated scheduler.
class SimFutex {
 public:
  explicit SimFutex(Scheduler& sched) : sched_(sched) {}

  // `current` reads the futex word (the caller resolves it through the
  // process's VmManager). If it equals `expected`, the thread is blocked in
  // the scheduler and queued; otherwise kWouldBlock.
  ErrorCode wait(const ThreadToken& t, Pid pid, VAddr uaddr, u32 current, u32 expected,
                 Tid tid);

  // Wakes up to n queued waiters; returns the count.
  usize wake(const ThreadToken& t, Pid pid, VAddr uaddr, usize n);

  usize waiters(Pid pid, VAddr uaddr) const;

 private:
  using Key = std::pair<Pid, u64>;

  Scheduler& sched_;
  mutable std::mutex mu_;
  std::map<Key, std::deque<Tid>> queues_;
};

}  // namespace vnros

#endif  // VNROS_SRC_KERNEL_FUTEX_H_
