// Verification conditions for the kernel services: allocator set semantics,
// VM mapping/copy obligations, scheduler and process-directory refinement,
// filesystem model equivalence and crash consistency, syscall marshalling
// and the paper's read_spec contract, futex lost-wakeup freedom.
#include "src/kernel/vcs.h"

#include <algorithm>
#include <atomic>
#include <map>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "src/base/fault.h"
#include "src/base/rng.h"
#include "src/kernel/frame_alloc.h"
#include "src/kernel/fs.h"
#include "src/kernel/futex.h"
#include "src/kernel/kernel.h"
#include "src/kernel/nrfs.h"
#include "src/kernel/pipe.h"
#include "src/kernel/process.h"
#include "src/kernel/scheduler.h"
#include "src/kernel/syscall.h"
#include "src/kernel/vm.h"

namespace vnros {
namespace {

// --- Frame allocator -----------------------------------------------------------

VcOutcome vc_frame_alloc_set_semantics(u64 seed) {
  PhysMem mem(1024);
  Topology topo(4, 2);
  FrameAllocator alloc(mem, topo);
  Rng rng(seed);
  std::set<u64> model;  // allocated frame numbers
  std::vector<PAddr> held;
  const u64 total = alloc.total_frames();

  for (int i = 0; i < 3000; ++i) {
    if (held.empty() || rng.chance(3, 5)) {
      auto r = alloc.alloc_on_node(static_cast<NodeId>(rng.next_below(2)));
      if (!r.ok()) {
        if (model.size() != total) {
          return VcOutcome::fail("alloc failed while frames remain");
        }
        continue;
      }
      u64 fn = r.value().frame_number();
      if (model.count(fn) != 0) {
        return VcOutcome::fail("frame handed out twice");
      }
      model.insert(fn);
      held.push_back(r.value());
    } else {
      usize idx = rng.next_below(held.size());
      PAddr f = held[idx];
      held[idx] = held.back();
      held.pop_back();
      alloc.free(f);
      model.erase(f.frame_number());
    }
    if (alloc.free_frames() != total - model.size()) {
      return VcOutcome::fail("free-count accounting diverged from the model");
    }
  }
  return VcOutcome::pass();
}

VcOutcome vc_frame_alloc_numa_locality() {
  PhysMem mem(1024);
  Topology topo(4, 2);  // 2 nodes
  FrameAllocator alloc(mem, topo);
  // Allocations with a free preferred pool must come from it (no fallbacks).
  for (int i = 0; i < 50; ++i) {
    auto a = alloc.alloc_on_node(0);
    auto b = alloc.alloc_on_node(1);
    if (!a.ok() || !b.ok()) {
      return VcOutcome::fail("alloc failed");
    }
  }
  if (alloc.stats().remote_fallbacks != 0) {
    return VcOutcome::fail("allocator fell back remotely despite local space");
  }
  return VcOutcome::pass();
}

VcOutcome vc_frame_alloc_exhaustion() {
  PhysMem mem(64);
  Topology topo(2, 1);
  FrameAllocator alloc(mem, topo, 8);
  std::vector<PAddr> all;
  for (;;) {
    auto r = alloc.alloc_on_node(0);
    if (!r.ok()) {
      break;
    }
    all.push_back(r.value());
  }
  if (all.size() != alloc.total_frames()) {
    return VcOutcome::fail("exhaustion before all frames were handed out");
  }
  if (alloc.alloc_on_node(1).ok()) {
    return VcOutcome::fail("alloc succeeded on an exhausted machine");
  }
  alloc.free(all.back());
  if (!alloc.alloc_on_node(0).ok()) {
    return VcOutcome::fail("alloc failed right after a free");
  }
  return VcOutcome::pass();
}

// --- Virtual memory ------------------------------------------------------------

VcOutcome vc_vm_mmap_balance(u64 seed) {
  PhysMem mem(2048);
  Topology topo(2, 1);
  FrameAllocator alloc(mem, topo);
  u64 baseline = alloc.free_frames();
  {
    VmManager vm(mem, alloc);
    Rng rng(seed);
    std::vector<VAddr> regions;
    for (int i = 0; i < 60; ++i) {
      if (regions.empty() || rng.chance(2, 3)) {
        auto r = vm.mmap(rng.next_range(1, 5 * kPageSize), Perms::rw());
        if (r.ok()) {
          regions.push_back(r.value());
        }
      } else {
        usize idx = rng.next_below(regions.size());
        if (!vm.munmap(regions[idx]).ok()) {
          return VcOutcome::fail("munmap of live region failed");
        }
        regions.erase(regions.begin() + static_cast<std::ptrdiff_t>(idx));
      }
    }
    // Double-munmap must fail cleanly.
    if (!regions.empty()) {
      VAddr v = regions[0];
      (void)vm.munmap(v);
      if (vm.munmap(v).ok()) {
        return VcOutcome::fail("double munmap succeeded");
      }
    }
  }
  // VmManager teardown must return every frame (incl. page-table frames).
  PhysMem mem2(2048);  // silence unused warning path; real check below
  (void)mem2;
  FrameAllocator* ap = &alloc;
  if (ap->free_frames() != baseline) {
    return VcOutcome::fail("frames leaked across VmManager lifetime");
  }
  return VcOutcome::pass();
}

VcOutcome vc_vm_copy_roundtrip(u64 seed) {
  PhysMem mem(2048);
  Topology topo(2, 1);
  FrameAllocator alloc(mem, topo);
  VmManager vm(mem, alloc);
  Rng rng(seed);
  auto region = vm.mmap(8 * kPageSize, Perms::rw());
  if (!region.ok()) {
    return VcOutcome::fail("mmap failed");
  }
  for (int i = 0; i < 50; ++i) {
    // Random offset and length, deliberately crossing page boundaries.
    u64 off = rng.next_below(7 * kPageSize);
    usize len = static_cast<usize>(rng.next_range(1, kPageSize + 500));
    std::vector<u8> out(len);
    for (auto& b : out) {
      b = static_cast<u8>(rng.next_u64());
    }
    if (!vm.copy_out(region.value().offset(off), out).ok()) {
      return VcOutcome::fail("copy_out failed inside a mapped region");
    }
    std::vector<u8> back(len);
    if (!vm.copy_in(region.value().offset(off), back).ok()) {
      return VcOutcome::fail("copy_in failed");
    }
    if (back != out) {
      return VcOutcome::fail("user-memory round-trip corrupted bytes");
    }
  }
  // Out-of-region access must fail, and not partially write.
  std::vector<u8> probe(64);
  if (vm.copy_in(region.value().offset(8 * kPageSize + kPageSize), probe).ok()) {
    return VcOutcome::fail("copy_in from unmapped memory succeeded");
  }
  return VcOutcome::pass();
}

VcOutcome vc_vm_write_protection() {
  PhysMem mem(1024);
  Topology topo(2, 1);
  FrameAllocator alloc(mem, topo);
  VmManager vm(mem, alloc);
  auto ro = vm.mmap(kPageSize, Perms::ro());
  if (!ro.ok()) {
    return VcOutcome::fail("mmap failed");
  }
  std::vector<u8> data(16, 0xAB);
  auto w = vm.copy_out(ro.value(), data);
  if (w.ok() || w.error() != ErrorCode::kNotPermitted) {
    return VcOutcome::fail("write through a read-only mapping was not rejected");
  }
  std::vector<u8> back(16);
  if (!vm.copy_in(ro.value(), back).ok()) {
    return VcOutcome::fail("read of a read-only mapping failed");
  }
  return VcOutcome::pass();
}

VcOutcome vc_vm_process_isolation() {
  PhysMem mem(2048);
  Topology topo(2, 1);
  FrameAllocator alloc(mem, topo);
  VmManager vm_a(mem, alloc);
  VmManager vm_b(mem, alloc);
  auto ra = vm_a.mmap(2 * kPageSize, Perms::rw());
  auto rb = vm_b.mmap(2 * kPageSize, Perms::rw());
  if (!ra.ok() || !rb.ok()) {
    return VcOutcome::fail("mmap failed");
  }
  // Same virtual address in both (deterministic base), different frames.
  std::vector<u8> pa(64, 0xAA), pb(64, 0xBB);
  (void)vm_a.copy_out(ra.value(), pa);
  (void)vm_b.copy_out(rb.value(), pb);
  std::vector<u8> check(64);
  (void)vm_a.copy_in(ra.value(), check);
  if (check != pa) {
    return VcOutcome::fail("process A's memory was disturbed by process B");
  }
  (void)vm_b.copy_in(rb.value(), check);
  if (check != pb) {
    return VcOutcome::fail("process B's memory was disturbed by process A");
  }
  return VcOutcome::pass();
}

// --- Scheduler -------------------------------------------------------------------

VcOutcome vc_sched_exactly_one_state(u64 seed) {
  Topology topo(4, 2);
  Scheduler sched(topo);
  auto tok = sched.register_core(0);
  Rng rng(seed);
  std::vector<Tid> tids;
  for (Tid t = 1; t <= 12; ++t) {
    if (sched.add_thread(tok, t, 1, 1, static_cast<CoreId>(rng.next_below(4))) !=
        ErrorCode::kOk) {
      return VcOutcome::fail("add_thread failed");
    }
    tids.push_back(t);
  }
  for (int i = 0; i < 500; ++i) {
    u64 kind = rng.next_below(4);
    Tid t = tids[rng.next_below(tids.size())];
    switch (kind) {
      case 0: (void)sched.block(tok, t); break;
      case 1: (void)sched.wake(tok, t); break;
      case 2: (void)sched.pick(tok, static_cast<CoreId>(rng.next_below(4))); break;
      case 3: (void)sched.yield(tok, static_cast<CoreId>(rng.next_below(4))); break;
      default: break;
    }
    // Invariant: every live thread is in exactly one place.
    sched.sync(tok);
    const SchedulerDs& ds = sched.peek(0);
    for (Tid tid : tids) {
      const auto& info = ds.threads.at(tid);
      usize in_queues = 0;
      for (const auto& q : ds.queues) {
        in_queues += static_cast<usize>(std::count(q.begin(), q.end(), tid));
      }
      usize in_running = static_cast<usize>(
          std::count(ds.running.begin(), ds.running.end(), tid));
      switch (info.state) {
        case ThreadState::kReady:
          if (in_queues != 1 || in_running != 0) {
            return VcOutcome::fail("ready thread not in exactly one queue");
          }
          break;
        case ThreadState::kRunning:
          if (in_queues != 0 || in_running != 1) {
            return VcOutcome::fail("running thread misplaced");
          }
          break;
        case ThreadState::kBlocked:
        case ThreadState::kExited:
          if (in_queues != 0 || in_running != 0) {
            return VcOutcome::fail("blocked/exited thread still queued");
          }
          break;
      }
    }
  }
  return VcOutcome::pass();
}

VcOutcome vc_sched_round_robin_fairness() {
  Topology topo(2, 1);
  Scheduler sched(topo);
  auto tok = sched.register_core(0);
  for (Tid t = 1; t <= 5; ++t) {
    (void)sched.add_thread(tok, t, 1, 1, 0);
  }
  std::map<Tid, int> picks;
  for (int round = 0; round < 10; ++round) {
    Tid t = sched.pick(tok, 0);
    if (t == 0) {
      return VcOutcome::fail("idle despite ready threads");
    }
    ++picks[t];
  }
  for (Tid t = 1; t <= 5; ++t) {
    if (picks[t] != 2) {
      return VcOutcome::fail("round-robin fairness violated: thread " + std::to_string(t) +
                             " picked " + std::to_string(picks[t]) + "x in 10 picks");
    }
  }
  return VcOutcome::pass();
}

VcOutcome vc_sched_priority() {
  Topology topo(2, 1);
  Scheduler sched(topo);
  auto tok = sched.register_core(0);
  (void)sched.add_thread(tok, 1, 1, 1, 0);   // low
  (void)sched.add_thread(tok, 2, 1, 5, 0);   // high
  (void)sched.add_thread(tok, 3, 1, 5, 0);   // high
  if (sched.pick(tok, 0) != 2 || sched.pick(tok, 0) != 3) {
    return VcOutcome::fail("higher priority threads not preferred");
  }
  // Both high threads requeued behind; next picks alternate among them, the
  // low thread starves until they block.
  (void)sched.block(tok, 2);
  (void)sched.block(tok, 3);
  if (sched.pick(tok, 0) != 1) {
    return VcOutcome::fail("low priority thread not scheduled once highs blocked");
  }
  return VcOutcome::pass();
}

VcOutcome vc_sched_blocked_never_picked() {
  Topology topo(2, 1);
  Scheduler sched(topo);
  auto tok = sched.register_core(0);
  (void)sched.add_thread(tok, 1, 1, 1, 0);
  (void)sched.add_thread(tok, 2, 1, 1, 0);
  (void)sched.block(tok, 1);
  for (int i = 0; i < 6; ++i) {
    if (sched.pick(tok, 0) == 1) {
      return VcOutcome::fail("blocked thread was scheduled");
    }
  }
  (void)sched.wake(tok, 1);
  bool seen = false;
  for (int i = 0; i < 4; ++i) {
    if (sched.pick(tok, 0) == 1) {
      seen = true;
    }
  }
  if (!seen) {
    return VcOutcome::fail("woken thread never scheduled again");
  }
  return VcOutcome::pass();
}

VcOutcome vc_sched_nr_replicas_agree(u64 seed) {
  Topology topo(4, 2);
  Scheduler sched(topo);
  auto t0 = sched.register_core(0);
  auto t1 = sched.register_core(2);
  Rng rng(seed);
  for (Tid t = 1; t <= 8; ++t) {
    (void)sched.add_thread(rng.chance(1, 2) ? t0 : t1, t, 1, 1,
                           static_cast<CoreId>(rng.next_below(4)));
  }
  for (int i = 0; i < 300; ++i) {
    const auto& tok = rng.chance(1, 2) ? t0 : t1;
    switch (rng.next_below(4)) {
      case 0: (void)sched.block(tok, rng.next_range(1, 8)); break;
      case 1: (void)sched.wake(tok, rng.next_range(1, 8)); break;
      case 2: (void)sched.pick(tok, static_cast<CoreId>(rng.next_below(4))); break;
      default: (void)sched.yield(tok, static_cast<CoreId>(rng.next_below(4))); break;
    }
  }
  sched.sync(t0);
  sched.sync(t1);
  if (!(sched.peek(0) == sched.peek(1))) {
    return VcOutcome::fail("scheduler replicas diverged");
  }
  return VcOutcome::pass();
}

// --- Process directory ---------------------------------------------------------------

VcOutcome vc_proc_lifecycle() {
  PhysMem mem(2048);
  Topology topo(2, 1);
  FrameAllocator frames(mem, topo);
  ProcessManager pm(mem, frames, topo);
  auto tok = pm.register_core(0);

  auto root = pm.spawn(tok, kInvalidPid);
  auto child = pm.spawn(tok, root.value());
  if (!root.ok() || !child.ok() || root.value() == child.value()) {
    return VcOutcome::fail("spawn failed or pids not unique");
  }
  // Waiting on a live child reports WouldBlock.
  auto early = pm.wait(tok, root.value(), child.value());
  if (early.ok() || early.error() != ErrorCode::kWouldBlock) {
    return VcOutcome::fail("wait on a running child did not block");
  }
  if (!pm.exit(tok, child.value(), 42).ok()) {
    return VcOutcome::fail("exit failed");
  }
  if (pm.get(child.value()) != nullptr) {
    return VcOutcome::fail("exited process object not torn down");
  }
  // Wrong parent cannot reap.
  auto stranger = pm.spawn(tok, kInvalidPid);
  auto stolen = pm.wait(tok, stranger.value(), child.value());
  if (stolen.ok() || stolen.error() != ErrorCode::kNotPermitted) {
    return VcOutcome::fail("non-parent reaped a child");
  }
  auto code = pm.wait(tok, root.value(), child.value());
  if (!code.ok() || code.value() != 42) {
    return VcOutcome::fail("exit code lost");
  }
  auto again = pm.wait(tok, root.value(), child.value());
  if (again.ok()) {
    return VcOutcome::fail("child reaped twice");
  }
  return VcOutcome::pass();
}

VcOutcome vc_proc_signals() {
  PhysMem mem(2048);
  Topology topo(2, 1);
  FrameAllocator frames(mem, topo);
  ProcessManager pm(mem, frames, topo);
  auto tok = pm.register_core(0);
  auto pid = pm.spawn(tok, kInvalidPid);

  if (!pm.kill(tok, pid.value(), kSigTerm).ok() || !pm.kill(tok, pid.value(), kSigUsr1).ok()) {
    return VcOutcome::fail("kill failed");
  }
  auto s1 = pm.take_signal(tok, pid.value());
  auto s2 = pm.take_signal(tok, pid.value());
  auto s3 = pm.take_signal(tok, pid.value());
  if (!s1.ok() || !s2.ok() || !s3.ok()) {
    return VcOutcome::fail("take_signal failed");
  }
  std::set<u32> got{s1.value(), s2.value()};
  if (got != std::set<u32>{kSigTerm, kSigUsr1} || s3.value() != 0) {
    return VcOutcome::fail("pending signal set wrong");
  }
  // SIGKILL is immediate.
  if (!pm.kill(tok, pid.value(), kSigKill).ok()) {
    return VcOutcome::fail("SIGKILL failed");
  }
  auto meta = pm.meta(tok, pid.value());
  if (!meta.ok() || meta.value().state != ProcState::kZombie ||
      meta.value().exit_code != -static_cast<i32>(kSigKill)) {
    return VcOutcome::fail("SIGKILL did not zombify with -9");
  }
  if (pm.kill(tok, pid.value(), kSigTerm).ok()) {
    return VcOutcome::fail("signalled a zombie");
  }
  return VcOutcome::pass();
}

VcOutcome vc_proc_nr_replicas_agree(u64 seed) {
  PhysMem mem(4096);
  Topology topo(4, 2);
  FrameAllocator frames(mem, topo);
  ProcessManager pm(mem, frames, topo);
  auto t0 = pm.register_core(0);
  auto t1 = pm.register_core(2);
  Rng rng(seed);
  std::vector<Pid> pids;
  for (int i = 0; i < 150; ++i) {
    const auto& tok = rng.chance(1, 2) ? t0 : t1;
    switch (rng.next_below(4)) {
      case 0: {
        auto p = pm.spawn(tok, kInvalidPid);
        if (p.ok()) {
          pids.push_back(p.value());
        }
        break;
      }
      case 1:
        if (!pids.empty()) {
          (void)pm.exit(tok, pids[rng.next_below(pids.size())], 1);
        }
        break;
      case 2:
        if (!pids.empty()) {
          (void)pm.kill(tok, pids[rng.next_below(pids.size())], kSigTerm);
        }
        break;
      default:
        if (!pids.empty()) {
          (void)pm.take_signal(tok, pids[rng.next_below(pids.size())]);
        }
        break;
    }
  }
  pm.sync(t0);
  pm.sync(t1);
  if (!(pm.peek(0) == pm.peek(1))) {
    return VcOutcome::fail("process directory replicas diverged");
  }
  return VcOutcome::pass();
}

// --- Filesystem ---------------------------------------------------------------------

// Reference model: dirs as a set, files as a map (the FsAbsState itself).
struct FsModel {
  FsAbsState s;

  static bool parent_ok(const FsAbsState& s, const std::string& path) {
    auto slash = path.rfind('/');
    if (slash == 0) {
      return true;  // parent is root
    }
    std::string parent = path.substr(0, slash);
    return s.dirs.count(parent) != 0;
  }

  static bool exists(const FsAbsState& s, const std::string& path) {
    return s.dirs.count(path) != 0 || s.files.count(path) != 0;
  }

  ErrorCode mkdir(const std::string& p) {
    if (!parent_ok(s, p)) return ErrorCode::kNotFound;
    if (exists(s, p)) return ErrorCode::kAlreadyExists;
    s.dirs.insert(p);
    return ErrorCode::kOk;
  }
  ErrorCode create(const std::string& p) {
    if (!parent_ok(s, p)) return ErrorCode::kNotFound;
    if (exists(s, p)) return ErrorCode::kAlreadyExists;
    s.files[p] = {};
    return ErrorCode::kOk;
  }
  ErrorCode unlink(const std::string& p) {
    if (s.dirs.count(p) != 0) return ErrorCode::kIsDirectory;
    if (s.files.erase(p) == 0) return ErrorCode::kNotFound;
    return ErrorCode::kOk;
  }
  ErrorCode rmdir(const std::string& p) {
    if (s.files.count(p) != 0) return ErrorCode::kNotDirectory;
    if (s.dirs.count(p) == 0) return ErrorCode::kNotFound;
    std::string prefix = p + "/";
    for (const auto& d : s.dirs) {
      if (d.rfind(prefix, 0) == 0) return ErrorCode::kNotEmpty;
    }
    for (const auto& [f, bytes] : s.files) {
      if (f.rfind(prefix, 0) == 0) return ErrorCode::kNotEmpty;
    }
    s.dirs.erase(p);
    return ErrorCode::kOk;
  }
  ErrorCode write(const std::string& p, u64 off, const std::vector<u8>& data) {
    if (s.dirs.count(p) != 0) return ErrorCode::kIsDirectory;
    auto it = s.files.find(p);
    if (it == s.files.end()) return ErrorCode::kNotFound;
    if (off + data.size() > it->second.size()) {
      it->second.resize(off + data.size(), 0);
    }
    std::copy(data.begin(), data.end(), it->second.begin() + static_cast<std::ptrdiff_t>(off));
    return ErrorCode::kOk;
  }
  ErrorCode truncate(const std::string& p, u64 size) {
    if (s.dirs.count(p) != 0) return ErrorCode::kIsDirectory;
    auto it = s.files.find(p);
    if (it == s.files.end()) return ErrorCode::kNotFound;
    it->second.resize(size, 0);
    return ErrorCode::kOk;
  }
  // POSIX-style rename: a file destination is atomically replaced; a
  // directory destination is never replaced. Mirrors MemFs::do_rename's check
  // order so error codes agree step-by-step.
  ErrorCode rename(const std::string& from, const std::string& to) {
    if (!parent_ok(s, from)) return ErrorCode::kNotFound;
    bool from_is_dir = s.dirs.count(from) != 0;
    if (!from_is_dir && s.files.count(from) == 0) return ErrorCode::kNotFound;
    if (!parent_ok(s, to)) return ErrorCode::kNotFound;
    if (exists(s, to)) {
      if (s.dirs.count(to) != 0) return ErrorCode::kIsDirectory;
      if (from_is_dir) return ErrorCode::kNotDirectory;
      if (from == to) return ErrorCode::kOk;
    }
    if (from_is_dir && to.rfind(from + "/", 0) == 0) return ErrorCode::kInvalidArgument;
    if (!from_is_dir) {
      auto node = std::move(s.files[from]);
      s.files.erase(from);
      s.files[to] = std::move(node);  // replaces any existing destination file
      return ErrorCode::kOk;
    }
    // Directory: move the dir and rewrite every path under it.
    std::string prefix = from + "/";
    std::set<std::string> dirs;
    std::map<std::string, std::vector<u8>> files;
    for (const auto& d : s.dirs) {
      if (d == from) {
        dirs.insert(to);
      } else if (d.rfind(prefix, 0) == 0) {
        dirs.insert(to + "/" + d.substr(prefix.size()));
      } else {
        dirs.insert(d);
      }
    }
    for (auto& [f, bytes] : s.files) {
      if (f.rfind(prefix, 0) == 0) {
        files[to + "/" + f.substr(prefix.size())] = std::move(bytes);
      } else {
        files[f] = std::move(bytes);
      }
    }
    s.dirs = std::move(dirs);
    s.files = std::move(files);
    return ErrorCode::kOk;
  }
};

// Random path pool: small so collisions are common.
std::string pick_path(Rng& rng) {
  static const char* dirs[] = {"", "/d0", "/d1", "/d0/sub"};
  static const char* names[] = {"a", "b", "c", "log"};
  return std::string(dirs[rng.next_below(4)]) + "/" + names[rng.next_below(4)];
}

std::string pick_dir(Rng& rng) {
  static const char* dirs[] = {"/d0", "/d1", "/d0/sub", "/d2"};
  return dirs[rng.next_below(4)];
}

// Applies one random op to both fs and model, comparing results.
// Returns empty string on agreement, a diagnostic otherwise.
std::string fs_step(MemFs& fs, FsModel& model, Rng& rng) {
  switch (rng.next_below(8)) {
    case 0: {
      std::string p = pick_dir(rng);
      ErrorCode a = fs.mkdir(p).error();
      ErrorCode b = model.mkdir(p);
      if (a != b) return "mkdir(" + p + "): " + error_name(a) + " vs " + error_name(b);
      break;
    }
    case 1: {
      std::string p = pick_path(rng);
      ErrorCode a = fs.create(p).error();
      ErrorCode b = model.create(p);
      if (a != b) return "create(" + p + "): " + error_name(a) + " vs " + error_name(b);
      break;
    }
    case 2: {
      std::string p = pick_path(rng);
      ErrorCode a = fs.unlink(p).error();
      ErrorCode b = model.unlink(p);
      if (a != b) return "unlink(" + p + "): " + error_name(a) + " vs " + error_name(b);
      break;
    }
    case 3: {
      std::string p = pick_dir(rng);
      ErrorCode a = fs.rmdir(p).error();
      ErrorCode b = model.rmdir(p);
      if (a != b) return "rmdir(" + p + "): " + error_name(a) + " vs " + error_name(b);
      break;
    }
    case 4: {
      std::string p = pick_path(rng);
      u64 off = rng.next_below(64);
      std::vector<u8> data(rng.next_range(1, 100));
      for (auto& c : data) {
        c = static_cast<u8>(rng.next_u64());
      }
      ErrorCode a = fs.write(p, off, data).error();
      ErrorCode b = model.write(p, off, data);
      if (a != b) return "write(" + p + "): " + error_name(a) + " vs " + error_name(b);
      break;
    }
    case 5: {
      std::string p = pick_path(rng);
      u64 size = rng.next_below(128);
      ErrorCode a = fs.truncate(p, size).error();
      ErrorCode b = model.truncate(p, size);
      if (a != b) return "truncate(" + p + "): " + error_name(a) + " vs " + error_name(b);
      break;
    }
    case 6: {
      std::string p = pick_path(rng);
      u64 off = rng.next_below(64);
      std::vector<u8> buf(rng.next_range(1, 100));
      auto a = fs.read(p, off, buf);
      auto it = model.s.files.find(p);
      if (it == model.s.files.end()) {
        bool model_err = model.s.dirs.count(p) != 0;
        if (a.ok()) return "read(" + p + ") succeeded on missing file";
        (void)model_err;
      } else {
        u64 expect = off >= it->second.size()
                         ? 0
                         : std::min<u64>(buf.size(), it->second.size() - off);
        if (!a.ok() || a.value() != expect) return "read(" + p + ") length mismatch";
        for (u64 i = 0; i < expect; ++i) {
          if (buf[i] != it->second[off + i]) return "read(" + p + ") bytes mismatch";
        }
      }
      break;
    }
    case 7: {
      // File renames (incl. replace-onto-existing, since the small path pool
      // collides often) plus occasional directory renames. pick_path and
      // pick_dir pools are disjoint, so files stay files and dirs stay dirs —
      // the model's parent_ok can't express a file used as a directory.
      std::string from;
      std::string to;
      if (rng.chance(1, 4)) {
        from = pick_dir(rng);
        to = pick_dir(rng);
      } else {
        from = pick_path(rng);
        to = pick_path(rng);
      }
      ErrorCode a = fs.rename(from, to).error();
      ErrorCode b = model.rename(from, to);
      if (a != b) {
        return "rename(" + from + ", " + to + "): " + error_name(a) + " vs " + error_name(b);
      }
      break;
    }
    default:
      break;
  }
  return "";
}

VcOutcome vc_fs_model_equivalence(u64 seed, usize steps) {
  MemFs fs;
  FsModel model;
  Rng rng(seed);
  for (usize i = 0; i < steps; ++i) {
    std::string diag = fs_step(fs, model, rng);
    if (!diag.empty()) {
      return VcOutcome::fail(diag + " (step " + std::to_string(i) + ")");
    }
    if (fs.view() != model.s) {
      return VcOutcome::fail("abstract state diverged at step " + std::to_string(i));
    }
  }
  return VcOutcome::pass();
}

// Directed check of the rename replace semantics (POSIX): a file destination
// is atomically replaced (its old inode is gone, the source bytes are served
// under the new name), a directory destination is rejected, and the replace
// survives recovery (journal replay runs the same do_rename).
VcOutcome vc_fs_rename_replace() {
  BlockDevice dev(8192);
  auto fsr = MemFs::format(dev);
  if (!fsr.ok()) {
    return VcOutcome::fail("format failed");
  }
  MemFs fs = std::move(fsr.value());
  std::vector<u8> a_bytes{1, 2, 3, 4};
  std::vector<u8> b_bytes{9, 9};
  if (!fs.mkdir("/d").ok() || !fs.create("/d/a").ok() || !fs.create("/d/b").ok() ||
      !fs.write("/d/a", 0, a_bytes).ok() || !fs.write("/d/b", 0, b_bytes).ok()) {
    return VcOutcome::fail("setup failed");
  }
  // File onto existing file: replaces.
  if (fs.rename("/d/a", "/d/b").error() != ErrorCode::kOk) {
    return VcOutcome::fail("rename onto existing file refused");
  }
  FsAbsState v = fs.view();
  if (v.files.count("/d/a") != 0) {
    return VcOutcome::fail("source path survived the rename");
  }
  auto it = v.files.find("/d/b");
  if (it == v.files.end() || it->second != a_bytes) {
    return VcOutcome::fail("destination does not carry the source bytes");
  }
  // Self-rename is a no-op, not a self-unlink.
  if (fs.rename("/d/b", "/d/b").error() != ErrorCode::kOk || fs.view() != v) {
    return VcOutcome::fail("self-rename not a no-op");
  }
  // Directory destinations are never replaced; a directory never replaces a file.
  if (!fs.mkdir("/e").ok() || !fs.create("/f").ok()) {
    return VcOutcome::fail("setup 2 failed");
  }
  if (fs.rename("/d/b", "/e").error() != ErrorCode::kIsDirectory) {
    return VcOutcome::fail("file onto directory not rejected with kIsDirectory");
  }
  if (fs.rename("/e", "/f").error() != ErrorCode::kNotDirectory) {
    return VcOutcome::fail("directory onto file not rejected with kNotDirectory");
  }
  // The replace persists: recovery replays the same journaled rename.
  if (!fs.fsync().ok()) {
    return VcOutcome::fail("fsync failed");
  }
  FsAbsState before = fs.view();
  auto rec = MemFs::recover(dev);
  if (!rec.ok() || rec.value().view() != before) {
    return VcOutcome::fail("rename replace did not survive recovery");
  }
  return VcOutcome::pass();
}

VcOutcome vc_fs_persistence_clean(u64 seed) {
  BlockDevice dev(8192);
  auto fsr = MemFs::format(dev);
  if (!fsr.ok()) {
    return VcOutcome::fail("format failed");
  }
  MemFs fs = std::move(fsr.value());
  FsModel model;
  Rng rng(seed);
  for (int i = 0; i < 200; ++i) {
    (void)fs_step(fs, model, rng);
  }
  (void)fs.fsync();
  FsAbsState before = fs.view();
  auto rec = MemFs::recover(dev);
  if (!rec.ok()) {
    return VcOutcome::fail("recover failed: " + std::string(error_name(rec.error())));
  }
  if (rec.value().view() != before) {
    return VcOutcome::fail("clean remount lost state");
  }
  return VcOutcome::pass();
}

VcOutcome vc_fs_crash_consistency(u64 seed) {
  BlockDevice dev(8192, seed);
  auto fsr = MemFs::format(dev);
  if (!fsr.ok()) {
    return VcOutcome::fail("format failed");
  }
  MemFs fs = std::move(fsr.value());
  FsModel model;
  Rng rng(seed ^ 0xC4A5);

  std::vector<FsAbsState> states;  // state after each acknowledged op
  states.push_back(fs.view());
  isize last_fsync_state = 0;
  for (int i = 0; i < 120; ++i) {
    (void)fs_step(fs, model, rng);
    states.push_back(fs.view());
    if (rng.chance(1, 10)) {
      (void)fs.fsync();
      last_fsync_state = static_cast<isize>(states.size()) - 1;
    }
  }
  // Crash: unflushed sectors each survive with 50% probability.
  dev.crash(500'000);
  auto rec = MemFs::recover(dev);
  if (!rec.ok()) {
    return VcOutcome::fail("recover after crash failed: " +
                           std::string(error_name(rec.error())));
  }
  FsAbsState recovered = rec.value().view();
  // The recovered state must be one of the acknowledged-prefix states. Take
  // the *last* matching index: consecutive states repeat whenever an op
  // failed, and any matching prefix point is a valid witness.
  isize found = -1;
  for (usize i = 0; i < states.size(); ++i) {
    if (states[i] == recovered) {
      found = static_cast<isize>(i);
    }
  }
  if (found < 0) {
    return VcOutcome::fail("recovered state matches no acknowledged prefix");
  }
  // ...and everything acknowledged before the last fsync must have survived.
  if (found < last_fsync_state) {
    return VcOutcome::fail("fsynced operations were lost (state " + std::to_string(found) +
                           " < fsync state " + std::to_string(last_fsync_state) + ")");
  }
  return VcOutcome::pass();
}

VcOutcome vc_fs_checkpoint_compaction() {
  BlockDevice dev(4096);
  auto fsr = MemFs::format(dev);
  if (!fsr.ok()) {
    return VcOutcome::fail("format failed");
  }
  MemFs fs = std::move(fsr.value());
  if (!fs.create("/blob").ok()) {
    return VcOutcome::fail("create failed");
  }
  // Write enough journal volume to force at least one compaction.
  std::vector<u8> chunk(4096, 0x5A);
  for (int i = 0; i < 500; ++i) {
    if (!fs.write("/blob", (i % 8) * chunk.size(), chunk).ok()) {
      return VcOutcome::fail("write failed at iteration " + std::to_string(i));
    }
  }
  if (fs.stats().checkpoints == 0) {
    return VcOutcome::fail("no compaction despite journal pressure");
  }
  (void)fs.fsync();
  FsAbsState before = fs.view();
  auto rec = MemFs::recover(dev);
  if (!rec.ok() || rec.value().view() != before) {
    return VcOutcome::fail("state wrong after compaction + remount");
  }
  return VcOutcome::pass();
}

// --- Syscall layer -------------------------------------------------------------------

VcOutcome vc_sys_read_contract(u64 seed) {
  Kernel kernel;
  SyscallDispatcher disp(kernel);
  // Bootstrap: pid 0 acts as init and spawns the process under test.
  Sys boot(disp, kInvalidPid, 0);
  auto proc = boot.spawn();
  if (!proc.ok()) {
    return VcOutcome::fail("spawn failed");
  }
  Sys sys(disp, proc.value(), 0);

  auto fd = sys.open("/data", kOpenCreate);
  if (!fd.ok()) {
    return VcOutcome::fail("open failed");
  }
  Rng rng(seed);
  std::vector<u8> contents;
  u64 offset = 0;  // model of the fd offset
  for (int i = 0; i < 150; ++i) {
    switch (rng.next_below(3)) {
      case 0: {  // write at the current offset
        std::vector<u8> data(rng.next_range(1, 300));
        for (auto& b : data) {
          b = static_cast<u8>(rng.next_u64());
        }
        auto w = sys.write(fd.value(), data);
        if (!w.ok() || w.value() != data.size()) {
          return VcOutcome::fail("write failed");
        }
        if (offset + data.size() > contents.size()) {
          contents.resize(offset + data.size(), 0);
        }
        std::copy(data.begin(), data.end(),
                  contents.begin() + static_cast<std::ptrdiff_t>(offset));
        offset += data.size();
        break;
      }
      case 1: {  // seek
        u64 target = rng.next_below(contents.size() + 200);
        auto s = sys.lseek(fd.value(), static_cast<i64>(target), SeekWhence::kSet);
        if (!s.ok() || s.value() != target) {
          return VcOutcome::fail("lseek failed");
        }
        offset = target;
        break;
      }
      case 2: {  // read: the paper's read_spec
        u64 len = rng.next_range(1, 300);
        auto r = sys.read(fd.value(), len);
        if (!r.ok()) {
          return VcOutcome::fail("read failed");
        }
        u64 expect =
            offset >= contents.size() ? 0 : std::min<u64>(len, contents.size() - offset);
        if (r.value().size() != expect) {
          return VcOutcome::fail("read_len != min(buffer.len, size - offset)");
        }
        for (u64 k = 0; k < expect; ++k) {
          if (r.value()[k] != contents[offset + k]) {
            return VcOutcome::fail("read bytes != contents[offset..offset+read_len]");
          }
        }
        offset += expect;
        break;
      }
      default:
        break;
    }
  }
  return VcOutcome::pass();
}

VcOutcome vc_sys_marshalling_rejects_garbage(u64 seed) {
  Kernel kernel;
  SyscallDispatcher disp(kernel);
  Sys boot(disp, kInvalidPid, 0);
  auto proc = boot.spawn();
  Sys sys(disp, proc.value(), 0);
  auto fd = sys.open("/x", kOpenCreate);
  std::vector<u8> data{1, 2, 3};
  (void)sys.write(fd.value(), data);

  // Build a valid read frame, then fuzz truncations and mutations: the
  // dispatcher must answer every frame (no crash) and never return kOk for a
  // malformed one that decodes to nothing.
  Writer w;
  w.put_u32(static_cast<u32>(SysNr::kRead));
  w.put_u32(static_cast<u32>(fd.value()));
  w.put_u64(3);
  std::vector<u8> frame = w.take();
  for (usize cut = 0; cut < frame.size(); ++cut) {
    auto reply = disp.handle(proc.value(), 0, std::span<const u8>(frame.data(), cut));
    Reader r(reply);
    auto err = r.get_u32();
    if (!err || static_cast<ErrorCode>(*err) == ErrorCode::kOk) {
      return VcOutcome::fail("truncated frame accepted at cut " + std::to_string(cut));
    }
  }
  Rng rng(seed);
  for (int i = 0; i < 300; ++i) {
    std::vector<u8> fuzzed = frame;
    fuzzed[rng.next_below(fuzzed.size())] ^= static_cast<u8>(1 + rng.next_below(255));
    // Extra garbage appended must also be rejected (frames are exact).
    if (rng.chance(1, 4)) {
      fuzzed.push_back(static_cast<u8>(rng.next_u64()));
    }
    auto reply = disp.handle(proc.value(), 0, fuzzed);
    Reader r(reply);
    if (!r.get_u32()) {
      return VcOutcome::fail("reply without error word");
    }
  }
  return VcOutcome::pass();
}

VcOutcome vc_sys_fd_isolation() {
  Kernel kernel;
  SyscallDispatcher disp(kernel);
  Sys boot(disp, kInvalidPid, 0);
  auto p1 = boot.spawn();
  auto p2 = boot.spawn();
  Sys a(disp, p1.value(), 0), b(disp, p2.value(), 1);
  auto fd = a.open("/shared", kOpenCreate);
  if (!fd.ok()) {
    return VcOutcome::fail("open failed");
  }
  // The same numeric fd in process B must be invalid.
  auto r = b.read(fd.value(), 10);
  if (r.ok() || r.error() != ErrorCode::kBadFd) {
    return VcOutcome::fail("fd leaked across processes");
  }
  return VcOutcome::pass();
}

VcOutcome vc_sys_user_copy_roundtrip() {
  Kernel kernel;
  SyscallDispatcher disp(kernel);
  Sys boot(disp, kInvalidPid, 0);
  auto pid = boot.spawn();
  Sys sys(disp, pid.value(), 0);

  auto buf = sys.mmap(3 * kPageSize, true);
  if (!buf.ok()) {
    return VcOutcome::fail("mmap failed");
  }
  auto fd = sys.open("/file", kOpenCreate);
  std::vector<u8> data(5000);
  for (usize i = 0; i < data.size(); ++i) {
    data[i] = static_cast<u8>(i * 7);
  }
  (void)sys.write(fd.value(), data);
  (void)sys.lseek(fd.value(), 0, SeekWhence::kSet);

  // read_user: file -> user memory (crosses page boundaries).
  auto n = sys.read_user(fd.value(), buf.value().offset(100), 5000);
  if (!n.ok() || n.value() != 5000) {
    return VcOutcome::fail("read_user failed");
  }
  // write_user: user memory -> a second file; then compare.
  auto fd2 = sys.open("/copy", kOpenCreate);
  Process* proc = kernel.procs().get(pid.value());
  std::vector<u8> check(5000);
  (void)proc->vm().copy_in(buf.value().offset(100), check);
  if (check != data) {
    return VcOutcome::fail("user memory contents wrong after read_user");
  }
  auto m = sys.write_user(fd2.value(), buf.value().offset(100), 5000);
  if (!m.ok() || m.value() != 5000) {
    return VcOutcome::fail("write_user failed");
  }
  auto readback = sys.read(fd2.value(), 5000);
  (void)sys.lseek(fd2.value(), 0, SeekWhence::kSet);
  readback = sys.read(fd2.value(), 5000);
  if (!readback.ok() || readback.value() != data) {
    return VcOutcome::fail("file copied through user memory diverged");
  }
  return VcOutcome::pass();
}


// readdir returns lexicographically sorted names (deterministic directory
// iteration is part of the contract the paper's spec style demands).
VcOutcome vc_sys_readdir_sorted() {
  Kernel kernel;
  SyscallDispatcher disp(kernel);
  Sys boot(disp, kInvalidPid, 0);
  auto pid = boot.spawn();
  Sys sys(disp, pid.value(), 0);
  (void)sys.mkdir("/dir");
  for (const char* name : {"zeta", "alpha", "mid", "beta"}) {
    (void)sys.open(std::string("/dir/") + name, kOpenCreate);
  }
  auto names = sys.readdir("/dir");
  if (!names.ok()) {
    return VcOutcome::fail("readdir failed");
  }
  std::vector<std::string> expect = {"alpha", "beta", "mid", "zeta"};
  if (names.value() != expect) {
    return VcOutcome::fail("directory listing not sorted");
  }
  return VcOutcome::pass();
}

// Descriptor reuse is safe: between close and reuse a stale fd is kBadFd
// (never silently aliases another file), and a recycled number carries a
// fresh OpenFile — no offset or path leaks from its previous life. The
// free list keeps the fd namespace bounded under open/close churn.
VcOutcome vc_sys_fd_reuse_safe() {
  Kernel kernel;
  SyscallDispatcher disp(kernel);
  Sys boot(disp, kInvalidPid, 0);
  auto pid = boot.spawn();
  Sys sys(disp, pid.value(), 0);
  auto fd1 = sys.open("/a", kOpenCreate);
  if (!fd1.ok() || sys.write(fd1.value(), std::vector<u8>{'A', 'A', 'A'}).error() !=
                       ErrorCode::kOk) {
    return VcOutcome::fail("setup failed");
  }
  if (!sys.close(fd1.value()).ok()) {
    return VcOutcome::fail("close failed");
  }
  // The stale window: closed but not yet reused.
  if (sys.read(fd1.value(), 1).error() != ErrorCode::kBadFd) {
    return VcOutcome::fail("stale fd still usable after close");
  }
  auto fd2 = sys.open("/b", kOpenCreate);
  if (!fd2.ok()) {
    return VcOutcome::fail("second open failed");
  }
  if (fd2.value() != fd1.value()) {
    return VcOutcome::fail("closed fd was not recycled");
  }
  // The recycled descriptor must be /b at offset 0 — not /a, not /a's offset.
  if (sys.write(fd2.value(), std::vector<u8>{'B'}).error() != ErrorCode::kOk ||
      sys.fstat(fd2.value()).value().size != 1) {
    return VcOutcome::fail("recycled fd aliased previous file state");
  }
  auto check = sys.open("/a", kOpenCreate);
  if (!check.ok() || sys.fstat(check.value()).value().size != 3) {
    return VcOutcome::fail("old file disturbed through recycled fd");
  }
  (void)sys.close(check.value());
  // Churn must not grow the namespace: after close, reopen gets the same
  // number back instead of extending next_fd.
  for (int i = 0; i < 64; ++i) {
    auto fd = sys.open("/churn", kOpenCreate);
    if (!fd.ok() || fd.value() != check.value()) {
      return VcOutcome::fail("fd namespace grew under open/close churn");
    }
    (void)sys.close(fd.value());
  }
  return VcOutcome::pass();
}

// kOpenAppend positions at EOF; kOpenTrunc wins when both are given.
VcOutcome vc_sys_open_flag_matrix() {
  Kernel kernel;
  SyscallDispatcher disp(kernel);
  Sys boot(disp, kInvalidPid, 0);
  auto pid = boot.spawn();
  Sys sys(disp, pid.value(), 0);
  auto fd = sys.open("/f", kOpenCreate);
  std::vector<u8> ten(10, 'x');
  (void)sys.write(fd.value(), ten);
  (void)sys.close(fd.value());

  auto app = sys.open("/f", kOpenAppend);
  if (sys.lseek(app.value(), 0, SeekWhence::kCur).value() != 10) {
    return VcOutcome::fail("append did not position at EOF");
  }
  auto both = sys.open("/f", kOpenAppend | kOpenTrunc);
  if (sys.lseek(both.value(), 0, SeekWhence::kCur).value() != 0 ||
      sys.fstat(both.value()).value().size != 0) {
    return VcOutcome::fail("trunc+append did not truncate to offset 0");
  }
  // kOpenCreate on an existing file preserves contents.
  (void)sys.write(both.value(), ten);
  auto again = sys.open("/f", kOpenCreate);
  if (sys.fstat(again.value()).value().size != 10) {
    return VcOutcome::fail("create-on-existing clobbered the file");
  }
  return VcOutcome::pass();
}

// kstat refinement: the counter an application reads through the kstat
// syscall refines the kernel's own thin-view stats. For every published name,
// a value read through Sys between two kernel-side reads is bounded by them;
// reads are monotone in program order; unknown names report kNotFound rather
// than a value. This VC lives with the kernel VCs (obs cannot depend on the
// kernel) but belongs to the obs/* suite by name.
VcOutcome vc_obs_kstat_refinement() {
  Kernel kernel;
  SyscallDispatcher disp(kernel);
  Sys boot(disp, kInvalidPid, 0);
  auto pid = boot.spawn();
  Sys sys(disp, pid.value(), 0);

  // Generate activity that moves fs/frames counters.
  (void)sys.mkdir("/k");
  for (int i = 0; i < 8; ++i) {
    auto fd = sys.open("/k/f" + std::to_string(i), kOpenCreate);
    if (fd.ok()) {
      std::vector<u8> data(32, static_cast<u8>(i));
      (void)sys.write(fd.value(), data);
      (void)sys.close(fd.value());
    }
    (void)sys.fsync();
  }

  auto names = sys.kstat_list();
  if (!names.ok() || names.value().empty()) {
    return VcOutcome::fail("kstat_list failed or empty");
  }
  std::map<std::string, u64> first_read;
  for (const auto& name : names.value()) {
    auto pre = kernel.kstat(name);
    auto via_sys = sys.kstat(name);
    auto post = kernel.kstat(name);
    if (!pre.ok() || !via_sys.ok() || !post.ok()) {
      return VcOutcome::fail("published name not readable: " + name);
    }
    if (via_sys.value() < pre.value() || via_sys.value() > post.value()) {
      return VcOutcome::fail("kstat(" + name + ") outside kernel-side bounds");
    }
    first_read[name] = via_sys.value();
  }
  // More activity, then re-read: counters are monotone in program order.
  (void)sys.fsync();
  for (const auto& name : names.value()) {
    auto again = sys.kstat(name);
    if (!again.ok() || again.value() < first_read[name]) {
      return VcOutcome::fail("kstat(" + name + ") went backwards");
    }
  }
  if constexpr (kMetricsEnabled) {
    auto pre = sys.kstat("fs/fsyncs");
    (void)sys.fsync();
    auto post = sys.kstat("fs/fsyncs");
    if (!pre.ok() || !post.ok() || post.value() < pre.value() + 1) {
      return VcOutcome::fail("fs/fsyncs did not count an fsync");
    }
  }
  if (sys.kstat("no/such_counter").error() != ErrorCode::kNotFound) {
    return VcOutcome::fail("unknown kstat name did not report kNotFound");
  }
  return VcOutcome::pass();
}

// --- Futex -------------------------------------------------------------------------

VcOutcome vc_futex_value_check() {
  FutexTable futex;
  std::atomic<u32> word{7};
  // Wrong expected value: immediate WouldBlock, no hang.
  if (futex.wait(&word, 8) != ErrorCode::kWouldBlock) {
    return VcOutcome::fail("wait with stale expected value blocked");
  }
  return VcOutcome::pass();
}

VcOutcome vc_futex_no_lost_wakeup(u64 seed) {
  // The classic race: waiter checks the word, waker changes it and wakes.
  // With the check under the queue lock no wakeup may be lost. Stress it.
  Rng rng(seed);
  for (int round = 0; round < 60; ++round) {
    FutexTable futex;
    std::atomic<u32> word{0};
    std::atomic<bool> woken{false};
    std::thread waiter([&] {
      ErrorCode e = futex.wait(&word, 0);
      // Either we blocked and were woken (kOk), or we observed the new value
      // already (kWouldBlock). Both are correct; hanging is the bug.
      (void)e;
      woken.store(true);
    });
    // Random jitter to hit different interleavings.
    for (u64 spin = rng.next_below(2000); spin > 0; --spin) {
      std::atomic_thread_fence(std::memory_order_relaxed);
    }
    word.store(1, std::memory_order_release);
    while (futex.wake(&word, 64) == 0 && !woken.load()) {
      // keep waking until the waiter is out (covers wake-before-wait)
    }
    waiter.join();
  }
  return VcOutcome::pass();
}

VcOutcome vc_simfutex_scheduler_integration() {
  Topology topo(2, 1);
  Scheduler sched(topo);
  SimFutex futex(sched);
  auto tok = sched.register_core(0);
  (void)sched.add_thread(tok, 1, 1, 1, 0);
  (void)sched.add_thread(tok, 2, 1, 1, 0);

  // Thread 1 waits on a futex word that currently equals `expected`.
  if (futex.wait(tok, 1, VAddr{0x1000}, 5, 5, 1) != ErrorCode::kOk) {
    return VcOutcome::fail("wait failed");
  }
  auto st = sched.thread_state(tok, 1);
  if (!st.ok() || st.value() != ThreadState::kBlocked) {
    return VcOutcome::fail("waiter not blocked in the scheduler");
  }
  for (int i = 0; i < 4; ++i) {
    if (sched.pick(tok, 0) == 1) {
      return VcOutcome::fail("blocked futex waiter got scheduled");
    }
  }
  if (futex.wake(tok, 1, VAddr{0x1000}, 8) != 1) {
    return VcOutcome::fail("wake released wrong count");
  }
  st = sched.thread_state(tok, 1);
  if (!st.ok() || st.value() == ThreadState::kBlocked) {
    return VcOutcome::fail("woken waiter still blocked");
  }
  // Value mismatch: no block.
  if (futex.wait(tok, 1, VAddr{0x1000}, 6, 5, 2) != ErrorCode::kWouldBlock) {
    return VcOutcome::fail("wait blocked despite changed value");
  }
  return VcOutcome::pass();
}


// --- Pipes --------------------------------------------------------------------------

// P1: FIFO byte-stream identity under random chunked writes and reads.
VcOutcome vc_pipe_stream_identity(u64 seed) {
  PipeTable pipes;
  PipeId id = pipes.create();
  Rng rng(seed);
  std::vector<u8> written, read_back;
  for (int i = 0; i < 400; ++i) {
    if (rng.chance(1, 2)) {
      std::vector<u8> chunk(rng.next_range(1, 700));
      for (auto& b : chunk) {
        b = static_cast<u8>(rng.next_u64());
      }
      auto n = pipes.write(id, chunk);
      if (!n.ok()) {
        return VcOutcome::fail("write failed");
      }
      written.insert(written.end(), chunk.begin(),
                     chunk.begin() + static_cast<isize>(n.value()));
      // P2: never exceed capacity.
      if (pipes.buffered(id) > PipeTable::kCapacity) {
        return VcOutcome::fail("capacity bound violated");
      }
    } else {
      std::vector<u8> buf(rng.next_range(1, 700));
      auto n = pipes.read(id, buf);
      if (n.ok()) {
        read_back.insert(read_back.end(), buf.begin(),
                         buf.begin() + static_cast<isize>(n.value()));
      } else if (n.error() != ErrorCode::kWouldBlock) {
        return VcOutcome::fail("read failed unexpectedly");
      }
    }
    // P1: reads so far are a prefix of writes so far.
    if (read_back.size() > written.size() ||
        !std::equal(read_back.begin(), read_back.end(), written.begin())) {
      return VcOutcome::fail("read bytes are not the FIFO prefix of written bytes");
    }
  }
  // Drain and compare fully.
  for (;;) {
    std::vector<u8> buf(4096);
    auto n = pipes.read(id, buf);
    if (!n.ok() || n.value() == 0) {
      break;
    }
    read_back.insert(read_back.end(), buf.begin(), buf.begin() + static_cast<isize>(n.value()));
  }
  if (read_back != written) {
    return VcOutcome::fail("drained bytes differ from written bytes");
  }
  return VcOutcome::pass();
}

// P3/P4: EOF and EPIPE semantics around endpoint closes.
VcOutcome vc_pipe_close_semantics() {
  PipeTable pipes;
  PipeId id = pipes.create();
  std::vector<u8> data{1, 2, 3};
  std::vector<u8> buf(8);
  if (pipes.read(id, buf).error() != ErrorCode::kWouldBlock) {
    return VcOutcome::fail("empty pipe with live writer must WouldBlock");
  }
  (void)pipes.write(id, data);
  pipes.close_writer(id);
  auto n = pipes.read(id, buf);
  if (!n.ok() || n.value() != 3) {
    return VcOutcome::fail("buffered bytes must survive writer close");
  }
  n = pipes.read(id, buf);
  if (!n.ok() || n.value() != 0) {
    return VcOutcome::fail("drained pipe with no writer must report EOF (0)");
  }
  // Writer side gone: a fresh pipe with no reader refuses writes.
  PipeId id2 = pipes.create();
  pipes.close_reader(id2);
  if (pipes.write(id2, data).error() != ErrorCode::kPipeClosed) {
    return VcOutcome::fail("write with no reader must be PipeClosed");
  }
  // Both ends closed: pipe destroyed.
  pipes.close_writer(id2);
  if (pipes.exists(id2)) {
    return VcOutcome::fail("fully closed pipe not destroyed");
  }
  return VcOutcome::pass();
}

// Pipes through the full syscall boundary (fd routing + marshalling).
VcOutcome vc_pipe_via_syscalls() {
  Kernel kernel;
  SyscallDispatcher disp(kernel);
  Sys boot(disp, kInvalidPid, 0);
  auto pid = boot.spawn();
  Sys sys(disp, pid.value(), 0);
  auto ends = sys.pipe_create();
  if (!ends.ok()) {
    return VcOutcome::fail("pipe_create failed");
  }
  auto [rfd, wfd] = ends.value();
  std::vector<u8> msg{'p', 'i', 'p', 'e'};
  auto w = sys.write(wfd, msg);
  if (!w.ok() || w.value() != 4) {
    return VcOutcome::fail("pipe write via syscall failed");
  }
  auto r = sys.read(rfd, 16);
  if (!r.ok() || r.value() != msg) {
    return VcOutcome::fail("pipe read via syscall returned wrong bytes");
  }
  // Wrong-direction operations are BadFd-rejected.
  if (sys.read(wfd, 1).error() != ErrorCode::kBadFd ||
      sys.write(rfd, msg).error() != ErrorCode::kBadFd) {
    return VcOutcome::fail("wrong-direction pipe ops not rejected");
  }
  // EOF after closing the write end.
  (void)sys.close(wfd);
  auto eof = sys.read(rfd, 4);
  if (!eof.ok() || !eof.value().empty()) {
    return VcOutcome::fail("EOF not observed after write-end close");
  }
  return VcOutcome::pass();
}

// --- Demand paging --------------------------------------------------------------------

VcOutcome vc_vm_demand_paging(u64 seed) {
  PhysMem mem(2048);
  Topology topo(2, 1);
  FrameAllocator alloc(mem, topo);
  VmManager vm(mem, alloc);
  u64 free_before = alloc.free_frames();

  const u64 kPages = 32;
  auto region = vm.mmap_lazy(kPages * kPageSize, Perms::rw());
  if (!region.ok()) {
    return VcOutcome::fail("mmap_lazy failed");
  }
  // Reservation costs nothing (no data frames; PT may lazily build later).
  if (alloc.free_frames() != free_before) {
    return VcOutcome::fail("lazy mmap allocated frames eagerly");
  }
  if (vm.resident_pages(region.value()).value() != 0) {
    return VcOutcome::fail("lazy region shows resident pages before any touch");
  }
  // Touch a random subset of pages; exactly those become resident.
  Rng rng(seed);
  std::set<u64> touched;
  for (int i = 0; i < 40; ++i) {
    u64 page = rng.next_below(kPages);
    touched.insert(page);
    std::vector<u8> byte{static_cast<u8>(page)};
    if (!vm.copy_out(region.value().offset(page * kPageSize + 7), byte).ok()) {
      return VcOutcome::fail("touch write failed");
    }
  }
  if (vm.resident_pages(region.value()).value() != touched.size()) {
    return VcOutcome::fail("resident pages != touched pages");
  }
  if (vm.stats().faults_served != touched.size()) {
    return VcOutcome::fail("fault counter disagrees with touched pages");
  }
  // The touched bytes read back; untouched pages read as zero after a touch.
  for (u64 page : touched) {
    std::vector<u8> b(1);
    (void)vm.copy_in(region.value().offset(page * kPageSize + 7), b);
    if (b[0] != static_cast<u8>(page)) {
      return VcOutcome::fail("faulted page lost its data");
    }
  }
  // munmap returns exactly the touched frames.
  if (!vm.munmap(region.value()).ok()) {
    return VcOutcome::fail("munmap of lazy region failed");
  }
  if (alloc.free_frames() != free_before) {
    return VcOutcome::fail("frames leaked through the lazy lifecycle");
  }
  return VcOutcome::pass();
}

VcOutcome vc_vm_lazy_write_protection() {
  PhysMem mem(1024);
  Topology topo(2, 1);
  FrameAllocator alloc(mem, topo);
  VmManager vm(mem, alloc);
  auto ro = vm.mmap_lazy(kPageSize, Perms::ro());
  if (!ro.ok()) {
    return VcOutcome::fail("mmap_lazy failed");
  }
  std::vector<u8> b{1};
  auto w = vm.copy_out(ro.value(), b);
  if (w.ok() || w.error() != ErrorCode::kNotPermitted) {
    return VcOutcome::fail("write fault on read-only lazy region not rejected");
  }
  // A read touch faults the page in read-only.
  if (!vm.copy_in(ro.value(), b).ok() || b[0] != 0) {
    return VcOutcome::fail("read touch of lazy page failed or non-zero");
  }
  return VcOutcome::pass();
}

// --- NR-replicated filesystem ------------------------------------------------------------

VcOutcome vc_nrfs_matches_memfs(u64 seed) {
  Topology topo(4, 2);
  NrFs nrfs(topo);
  MemFs reference;
  auto tok = nrfs.register_thread(0);
  Rng rng(seed);
  for (int i = 0; i < 250; ++i) {
    std::string path = pick_path(rng);
    switch (rng.next_below(5)) {
      case 0: {
        std::string d = pick_dir(rng);
        if (nrfs.mkdir(tok, d) != reference.mkdir(d).error()) {
          return VcOutcome::fail("mkdir diverged");
        }
        break;
      }
      case 1:
        if (nrfs.create(tok, path) != reference.create(path).error()) {
          return VcOutcome::fail("create diverged");
        }
        break;
      case 2: {
        std::vector<u8> data(rng.next_range(1, 80), static_cast<u8>(i));
        u64 off = rng.next_below(64);
        auto a = nrfs.write(tok, path, off, data);
        auto b = reference.write(path, off, data);
        if (a.error() != b.error()) {
          return VcOutcome::fail("write diverged");
        }
        break;
      }
      case 3:
        if (nrfs.unlink(tok, path) != reference.unlink(path).error()) {
          return VcOutcome::fail("unlink diverged");
        }
        break;
      case 4: {
        u64 off = rng.next_below(64);
        u64 len = rng.next_range(1, 80);
        auto a = nrfs.read(tok, path, off, len);
        std::vector<u8> buf(len);
        auto b = reference.read(path, off, buf);
        if (a.ok() != b.ok()) {
          return VcOutcome::fail("read result kind diverged");
        }
        if (a.ok()) {
          buf.resize(b.value());
          if (a.value() != buf) {
            return VcOutcome::fail("read bytes diverged");
          }
        }
        break;
      }
      default:
        break;
    }
  }
  // Replicated view == reference view, on every replica.
  auto tok1 = nrfs.register_thread(2);
  nrfs.sync(tok);
  nrfs.sync(tok1);
  for (usize r = 0; r < nrfs.num_replicas(); ++r) {
    if (nrfs.peek(r).fs.view() != reference.view()) {
      return VcOutcome::fail("replica " + std::to_string(r) + " diverged from reference");
    }
  }
  return VcOutcome::pass();
}

VcOutcome vc_nrfs_concurrent_convergence(u64 seed) {
  Topology topo(4, 2);
  NrFs nrfs(topo);
  {
    auto tok = nrfs.register_thread(0);
    (void)nrfs.mkdir(tok, "/d");
  }
  Rng seeder(seed);
  std::vector<std::thread> workers;
  for (u32 t = 0; t < 4; ++t) {
    u64 tseed = seeder.next_u64();
    workers.emplace_back([&, t, tseed] {
      Rng rng(tseed);
      auto tok = nrfs.register_thread(t);
      for (int i = 0; i < 300; ++i) {
        std::string path = "/d/f" + std::to_string(rng.next_below(8));
        switch (rng.next_below(3)) {
          case 0: (void)nrfs.create(tok, path); break;
          case 1: {
            std::vector<u8> data(8, static_cast<u8>(t));
            (void)nrfs.write(tok, path, rng.next_below(32), data);
            break;
          }
          default: (void)nrfs.read(tok, path, 0, 16); break;
        }
      }
    });
  }
  for (auto& w : workers) {
    w.join();
  }
  auto t0 = nrfs.register_thread(0);
  auto t1 = nrfs.register_thread(2);
  nrfs.sync(t0);
  nrfs.sync(t1);
  if (nrfs.peek(0).fs.view() != nrfs.peek(1).fs.view()) {
    return VcOutcome::fail("filesystem replicas diverged under concurrency");
  }
  return VcOutcome::pass();
}

// --- Fault injection -------------------------------------------------------------

// A mutating op that dies on an injected device error must be invisible: it
// returns the error AND leaves the abstract state exactly as it was (the
// journal-failure rollback). The filesystem keeps working afterwards.
VcOutcome vc_fs_io_error_rollback(u64 seed) {
  auto& reg = FaultRegistry::global();
  reg.reseed(seed);
  BlockDevice dev(4096, seed, "vc/fsfaultdev");
  auto made = MemFs::format(dev);
  if (!made.ok()) {
    return VcOutcome::fail("format failed");
  }
  MemFs fs = std::move(made.value());
  if (!fs.mkdir("/d").ok() || !fs.create("/d/base").ok() ||
      !fs.write("/d/base", 0, std::vector<u8>(64, 0x5A)).ok()) {
    return VcOutcome::fail("setup failed");
  }

  FaultSpec one_shot;
  one_shot.probability_ppm = 1'000'000;
  one_shot.one_shot = true;
  Rng rng(seed);
  for (int i = 0; i < 30; ++i) {
    FsAbsState before = fs.view();
    reg.arm("vc/fsfaultdev/write_error", one_shot);
    ErrorCode err = ErrorCode::kOk;
    switch (rng.next_below(5)) {
      case 0:
        err = fs.mkdir("/d/dir" + std::to_string(i)).error();
        break;
      case 1:
        err = fs.create("/d/file" + std::to_string(i)).error();
        break;
      case 2: {
        std::vector<u8> data(rng.next_range(1, 200));
        for (auto& b : data) {
          b = static_cast<u8>(rng.next_u64());
        }
        auto w = fs.write("/d/base", rng.next_below(64), data);
        err = w.error();
        break;
      }
      case 3:
        err = fs.truncate("/d/base", rng.next_below(128)).error();
        break;
      default:
        err = fs.rename("/d/base", "/d/moved").error();
        break;
    }
    if (err == ErrorCode::kOk) {
      return VcOutcome::fail("mutating op succeeded with a write fault armed");
    }
    if (err != ErrorCode::kIoError) {
      return VcOutcome::fail(std::string("wrong error surfaced: ") + error_name(err));
    }
    if (!(fs.view() == before)) {
      return VcOutcome::fail("failed op mutated the abstract state");
    }
  }
  // The same ops succeed once the faults are gone, and the state persists.
  if (!fs.create("/d/after").ok() || !fs.write("/d/after", 0, std::vector<u8>{1, 2, 3}).ok() ||
      !fs.fsync().ok()) {
    return VcOutcome::fail("filesystem broken after injected faults");
  }
  FsAbsState final_state = fs.view();
  auto rec = MemFs::recover(dev);
  if (!rec.ok()) {
    return VcOutcome::fail("recovery failed after injected-fault run");
  }
  if (!(rec.value().view() == final_state)) {
    return VcOutcome::fail("recovered state diverged after injected-fault run");
  }
  return VcOutcome::pass();
}

// Recovery must propagate device read errors, never silently treat them as
// end-of-journal (that would resurrect a stale prefix as if it were the
// acknowledged state).
VcOutcome vc_fs_recovery_error_propagates(u64 seed) {
  auto& reg = FaultRegistry::global();
  reg.reseed(seed);
  BlockDevice dev(4096, seed, "vc/recfaultdev");
  FsAbsState expected;
  {
    auto made = MemFs::format(dev);
    if (!made.ok()) {
      return VcOutcome::fail("format failed");
    }
    MemFs fs = std::move(made.value());
    if (!fs.create("/f").ok() || !fs.write("/f", 0, std::vector<u8>(100, 0x77)).ok() ||
        !fs.fsync().ok()) {
      return VcOutcome::fail("setup failed");
    }
    expected = fs.view();
  }
  FaultSpec one_shot;
  one_shot.probability_ppm = 1'000'000;
  one_shot.one_shot = true;
  reg.arm("vc/recfaultdev/read_error", one_shot);
  auto rec = MemFs::recover(dev);
  if (rec.ok()) {
    return VcOutcome::fail("recovery swallowed a device read error");
  }
  auto clean = MemFs::recover(dev);
  if (!clean.ok()) {
    return VcOutcome::fail("clean retry of recovery failed");
  }
  if (!(clean.value().view() == expected)) {
    return VcOutcome::fail("recovered state lost acknowledged data");
  }
  return VcOutcome::pass();
}

// Schedulable allocator OOM: the armed site makes exactly one allocation
// fail with kNoMemory (counted), and the allocator is unharmed afterwards.
VcOutcome vc_frame_alloc_injected_oom() {
  auto& reg = FaultRegistry::global();
  PhysMem mem(256);
  Topology topo(2, 1);
  FrameAllocator alloc(mem, topo);
  FaultSpec one_shot;
  one_shot.probability_ppm = 1'000'000;
  one_shot.one_shot = true;
  one_shot.error = ErrorCode::kNoMemory;
  reg.arm("frame_alloc/oom", one_shot);
  auto denied = alloc.alloc_frame();
  if (denied.ok() || denied.error() != ErrorCode::kNoMemory) {
    return VcOutcome::fail("armed OOM did not surface as kNoMemory");
  }
  if (alloc.stats().injected_oom != 1) {
    return VcOutcome::fail("injected OOM not counted");
  }
  auto granted = alloc.alloc_frame();
  if (!granted.ok()) {
    return VcOutcome::fail("allocation failed after the one-shot disarmed");
  }
  alloc.free(granted.value());
  return VcOutcome::pass();
}

// Syscall-boundary injection: an armed site turns the next eligible syscall
// into a clean typed error at the contract boundary — the app sees kIoError
// or kNoMemory exactly as if the kernel had hit the fault internally, and
// the next call succeeds.
VcOutcome vc_sys_fault_injection() {
  auto& reg = FaultRegistry::global();
  Kernel kernel;
  SyscallDispatcher disp(kernel);
  Sys boot(disp, kInvalidPid, 0);
  auto proc = boot.spawn();
  if (!proc.ok()) {
    return VcOutcome::fail("spawn failed");
  }
  Sys sys(disp, proc.value(), 0);

  FaultSpec one_shot;
  one_shot.probability_ppm = 1'000'000;
  one_shot.one_shot = true;
  reg.arm("syscall/io_error", one_shot);
  auto denied = sys.open("/victim", kOpenCreate);
  if (denied.ok() || denied.error() != ErrorCode::kIoError) {
    return VcOutcome::fail("armed io_error did not surface on open");
  }
  auto fd = sys.open("/victim", kOpenCreate);
  if (!fd.ok()) {
    return VcOutcome::fail("open failed after the one-shot disarmed");
  }
  (void)sys.close(fd.value());

  one_shot.error = ErrorCode::kNoMemory;
  reg.arm("syscall/no_memory", one_shot);
  auto mm = sys.mmap(4096, /*writable=*/true);
  if (mm.ok() || mm.error() != ErrorCode::kNoMemory) {
    return VcOutcome::fail("armed no_memory did not surface on mmap");
  }
  auto mm2 = sys.mmap(4096, /*writable=*/true);
  if (!mm2.ok()) {
    return VcOutcome::fail("mmap failed after the one-shot disarmed");
  }
  (void)sys.munmap(mm2.value());
  return VcOutcome::pass();
}

// --- Async rings (src/kernel/ring.h) ------------------------------------------

// [nr][args]: the synchronous frame for the same op a RingSqe carries.
std::vector<u8> ring_sync_frame(u32 nr, const std::vector<u8>& args) {
  Writer w;
  w.put_u32(nr);
  w.put_raw(args);
  return w.take();
}

// Refinement: a random op stream executed synchronously on kernel A and
// through the ring on identically-prepared kernel B yields byte-identical
// (err, payload) replies per op and identical final SysAbsState. The ring's
// executor IS the synchronous switch, so this checks the queueing machinery
// adds nothing and loses nothing. Ops that would park (recv with an empty
// queue) are excluded here — parking is the one intended divergence, and
// ring_completion_unique plus ring_syscall_test cover it.
VcOutcome vc_ring_refines_sync(u64 seed) {
  Kernel ka, kb;
  SyscallDispatcher da(ka), db(kb);
  Sys boota(da, kInvalidPid, 0), bootb(db, kInvalidPid, 0);
  auto pa = boota.spawn();
  auto pb = bootb.spawn();
  if (!pa.ok() || !pb.ok() || pa.value() != pb.value()) {
    return VcOutcome::fail("mirrored spawn diverged");
  }
  Sys sa(da, pa.value(), 0), sb(db, pb.value(), 0);
  if (ka.net_addr() != kb.net_addr()) {
    return VcOutcome::fail("mirrored kernels got different fabric addresses");
  }
  auto ring = sb.ring_setup(8, 8);
  if (!ring.ok()) {
    return VcOutcome::fail("ring_setup failed");
  }
  // One bound UDP socket per side; same fd by identical allocation history.
  auto ua = sa.udp_socket();
  auto ub = sb.udp_socket();
  if (ua.value() != ub.value() || !sa.udp_bind(ua.value(), 7000).ok() ||
      !sb.udp_bind(ub.value(), 7000).ok()) {
    return VcOutcome::fail("mirrored socket setup diverged");
  }

  Rng rng(seed);
  const std::vector<std::string> paths = {"/r0", "/r1", "/r2"};
  std::vector<Fd> files;  // fds open on both sides (same numbers)
  usize queued = 0;       // self-sent datagrams not yet received
  u64 user_data = 0;

  for (int i = 0; i < 160; ++i) {
    u32 nr = 0;
    std::vector<u8> args;
    switch (rng.next_below(8)) {
      case 0: {
        nr = static_cast<u32>(SysNr::kOpen);
        args = ring_args::open(paths[rng.next_below(paths.size())], kOpenCreate);
        break;
      }
      case 1:
        if (!files.empty()) {
          Fd fd = files[rng.next_below(files.size())];
          std::vector<u8> data(1 + rng.next_below(64), static_cast<u8>('a' + (i % 26)));
          nr = static_cast<u32>(SysNr::kWrite);
          args = ring_args::write(fd, data);
          break;
        }
        [[fallthrough]];
      case 2:
        if (!files.empty()) {
          nr = static_cast<u32>(SysNr::kRead);
          args = ring_args::read(files[rng.next_below(files.size())], 32);
          break;
        }
        [[fallthrough]];
      case 3: {
        nr = static_cast<u32>(SysNr::kFsync);
        args = ring_args::fsync();
        break;
      }
      case 4:
        if (files.size() > 1) {
          nr = static_cast<u32>(SysNr::kClose);
          args = ring_args::close(files.back());
          break;
        }
        [[fallthrough]];
      case 5: {
        std::vector<u8> payload(1 + rng.next_below(32), static_cast<u8>(i));
        nr = static_cast<u32>(SysNr::kUdpSendTo);
        args = ring_args::udp_sendto(ua.value(), ka.net_addr(), 7000, payload);
        break;
      }
      case 6:
        if (queued > 0) {
          nr = static_cast<u32>(SysNr::kUdpRecvFrom);
          args = ring_args::udp_recvfrom(ua.value());
          break;
        }
        [[fallthrough]];
      default:
        if (!files.empty()) {
          nr = static_cast<u32>(SysNr::kFstat);
          // fstat's frame is just the fd word — same shape close uses.
          args = ring_args::close(files[rng.next_below(files.size())]);
        } else {
          nr = static_cast<u32>(SysNr::kFsync);
          args = ring_args::fsync();
        }
        break;
    }

    std::vector<u8> reply_a = da.handle(pa.value(), 0, ring_sync_frame(nr, args));
    ++user_data;
    RingSqe sqe{user_data, nr, args};
    auto accepted = sb.ring_submit(ring.value(), std::span<const RingSqe>(&sqe, 1));
    if (!accepted.ok() || accepted.value() != 1) {
      return VcOutcome::fail("single-entry submit not accepted");
    }
    auto cqes = sb.ring_wait(ring.value(), 1, 1);
    if (!cqes.ok() || cqes.value().size() != 1) {
      return VcOutcome::fail("completion not ready after submit pass");
    }
    const RingCqe& cqe = cqes.value()[0];
    if (cqe.user_data != user_data) {
      return VcOutcome::fail("user_data correlation broken");
    }
    Reader ra(reply_a);
    auto err_a = ra.get_u32();
    auto payload_a = ra.get_raw(ra.remaining());
    if (!err_a || !payload_a || *err_a != cqe.err || *payload_a != cqe.payload) {
      return VcOutcome::fail("CQE (err, payload) diverges from the synchronous reply");
    }
    // Track mirrored state from side A's (identical) reply.
    if (*err_a == static_cast<u32>(ErrorCode::kOk)) {
      Reader pr(*payload_a);
      if (nr == static_cast<u32>(SysNr::kOpen)) {
        files.push_back(static_cast<Fd>(*pr.get_u32()));
      } else if (nr == static_cast<u32>(SysNr::kClose)) {
        files.pop_back();
      } else if (nr == static_cast<u32>(SysNr::kUdpSendTo)) {
        ++queued;
      } else if (nr == static_cast<u32>(SysNr::kUdpRecvFrom)) {
        --queued;
      }
    }
  }

  // Batched phase: independent writes to distinct files submitted as one
  // batch complete as a set — same multiset of replies, same final state as
  // the sequential synchronous execution.
  std::vector<RingSqe> batch;
  std::map<u64, std::vector<u8>> expect;  // user_data -> sync reply bytes
  for (int i = 0; i < 6; ++i) {
    std::string path = "/batch" + std::to_string(i);
    auto open_a = sa.open(path, kOpenCreate);
    auto open_b = sb.open(path, kOpenCreate);
    if (open_a.value() != open_b.value()) {
      return VcOutcome::fail("mirrored open diverged before batch");
    }
    std::vector<u8> data(8 + i, static_cast<u8>('0' + i));
    std::vector<u8> args = ring_args::write(open_a.value(), data);
    std::vector<u8> reply_a =
        da.handle(pa.value(), 0, ring_sync_frame(static_cast<u32>(SysNr::kWrite), args));
    ++user_data;
    expect[user_data] = std::move(reply_a);
    batch.push_back(RingSqe{user_data, static_cast<u32>(SysNr::kWrite), std::move(args)});
  }
  auto accepted = sb.ring_submit(ring.value(), batch);
  if (!accepted.ok() || accepted.value() != static_cast<u32>(batch.size())) {
    return VcOutcome::fail("batch submit not fully accepted");
  }
  usize reaped = 0;
  while (reaped < batch.size()) {
    auto cqes = sb.ring_wait(ring.value(), 1, 4);
    if (!cqes.ok() || cqes.value().empty()) {
      return VcOutcome::fail("batch completions missing");
    }
    for (const RingCqe& cqe : cqes.value()) {
      auto it = expect.find(cqe.user_data);
      if (it == expect.end()) {
        return VcOutcome::fail("batch CQE with unknown user_data");
      }
      Reader ra(it->second);
      auto err_a = ra.get_u32();
      auto payload_a = ra.get_raw(ra.remaining());
      if (*err_a != cqe.err || *payload_a != cqe.payload) {
        return VcOutcome::fail("batched CQE diverges from synchronous reply");
      }
      expect.erase(it);
      ++reaped;
    }
  }

  if (!(da.view(pa.value()) == db.view(pb.value()))) {
    return VcOutcome::fail("final abstract state diverged between sync and ring");
  }
  return VcOutcome::pass();
}

// Exactly-once: every accepted SQE is reaped exactly once, under forced CQ
// overflow, parked recvs, and an armed submit fault site. The books balance
// at every step: accepted == reaped + ready + in_flight.
VcOutcome vc_ring_completion_unique(u64 seed) {
  FaultRegistry& freg = FaultRegistry::global();
  freg.reseed(seed * 0x9E37'79B9'7F4A'7C15ull + 1);
  Kernel kernel;
  SyscallDispatcher disp(kernel);
  Sys boot(disp, kInvalidPid, 0);
  auto pid = boot.spawn();
  Sys sys(disp, pid.value(), 0);
  auto ring = sys.ring_setup(32, 4);  // small CQ: reaping lag must overflow
  if (!ring.ok()) {
    return VcOutcome::fail("ring_setup failed");
  }
  auto sock = sys.udp_socket();
  if (!sock.ok() || !sys.udp_bind(sock.value(), 9000).ok()) {
    return VcOutcome::fail("socket setup failed");
  }
  auto file = sys.open("/uniq", kOpenCreate);
  if (!file.ok()) {
    return VcOutcome::fail("open failed");
  }

  FaultSpec flaky;
  flaky.probability_ppm = 120'000;
  flaky.error = ErrorCode::kIoError;
  freg.arm("syscall/ring_submit", flaky);

  Rng rng(seed);
  u64 user_data = 0;
  u64 accepted_total = 0;
  std::set<u64> outstanding;  // accepted, not yet reaped
  std::set<u64> reaped;
  usize parked_recvs = 0;

  auto reap_some = [&](u32 max_reap) -> bool {
    auto cqes = sys.ring_wait(ring.value(), 0, max_reap);
    if (!cqes.ok()) {
      return false;
    }
    for (const RingCqe& cqe : cqes.value()) {
      if (reaped.count(cqe.user_data) != 0) {
        return false;  // duplicate completion
      }
      if (outstanding.erase(cqe.user_data) != 1) {
        return false;  // completion nobody submitted
      }
      reaped.insert(cqe.user_data);
    }
    return true;
  };

  for (int round = 0; round < 200; ++round) {
    u32 choice = static_cast<u32>(rng.next_below(10));
    if (choice < 4) {
      // A burst of writes/fsyncs, reaped lazily → CQ overflow pressure.
      std::vector<RingSqe> batch;
      usize n = 1 + rng.next_below(4);
      for (usize i = 0; i < n; ++i) {
        std::vector<u8> data(4, static_cast<u8>(round));
        batch.push_back(RingSqe{++user_data, static_cast<u32>(SysNr::kWrite),
                                ring_args::write(file.value(), data)});
      }
      auto acc = sys.ring_submit(ring.value(), batch);
      if (!acc.ok() && acc.error() != ErrorCode::kWouldBlock) {
        return VcOutcome::fail("submit failed unexpectedly");
      }
      u32 took = acc.ok() ? acc.value() : 0;
      accepted_total += took;
      for (u32 i = 0; i < took; ++i) {
        outstanding.insert(batch[i].user_data);
      }
      user_data -= (n - took);  // unaccepted ids are never live
    } else if (choice < 6) {
      // A recv with nothing queued: parks in flight until data arrives.
      RingSqe sqe{++user_data, static_cast<u32>(SysNr::kUdpRecvFrom),
                  ring_args::udp_recvfrom(sock.value())};
      auto acc = sys.ring_submit(ring.value(), std::span<const RingSqe>(&sqe, 1));
      if (acc.ok() && acc.value() == 1) {
        accepted_total += 1;
        outstanding.insert(sqe.user_data);
        ++parked_recvs;
      } else {
        --user_data;
      }
    } else if (choice < 8 && parked_recvs > 0) {
      // Feed one parked recv: self-send, next pass completes it.
      std::vector<u8> payload(3, static_cast<u8>(round));
      if (sys.udp_sendto(sock.value(), kernel.net_addr(), 9000, payload).ok()) {
        --parked_recvs;
      }
    } else {
      if (!reap_some(1 + static_cast<u32>(rng.next_below(6)))) {
        freg.disarm("syscall/ring_submit");
        return VcOutcome::fail("reap violated exactly-once");
      }
    }
    // The books must balance at every step.
    usize in_flight = kernel.rings().in_flight(pid.value(), ring.value());
    usize ready = kernel.rings().ready(pid.value(), ring.value());
    if (accepted_total != reaped.size() + ready + in_flight) {
      freg.disarm("syscall/ring_submit");
      return VcOutcome::fail("accepted != reaped + ready + in_flight");
    }
  }
  freg.disarm("syscall/ring_submit");

  // Drain: feed every parked recv, then reap until empty.
  while (parked_recvs > 0) {
    std::vector<u8> payload(2, 0xEE);
    if (!sys.udp_sendto(sock.value(), kernel.net_addr(), 9000, payload).ok()) {
      return VcOutcome::fail("drain send failed");
    }
    --parked_recvs;
  }
  for (int i = 0; i < 64 && !outstanding.empty(); ++i) {
    if (!reap_some(8)) {
      return VcOutcome::fail("drain reap violated exactly-once");
    }
  }
  if (!outstanding.empty()) {
    return VcOutcome::fail("accepted SQEs never completed");
  }
  if (kernel.rings().in_flight(pid.value(), ring.value()) != 0 ||
      kernel.rings().ready(pid.value(), ring.value()) != 0) {
    return VcOutcome::fail("ring not empty after full drain");
  }
  if (kMetricsEnabled && kernel.rings().cq_overflows() == 0) {
    return VcOutcome::fail("overflow pressure never exercised the overflow path");
  }
  return VcOutcome::pass();
}

}  // namespace

void register_kernel_vcs(VcRegistry& reg) {
  for (u64 seed = 1; seed <= 3; ++seed) {
    reg.add("kernel/frame_alloc_set_semantics_seed" + std::to_string(seed),
            VcCategory::kMemoryManagement, [seed] { return vc_frame_alloc_set_semantics(seed); });
  }
  reg.add("kernel/frame_alloc_numa_locality", VcCategory::kMemoryManagement,
          [] { return vc_frame_alloc_numa_locality(); });
  reg.add("kernel/frame_alloc_exhaustion", VcCategory::kMemoryManagement,
          [] { return vc_frame_alloc_exhaustion(); });

  for (u64 seed = 1; seed <= 3; ++seed) {
    reg.add("kernel/vm_mmap_balance_seed" + std::to_string(seed),
            VcCategory::kMemoryManagement, [seed] { return vc_vm_mmap_balance(seed); });
    reg.add("kernel/vm_copy_roundtrip_seed" + std::to_string(seed),
            VcCategory::kMemoryManagement, [seed] { return vc_vm_copy_roundtrip(seed); });
  }
  reg.add("kernel/vm_write_protection", VcCategory::kMemorySafety,
          [] { return vc_vm_write_protection(); });
  reg.add("kernel/vm_process_isolation", VcCategory::kMemorySafety,
          [] { return vc_vm_process_isolation(); });

  for (u64 seed = 1; seed <= 2; ++seed) {
    reg.add("kernel/sched_exactly_one_state_seed" + std::to_string(seed),
            VcCategory::kScheduler, [seed] { return vc_sched_exactly_one_state(seed); });
    reg.add("kernel/sched_nr_replicas_agree_seed" + std::to_string(seed),
            VcCategory::kScheduler, [seed] { return vc_sched_nr_replicas_agree(seed); });
  }
  reg.add("kernel/sched_round_robin_fairness", VcCategory::kScheduler,
          [] { return vc_sched_round_robin_fairness(); });
  reg.add("kernel/sched_priority", VcCategory::kScheduler, [] { return vc_sched_priority(); });
  reg.add("kernel/sched_blocked_never_picked", VcCategory::kScheduler,
          [] { return vc_sched_blocked_never_picked(); });

  reg.add("kernel/proc_lifecycle", VcCategory::kProcessManagement,
          [] { return vc_proc_lifecycle(); });
  reg.add("kernel/proc_signals", VcCategory::kProcessManagement,
          [] { return vc_proc_signals(); });
  for (u64 seed = 1; seed <= 2; ++seed) {
    reg.add("kernel/proc_nr_replicas_agree_seed" + std::to_string(seed),
            VcCategory::kProcessManagement, [seed] { return vc_proc_nr_replicas_agree(seed); });
  }

  for (u64 seed = 1; seed <= 4; ++seed) {
    reg.add("kernel/fs_model_equivalence_seed" + std::to_string(seed),
            VcCategory::kFilesystem, [seed] { return vc_fs_model_equivalence(seed, 400); });
  }
  for (u64 seed = 1; seed <= 2; ++seed) {
    reg.add("kernel/fs_persistence_clean_seed" + std::to_string(seed), VcCategory::kFilesystem,
            [seed] { return vc_fs_persistence_clean(seed); });
  }
  for (u64 seed = 1; seed <= 4; ++seed) {
    reg.add("kernel/fs_crash_consistency_seed" + std::to_string(seed),
            VcCategory::kFilesystem, [seed] { return vc_fs_crash_consistency(seed); });
  }
  reg.add("kernel/fs_checkpoint_compaction", VcCategory::kFilesystem,
          [] { return vc_fs_checkpoint_compaction(); });
  reg.add("kernel/fs_rename_replace", VcCategory::kFilesystem,
          [] { return vc_fs_rename_replace(); });

  for (u64 seed = 1; seed <= 2; ++seed) {
    reg.add("kernel/sys_read_contract_seed" + std::to_string(seed), VcCategory::kRefinement,
            [seed] { return vc_sys_read_contract(seed); });
    reg.add("kernel/sys_marshalling_rejects_garbage_seed" + std::to_string(seed),
            VcCategory::kMemorySafety,
            [seed] { return vc_sys_marshalling_rejects_garbage(seed); });
  }
  reg.add("kernel/sys_fd_isolation", VcCategory::kProcessManagement,
          [] { return vc_sys_fd_isolation(); });
  reg.add("kernel/sys_user_copy_roundtrip", VcCategory::kRefinement,
          [] { return vc_sys_user_copy_roundtrip(); });
  reg.add("kernel/sys_readdir_sorted", VcCategory::kFilesystem,
          [] { return vc_sys_readdir_sorted(); });
  reg.add("kernel/sys_fd_reuse_safe", VcCategory::kProcessManagement,
          [] { return vc_sys_fd_reuse_safe(); });
  reg.add("kernel/sys_open_flag_matrix", VcCategory::kFilesystem,
          [] { return vc_sys_open_flag_matrix(); });
  reg.add("obs/kstat_refinement", VcCategory::kRefinement,
          [] { return vc_obs_kstat_refinement(); });

  reg.add("kernel/futex_value_check", VcCategory::kThreadsSync,
          [] { return vc_futex_value_check(); });
  for (u64 seed = 1; seed <= 2; ++seed) {
    reg.add("kernel/futex_no_lost_wakeup_seed" + std::to_string(seed),
            VcCategory::kThreadsSync, [seed] { return vc_futex_no_lost_wakeup(seed); });
  }
  reg.add("kernel/simfutex_scheduler_integration", VcCategory::kThreadsSync,
          [] { return vc_simfutex_scheduler_integration(); });

  for (u64 seed = 1; seed <= 3; ++seed) {
    reg.add("kernel/pipe_stream_identity_seed" + std::to_string(seed),
            VcCategory::kProcessManagement, [seed] { return vc_pipe_stream_identity(seed); });
  }
  reg.add("kernel/pipe_close_semantics", VcCategory::kProcessManagement,
          [] { return vc_pipe_close_semantics(); });
  reg.add("kernel/pipe_via_syscalls", VcCategory::kRefinement,
          [] { return vc_pipe_via_syscalls(); });

  for (u64 seed = 1; seed <= 3; ++seed) {
    reg.add("kernel/vm_demand_paging_seed" + std::to_string(seed),
            VcCategory::kMemoryManagement, [seed] { return vc_vm_demand_paging(seed); });
  }
  reg.add("kernel/vm_lazy_write_protection", VcCategory::kMemorySafety,
          [] { return vc_vm_lazy_write_protection(); });

  for (u64 seed = 1; seed <= 3; ++seed) {
    reg.add("kernel/nrfs_matches_memfs_seed" + std::to_string(seed), VcCategory::kFilesystem,
            [seed] { return vc_nrfs_matches_memfs(seed); });
  }
  for (u64 seed = 1; seed <= 2; ++seed) {
    reg.add("kernel/nrfs_concurrent_convergence_seed" + std::to_string(seed),
            VcCategory::kConcurrency, [seed] { return vc_nrfs_concurrent_convergence(seed); });
  }

  for (u64 seed = 1; seed <= 3; ++seed) {
    reg.add("kernel/fs_io_error_rollback_seed" + std::to_string(seed), VcCategory::kFilesystem,
            [seed] { return vc_fs_io_error_rollback(seed); });
  }
  for (u64 seed = 1; seed <= 2; ++seed) {
    reg.add("kernel/fs_recovery_error_propagates_seed" + std::to_string(seed),
            VcCategory::kFilesystem, [seed] { return vc_fs_recovery_error_propagates(seed); });
  }
  reg.add("kernel/frame_alloc_injected_oom", VcCategory::kMemoryManagement,
          [] { return vc_frame_alloc_injected_oom(); });
  reg.add("kernel/sys_fault_injection", VcCategory::kRefinement,
          [] { return vc_sys_fault_injection(); });

  for (u64 seed = 1; seed <= 3; ++seed) {
    reg.add("kernel/ring_refines_sync_seed" + std::to_string(seed), VcCategory::kRefinement,
            [seed] { return vc_ring_refines_sync(seed); });
    reg.add("kernel/ring_completion_unique_seed" + std::to_string(seed),
            VcCategory::kRefinement, [seed] { return vc_ring_completion_unique(seed); });
  }
}

}  // namespace vnros
