#include "src/kernel/ring.h"

#include <algorithm>
#include <utility>

#include "src/base/contracts.h"

namespace vnros {

namespace {

// SysNr values duplicated here as raw u32s to keep ring.h free of a
// syscall.h include cycle (syscall.h includes kernel.h includes ring.h).
constexpr u32 kNrOpen = 10;
constexpr u32 kNrClose = 11;
constexpr u32 kNrRead = 12;
constexpr u32 kNrWrite = 13;
constexpr u32 kNrLseek = 14;
constexpr u32 kNrFstat = 15;
constexpr u32 kNrFsync = 22;
constexpr u32 kNrUdpSendTo = 62;
constexpr u32 kNrUdpRecvFrom = 63;
constexpr u32 kNrRtpSend = 73;
constexpr u32 kNrRtpRecv = 74;
constexpr u32 kNrVtpAccept = 111;
constexpr u32 kNrVtpSend = 113;
constexpr u32 kNrVtpRecv = 114;

// Ops whose transient kWouldBlock means "nothing to deliver yet" (or, for
// vtp_send, "no buffer space yet"): the ring parks these in flight instead
// of completing with the error.
bool parkable(u32 op) {
  return op == kNrUdpRecvFrom || op == kNrRtpRecv || op == kNrVtpAccept ||
         op == kNrVtpSend || op == kNrVtpRecv;
}

}  // namespace

bool ring_submittable(u32 op) {
  switch (op) {
    case kNrOpen:
    case kNrClose:
    case kNrRead:
    case kNrWrite:
    case kNrLseek:
    case kNrFstat:
    case kNrFsync:
    case kNrUdpSendTo:
    case kNrUdpRecvFrom:
    case kNrRtpSend:
    case kNrRtpRecv:
    case kNrVtpAccept:
    case kNrVtpSend:
    case kNrVtpRecv:
      return true;
    default:
      return false;
  }
}

SysRingTable::SysRingTable(Scheduler& sched)
    : sched_(sched), obs_prefix_(ObsRegistry::global().instance_prefix("ring")) {
  ObsRegistry& reg = ObsRegistry::global();
  c_submitted_ = &reg.counter(obs_prefix_ + "submitted");
  c_completed_ = &reg.counter(obs_prefix_ + "completed");
  c_sq_full_ = &reg.counter(obs_prefix_ + "sq_full");
  c_cq_overflow_ = &reg.counter(obs_prefix_ + "cq_overflow");
  h_cq_depth_ = &reg.histogram(obs_prefix_ + "cq_depth");
  h_completion_passes_ = &reg.histogram(obs_prefix_ + "completion_passes");
}

Result<u32> SysRingTable::setup(Pid pid, u32 sq_slots, u32 cq_slots) {
  if (sq_slots == 0 || cq_slots == 0 || sq_slots > kMaxSlots || cq_slots > kMaxSlots) {
    return ErrorCode::kInvalidArgument;
  }
  std::lock_guard<std::mutex> lock(mu_);
  u32 id = next_ring_id_++;
  Ring ring;
  ring.sq_slots = sq_slots;
  ring.cq_slots = cq_slots;
  rings_.emplace(std::make_pair(pid, id), std::move(ring));
  return id;
}

void SysRingTable::post_completion(Ring& ring, RingCqe cqe) {
  if (ring.cq.size() < ring.cq_slots) {
    ring.cq.push_back(std::move(cqe));
  } else {
    // Accounted spill, never a drop: overflow completions are reaped after
    // the CQ proper, in posting order.
    ring.overflow.push_back(std::move(cqe));
    c_cq_overflow_->inc();
  }
  c_completed_->inc();
  h_cq_depth_->record(ring.cq.size() + ring.overflow.size());
}

usize SysRingTable::reactor_pass(Ring& ring, const Executor& exec,
                                 const ThreadToken& sched_tok) {
  ++pass_counter_;
  usize posted = 0;
  // One execution attempt per pending SQE, FIFO. Completed entries leave the
  // SQ; parked entries (transient kWouldBlock on a recv) stay for the next
  // pass. Iterate over a stable snapshot of positions: execution never adds
  // SQEs (ring ops are not ring-submittable).
  for (usize i = 0; i < ring.sq.size();) {
    Pending& p = ring.sq[i];
    if (!p.deferred) {
      if (auto injected = complete_fault_->fire()) {
        // Deterministic slow completion: defer this op — execution and
        // completion together — by one reactor pass. The injected code is
        // irrelevant; the site is a delay, not an error.
        (void)injected;
        p.deferred = true;
        ++i;
        continue;
      }
    }
    Reader args(p.sqe.args);
    Writer payload;
    ErrorCode err = exec(p.sqe.op, args, payload);
    if (err == ErrorCode::kWouldBlock && parkable(p.sqe.op)) {
      ++i;
      continue;
    }
    h_completion_passes_->record(pass_counter_ - p.submit_pass);
    post_completion(ring, RingCqe{p.sqe.user_data, static_cast<u32>(err), payload.take()});
    ++posted;
    ring.sq.erase(ring.sq.begin() + static_cast<std::ptrdiff_t>(i));
  }
  if (posted > 0) {
    while (!ring.waiters.empty()) {
      Tid tid = ring.waiters.front();
      ring.waiters.pop_front();
      (void)sched_.wake(sched_tok, tid);
    }
  }
  return posted;
}

Result<u32> SysRingTable::submit(Pid pid, u32 ring_id, std::span<const RingSqe> entries,
                                 const Executor& exec, const ThreadToken& sched_tok) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = rings_.find({pid, ring_id});
  if (it == rings_.end()) {
    return ErrorCode::kNotFound;
  }
  Ring& ring = it->second;
  u32 accepted = 0;
  for (const RingSqe& e : entries) {
    if (ring.sq.size() >= ring.sq_slots) {
      // Typed backpressure: every refused entry is accounted; nothing is
      // silently dropped. Acceptance is a strict prefix so the caller can
      // resubmit the tail verbatim.
      c_sq_full_->add(entries.size() - accepted);
      break;
    }
    c_submitted_->inc();
    ++accepted;
    if (!ring_submittable(e.op)) {
      h_completion_passes_->record(0);
      post_completion(ring, RingCqe{e.user_data, static_cast<u32>(ErrorCode::kUnsupported), {}});
      continue;
    }
    if (auto injected = submit_fault_->fire()) {
      // The entry is accepted and completes exactly once — with the injected
      // error instead of its effect (the op never executes).
      h_completion_passes_->record(0);
      post_completion(ring, RingCqe{e.user_data, static_cast<u32>(*injected), {}});
      continue;
    }
    Pending p;
    p.sqe = e;
    p.submit_pass = pass_counter_;
    ring.sq.push_back(std::move(p));
  }
  if (accepted == 0 && !entries.empty()) {
    return ErrorCode::kWouldBlock;
  }
  usize posted = reactor_pass(ring, exec, sched_tok);
  if (posted == 0 && accepted > 0) {
    // Immediate completions above (unsupported op / injected error) still
    // need to release parked waiters even when the pass itself posted none.
    bool ready_now = !ring.cq.empty() || !ring.overflow.empty();
    while (ready_now && !ring.waiters.empty()) {
      Tid tid = ring.waiters.front();
      ring.waiters.pop_front();
      (void)sched_.wake(sched_tok, tid);
    }
  }
  return accepted;
}

Result<std::vector<RingCqe>> SysRingTable::wait(Pid pid, u32 ring_id, u32 min_complete,
                                                u32 max_reap, Tid tid, const Executor& exec,
                                                const ThreadToken& sched_tok) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = rings_.find({pid, ring_id});
  if (it == rings_.end()) {
    return ErrorCode::kNotFound;
  }
  Ring& ring = it->second;
  (void)reactor_pass(ring, exec, sched_tok);
  usize available = ring.cq.size() + ring.overflow.size();
  if (available < min_complete && !ring.sq.empty() && tid != 0) {
    // Completion-aware parking: block on the scheduler (the SimFutex path)
    // and let the next posted completion wake us. kWouldBlock tells the
    // caller the park happened — nothing was reaped.
    ErrorCode blocked = sched_.block(sched_tok, tid);
    if (blocked != ErrorCode::kOk) {
      return blocked;
    }
    ring.waiters.push_back(tid);
    return ErrorCode::kWouldBlock;
  }
  // With nothing in flight (or a polling caller) the wait returns
  // immediately with whatever is ready — possibly nothing.
  std::vector<RingCqe> out;
  usize take = std::min<usize>(available, max_reap);
  out.reserve(take);
  while (out.size() < take) {
    std::deque<RingCqe>& q = !ring.cq.empty() ? ring.cq : ring.overflow;
    out.push_back(std::move(q.front()));
    q.pop_front();
  }
  // Freed CQ slots absorb the overflow backlog in posting order.
  while (ring.cq.size() < ring.cq_slots && !ring.overflow.empty()) {
    ring.cq.push_back(std::move(ring.overflow.front()));
    ring.overflow.pop_front();
  }
  return out;
}

void SysRingTable::destroy_rings(Pid pid) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = rings_.begin(); it != rings_.end();) {
    if (it->first.first == pid) {
      it = rings_.erase(it);
    } else {
      ++it;
    }
  }
}

usize SysRingTable::in_flight(Pid pid, u32 ring_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = rings_.find({pid, ring_id});
  return it == rings_.end() ? 0 : it->second.sq.size();
}

usize SysRingTable::ready(Pid pid, u32 ring_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = rings_.find({pid, ring_id});
  return it == rings_.end() ? 0 : it->second.cq.size() + it->second.overflow.size();
}

}  // namespace vnros
