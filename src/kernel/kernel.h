// The Kernel aggregate: one simulated machine running the vnros kernel.
//
// Owns the hardware substrate (physical memory, MMU model, TLBs, block
// device, NIC, virtual clock) and the kernel services built on it (frame
// allocator, NR-replicated scheduler and process directory, journaled
// filesystem, futexes, network stack). The Sys syscall facade
// (src/kernel/syscall.h) is the only interface applications use — that is
// the paper's client application contract.
#ifndef VNROS_SRC_KERNEL_KERNEL_H_
#define VNROS_SRC_KERNEL_KERNEL_H_

#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "src/base/contracts.h"
#include "src/base/result.h"
#include "src/hw/block_device.h"
#include "src/hw/interrupts.h"
#include "src/hw/mmu.h"
#include "src/hw/network.h"
#include "src/hw/phys_mem.h"
#include "src/hw/timer.h"
#include "src/hw/tlb.h"
#include "src/hw/topology.h"
#include "src/kernel/frame_alloc.h"
#include "src/kernel/fs.h"
#include "src/kernel/pipe.h"
#include "src/kernel/futex.h"
#include "src/kernel/process.h"
#include "src/kernel/ring.h"
#include "src/kernel/scheduler.h"
#include "src/net/ip.h"
#include "src/net/rtp.h"
#include "src/net/udp.h"
#include "src/net/vtp.h"

namespace vnros {

struct KernelConfig {
  u32 cores = 4;
  u32 cores_per_node = 2;
  u64 phys_frames = 8192;     // 32 MiB
  u64 disk_sectors = 16384;   // 8 MiB
  Network* network = nullptr; // attach to a shared fabric (multi-host setups)
  BlockDevice* disk = nullptr;  // attach an existing disk (reboot scenarios)
  bool recover_fs = false;      // mount via journal recovery instead of mkfs
  // Reboot support (chaos harness): reclaim a fixed fabric address instead
  // of attaching at the end, so peers keep working addresses across the
  // crash; and optionally fall back to mkfs when recovery finds the disk
  // unrecoverable (the node is re-imaged and repopulated by anti-entropy).
  std::optional<LinkAddr> link_addr;
  bool format_on_recovery_failure = false;
};

class Kernel {
 public:
  explicit Kernel(KernelConfig config = {})
      : topo_(config.cores, config.cores_per_node),
        mem_(config.phys_frames),
        mmu_(mem_),
        tlbs_(topo_),
        owned_disk_(config.disk == nullptr ? std::make_unique<BlockDevice>(config.disk_sectors)
                                           : nullptr),
        disk_(config.disk != nullptr ? *config.disk : *owned_disk_),
        frames_(mem_, topo_),
        sched_(topo_),
        procs_(mem_, frames_, topo_),
        irq_(config.cores),
        owned_net_(config.network == nullptr ? std::make_unique<Network>() : nullptr),
        net_(config.network != nullptr ? *config.network : *owned_net_),
        nic_(config.link_addr ? net_.attach_at(*config.link_addr) : net_.attach()),
        ip_(nic_),
        udp_(ip_),
        rtp_(ip_, clock_),
        vtp_(ip_, clock_) {
    auto fs = config.recover_fs ? MemFs::recover(disk_) : MemFs::format(disk_);
    if (!fs.ok() && config.recover_fs && config.format_on_recovery_failure) {
      fs = MemFs::format(disk_);
    }
    VNROS_CHECK(fs.ok());
    fs_ = std::move(fs.value());
    simfutex_ = std::make_unique<SimFutex>(sched_);
    rings_ = std::make_unique<SysRingTable>(sched_);
  }

  const Topology& topo() const { return topo_; }
  PhysMem& mem() { return mem_; }
  Mmu& mmu() { return mmu_; }
  TlbSystem& tlbs() { return tlbs_; }
  BlockDevice& disk() { return disk_; }
  FrameAllocator& frames() { return frames_; }
  Scheduler& sched() { return sched_; }
  ProcessManager& procs() { return procs_; }
  MemFs& fs() { return fs_; }
  FutexTable& futex() { return futex_; }
  PipeTable& pipes() { return pipes_; }
  SimFutex& simfutex() { return *simfutex_; }
  SysRingTable& rings() { return *rings_; }
  VirtualClock& clock() { return clock_; }
  InterruptController& irq() { return irq_; }
  SerialConsole& console() { return console_; }
  Network& network() { return net_; }
  NetDevice& nic() { return nic_; }
  IpStack& ip() { return ip_; }
  UdpStack& udp() { return udp_; }
  RtpStack& rtp() { return rtp_; }
  VtpStack& vtp() { return vtp_; }

  NetAddr net_addr() const { return nic_.addr(); }

  // --- kstat: the kernel's contract counter surface ---------------------------
  // The stable names an application may query through the kstat syscall
  // (Sys::kstat). Each name reads a per-core obs counter of *this* kernel
  // instance via the subsystem's thin-view accessor; the names — not registry
  // internals — are the ABI, so the table below is the whole contract.
  struct KstatEntry {
    const char* name;
    u64 (*read)(const Kernel&);
  };
  static std::span<const KstatEntry> kstat_table();

  Result<u64> kstat(std::string_view name) const {
    for (const KstatEntry& e : kstat_table()) {
      if (name == e.name) {
        return e.read(*this);
      }
    }
    return ErrorCode::kNotFound;
  }

  std::vector<std::string> kstat_names() const {
    std::vector<std::string> out;
    for (const KstatEntry& e : kstat_table()) {
      out.emplace_back(e.name);
    }
    return out;
  }

 private:
  Topology topo_;
  PhysMem mem_;
  Mmu mmu_;
  TlbSystem tlbs_;
  std::unique_ptr<BlockDevice> owned_disk_;
  BlockDevice& disk_;
  FrameAllocator frames_;
  Scheduler sched_;
  ProcessManager procs_;
  MemFs fs_;
  FutexTable futex_;
  PipeTable pipes_;
  std::unique_ptr<SimFutex> simfutex_;
  std::unique_ptr<SysRingTable> rings_;
  VirtualClock clock_;
  InterruptController irq_;
  SerialConsole console_;
  std::unique_ptr<Network> owned_net_;
  Network& net_;
  NetDevice& nic_;
  IpStack ip_;
  UdpStack udp_;
  RtpStack rtp_;
  VtpStack vtp_;
};

inline std::span<const Kernel::KstatEntry> Kernel::kstat_table() {
  static const KstatEntry table[] = {
      {"fs/journal_records", [](const Kernel& k) { return k.fs_.stats().journal_records; }},
      {"fs/journal_bytes", [](const Kernel& k) { return k.fs_.stats().journal_bytes; }},
      {"fs/checkpoints", [](const Kernel& k) { return k.fs_.stats().checkpoints; }},
      {"fs/fsyncs", [](const Kernel& k) { return k.fs_.stats().fsyncs; }},
      {"rtp/segments_tx", [](const Kernel& k) { return k.rtp_.stats().segments_tx; }},
      {"rtp/segments_rx", [](const Kernel& k) { return k.rtp_.stats().segments_rx; }},
      {"rtp/retransmits", [](const Kernel& k) { return k.rtp_.stats().retransmits; }},
      {"rtp/out_of_order_dropped",
       [](const Kernel& k) { return k.rtp_.stats().out_of_order_dropped; }},
      {"rtp/duplicate_data", [](const Kernel& k) { return k.rtp_.stats().duplicate_data; }},
      {"tlb/shootdowns", [](const Kernel& k) { return k.tlbs_.shootdown_stats().shootdowns; }},
      {"tlb/ipis", [](const Kernel& k) { return k.tlbs_.shootdown_stats().ipis; }},
      {"tlb/batched_pages",
       [](const Kernel& k) { return k.tlbs_.shootdown_stats().batched_pages; }},
      {"tlb/full_flushes",
       [](const Kernel& k) { return k.tlbs_.shootdown_stats().full_flushes; }},
      {"frames/allocations", [](const Kernel& k) { return k.frames_.stats().allocations; }},
      {"frames/frees", [](const Kernel& k) { return k.frames_.stats().frees; }},
      {"frames/remote_fallbacks",
       [](const Kernel& k) { return k.frames_.stats().remote_fallbacks; }},
      {"frames/injected_oom", [](const Kernel& k) { return k.frames_.stats().injected_oom; }},
      {"ring/submitted", [](const Kernel& k) { return k.rings_->submitted(); }},
      {"ring/completed", [](const Kernel& k) { return k.rings_->completed(); }},
      {"ring/sq_full", [](const Kernel& k) { return k.rings_->sq_full(); }},
      {"ring/cq_depth_p99", [](const Kernel& k) { return k.rings_->cq_depth_p99(); }},
      {"vtp/conns_active", [](const Kernel& k) { return static_cast<u64>(k.vtp_.active_conns()); }},
      {"vtp/retransmits", [](const Kernel& k) { return k.vtp_.stats().retransmits; }},
      {"vtp/cwnd_halvings", [](const Kernel& k) { return k.vtp_.stats().cwnd_halvings; }},
      {"vtp/accept_queue_p99", [](const Kernel& k) { return k.vtp_.accept_queue_p99(); }},
  };
  return table;
}

}  // namespace vnros

#endif  // VNROS_SRC_KERNEL_KERNEL_H_
