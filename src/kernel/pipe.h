// Kernel pipes: bounded FIFO byte channels between processes.
//
// Spec (kernel/pipe_* VCs):
//   P1 (stream): the concatenation of all successful reads equals the
//       concatenation of all successful writes, in order (FIFO bytes);
//   P2 (bounds): at most `capacity` bytes are buffered; a write beyond it
//       returns the accepted prefix length (short write), never blocks the
//       simulation;
//   P3 (EOF): read on an empty pipe returns kWouldBlock while a writer
//       exists, 0 bytes (EOF) once every writer closed;
//   P4 (EPIPE): write with no reader left fails with kPipeClosed.
#ifndef VNROS_SRC_KERNEL_PIPE_H_
#define VNROS_SRC_KERNEL_PIPE_H_

#include <deque>
#include <map>
#include <mutex>
#include <span>
#include <vector>

#include "src/base/result.h"
#include "src/base/types.h"

namespace vnros {

using PipeId = u64;

class PipeTable {
 public:
  static constexpr usize kCapacity = 64 * 1024;

  // Creates a pipe with one reader and one writer endpoint reference.
  PipeId create() {
    std::lock_guard<std::mutex> lock(mu_);
    PipeId id = next_id_++;
    pipes_[id] = Pipe{};
    return id;
  }

  // Writes up to the free capacity; returns bytes accepted (0 iff full).
  Result<u64> write(PipeId id, std::span<const u8> data) {
    std::lock_guard<std::mutex> lock(mu_);
    Pipe* p = find(id);
    if (p == nullptr) {
      return ErrorCode::kBadFd;
    }
    if (p->readers == 0) {
      return ErrorCode::kPipeClosed;  // P4
    }
    usize room = kCapacity - p->buffer.size();
    usize n = data.size() < room ? data.size() : room;
    p->buffer.insert(p->buffer.end(), data.begin(), data.begin() + static_cast<isize>(n));
    return static_cast<u64>(n);
  }

  // Reads up to out.size() bytes. Empty + writers alive -> kWouldBlock;
  // empty + no writers -> 0 (EOF).
  Result<u64> read(PipeId id, std::span<u8> out) {
    std::lock_guard<std::mutex> lock(mu_);
    Pipe* p = find(id);
    if (p == nullptr) {
      return ErrorCode::kBadFd;
    }
    if (p->buffer.empty()) {
      if (p->writers > 0) {
        return ErrorCode::kWouldBlock;  // P3 first half
      }
      return u64{0};  // P3 second half: EOF
    }
    usize n = out.size() < p->buffer.size() ? out.size() : p->buffer.size();
    for (usize i = 0; i < n; ++i) {
      out[i] = p->buffer[i];
    }
    p->buffer.erase(p->buffer.begin(), p->buffer.begin() + static_cast<isize>(n));
    return static_cast<u64>(n);
  }

  // Endpoint reference counting (dup/close). The pipe itself is destroyed
  // once both sides are gone.
  void add_reader(PipeId id) { bump(id, +1, 0); }
  void add_writer(PipeId id) { bump(id, 0, +1); }
  void close_reader(PipeId id) { bump(id, -1, 0); }
  void close_writer(PipeId id) { bump(id, 0, -1); }

  usize buffered(PipeId id) const {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = pipes_.find(id);
    return it == pipes_.end() ? 0 : it->second.buffer.size();
  }

  bool exists(PipeId id) const {
    std::lock_guard<std::mutex> lock(mu_);
    return pipes_.count(id) != 0;
  }

 private:
  struct Pipe {
    std::deque<u8> buffer;
    u32 readers = 1;
    u32 writers = 1;
  };

  Pipe* find(PipeId id) {
    auto it = pipes_.find(id);
    return it == pipes_.end() ? nullptr : &it->second;
  }

  void bump(PipeId id, int dr, int dw) {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = pipes_.find(id);
    if (it == pipes_.end()) {
      return;
    }
    it->second.readers = static_cast<u32>(static_cast<int>(it->second.readers) + dr);
    it->second.writers = static_cast<u32>(static_cast<int>(it->second.writers) + dw);
    if (it->second.readers == 0 && it->second.writers == 0) {
      pipes_.erase(it);
    }
  }

  mutable std::mutex mu_;
  std::map<PipeId, Pipe> pipes_;
  PipeId next_id_ = 1;
};

}  // namespace vnros

#endif  // VNROS_SRC_KERNEL_PIPE_H_
