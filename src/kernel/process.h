// Process management (Table 2 "process management"): spawning, waiting,
// signals, killing.
//
// Following the NrOS split, the *metadata* every core must agree on (pid
// allocation, parent links, alive/zombie state, pending signals) is a
// sequential structure replicated with NR (ProcessDirectoryDs); the
// heavyweight per-process objects (address space, fd table) live beside it,
// created after the directory transition commits.
//
// Spec (kernel/proc_* VCs): the directory refines the abstract process tree
// machine — pids are unique and never reused within a run; exit turns alive
// into zombie exactly once and preserves the exit code until reaped; wait
// returns a child's code iff that child is a zombie and the caller is its
// parent; kill(SIGKILL) forces zombie with code -signal; signals to zombies
// or unknown pids fail cleanly.
#ifndef VNROS_SRC_KERNEL_PROCESS_H_
#define VNROS_SRC_KERNEL_PROCESS_H_

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <variant>
#include <vector>

#include "src/base/result.h"
#include "src/base/types.h"
#include "src/kernel/nr_shards.h"
#include "src/kernel/vm.h"
#include "src/nr/node_replicated.h"

namespace vnros {

enum class ProcState : u8 {
  kAlive,
  kZombie,   // exited, code retained for the parent
  kReaped,   // wait() consumed it (terminal)
};

// Conventional signal numbers (subset).
inline constexpr u32 kSigKill = 9;
inline constexpr u32 kSigUsr1 = 10;
inline constexpr u32 kSigTerm = 15;

// The NR-replicated process directory.
struct ProcessDirectoryDs {
  struct Meta {
    Pid parent = kInvalidPid;
    ProcState state = ProcState::kAlive;
    i32 exit_code = 0;
    u64 pending_signals = 0;  // bitmask by signal number

    bool operator==(const Meta&) const = default;
  };

  struct Spawn {
    Pid parent;
  };
  struct Exit {
    Pid pid;
    i32 code;
  };
  struct Reap {
    Pid parent;
    Pid child;
  };
  struct Kill {
    Pid pid;
    u32 signal;
  };
  struct TakeSignal {
    Pid pid;
  };

  struct WriteOp {
    std::variant<std::monostate, Spawn, Exit, Reap, Kill, TakeSignal> op;
  };
  struct GetMeta {
    Pid pid;
  };
  struct ReadOp {
    std::variant<GetMeta> op;
  };
  struct Response {
    ErrorCode err = ErrorCode::kOk;
    Pid pid = kInvalidPid;
    i32 exit_code = 0;
    u32 signal = 0;
    Meta meta;
  };

  std::map<Pid, Meta> procs;
  Pid next_pid = 1;

  Response dispatch(const ReadOp& op) const;
  Response dispatch_mut(const WriteOp& op);

  bool operator==(const ProcessDirectoryDs&) const = default;
};

// Heavyweight per-process state (not replicated; node-local by construction).
class Process {
 public:
  Process(Pid pid, PhysMem& mem, FrameAllocator& frames) : pid_(pid), vm_(mem, frames) {}

  Pid pid() const { return pid_; }
  VmManager& vm() { return vm_; }

 private:
  Pid pid_;
  VmManager vm_;
};

class ProcessManager {
 public:
  ProcessManager(PhysMem& mem, FrameAllocator& frames, const Topology& topo,
                 NrConfig config = KernelNrShards::procs())
      : mem_(mem), frames_(frames), dir_(topo, ProcessDirectoryDs{}, config) {}

  ThreadToken register_core(CoreId core) { return dir_.register_thread(core); }

  // Creates a process: directory transition first, then the local object.
  Result<Pid> spawn(const ThreadToken& t, Pid parent);

  // Marks `pid` exited; its address space is torn down immediately, the
  // directory entry stays as a zombie for the parent.
  Result<Unit> exit(const ThreadToken& t, Pid pid, i32 code);

  // Reaps `child`: returns its exit code iff it is a zombie child of
  // `parent`; kWouldBlock while the child is still alive.
  Result<i32> wait(const ThreadToken& t, Pid parent, Pid child);

  // Posts `signal` to `pid`. SIGKILL forces an exit with code -signal.
  Result<Unit> kill(const ThreadToken& t, Pid pid, u32 signal);

  // Pops the lowest pending signal (0 if none) — the "signal delivery" step
  // a returning-to-user thread performs.
  Result<u32> take_signal(const ThreadToken& t, Pid pid);

  Result<ProcessDirectoryDs::Meta> meta(const ThreadToken& t, Pid pid);

  // Local object access (nullptr if torn down / never spawned here).
  Process* get(Pid pid);

  usize live_objects() const;

  void sync(const ThreadToken& t) { dir_.sync(t); }
  const ProcessDirectoryDs& peek(usize replica) const { return dir_.peek(replica); }
  usize num_replicas() const { return dir_.num_replicas(); }

 private:
  void destroy_object(Pid pid);

  PhysMem& mem_;
  FrameAllocator& frames_;
  NodeReplicated<ProcessDirectoryDs> dir_;
  mutable std::mutex objects_mu_;
  std::map<Pid, std::unique_ptr<Process>> objects_;
};

}  // namespace vnros

#endif  // VNROS_SRC_KERNEL_PROCESS_H_
