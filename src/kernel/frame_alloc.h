// Physical frame allocator (Table 2 "memory management" row).
//
// NUMA-aware: physical memory is split into one pool per node; allocations
// prefer the requesting core's node and fall back round-robin, which is what
// keeps NR replicas' directory frames node-local. Each pool is a bitmap
// allocator with a rotating scan cursor plus a freelist fast path.
//
// Spec (checked by kernel/frame_alloc_* VCs): an allocator over F frames
// behaves like the set-of-free-frames abstract machine — alloc returns a
// frame not currently allocated and marks it; free requires an allocated
// frame; alloc fails iff the set is empty; no frame is ever handed out twice
// without an intervening free (the classic double-allocation bug class).
#ifndef VNROS_SRC_KERNEL_FRAME_ALLOC_H_
#define VNROS_SRC_KERNEL_FRAME_ALLOC_H_

#include <mutex>
#include <string>
#include <vector>

#include "src/base/fault.h"
#include "src/base/result.h"
#include "src/base/types.h"
#include "src/hw/phys_mem.h"
#include "src/obs/registry.h"
#include "src/hw/topology.h"
#include "src/pt/frame_source.h"

namespace vnros {

// Snapshot of the allocator's obs counters (see stats()).
struct FrameAllocStats {
  u64 allocations = 0;
  u64 frees = 0;
  u64 remote_fallbacks = 0;  // allocation served from a non-preferred node
  u64 injected_oom = 0;      // allocations failed by the "frame_alloc/oom" site
};

class FrameAllocator final : public FrameSource {
 public:
  // Manages frames [reserved_low, mem.num_frames()), divided evenly across
  // the topology's nodes. `reserved_low` frames are left for boot structures.
  FrameAllocator(PhysMem& mem, const Topology& topo, u64 reserved_low = 16);

  // FrameSource interface (used by page tables): allocates from node 0's
  // preference order. Returns a zeroed frame.
  Result<PAddr> alloc_frame() override { return alloc_on_node(0); }
  void free_frame(PAddr frame) override { free(frame); }

  // NUMA-aware entry points.
  Result<PAddr> alloc_on_node(NodeId preferred);
  void free(PAddr frame);

  u64 free_frames() const;
  u64 total_frames() const { return total_frames_; }
  bool is_allocated(PAddr frame) const;

  // Thin view over the obs counters ("frames<N>/..."): race-free merged
  // reads, no lock shared with the allocation path.
  FrameAllocStats stats() const {
    return FrameAllocStats{c_allocations_.value(), c_frees_.value(),
                           c_remote_fallbacks_.value(), c_injected_oom_.value()};
  }

  // A FrameSource view that prefers a fixed node (handed to per-replica page
  // tables so their directory frames are node-local).
  class NodeView final : public FrameSource {
   public:
    NodeView(FrameAllocator& parent, NodeId node) : parent_(parent), node_(node) {}
    Result<PAddr> alloc_frame() override { return parent_.alloc_on_node(node_); }
    void free_frame(PAddr frame) override { parent_.free(frame); }

   private:
    FrameAllocator& parent_;
    NodeId node_;
  };

 private:
  struct Pool {
    u64 first_frame = 0;
    u64 num_frames = 0;
    std::vector<u64> bitmap;   // bit set = allocated
    std::vector<u64> freelist; // recently freed frame numbers
    u64 cursor = 0;            // rotating scan start
    u64 free_count = 0;
  };

  Result<PAddr> alloc_from_pool(Pool& pool);

  PhysMem& mem_;
  u64 total_frames_;
  mutable std::mutex mu_;
  std::vector<Pool> pools_;
  const std::string obs_prefix_;
  Counter& c_allocations_;
  Counter& c_frees_;
  Counter& c_remote_fallbacks_;
  Counter& c_injected_oom_;
  // Schedulable OOM: the "frame_alloc/oom" site makes alloc fail with
  // kNoMemory exactly where the spec already allows it (empty-set case).
  FaultSite* oom_site_ = &FaultRegistry::global().site("frame_alloc/oom");
};

}  // namespace vnros

#endif  // VNROS_SRC_KERNEL_FRAME_ALLOC_H_
