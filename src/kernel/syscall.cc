#include "src/kernel/syscall.h"

#include <algorithm>

#include "src/base/contracts.h"

namespace vnros {
namespace {

// Ephemeral UDP ports are allocated from here per kernel instance.
constexpr Port kEphemeralBase = 49152;

// Upper bound on a single I/O request. A frame asking for more is malformed
// (prevents a hostile length field from driving giant kernel allocations).
constexpr u64 kMaxIoBytes = u64{16} << 20;

// Syscalls eligible for "syscall/io_error" injection: the filesystem ops
// whose contract already includes a device-failure branch.
bool io_error_eligible(SysNr nr) {
  switch (nr) {
    case SysNr::kOpen:
    case SysNr::kRead:
    case SysNr::kWrite:
    case SysNr::kFstat:
    case SysNr::kMkdir:
    case SysNr::kUnlink:
    case SysNr::kRmdir:
    case SysNr::kReaddir:
    case SysNr::kRename:
    case SysNr::kTruncate:
    case SysNr::kFsync:
    case SysNr::kReadUser:
    case SysNr::kWriteUser:
      return true;
    default:
      return false;
  }
}

// Syscalls eligible for "syscall/no_memory" injection: the ones whose
// contract already has a kNoMemory branch (frame exhaustion).
bool no_memory_eligible(SysNr nr) {
  return nr == SysNr::kMmap || nr == SysNr::kSpawn;
}

void put_fd(Writer& w, Fd fd) { w.put_u32(static_cast<u32>(fd)); }

std::optional<Fd> get_fd(Reader& r) {
  auto v = r.get_u32();
  if (!v) {
    return std::nullopt;
  }
  return static_cast<Fd>(*v);
}

}  // namespace

// --- Dispatcher scaffolding ------------------------------------------------------

SyscallDispatcher::ProcState& SyscallDispatcher::proc_state(Pid pid) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = procs_.find(pid);
  if (it == procs_.end()) {
    it = procs_.emplace(pid, std::make_unique<ProcState>()).first;
  }
  return *it->second;
}

void SyscallDispatcher::destroy_process_state(Pid pid) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    procs_.erase(pid);
  }
  kernel_.rings().destroy_rings(pid);
}

Fd SyscallDispatcher::alloc_fd(ProcState& ps) {
  if (!ps.free_fds.empty()) {
    Fd fd = ps.free_fds.back();
    ps.free_fds.pop_back();
    return fd;
  }
  return ps.next_fd++;
}

void SyscallDispatcher::release_fd(ProcState& ps, Fd fd) { ps.free_fds.push_back(fd); }

ThreadToken SyscallDispatcher::proc_token(CoreId core) {
  std::lock_guard<std::mutex> lock(token_mu_);
  auto it = proc_tokens_.find(core);
  if (it == proc_tokens_.end()) {
    it = proc_tokens_.emplace(core, kernel_.procs().register_core(core)).first;
  }
  return it->second;
}

ThreadToken SyscallDispatcher::sched_token(CoreId core) {
  std::lock_guard<std::mutex> lock(token_mu_);
  auto it = sched_tokens_.find(core);
  if (it == sched_tokens_.end()) {
    it = sched_tokens_.emplace(core, kernel_.sched().register_core(core)).first;
  }
  return it->second;
}

SysAbsState SyscallDispatcher::view(Pid pid) const {
  SysAbsState state;
  state.fs = kernel_.fs().view();
  std::lock_guard<std::mutex> lock(mu_);
  auto it = procs_.find(pid);
  if (it != procs_.end()) {
    state.fds = it->second->fds;
  }
  return state;
}

std::vector<u8> SyscallDispatcher::handle(Pid pid, CoreId core, std::span<const u8> frame) {
  Reader args(frame);
  Writer reply;
  auto nr = args.get_u32();
  ErrorCode err = ErrorCode::kInvalidArgument;
  Writer payload;
  if (nr) {
    err = exec_syscall(pid, core, *nr, args, payload);
  }
  reply.put_u32(static_cast<u32>(err));
  reply.put_raw(payload.bytes());
  return reply.take();
}

// The shared transition function: the synchronous path calls it once per
// frame; the ring reactor calls it once per execution attempt of a pending
// SQE. Fault eligibility gates sit here so both paths see the same injected
// error distribution per executed op.
ErrorCode SyscallDispatcher::exec_syscall(Pid pid, CoreId core, u32 raw_nr, Reader& args,
                                          Writer& payload) {
  const SysNr nr = static_cast<SysNr>(raw_nr);
  if (io_error_eligible(nr)) {
    if (auto injected = io_fault_site_->fire()) {
      return *injected;
    }
  }
  if (no_memory_eligible(nr)) {
    if (auto injected = mem_fault_site_->fire()) {
      return *injected;
    }
  }
  ErrorCode err = ErrorCode::kInvalidArgument;
  {
    switch (nr) {
      case SysNr::kGetPid:
        payload.put_u64(pid);
        err = ErrorCode::kOk;
        break;
      case SysNr::kOpen: err = do_open(pid, args, payload); break;
      case SysNr::kClose: err = do_close(pid, args, payload); break;
      case SysNr::kRead: err = do_read(pid, args, payload); break;
      case SysNr::kWrite: err = do_write(pid, args, payload); break;
      case SysNr::kLseek: err = do_lseek(pid, args, payload); break;
      case SysNr::kFstat: err = do_fstat(pid, args, payload); break;
      case SysNr::kMkdir: {
        auto path = args.get_string();
        err = path && args.exhausted() ? kernel_.fs().mkdir(*path).error()
                                       : ErrorCode::kInvalidArgument;
        break;
      }
      case SysNr::kUnlink: {
        auto path = args.get_string();
        err = path && args.exhausted() ? kernel_.fs().unlink(*path).error()
                                       : ErrorCode::kInvalidArgument;
        break;
      }
      case SysNr::kRmdir: {
        auto path = args.get_string();
        err = path && args.exhausted() ? kernel_.fs().rmdir(*path).error()
                                       : ErrorCode::kInvalidArgument;
        break;
      }
      case SysNr::kReaddir: err = do_readdir(pid, args, payload); break;
      case SysNr::kRename: {
        auto from = args.get_string();
        auto to = args.get_string();
        err = from && to && args.exhausted() ? kernel_.fs().rename(*from, *to).error()
                                             : ErrorCode::kInvalidArgument;
        break;
      }
      case SysNr::kTruncate: {
        auto path = args.get_string();
        auto size = args.get_u64();
        err = path && size && args.exhausted() ? kernel_.fs().truncate(*path, *size).error()
                                               : ErrorCode::kInvalidArgument;
        break;
      }
      case SysNr::kFsync:
        err = kernel_.fs().fsync().error();
        break;
      case SysNr::kPipeCreate: err = do_pipe_create(pid, args, payload); break;
      case SysNr::kReadUser: err = do_read_user(pid, args, payload); break;
      case SysNr::kWriteUser: err = do_write_user(pid, args, payload); break;
      case SysNr::kMmap: err = do_mmap(pid, args, payload); break;
      case SysNr::kMunmap: err = do_munmap(pid, args, payload); break;
      case SysNr::kSpawn: err = do_spawn(pid, core, args, payload); break;
      case SysNr::kWaitPid: err = do_waitpid(pid, core, args, payload); break;
      case SysNr::kExit: err = do_exit(pid, core, args, payload); break;
      case SysNr::kKill: err = do_kill(pid, core, args, payload); break;
      case SysNr::kTakeSignal: err = do_take_signal(pid, core, args, payload); break;
      case SysNr::kFutexWait: err = do_futex_wait(pid, core, args, payload); break;
      case SysNr::kFutexWake: err = do_futex_wake(pid, core, args, payload); break;
      case SysNr::kUdpSocket: err = do_udp_socket(pid, args, payload); break;
      case SysNr::kUdpBind: err = do_udp_bind(pid, args, payload); break;
      case SysNr::kUdpSendTo: err = do_udp_sendto(pid, args, payload); break;
      case SysNr::kUdpRecvFrom: err = do_udp_recvfrom(pid, args, payload); break;
      case SysNr::kRtpListen: err = do_rtp_listen(pid, args, payload); break;
      case SysNr::kRtpConnect: err = do_rtp_connect(pid, args, payload); break;
      case SysNr::kRtpAccept: err = do_rtp_accept(pid, args, payload); break;
      case SysNr::kRtpSend: err = do_rtp_send(pid, args, payload); break;
      case SysNr::kRtpRecv: err = do_rtp_recv(pid, args, payload); break;
      case SysNr::kRtpClose: err = do_rtp_close(pid, args, payload); break;
      case SysNr::kVtpListen: err = do_vtp_listen(pid, args, payload); break;
      case SysNr::kVtpAccept: err = do_vtp_accept(pid, args, payload); break;
      case SysNr::kVtpConnect: err = do_vtp_connect(pid, args, payload); break;
      case SysNr::kVtpSend: err = do_vtp_send(pid, args, payload); break;
      case SysNr::kVtpRecv: err = do_vtp_recv(pid, args, payload); break;
      case SysNr::kVtpClose: err = do_vtp_close(pid, args, payload); break;
      case SysNr::kConsoleWrite: err = do_console_write(pid, args, payload); break;
      case SysNr::kKstat: err = do_kstat(pid, args, payload); break;
      case SysNr::kKstatList: err = do_kstat_list(pid, args, payload); break;
      case SysNr::kRingSetup: err = do_ring_setup(pid, args, payload); break;
      case SysNr::kRingSubmit: err = do_ring_submit(pid, core, args, payload); break;
      case SysNr::kRingWait: err = do_ring_wait(pid, core, args, payload); break;
      default:
        err = ErrorCode::kUnsupported;
        break;
    }
  }
  return err;
}

// --- File handlers ------------------------------------------------------------------

ErrorCode SyscallDispatcher::do_open(Pid pid, Reader& args, Writer& reply) {
  auto path = args.get_string();
  auto flags = args.get_u32();
  if (!path || !flags || !args.exhausted()) {
    return ErrorCode::kInvalidArgument;
  }
  MemFs& fs = kernel_.fs();
  auto st = fs.stat(*path);
  if (!st.ok()) {
    if (st.error() != ErrorCode::kNotFound || (*flags & kOpenCreate) == 0) {
      return st.error();
    }
    auto created = fs.create(*path);
    if (!created.ok()) {
      return created.error();
    }
    st = fs.stat(*path);
    if (!st.ok()) {
      return st.error();
    }
  }
  if (st.value().is_dir) {
    return ErrorCode::kIsDirectory;
  }
  if ((*flags & kOpenTrunc) != 0) {
    auto tr = fs.truncate(*path, 0);
    if (!tr.ok()) {
      return tr.error();
    }
  }
  ProcState& ps = proc_state(pid);
  std::lock_guard<std::mutex> lock(mu_);
  Fd fd = alloc_fd(ps);
  OpenFile of;
  of.kind = OpenFile::Kind::kFile;
  of.path = *path;
  of.offset = (*flags & kOpenAppend) != 0 && (*flags & kOpenTrunc) == 0 ? st.value().size : 0;
  ps.fds[fd] = of;
  put_fd(reply, fd);
  return ErrorCode::kOk;
}

ErrorCode SyscallDispatcher::do_close(Pid pid, Reader& args, Writer&) {
  auto fd = get_fd(args);
  if (!fd || !args.exhausted()) {
    return ErrorCode::kInvalidArgument;
  }
  ProcState& ps = proc_state(pid);
  std::lock_guard<std::mutex> lock(mu_);
  auto it = ps.fds.find(*fd);
  if (it == ps.fds.end()) {
    return ErrorCode::kBadFd;
  }
  if (it->second.kind == OpenFile::Kind::kUdp && it->second.port != 0) {
    (void)kernel_.udp().unbind(it->second.port);
  }
  if (it->second.kind == OpenFile::Kind::kPipeRead) {
    kernel_.pipes().close_reader(it->second.pipe);
  }
  if (it->second.kind == OpenFile::Kind::kPipeWrite) {
    kernel_.pipes().close_writer(it->second.pipe);
  }
  if (it->second.kind == OpenFile::Kind::kRtp && !it->second.listener) {
    (void)kernel_.rtp().close(it->second.conn);
  }
  if (it->second.kind == OpenFile::Kind::kVtp) {
    if (it->second.listener) {
      (void)kernel_.vtp().unlisten(it->second.port);
    } else {
      (void)kernel_.vtp().close(it->second.conn);
    }
  }
  release_fd(ps, it->first);
  ps.fds.erase(it);
  return ErrorCode::kOk;
}

ErrorCode SyscallDispatcher::do_read(Pid pid, Reader& args, Writer& reply) {
  auto fd = get_fd(args);
  auto len = args.get_u64();
  if (!fd || !len || *len > kMaxIoBytes || !args.exhausted()) {
    return ErrorCode::kInvalidArgument;
  }
  ProcState& ps = proc_state(pid);
  std::lock_guard<std::mutex> lock(mu_);
  auto it = ps.fds.find(*fd);
  if (it == ps.fds.end()) {
    return ErrorCode::kBadFd;
  }
  if (it->second.kind == OpenFile::Kind::kPipeRead) {
    std::vector<u8> buf(*len);
    auto r = kernel_.pipes().read(it->second.pipe, buf);
    if (!r.ok()) {
      return r.error();
    }
    buf.resize(r.value());
    reply.put_bytes(buf);
    return ErrorCode::kOk;
  }
  if (it->second.kind != OpenFile::Kind::kFile) {
    return ErrorCode::kBadFd;
  }
  OpenFile& of = it->second;
  auto st = kernel_.fs().stat(of.path);
  if (!st.ok()) {
    return st.error();  // file unlinked while open: surfaced, not UB
  }
  const u64 pre_offset = of.offset;
  const u64 file_size = st.value().size;

  std::vector<u8> buf(*len);
  auto r = kernel_.fs().read(of.path, pre_offset, buf);
  if (!r.ok()) {
    return r.error();
  }
  u64 n = r.value();
  of.offset = pre_offset + n;

  // The paper's read_spec, executably:
  //   read_len == min(buffer.len(), pre.files[fd].size - pre.files[fd].offset)
  //   && post.files[fd].offset == pre.files[fd].offset + read_len
  VNROS_ENSURES(n == std::min<u64>(*len, file_size > pre_offset ? file_size - pre_offset : 0));
  VNROS_ENSURES(of.offset == pre_offset + n);

  buf.resize(n);
  reply.put_bytes(buf);
  return ErrorCode::kOk;
}

ErrorCode SyscallDispatcher::do_write(Pid pid, Reader& args, Writer& reply) {
  auto fd = get_fd(args);
  auto data = args.get_bytes();
  if (!fd || !data || !args.exhausted()) {
    return ErrorCode::kInvalidArgument;
  }
  ProcState& ps = proc_state(pid);
  std::lock_guard<std::mutex> lock(mu_);
  auto it = ps.fds.find(*fd);
  if (it == ps.fds.end()) {
    return ErrorCode::kBadFd;
  }
  if (it->second.kind == OpenFile::Kind::kPipeWrite) {
    auto r = kernel_.pipes().write(it->second.pipe, *data);
    if (!r.ok()) {
      return r.error();
    }
    reply.put_u64(r.value());
    return ErrorCode::kOk;
  }
  if (it->second.kind != OpenFile::Kind::kFile) {
    return ErrorCode::kBadFd;
  }
  OpenFile& of = it->second;
  auto r = kernel_.fs().write(of.path, of.offset, *data);
  if (!r.ok()) {
    return r.error();
  }
  of.offset += r.value();
  reply.put_u64(r.value());
  return ErrorCode::kOk;
}

ErrorCode SyscallDispatcher::do_lseek(Pid pid, Reader& args, Writer& reply) {
  auto fd = get_fd(args);
  auto delta = args.get_i64();
  auto whence = args.get_u32();
  if (!fd || !delta || !whence || *whence > 2 || !args.exhausted()) {
    return ErrorCode::kInvalidArgument;
  }
  ProcState& ps = proc_state(pid);
  std::lock_guard<std::mutex> lock(mu_);
  auto it = ps.fds.find(*fd);
  if (it == ps.fds.end() || it->second.kind != OpenFile::Kind::kFile) {
    return ErrorCode::kBadFd;
  }
  OpenFile& of = it->second;
  i64 base = 0;
  switch (static_cast<SeekWhence>(*whence)) {
    case SeekWhence::kSet: base = 0; break;
    case SeekWhence::kCur: base = static_cast<i64>(of.offset); break;
    case SeekWhence::kEnd: {
      auto st = kernel_.fs().stat(of.path);
      if (!st.ok()) {
        return st.error();
      }
      base = static_cast<i64>(st.value().size);
      break;
    }
  }
  i64 target = base + *delta;
  if (target < 0) {
    return ErrorCode::kInvalidArgument;
  }
  of.offset = static_cast<u64>(target);
  reply.put_u64(of.offset);
  return ErrorCode::kOk;
}

ErrorCode SyscallDispatcher::do_fstat(Pid pid, Reader& args, Writer& reply) {
  auto fd = get_fd(args);
  if (!fd || !args.exhausted()) {
    return ErrorCode::kInvalidArgument;
  }
  ProcState& ps = proc_state(pid);
  std::lock_guard<std::mutex> lock(mu_);
  auto it = ps.fds.find(*fd);
  if (it == ps.fds.end() || it->second.kind != OpenFile::Kind::kFile) {
    return ErrorCode::kBadFd;
  }
  auto st = kernel_.fs().stat(it->second.path);
  if (!st.ok()) {
    return st.error();
  }
  reply.put_u64(st.value().inode);
  reply.put_u64(st.value().size);
  reply.put_bool(st.value().is_dir);
  return ErrorCode::kOk;
}

ErrorCode SyscallDispatcher::do_readdir(Pid, Reader& args, Writer& reply) {
  auto path = args.get_string();
  if (!path || !args.exhausted()) {
    return ErrorCode::kInvalidArgument;
  }
  auto names = kernel_.fs().readdir(*path);
  if (!names.ok()) {
    return names.error();
  }
  reply.put_u32(static_cast<u32>(names.value().size()));
  for (const auto& n : names.value()) {
    reply.put_string(n);
  }
  return ErrorCode::kOk;
}

ErrorCode SyscallDispatcher::do_pipe_create(Pid pid, Reader& args, Writer& reply) {
  if (!args.exhausted()) {
    return ErrorCode::kInvalidArgument;
  }
  PipeId id = kernel_.pipes().create();
  ProcState& ps = proc_state(pid);
  std::lock_guard<std::mutex> lock(mu_);
  Fd rfd = alloc_fd(ps);
  Fd wfd = alloc_fd(ps);
  OpenFile rend;
  rend.kind = OpenFile::Kind::kPipeRead;
  rend.pipe = id;
  OpenFile wend;
  wend.kind = OpenFile::Kind::kPipeWrite;
  wend.pipe = id;
  ps.fds[rfd] = rend;
  ps.fds[wfd] = wend;
  put_fd(reply, rfd);
  put_fd(reply, wfd);
  return ErrorCode::kOk;
}

ErrorCode SyscallDispatcher::do_read_user(Pid pid, Reader& args, Writer& reply) {
  auto fd = get_fd(args);
  auto uaddr = args.get_u64();
  auto len = args.get_u64();
  if (!fd || !uaddr || !len || *len > kMaxIoBytes || !args.exhausted()) {
    return ErrorCode::kInvalidArgument;
  }
  Process* proc = kernel_.procs().get(pid);
  if (proc == nullptr) {
    return ErrorCode::kNotFound;
  }
  ProcState& ps = proc_state(pid);
  // Data-race-freedom obligation: the buffer (process memory) is borrowed
  // exclusively for the duration of the handler.
  ExclusiveBorrow borrow(ps.borrow);
  std::lock_guard<std::mutex> lock(mu_);
  auto it = ps.fds.find(*fd);
  if (it == ps.fds.end() || it->second.kind != OpenFile::Kind::kFile) {
    return ErrorCode::kBadFd;
  }
  OpenFile& of = it->second;
  std::vector<u8> buf(*len);
  auto r = kernel_.fs().read(of.path, of.offset, buf);
  if (!r.ok()) {
    return r.error();
  }
  buf.resize(r.value());
  // Mapping obligation: the bytes land in user memory through the verified
  // page table.
  auto copied = proc->vm().copy_out(VAddr{*uaddr}, buf);
  if (!copied.ok()) {
    return copied.error();
  }
  of.offset += r.value();
  reply.put_u64(r.value());
  return ErrorCode::kOk;
}

ErrorCode SyscallDispatcher::do_write_user(Pid pid, Reader& args, Writer& reply) {
  auto fd = get_fd(args);
  auto uaddr = args.get_u64();
  auto len = args.get_u64();
  if (!fd || !uaddr || !len || *len > kMaxIoBytes || !args.exhausted()) {
    return ErrorCode::kInvalidArgument;
  }
  Process* proc = kernel_.procs().get(pid);
  if (proc == nullptr) {
    return ErrorCode::kNotFound;
  }
  ProcState& ps = proc_state(pid);
  ExclusiveBorrow borrow(ps.borrow);
  std::lock_guard<std::mutex> lock(mu_);
  auto it = ps.fds.find(*fd);
  if (it == ps.fds.end() || it->second.kind != OpenFile::Kind::kFile) {
    return ErrorCode::kBadFd;
  }
  OpenFile& of = it->second;
  std::vector<u8> buf(*len);
  auto copied = proc->vm().copy_in(VAddr{*uaddr}, buf);
  if (!copied.ok()) {
    return copied.error();
  }
  auto r = kernel_.fs().write(of.path, of.offset, buf);
  if (!r.ok()) {
    return r.error();
  }
  of.offset += r.value();
  reply.put_u64(r.value());
  return ErrorCode::kOk;
}

// --- Memory handlers -------------------------------------------------------------

ErrorCode SyscallDispatcher::do_mmap(Pid pid, Reader& args, Writer& reply) {
  auto length = args.get_u64();
  auto writable = args.get_bool();
  if (!length || !writable || *length > kMaxIoBytes) {
    return ErrorCode::kInvalidArgument;
  }
  // Optional trailing field (newer frames): demand-page the region instead of
  // backing it eagerly. Two-field frames from older callers stay valid.
  bool lazy = false;
  if (!args.exhausted()) {
    auto l = args.get_bool();
    if (!l || !args.exhausted()) {
      return ErrorCode::kInvalidArgument;
    }
    lazy = *l;
  }
  Process* proc = kernel_.procs().get(pid);
  if (proc == nullptr) {
    return ErrorCode::kNotFound;
  }
  Perms perms{*writable, true, false};
  auto r = lazy ? proc->vm().mmap_lazy(*length, perms) : proc->vm().mmap(*length, perms);
  if (!r.ok()) {
    return r.error();
  }
  reply.put_u64(r.value().value);
  return ErrorCode::kOk;
}

ErrorCode SyscallDispatcher::do_munmap(Pid pid, Reader& args, Writer&) {
  auto base = args.get_u64();
  if (!base || !args.exhausted()) {
    return ErrorCode::kInvalidArgument;
  }
  Process* proc = kernel_.procs().get(pid);
  if (proc == nullptr) {
    return ErrorCode::kNotFound;
  }
  return proc->vm().munmap(VAddr{*base}).error();
}

// --- Process handlers ---------------------------------------------------------------

ErrorCode SyscallDispatcher::do_spawn(Pid pid, CoreId core, Reader& args, Writer& reply) {
  if (!args.exhausted()) {
    return ErrorCode::kInvalidArgument;
  }
  auto r = kernel_.procs().spawn(proc_token(core), pid);
  if (!r.ok()) {
    return r.error();
  }
  reply.put_u64(r.value());
  return ErrorCode::kOk;
}

ErrorCode SyscallDispatcher::do_waitpid(Pid pid, CoreId core, Reader& args, Writer& reply) {
  auto child = args.get_u64();
  if (!child || !args.exhausted()) {
    return ErrorCode::kInvalidArgument;
  }
  auto r = kernel_.procs().wait(proc_token(core), pid, *child);
  if (!r.ok()) {
    return r.error();
  }
  reply.put_i64(r.value());
  return ErrorCode::kOk;
}

ErrorCode SyscallDispatcher::do_exit(Pid pid, CoreId core, Reader& args, Writer&) {
  auto code = args.get_i64();
  if (!code || !args.exhausted()) {
    return ErrorCode::kInvalidArgument;
  }
  auto r = kernel_.procs().exit(proc_token(core), pid, static_cast<i32>(*code));
  if (!r.ok()) {
    return r.error();
  }
  destroy_process_state(pid);
  return ErrorCode::kOk;
}

ErrorCode SyscallDispatcher::do_kill(Pid pid, CoreId core, Reader& args, Writer&) {
  auto target = args.get_u64();
  auto signal = args.get_u32();
  if (!target || !signal || !args.exhausted()) {
    return ErrorCode::kInvalidArgument;
  }
  (void)pid;  // permission model: any process may signal any other (no uids)
  auto r = kernel_.procs().kill(proc_token(core), *target, *signal);
  if (!r.ok()) {
    return r.error();
  }
  if (*signal == kSigKill) {
    destroy_process_state(*target);
  }
  return ErrorCode::kOk;
}

ErrorCode SyscallDispatcher::do_take_signal(Pid pid, CoreId core, Reader& args, Writer& reply) {
  if (!args.exhausted()) {
    return ErrorCode::kInvalidArgument;
  }
  auto r = kernel_.procs().take_signal(proc_token(core), pid);
  if (!r.ok()) {
    return r.error();
  }
  reply.put_u32(r.value());
  return ErrorCode::kOk;
}

// --- Futex handlers ---------------------------------------------------------------

ErrorCode SyscallDispatcher::do_futex_wait(Pid pid, CoreId core, Reader& args, Writer&) {
  auto uaddr = args.get_u64();
  auto expected = args.get_u32();
  auto tid = args.get_u64();
  if (!uaddr || !expected || !tid || !args.exhausted()) {
    return ErrorCode::kInvalidArgument;
  }
  Process* proc = kernel_.procs().get(pid);
  if (proc == nullptr) {
    return ErrorCode::kNotFound;
  }
  auto current = proc->vm().read_u32(VAddr{*uaddr});
  if (!current.ok()) {
    return current.error();
  }
  return kernel_.simfutex().wait(sched_token(core), pid, VAddr{*uaddr}, current.value(),
                                 *expected, *tid);
}

ErrorCode SyscallDispatcher::do_futex_wake(Pid pid, CoreId core, Reader& args, Writer& reply) {
  auto uaddr = args.get_u64();
  auto count = args.get_u64();
  if (!uaddr || !count || !args.exhausted()) {
    return ErrorCode::kInvalidArgument;
  }
  usize woken = kernel_.simfutex().wake(sched_token(core), pid, VAddr{*uaddr}, *count);
  reply.put_u64(woken);
  return ErrorCode::kOk;
}

// --- Network handlers ----------------------------------------------------------------

ErrorCode SyscallDispatcher::do_udp_socket(Pid pid, Reader& args, Writer& reply) {
  if (!args.exhausted()) {
    return ErrorCode::kInvalidArgument;
  }
  ProcState& ps = proc_state(pid);
  std::lock_guard<std::mutex> lock(mu_);
  Fd fd = alloc_fd(ps);
  OpenFile of;
  of.kind = OpenFile::Kind::kUdp;
  ps.fds[fd] = of;
  put_fd(reply, fd);
  return ErrorCode::kOk;
}

ErrorCode SyscallDispatcher::do_udp_bind(Pid pid, Reader& args, Writer&) {
  auto fd = get_fd(args);
  auto port = args.get_u16();
  if (!fd || !port || !args.exhausted()) {
    return ErrorCode::kInvalidArgument;
  }
  ProcState& ps = proc_state(pid);
  std::lock_guard<std::mutex> lock(mu_);
  auto it = ps.fds.find(*fd);
  if (it == ps.fds.end() || it->second.kind != OpenFile::Kind::kUdp) {
    return ErrorCode::kBadFd;
  }
  if (it->second.port != 0) {
    return ErrorCode::kAlreadyExists;
  }
  auto r = kernel_.udp().bind(*port);
  if (!r.ok()) {
    return r.error();
  }
  it->second.port = *port;
  return ErrorCode::kOk;
}

ErrorCode SyscallDispatcher::do_udp_sendto(Pid pid, Reader& args, Writer&) {
  auto fd = get_fd(args);
  auto dst = args.get_u32();
  auto dport = args.get_u16();
  auto data = args.get_bytes();
  if (!fd || !dst || !dport || !data || !args.exhausted()) {
    return ErrorCode::kInvalidArgument;
  }
  ProcState& ps = proc_state(pid);
  Port src_port;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = ps.fds.find(*fd);
    if (it == ps.fds.end() || it->second.kind != OpenFile::Kind::kUdp) {
      return ErrorCode::kBadFd;
    }
    if (it->second.port == 0) {
      // Auto-bind an ephemeral port, as first use of an unbound socket.
      Port p = static_cast<Port>(kEphemeralBase + (next_ephemeral_++ % 16000));
      auto b = kernel_.udp().bind(p);
      if (!b.ok()) {
        return b.error();
      }
      it->second.port = p;
    }
    src_port = it->second.port;
  }
  return kernel_.udp().send(*dst, *dport, src_port, *data).error();
}

ErrorCode SyscallDispatcher::do_udp_recvfrom(Pid pid, Reader& args, Writer& reply) {
  auto fd = get_fd(args);
  if (!fd || !args.exhausted()) {
    return ErrorCode::kInvalidArgument;
  }
  ProcState& ps = proc_state(pid);
  Port port;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = ps.fds.find(*fd);
    if (it == ps.fds.end() || it->second.kind != OpenFile::Kind::kUdp) {
      return ErrorCode::kBadFd;
    }
    if (it->second.port == 0) {
      return ErrorCode::kNotConnected;
    }
    port = it->second.port;
  }
  auto r = kernel_.udp().recv(port);
  if (!r.ok()) {
    return r.error();
  }
  reply.put_u32(r.value().src_addr);
  reply.put_u16(r.value().src_port);
  reply.put_bytes(r.value().payload);
  return ErrorCode::kOk;
}

ErrorCode SyscallDispatcher::do_rtp_listen(Pid pid, Reader& args, Writer& reply) {
  auto port = args.get_u16();
  if (!port || !args.exhausted()) {
    return ErrorCode::kInvalidArgument;
  }
  auto r = kernel_.rtp().listen(*port);
  if (!r.ok()) {
    return r.error();
  }
  ProcState& ps = proc_state(pid);
  std::lock_guard<std::mutex> lock(mu_);
  Fd fd = alloc_fd(ps);
  OpenFile of;
  of.kind = OpenFile::Kind::kRtp;
  of.listener = true;
  of.port = *port;
  ps.fds[fd] = of;
  put_fd(reply, fd);
  return ErrorCode::kOk;
}

ErrorCode SyscallDispatcher::do_rtp_connect(Pid pid, Reader& args, Writer& reply) {
  auto dst = args.get_u32();
  auto dport = args.get_u16();
  auto sport = args.get_u16();
  if (!dst || !dport || !sport || !args.exhausted()) {
    return ErrorCode::kInvalidArgument;
  }
  auto r = kernel_.rtp().connect(*dst, *dport, *sport);
  if (!r.ok()) {
    return r.error();
  }
  ProcState& ps = proc_state(pid);
  std::lock_guard<std::mutex> lock(mu_);
  Fd fd = alloc_fd(ps);
  OpenFile of;
  of.kind = OpenFile::Kind::kRtp;
  of.conn = r.value();
  ps.fds[fd] = of;
  put_fd(reply, fd);
  return ErrorCode::kOk;
}

ErrorCode SyscallDispatcher::do_rtp_accept(Pid pid, Reader& args, Writer& reply) {
  auto fd = get_fd(args);
  if (!fd || !args.exhausted()) {
    return ErrorCode::kInvalidArgument;
  }
  ProcState& ps = proc_state(pid);
  Port port;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = ps.fds.find(*fd);
    if (it == ps.fds.end() || it->second.kind != OpenFile::Kind::kRtp ||
        !it->second.listener) {
      return ErrorCode::kBadFd;
    }
    port = it->second.port;
  }
  auto r = kernel_.rtp().accept(port);
  if (!r.ok()) {
    return r.error();
  }
  std::lock_guard<std::mutex> lock(mu_);
  Fd nfd = alloc_fd(ps);
  OpenFile of;
  of.kind = OpenFile::Kind::kRtp;
  of.conn = r.value();
  ps.fds[nfd] = of;
  put_fd(reply, nfd);
  return ErrorCode::kOk;
}

ErrorCode SyscallDispatcher::do_rtp_send(Pid pid, Reader& args, Writer&) {
  auto fd = get_fd(args);
  auto data = args.get_bytes();
  if (!fd || !data || !args.exhausted()) {
    return ErrorCode::kInvalidArgument;
  }
  ProcState& ps = proc_state(pid);
  ConnId conn;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = ps.fds.find(*fd);
    if (it == ps.fds.end() || it->second.kind != OpenFile::Kind::kRtp || it->second.listener) {
      return ErrorCode::kBadFd;
    }
    conn = it->second.conn;
  }
  return kernel_.rtp().send(conn, *data).error();
}

ErrorCode SyscallDispatcher::do_rtp_recv(Pid pid, Reader& args, Writer& reply) {
  auto fd = get_fd(args);
  auto max_len = args.get_u64();
  if (!fd || !max_len || *max_len > kMaxIoBytes || !args.exhausted()) {
    return ErrorCode::kInvalidArgument;
  }
  ProcState& ps = proc_state(pid);
  ConnId conn;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = ps.fds.find(*fd);
    if (it == ps.fds.end() || it->second.kind != OpenFile::Kind::kRtp || it->second.listener) {
      return ErrorCode::kBadFd;
    }
    conn = it->second.conn;
  }
  auto r = kernel_.rtp().recv(conn, *max_len);
  if (!r.ok()) {
    return r.error();
  }
  reply.put_bytes(r.value());
  return ErrorCode::kOk;
}

ErrorCode SyscallDispatcher::do_rtp_close(Pid pid, Reader& args, Writer&) {
  auto fd = get_fd(args);
  if (!fd || !args.exhausted()) {
    return ErrorCode::kInvalidArgument;
  }
  ProcState& ps = proc_state(pid);
  std::lock_guard<std::mutex> lock(mu_);
  auto it = ps.fds.find(*fd);
  if (it == ps.fds.end() || it->second.kind != OpenFile::Kind::kRtp) {
    return ErrorCode::kBadFd;
  }
  if (!it->second.listener) {
    (void)kernel_.rtp().close(it->second.conn);
  }
  release_fd(ps, it->first);
  ps.fds.erase(it);
  return ErrorCode::kOk;
}

ErrorCode SyscallDispatcher::do_vtp_listen(Pid pid, Reader& args, Writer& reply) {
  auto port = args.get_u16();
  auto backlog = args.get_u64();
  if (!port || !backlog || !args.exhausted()) {
    return ErrorCode::kInvalidArgument;
  }
  auto r = kernel_.vtp().listen(*port, *backlog);
  if (!r.ok()) {
    return r.error();
  }
  ProcState& ps = proc_state(pid);
  std::lock_guard<std::mutex> lock(mu_);
  Fd fd = alloc_fd(ps);
  OpenFile of;
  of.kind = OpenFile::Kind::kVtp;
  of.listener = true;
  of.port = *port;
  ps.fds[fd] = of;
  put_fd(reply, fd);
  return ErrorCode::kOk;
}

ErrorCode SyscallDispatcher::do_vtp_connect(Pid pid, Reader& args, Writer& reply) {
  auto dst = args.get_u32();
  auto dport = args.get_u16();
  auto sport = args.get_u16();
  if (!dst || !dport || !sport || !args.exhausted()) {
    return ErrorCode::kInvalidArgument;
  }
  auto r = kernel_.vtp().connect(*dst, *dport, *sport);
  if (!r.ok()) {
    return r.error();
  }
  ProcState& ps = proc_state(pid);
  std::lock_guard<std::mutex> lock(mu_);
  Fd fd = alloc_fd(ps);
  OpenFile of;
  of.kind = OpenFile::Kind::kVtp;
  of.conn = r.value();
  ps.fds[fd] = of;
  put_fd(reply, fd);
  return ErrorCode::kOk;
}

ErrorCode SyscallDispatcher::do_vtp_accept(Pid pid, Reader& args, Writer& reply) {
  auto fd = get_fd(args);
  if (!fd || !args.exhausted()) {
    return ErrorCode::kInvalidArgument;
  }
  ProcState& ps = proc_state(pid);
  Port port;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = ps.fds.find(*fd);
    if (it == ps.fds.end() || it->second.kind != OpenFile::Kind::kVtp ||
        !it->second.listener) {
      return ErrorCode::kBadFd;
    }
    port = it->second.port;
  }
  auto r = kernel_.vtp().accept(port);
  if (!r.ok()) {
    return r.error();  // kWouldBlock while empty: transient, ring-parkable
  }
  std::lock_guard<std::mutex> lock(mu_);
  Fd nfd = alloc_fd(ps);
  OpenFile of;
  of.kind = OpenFile::Kind::kVtp;
  of.conn = r.value();
  ps.fds[nfd] = of;
  put_fd(reply, nfd);
  return ErrorCode::kOk;
}

ErrorCode SyscallDispatcher::do_vtp_send(Pid pid, Reader& args, Writer& reply) {
  auto fd = get_fd(args);
  auto data = args.get_bytes();
  if (!fd || !data || !args.exhausted()) {
    return ErrorCode::kInvalidArgument;
  }
  ProcState& ps = proc_state(pid);
  ConnId conn;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = ps.fds.find(*fd);
    if (it == ps.fds.end() || it->second.kind != OpenFile::Kind::kVtp || it->second.listener) {
      return ErrorCode::kBadFd;
    }
    conn = it->second.conn;
  }
  auto r = kernel_.vtp().send(conn, *data);
  if (!r.ok()) {
    return r.error();  // kWouldBlock when the send buffer is full
  }
  reply.put_u64(r.value());  // stream semantics: bytes accepted, not all-or-nothing
  return ErrorCode::kOk;
}

ErrorCode SyscallDispatcher::do_vtp_recv(Pid pid, Reader& args, Writer& reply) {
  auto fd = get_fd(args);
  auto max_len = args.get_u64();
  if (!fd || !max_len || *max_len > kMaxIoBytes || !args.exhausted()) {
    return ErrorCode::kInvalidArgument;
  }
  ProcState& ps = proc_state(pid);
  ConnId conn;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = ps.fds.find(*fd);
    if (it == ps.fds.end() || it->second.kind != OpenFile::Kind::kVtp || it->second.listener) {
      return ErrorCode::kBadFd;
    }
    conn = it->second.conn;
  }
  auto r = kernel_.vtp().recv(conn, *max_len);
  if (!r.ok()) {
    return r.error();
  }
  reply.put_bytes(r.value());
  return ErrorCode::kOk;
}

ErrorCode SyscallDispatcher::do_vtp_close(Pid pid, Reader& args, Writer&) {
  auto fd = get_fd(args);
  if (!fd || !args.exhausted()) {
    return ErrorCode::kInvalidArgument;
  }
  ProcState& ps = proc_state(pid);
  std::lock_guard<std::mutex> lock(mu_);
  auto it = ps.fds.find(*fd);
  if (it == ps.fds.end() || it->second.kind != OpenFile::Kind::kVtp) {
    return ErrorCode::kBadFd;
  }
  if (it->second.listener) {
    (void)kernel_.vtp().unlisten(it->second.port);
  } else {
    (void)kernel_.vtp().close(it->second.conn);
  }
  release_fd(ps, it->first);
  ps.fds.erase(it);
  return ErrorCode::kOk;
}

ErrorCode SyscallDispatcher::do_console_write(Pid, Reader& args, Writer&) {
  auto text = args.get_string();
  if (!text || !args.exhausted()) {
    return ErrorCode::kInvalidArgument;
  }
  kernel_.console().write(*text);
  return ErrorCode::kOk;
}

ErrorCode SyscallDispatcher::do_kstat(Pid, Reader& args, Writer& reply) {
  auto name = args.get_string();
  if (!name || !args.exhausted()) {
    return ErrorCode::kInvalidArgument;
  }
  auto value = kernel_.kstat(*name);
  if (!value.ok()) {
    return value.error();
  }
  reply.put_u64(value.value());
  return ErrorCode::kOk;
}

ErrorCode SyscallDispatcher::do_kstat_list(Pid, Reader& args, Writer& reply) {
  if (!args.exhausted()) {
    return ErrorCode::kInvalidArgument;
  }
  auto names = kernel_.kstat_names();
  reply.put_u32(static_cast<u32>(names.size()));
  for (const auto& n : names) {
    reply.put_string(n);
  }
  return ErrorCode::kOk;
}

// --- Ring handlers ---------------------------------------------------------------------

ErrorCode SyscallDispatcher::do_ring_setup(Pid pid, Reader& args, Writer& reply) {
  auto sq_slots = args.get_u32();
  auto cq_slots = args.get_u32();
  if (!sq_slots || !cq_slots || !args.exhausted()) {
    return ErrorCode::kInvalidArgument;
  }
  auto r = kernel_.rings().setup(pid, *sq_slots, *cq_slots);
  if (!r.ok()) {
    return r.error();
  }
  reply.put_u32(r.value());
  return ErrorCode::kOk;
}

ErrorCode SyscallDispatcher::do_ring_submit(Pid pid, CoreId core, Reader& args, Writer& reply) {
  auto ring_id = args.get_u32();
  auto count = args.get_u32();
  if (!ring_id || !count || *count > SysRingTable::kMaxSlots) {
    return ErrorCode::kInvalidArgument;
  }
  std::vector<RingSqe> entries;
  entries.reserve(*count);
  for (u32 i = 0; i < *count; ++i) {
    auto user_data = args.get_u64();
    auto op = args.get_u32();
    auto op_args = args.get_bytes();
    if (!user_data || !op || !op_args) {
      return ErrorCode::kInvalidArgument;
    }
    entries.push_back(RingSqe{*user_data, *op, std::move(*op_args)});
  }
  if (!args.exhausted()) {
    return ErrorCode::kInvalidArgument;
  }
  auto exec = [this, pid, core](u32 op, Reader& a, Writer& p) {
    return exec_syscall(pid, core, op, a, p);
  };
  auto r = kernel_.rings().submit(pid, *ring_id, entries, exec, sched_token(core));
  if (!r.ok()) {
    return r.error();
  }
  reply.put_u32(r.value());
  return ErrorCode::kOk;
}

ErrorCode SyscallDispatcher::do_ring_wait(Pid pid, CoreId core, Reader& args, Writer& reply) {
  auto ring_id = args.get_u32();
  auto min_complete = args.get_u32();
  auto max_reap = args.get_u32();
  auto tid = args.get_u64();
  if (!ring_id || !min_complete || !max_reap || !tid || !args.exhausted()) {
    return ErrorCode::kInvalidArgument;
  }
  auto exec = [this, pid, core](u32 op, Reader& a, Writer& p) {
    return exec_syscall(pid, core, op, a, p);
  };
  auto r = kernel_.rings().wait(pid, *ring_id, *min_complete, *max_reap, *tid, exec,
                                sched_token(core));
  if (!r.ok()) {
    return r.error();
  }
  reply.put_u32(static_cast<u32>(r.value().size()));
  for (const RingCqe& cqe : r.value()) {
    reply.put_u64(cqe.user_data);
    reply.put_u32(cqe.err);
    reply.put_bytes(cqe.payload);
  }
  return ErrorCode::kOk;
}

// --- User-side facade ------------------------------------------------------------------

Result<std::vector<u8>> Sys::invoke(Writer& frame) {
  std::vector<u8> reply = dispatcher_.handle(pid_, core_, frame.bytes());
  Reader r(reply);
  auto err = r.get_u32();
  if (!err) {
    return ErrorCode::kCorrupted;  // kernel reply must at least carry an error word
  }
  if (static_cast<ErrorCode>(*err) != ErrorCode::kOk) {
    return static_cast<ErrorCode>(*err);
  }
  auto rest = r.get_raw(r.remaining());
  return rest ? Result<std::vector<u8>>(std::move(*rest)) : ErrorCode::kCorrupted;
}

Result<Fd> Sys::open(std::string_view path, u32 flags) {
  Writer w;
  w.put_u32(static_cast<u32>(SysNr::kOpen));
  w.put_string(path);
  w.put_u32(flags);
  auto reply = invoke(w);
  if (!reply.ok()) {
    return reply.error();
  }
  Reader r(reply.value());
  auto fd = r.get_u32();
  if (!fd) {
    return ErrorCode::kCorrupted;
  }
  return static_cast<Fd>(*fd);
}

Result<Unit> Sys::close(Fd fd) {
  Writer w;
  w.put_u32(static_cast<u32>(SysNr::kClose));
  put_fd(w, fd);
  auto reply = invoke(w);
  if (!reply.ok()) {
    return reply.error();
  }
  return Unit{};
}

Result<std::vector<u8>> Sys::read(Fd fd, usize len) {
  Writer w;
  w.put_u32(static_cast<u32>(SysNr::kRead));
  put_fd(w, fd);
  w.put_u64(len);
  auto reply = invoke(w);
  if (!reply.ok()) {
    return reply.error();
  }
  Reader r(reply.value());
  auto data = r.get_bytes();
  if (!data) {
    return ErrorCode::kCorrupted;
  }
  return std::move(*data);
}

Result<u64> Sys::write(Fd fd, std::span<const u8> data) {
  Writer w;
  w.put_u32(static_cast<u32>(SysNr::kWrite));
  put_fd(w, fd);
  w.put_bytes(data);
  auto reply = invoke(w);
  if (!reply.ok()) {
    return reply.error();
  }
  Reader r(reply.value());
  auto n = r.get_u64();
  if (!n) {
    return ErrorCode::kCorrupted;
  }
  return *n;
}

Result<u64> Sys::lseek(Fd fd, i64 delta, SeekWhence whence) {
  Writer w;
  w.put_u32(static_cast<u32>(SysNr::kLseek));
  put_fd(w, fd);
  w.put_i64(delta);
  w.put_u32(static_cast<u32>(whence));
  auto reply = invoke(w);
  if (!reply.ok()) {
    return reply.error();
  }
  Reader r(reply.value());
  auto off = r.get_u64();
  if (!off) {
    return ErrorCode::kCorrupted;
  }
  return *off;
}

Result<FileStat> Sys::fstat(Fd fd) {
  Writer w;
  w.put_u32(static_cast<u32>(SysNr::kFstat));
  put_fd(w, fd);
  auto reply = invoke(w);
  if (!reply.ok()) {
    return reply.error();
  }
  Reader r(reply.value());
  auto ino = r.get_u64();
  auto size = r.get_u64();
  auto is_dir = r.get_bool();
  if (!ino || !size || !is_dir) {
    return ErrorCode::kCorrupted;
  }
  return FileStat{*ino, *size, *is_dir};
}

Result<Unit> Sys::mkdir(std::string_view path) {
  Writer w;
  w.put_u32(static_cast<u32>(SysNr::kMkdir));
  w.put_string(path);
  auto reply = invoke(w);
  return reply.ok() ? Result<Unit>(Unit{}) : reply.error();
}

Result<Unit> Sys::unlink(std::string_view path) {
  Writer w;
  w.put_u32(static_cast<u32>(SysNr::kUnlink));
  w.put_string(path);
  auto reply = invoke(w);
  return reply.ok() ? Result<Unit>(Unit{}) : reply.error();
}

Result<Unit> Sys::rmdir(std::string_view path) {
  Writer w;
  w.put_u32(static_cast<u32>(SysNr::kRmdir));
  w.put_string(path);
  auto reply = invoke(w);
  return reply.ok() ? Result<Unit>(Unit{}) : reply.error();
}

Result<std::vector<std::string>> Sys::readdir(std::string_view path) {
  Writer w;
  w.put_u32(static_cast<u32>(SysNr::kReaddir));
  w.put_string(path);
  auto reply = invoke(w);
  if (!reply.ok()) {
    return reply.error();
  }
  Reader r(reply.value());
  auto count = r.get_u32();
  if (!count) {
    return ErrorCode::kCorrupted;
  }
  std::vector<std::string> names;
  names.reserve(*count);
  for (u32 i = 0; i < *count; ++i) {
    auto name = r.get_string();
    if (!name) {
      return ErrorCode::kCorrupted;
    }
    names.push_back(std::move(*name));
  }
  return names;
}

Result<Unit> Sys::rename(std::string_view from, std::string_view to) {
  Writer w;
  w.put_u32(static_cast<u32>(SysNr::kRename));
  w.put_string(from);
  w.put_string(to);
  auto reply = invoke(w);
  return reply.ok() ? Result<Unit>(Unit{}) : reply.error();
}

Result<Unit> Sys::truncate(std::string_view path, u64 size) {
  Writer w;
  w.put_u32(static_cast<u32>(SysNr::kTruncate));
  w.put_string(path);
  w.put_u64(size);
  auto reply = invoke(w);
  return reply.ok() ? Result<Unit>(Unit{}) : reply.error();
}

Result<Unit> Sys::fsync() {
  Writer w;
  w.put_u32(static_cast<u32>(SysNr::kFsync));
  auto reply = invoke(w);
  return reply.ok() ? Result<Unit>(Unit{}) : reply.error();
}

Result<u64> Sys::read_user(Fd fd, VAddr buffer, usize len) {
  Writer w;
  w.put_u32(static_cast<u32>(SysNr::kReadUser));
  put_fd(w, fd);
  w.put_u64(buffer.value);
  w.put_u64(len);
  auto reply = invoke(w);
  if (!reply.ok()) {
    return reply.error();
  }
  Reader r(reply.value());
  auto n = r.get_u64();
  if (!n) {
    return ErrorCode::kCorrupted;
  }
  return *n;
}

Result<u64> Sys::write_user(Fd fd, VAddr buffer, usize len) {
  Writer w;
  w.put_u32(static_cast<u32>(SysNr::kWriteUser));
  put_fd(w, fd);
  w.put_u64(buffer.value);
  w.put_u64(len);
  auto reply = invoke(w);
  if (!reply.ok()) {
    return reply.error();
  }
  Reader r(reply.value());
  auto n = r.get_u64();
  if (!n) {
    return ErrorCode::kCorrupted;
  }
  return *n;
}

Result<std::pair<Fd, Fd>> Sys::pipe_create() {
  Writer w;
  w.put_u32(static_cast<u32>(SysNr::kPipeCreate));
  auto reply = invoke(w);
  if (!reply.ok()) {
    return reply.error();
  }
  Reader r(reply.value());
  auto rfd = r.get_u32();
  auto wfd = r.get_u32();
  if (!rfd || !wfd) {
    return ErrorCode::kCorrupted;
  }
  return std::pair<Fd, Fd>{static_cast<Fd>(*rfd), static_cast<Fd>(*wfd)};
}

Result<VAddr> Sys::mmap(u64 length, bool writable, bool lazy) {
  Writer w;
  w.put_u32(static_cast<u32>(SysNr::kMmap));
  w.put_u64(length);
  w.put_bool(writable);
  if (lazy) {
    // Trailing optional field; omitted for eager maps so the frame matches
    // what older clients emit.
    w.put_bool(true);
  }
  auto reply = invoke(w);
  if (!reply.ok()) {
    return reply.error();
  }
  Reader r(reply.value());
  auto addr = r.get_u64();
  if (!addr) {
    return ErrorCode::kCorrupted;
  }
  return VAddr{*addr};
}

Result<Unit> Sys::munmap(VAddr base) {
  Writer w;
  w.put_u32(static_cast<u32>(SysNr::kMunmap));
  w.put_u64(base.value);
  auto reply = invoke(w);
  return reply.ok() ? Result<Unit>(Unit{}) : reply.error();
}

Result<Pid> Sys::spawn() {
  Writer w;
  w.put_u32(static_cast<u32>(SysNr::kSpawn));
  auto reply = invoke(w);
  if (!reply.ok()) {
    return reply.error();
  }
  Reader r(reply.value());
  auto pid = r.get_u64();
  if (!pid) {
    return ErrorCode::kCorrupted;
  }
  return *pid;
}

Result<i32> Sys::waitpid(Pid child) {
  Writer w;
  w.put_u32(static_cast<u32>(SysNr::kWaitPid));
  w.put_u64(child);
  auto reply = invoke(w);
  if (!reply.ok()) {
    return reply.error();
  }
  Reader r(reply.value());
  auto code = r.get_i64();
  if (!code) {
    return ErrorCode::kCorrupted;
  }
  return static_cast<i32>(*code);
}

Result<Unit> Sys::exit_proc(i32 code) {
  Writer w;
  w.put_u32(static_cast<u32>(SysNr::kExit));
  w.put_i64(code);
  auto reply = invoke(w);
  return reply.ok() ? Result<Unit>(Unit{}) : reply.error();
}

Result<Unit> Sys::kill(Pid target, u32 signal) {
  Writer w;
  w.put_u32(static_cast<u32>(SysNr::kKill));
  w.put_u64(target);
  w.put_u32(signal);
  auto reply = invoke(w);
  return reply.ok() ? Result<Unit>(Unit{}) : reply.error();
}

Result<u32> Sys::take_signal() {
  Writer w;
  w.put_u32(static_cast<u32>(SysNr::kTakeSignal));
  auto reply = invoke(w);
  if (!reply.ok()) {
    return reply.error();
  }
  Reader r(reply.value());
  auto sig = r.get_u32();
  if (!sig) {
    return ErrorCode::kCorrupted;
  }
  return *sig;
}

Result<Unit> Sys::futex_wait(VAddr uaddr, u32 expected, Tid tid) {
  Writer w;
  w.put_u32(static_cast<u32>(SysNr::kFutexWait));
  w.put_u64(uaddr.value);
  w.put_u32(expected);
  w.put_u64(tid);
  auto reply = invoke(w);
  return reply.ok() ? Result<Unit>(Unit{}) : reply.error();
}

Result<u64> Sys::futex_wake(VAddr uaddr, usize count) {
  Writer w;
  w.put_u32(static_cast<u32>(SysNr::kFutexWake));
  w.put_u64(uaddr.value);
  w.put_u64(count);
  auto reply = invoke(w);
  if (!reply.ok()) {
    return reply.error();
  }
  Reader r(reply.value());
  auto n = r.get_u64();
  if (!n) {
    return ErrorCode::kCorrupted;
  }
  return *n;
}

Result<Fd> Sys::udp_socket() {
  Writer w;
  w.put_u32(static_cast<u32>(SysNr::kUdpSocket));
  auto reply = invoke(w);
  if (!reply.ok()) {
    return reply.error();
  }
  Reader r(reply.value());
  auto fd = r.get_u32();
  if (!fd) {
    return ErrorCode::kCorrupted;
  }
  return static_cast<Fd>(*fd);
}

Result<Unit> Sys::udp_bind(Fd fd, Port port) {
  Writer w;
  w.put_u32(static_cast<u32>(SysNr::kUdpBind));
  put_fd(w, fd);
  w.put_u16(port);
  auto reply = invoke(w);
  return reply.ok() ? Result<Unit>(Unit{}) : reply.error();
}

Result<Unit> Sys::udp_sendto(Fd fd, NetAddr dst, Port dst_port, std::span<const u8> data) {
  Writer w;
  w.put_u32(static_cast<u32>(SysNr::kUdpSendTo));
  put_fd(w, fd);
  w.put_u32(dst);
  w.put_u16(dst_port);
  w.put_bytes(data);
  auto reply = invoke(w);
  return reply.ok() ? Result<Unit>(Unit{}) : reply.error();
}

Result<Datagram> Sys::udp_recvfrom(Fd fd) {
  Writer w;
  w.put_u32(static_cast<u32>(SysNr::kUdpRecvFrom));
  put_fd(w, fd);
  auto reply = invoke(w);
  if (!reply.ok()) {
    return reply.error();
  }
  Reader r(reply.value());
  auto src = r.get_u32();
  auto port = r.get_u16();
  auto data = r.get_bytes();
  if (!src || !port || !data) {
    return ErrorCode::kCorrupted;
  }
  return Datagram{*src, *port, std::move(*data)};
}

Result<Fd> Sys::rtp_listen(Port port) {
  Writer w;
  w.put_u32(static_cast<u32>(SysNr::kRtpListen));
  w.put_u16(port);
  auto reply = invoke(w);
  if (!reply.ok()) {
    return reply.error();
  }
  Reader r(reply.value());
  auto fd = r.get_u32();
  if (!fd) {
    return ErrorCode::kCorrupted;
  }
  return static_cast<Fd>(*fd);
}

Result<Fd> Sys::rtp_connect(NetAddr dst, Port dst_port, Port src_port) {
  Writer w;
  w.put_u32(static_cast<u32>(SysNr::kRtpConnect));
  w.put_u32(dst);
  w.put_u16(dst_port);
  w.put_u16(src_port);
  auto reply = invoke(w);
  if (!reply.ok()) {
    return reply.error();
  }
  Reader r(reply.value());
  auto fd = r.get_u32();
  if (!fd) {
    return ErrorCode::kCorrupted;
  }
  return static_cast<Fd>(*fd);
}

Result<Fd> Sys::rtp_accept(Fd listener) {
  Writer w;
  w.put_u32(static_cast<u32>(SysNr::kRtpAccept));
  put_fd(w, listener);
  auto reply = invoke(w);
  if (!reply.ok()) {
    return reply.error();
  }
  Reader r(reply.value());
  auto fd = r.get_u32();
  if (!fd) {
    return ErrorCode::kCorrupted;
  }
  return static_cast<Fd>(*fd);
}

Result<Unit> Sys::rtp_send(Fd fd, std::span<const u8> data) {
  Writer w;
  w.put_u32(static_cast<u32>(SysNr::kRtpSend));
  put_fd(w, fd);
  w.put_bytes(data);
  auto reply = invoke(w);
  return reply.ok() ? Result<Unit>(Unit{}) : reply.error();
}

Result<std::vector<u8>> Sys::rtp_recv(Fd fd, usize max_len) {
  Writer w;
  w.put_u32(static_cast<u32>(SysNr::kRtpRecv));
  put_fd(w, fd);
  w.put_u64(max_len);
  auto reply = invoke(w);
  if (!reply.ok()) {
    return reply.error();
  }
  Reader r(reply.value());
  auto data = r.get_bytes();
  if (!data) {
    return ErrorCode::kCorrupted;
  }
  return std::move(*data);
}

Result<Fd> Sys::vtp_listen(Port port, usize backlog) {
  Writer w;
  w.put_u32(static_cast<u32>(SysNr::kVtpListen));
  w.put_u16(port);
  w.put_u64(backlog);
  auto reply = invoke(w);
  if (!reply.ok()) {
    return reply.error();
  }
  Reader r(reply.value());
  auto fd = r.get_u32();
  if (!fd) {
    return ErrorCode::kCorrupted;
  }
  return static_cast<Fd>(*fd);
}

Result<Fd> Sys::vtp_connect(NetAddr dst, Port dst_port, Port src_port) {
  Writer w;
  w.put_u32(static_cast<u32>(SysNr::kVtpConnect));
  w.put_u32(dst);
  w.put_u16(dst_port);
  w.put_u16(src_port);
  auto reply = invoke(w);
  if (!reply.ok()) {
    return reply.error();
  }
  Reader r(reply.value());
  auto fd = r.get_u32();
  if (!fd) {
    return ErrorCode::kCorrupted;
  }
  return static_cast<Fd>(*fd);
}

Result<Fd> Sys::vtp_accept(Fd listener) {
  Writer w;
  w.put_u32(static_cast<u32>(SysNr::kVtpAccept));
  put_fd(w, listener);
  auto reply = invoke(w);
  if (!reply.ok()) {
    return reply.error();
  }
  Reader r(reply.value());
  auto fd = r.get_u32();
  if (!fd) {
    return ErrorCode::kCorrupted;
  }
  return static_cast<Fd>(*fd);
}

Result<u64> Sys::vtp_send(Fd fd, std::span<const u8> data) {
  Writer w;
  w.put_u32(static_cast<u32>(SysNr::kVtpSend));
  put_fd(w, fd);
  w.put_bytes(data);
  auto reply = invoke(w);
  if (!reply.ok()) {
    return reply.error();
  }
  Reader r(reply.value());
  auto accepted = r.get_u64();
  if (!accepted) {
    return ErrorCode::kCorrupted;
  }
  return *accepted;
}

Result<std::vector<u8>> Sys::vtp_recv(Fd fd, usize max_len) {
  Writer w;
  w.put_u32(static_cast<u32>(SysNr::kVtpRecv));
  put_fd(w, fd);
  w.put_u64(max_len);
  auto reply = invoke(w);
  if (!reply.ok()) {
    return reply.error();
  }
  Reader r(reply.value());
  auto data = r.get_bytes();
  if (!data) {
    return ErrorCode::kCorrupted;
  }
  return std::move(*data);
}

Result<Unit> Sys::vtp_close(Fd fd) {
  Writer w;
  w.put_u32(static_cast<u32>(SysNr::kVtpClose));
  put_fd(w, fd);
  auto reply = invoke(w);
  return reply.ok() ? Result<Unit>(Unit{}) : reply.error();
}

Result<Unit> Sys::console_write(std::string_view text) {
  Writer w;
  w.put_u32(static_cast<u32>(SysNr::kConsoleWrite));
  w.put_string(text);
  auto reply = invoke(w);
  return reply.ok() ? Result<Unit>(Unit{}) : reply.error();
}

Result<u64> Sys::kstat(std::string_view name) {
  Writer w;
  w.put_u32(static_cast<u32>(SysNr::kKstat));
  w.put_string(name);
  auto reply = invoke(w);
  if (!reply.ok()) {
    return reply.error();
  }
  Reader r(reply.value());
  auto value = r.get_u64();
  if (!value) {
    return ErrorCode::kCorrupted;
  }
  return *value;
}

Result<std::vector<std::string>> Sys::kstat_list() {
  Writer w;
  w.put_u32(static_cast<u32>(SysNr::kKstatList));
  auto reply = invoke(w);
  if (!reply.ok()) {
    return reply.error();
  }
  Reader r(reply.value());
  auto count = r.get_u32();
  if (!count) {
    return ErrorCode::kCorrupted;
  }
  std::vector<std::string> names;
  names.reserve(*count);
  for (u32 i = 0; i < *count; ++i) {
    auto name = r.get_string();
    if (!name) {
      return ErrorCode::kCorrupted;
    }
    names.push_back(std::move(*name));
  }
  return names;
}

Result<u32> Sys::ring_setup(u32 sq_slots, u32 cq_slots) {
  Writer w;
  w.put_u32(static_cast<u32>(SysNr::kRingSetup));
  w.put_u32(sq_slots);
  w.put_u32(cq_slots);
  auto reply = invoke(w);
  if (!reply.ok()) {
    return reply.error();
  }
  Reader r(reply.value());
  auto id = r.get_u32();
  return id ? Result<u32>(*id) : ErrorCode::kCorrupted;
}

Result<u32> Sys::ring_submit(u32 ring_id, std::span<const RingSqe> entries) {
  Writer w;
  w.put_u32(static_cast<u32>(SysNr::kRingSubmit));
  w.put_u32(ring_id);
  w.put_u32(static_cast<u32>(entries.size()));
  for (const RingSqe& e : entries) {
    w.put_u64(e.user_data);
    w.put_u32(e.op);
    w.put_bytes(e.args);
  }
  auto reply = invoke(w);
  if (!reply.ok()) {
    return reply.error();
  }
  Reader r(reply.value());
  auto accepted = r.get_u32();
  return accepted ? Result<u32>(*accepted) : ErrorCode::kCorrupted;
}

Result<std::vector<RingCqe>> Sys::ring_wait(u32 ring_id, u32 min_complete, u32 max_reap,
                                            Tid tid) {
  Writer w;
  w.put_u32(static_cast<u32>(SysNr::kRingWait));
  w.put_u32(ring_id);
  w.put_u32(min_complete);
  w.put_u32(max_reap);
  w.put_u64(tid);
  auto reply = invoke(w);
  if (!reply.ok()) {
    return reply.error();
  }
  Reader r(reply.value());
  auto count = r.get_u32();
  if (!count) {
    return ErrorCode::kCorrupted;
  }
  std::vector<RingCqe> out;
  out.reserve(*count);
  for (u32 i = 0; i < *count; ++i) {
    auto user_data = r.get_u64();
    auto err = r.get_u32();
    auto payload = r.get_bytes();
    if (!user_data || !err || !payload) {
      return ErrorCode::kCorrupted;
    }
    out.push_back(RingCqe{*user_data, *err, std::move(*payload)});
  }
  return out;
}

}  // namespace vnros
