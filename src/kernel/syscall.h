// The syscall layer: the paper's client application contract (§3), made
// executable.
//
// Every call crosses a real marshalling boundary: the user-side Sys facade
// serializes the syscall number and arguments into a byte frame
// (src/base/serde), the kernel-side SyscallDispatcher deserializes, checks,
// executes, and serializes the reply. This discharges, dynamically, the three
// obligations §3 names:
//   - marshalling: arguments/results round-trip the boundary byte-exactly
//     (kernel/marshal_* VCs cover every frame type);
//   - mapping: user buffers are reached through the process's verified page
//     table (read_user/write_user translate page-by-page);
//   - data-race freedom: each process's syscall state is guarded by a
//     BorrowCell — a concurrent conflicting entry trips a contract instead
//     of racing (the dynamic stand-in for Rust's unique &mut).
//
// The read() handler carries the paper's read_spec as an executable
// postcondition — see SyscallDispatcher::do_read.
#ifndef VNROS_SRC_KERNEL_SYSCALL_H_
#define VNROS_SRC_KERNEL_SYSCALL_H_

#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "src/base/fault.h"
#include "src/base/result.h"
#include "src/base/serde.h"
#include "src/kernel/kernel.h"
#include "src/spec/ownership.h"

namespace vnros {

// Syscall numbers (stable ABI).
enum class SysNr : u32 {
  kGetPid = 1,
  // Filesystem.
  kOpen = 10,
  kClose = 11,
  kRead = 12,
  kWrite = 13,
  kLseek = 14,
  kFstat = 15,
  kMkdir = 16,
  kUnlink = 17,
  kRmdir = 18,
  kReaddir = 19,
  kRename = 20,
  kTruncate = 21,
  kFsync = 22,
  kReadUser = 23,   // read into a user-space buffer (mapping obligation)
  kWriteUser = 24,  // write from a user-space buffer
  kPipeCreate = 25,
  // Virtual memory.
  kMmap = 30,
  kMunmap = 31,
  // Processes.
  kSpawn = 40,
  kWaitPid = 41,
  kExit = 42,
  kKill = 43,
  kTakeSignal = 44,
  // Futex.
  kFutexWait = 50,
  kFutexWake = 51,
  // Network: UDP.
  kUdpSocket = 60,
  kUdpBind = 61,
  kUdpSendTo = 62,
  kUdpRecvFrom = 63,
  // Network: RTP (reliable stream).
  kRtpListen = 70,
  kRtpConnect = 71,
  kRtpAccept = 72,
  kRtpSend = 73,
  kRtpRecv = 74,
  kRtpClose = 75,
  // Console.
  kConsoleWrite = 80,
  // Introspection: the kernel's contract counters (read-only).
  kKstat = 90,
  kKstatList = 91,
  // Async submission/completion rings (src/kernel/ring.h).
  kRingSetup = 100,
  kRingSubmit = 101,
  kRingWait = 102,
  // Network: VTP (verified stream transport — windowed, AIMD, selective
  // retransmit; src/net/vtp.h). accept/send/recv are ring-submittable with
  // transient kWouldBlock parking.
  kVtpListen = 110,
  kVtpAccept = 111,
  kVtpConnect = 112,
  kVtpSend = 113,
  kVtpRecv = 114,
  kVtpClose = 115,
};

inline constexpr u32 kOpenCreate = 1u << 0;   // create if missing
inline constexpr u32 kOpenTrunc = 1u << 1;    // truncate to zero
inline constexpr u32 kOpenAppend = 1u << 2;   // start offset at EOF

enum class SeekWhence : u32 { kSet = 0, kCur = 1, kEnd = 2 };

// An open descriptor. Files carry the read_spec's (path, offset) pair;
// socket fds carry their transport identity.
struct OpenFile {
  enum class Kind : u8 { kFile, kUdp, kRtp, kVtp, kPipeRead, kPipeWrite } kind = Kind::kFile;
  std::string path;
  u64 offset = 0;
  Port port = 0;      // udp: bound port
  ConnId conn = 0;    // rtp: connection
  PipeId pipe = 0;    // pipe endpoints
  bool listener = false;

  bool operator==(const OpenFile&) const = default;
};

// Abstract per-process syscall state (the §3 spec's State), used by the
// kernel/sys_* VCs: the fd table plus the filesystem view.
struct SysAbsState {
  std::map<Fd, OpenFile> fds;
  FsAbsState fs;

  bool operator==(const SysAbsState&) const = default;
};

// Kernel-side entry point. One instance per Kernel.
class SyscallDispatcher {
 public:
  explicit SyscallDispatcher(Kernel& kernel) : kernel_(kernel) {}

  // The "syscall instruction": a serialized request frame in, a serialized
  // reply frame out. `core` models which CPU the calling thread runs on.
  std::vector<u8> handle(Pid pid, CoreId core, std::span<const u8> frame);

  // Abstract view for refinement checks.
  SysAbsState view(Pid pid) const;

  // Tears down a process's syscall state (fds) — called on exit.
  void destroy_process_state(Pid pid);

 private:
  struct ProcState {
    std::map<Fd, OpenFile> fds;
    Fd next_fd = 3;  // 0..2 reserved by convention
    // Closed descriptors, recycled LIFO before next_fd grows. Between close
    // and reuse a stale fd stays kBadFd; reuse hands out a fresh OpenFile
    // (kernel/sys_fd_reuse_safe VC + SyscallTest.FdReuse).
    std::vector<Fd> free_fds;
    BorrowCell borrow;
  };

  ProcState& proc_state(Pid pid);
  // Allocates a descriptor: pops the free list, else extends next_fd.
  // Caller holds mu_.
  static Fd alloc_fd(ProcState& ps);
  // Returns a closed descriptor to the free list. Caller holds mu_.
  static void release_fd(ProcState& ps, Fd fd);

  // The shared transition function: executes one syscall by number against
  // kernel state, appending the reply payload. Both the synchronous path
  // (handle) and the ring reactor (kernel_.rings()) dispatch through here,
  // so a ring-executed op refines the synchronous one by construction.
  // Fault-injection eligibility ("syscall/io_error", "syscall/no_memory")
  // is applied here, once per execution attempt.
  ErrorCode exec_syscall(Pid pid, CoreId core, u32 nr, Reader& args, Writer& payload);

  // Handlers append their reply payload to `reply` and return the ErrorCode.
  ErrorCode do_open(Pid pid, Reader& args, Writer& reply);
  ErrorCode do_close(Pid pid, Reader& args, Writer& reply);
  ErrorCode do_read(Pid pid, Reader& args, Writer& reply);
  ErrorCode do_write(Pid pid, Reader& args, Writer& reply);
  ErrorCode do_lseek(Pid pid, Reader& args, Writer& reply);
  ErrorCode do_fstat(Pid pid, Reader& args, Writer& reply);
  ErrorCode do_readdir(Pid pid, Reader& args, Writer& reply);
  ErrorCode do_pipe_create(Pid pid, Reader& args, Writer& reply);
  ErrorCode do_read_user(Pid pid, Reader& args, Writer& reply);
  ErrorCode do_write_user(Pid pid, Reader& args, Writer& reply);
  ErrorCode do_mmap(Pid pid, Reader& args, Writer& reply);
  ErrorCode do_munmap(Pid pid, Reader& args, Writer& reply);
  ErrorCode do_spawn(Pid pid, CoreId core, Reader& args, Writer& reply);
  ErrorCode do_waitpid(Pid pid, CoreId core, Reader& args, Writer& reply);
  ErrorCode do_exit(Pid pid, CoreId core, Reader& args, Writer& reply);
  ErrorCode do_kill(Pid pid, CoreId core, Reader& args, Writer& reply);
  ErrorCode do_take_signal(Pid pid, CoreId core, Reader& args, Writer& reply);
  ErrorCode do_futex_wait(Pid pid, CoreId core, Reader& args, Writer& reply);
  ErrorCode do_futex_wake(Pid pid, CoreId core, Reader& args, Writer& reply);
  ErrorCode do_udp_socket(Pid pid, Reader& args, Writer& reply);
  ErrorCode do_udp_bind(Pid pid, Reader& args, Writer& reply);
  ErrorCode do_udp_sendto(Pid pid, Reader& args, Writer& reply);
  ErrorCode do_udp_recvfrom(Pid pid, Reader& args, Writer& reply);
  ErrorCode do_rtp_listen(Pid pid, Reader& args, Writer& reply);
  ErrorCode do_rtp_connect(Pid pid, Reader& args, Writer& reply);
  ErrorCode do_rtp_accept(Pid pid, Reader& args, Writer& reply);
  ErrorCode do_rtp_send(Pid pid, Reader& args, Writer& reply);
  ErrorCode do_rtp_recv(Pid pid, Reader& args, Writer& reply);
  ErrorCode do_rtp_close(Pid pid, Reader& args, Writer& reply);
  ErrorCode do_vtp_listen(Pid pid, Reader& args, Writer& reply);
  ErrorCode do_vtp_accept(Pid pid, Reader& args, Writer& reply);
  ErrorCode do_vtp_connect(Pid pid, Reader& args, Writer& reply);
  ErrorCode do_vtp_send(Pid pid, Reader& args, Writer& reply);
  ErrorCode do_vtp_recv(Pid pid, Reader& args, Writer& reply);
  ErrorCode do_vtp_close(Pid pid, Reader& args, Writer& reply);
  ErrorCode do_console_write(Pid pid, Reader& args, Writer& reply);
  ErrorCode do_kstat(Pid pid, Reader& args, Writer& reply);
  ErrorCode do_kstat_list(Pid pid, Reader& args, Writer& reply);
  ErrorCode do_ring_setup(Pid pid, Reader& args, Writer& reply);
  ErrorCode do_ring_submit(Pid pid, CoreId core, Reader& args, Writer& reply);
  ErrorCode do_ring_wait(Pid pid, CoreId core, Reader& args, Writer& reply);

  Kernel& kernel_;
  // Transient-error injection at the contract boundary: "syscall/io_error"
  // fails filesystem syscalls with kIoError, "syscall/no_memory" fails
  // mmap/spawn with kNoMemory — errors the §3 contract already allows, so
  // a correct application must tolerate them (and the chaos harness checks
  // that it does).
  FaultSite* io_fault_site_ = &FaultRegistry::global().site("syscall/io_error");
  FaultSite* mem_fault_site_ = &FaultRegistry::global().site("syscall/no_memory");
  mutable std::mutex mu_;
  std::map<Pid, std::unique_ptr<ProcState>> procs_;
  u64 next_ephemeral_ = 0;  // ephemeral UDP port counter
  // One scheduler/process-directory token per core, created lazily.
  std::mutex token_mu_;
  std::map<CoreId, ThreadToken> proc_tokens_;
  std::map<CoreId, ThreadToken> sched_tokens_;
  ThreadToken proc_token(CoreId core);
  ThreadToken sched_token(CoreId core);
};

// User-side facade: what a process links against (the Sys type of §3). All
// methods marshal through the dispatcher — there is no back door.
class Sys {
 public:
  Sys(SyscallDispatcher& dispatcher, Pid pid, CoreId core = 0)
      : dispatcher_(dispatcher), pid_(pid), core_(core) {}

  Pid pid() const { return pid_; }

  // --- Files ---------------------------------------------------------------
  Result<Fd> open(std::string_view path, u32 flags = 0);
  Result<Unit> close(Fd fd);
  // Reads up to `len` bytes at the fd's offset, advancing it (§3 read_spec).
  Result<std::vector<u8>> read(Fd fd, usize len);
  // Writes at the fd's offset, advancing it; returns bytes written.
  Result<u64> write(Fd fd, std::span<const u8> data);
  Result<u64> lseek(Fd fd, i64 delta, SeekWhence whence);
  Result<FileStat> fstat(Fd fd);
  Result<Unit> mkdir(std::string_view path);
  Result<Unit> unlink(std::string_view path);
  Result<Unit> rmdir(std::string_view path);
  Result<std::vector<std::string>> readdir(std::string_view path);
  Result<Unit> rename(std::string_view from, std::string_view to);
  Result<Unit> truncate(std::string_view path, u64 size);
  Result<Unit> fsync();
  // Reads into / writes from this process's own mapped memory.
  Result<u64> read_user(Fd fd, VAddr buffer, usize len);
  Result<u64> write_user(Fd fd, VAddr buffer, usize len);
  // Creates a pipe; returns (read_fd, write_fd).
  Result<std::pair<Fd, Fd>> pipe_create();

  // --- Memory ----------------------------------------------------------------
  Result<VAddr> mmap(u64 length, bool writable, bool lazy = false);
  Result<Unit> munmap(VAddr base);

  // --- Processes ---------------------------------------------------------------
  Result<Pid> spawn();
  Result<i32> waitpid(Pid child);   // kWouldBlock while running
  Result<Unit> exit_proc(i32 code);
  Result<Unit> kill(Pid target, u32 signal);
  Result<u32> take_signal();

  // --- Futex -------------------------------------------------------------------
  Result<Unit> futex_wait(VAddr uaddr, u32 expected, Tid tid);
  Result<u64> futex_wake(VAddr uaddr, usize count);

  // --- Network ------------------------------------------------------------------
  Result<Fd> udp_socket();
  Result<Unit> udp_bind(Fd fd, Port port);
  Result<Unit> udp_sendto(Fd fd, NetAddr dst, Port dst_port, std::span<const u8> data);
  Result<Datagram> udp_recvfrom(Fd fd);
  Result<Fd> rtp_listen(Port port);
  Result<Fd> rtp_connect(NetAddr dst, Port dst_port, Port src_port);
  Result<Fd> rtp_accept(Fd listener);
  Result<Unit> rtp_send(Fd fd, std::span<const u8> data);
  Result<std::vector<u8>> rtp_recv(Fd fd, usize max_len);
  // VTP stream sockets. vtp_send returns how many bytes the transport
  // accepted (partial under backpressure, kWouldBlock when none fit);
  // vtp_accept/vtp_recv return kWouldBlock while nothing is ready — all
  // three park cleanly when submitted through a ring.
  Result<Fd> vtp_listen(Port port, usize backlog = 16);
  Result<Fd> vtp_connect(NetAddr dst, Port dst_port, Port src_port);
  Result<Fd> vtp_accept(Fd listener);
  Result<u64> vtp_send(Fd fd, std::span<const u8> data);
  Result<std::vector<u8>> vtp_recv(Fd fd, usize max_len);
  Result<Unit> vtp_close(Fd fd);

  // --- Console ---------------------------------------------------------------------
  Result<Unit> console_write(std::string_view text);

  // --- Async rings -------------------------------------------------------------------
  // io_uring-shaped submission/completion queues (src/kernel/ring.h): setup
  // returns a ring id; submit accepts a prefix of the batch bounded by free
  // SQ slots (typed kWouldBlock when none fits); wait reaps up to max_reap
  // completions, parking on the scheduler when fewer than min_complete are
  // ready and `tid` is nonzero (kWouldBlock signals the park — nothing
  // reaped). Args inside each RingSqe use the synchronous frame encoding
  // minus the leading nr word; see ring_args below.
  Result<u32> ring_setup(u32 sq_slots, u32 cq_slots);
  Result<u32> ring_submit(u32 ring_id, std::span<const RingSqe> entries);
  Result<std::vector<RingCqe>> ring_wait(u32 ring_id, u32 min_complete, u32 max_reap,
                                         Tid tid = 0);

  // --- Introspection ----------------------------------------------------------------
  // Reads one of the kernel's contract counters by stable name (e.g.
  // "fs/fsyncs"); kNotFound for names outside the published table. The value
  // is monotone in program order: a kstat read is never less than an earlier
  // read of the same name (obs/kstat_refinement VC).
  Result<u64> kstat(std::string_view name);
  // Enumerates every published counter name.
  Result<std::vector<std::string>> kstat_list();

 private:
  // Sends a frame, returns the reply reader payload (after the error word).
  Result<std::vector<u8>> invoke(Writer& frame);

  SyscallDispatcher& dispatcher_;
  Pid pid_;
  CoreId core_;
};

// Argument-frame builders for ring submissions: each returns the byte
// encoding the corresponding synchronous syscall uses after the nr word, so
// a RingSqe{user_data, nr, ring_args::...} is exactly the synchronous frame
// split at the nr boundary. Keeping these next to the Sys facade makes the
// marshalling obligation one definition, not two.
namespace ring_args {

inline std::vector<u8> open(std::string_view path, u32 flags = 0) {
  Writer w;
  w.put_string(path);
  w.put_u32(flags);
  return w.take();
}

inline std::vector<u8> close(Fd fd) {
  Writer w;
  w.put_u32(static_cast<u32>(fd));
  return w.take();
}

inline std::vector<u8> read(Fd fd, usize len) {
  Writer w;
  w.put_u32(static_cast<u32>(fd));
  w.put_u64(len);
  return w.take();
}

inline std::vector<u8> write(Fd fd, std::span<const u8> data) {
  Writer w;
  w.put_u32(static_cast<u32>(fd));
  w.put_bytes(data);
  return w.take();
}

inline std::vector<u8> fsync() { return {}; }

inline std::vector<u8> udp_sendto(Fd fd, NetAddr dst, Port dst_port, std::span<const u8> data) {
  Writer w;
  w.put_u32(static_cast<u32>(fd));
  w.put_u32(dst);
  w.put_u16(dst_port);
  w.put_bytes(data);
  return w.take();
}

inline std::vector<u8> udp_recvfrom(Fd fd) {
  Writer w;
  w.put_u32(static_cast<u32>(fd));
  return w.take();
}

inline std::vector<u8> rtp_send(Fd fd, std::span<const u8> data) {
  Writer w;
  w.put_u32(static_cast<u32>(fd));
  w.put_bytes(data);
  return w.take();
}

inline std::vector<u8> rtp_recv(Fd fd, usize max_len) {
  Writer w;
  w.put_u32(static_cast<u32>(fd));
  w.put_u64(max_len);
  return w.take();
}

inline std::vector<u8> vtp_accept(Fd listener) {
  Writer w;
  w.put_u32(static_cast<u32>(listener));
  return w.take();
}

inline std::vector<u8> vtp_send(Fd fd, std::span<const u8> data) {
  Writer w;
  w.put_u32(static_cast<u32>(fd));
  w.put_bytes(data);
  return w.take();
}

inline std::vector<u8> vtp_recv(Fd fd, usize max_len) {
  Writer w;
  w.put_u32(static_cast<u32>(fd));
  w.put_u64(max_len);
  return w.take();
}

}  // namespace ring_args

}  // namespace vnros

#endif  // VNROS_SRC_KERNEL_SYSCALL_H_
