#include "src/kernel/process.h"

#include "src/base/contracts.h"

namespace vnros {

ProcessDirectoryDs::Response ProcessDirectoryDs::dispatch(const ReadOp& op) const {
  const auto& get = std::get<GetMeta>(op.op);
  auto it = procs.find(get.pid);
  if (it == procs.end()) {
    return Response{ErrorCode::kNotFound, get.pid, 0, 0, {}};
  }
  return Response{ErrorCode::kOk, get.pid, it->second.exit_code, 0, it->second};
}

ProcessDirectoryDs::Response ProcessDirectoryDs::dispatch_mut(const WriteOp& op) {
  if (const auto* s = std::get_if<Spawn>(&op.op)) {
    if (s->parent != kInvalidPid) {
      auto p = procs.find(s->parent);
      if (p == procs.end() || p->second.state != ProcState::kAlive) {
        return Response{ErrorCode::kNotFound, kInvalidPid, 0, 0, {}};
      }
    }
    Pid pid = next_pid++;
    procs[pid] = Meta{s->parent, ProcState::kAlive, 0, 0};
    return Response{ErrorCode::kOk, pid, 0, 0, procs[pid]};
  }

  if (const auto* e = std::get_if<Exit>(&op.op)) {
    auto it = procs.find(e->pid);
    if (it == procs.end() || it->second.state != ProcState::kAlive) {
      return Response{ErrorCode::kNotFound, e->pid, 0, 0, {}};
    }
    it->second.state = ProcState::kZombie;
    it->second.exit_code = e->code;
    return Response{ErrorCode::kOk, e->pid, e->code, 0, it->second};
  }

  if (const auto* r = std::get_if<Reap>(&op.op)) {
    auto it = procs.find(r->child);
    if (it == procs.end() || it->second.state == ProcState::kReaped) {
      return Response{ErrorCode::kNotFound, r->child, 0, 0, {}};
    }
    if (it->second.parent != r->parent) {
      return Response{ErrorCode::kNotPermitted, r->child, 0, 0, {}};
    }
    if (it->second.state == ProcState::kAlive) {
      return Response{ErrorCode::kWouldBlock, r->child, 0, 0, {}};
    }
    i32 code = it->second.exit_code;
    it->second.state = ProcState::kReaped;
    return Response{ErrorCode::kOk, r->child, code, 0, it->second};
  }

  if (const auto* k = std::get_if<Kill>(&op.op)) {
    if (k->signal == 0 || k->signal >= 64) {
      return Response{ErrorCode::kInvalidArgument, k->pid, 0, 0, {}};
    }
    auto it = procs.find(k->pid);
    if (it == procs.end() || it->second.state != ProcState::kAlive) {
      return Response{ErrorCode::kNotFound, k->pid, 0, 0, {}};
    }
    if (k->signal == kSigKill) {
      it->second.state = ProcState::kZombie;
      it->second.exit_code = -static_cast<i32>(kSigKill);
      return Response{ErrorCode::kOk, k->pid, it->second.exit_code, kSigKill, it->second};
    }
    it->second.pending_signals |= u64{1} << k->signal;
    return Response{ErrorCode::kOk, k->pid, 0, k->signal, it->second};
  }

  if (const auto* ts = std::get_if<TakeSignal>(&op.op)) {
    auto it = procs.find(ts->pid);
    if (it == procs.end() || it->second.state != ProcState::kAlive) {
      return Response{ErrorCode::kNotFound, ts->pid, 0, 0, {}};
    }
    if (it->second.pending_signals == 0) {
      return Response{ErrorCode::kOk, ts->pid, 0, 0, it->second};
    }
    u32 sig = static_cast<u32>(__builtin_ctzll(it->second.pending_signals));
    it->second.pending_signals &= ~(u64{1} << sig);
    return Response{ErrorCode::kOk, ts->pid, 0, sig, it->second};
  }

  return Response{ErrorCode::kInvalidArgument, kInvalidPid, 0, 0, {}};
}

Result<Pid> ProcessManager::spawn(const ThreadToken& t, Pid parent) {
  ProcessDirectoryDs::WriteOp op;
  op.op = ProcessDirectoryDs::Spawn{parent};
  auto resp = dir_.execute_mut(t, op);
  if (resp.err != ErrorCode::kOk) {
    return resp.err;
  }
  {
    std::lock_guard<std::mutex> lock(objects_mu_);
    objects_[resp.pid] = std::make_unique<Process>(resp.pid, mem_, frames_);
  }
  VNROS_ENSURES(resp.pid != kInvalidPid);
  return resp.pid;
}

Result<Unit> ProcessManager::exit(const ThreadToken& t, Pid pid, i32 code) {
  ProcessDirectoryDs::WriteOp op;
  op.op = ProcessDirectoryDs::Exit{pid, code};
  auto resp = dir_.execute_mut(t, op);
  if (resp.err != ErrorCode::kOk) {
    return resp.err;
  }
  destroy_object(pid);
  return Unit{};
}

Result<i32> ProcessManager::wait(const ThreadToken& t, Pid parent, Pid child) {
  ProcessDirectoryDs::WriteOp op;
  op.op = ProcessDirectoryDs::Reap{parent, child};
  auto resp = dir_.execute_mut(t, op);
  if (resp.err != ErrorCode::kOk) {
    return resp.err;
  }
  return resp.exit_code;
}

Result<Unit> ProcessManager::kill(const ThreadToken& t, Pid pid, u32 signal) {
  ProcessDirectoryDs::WriteOp op;
  op.op = ProcessDirectoryDs::Kill{pid, signal};
  auto resp = dir_.execute_mut(t, op);
  if (resp.err != ErrorCode::kOk) {
    return resp.err;
  }
  if (signal == kSigKill) {
    destroy_object(pid);
  }
  return Unit{};
}

Result<u32> ProcessManager::take_signal(const ThreadToken& t, Pid pid) {
  ProcessDirectoryDs::WriteOp op;
  op.op = ProcessDirectoryDs::TakeSignal{pid};
  auto resp = dir_.execute_mut(t, op);
  if (resp.err != ErrorCode::kOk) {
    return resp.err;
  }
  return resp.signal;
}

Result<ProcessDirectoryDs::Meta> ProcessManager::meta(const ThreadToken& t, Pid pid) {
  ProcessDirectoryDs::ReadOp op;
  op.op = ProcessDirectoryDs::GetMeta{pid};
  auto resp = dir_.execute(t, op);
  if (resp.err != ErrorCode::kOk) {
    return resp.err;
  }
  return resp.meta;
}

Process* ProcessManager::get(Pid pid) {
  std::lock_guard<std::mutex> lock(objects_mu_);
  auto it = objects_.find(pid);
  return it == objects_.end() ? nullptr : it->second.get();
}

void ProcessManager::destroy_object(Pid pid) {
  std::lock_guard<std::mutex> lock(objects_mu_);
  objects_.erase(pid);
}

usize ProcessManager::live_objects() const {
  std::lock_guard<std::mutex> lock(objects_mu_);
  return objects_.size();
}

}  // namespace vnros
