#include "src/kernel/vm.h"

#include <cstring>

#include "src/base/contracts.h"

namespace vnros {

VmManager::VmManager(PhysMem& mem, FrameAllocator& frames) : mem_(mem), frames_(frames) {
  auto pt = PageTable::create(mem, frames);
  VNROS_CHECK(pt.ok());
  pt_.emplace(std::move(pt.value()));
}

VmManager::~VmManager() {
  // Release every region's frames, then the table's directory frames.
  for (auto& [base, region] : regions_) {
    for (PAddr f : region.frames) {
      if (f != PAddr{0} || !region.lazy) {
        frames_.free(f);
      }
    }
  }
  pt_->clear();
  frames_.free(pt_->root());
}

Result<VAddr> VmManager::mmap(u64 length, Perms perms) {
  return mmap_impl(length, perms, /*lazy=*/false);
}

Result<VAddr> VmManager::mmap_lazy(u64 length, Perms perms) {
  return mmap_impl(length, perms, /*lazy=*/true);
}

Result<VAddr> VmManager::mmap_impl(u64 length, Perms perms, bool lazy) {
  if (length == 0) {
    return ErrorCode::kInvalidArgument;
  }
  std::lock_guard<std::mutex> lock(mu_);
  const u64 pages = (length + kPageSize - 1) / kPageSize;
  VAddr base{next_base_};

  VmRegion region;
  region.length = pages * kPageSize;
  region.perms = perms;
  region.lazy = lazy;

  if (lazy) {
    // Reserve only: PAddr{0} marks an unbacked slot. Nothing enters the page
    // table until the fault path backs the page.
    region.frames.assign(pages, PAddr{0});
  } else {
    // Allocate every backing frame up front, then install the whole region
    // with ONE walk-cached range operation. map_range is atomic, so failure
    // handling collapses to freeing the frames — no per-page unmap rollback.
    region.frames.reserve(pages);
    for (u64 i = 0; i < pages; ++i) {
      auto frame = frames_.alloc_on_node(0);
      if (!frame.ok()) {
        for (PAddr f : region.frames) {
          frames_.free(f);
        }
        return ErrorCode::kNoMemory;
      }
      region.frames.push_back(frame.value());
    }
    auto mapped = pt_->map_range(base, std::span<const PAddr>(region.frames), perms);
    if (!mapped.ok()) {
      for (PAddr f : region.frames) {
        frames_.free(f);
      }
      return mapped.error();
    }
    stats_.eager_pages += pages;
  }

  next_base_ += region.length + kPageSize;  // guard page between regions
  regions_[base.value] = std::move(region);
  VNROS_ENSURES(regions_.count(base.value) == 1);
  return base;
}

Result<PAddr> VmManager::handle_fault(VAddr va, Access access) {
  // Find the region covering va.
  auto it = regions_.upper_bound(va.value);
  if (it == regions_.begin()) {
    return ErrorCode::kNotMapped;
  }
  --it;
  VmRegion& region = it->second;
  if (va.value >= it->first + region.length || !region.lazy) {
    return ErrorCode::kNotMapped;
  }
  if (access == Access::kWrite && !region.perms.writable) {
    return ErrorCode::kNotPermitted;
  }
  u64 page_index = (va.value - it->first) / kPageSize;
  VNROS_INVARIANT(region.frames[page_index] == PAddr{0});  // else PT would have hit
  auto frame = frames_.alloc_on_node(0);
  if (!frame.ok()) {
    return ErrorCode::kNoMemory;  // overcommit bites at touch time
  }
  VAddr page_base{it->first + page_index * kPageSize};
  auto mapped = pt_->map_frame(page_base, frame.value(), kPageSize, region.perms);
  if (!mapped.ok()) {
    frames_.free(frame.value());
    return mapped.error();
  }
  region.frames[page_index] = frame.value();
  ++stats_.faults_served;
  ++stats_.lazy_pages;
  return frame.value().offset(va.page_offset());
}

Result<Unit> VmManager::munmap(VAddr vbase) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = regions_.find(vbase.value);
  if (it == regions_.end()) {
    return ErrorCode::kNotMapped;
  }
  VmRegion& region = it->second;
  if (!region.lazy) {
    // Eager regions are fully mapped: tear the whole range down with one
    // walk-cached batch instead of region.frames.size() root-to-leaf walks.
    auto r = pt_->unmap_range(vbase, region.frames.size());
    VNROS_INVARIANT(r.ok());
    for (PAddr f : region.frames) {
      frames_.free(f);
    }
  } else {
    // Lazy regions may have holes (untouched pages); unmap page by page.
    for (usize i = 0; i < region.frames.size(); ++i) {
      if (region.frames[i] == PAddr{0}) {
        continue;  // never touched: nothing mapped, nothing to free
      }
      auto r = pt_->unmap(vbase.offset(i * kPageSize));
      VNROS_INVARIANT(r.ok());
      frames_.free(region.frames[i]);
    }
  }
  regions_.erase(it);
  VNROS_ENSURES(!pt_->resolve(vbase).ok());
  return Unit{};
}

Result<PAddr> VmManager::translate(VAddr va, Access access) {
  auto r = pt_->resolve(va);
  if (!r.ok()) {
    // The MMU would raise a page fault here; demand paging services it.
    return handle_fault(va, access);
  }
  if (access == Access::kWrite && !r.value().perms.writable) {
    return ErrorCode::kNotPermitted;
  }
  return r.value().paddr;
}

Result<Unit> VmManager::copy_out(VAddr dst, std::span<const u8> src) {
  std::lock_guard<std::mutex> lock(mu_);
  usize done = 0;
  while (done < src.size()) {
    VAddr va = dst.offset(done);
    usize chunk = static_cast<usize>(kPageSize - va.page_offset());
    if (chunk > src.size() - done) {
      chunk = src.size() - done;
    }
    auto pa = translate(va, Access::kWrite);
    if (!pa.ok()) {
      return pa.error();
    }
    mem_.write(pa.value(), src.subspan(done, chunk));
    done += chunk;
  }
  return Unit{};
}

Result<Unit> VmManager::copy_in(VAddr src, std::span<u8> dst) {
  std::lock_guard<std::mutex> lock(mu_);
  usize done = 0;
  while (done < dst.size()) {
    VAddr va = src.offset(done);
    usize chunk = static_cast<usize>(kPageSize - va.page_offset());
    if (chunk > dst.size() - done) {
      chunk = dst.size() - done;
    }
    auto pa = translate(va, Access::kRead);
    if (!pa.ok()) {
      return pa.error();
    }
    mem_.read(pa.value(), dst.subspan(done, chunk));
    done += chunk;
  }
  return Unit{};
}

Result<u32> VmManager::read_u32(VAddr va) {
  u8 buf[4];
  auto r = copy_in(va, std::span<u8>(buf, 4));
  if (!r.ok()) {
    return r.error();
  }
  u32 v;
  std::memcpy(&v, buf, 4);
  return v;
}

Result<Unit> VmManager::write_u32(VAddr va, u32 value) {
  u8 buf[4];
  std::memcpy(buf, &value, 4);
  return copy_out(va, std::span<const u8>(buf, 4));
}

u64 VmManager::mapped_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  u64 total = 0;
  for (const auto& [base, region] : regions_) {
    total += region.length;
  }
  return total;
}

usize VmManager::region_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return regions_.size();
}

Result<usize> VmManager::resident_pages(VAddr region_base) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = regions_.find(region_base.value);
  if (it == regions_.end()) {
    return ErrorCode::kNotMapped;
  }
  usize resident = 0;
  for (PAddr f : it->second.frames) {
    if (!(it->second.lazy && f == PAddr{0})) {
      ++resident;
    }
  }
  return resident;
}

}  // namespace vnros
