// SysRing: io_uring-shaped submission/completion queues on the Sys facade.
//
// A ring is a fixed-slot submission queue (SQ) plus a fixed-slot completion
// queue (CQ), created per process via SysNr::kRingSetup. Each submission
// queue entry (SQE) names one ordinary syscall by number plus its argument
// bytes — encoded exactly as the synchronous frame minus the leading nr —
// and carries a caller-chosen user_data word for correlation. The kernel's
// reactor executes pending SQEs through the same SyscallDispatcher handlers
// as the synchronous path (refinement by construction: the executor IS the
// synchronous transition function) and posts one completion queue entry
// (CQE) per SQE, carrying the same (err, payload) bytes a synchronous reply
// would.
//
// The spec, in the executable style of §3:
//   - exactly-once: every reaped CQE matches exactly one accepted SQE, and
//     every accepted SQE is reaped exactly once (kernel/ring_completion_unique,
//     which also drives CQ overflow and armed fault sites);
//   - refinement: a CQE's (err, payload) equals the synchronous syscall's
//     reply on the same pre-state, byte for byte, and the post-state is the
//     same (kernel/ring_refines_sync);
//   - backpressure is typed: a submission that cannot accept any entry
//     returns kWouldBlock through Result (never silently drops);
//   - completions past CQ capacity spill to an accounted overflow list and
//     are delivered on later reaps — accounting, not loss.
//
// Completion-awareness: an op whose synchronous form returns kWouldBlock
// transiently (udp_recvfrom / rtp_recv with an empty queue) is not completed
// with that error — it stays in flight and completes on a later reactor pass
// once data arrives. A waiter that asks for more completions than are ready
// parks on the existing scheduler machinery (Scheduler::block, the same path
// SimFutex uses) and is woken when a completion is posted; callers that pass
// tid 0 poll instead of parking.
#ifndef VNROS_SRC_KERNEL_RING_H_
#define VNROS_SRC_KERNEL_RING_H_

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "src/base/fault.h"
#include "src/base/result.h"
#include "src/base/serde.h"
#include "src/kernel/scheduler.h"
#include "src/obs/registry.h"

namespace vnros {

// One submission: the syscall number, its argument bytes (same encoding as
// the synchronous frame after the nr word), and the caller's correlation id.
struct RingSqe {
  u64 user_data = 0;
  u32 op = 0;  // a SysNr value
  std::vector<u8> args;
};

// One completion: the originating SQE's user_data, the syscall's ErrorCode,
// and the same payload bytes a synchronous reply would carry after the
// error word.
struct RingCqe {
  u64 user_data = 0;
  u32 err = 0;  // an ErrorCode value
  std::vector<u8> payload;
};

// Aggregate counters for the kstat surface (ring/submitted, ring/completed,
// ring/sq_full, ring/cq_depth_p99).
class SysRingTable {
 public:
  // Slot bounds: a ring must have at least one slot each side; the cap keeps
  // a hostile setup frame from driving giant kernel allocations.
  static constexpr u32 kMaxSlots = 4096;

  // Executes one syscall by number against the owning kernel's state: the
  // dispatcher's own switch, so a ring-executed op IS the synchronous
  // transition. Appends the reply payload and returns the ErrorCode.
  using Executor = std::function<ErrorCode(u32 op, Reader& args, Writer& payload)>;

  explicit SysRingTable(Scheduler& sched);

  // kRingSetup: creates a ring, returns its id (per-process namespace).
  Result<u32> setup(Pid pid, u32 sq_slots, u32 cq_slots);

  // kRingSubmit: accepts a prefix of `entries` bounded by free SQ slots and
  // runs a reactor pass. Returns the number accepted (possibly < entries
  // size — each refused entry is counted in sq_full); if no entry fits the
  // typed error is kWouldBlock. Ops outside the ring-submittable set are
  // accepted and completed immediately with kUnsupported (exactly-once is
  // preserved: refusal is only ever about capacity).
  Result<u32> submit(Pid pid, u32 ring_id, std::span<const RingSqe> entries,
                     const Executor& exec, const ThreadToken& sched_tok);

  // kRingWait: runs a reactor pass, then reaps up to max_reap completions
  // (CQ first, then the overflow list, FIFO). If fewer than min_complete are
  // ready and ops are still in flight, a caller with a nonzero tid parks on
  // the scheduler (woken when a completion is posted) and gets kWouldBlock;
  // a tid-0 caller just gets what is ready. With nothing in flight the call
  // always returns immediately — there is nothing to wait for.
  Result<std::vector<RingCqe>> wait(Pid pid, u32 ring_id, u32 min_complete, u32 max_reap,
                                    Tid tid, const Executor& exec,
                                    const ThreadToken& sched_tok);

  // Tears down all of a process's rings (process exit). In-flight SQEs are
  // discarded with their process; counters keep their totals.
  void destroy_rings(Pid pid);

  // --- thin views for kstat + tests ---------------------------------------
  u64 submitted() const { return c_submitted_->value(); }
  u64 completed() const { return c_completed_->value(); }
  u64 sq_full() const { return c_sq_full_->value(); }
  u64 cq_overflows() const { return c_cq_overflow_->value(); }
  u64 cq_depth_p99() const { return h_cq_depth_->snapshot().percentile(99.0); }
  // In-flight (accepted, not yet completed) SQEs on one ring; 0 for unknown
  // rings. Test/VC helper for the submitted == completed + in_flight books.
  usize in_flight(Pid pid, u32 ring_id) const;
  // Completions ready to reap (CQ + overflow) on one ring.
  usize ready(Pid pid, u32 ring_id) const;

 private:
  struct Pending {
    RingSqe sqe;
    u64 submit_pass = 0;    // reactor pass number at accept (latency books)
    bool deferred = false;  // "syscall/ring_complete" fired once already
  };

  struct Ring {
    u32 sq_slots = 0;
    u32 cq_slots = 0;
    std::deque<Pending> sq;       // accepted, not yet completed (FIFO)
    std::deque<RingCqe> cq;       // completed, not yet reaped
    std::deque<RingCqe> overflow; // completions past cq_slots (accounted)
    std::deque<Tid> waiters;      // parked ring_wait callers
  };

  // Executes every pending SQE once; ops that complete are moved to the CQ
  // (or overflow) and parked waiters are woken. Returns completions posted.
  // Caller holds mu_.
  usize reactor_pass(Ring& ring, const Executor& exec, const ThreadToken& sched_tok);
  void post_completion(Ring& ring, RingCqe cqe);

  Scheduler& sched_;
  mutable std::mutex mu_;
  std::map<std::pair<Pid, u32>, Ring> rings_;
  u32 next_ring_id_ = 1;

  // Fault sites: submit-side injects a typed error as the op's completion
  // (the SQE is accepted and completed exactly once, just with the injected
  // error); complete-side defers a ready completion by one reactor pass
  // (deterministic slow completion). Chaos arms both over the blockstore's
  // ring-served workload.
  FaultSite* submit_fault_ = &FaultRegistry::global().site("syscall/ring_submit");
  FaultSite* complete_fault_ = &FaultRegistry::global().site("syscall/ring_complete");

  // Per-kernel-instance obs instruments (kstat reads these thin views).
  std::string obs_prefix_;
  Counter* c_submitted_;
  Counter* c_completed_;
  Counter* c_sq_full_;
  Counter* c_cq_overflow_;
  Histogram* h_cq_depth_;           // CQ+overflow depth at each post
  Histogram* h_completion_passes_;  // reactor passes from accept to post
  u64 pass_counter_ = 0;
};

// True for the syscalls a ring accepts: the data-plane I/O subset whose
// handlers are self-contained transitions (no process-control side effects,
// no nested rings). Everything else completes with kUnsupported.
bool ring_submittable(u32 op);

}  // namespace vnros

#endif  // VNROS_SRC_KERNEL_RING_H_
