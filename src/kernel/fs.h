// The filesystem (Table 2 "filesystem" row): an inode-based in-memory tree
// with a write-ahead journal on the simulated block device and crash
// recovery.
//
// Persistence model (what the crash-consistency VCs check):
//   - every mutating operation appends one journal record (CRC-protected,
//     epoch-tagged) before being acknowledged;
//   - fsync() is the only durability barrier (BlockDevice::flush);
//   - after a simulated crash (volatile cache partially lost), recover()
//     replays the longest valid journal prefix. The recovered state is
//     therefore the state after some prefix of acknowledged operations, and
//     the prefix provably includes everything acknowledged before the last
//     completed fsync — exactly the contract applications (and the paper's
//     S3 storage-node example) rely on.
//   - when the journal area fills, fsync() compacts: a full-state checkpoint
//     is written and the journal restarts under a new epoch. Crash at any
//     point of compaction recovers either the old or the new state, never a
//     mix (epoch tagging).
//
// The abstract state is FsAbsState: which directories exist and what bytes
// each file holds. kernel/fs_* VCs drive MemFs and the FsModel reference
// interpreter in lockstep and diff the abstractions after every step.
#ifndef VNROS_SRC_KERNEL_FS_H_
#define VNROS_SRC_KERNEL_FS_H_

#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "src/base/result.h"
#include "src/base/types.h"
#include "src/hw/block_device.h"
#include "src/obs/registry.h"

namespace vnros {

struct FileStat {
  u64 inode = 0;
  u64 size = 0;
  bool is_dir = false;

  bool operator==(const FileStat&) const = default;
};

// Abstract filesystem state ("/" is implicit and always a directory).
struct FsAbsState {
  std::set<std::string> dirs;                         // absolute paths
  std::map<std::string, std::vector<u8>> files;       // absolute path -> bytes

  bool operator==(const FsAbsState&) const = default;
};

// Snapshot of the filesystem's obs counters (see stats()).
struct FsStats {
  u64 journal_records = 0;
  u64 journal_bytes = 0;
  u64 checkpoints = 0;
  u64 fsyncs = 0;
};

class MemFs {
 public:
  // Purely in-memory filesystem (no persistence; journaling disabled).
  MemFs();

  // mkfs: formats `dev` (superblock + empty journal) and attaches.
  static Result<MemFs> format(BlockDevice& dev);

  // Mounts `dev` after a crash or clean shutdown: loads the checkpoint (if
  // any) and replays the longest valid journal prefix of the current epoch.
  static Result<MemFs> recover(BlockDevice& dev);

  MemFs(MemFs&&) = default;
  MemFs& operator=(MemFs&&) = default;

  // --- Namespace operations -------------------------------------------------
  Result<Unit> mkdir(std::string_view path);
  Result<Unit> rmdir(std::string_view path);            // must be empty
  Result<Unit> create(std::string_view path);           // empty regular file
  Result<Unit> unlink(std::string_view path);           // remove regular file
  // POSIX replace semantics: an existing destination *file* is atomically
  // replaced (old bytes unreachable from the instant the rename commits),
  // which is what makes write-temp-then-rename a crash-safe publish. A
  // directory destination is rejected with kIsDirectory; a directory source
  // never replaces a file (kNotDirectory).
  Result<Unit> rename(std::string_view from, std::string_view to);
  Result<std::vector<std::string>> readdir(std::string_view path) const;
  Result<FileStat> stat(std::string_view path) const;

  // --- Data operations -------------------------------------------------------
  // Reads up to out.size() bytes from `offset`; returns bytes read (0 at or
  // past EOF — the read_spec's min(buffer.len, size - offset) semantics).
  Result<u64> read(std::string_view path, u64 offset, std::span<u8> out) const;

  // Writes at `offset`, zero-filling any gap, extending the file. Returns
  // bytes written (always data.size() on success).
  Result<u64> write(std::string_view path, u64 offset, std::span<const u8> data);

  Result<Unit> truncate(std::string_view path, u64 new_size);

  // Durability barrier; may compact the journal into a checkpoint.
  Result<Unit> fsync();

  // --- Introspection ----------------------------------------------------------
  FsAbsState view() const;

  // Thin view over the obs counters ("fs<N>/..."): race-free merged reads.
  FsStats stats() const {
    return FsStats{c_journal_records_->value(), c_journal_bytes_->value(),
                   c_checkpoints_->value(), c_fsyncs_->value()};
  }
  bool has_device() const { return dev_ != nullptr; }
  u64 journal_head_sector() const { return journal_head_; }

 private:
  struct Inode {
    bool is_dir = false;
    std::vector<u8> data;                 // file payload
    std::map<std::string, u64> entries;   // dir contents: name -> ino
  };

  explicit MemFs(BlockDevice* dev);

  // Path helpers. Canonical absolute paths: "/a/b"; "/" is the root.
  static Result<std::vector<std::string>> split_path(std::string_view path);
  Result<u64> lookup(std::string_view path) const;                    // ino of path
  Result<std::pair<u64, std::string>> lookup_parent(std::string_view path) const;

  // The unjournaled core of each mutation (used by both the public ops and
  // journal replay, so replay is bit-identical to first execution).
  Result<Unit> do_mkdir(std::string_view path);
  Result<Unit> do_rmdir(std::string_view path);
  Result<Unit> do_create(std::string_view path);
  Result<Unit> do_unlink(std::string_view path);
  Result<Unit> do_rename(std::string_view from, std::string_view to);
  Result<u64> do_write(std::string_view path, u64 offset, std::span<const u8> data);
  Result<Unit> do_truncate(std::string_view path, u64 new_size);

  // Undo support: when a mutation applied in memory but its journal record
  // could not be written (device I/O error), the mutation is rolled back so
  // a failed operation is never visible — I/O errors propagate without
  // corrupting metadata (kernel/fs_io_error_* VCs).
  std::vector<u8> file_data_locked(std::string_view path) const;
  void set_file_data_locked(std::string_view path, std::vector<u8> data);

  // Journaling.
  Result<Unit> journal_append(std::span<const u8> payload);
  Result<Unit> write_superblock();
  Result<Unit> checkpoint_locked();
  std::vector<u8> serialize_state_locked() const;
  Result<Unit> load_state(std::span<const u8> bytes);
  Result<Unit> replay_journal();

  u64 journal_start_sector() const;
  u64 journal_capacity_sectors() const;

  // unique_ptr keeps MemFs movable (factories return it by value).
  mutable std::unique_ptr<std::mutex> mu_ = std::make_unique<std::mutex>();
  BlockDevice* dev_ = nullptr;
  std::map<u64, Inode> inodes_;
  u64 next_ino_ = 2;  // 1 is the root
  u64 epoch_ = 1;
  bool ckpt_valid_ = false;
  u64 ckpt_sectors_ = 0;
  u64 journal_head_ = 0;  // absolute sector of the next record
  // Metrics ("fs<N>/..."). Pointers (registry-owned, process lifetime) so
  // MemFs stays movable; journal commits and fsyncs are also traced as spans.
  Counter* c_journal_records_ = nullptr;
  Counter* c_journal_bytes_ = nullptr;
  Counter* c_checkpoints_ = nullptr;
  Counter* c_fsyncs_ = nullptr;
  Histogram* h_journal_record_bytes_ = nullptr;
  u32 span_journal_commit_ = 0;
  u32 span_fsync_ = 0;
};

}  // namespace vnros

#endif  // VNROS_SRC_KERNEL_FS_H_
