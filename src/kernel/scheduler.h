// The scheduler (Table 2 "scheduler" row), built the NrOS way: the scheduler
// state is a sequential data structure replicated with NR.
//
// SchedulerDs is the sequential structure: per-core ready queues, a blocked
// set, and the running thread per core. Its ops are deterministic, so NR
// replicas stay identical and any core can dispatch scheduling decisions
// through its local replica.
//
// Spec (kernel/sched_* VCs): the scheduler refines the abstract "thread
// multiplexer" — every thread is in exactly one of {ready, running, blocked,
// exited}; pick() returns a ready thread of the highest priority class and
// rotates fairly within a class (round-robin: a thread is not picked twice
// while another equally-eligible thread waits); wake() moves blocked →
// ready; block()/exit() remove from the core.
#ifndef VNROS_SRC_KERNEL_SCHEDULER_H_
#define VNROS_SRC_KERNEL_SCHEDULER_H_

#include <deque>
#include <map>
#include <optional>
#include <set>
#include <variant>
#include <vector>

#include "src/base/result.h"
#include "src/base/types.h"
#include "src/hw/topology.h"
#include "src/kernel/nr_shards.h"
#include "src/nr/node_replicated.h"

namespace vnros {

enum class ThreadState : u8 {
  kReady,
  kRunning,
  kBlocked,
  kExited,
};

// The sequential scheduler structure (NR Dispatch).
struct SchedulerDs {
  struct ThreadInfo {
    ThreadState state = ThreadState::kReady;
    u32 priority = 1;       // higher runs first
    CoreId affinity = 0;    // home core (queue it returns to)
    Pid owner = kInvalidPid;

    bool operator==(const ThreadInfo&) const = default;
  };

  struct AddThread {
    Tid tid;
    Pid owner;
    u32 priority;
    CoreId affinity;
  };
  struct Block {
    Tid tid;
  };
  struct Wake {
    Tid tid;
  };
  struct Exit {
    Tid tid;
  };
  struct Pick {
    CoreId core;
  };
  struct Yield {
    CoreId core;
  };

  struct WriteOp {
    std::variant<std::monostate, AddThread, Block, Wake, Exit, Pick, Yield> op;
  };
  struct GetState {
    Tid tid;
  };
  struct ReadOp {
    std::variant<GetState> op;
  };
  struct Response {
    ErrorCode err = ErrorCode::kOk;
    Tid tid = 0;                      // Pick/Yield: selected thread (0 = idle)
    ThreadState state = ThreadState::kExited;  // GetState
  };

  explicit SchedulerDs(u32 num_cores = 1) : queues(num_cores), running(num_cores, 0) {}

  std::map<Tid, ThreadInfo> threads;
  std::vector<std::deque<Tid>> queues;  // per-core ready queues
  std::vector<Tid> running;             // 0 = idle

  Response dispatch(const ReadOp& op) const;
  Response dispatch_mut(const WriteOp& op);

  // Queue helpers (sequential logic, no locking — NR provides that).
  void enqueue(Tid tid);
  std::optional<Tid> dequeue_best(CoreId core);

  bool operator==(const SchedulerDs&) const = default;
};

// The kernel-facing scheduler: SchedulerDs replicated with NR.
class Scheduler {
 public:
  Scheduler(const Topology& topo, NrConfig config = KernelNrShards::sched())
      : repl_(topo, SchedulerDs(topo.num_cores()), config) {}

  ThreadToken register_core(CoreId core) { return repl_.register_thread(core); }

  ErrorCode add_thread(const ThreadToken& t, Tid tid, Pid owner, u32 priority, CoreId affinity);
  ErrorCode block(const ThreadToken& t, Tid tid);
  ErrorCode wake(const ThreadToken& t, Tid tid);
  ErrorCode exit_thread(const ThreadToken& t, Tid tid);

  // Picks the next thread to run on `core` (context switch); 0 means idle.
  Tid pick(const ThreadToken& t, CoreId core);
  // Current thread yields: goes back to the ready queue, next one runs.
  Tid yield(const ThreadToken& t, CoreId core);

  Result<ThreadState> thread_state(const ThreadToken& t, Tid tid);

  void sync(const ThreadToken& t) { repl_.sync(t); }
  const SchedulerDs& peek(usize replica) const { return repl_.peek(replica); }
  usize num_replicas() const { return repl_.num_replicas(); }

 private:
  NodeReplicated<SchedulerDs> repl_;
};

}  // namespace vnros

#endif  // VNROS_SRC_KERNEL_SCHEDULER_H_
