// Registration hook for the kernel verification conditions.
#ifndef VNROS_SRC_KERNEL_VCS_H_
#define VNROS_SRC_KERNEL_VCS_H_

#include "src/spec/vc.h"

namespace vnros {

// Registers kernel/* VCs: frame-allocator set semantics, VM mapping + user
// copy obligations, scheduler state-machine refinement, process-directory
// refinement, filesystem model equivalence and crash consistency, syscall
// marshalling round-trips and the read_spec contract, futex lost-wakeup
// freedom.
void register_kernel_vcs(VcRegistry& registry);

}  // namespace vnros

#endif  // VNROS_SRC_KERNEL_VCS_H_
