// Refinement checking: the executable counterpart of the paper's §4.4
// refinement theorem.
//
//   "Refinement says that for every behavior of the hardware execution there
//    exists a corresponding execution of the abstract model with the same
//    behavior."
//
// A static verifier discharges that for *all* behaviours; this checker
// discharges it for every behaviour in a systematically generated family
// (exhaustive over small action spaces, seeded-random over large ones) by:
//
//   1. abstracting the implementation state with its interpretation function
//      (`view()`),
//   2. executing one concrete action, observing its return value,
//   3. abstracting again, and
//   4. asserting Spec::next(pre_view, label, post_view).
//
// The interpretation function and transition relation are the same artifacts
// a Verus proof would use — only the quantifier over behaviours is weakened
// from "all" to "all generated". Every check is registered as a verification
// condition so Figure 1a's CDF covers them.
#ifndef VNROS_SRC_SPEC_REFINEMENT_H_
#define VNROS_SRC_SPEC_REFINEMENT_H_

#include <functional>
#include <sstream>
#include <string>

#include "src/base/rng.h"
#include "src/spec/state_machine.h"

namespace vnros {

struct RefinementReport {
  bool ok = true;
  usize steps_checked = 0;
  std::string failure;  // empty when ok

  explicit operator bool() const { return ok; }
};

// Drives an implementation and checks each step against `Spec`.
//
// The harness is parameterized by two callables so it works for page tables,
// filesystems, schedulers and sockets alike:
//   - view():  () -> Spec::State                  (interpretation function)
//   - step(i): (usize action_index) -> Spec::Label (execute action i, return
//              the observable label; the label records args + return value)
template <SpecMachine Spec>
class RefinementChecker {
 public:
  using State = typename Spec::State;
  using Label = typename Spec::Label;

  RefinementChecker(std::function<State()> view, std::function<Label(usize)> step)
      : view_(std::move(view)), step_(std::move(step)) {}

  // Runs `num_actions` steps; action indices are passed through to `step`,
  // which decides (exhaustively or via its own Rng) what to execute.
  RefinementReport run(usize num_actions) {
    RefinementReport report;
    State pre = view_();
    for (usize i = 0; i < num_actions; ++i) {
      Label label = step_(i);
      State post = view_();
      if (!Spec::next(pre, label, post)) {
        report.ok = false;
        std::ostringstream oss;
        oss << "refinement violated at action " << i << ": " << describe(label);
        report.failure = oss.str();
        return report;
      }
      ++report.steps_checked;
      pre = post;
    }
    return report;
  }

 private:
  static std::string describe(const Label& label) {
    if constexpr (requires(const Label& l) { l.describe(); }) {
      return label.describe();
    } else {
      return "<label>";
    }
  }

  std::function<State()> view_;
  std::function<Label(usize)> step_;
};

}  // namespace vnros

#endif  // VNROS_SRC_SPEC_REFINEMENT_H_
