// Self-checks for the verification substrate. A checker that cannot reject
// known-bad artifacts proves nothing; these VCs pin the framework's own
// soundness on canonical positive and negative cases, plus the base-library
// obligations every other module's checks rest on.
#include "src/spec/self_vcs.h"

#include <string>
#include <thread>
#include <vector>

#include "src/base/crc.h"
#include "src/base/rng.h"
#include "src/base/serde.h"
#include <algorithm>

#include "src/spec/history.h"
#include "src/spec/linearizability.h"
#include "src/spec/ownership.h"
#include "src/spec/refinement.h"

namespace vnros {
namespace {

// Register model: write(v) -> v, read() -> current.
struct RegModel {
  struct Op {
    bool is_write = false;
    u64 value = 0;
  };
  using Ret = u64;
  using State = u64;

  static State initial() { return 0; }
  static std::pair<State, Ret> apply(const State& s, const Op& op) {
    if (op.is_write) {
      return {op.value, op.value};
    }
    return {s, s};
  }
};

using RegEvent = HistoryEvent<RegModel::Op, u64>;

VcOutcome vc_lin_accepts_sequential() {
  // w(1) r->1 w(2) r->2, strictly sequential: must be accepted.
  std::vector<RegEvent> h = {
      {{true, 1}, 1, 0, 1, 0},
      {{false, 0}, 1, 2, 3, 0},
      {{true, 2}, 2, 4, 5, 0},
      {{false, 0}, 2, 6, 7, 0},
  };
  if (!LinChecker<RegModel>::check(h)) {
    return VcOutcome::fail("checker rejected a sequential history");
  }
  return VcOutcome::pass();
}

VcOutcome vc_lin_accepts_overlapping() {
  // Two overlapping writes; a read that follows both may see either -- here
  // it sees the one that must be linearized second.
  std::vector<RegEvent> h = {
      {{true, 1}, 1, 0, 5, 0},
      {{true, 2}, 2, 1, 4, 1},
      {{false, 0}, 1, 6, 7, 1},  // w(2) then w(1): read sees 1
  };
  if (!LinChecker<RegModel>::check(h)) {
    return VcOutcome::fail("checker rejected a valid overlapping history");
  }
  return VcOutcome::pass();
}

VcOutcome vc_lin_rejects_stale_read() {
  // w(1) completes strictly before r; r returning 0 is a real violation.
  std::vector<RegEvent> h = {
      {{true, 1}, 1, 0, 1, 0},
      {{false, 0}, 0, 2, 3, 1},
  };
  if (LinChecker<RegModel>::check(h)) {
    return VcOutcome::fail("checker accepted a stale read");
  }
  return VcOutcome::pass();
}

VcOutcome vc_lin_rejects_lost_update() {
  // Counter semantics via RegModel won't do; use write-then-read where the
  // read observes a value never written: must be rejected.
  std::vector<RegEvent> h = {
      {{true, 7}, 7, 0, 1, 0},
      {{false, 0}, 9, 2, 3, 1},  // 9 was never written
  };
  if (LinChecker<RegModel>::check(h)) {
    return VcOutcome::fail("checker accepted a read of a phantom value");
  }
  return VcOutcome::pass();
}

// The refinement harness must flag a deliberately wrong implementation.
struct ToySpec {
  using State = u64;
  struct Label {
    u64 delta;
    u64 result;
  };
  static bool next(const State& pre, const Label& l, const State& post) {
    return post == pre + l.delta && l.result == post;
  }
};

VcOutcome vc_refinement_flags_violation() {
  u64 good_state = 0;
  RefinementChecker<ToySpec> good([&] { return good_state; },
                                  [&](usize) {
                                    good_state += 3;
                                    return ToySpec::Label{3, good_state};
                                  });
  if (!good.run(50)) {
    return VcOutcome::fail("harness rejected a correct implementation");
  }
  u64 bad_state = 0;
  usize step = 0;
  RefinementChecker<ToySpec> bad([&] { return bad_state; },
                                 [&](usize) {
                                   // Injected bug: every 7th step adds 4 but claims 3.
                                   ++step;
                                   bad_state += (step % 7 == 0) ? 4 : 3;
                                   return ToySpec::Label{3, bad_state};
                                 });
  auto report = bad.run(50);
  if (report.ok) {
    return VcOutcome::fail("harness missed an injected refinement violation");
  }
  if (report.steps_checked >= 7) {
    return VcOutcome::fail("violation reported later than it occurred");
  }
  return VcOutcome::pass();
}

VcOutcome vc_borrow_discipline() {
  BorrowCell cell;
  if (!cell.try_borrow_shared() || !cell.try_borrow_shared()) {
    return VcOutcome::fail("two shared borrows must coexist");
  }
  if (cell.try_borrow_exclusive()) {
    return VcOutcome::fail("exclusive borrow granted alongside shared");
  }
  cell.release_shared();
  cell.release_shared();
  if (!cell.try_borrow_exclusive()) {
    return VcOutcome::fail("exclusive borrow denied on a free cell");
  }
  if (cell.try_borrow_shared() || cell.try_borrow_exclusive()) {
    return VcOutcome::fail("borrow granted alongside an exclusive one");
  }
  cell.release_exclusive();
  if (!cell.is_free()) {
    return VcOutcome::fail("cell not free after balanced borrows");
  }
  return VcOutcome::pass();
}

VcOutcome vc_serde_roundtrip(u64 seed) {
  Rng rng(seed);
  for (int i = 0; i < 300; ++i) {
    u8 a = static_cast<u8>(rng.next_u64());
    u16 b = static_cast<u16>(rng.next_u64());
    u32 c = rng.next_u32();
    u64 d = rng.next_u64();
    i64 e = static_cast<i64>(rng.next_u64());
    bool f = rng.chance(1, 2);
    std::vector<u8> bytes(rng.next_below(100));
    for (auto& x : bytes) {
      x = static_cast<u8>(rng.next_u64());
    }
    std::string s(rng.next_below(50), 'x');

    Writer w;
    w.put_u8(a);
    w.put_u16(b);
    w.put_u32(c);
    w.put_u64(d);
    w.put_i64(e);
    w.put_bool(f);
    w.put_bytes(bytes);
    w.put_string(s);

    Reader r(w.bytes());
    if (r.get_u8() != a || r.get_u16() != b || r.get_u32() != c || r.get_u64() != d ||
        r.get_i64() != e || r.get_bool() != f || r.get_bytes() != bytes ||
        r.get_string() != s || !r.exhausted()) {
      return VcOutcome::fail("serde round-trip mismatch");
    }
    // Every strict prefix must decode to nullopt somewhere, never past-end.
    Reader rt(std::span<const u8>(w.bytes().data(), w.size() > 0 ? w.size() - 1 : 0));
    (void)rt.get_u8();
  }
  // Non-canonical booleans are malformed.
  std::vector<u8> bad{2};
  Reader rb(bad);
  if (rb.get_bool()) {
    return VcOutcome::fail("non-canonical bool accepted");
  }
  return VcOutcome::pass();
}

VcOutcome vc_crc_known_answers() {
  // RFC 3720 test vector: crc32c("123456789") == 0xE3069283.
  const char* digits = "123456789";
  if (crc32c(string_bytes(digits)) != 0xE3069283u) {
    return VcOutcome::fail("crc32c known-answer failed");
  }
  // CRC-64/XZ of "123456789" == 0x995DC9BBDF1939FA.
  if (crc64(string_bytes(digits)) != 0x995DC9BBDF1939FAull) {
    return VcOutcome::fail("crc64 known-answer failed");
  }
  // Incremental == one-shot.
  auto part1 = string_bytes("12345");
  auto part2 = string_bytes("6789");
  if (crc32c(part2, crc32c(part1)) != crc32c(string_bytes(digits))) {
    return VcOutcome::fail("incremental crc32c mismatch");
  }
  return VcOutcome::pass();
}

VcOutcome vc_rng_determinism() {
  Rng a(1234), b(1234), c(1235);
  bool diverged = false;
  for (int i = 0; i < 1000; ++i) {
    u64 va = a.next_u64();
    if (va != b.next_u64()) {
      return VcOutcome::fail("same seed produced different streams");
    }
    if (va != c.next_u64()) {
      diverged = true;
    }
  }
  if (!diverged) {
    return VcOutcome::fail("different seeds produced the same stream");
  }
  // next_below stays below its bound.
  Rng r(7);
  for (int i = 0; i < 2000; ++i) {
    u64 bound = 1 + (r.next_u64() % 1000);
    if (r.next_below(bound) >= bound) {
      return VcOutcome::fail("next_below exceeded its bound");
    }
  }
  return VcOutcome::pass();
}


// History recording produces well-formed, strictly ordered timestamps — the
// precondition for linearizability checking to mean anything.
VcOutcome vc_history_recorder_wellformed() {
  HistoryRecorder<int, int> rec;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&rec, t] {
      for (int i = 0; i < 200; ++i) {
        u64 ts = rec.invoke();
        rec.respond(static_cast<u32>(t), i, i, ts);
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  auto events = rec.take();
  if (events.size() != 800) {
    return VcOutcome::fail("events lost");
  }
  std::vector<u64> stamps;
  for (const auto& e : events) {
    if (e.invoke_ts >= e.response_ts) {
      return VcOutcome::fail("invoke not before response");
    }
    stamps.push_back(e.invoke_ts);
    stamps.push_back(e.response_ts);
  }
  std::sort(stamps.begin(), stamps.end());
  for (usize i = 1; i < stamps.size(); ++i) {
    if (stamps[i] == stamps[i - 1]) {
      return VcOutcome::fail("duplicate timestamps: precedence ill-defined");
    }
  }
  return VcOutcome::pass();
}

}  // namespace

void register_spec_vcs(VcRegistry& reg) {
  reg.add("spec/lin_accepts_sequential", VcCategory::kConcurrency,
          [] { return vc_lin_accepts_sequential(); });
  reg.add("spec/lin_accepts_overlapping", VcCategory::kConcurrency,
          [] { return vc_lin_accepts_overlapping(); });
  reg.add("spec/lin_rejects_stale_read", VcCategory::kConcurrency,
          [] { return vc_lin_rejects_stale_read(); });
  reg.add("spec/lin_rejects_phantom_value", VcCategory::kConcurrency,
          [] { return vc_lin_rejects_lost_update(); });
  reg.add("spec/refinement_flags_violation", VcCategory::kRefinement,
          [] { return vc_refinement_flags_violation(); });
  reg.add("spec/borrow_discipline", VcCategory::kMemorySafety,
          [] { return vc_borrow_discipline(); });
  for (u64 seed = 1; seed <= 2; ++seed) {
    reg.add("base/serde_roundtrip_seed" + std::to_string(seed), VcCategory::kMemorySafety,
            [seed] { return vc_serde_roundtrip(seed); });
  }
  reg.add("base/crc_known_answers", VcCategory::kMemorySafety,
          [] { return vc_crc_known_answers(); });
  reg.add("base/rng_determinism", VcCategory::kMemorySafety, [] { return vc_rng_determinism(); });
  reg.add("spec/history_recorder_wellformed", VcCategory::kConcurrency,
          [] { return vc_history_recorder_wellformed(); });
}

}  // namespace vnros
