// Registration hook for the verification framework's own checks.
#ifndef VNROS_SRC_SPEC_SELF_VCS_H_
#define VNROS_SRC_SPEC_SELF_VCS_H_

#include "src/spec/vc.h"

namespace vnros {

// Registers spec/* and base/* VCs: the linearizability checker accepts valid
// and rejects invalid histories (checker soundness/completeness on known
// cases), the refinement harness flags injected violations, borrow cells
// enforce the aliasing discipline, serde round-trips, CRC known-answer
// vectors, and RNG determinism.
void register_spec_vcs(VcRegistry& registry);

}  // namespace vnros

#endif  // VNROS_SRC_SPEC_SELF_VCS_H_
