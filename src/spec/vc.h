// Verification-condition registry and timed runner.
//
// A Verus development is a set of verification conditions the SMT solver
// discharges; the paper's Figure 1a is the CDF of the time to verify each of
// the page-table prototype's 220 VCs (max ≈11 s, total ≈40 s).
//
// In vnros, a VC is a named executable check — typically a bounded-exhaustive
// or property-based refinement/invariant check — registered here by each
// module. The runner executes every VC with contracts enabled, times it, and
// reports pass/fail; bench/fig1a_vc_cdf prints the timing CDF, and the
// Table 1/Table 2 reports derive vnros' coverage rows from which categories
// have registered, passing VCs.
//
// Registration is explicit (each module exports a register_*_vcs(VcRegistry&)
// function) so binaries choose their VC universe and no static-initializer
// order games are needed.
#ifndef VNROS_SRC_SPEC_VC_H_
#define VNROS_SRC_SPEC_VC_H_

#include <functional>
#include <string>
#include <vector>

#include "src/base/types.h"

namespace vnros {

// Outcome of one verification condition.
struct VcOutcome {
  bool passed = true;
  std::string message;  // diagnostic on failure

  static VcOutcome pass() { return {true, {}}; }
  static VcOutcome fail(std::string msg) { return {false, std::move(msg)}; }
};

// Component categories mirror Table 2's rows (plus the crosscutting rows of
// Table 1); the table benches aggregate VC coverage by category.
enum class VcCategory : u8 {
  kMemorySafety,      // Table 1: kernel memory safety analogue
  kRefinement,        // Table 1: specification refinement
  kConcurrency,       // NR linearizability, lock specs
  kScheduler,         // Table 2 rows from here on
  kMemoryManagement,
  kFilesystem,
  kDrivers,
  kProcessManagement,
  kThreadsSync,
  kNetworkStack,
  kSystemLibraries,
  kApplication,       // the verified client application (beyond Table 2)
};

const char* vc_category_name(VcCategory c);

struct Vc {
  std::string name;           // e.g. "pt/map_frame_refines_hl_spec"
  VcCategory category;
  std::function<VcOutcome()> check;
};

struct VcResult {
  std::string name;
  VcCategory category;
  bool passed = false;
  double seconds = 0.0;
  std::string message;
};

struct VcRunSummary {
  std::vector<VcResult> results;
  usize total = 0;
  usize passed = 0;
  double total_seconds = 0.0;
  double max_seconds = 0.0;

  bool all_passed() const { return passed == total; }
  // Whether at least one VC in `category` exists and all in it passed.
  bool category_covered(VcCategory category) const;
};

class VcRegistry {
 public:
  void add(std::string name, VcCategory category, std::function<VcOutcome()> check);

  usize size() const { return vcs_.size(); }
  const std::vector<Vc>& vcs() const { return vcs_; }

  // Runs every registered VC with contracts enabled, timing each.
  // `verbose` prints one line per VC as it completes.
  VcRunSummary run_all(bool verbose = false) const;

  // Runs only VCs whose name starts with `prefix`.
  VcRunSummary run_prefix(const std::string& prefix, bool verbose = false) const;

 private:
  std::vector<Vc> vcs_;
};

// Registers every module's VCs. This is the whole-system "verification
// project"; the count printed by fig1a corresponds to the paper's 220.
void register_all_vcs(VcRegistry& registry);

}  // namespace vnros

#endif  // VNROS_SRC_SPEC_VC_H_
