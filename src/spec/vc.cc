#include "src/spec/vc.h"

#include <chrono>
#include <cstdio>

#include "src/base/contracts.h"

namespace vnros {

const char* vc_category_name(VcCategory c) {
  switch (c) {
    case VcCategory::kMemorySafety: return "memory-safety";
    case VcCategory::kRefinement: return "refinement";
    case VcCategory::kConcurrency: return "concurrency";
    case VcCategory::kScheduler: return "scheduler";
    case VcCategory::kMemoryManagement: return "memory-management";
    case VcCategory::kFilesystem: return "filesystem";
    case VcCategory::kDrivers: return "drivers";
    case VcCategory::kProcessManagement: return "process-management";
    case VcCategory::kThreadsSync: return "threads-sync";
    case VcCategory::kNetworkStack: return "network-stack";
    case VcCategory::kSystemLibraries: return "system-libraries";
    case VcCategory::kApplication: return "application";
  }
  return "unknown";
}

bool VcRunSummary::category_covered(VcCategory category) const {
  bool any = false;
  for (const auto& r : results) {
    if (r.category == category) {
      any = true;
      if (!r.passed) {
        return false;
      }
    }
  }
  return any;
}

void VcRegistry::add(std::string name, VcCategory category, std::function<VcOutcome()> check) {
  vcs_.push_back(Vc{std::move(name), category, std::move(check)});
}

VcRunSummary VcRegistry::run_prefix(const std::string& prefix, bool verbose) const {
  VcRunSummary summary;
  ScopedContracts contracts_on;
  for (const auto& vc : vcs_) {
    if (vc.name.rfind(prefix, 0) != 0) {
      continue;
    }
    auto start = std::chrono::steady_clock::now();
    VcOutcome outcome = vc.check();
    auto end = std::chrono::steady_clock::now();
    double secs = std::chrono::duration<double>(end - start).count();

    summary.results.push_back(
        VcResult{vc.name, vc.category, outcome.passed, secs, outcome.message});
    ++summary.total;
    if (outcome.passed) {
      ++summary.passed;
    }
    summary.total_seconds += secs;
    if (secs > summary.max_seconds) {
      summary.max_seconds = secs;
    }
    if (verbose) {
      std::printf("  [%s] %-58s %8.3f s%s%s\n", outcome.passed ? "ok" : "FAIL", vc.name.c_str(),
                  secs, outcome.message.empty() ? "" : " : ",
                  outcome.message.empty() ? "" : outcome.message.c_str());
      std::fflush(stdout);
    }
  }
  return summary;
}

VcRunSummary VcRegistry::run_all(bool verbose) const { return run_prefix("", verbose); }

}  // namespace vnros
