// Linearizability checking (Wing & Gong / Lowe-style search).
//
// §4.3: "IronSync verified the node replication algorithm ... showing that a
// sequential data structure replicated with NR remains linearizable." vnros
// checks the same statement executably: concurrent histories recorded
// against nr::NodeReplicated are searched for a linearization that the
// sequential model admits. No linearization existing == a real linearizability
// violation (the checker is sound and complete for the recorded history).
//
// Model requirements:
//   - Model::State      — hashable, equality-comparable sequential state;
//   - Model::Op         — operation description;
//   - Model::Ret        — observed return value (equality-comparable);
//   - static State initial();
//   - static std::pair<State, Ret> apply(const State&, const Op&);
//
// The search is the classic DFS over "minimal" pending operations with
// memoization on (linearized-set, state). Exponential in the worst case, so
// test histories are kept small (a few threads, tens of ops) — enough to
// catch ordering bugs, standard practice for executable lin-checking.
#ifndef VNROS_SRC_SPEC_LINEARIZABILITY_H_
#define VNROS_SRC_SPEC_LINEARIZABILITY_H_

#include <algorithm>
#include <vector>

#include "src/base/types.h"

namespace vnros {

// One completed operation in a concurrent history. Timestamps come from a
// single atomic counter, so invoke < response and precedence is well-defined.
template <typename Op, typename Ret>
struct HistoryEvent {
  Op op;
  Ret ret;
  u64 invoke_ts = 0;
  u64 response_ts = 0;
  u32 thread = 0;
};

template <typename Model>
class LinChecker {
 public:
  using Op = typename Model::Op;
  using Ret = typename Model::Ret;
  using Event = HistoryEvent<Op, Ret>;

  // Returns true iff `history` (complete: all ops responded) is linearizable
  // with respect to Model.
  static bool check(std::vector<Event> history) {
    // Sort by invocation for a stable exploration order.
    std::sort(history.begin(), history.end(),
              [](const Event& a, const Event& b) { return a.invoke_ts < b.invoke_ts; });
    const usize n = history.size();
    if (n == 0) {
      return true;
    }
    if (n > 64) {
      // The bitmask memoization supports up to 64 events; callers keep
      // histories small. Split longer histories before checking.
      return false;
    }
    std::vector<StateMask> memo;
    return dfs(history, 0, Model::initial(), memo);
  }

 private:
  struct StateMask {
    u64 mask;
    typename Model::State state;
  };

  // An event is "minimal" in the remaining set if no other remaining event
  // responded before it was invoked (i.e. nothing must precede it).
  static bool is_minimal(const std::vector<Event>& h, u64 remaining_mask, usize idx) {
    for (usize j = 0; j < h.size(); ++j) {
      if (j == idx || ((remaining_mask >> j) & 1) == 0) {
        continue;
      }
      if (h[j].response_ts < h[idx].invoke_ts) {
        return false;
      }
    }
    return true;
  }

  static bool dfs(const std::vector<Event>& h, u64 done_mask, typename Model::State state,
                  std::vector<StateMask>& memo) {
    const usize n = h.size();
    u64 all = (n == 64) ? ~u64{0} : ((u64{1} << n) - 1);
    if (done_mask == all) {
      return true;
    }
    // Memoize on (done_mask, state): revisiting the same pair cannot succeed
    // if it failed before.
    for (const auto& sm : memo) {
      if (sm.mask == done_mask && sm.state == state) {
        return false;
      }
    }
    u64 remaining = all & ~done_mask;
    for (usize i = 0; i < n; ++i) {
      if (((remaining >> i) & 1) == 0) {
        continue;
      }
      if (!is_minimal(h, remaining, i)) {
        continue;
      }
      auto [next_state, ret] = Model::apply(state, h[i].op);
      if (!(ret == h[i].ret)) {
        continue;  // the model would have returned something else here
      }
      if (dfs(h, done_mask | (u64{1} << i), next_state, memo)) {
        return true;
      }
    }
    memo.push_back(StateMask{done_mask, std::move(state)});
    return false;
  }
};

}  // namespace vnros

#endif  // VNROS_SRC_SPEC_LINEARIZABILITY_H_
