// Concurrent history recording for linearizability checks.
//
// Threads wrap each operation in invoke()/respond() calls; timestamps come
// from one shared atomic counter so the precedence order is a total order on
// recording events (standard for executable linearizability checking).
#ifndef VNROS_SRC_SPEC_HISTORY_H_
#define VNROS_SRC_SPEC_HISTORY_H_

#include <atomic>
#include <mutex>
#include <vector>

#include "src/spec/linearizability.h"

namespace vnros {

template <typename Op, typename Ret>
class HistoryRecorder {
 public:
  using Event = HistoryEvent<Op, Ret>;

  // Returns the invocation timestamp to pass to respond().
  u64 invoke() { return clock_.fetch_add(1, std::memory_order_acq_rel); }

  void respond(u32 thread, Op op, Ret ret, u64 invoke_ts) {
    u64 response_ts = clock_.fetch_add(1, std::memory_order_acq_rel);
    std::lock_guard<std::mutex> lock(mu_);
    events_.push_back(Event{std::move(op), std::move(ret), invoke_ts, response_ts, thread});
  }

  std::vector<Event> take() {
    std::lock_guard<std::mutex> lock(mu_);
    return std::move(events_);
  }

 private:
  std::atomic<u64> clock_{0};
  std::mutex mu_;
  std::vector<Event> events_;
};

}  // namespace vnros

#endif  // VNROS_SRC_SPEC_HISTORY_H_
