// Runtime ownership tokens: the data-race-freedom obligation.
//
// §3 lists data-race freedom as the third syscall verification obligation:
// "memory holding syscall data (e.g. the memory backing buffer) will not be
// modified or accessed by other threads while the syscall is being handled.
// ... If the application is in Rust, its unique ownership properties can
// help: the mutable reference to buffer is guaranteed to be unique by the
// type system."
//
// C++ has no borrow checker, so vnros substitutes a *dynamic* one: a
// BorrowCell wraps a buffer and enforces Rust's aliasing discipline at run
// time — any number of shared borrows XOR exactly one exclusive borrow.
// Syscall entry takes the appropriate borrow for the duration of the handler;
// a concurrent conflicting access trips a contract instead of silently racing.
#ifndef VNROS_SRC_SPEC_OWNERSHIP_H_
#define VNROS_SRC_SPEC_OWNERSHIP_H_

#include <atomic>

#include "src/base/contracts.h"
#include "src/base/types.h"

namespace vnros {

// Borrow state encoding: 0 = free, >0 = that many shared borrows,
// -1 = exclusively borrowed.
class BorrowCell {
 public:
  // Attempts to take a shared (read) borrow; returns success.
  bool try_borrow_shared() {
    i64 cur = state_.load(std::memory_order_acquire);
    while (cur >= 0) {
      if (state_.compare_exchange_weak(cur, cur + 1, std::memory_order_acq_rel)) {
        return true;
      }
    }
    return false;
  }

  // Attempts to take the exclusive (write) borrow; returns success.
  bool try_borrow_exclusive() {
    i64 expected = 0;
    return state_.compare_exchange_strong(expected, -1, std::memory_order_acq_rel);
  }

  void release_shared() {
    i64 prev = state_.fetch_sub(1, std::memory_order_acq_rel);
    VNROS_CHECK(prev > 0);
  }

  void release_exclusive() {
    i64 expected = -1;
    bool ok = state_.compare_exchange_strong(expected, 0, std::memory_order_acq_rel);
    VNROS_CHECK(ok);
  }

  bool is_free() const { return state_.load(std::memory_order_acquire) == 0; }

 private:
  std::atomic<i64> state_{0};
};

// RAII borrows. Construction *asserts* availability (a conflict is a
// data-race-freedom violation, i.e. a verification failure, not a retryable
// condition).
class SharedBorrow {
 public:
  explicit SharedBorrow(BorrowCell& cell) : cell_(cell) {
    bool ok = cell_.try_borrow_shared();
    VNROS_CHECK(ok);
  }
  ~SharedBorrow() { cell_.release_shared(); }

  SharedBorrow(const SharedBorrow&) = delete;
  SharedBorrow& operator=(const SharedBorrow&) = delete;

 private:
  BorrowCell& cell_;
};

class ExclusiveBorrow {
 public:
  explicit ExclusiveBorrow(BorrowCell& cell) : cell_(cell) {
    bool ok = cell_.try_borrow_exclusive();
    VNROS_CHECK(ok);
  }
  ~ExclusiveBorrow() { cell_.release_exclusive(); }

  ExclusiveBorrow(const ExclusiveBorrow&) = delete;
  ExclusiveBorrow& operator=(const ExclusiveBorrow&) = delete;

 private:
  BorrowCell& cell_;
};

}  // namespace vnros

#endif  // VNROS_SRC_SPEC_OWNERSHIP_H_
