// The reliable FIFO pipe: the abstract spec VTP's byte streams must refine.
//
// One direction of a connection is modeled as a pair of byte sequences
//   sent      — everything the sending application pushed, in order
//   delivered — everything the receiving application popped, in order
// with two obligations:
//
//   SAFETY (always):    delivered is a *prefix* of sent — no reordering, no
//                       duplication, no corruption, no invention.
//   LIVENESS (quiesce): once the fabric is fair (every retransmission has
//                       nonzero delivery probability, partitions healed) and
//                       the implementation is driven long enough,
//                       delivered == sent.
//
// The net/vtp_refines_pipe VC family drives the concrete stack through an
// adversarial fabric (loss + duplication + reorder + partition), mirrors
// every application-level send/recv into a PipeSpec per direction, and
// checks the safety clause at every step and the liveness clause at quiesce.
// This is the same interpretation-function shape as src/spec/refinement.h,
// specialized to byte streams (the view of a transport is simply "which
// bytes crossed each endpoint").
#ifndef VNROS_SRC_SPEC_PIPE_H_
#define VNROS_SRC_SPEC_PIPE_H_

#include <span>
#include <sstream>
#include <string>
#include <vector>

#include "src/base/types.h"

namespace vnros {

class PipeSpec {
 public:
  // The sending application handed these bytes to the transport.
  void push(std::span<const u8> bytes) {
    sent_.insert(sent_.end(), bytes.begin(), bytes.end());
  }

  // The receiving application popped these bytes out of the transport.
  // Returns false (and records a diagnosis) on the first safety violation.
  bool pop(std::span<const u8> bytes) {
    for (u8 b : bytes) {
      if (delivered_len_ >= sent_.size()) {
        fail("delivered more bytes than were ever sent", delivered_len_);
        return false;
      }
      if (sent_[delivered_len_] != b) {
        fail("delivered byte diverges from the sent stream", delivered_len_);
        return false;
      }
      ++delivered_len_;
    }
    return true;
  }

  // SAFETY: holds by construction after every successful pop().
  bool prefix_ok() const { return failure_.empty(); }
  // LIVENESS at quiesce: the whole sent stream came out the far end.
  bool complete() const { return failure_.empty() && delivered_len_ == sent_.size(); }

  usize sent_len() const { return sent_.size(); }
  usize delivered_len() const { return delivered_len_; }
  const std::string& failure() const { return failure_; }

 private:
  void fail(const char* what, usize at) {
    if (!failure_.empty()) {
      return;
    }
    std::ostringstream oss;
    oss << what << " at offset " << at << " (sent=" << sent_.size()
        << " delivered=" << delivered_len_ << ")";
    failure_ = oss.str();
  }

  std::vector<u8> sent_;
  usize delivered_len_ = 0;
  std::string failure_;
};

}  // namespace vnros

#endif  // VNROS_SRC_SPEC_PIPE_H_
