// Specification state machines.
//
// The paper (§3) specifies the OS as a state machine: "The high-level spec
// for the system call is a state machine, whose state contains the file
// descriptors' current state. Execution of the syscall corresponds to a
// transition, which relates the old state pre to the new state post."
//
// A spec in vnros is a type S with:
//   - S::State   — the abstract state (value type, equality-comparable);
//   - S::Label   — an observable transition label: which operation ran, with
//                  which arguments, and what it returned;
//   - static State init(...)                    — initial abstract state;
//   - static bool next(pre, label, post)        — the transition relation.
//
// next() is a *relation*, not a function: it judges whether (pre, post) is an
// allowed step under `label`, exactly like the paper's read_spec(pre, post,
// fd, buffer, read_len). Implementations refine a spec when every concrete
// step's abstraction is an allowed transition (src/spec/refinement.h).
#ifndef VNROS_SRC_SPEC_STATE_MACHINE_H_
#define VNROS_SRC_SPEC_STATE_MACHINE_H_

#include <concepts>

namespace vnros {

template <typename S>
concept SpecMachine = requires(const typename S::State& pre, const typename S::Label& label,
                               const typename S::State& post) {
  { S::next(pre, label, post) } -> std::convertible_to<bool>;
  requires std::equality_comparable<typename S::State>;
};

}  // namespace vnros

#endif  // VNROS_SRC_SPEC_STATE_MACHINE_H_
