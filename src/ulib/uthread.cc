#include "src/ulib/uthread.h"

namespace vnros {

UScheduler::~UScheduler() {
  for (UTask::Handle h : all_) {
    if (h) {
      h.destroy();
    }
  }
}

usize UScheduler::spawn(UTask task) {
  UTask::Handle h = task.handle();
  VNROS_CHECK(h && !h.done());
  h.promise().scheduler = this;
  usize id = all_.size();
  all_.push_back(h);
  ready_.push_back(h);
  ++live_;
  return id;
}

usize UScheduler::id_of(UTask::Handle h) const {
  for (usize i = 0; i < all_.size(); ++i) {
    if (all_[i] == h) {
      return i;
    }
  }
  return ~usize{0};
}

void UScheduler::make_ready(UTask::Handle h) {
  VNROS_REQUIRES(!h.done());  // U4: completed tasks never run again
  ready_.push_back(h);
}

bool UScheduler::step() {
  if (ready_.empty()) {
    return false;
  }
  UTask::Handle h = ready_.front();
  ready_.pop_front();
  ++resumptions_;
  trace_.push_back(id_of(h));
  h.resume();
  if (h.done()) {
    VNROS_CHECK(live_ > 0);
    --live_;
  }
  return true;
}

u64 UScheduler::run() {
  u64 before = resumptions_;
  while (step()) {
  }
  // U2: run() only returns with nothing runnable; any still-live task is
  // parked on a channel no one will ever send to — a deadlock the caller
  // should know about (surface via contract, like a lost-wakeup detector).
  VNROS_ENSURES(live_ == 0);
  return resumptions_ - before;
}

}  // namespace vnros
