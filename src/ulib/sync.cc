// sync is header-only; this file anchors the translation unit so the header
// is compiled standalone once.
#include "src/ulib/sync.h"
