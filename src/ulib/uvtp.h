// VTP stream sockets for green threads: co_await accept/send/recv.
//
// UVtp is the typed face of URingExecutor for the kVtp* syscalls. The three
// ring-parkable ops (accept, send, recv) become awaitables that submit one
// SQE and park the uthread until the kernel's reactor delivers the CQE —
// a transient kWouldBlock (empty accept queue, full send buffer, nothing
// received yet) never completes the op, it just stays parked, so a uthread
// written as straight-line code blocks exactly where a thread would.
// listen/connect/close stay synchronous: they complete immediately at the
// dispatcher and gain nothing from a ring round-trip.
//
// Send keeps stream semantics: the awaited result is how many bytes the
// transport accepted (possibly fewer than offered); send_all loops until the
// whole span is buffered. recv resolves with the popped bytes, kPipeClosed
// once the peer's FIN drains, or the connection's typed terminal error.
#ifndef VNROS_SRC_ULIB_UVTP_H_
#define VNROS_SRC_ULIB_UVTP_H_

#include <span>
#include <utility>
#include <vector>

#include "src/base/result.h"
#include "src/base/serde.h"
#include "src/kernel/syscall.h"
#include "src/ulib/uring.h"
#include "src/ulib/uthread.h"

namespace vnros {

class UVtp {
 public:
  UVtp(URingExecutor& exec, Sys& sys) : exec_(exec), sys_(sys) {}

  // --- Synchronous (not ring-parkable) ---------------------------------------
  Result<Fd> listen(Port port, usize backlog = 16) { return sys_.vtp_listen(port, backlog); }
  Result<Fd> connect(NetAddr dst, Port dst_port, Port src_port) {
    return sys_.vtp_connect(dst, dst_port, src_port);
  }
  Result<Unit> close(Fd fd) { return sys_.vtp_close(fd); }

  // --- Awaitables ------------------------------------------------------------
  // An OpAwaiter whose resume value is decoded into the typed result the
  // synchronous Sys method would have returned.
  template <typename T>
  struct Typed {
    URingExecutor::OpAwaiter inner;
    T (*decode)(RingOpResult);
    bool await_ready() { return inner.await_ready(); }
    void await_suspend(UTask::Handle h) { inner.await_suspend(h); }
    T await_resume() { return decode(inner.await_resume()); }
  };

  // Parks until an established connection is queued; resumes with its fd.
  Typed<Result<Fd>> accept(Fd listener) {
    return {exec_.submit(SysNr::kVtpAccept, ring_args::vtp_accept(listener)), decode_fd};
  }

  // Parks while the send buffer is full; resumes with the bytes accepted.
  Typed<Result<u64>> send(Fd fd, std::span<const u8> data) {
    return {exec_.submit(SysNr::kVtpSend, ring_args::vtp_send(fd, data)), decode_sent};
  }

  // Parks until in-order bytes (or the peer's FIN / a typed error) arrive.
  Typed<Result<std::vector<u8>>> recv(Fd fd, usize max_len) {
    return {exec_.submit(SysNr::kVtpRecv, ring_args::vtp_recv(fd, max_len)), decode_bytes};
  }

  // Convenience coroutine: awaits send() until the whole span is buffered.
  UTask send_all(Fd fd, std::vector<u8> data, Result<Unit>* out) {
    usize off = 0;
    while (off < data.size()) {
      auto n = co_await send(fd, std::span<const u8>(data.data() + off, data.size() - off));
      if (!n.ok()) {
        *out = n.error();
        co_return;
      }
      off += static_cast<usize>(n.value());
    }
    *out = Unit{};
  }

 private:
  static Result<Fd> decode_fd(RingOpResult r) {
    if (r.err != ErrorCode::kOk) {
      return r.err;
    }
    Reader rd(r.payload);
    auto fd = rd.get_u32();
    if (!fd) {
      return ErrorCode::kCorrupted;
    }
    return static_cast<Fd>(*fd);
  }

  static Result<u64> decode_sent(RingOpResult r) {
    if (r.err != ErrorCode::kOk) {
      return r.err;
    }
    Reader rd(r.payload);
    auto n = rd.get_u64();
    if (!n) {
      return ErrorCode::kCorrupted;
    }
    return *n;
  }

  static Result<std::vector<u8>> decode_bytes(RingOpResult r) {
    if (r.err != ErrorCode::kOk) {
      return r.err;
    }
    Reader rd(r.payload);
    auto data = rd.get_bytes();
    if (!data) {
      return ErrorCode::kCorrupted;
    }
    return std::move(*data);
  }

  URingExecutor& exec_;
  Sys& sys_;
};

}  // namespace vnros

#endif  // VNROS_SRC_ULIB_UVTP_H_
