// User-space memory allocator (Table 2 "system libraries").
//
// A first-fit free-list allocator over a fixed arena, with boundary-tag
// coalescing. The paper notes that NrOS "provides ... a memory allocator" in
// user space; this is that component, with its spec made executable:
//
//   A1: allocate() returns a 16-byte-aligned range inside the arena that is
//       disjoint from every other live allocation;
//   A2: free() makes the range reusable; adjacent free blocks coalesce, so
//       after freeing everything the arena is a single free block again
//       (no permanent fragmentation from any alloc/free sequence);
//   A3: accounting identity: live_bytes + free_bytes + header overhead ==
//       arena size, at every step.
//
// Checked by the ulib/alloc_* VCs against a set-of-ranges reference model.
#ifndef VNROS_SRC_ULIB_ALLOC_H_
#define VNROS_SRC_ULIB_ALLOC_H_

#include <optional>
#include <vector>

#include "src/base/contracts.h"
#include "src/base/types.h"

namespace vnros {

class UserAllocator {
 public:
  static constexpr usize kAlignment = 16;
  static constexpr usize kHeaderSize = 32;  // block header, align-rounded

  explicit UserAllocator(usize arena_bytes);

  // Returns the arena offset of a block of >= `size` bytes, or nullopt.
  std::optional<usize> allocate(usize size);

  // Frees the block previously returned at `offset`. Freeing a non-live
  // offset is a contract violation (the double-free bug class).
  void free(usize offset);

  usize arena_size() const { return arena_.size(); }
  usize live_blocks() const;
  usize live_bytes() const;     // payload bytes in live blocks
  usize largest_free() const;   // largest allocatable payload right now

  // A2's executable form: true iff the arena is one free block.
  bool fully_coalesced() const;

  // Walks the block list validating structure: offsets monotone, sizes sum
  // to the arena, no two adjacent free blocks, all headers sane.
  bool check_invariants() const;

 private:
  struct Header {
    u64 size;      // payload bytes (excluding header)
    u64 prev_off;  // offset of previous block's header (self for first)
    u8 live;
    u8 pad[15];
  };
  static_assert(sizeof(Header) <= kHeaderSize);

  Header read_header(usize off) const;
  void write_header(usize off, const Header& h);
  usize next_off(usize off, const Header& h) const { return off + kHeaderSize + h.size; }

  std::vector<u8> arena_;
  usize live_blocks_ = 0;
  usize live_bytes_ = 0;
};

}  // namespace vnros

#endif  // VNROS_SRC_ULIB_ALLOC_H_
