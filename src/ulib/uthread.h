// User-level cooperative thread scheduler (§4.1: NrOS provides "a user-level
// thread scheduler with synchronization primitives" in user space).
//
// Green threads are C++20 coroutines multiplexed onto the calling OS thread
// by a run-queue scheduler: spawn() creates a task, co_await Yield{} is a
// cooperative reschedule point, co_await chan.recv() parks the task until a
// peer sends. Deterministic by construction (FIFO run queue, no preemption),
// which makes its spec executable and exact:
//
//   U1 (fairness): between two consecutive resumptions of a ready task,
//       every other ready task is resumed exactly once (strict round-robin);
//   U2 (completion): run() returns only when every spawned task finished;
//   U3 (no lost wakeups): a task parked on a channel runs again iff a value
//       was sent to that channel, and receives values in FIFO order;
//   U4 (isolation): a task never runs after completing.
//
// Checked by ulib/uthread_* VCs and tests/ulib_test.cc.
#ifndef VNROS_SRC_ULIB_UTHREAD_H_
#define VNROS_SRC_ULIB_UTHREAD_H_

#include <coroutine>
#include <deque>
#include <optional>
#include <vector>

#include "src/base/contracts.h"
#include "src/base/types.h"

namespace vnros {

class UScheduler;

// The coroutine task type managed by UScheduler.
class UTask {
 public:
  struct promise_type {
    UScheduler* scheduler = nullptr;
    bool done_flag = false;

    UTask get_return_object() {
      return UTask{std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    std::suspend_always initial_suspend() noexcept { return {}; }
    std::suspend_always final_suspend() noexcept { return {}; }
    void return_void() { done_flag = true; }
    void unhandled_exception() { VNROS_CHECK(false && "uthread threw"); }
  };

  using Handle = std::coroutine_handle<promise_type>;

  UTask() = default;
  explicit UTask(Handle h) : handle_(h) {}

  Handle handle() const { return handle_; }

 private:
  Handle handle_;
};

// Awaitable: cooperative yield back to the scheduler.
struct Yield {
  bool await_ready() const noexcept { return false; }
  void await_suspend(UTask::Handle h) noexcept;
  void await_resume() const noexcept {}
};

// An unbounded FIFO channel between green threads. recv() parks the calling
// task until a value is available; send() never blocks. A sent value is
// *reserved* for the waiter it wakes (written straight into its awaiter), so
// a later never-parked receiver cannot steal it — that would be exactly the
// lost-wakeup bug class futexes have (U3).
template <typename T>
class UChannel {
 public:
  explicit UChannel(UScheduler& sched) : sched_(&sched) {}

  struct RecvAwaiter {
    UChannel* chan;
    std::optional<T> value;
    UTask::Handle handle{};

    bool await_ready() {
      if (!chan->queue_.empty()) {
        value = std::move(chan->queue_.front());
        chan->queue_.pop_front();
        return true;
      }
      return false;
    }
    void await_suspend(UTask::Handle h) {
      handle = h;
      chan->waiters_.push_back(this);
    }
    T await_resume() {
      VNROS_CHECK(value.has_value());
      return std::move(*value);
    }
  };

  void send(T value);

  RecvAwaiter recv() { return RecvAwaiter{this, std::nullopt}; }

  usize pending() const { return queue_.size(); }
  usize waiters() const { return waiters_.size(); }

 private:
  friend struct RecvAwaiter;

  UScheduler* sched_;
  std::deque<T> queue_;
  std::deque<RecvAwaiter*> waiters_;
};

// The scheduler itself. Single-threaded (green threads share one OS thread);
// all state is plain data.
class UScheduler {
 public:
  UScheduler() = default;
  ~UScheduler();

  UScheduler(const UScheduler&) = delete;
  UScheduler& operator=(const UScheduler&) = delete;

  // Registers a coroutine; it starts running at the next run()/step().
  // Returns a task id (dense, starting at 0).
  usize spawn(UTask task);

  // Runs until every task has completed (U2). Returns resumption count.
  u64 run();

  // Resumes exactly one task (the head of the run queue); returns false when
  // the queue is empty. Exposed so tests can observe scheduling order.
  bool step();

  // Re-queues a parked task (used by channels / custom awaitables).
  void make_ready(UTask::Handle h);

  usize live_tasks() const { return live_; }
  u64 resumptions() const { return resumptions_; }

  // Scheduling trace (task ids in resumption order) for fairness checks.
  const std::vector<usize>& trace() const { return trace_; }
  void clear_trace() { trace_.clear(); }

 private:
  friend struct Yield;

  usize id_of(UTask::Handle h) const;

  std::deque<UTask::Handle> ready_;
  std::vector<UTask::Handle> all_;  // by task id, for traces and cleanup
  usize live_ = 0;
  u64 resumptions_ = 0;
  std::vector<usize> trace_;
};

// --- inline implementations ------------------------------------------------

inline void Yield::await_suspend(UTask::Handle h) noexcept {
  h.promise().scheduler->make_ready(h);
}

template <typename T>
void UChannel<T>::send(T value) {
  if (!waiters_.empty()) {
    RecvAwaiter* waiter = waiters_.front();
    waiters_.pop_front();
    waiter->value = std::move(value);  // reserved: no other task can steal it
    sched_->make_ready(waiter->handle);
    return;
  }
  queue_.push_back(std::move(value));
}

}  // namespace vnros

#endif  // VNROS_SRC_ULIB_UTHREAD_H_
