// Verified user-space synchronization primitives on top of the kernel futex.
//
// §3: "we might expose futexes from the kernel and then verify a userspace
// mutex implementation on top". These are those primitives. FutexMutex is
// the three-state mutex from Drepper's "Futexes are tricky" (the paper's
// reference [14]); the condition variable, semaphore, reader-writer lock and
// barrier are built above it. Each carries its spec as a comment and is
// discharged by the ulib/* VCs (mutual exclusion under contention, no lost
// signals, reader/writer exclusion, barrier rendezvous).
#ifndef VNROS_SRC_ULIB_SYNC_H_
#define VNROS_SRC_ULIB_SYNC_H_

#include <atomic>

#include "src/base/contracts.h"
#include "src/base/types.h"
#include "src/kernel/futex.h"

namespace vnros {

// Spec: standard mutex — between lock() returning and unlock() being called,
// no other thread's lock() returns (mutual exclusion); unlock() with waiters
// present wakes at least one (progress).
//
// State encoding (Drepper): 0 = unlocked, 1 = locked/no waiters,
// 2 = locked/maybe waiters.
class FutexMutex {
 public:
  explicit FutexMutex(FutexTable& futex) : futex_(futex) {}

  void lock() {
    u32 c = 0;
    if (state_.compare_exchange_strong(c, 1, std::memory_order_acquire)) {
      return;  // fast path: uncontended
    }
    do {
      // Announce we may wait: move 1 -> 2 (or observe it already 2).
      if (c == 2 || state_.compare_exchange_strong(c, 2, std::memory_order_acquire)) {
        (void)futex_.wait(&state_, 2);
      }
      c = 0;
    } while (!state_.compare_exchange_strong(c, 2, std::memory_order_acquire));
    // We hold the lock with state 2: conservative, unlock will wake.
  }

  bool try_lock() {
    u32 c = 0;
    return state_.compare_exchange_strong(c, 1, std::memory_order_acquire);
  }

  void unlock() {
    u32 prev = state_.exchange(0, std::memory_order_release);
    VNROS_INVARIANT(prev != 0);  // unlock of an unlocked mutex is a spec violation
    if (prev == 2) {
      futex_.wake(&state_, 1);
    }
  }

  const std::atomic<u32>* word() const { return &state_; }

 private:
  FutexTable& futex_;
  std::atomic<u32> state_{0};
};

// RAII guard.
class MutexGuard {
 public:
  explicit MutexGuard(FutexMutex& mu) : mu_(mu) { mu_.lock(); }
  ~MutexGuard() { mu_.unlock(); }

  MutexGuard(const MutexGuard&) = delete;
  MutexGuard& operator=(const MutexGuard&) = delete;

 private:
  FutexMutex& mu_;
};

// Spec: condition variable with no lost signals for waiters that entered
// wait() before the signal (sequence-count protocol): wait(m) atomically
// releases m and sleeps; notify_one wakes >=1 current waiter; notify_all
// wakes all current waiters. Spurious wakeups allowed (callers loop).
class FutexCondVar {
 public:
  explicit FutexCondVar(FutexTable& futex) : futex_(futex) {}

  void wait(FutexMutex& mu) {
    u32 snapshot = seq_.load(std::memory_order_acquire);
    mu.unlock();
    (void)futex_.wait(&seq_, snapshot);  // returns immediately if seq moved
    mu.lock();
  }

  void notify_one() {
    seq_.fetch_add(1, std::memory_order_release);
    futex_.wake(&seq_, 1);
  }

  void notify_all() {
    seq_.fetch_add(1, std::memory_order_release);
    futex_.wake(&seq_, ~usize{0} >> 1);
  }

 private:
  FutexTable& futex_;
  std::atomic<u32> seq_{0};
};

// Spec: counting semaphore — acquire() returns only after a distinct
// release() "permit"; the count never observably drops below zero; waiters
// block rather than spin.
class FutexSemaphore {
 public:
  FutexSemaphore(FutexTable& futex, u32 initial) : futex_(futex), count_(initial) {}

  void acquire() {
    for (;;) {
      u32 c = count_.load(std::memory_order_acquire);
      while (c > 0) {
        if (count_.compare_exchange_weak(c, c - 1, std::memory_order_acquire)) {
          return;
        }
      }
      (void)futex_.wait(&count_, 0);
    }
  }

  bool try_acquire() {
    u32 c = count_.load(std::memory_order_acquire);
    while (c > 0) {
      if (count_.compare_exchange_weak(c, c - 1, std::memory_order_acquire)) {
        return true;
      }
    }
    return false;
  }

  void release() {
    count_.fetch_add(1, std::memory_order_release);
    futex_.wake(&count_, 1);
  }

  u32 value() const { return count_.load(std::memory_order_acquire); }

 private:
  FutexTable& futex_;
  std::atomic<u32> count_;
};

// Spec: readers-writer lock — any number of readers xor one writer; a
// writer's critical section is mutually exclusive with everything. Built on
// mutex + condvar (writer preference is not guaranteed; starvation-freedom
// is out of scope, as for pthreads' default).
class FutexRwLock {
 public:
  explicit FutexRwLock(FutexTable& futex) : mu_(futex), cv_(futex) {}

  void lock_shared() {
    MutexGuard g(mu_);
    while (writer_) {
      cv_.wait(mu_);
    }
    ++readers_;
  }

  void unlock_shared() {
    MutexGuard g(mu_);
    VNROS_INVARIANT(readers_ > 0);
    if (--readers_ == 0) {
      cv_.notify_all();
    }
  }

  void lock() {
    MutexGuard g(mu_);
    while (writer_ || readers_ > 0) {
      cv_.wait(mu_);
    }
    writer_ = true;
  }

  void unlock() {
    MutexGuard g(mu_);
    VNROS_INVARIANT(writer_);
    writer_ = false;
    cv_.notify_all();
  }

 private:
  FutexMutex mu_;
  FutexCondVar cv_;
  u32 readers_ = 0;
  bool writer_ = false;
};

// Spec: N-party barrier — no participant returns from arrive_and_wait()
// until all N have called it; reusable across generations.
class FutexBarrier {
 public:
  FutexBarrier(FutexTable& futex, u32 parties)
      : mu_(futex), cv_(futex), parties_(parties), waiting_(0) {
    VNROS_CHECK(parties > 0);
  }

  void arrive_and_wait() {
    MutexGuard g(mu_);
    u64 gen = generation_;
    if (++waiting_ == parties_) {
      waiting_ = 0;
      ++generation_;
      cv_.notify_all();
      return;
    }
    while (generation_ == gen) {
      cv_.wait(mu_);
    }
  }

 private:
  FutexMutex mu_;
  FutexCondVar cv_;
  u32 parties_;
  u32 waiting_;
  u64 generation_ = 0;
};

}  // namespace vnros

#endif  // VNROS_SRC_ULIB_SYNC_H_
