// Registration hook for the user-space library verification conditions.
#ifndef VNROS_SRC_ULIB_VCS_H_
#define VNROS_SRC_ULIB_VCS_H_

#include "src/spec/vc.h"

namespace vnros {

// Registers ulib/* VCs: mutex mutual exclusion under real contention,
// condvar no-lost-signal transfer, semaphore permit bounds, rwlock
// reader/writer exclusion, barrier rendezvous, allocator model equivalence
// and coalescing.
void register_ulib_vcs(VcRegistry& registry);

}  // namespace vnros

#endif  // VNROS_SRC_ULIB_VCS_H_
