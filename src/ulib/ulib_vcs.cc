// Verification conditions for the user-space library. The concurrency VCs
// run real host threads against the kernel futex — the same artifact the
// paper proposes verifying ("verify a userspace mutex implementation on top"
// of kernel futexes), checked here by exhausting interleavings statistically
// and instrumenting the critical sections with overlap detectors.
#include "src/ulib/vcs.h"

#include <atomic>
#include <deque>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "src/base/rng.h"
#include "src/kernel/futex.h"
#include "src/ulib/alloc.h"
#include "src/ulib/sync.h"
#include "src/ulib/uthread.h"

namespace vnros {
namespace {

// --- Mutex ---------------------------------------------------------------------

VcOutcome vc_mutex_mutual_exclusion(u32 threads, u32 iters) {
  FutexTable futex;
  FutexMutex mu(futex);
  u64 counter = 0;                 // deliberately non-atomic
  std::atomic<i32> inside{0};      // critical-section overlap detector
  std::atomic<bool> overlap{false};

  std::vector<std::thread> workers;
  workers.reserve(threads);
  for (u32 t = 0; t < threads; ++t) {
    workers.emplace_back([&] {
      for (u32 i = 0; i < iters; ++i) {
        MutexGuard g(mu);
        if (inside.fetch_add(1, std::memory_order_acq_rel) != 0) {
          overlap.store(true);
        }
        ++counter;  // a data race here would lose increments
        inside.fetch_sub(1, std::memory_order_acq_rel);
      }
    });
  }
  for (auto& w : workers) {
    w.join();
  }
  if (overlap.load()) {
    return VcOutcome::fail("two threads were inside the critical section at once");
  }
  if (counter != static_cast<u64>(threads) * iters) {
    return VcOutcome::fail("increments lost: mutual exclusion violated");
  }
  return VcOutcome::pass();
}

VcOutcome vc_mutex_blocks_rather_than_spins() {
  FutexTable futex;
  FutexMutex mu(futex);
  std::atomic<bool> release{false};
  mu.lock();
  std::thread contender([&] {
    mu.lock();
    mu.unlock();
  });
  // Give the contender time to reach the futex.
  while (futex.stats().waits == 0 && !release.load()) {
    std::this_thread::yield();
  }
  mu.unlock();
  contender.join();
  if (futex.stats().waits == 0) {
    return VcOutcome::fail("contended lock never used the futex (busy-waited)");
  }
  if (futex.stats().woken_threads == 0) {
    return VcOutcome::fail("unlock never woke the blocked waiter");
  }
  return VcOutcome::pass();
}

// --- Condvar ----------------------------------------------------------------------

VcOutcome vc_condvar_producer_consumer(u32 producers, u32 consumers, u32 items_per_producer) {
  FutexTable futex;
  FutexMutex mu(futex);
  FutexCondVar not_empty(futex);
  std::deque<u64> queue;
  bool done = false;

  std::atomic<u64> consumed_count{0};
  std::atomic<u64> consumed_sum{0};

  std::vector<std::thread> threads;
  for (u32 p = 0; p < producers; ++p) {
    threads.emplace_back([&, p] {
      for (u32 i = 0; i < items_per_producer; ++i) {
        u64 item = static_cast<u64>(p) * items_per_producer + i + 1;
        {
          MutexGuard g(mu);
          queue.push_back(item);
        }
        not_empty.notify_one();
      }
    });
  }
  for (u32 c = 0; c < consumers; ++c) {
    threads.emplace_back([&] {
      for (;;) {
        u64 item = 0;
        {
          MutexGuard g(mu);
          while (queue.empty() && !done) {
            not_empty.wait(mu);
          }
          if (queue.empty() && done) {
            return;
          }
          item = queue.front();
          queue.pop_front();
        }
        consumed_count.fetch_add(1);
        consumed_sum.fetch_add(item);
      }
    });
  }
  const u64 total = static_cast<u64>(producers) * items_per_producer;
  for (u32 p = 0; p < producers; ++p) {
    threads[p].join();
  }
  // All produced; signal shutdown once the queue drains.
  for (;;) {
    {
      MutexGuard g(mu);
      if (queue.empty()) {
        done = true;
        break;
      }
    }
    std::this_thread::yield();
  }
  not_empty.notify_all();
  for (u32 c = 0; c < consumers; ++c) {
    threads[producers + c].join();
  }
  if (consumed_count.load() != total) {
    return VcOutcome::fail("items lost or duplicated through the condvar queue");
  }
  u64 expect_sum = total * (total + 1) / 2;
  if (consumed_sum.load() != expect_sum) {
    return VcOutcome::fail("item payloads corrupted in transfer");
  }
  return VcOutcome::pass();
}

// --- Semaphore ---------------------------------------------------------------------

VcOutcome vc_semaphore_bounds(u32 permits, u32 threads, u32 iters) {
  FutexTable futex;
  FutexSemaphore sem(futex, permits);
  std::atomic<i32> holders{0};
  std::atomic<i32> high_water{0};

  std::vector<std::thread> workers;
  for (u32 t = 0; t < threads; ++t) {
    workers.emplace_back([&] {
      for (u32 i = 0; i < iters; ++i) {
        sem.acquire();
        i32 now = holders.fetch_add(1, std::memory_order_acq_rel) + 1;
        i32 hw = high_water.load(std::memory_order_relaxed);
        while (now > hw && !high_water.compare_exchange_weak(hw, now)) {
        }
        holders.fetch_sub(1, std::memory_order_acq_rel);
        sem.release();
      }
    });
  }
  for (auto& w : workers) {
    w.join();
  }
  if (high_water.load() > static_cast<i32>(permits)) {
    return VcOutcome::fail("more holders than permits: semaphore bound violated");
  }
  if (sem.value() != permits) {
    return VcOutcome::fail("permit count not restored after balanced acquire/release");
  }
  return VcOutcome::pass();
}

// --- RwLock -------------------------------------------------------------------------

VcOutcome vc_rwlock_exclusion(u32 readers, u32 writers, u32 iters) {
  FutexTable futex;
  FutexRwLock rw(futex);
  std::atomic<i32> active_readers{0};
  std::atomic<i32> active_writers{0};
  std::atomic<bool> violation{false};
  u64 shared_value = 0;

  std::vector<std::thread> threads;
  for (u32 r = 0; r < readers; ++r) {
    threads.emplace_back([&] {
      for (u32 i = 0; i < iters; ++i) {
        rw.lock_shared();
        active_readers.fetch_add(1);
        if (active_writers.load() != 0) {
          violation.store(true);  // reader overlapping a writer
        }
        volatile u64 sink = shared_value;
        (void)sink;
        active_readers.fetch_sub(1);
        rw.unlock_shared();
      }
    });
  }
  for (u32 w = 0; w < writers; ++w) {
    threads.emplace_back([&] {
      for (u32 i = 0; i < iters; ++i) {
        rw.lock();
        if (active_writers.fetch_add(1) != 0 || active_readers.load() != 0) {
          violation.store(true);  // writer overlapping anyone
        }
        ++shared_value;
        active_writers.fetch_sub(1);
        rw.unlock();
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  if (violation.load()) {
    return VcOutcome::fail("reader/writer exclusion violated");
  }
  if (shared_value != static_cast<u64>(writers) * iters) {
    return VcOutcome::fail("writer increments lost");
  }
  return VcOutcome::pass();
}

// --- Barrier ------------------------------------------------------------------------

VcOutcome vc_barrier_rendezvous(u32 parties, u32 phases) {
  FutexTable futex;
  FutexBarrier barrier(futex, parties);
  std::vector<std::atomic<u32>> arrived(phases);
  std::atomic<bool> violation{false};

  std::vector<std::thread> threads;
  for (u32 p = 0; p < parties; ++p) {
    threads.emplace_back([&] {
      for (u32 phase = 0; phase < phases; ++phase) {
        arrived[phase].fetch_add(1, std::memory_order_acq_rel);
        barrier.arrive_and_wait();
        // After the barrier, everyone must have arrived at this phase.
        if (arrived[phase].load(std::memory_order_acquire) != parties) {
          violation.store(true);
        }
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  if (violation.load()) {
    return VcOutcome::fail("a thread passed the barrier before all parties arrived");
  }
  return VcOutcome::pass();
}

// --- Allocator ----------------------------------------------------------------------

VcOutcome vc_alloc_model(u64 seed, usize steps) {
  constexpr usize kArena = 1 << 16;
  UserAllocator alloc(kArena);
  Rng rng(seed);
  struct Block {
    usize off;
    usize size;
  };
  std::vector<Block> live;

  for (usize i = 0; i < steps; ++i) {
    if (live.empty() || rng.chance(3, 5)) {
      usize req = static_cast<usize>(rng.next_range(1, 1500));
      auto off = alloc.allocate(req);
      if (off) {
        usize rounded = (req + UserAllocator::kAlignment - 1) &
                        ~(UserAllocator::kAlignment - 1);
        // A1: aligned and disjoint from all live blocks.
        if (*off % UserAllocator::kAlignment != 0) {
          return VcOutcome::fail("unaligned allocation");
        }
        for (const auto& b : live) {
          if (*off < b.off + b.size && b.off < *off + rounded) {
            return VcOutcome::fail("overlapping allocations");
          }
        }
        live.push_back({*off, rounded});
      }
    } else {
      usize idx = rng.next_below(live.size());
      alloc.free(live[idx].off);
      live[idx] = live.back();
      live.pop_back();
    }
    if (!alloc.check_invariants()) {
      return VcOutcome::fail("allocator invariants violated at step " + std::to_string(i));
    }
    if (alloc.live_blocks() != live.size()) {
      return VcOutcome::fail("live-block accounting diverged");
    }
  }
  // A2: free everything -> one block.
  for (const auto& b : live) {
    alloc.free(b.off);
  }
  if (!alloc.fully_coalesced()) {
    return VcOutcome::fail("arena not fully coalesced after freeing everything");
  }
  return VcOutcome::pass();
}

VcOutcome vc_alloc_reuse_after_churn() {
  constexpr usize kArena = 1 << 14;
  UserAllocator alloc(kArena);
  std::vector<usize> offs;
  while (auto off = alloc.allocate(128)) {
    offs.push_back(*off);
  }
  if (offs.size() < 2) {
    return VcOutcome::fail("arena absorbed too few blocks");
  }
  for (usize off : offs) {
    alloc.free(off);
  }
  // The full arena must be allocatable again in one piece.
  usize whole = alloc.largest_free();
  auto big = alloc.allocate(whole);
  if (!big) {
    return VcOutcome::fail("largest_free() not actually allocatable");
  }
  if (whole != kArena - UserAllocator::kHeaderSize) {
    return VcOutcome::fail("churn permanently fragmented the arena");
  }
  return VcOutcome::pass();
}


// --- Green threads (user-level scheduler) ------------------------------------------

UTask counting_task(UScheduler&, std::vector<int>& log, int id, int rounds) {
  for (int i = 0; i < rounds; ++i) {
    log.push_back(id);
    co_await Yield{};
  }
}

// U1: strict round-robin — with N tasks each yielding R times, the execution
// log is N tasks repeating in a fixed cyclic order.
VcOutcome vc_uthread_round_robin() {
  UScheduler sched;
  std::vector<int> log;
  const int kTasks = 5, kRounds = 20;
  for (int id = 0; id < kTasks; ++id) {
    sched.spawn(counting_task(sched, log, id, kRounds));
  }
  u64 resumptions = sched.run();
  if (sched.live_tasks() != 0) {
    return VcOutcome::fail("tasks still live after run()");
  }
  if (log.size() != usize{kTasks} * kRounds) {
    return VcOutcome::fail("wrong number of executions");
  }
  for (usize i = 0; i < log.size(); ++i) {
    if (log[i] != static_cast<int>(i % kTasks)) {
      return VcOutcome::fail("round-robin order violated at step " + std::to_string(i));
    }
  }
  // Each yield costs exactly one resumption; +1 initial start per task...
  // every loop iteration is one resumption, plus the final return resume.
  if (resumptions != usize{kTasks} * (kRounds + 1)) {
    return VcOutcome::fail("resumption accounting wrong: " + std::to_string(resumptions));
  }
  return VcOutcome::pass();
}

UTask producer_task(UScheduler&, UChannel<int>& chan, int count) {
  for (int i = 1; i <= count; ++i) {
    chan.send(i);
    co_await Yield{};
  }
}

UTask consumer_task(UScheduler&, UChannel<int>& chan, std::vector<int>& got, int count) {
  for (int i = 0; i < count; ++i) {
    int v = co_await chan.recv();
    got.push_back(v);
  }
}

// U3: channel transfer is FIFO, complete, and loses no wakeups regardless of
// producer/consumer interleaving.
VcOutcome vc_uthread_channel_fifo(u64 consumers_first) {
  UScheduler sched;
  UChannel<int> chan(sched);
  std::vector<int> got;
  const int kCount = 200;
  if (consumers_first != 0) {
    sched.spawn(consumer_task(sched, chan, got, kCount));
    sched.spawn(producer_task(sched, chan, kCount));
  } else {
    sched.spawn(producer_task(sched, chan, kCount));
    sched.spawn(consumer_task(sched, chan, got, kCount));
  }
  sched.run();
  if (got.size() != usize{kCount}) {
    return VcOutcome::fail("items lost through the channel");
  }
  for (int i = 0; i < kCount; ++i) {
    if (got[i] != i + 1) {
      return VcOutcome::fail("FIFO order violated");
    }
  }
  if (chan.pending() != 0 || chan.waiters() != 0) {
    return VcOutcome::fail("channel not drained");
  }
  return VcOutcome::pass();
}

UTask pipeline_stage(UScheduler&, UChannel<int>& in, UChannel<int>& out, int n) {
  for (int i = 0; i < n; ++i) {
    int v = co_await in.recv();
    out.send(v * 2);
  }
}

// Multi-stage pipeline of green threads: values traverse 3 stages in order.
VcOutcome vc_uthread_pipeline() {
  UScheduler sched;
  UChannel<int> a(sched), b(sched), c(sched), d(sched);
  const int kN = 50;
  sched.spawn(pipeline_stage(sched, a, b, kN));
  sched.spawn(pipeline_stage(sched, b, c, kN));
  sched.spawn(pipeline_stage(sched, c, d, kN));
  for (int i = 1; i <= kN; ++i) {
    a.send(i);
  }
  sched.run();
  for (int i = 1; i <= kN; ++i) {
    auto awaiter = d.recv();
    if (!awaiter.await_ready()) {
      return VcOutcome::fail("pipeline output missing");
    }
    int v = awaiter.await_resume();
    if (v != i * 8) {
      return VcOutcome::fail("pipeline transformed value wrongly");
    }
  }
  return VcOutcome::pass();
}

}  // namespace

void register_ulib_vcs(VcRegistry& reg) {
  reg.add("ulib/mutex_mutual_exclusion_4t", VcCategory::kThreadsSync,
          [] { return vc_mutex_mutual_exclusion(4, 20'000); });
  reg.add("ulib/mutex_mutual_exclusion_8t", VcCategory::kThreadsSync,
          [] { return vc_mutex_mutual_exclusion(8, 10'000); });
  reg.add("ulib/mutex_blocks_rather_than_spins", VcCategory::kThreadsSync,
          [] { return vc_mutex_blocks_rather_than_spins(); });
  reg.add("ulib/condvar_producer_consumer_1p1c", VcCategory::kThreadsSync,
          [] { return vc_condvar_producer_consumer(1, 1, 20'000); });
  reg.add("ulib/condvar_producer_consumer_4p4c", VcCategory::kThreadsSync,
          [] { return vc_condvar_producer_consumer(4, 4, 5'000); });
  reg.add("ulib/semaphore_bounds_3of8", VcCategory::kThreadsSync,
          [] { return vc_semaphore_bounds(3, 8, 3'000); });
  reg.add("ulib/semaphore_bounds_1of4", VcCategory::kThreadsSync,
          [] { return vc_semaphore_bounds(1, 4, 3'000); });
  reg.add("ulib/rwlock_exclusion", VcCategory::kThreadsSync,
          [] { return vc_rwlock_exclusion(6, 2, 2'000); });
  reg.add("ulib/barrier_rendezvous", VcCategory::kThreadsSync,
          [] { return vc_barrier_rendezvous(6, 50); });
  for (u64 seed = 1; seed <= 4; ++seed) {
    reg.add("ulib/alloc_model_seed" + std::to_string(seed), VcCategory::kSystemLibraries,
            [seed] { return vc_alloc_model(seed, 2'000); });
  }
  reg.add("ulib/alloc_reuse_after_churn", VcCategory::kSystemLibraries,
          [] { return vc_alloc_reuse_after_churn(); });
  reg.add("ulib/uthread_round_robin", VcCategory::kThreadsSync,
          [] { return vc_uthread_round_robin(); });
  reg.add("ulib/uthread_channel_fifo_prod_first", VcCategory::kThreadsSync,
          [] { return vc_uthread_channel_fifo(0); });
  reg.add("ulib/uthread_channel_fifo_cons_first", VcCategory::kThreadsSync,
          [] { return vc_uthread_channel_fifo(1); });
  reg.add("ulib/uthread_pipeline", VcCategory::kSystemLibraries,
          [] { return vc_uthread_pipeline(); });
}

}  // namespace vnros
