// Ring-backed async syscalls for green threads: co_await a kernel SQE.
//
// URingExecutor owns one SysRing on a Sys facade and bridges its completions
// into the UScheduler: submit() returns an awaitable that enqueues one SQE
// and parks the calling uthread; poll() reaps CQEs and makes the matching
// tasks runnable again. The delivery discipline mirrors UChannel (U3): each
// CQE is *reserved* for the awaiter whose user_data it carries — written
// straight into the parked frame before make_ready — so no task can observe
// another task's completion and no wakeup is lost.
//
// Single-threaded like the rest of ulib: the host loop interleaves
// sched.step() with executor.poll(), exactly the way the blockstore serve
// loop pumps its worker ring.
#ifndef VNROS_SRC_ULIB_URING_H_
#define VNROS_SRC_ULIB_URING_H_

#include <map>
#include <optional>
#include <span>
#include <utility>
#include <vector>

#include "src/base/result.h"
#include "src/base/types.h"
#include "src/kernel/syscall.h"
#include "src/ulib/uthread.h"

namespace vnros {

// What a completed ring op resolves to: the same (err, payload) pair the
// synchronous syscall reply carries.
struct RingOpResult {
  ErrorCode err = ErrorCode::kOk;
  std::vector<u8> payload;
};

class URingExecutor {
 public:
  URingExecutor(UScheduler& sched, Sys& sys) : sched_(sched), sys_(sys) {}

  URingExecutor(const URingExecutor&) = delete;
  URingExecutor& operator=(const URingExecutor&) = delete;

  Result<Unit> init(u32 sq_slots = 64, u32 cq_slots = 64) {
    auto id = sys_.ring_setup(sq_slots, cq_slots);
    if (!id.ok()) {
      return id.error();
    }
    ring_ = id.value();
    return Unit{};
  }

  struct OpAwaiter {
    URingExecutor* exec;
    u32 op;
    std::vector<u8> args;
    std::optional<RingOpResult> result;
    UTask::Handle handle{};
    u64 user_data = 0;

    bool await_ready() {
      // Submit eagerly. A rejected submission (SQ full, ring not set up)
      // resolves immediately with the typed error instead of parking the
      // task forever on a completion that will never arrive.
      auto ud = exec->submit_one(op, args);
      if (!ud.ok()) {
        result = RingOpResult{ud.error(), {}};
        return true;
      }
      user_data = ud.value();
      // The submit-side reactor pass may already have queued our CQE; we
      // still suspend and let the next poll() deliver it — completions are
      // only observable through ring_wait, so nothing is lost.
      return false;
    }
    void await_suspend(UTask::Handle h) {
      handle = h;
      exec->waiters_[user_data] = this;
    }
    RingOpResult await_resume() {
      VNROS_CHECK(result.has_value());
      return std::move(*result);
    }
  };

  // co_await executor.submit(nr, ring_args::...) from inside a uthread.
  OpAwaiter submit(u32 op, std::vector<u8> args) {
    return OpAwaiter{this, op, std::move(args), std::nullopt};
  }
  OpAwaiter submit(SysNr op, std::vector<u8> args) {
    return submit(static_cast<u32>(op), std::move(args));
  }

  // Reaps ready completions and re-queues their uthreads. Returns the number
  // delivered. Drive this from the host loop between sched.step() calls; a
  // CQE whose awaiter vanished (task destroyed while parked) is dropped.
  usize poll(u32 max_reap = 64) {
    auto cqes = sys_.ring_wait(ring_, 0, max_reap);
    if (!cqes.ok()) {
      return 0;
    }
    usize delivered = 0;
    for (RingCqe& cqe : cqes.value()) {
      auto it = waiters_.find(cqe.user_data);
      if (it == waiters_.end()) {
        continue;
      }
      OpAwaiter* waiter = it->second;
      waiters_.erase(it);
      waiter->result =
          RingOpResult{static_cast<ErrorCode>(cqe.err), std::move(cqe.payload)};
      sched_.make_ready(waiter->handle);
      ++delivered;
    }
    return delivered;
  }

  // Tasks parked on an in-flight or not-yet-reaped op.
  usize pending() const { return waiters_.size(); }
  u32 ring_id() const { return ring_; }

 private:
  friend struct OpAwaiter;

  Result<u64> submit_one(u32 op, std::span<const u8> args) {
    RingSqe sqe{next_user_data_++, op, std::vector<u8>(args.begin(), args.end())};
    auto accepted = sys_.ring_submit(ring_, std::span<const RingSqe>(&sqe, 1));
    if (!accepted.ok()) {
      return accepted.error();
    }
    if (accepted.value() != 1) {
      return ErrorCode::kWouldBlock;
    }
    return sqe.user_data;
  }

  UScheduler& sched_;
  Sys& sys_;
  u32 ring_ = 0;
  u64 next_user_data_ = 1;
  std::map<u64, OpAwaiter*> waiters_;
};

}  // namespace vnros

#endif  // VNROS_SRC_ULIB_URING_H_
