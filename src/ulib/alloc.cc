#include "src/ulib/alloc.h"

#include <cstring>

namespace vnros {

UserAllocator::UserAllocator(usize arena_bytes) : arena_(arena_bytes, 0) {
  VNROS_CHECK(arena_bytes >= 2 * kHeaderSize);
  Header first{arena_bytes - kHeaderSize, 0, 0, {}};
  write_header(0, first);
}

UserAllocator::Header UserAllocator::read_header(usize off) const {
  Header h;
  std::memcpy(&h, arena_.data() + off, sizeof(Header));
  return h;
}

void UserAllocator::write_header(usize off, const Header& h) {
  std::memcpy(arena_.data() + off, &h, sizeof(Header));
}

std::optional<usize> UserAllocator::allocate(usize size) {
  if (size == 0) {
    size = kAlignment;
  }
  size = (size + kAlignment - 1) & ~(kAlignment - 1);

  usize off = 0;
  while (off < arena_.size()) {
    Header h = read_header(off);
    if (h.live == 0 && h.size >= size) {
      // Split if the remainder can hold another block.
      if (h.size >= size + kHeaderSize + kAlignment) {
        usize rest_off = off + kHeaderSize + size;
        Header rest{h.size - size - kHeaderSize, off, 0, {}};
        write_header(rest_off, rest);
        // Fix the following block's prev pointer.
        usize after = next_off(rest_off, rest);
        if (after < arena_.size()) {
          Header ah = read_header(after);
          ah.prev_off = rest_off;
          write_header(after, ah);
        }
        h.size = size;
      }
      h.live = 1;
      write_header(off, h);
      ++live_blocks_;
      live_bytes_ += h.size;
      VNROS_ENSURES((off + kHeaderSize) % kAlignment == 0);
      return off + kHeaderSize;
    }
    off = next_off(off, h);
  }
  return std::nullopt;
}

void UserAllocator::free(usize payload_offset) {
  VNROS_CHECK(payload_offset >= kHeaderSize && payload_offset < arena_.size());
  usize off = payload_offset - kHeaderSize;
  Header h = read_header(off);
  VNROS_CHECK(h.live == 1);  // double free / wild free
  h.live = 0;
  --live_blocks_;
  live_bytes_ -= h.size;

  // Coalesce with the next block.
  usize nxt = next_off(off, h);
  if (nxt < arena_.size()) {
    Header nh = read_header(nxt);
    if (nh.live == 0) {
      h.size += kHeaderSize + nh.size;
      usize after = next_off(nxt, nh);
      if (after < arena_.size()) {
        Header ah = read_header(after);
        ah.prev_off = off;
        write_header(after, ah);
      }
    }
  }
  write_header(off, h);

  // Coalesce with the previous block.
  if (off != 0) {
    Header ph = read_header(h.prev_off);
    if (ph.live == 0) {
      ph.size += kHeaderSize + h.size;
      write_header(h.prev_off, ph);
      usize after = next_off(h.prev_off, ph);
      if (after < arena_.size()) {
        Header ah = read_header(after);
        ah.prev_off = h.prev_off;
        write_header(after, ah);
      }
    }
  }
}

usize UserAllocator::live_blocks() const { return live_blocks_; }
usize UserAllocator::live_bytes() const { return live_bytes_; }

usize UserAllocator::largest_free() const {
  usize best = 0;
  usize off = 0;
  while (off < arena_.size()) {
    Header h = read_header(off);
    if (h.live == 0 && h.size > best) {
      best = h.size;
    }
    off = next_off(off, h);
  }
  return best;
}

bool UserAllocator::fully_coalesced() const {
  Header first = read_header(0);
  return first.live == 0 && next_off(0, first) == arena_.size();
}

bool UserAllocator::check_invariants() const {
  usize off = 0;
  usize prev = 0;
  bool prev_free = false;
  bool first = true;
  usize counted_live = 0;
  usize counted_live_bytes = 0;
  while (off < arena_.size()) {
    Header h = read_header(off);
    if (h.size == 0 || h.size % kAlignment != 0) {
      return false;
    }
    if (!first && h.prev_off != prev) {
      return false;
    }
    if (h.live == 0) {
      if (prev_free) {
        return false;  // two adjacent free blocks: failed coalescing
      }
      prev_free = true;
    } else {
      prev_free = false;
      ++counted_live;
      counted_live_bytes += h.size;
    }
    prev = off;
    off = next_off(off, h);
    first = false;
  }
  return off == arena_.size() && counted_live == live_blocks_ &&
         counted_live_bytes == live_bytes_;
}

}  // namespace vnros
