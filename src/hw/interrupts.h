// Interrupt controller and serial console models.
//
// Small but real: the interrupt controller is a per-core pending bitmask with
// raise/ack semantics (a LAPIC reduced to its correctness-relevant core), and
// the serial console is the paper's "serial/graphical output" driver target.
// Both have specs simple enough that their VCs are exhaustive.
#ifndef VNROS_SRC_HW_INTERRUPTS_H_
#define VNROS_SRC_HW_INTERRUPTS_H_

#include <array>
#include <atomic>
#include <mutex>
#include <string>
#include <vector>

#include "src/base/contracts.h"
#include "src/base/types.h"

namespace vnros {

inline constexpr u32 kNumIrqVectors = 64;

// Per-core pending-interrupt state. raise() is idempotent per vector (level-
// triggered); ack() clears. pending() returns the lowest pending vector,
// modelling fixed priority.
class InterruptController {
 public:
  explicit InterruptController(u32 num_cores) : pending_(num_cores) {}

  void raise(CoreId core, u32 vector) {
    VNROS_CHECK(core < pending_.size());
    VNROS_CHECK(vector < kNumIrqVectors);
    pending_[core].mask.fetch_or(u64{1} << vector, std::memory_order_acq_rel);
  }

  // Lowest pending vector for `core`, or kNumIrqVectors if none.
  u32 next_pending(CoreId core) const {
    VNROS_CHECK(core < pending_.size());
    u64 mask = pending_[core].mask.load(std::memory_order_acquire);
    if (mask == 0) {
      return kNumIrqVectors;
    }
    return static_cast<u32>(__builtin_ctzll(mask));
  }

  // Acks (clears) `vector`; returns whether it was pending.
  bool ack(CoreId core, u32 vector) {
    VNROS_CHECK(core < pending_.size());
    VNROS_CHECK(vector < kNumIrqVectors);
    u64 bit = u64{1} << vector;
    u64 prev = pending_[core].mask.fetch_and(~bit, std::memory_order_acq_rel);
    return (prev & bit) != 0;
  }

 private:
  struct PerCore {
    std::atomic<u64> mask{0};
  };
  std::vector<PerCore> pending_;
};

// Serial output sink; spec: the observed byte stream equals the concatenation
// of all writes in order.
class SerialConsole {
 public:
  void write(std::string_view s) {
    std::lock_guard<std::mutex> lock(mu_);
    out_.append(s);
  }

  std::string contents() const {
    std::lock_guard<std::mutex> lock(mu_);
    return out_;
  }

 private:
  mutable std::mutex mu_;
  std::string out_;
};

}  // namespace vnros

#endif  // VNROS_SRC_HW_INTERRUPTS_H_
