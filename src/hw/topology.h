// Machine topology: cores and their NUMA-node assignment.
//
// Node replication places one replica of each kernel data structure per NUMA
// node (§4.1); the topology tells NodeReplicated how many replicas to build
// and which replica a given core uses. The paper's testbed is a 28-core
// machine; the simulation supports arbitrary core counts so the Figure 1b/c
// sweeps can run the full 1..28 range on any host.
#ifndef VNROS_SRC_HW_TOPOLOGY_H_
#define VNROS_SRC_HW_TOPOLOGY_H_

#include <vector>

#include "src/base/contracts.h"
#include "src/base/types.h"

namespace vnros {

class Topology {
 public:
  // `cores_per_node` == 0 means a single node holding all cores.
  Topology(u32 num_cores, u32 cores_per_node)
      : num_cores_(num_cores),
        cores_per_node_(cores_per_node == 0 ? num_cores : cores_per_node) {
    VNROS_CHECK(num_cores > 0);
  }

  static Topology single_node(u32 num_cores) { return Topology(num_cores, 0); }

  u32 num_cores() const { return num_cores_; }

  u32 num_nodes() const { return (num_cores_ + cores_per_node_ - 1) / cores_per_node_; }

  NodeId node_of_core(CoreId core) const {
    VNROS_CHECK(core < num_cores_);
    return core / cores_per_node_;
  }

  std::vector<CoreId> cores_on_node(NodeId node) const {
    std::vector<CoreId> cores;
    for (CoreId c = 0; c < num_cores_; ++c) {
      if (node_of_core(c) == node) {
        cores.push_back(c);
      }
    }
    return cores;
  }

 private:
  u32 num_cores_;
  u32 cores_per_node_;
};

}  // namespace vnros

#endif  // VNROS_SRC_HW_TOPOLOGY_H_
