// TLB model: per-core translation caches plus IPI-based shootdown.
//
// Part of the hardware spec (§5: "...or using cached translations from the
// TLB"). The correctness-relevant behaviour modelled here is staleness: a
// translation cached before an unmap stays visible on other cores until the
// OS performs a shootdown. The page-table refinement checks exercise exactly
// this: an unmap without shootdown leaves the combined (PT + TLB) machine
// observably different from the abstract spec, and the verified unmap path
// must therefore invalidate remote TLBs before completing.
#ifndef VNROS_SRC_HW_TLB_H_
#define VNROS_SRC_HW_TLB_H_

#include <deque>
#include <mutex>
#include <optional>
#include <unordered_map>

#include "src/base/types.h"
#include "src/hw/mmu.h"
#include "src/hw/topology.h"

namespace vnros {

struct TlbStats {
  u64 hits = 0;
  u64 misses = 0;
  u64 invalidations = 0;
  u64 flushes = 0;
};

// A single core's TLB. Not internally synchronized: the owning core fills and
// consults it; remote shootdown goes through TlbSystem which serializes with
// a per-core mutex (modelling the IPI handler running on the target core).
class CoreTlb {
 public:
  explicit CoreTlb(usize capacity = 512) : capacity_(capacity) {}

  // Looks up `va` at any cached granularity (4K/2M/1G).
  std::optional<Translation> lookup(VAddr va);

  void insert(VAddr va, const Translation& t);

  // Drops any entry covering `page` (any granularity).
  void invalidate_page(VAddr page);

  void flush_all();

  const TlbStats& stats() const { return stats_; }

 private:
  friend class TlbSystem;

  // Entries are keyed by the page-size-aligned base of the mapping.
  std::unordered_map<u64, Translation> entries_;
  usize capacity_;
  TlbStats stats_;
  std::mutex mu_;  // serializes owner accesses with remote shootdowns
};

// All cores' TLBs plus the shootdown protocol.
struct ShootdownStats {
  u64 shootdowns = 0;     // shootdown operations initiated
  u64 ipis = 0;           // per-target-core interrupts delivered
};

class TlbSystem {
 public:
  explicit TlbSystem(const Topology& topo, usize capacity_per_core = 512);

  CoreTlb& core(CoreId core_id);

  // Translates `va` for `core_id`, consulting that core's TLB first and
  // walking the page table (filling the TLB) on a miss. This is the combined
  // "CPU memory access" of the hardware spec.
  Result<Translation> translate(Mmu& mmu, PAddr cr3, CoreId core_id, VAddr va, Access access,
                                Ring ring);

  // Invalidates `page` on every core (initiator invalidates locally; each
  // remote core costs one IPI). The OS unmap path must call this before
  // declaring the unmap complete.
  void shootdown(CoreId initiator, VAddr page);

  // Full flush on all cores (e.g. address-space teardown).
  void flush_all();

  const ShootdownStats& shootdown_stats() const { return shootdown_stats_; }

  // Optional cost model: busy-work cycles charged per remote IPI, so
  // benchmarks can show the shootdown component of unmap latency
  // (bench/ablate_tlb_shootdown sweeps this).
  void set_ipi_cost_cycles(u64 cycles) { ipi_cost_cycles_ = cycles; }

 private:
  // deque: CoreTlb holds a mutex and is immovable.
  std::deque<CoreTlb> tlbs_;
  ShootdownStats shootdown_stats_;
  std::mutex stats_mu_;
  u64 ipi_cost_cycles_ = 0;
};

}  // namespace vnros

#endif  // VNROS_SRC_HW_TLB_H_
