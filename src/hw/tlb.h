// TLB model: per-core translation caches plus IPI-based shootdown.
//
// Part of the hardware spec (§5: "...or using cached translations from the
// TLB"). The correctness-relevant behaviour modelled here is staleness: a
// translation cached before an unmap stays visible on other cores until the
// OS performs a shootdown. The page-table refinement checks exercise exactly
// this: an unmap without shootdown leaves the combined (PT + TLB) machine
// observably different from the abstract spec, and the verified unmap path
// must therefore invalidate remote TLBs before completing.
#ifndef VNROS_SRC_HW_TLB_H_
#define VNROS_SRC_HW_TLB_H_

#include <deque>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>

#include "src/base/types.h"
#include "src/hw/mmu.h"
#include "src/hw/topology.h"
#include "src/obs/registry.h"

namespace vnros {

struct TlbStats {
  u64 hits = 0;
  u64 misses = 0;
  u64 invalidations = 0;
  u64 flushes = 0;
};

// A single core's TLB. Not internally synchronized: the owning core fills and
// consults it; remote shootdown goes through TlbSystem which serializes with
// a per-core mutex (modelling the IPI handler running on the target core).
class CoreTlb {
 public:
  explicit CoreTlb(usize capacity = 512) : capacity_(capacity) {}

  // Looks up `va` at any cached granularity (4K/2M/1G).
  std::optional<Translation> lookup(VAddr va);

  void insert(VAddr va, const Translation& t);

  // Drops any entry covering `page` (any granularity).
  void invalidate_page(VAddr page);

  // Drops every listed page under ONE lock acquisition — the model of a
  // single shootdown IPI whose handler invlpg's a whole list.
  void invalidate_pages(std::span<const VAddr> pages);

  void flush_all();

  const TlbStats& stats() const { return stats_; }

 private:
  friend class TlbSystem;

  // Entries are keyed by the page-size-aligned base of the mapping.
  std::unordered_map<u64, Translation> entries_;
  usize capacity_;
  TlbStats stats_;
  std::mutex mu_;  // serializes owner accesses with remote shootdowns
};

// All cores' TLBs plus the shootdown protocol. Snapshot of the per-core obs
// counters (see shootdown_stats()).
struct ShootdownStats {
  u64 shootdowns = 0;     // shootdown operations initiated (single or batch)
  u64 ipis = 0;           // per-target-core interrupts delivered
  u64 batched_pages = 0;  // pages retired through shootdown_batch
  u64 full_flushes = 0;   // batches promoted to a full flush (>= threshold)
};

class TlbSystem {
 public:
  explicit TlbSystem(const Topology& topo, usize capacity_per_core = 512);

  CoreTlb& core(CoreId core_id);

  // Translates `va` for `core_id`, consulting that core's TLB first and
  // walking the page table (filling the TLB) on a miss. This is the combined
  // "CPU memory access" of the hardware spec.
  Result<Translation> translate(Mmu& mmu, PAddr cr3, CoreId core_id, VAddr va, Access access,
                                Ring ring);

  // Invalidates `page` on every core (initiator invalidates locally; each
  // remote core costs one IPI). The OS unmap path must call this before
  // declaring the unmap complete.
  void shootdown(CoreId initiator, VAddr page);

  // Invalidates every listed page on every core in ONE IPI round: each
  // remote core takes a single interrupt carrying the whole list, instead of
  // one interrupt per page. Above `batch_flush_threshold` pages, the handler
  // full-flushes instead of walking the list (a full flush is always sound —
  // the TLB is a cache — and cheaper than hundreds of invlpg's). The OS
  // unmap_range path calls this once per batch.
  void shootdown_batch(CoreId initiator, std::span<const VAddr> pages);

  // Convenience for contiguous ranges (`num_pages` 4 KiB pages at `base`):
  // same one-round protocol without materializing a VA list.
  void shootdown_range(CoreId initiator, VAddr base, u64 num_pages);

  // Full flush on all cores (e.g. address-space teardown).
  void flush_all();

  // Thin view over the obs counters ("tlb<N>/..."): race-free merged reads,
  // no lock shared with the shootdown path.
  ShootdownStats shootdown_stats() const {
    return ShootdownStats{c_shootdowns_.value(), c_ipis_.value(), c_batched_pages_.value(),
                          c_full_flushes_.value()};
  }

  // Optional cost model: busy-work cycles charged per remote IPI, so
  // benchmarks can show the shootdown component of unmap latency
  // (bench/ablate_tlb_shootdown sweeps this). A batched shootdown charges
  // one IPI per remote core regardless of how many pages it retires.
  void set_ipi_cost_cycles(u64 cycles) { ipi_cost_cycles_ = cycles; }

  // Batch size at or above which shootdown_batch full-flushes each core
  // instead of invalidating page by page.
  void set_batch_flush_threshold(usize pages) { batch_flush_threshold_ = pages; }
  usize batch_flush_threshold() const { return batch_flush_threshold_; }

 private:
  // Burns the cost-model cycles for one remote IPI.
  void charge_ipi() const;

  // deque: CoreTlb holds a mutex and is immovable.
  std::deque<CoreTlb> tlbs_;
  const std::string obs_prefix_;
  Counter& c_shootdowns_;
  Counter& c_ipis_;
  Counter& c_batched_pages_;
  Counter& c_full_flushes_;
  u64 ipi_cost_cycles_ = 0;
  usize batch_flush_threshold_ = 64;
};

}  // namespace vnros

#endif  // VNROS_SRC_HW_TLB_H_
