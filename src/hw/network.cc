#include "src/hw/network.h"

#include <utility>

#include "src/base/contracts.h"

namespace vnros {

Result<Unit> NetDevice::send(LinkAddr dst, std::vector<u8> payload) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.tx_frames;
  }
  net_.transmit(Frame{addr_, dst, std::move(payload)});
  return Unit{};
}

std::optional<Frame> NetDevice::poll_rx() {
  std::lock_guard<std::mutex> lock(mu_);
  if (rx_ring_.empty()) {
    return std::nullopt;
  }
  Frame f = std::move(rx_ring_.front());
  rx_ring_.pop_front();
  return f;
}

usize NetDevice::rx_pending() const {
  std::lock_guard<std::mutex> lock(mu_);
  return rx_ring_.size();
}

void NetDevice::deliver(Frame frame) {
  std::lock_guard<std::mutex> lock(mu_);
  if (rx_ring_.size() >= ring_capacity_) {
    ++stats_.rx_dropped_full;  // a full RX ring drops, like real NICs
    return;
  }
  ++stats_.rx_frames;
  rx_ring_.push_back(std::move(frame));
}

NetDevice& Network::attach() {
  std::lock_guard<std::mutex> lock(mu_);
  auto addr = static_cast<LinkAddr>(devices_.size());
  devices_.push_back(
      std::unique_ptr<NetDevice>(new NetDevice(*this, addr, config_.rx_ring_capacity)));
  return *devices_.back();
}

NetDevice& Network::attach_at(LinkAddr addr) {
  std::lock_guard<std::mutex> lock(mu_);
  VNROS_CHECK(addr <= devices_.size());
  auto device = std::unique_ptr<NetDevice>(new NetDevice(*this, addr, config_.rx_ring_capacity));
  if (addr == devices_.size()) {
    devices_.push_back(std::move(device));
  } else {
    devices_[addr] = std::move(device);
  }
  return *devices_[addr];
}

void Network::partition(LinkAddr a, LinkAddr b) {
  std::lock_guard<std::mutex> lock(mu_);
  cuts_.insert(cut_key(a, b));
}

void Network::heal(LinkAddr a, LinkAddr b) {
  std::lock_guard<std::mutex> lock(mu_);
  cuts_.erase(cut_key(a, b));
}

void Network::heal_all() {
  std::lock_guard<std::mutex> lock(mu_);
  cuts_.clear();
}

bool Network::partitioned(LinkAddr a, LinkAddr b) const {
  std::lock_guard<std::mutex> lock(mu_);
  return cuts_.count(cut_key(a, b)) != 0;
}

usize Network::active_cuts() const {
  std::lock_guard<std::mutex> lock(mu_);
  return cuts_.size();
}

void Network::transmit(Frame frame) {
  std::vector<Frame> to_deliver;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (rng_.chance_ppm(config_.loss_ppm)) {
      ++frames_lost_;
      // The lost frame may still release previously held frames below.
    } else if (rng_.chance_ppm(config_.reorder_ppm)) {
      held_.push_back(frame);  // delivered after a later frame
    } else {
      to_deliver.push_back(frame);
      if (rng_.chance_ppm(config_.dup_ppm)) {
        to_deliver.push_back(frame);
      }
    }
    // Any send flushes previously held frames *after* the current one,
    // producing an observable reordering.
    for (auto& h : held_) {
      to_deliver.push_back(std::move(h));
    }
    held_.clear();
  }
  for (const auto& f : to_deliver) {
    deliver_to(f.dst, f);
  }
}

void Network::deliver_to(LinkAddr dst, const Frame& frame) {
  std::vector<NetDevice*> targets;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (dst == kLinkBroadcast) {
      for (auto& dev : devices_) {
        if (dev->addr() == frame.src) {
          continue;
        }
        if (cuts_.count(cut_key(frame.src, dev->addr())) != 0) {
          ++frames_partitioned_;
          continue;
        }
        targets.push_back(dev.get());
      }
    } else if (dst < devices_.size()) {
      if (cuts_.count(cut_key(frame.src, dst)) != 0) {
        ++frames_partitioned_;
      } else {
        targets.push_back(devices_[dst].get());
      }
    }
  }
  for (NetDevice* dev : targets) {
    dev->deliver(frame);
  }
}

void Network::release_held() {
  std::vector<Frame> to_deliver;
  {
    std::lock_guard<std::mutex> lock(mu_);
    to_deliver.swap(held_);
  }
  for (const auto& f : to_deliver) {
    deliver_to(f.dst, f);
  }
}

}  // namespace vnros
