#include "src/hw/block_device.h"

#include <algorithm>
#include <cstring>

#include "src/base/contracts.h"

namespace vnros {

Result<Unit> BlockDevice::read(u64 sector, std::span<u8> out) {
  if (out.size() != kSectorSize) {
    return ErrorCode::kInvalidArgument;
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (sector >= num_sectors()) {
    return ErrorCode::kOutOfRange;
  }
  if (auto injected = read_error_site_->fire()) {
    ++stats_.injected_read_errors;
    return *injected;
  }
  ++stats_.reads;
  auto it = cache_.find(sector);
  if (it != cache_.end()) {
    std::memcpy(out.data(), it->second.data(), kSectorSize);
  } else {
    std::memcpy(out.data(), stable_.data() + sector * kSectorSize, kSectorSize);
  }
  if (auto rot = bit_rot_site_->fire_corrupt()) {
    // Silent media decay: the read SUCCEEDS but some returned bytes are
    // flipped. The media itself is untouched (decay is modeled per-read so
    // a later read may see clean bytes again — like a marginal sector).
    // Only an end-to-end checksum above the device can catch this.
    ++stats_.bit_rot_reads;
    u64 n = std::min<u64>(*rot, kSectorSize);
    for (u64 i = 0; i < n; ++i) {
      u64 pos = rng_.next_below(kSectorSize);
      out[pos] ^= static_cast<u8>(rng_.next_range(1, 255));
    }
  }
  return Unit{};
}

Result<Unit> BlockDevice::write(u64 sector, std::span<const u8> data) {
  if (data.size() != kSectorSize) {
    return ErrorCode::kInvalidArgument;
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (sector >= num_sectors()) {
    return ErrorCode::kOutOfRange;
  }
  if (auto injected = write_error_site_->fire()) {
    ++stats_.injected_write_errors;
    return *injected;
  }
  if (auto injected = torn_write_site_->fire()) {
    // The controller died mid-sector: a nonempty strict prefix of the new
    // data lands over the sector's current content, and the caller learns
    // the write failed. Durability protocols must tolerate the partial
    // state (the fs journal's per-record CRC detects exactly this).
    ++stats_.torn_writes;
    auto& slot = cache_[sector];
    if (slot.empty()) {
      slot.assign(stable_.begin() + static_cast<isize>(sector * kSectorSize),
                  stable_.begin() + static_cast<isize>((sector + 1) * kSectorSize));
    }
    u64 torn_len = rng_.next_range(1, kSectorSize - 1);
    std::memcpy(slot.data(), data.data(), torn_len);
    return *injected;
  }
  ++stats_.writes;
  cache_[sector].assign(data.begin(), data.end());
  return Unit{};
}

void BlockDevice::flush() {
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.flushes;
  for (const auto& [sector, bytes] : cache_) {
    std::memcpy(stable_.data() + sector * kSectorSize, bytes.data(), kSectorSize);
  }
  cache_.clear();
}

void BlockDevice::crash(u64 persist_ppm, u64 torn_ppm) {
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.crashes;
  for (const auto& [sector, bytes] : cache_) {
    if (!rng_.chance_ppm(persist_ppm)) {
      continue;  // this sector never reached media
    }
    u64 persisted = kSectorSize;
    if (torn_ppm != 0 && rng_.chance_ppm(torn_ppm)) {
      persisted = rng_.next_range(1, kSectorSize - 1);
      ++stats_.torn_crash_sectors;
    }
    std::memcpy(stable_.data() + sector * kSectorSize, bytes.data(), persisted);
  }
  cache_.clear();
}

usize BlockDevice::dirty_sectors() const {
  std::lock_guard<std::mutex> lock(mu_);
  return cache_.size();
}

std::vector<u8> BlockDevice::snapshot_stable() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stable_;
}

}  // namespace vnros
