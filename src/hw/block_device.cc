#include "src/hw/block_device.h"

#include <cstring>

#include "src/base/contracts.h"

namespace vnros {

Result<Unit> BlockDevice::read(u64 sector, std::span<u8> out) {
  if (out.size() != kSectorSize) {
    return ErrorCode::kInvalidArgument;
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (sector >= num_sectors()) {
    return ErrorCode::kInvalidArgument;
  }
  ++stats_.reads;
  auto it = cache_.find(sector);
  if (it != cache_.end()) {
    std::memcpy(out.data(), it->second.data(), kSectorSize);
  } else {
    std::memcpy(out.data(), stable_.data() + sector * kSectorSize, kSectorSize);
  }
  return Unit{};
}

Result<Unit> BlockDevice::write(u64 sector, std::span<const u8> data) {
  if (data.size() != kSectorSize) {
    return ErrorCode::kInvalidArgument;
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (sector >= num_sectors()) {
    return ErrorCode::kInvalidArgument;
  }
  ++stats_.writes;
  cache_[sector].assign(data.begin(), data.end());
  return Unit{};
}

void BlockDevice::flush() {
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.flushes;
  for (const auto& [sector, bytes] : cache_) {
    std::memcpy(stable_.data() + sector * kSectorSize, bytes.data(), kSectorSize);
  }
  cache_.clear();
}

void BlockDevice::crash(u64 persist_ppm) {
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.crashes;
  for (const auto& [sector, bytes] : cache_) {
    if (rng_.chance_ppm(persist_ppm)) {
      std::memcpy(stable_.data() + sector * kSectorSize, bytes.data(), kSectorSize);
    }
  }
  cache_.clear();
}

usize BlockDevice::dirty_sectors() const {
  std::lock_guard<std::mutex> lock(mu_);
  return cache_.size();
}

std::vector<u8> BlockDevice::snapshot_stable() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stable_;
}

}  // namespace vnros
