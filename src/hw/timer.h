// Virtual time.
//
// The scheduler, futex timeouts and protocol retransmissions all run against
// this clock rather than wall time, so every test is deterministic: time
// advances only when the simulation says so.
#ifndef VNROS_SRC_HW_TIMER_H_
#define VNROS_SRC_HW_TIMER_H_

#include <atomic>

#include "src/base/types.h"

namespace vnros {

class VirtualClock {
 public:
  u64 now() const { return ticks_.load(std::memory_order_acquire); }

  void advance(u64 delta) { ticks_.fetch_add(delta, std::memory_order_acq_rel); }

 private:
  std::atomic<u64> ticks_{0};
};

}  // namespace vnros

#endif  // VNROS_SRC_HW_TIMER_H_
