// x86-64 MMU model: 4-level page-table walk over simulated physical memory.
//
// This is the paper's *hardware spec* (§5): "a description of how the MMU
// translates memory addresses by interpreting the page table bits in memory,
// i.e., walking the page table". The OS implementation in src/pt writes raw
// 64-bit entries into PhysMem; this walker interprets exactly those bits with
// the real x86-64 entry layout (present/write/user/PS/NX, 52-bit frame
// address field), including 2 MiB and 1 GiB large pages.
//
// Refinement obligation discharged against this model: for every virtual
// address, Mmu::translate() over the implementation's in-memory tree agrees
// with the abstract map of the high-level spec (src/pt/interp.h).
#ifndef VNROS_SRC_HW_MMU_H_
#define VNROS_SRC_HW_MMU_H_

#include <optional>

#include "src/base/result.h"
#include "src/base/types.h"
#include "src/hw/phys_mem.h"

namespace vnros {

// x86-64 page-table entry bit layout (Intel SDM Vol. 3, §4.5).
inline constexpr u64 kPtePresent = u64{1} << 0;
inline constexpr u64 kPteWritable = u64{1} << 1;
inline constexpr u64 kPteUser = u64{1} << 2;
inline constexpr u64 kPteWriteThrough = u64{1} << 3;
inline constexpr u64 kPteCacheDisable = u64{1} << 4;
inline constexpr u64 kPteAccessed = u64{1} << 5;
inline constexpr u64 kPteDirty = u64{1} << 6;
inline constexpr u64 kPtePageSize = u64{1} << 7;  // PS: leaf at PDPT/PD level
inline constexpr u64 kPteGlobal = u64{1} << 8;
inline constexpr u64 kPteNoExecute = u64{1} << 63;
// Physical-address field: bits 12..51.
inline constexpr u64 kPteAddrMask = 0x000F'FFFF'FFFF'F000ull;

// Number of entries per table and index extraction for each level.
inline constexpr u64 kPtEntries = 512;

constexpr u64 pml4_index(VAddr va) { return (va.value >> 39) & 0x1FF; }
constexpr u64 pdpt_index(VAddr va) { return (va.value >> 30) & 0x1FF; }
constexpr u64 pd_index(VAddr va) { return (va.value >> 21) & 0x1FF; }
constexpr u64 pt_index(VAddr va) { return (va.value >> 12) & 0x1FF; }

// What kind of access is being translated; determines protection faults.
enum class Access : u8 {
  kRead,
  kWrite,
  kExecute,
};

// Privilege of the access.
enum class Ring : u8 {
  kSupervisor,
  kUser,
};

// Why a translation failed.
enum class FaultKind : u8 {
  kNotPresent,   // a walk entry had P=0
  kProtection,   // present but W/U/NX bits forbid the access
  kNonCanonical, // address above the 48-bit canonical hole
};

struct PageFault {
  FaultKind kind;
  VAddr vaddr;
  Access access;
};

// Successful translation: physical target plus the effective permissions and
// mapping granularity, as hardware would load them into the TLB.
struct Translation {
  PAddr paddr;             // full physical address of the access
  PAddr frame_base;        // base of the mapped frame
  u64 page_size;           // 4 KiB / 2 MiB / 1 GiB
  bool writable;
  bool user_accessible;
  bool executable;

  bool operator==(const Translation&) const = default;
};

// Statistics for the latency model and benchmarks.
struct MmuStats {
  u64 walks = 0;           // full page-table walks performed
  u64 walk_loads = 0;      // individual PTE loads during walks
  u64 faults = 0;
};

class Mmu {
 public:
  explicit Mmu(PhysMem& mem) : mem_(mem) {}

  // Walks the 4-level table rooted at `cr3` for `va`. On success returns the
  // Translation; on failure the PageFault. Does not consult any TLB —
  // Tlb (src/hw/tlb.h) layers caching on top.
  Result<Translation> translate(PAddr cr3, VAddr va, Access access, Ring ring) const;

  // Like translate() but also reports the fault detail.
  std::optional<PageFault> probe_fault(PAddr cr3, VAddr va, Access access, Ring ring) const;

  // Convenience accessors that perform a translated memory access, as a CPU
  // would: translate, then touch PhysMem. Used by the kernel's user-memory
  // copy routines and by refinement checks of the read/write transitions.
  Result<u64> load_u64(PAddr cr3, VAddr va, Ring ring) const;
  Result<Unit> store_u64(PAddr cr3, VAddr va, u64 value, Ring ring);

  const MmuStats& stats() const { return stats_; }
  void reset_stats() { stats_ = MmuStats{}; }

 private:
  PhysMem& mem_;
  mutable MmuStats stats_;
};

}  // namespace vnros

#endif  // VNROS_SRC_HW_MMU_H_
