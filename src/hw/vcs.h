// Registration hook for the hardware-model / driver verification conditions.
#ifndef VNROS_SRC_HW_VCS_H_
#define VNROS_SRC_HW_VCS_H_

#include "src/spec/vc.h"

namespace vnros {

// Registers hw/* VCs: block-device write-barrier and crash semantics, NIC RX
// ring behaviour, TLB caching/invalidation model, interrupt controller
// raise/ack, serial console ordering, MMU walk counters.
void register_hw_vcs(VcRegistry& registry);

}  // namespace vnros

#endif  // VNROS_SRC_HW_VCS_H_
