#include "src/hw/tlb.h"

#include <atomic>
#include <vector>

namespace vnros {

std::optional<Translation> CoreTlb::lookup(VAddr va) {
  std::lock_guard<std::mutex> lock(mu_);
  // Probe each granularity's aligned base. Entry keys are tagged with the
  // page size via the low bits being the aligned base (bases of different
  // sizes can collide only if they are the same address, in which case the
  // stored page_size disambiguates -- we simply check coverage).
  for (u64 size : {kPageSize, kLargePageSize, kHugePageSize}) {
    u64 base = va.value & ~(size - 1);
    auto it = entries_.find(base);
    if (it != entries_.end() && it->second.page_size == size) {
      ++stats_.hits;
      Translation t = it->second;
      // The cached entry stores the frame translation; reconstitute the full
      // physical address for this access.
      t.paddr = t.frame_base.offset(va.value & (size - 1));
      return t;
    }
  }
  ++stats_.misses;
  return std::nullopt;
}

void CoreTlb::insert(VAddr va, const Translation& t) {
  std::lock_guard<std::mutex> lock(mu_);
  if (entries_.size() >= capacity_) {
    // Capacity eviction: drop an arbitrary entry (hardware uses pseudo-LRU;
    // any eviction policy is sound because a TLB is a cache).
    entries_.erase(entries_.begin());
  }
  u64 base = va.value & ~(t.page_size - 1);
  entries_[base] = t;
}

void CoreTlb::invalidate_page(VAddr page) {
  std::lock_guard<std::mutex> lock(mu_);
  for (u64 size : {kPageSize, kLargePageSize, kHugePageSize}) {
    u64 base = page.value & ~(size - 1);
    auto it = entries_.find(base);
    if (it != entries_.end() && it->second.page_size == size) {
      entries_.erase(it);
      ++stats_.invalidations;
    }
  }
}

void CoreTlb::invalidate_pages(std::span<const VAddr> pages) {
  std::lock_guard<std::mutex> lock(mu_);
  for (VAddr page : pages) {
    for (u64 size : {kPageSize, kLargePageSize, kHugePageSize}) {
      u64 base = page.value & ~(size - 1);
      auto it = entries_.find(base);
      if (it != entries_.end() && it->second.page_size == size) {
        entries_.erase(it);
        ++stats_.invalidations;
      }
    }
  }
}

void CoreTlb::flush_all() {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.clear();
  ++stats_.flushes;
}

TlbSystem::TlbSystem(const Topology& topo, usize capacity_per_core)
    : obs_prefix_(ObsRegistry::global().instance_prefix("tlb")),
      c_shootdowns_(ObsRegistry::global().counter(obs_prefix_ + "shootdowns")),
      c_ipis_(ObsRegistry::global().counter(obs_prefix_ + "ipis")),
      c_batched_pages_(ObsRegistry::global().counter(obs_prefix_ + "batched_pages")),
      c_full_flushes_(ObsRegistry::global().counter(obs_prefix_ + "full_flushes")) {
  for (u32 i = 0; i < topo.num_cores(); ++i) {
    tlbs_.emplace_back(capacity_per_core);
  }
}

CoreTlb& TlbSystem::core(CoreId core_id) {
  VNROS_CHECK(core_id < tlbs_.size());
  return tlbs_[core_id];
}

Result<Translation> TlbSystem::translate(Mmu& mmu, PAddr cr3, CoreId core_id, VAddr va,
                                         Access access, Ring ring) {
  CoreTlb& tlb = core(core_id);
  if (auto cached = tlb.lookup(va)) {
    // Permission bits are cached with the translation; hardware raises a
    // protection fault from the TLB without re-walking.
    const Translation& t = *cached;
    bool ok = true;
    if (ring == Ring::kUser && !t.user_accessible) {
      ok = false;
    }
    if (access == Access::kWrite && !t.writable) {
      ok = false;
    }
    if (access == Access::kExecute && !t.executable) {
      ok = false;
    }
    if (ok) {
      return t;
    }
    return ErrorCode::kNotPermitted;
  }
  auto walked = mmu.translate(cr3, va, access, ring);
  if (walked.ok()) {
    tlb.insert(va, walked.value());
  }
  return walked;
}

void TlbSystem::charge_ipi() const {
  // Cost model for the remote interrupt + invalidation on the target core.
  std::atomic<u64> sink{0};
  for (u64 c = 0; c < ipi_cost_cycles_; ++c) {
    sink.fetch_add(1, std::memory_order_relaxed);
  }
}

void TlbSystem::shootdown(CoreId initiator, VAddr page) {
  c_shootdowns_.inc();
  c_ipis_.add(tlbs_.size() > 0 ? tlbs_.size() - 1 : 0);
  for (usize i = 0; i < tlbs_.size(); ++i) {
    tlbs_[i].invalidate_page(page);
    if (i != initiator && ipi_cost_cycles_ > 0) {
      charge_ipi();
    }
  }
}

void TlbSystem::shootdown_batch(CoreId initiator, std::span<const VAddr> pages) {
  if (pages.empty()) {
    return;
  }
  const bool promote = pages.size() >= batch_flush_threshold_;
  c_shootdowns_.inc();
  c_ipis_.add(tlbs_.size() > 0 ? tlbs_.size() - 1 : 0);
  c_batched_pages_.add(pages.size());
  if (promote) {
    c_full_flushes_.inc();
  }
  for (usize i = 0; i < tlbs_.size(); ++i) {
    if (promote) {
      tlbs_[i].flush_all();
    } else {
      tlbs_[i].invalidate_pages(pages);
    }
    // One interrupt per remote core for the whole batch — this, not the
    // per-page invalidation work, is what the per-page protocol pays N times.
    if (i != initiator && ipi_cost_cycles_ > 0) {
      charge_ipi();
    }
  }
}

void TlbSystem::shootdown_range(CoreId initiator, VAddr base, u64 num_pages) {
  if (num_pages == 0) {
    return;
  }
  if (num_pages >= batch_flush_threshold_) {
    // Delegate through the batch path with an empty-list-free promotion:
    // build no list, flush every core in one round.
    c_shootdowns_.inc();
    c_ipis_.add(tlbs_.size() > 0 ? tlbs_.size() - 1 : 0);
    c_batched_pages_.add(num_pages);
    c_full_flushes_.inc();
    for (usize i = 0; i < tlbs_.size(); ++i) {
      tlbs_[i].flush_all();
      if (i != initiator && ipi_cost_cycles_ > 0) {
        charge_ipi();
      }
    }
    return;
  }
  std::vector<VAddr> pages;
  pages.reserve(num_pages);
  for (u64 i = 0; i < num_pages; ++i) {
    pages.push_back(base.offset(i * kPageSize));
  }
  shootdown_batch(initiator, pages);
}

void TlbSystem::flush_all() {
  for (auto& tlb : tlbs_) {
    tlb.flush_all();
  }
}

}  // namespace vnros
