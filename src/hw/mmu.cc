#include "src/hw/mmu.h"

namespace vnros {
namespace {

ErrorCode fault_to_error(FaultKind kind) {
  switch (kind) {
    case FaultKind::kNotPresent: return ErrorCode::kNotMapped;
    case FaultKind::kProtection: return ErrorCode::kNotPermitted;
    case FaultKind::kNonCanonical: return ErrorCode::kInvalidArgument;
  }
  return ErrorCode::kInvalidArgument;
}

// Effective permissions accumulate restrictively down the walk: an access is
// writable/user/executable only if *every* level allows it (SDM §4.6).
struct WalkPerms {
  bool writable = true;
  bool user = true;
  bool executable = true;

  void intersect(u64 entry) {
    writable = writable && (entry & kPteWritable) != 0;
    user = user && (entry & kPteUser) != 0;
    executable = executable && (entry & kPteNoExecute) == 0;
  }
};

bool access_allowed(const WalkPerms& perms, Access access, Ring ring) {
  if (ring == Ring::kUser && !perms.user) {
    return false;
  }
  switch (access) {
    case Access::kRead: return true;
    case Access::kWrite: return perms.writable;
    case Access::kExecute: return perms.executable;
  }
  return false;
}

}  // namespace

std::optional<PageFault> Mmu::probe_fault(PAddr cr3, VAddr va, Access access, Ring ring) const {
  auto r = translate(cr3, va, access, ring);
  if (r.ok()) {
    return std::nullopt;
  }
  FaultKind kind = FaultKind::kNotPresent;
  if (r.error() == ErrorCode::kNotPermitted) {
    kind = FaultKind::kProtection;
  } else if (r.error() == ErrorCode::kInvalidArgument) {
    kind = FaultKind::kNonCanonical;
  }
  return PageFault{kind, va, access};
}

Result<Translation> Mmu::translate(PAddr cr3, VAddr va, Access access, Ring ring) const {
  if (!va.is_canonical()) {
    ++stats_.faults;
    return fault_to_error(FaultKind::kNonCanonical);
  }
  ++stats_.walks;
  VNROS_CHECK(cr3.is_page_aligned());

  WalkPerms perms;

  // Level 4: PML4. Never a leaf.
  PAddr pml4e_addr = cr3.offset(pml4_index(va) * 8);
  ++stats_.walk_loads;
  u64 pml4e = mem_.read_u64(pml4e_addr);
  if ((pml4e & kPtePresent) == 0) {
    ++stats_.faults;
    return fault_to_error(FaultKind::kNotPresent);
  }
  perms.intersect(pml4e);

  // Level 3: PDPT. PS=1 means a 1 GiB leaf.
  PAddr pdpt = PAddr{pml4e & kPteAddrMask};
  PAddr pdpte_addr = pdpt.offset(pdpt_index(va) * 8);
  ++stats_.walk_loads;
  u64 pdpte = mem_.read_u64(pdpte_addr);
  if ((pdpte & kPtePresent) == 0) {
    ++stats_.faults;
    return fault_to_error(FaultKind::kNotPresent);
  }
  perms.intersect(pdpte);
  if ((pdpte & kPtePageSize) != 0) {
    if (!access_allowed(perms, access, ring)) {
      ++stats_.faults;
      return fault_to_error(FaultKind::kProtection);
    }
    PAddr base{pdpte & kPteAddrMask & ~(kHugePageSize - 1)};
    return Translation{
        .paddr = base.offset(va.value & (kHugePageSize - 1)),
        .frame_base = base,
        .page_size = kHugePageSize,
        .writable = perms.writable,
        .user_accessible = perms.user,
        .executable = perms.executable,
    };
  }

  // Level 2: PD. PS=1 means a 2 MiB leaf.
  PAddr pd = PAddr{pdpte & kPteAddrMask};
  PAddr pde_addr = pd.offset(pd_index(va) * 8);
  ++stats_.walk_loads;
  u64 pde = mem_.read_u64(pde_addr);
  if ((pde & kPtePresent) == 0) {
    ++stats_.faults;
    return fault_to_error(FaultKind::kNotPresent);
  }
  perms.intersect(pde);
  if ((pde & kPtePageSize) != 0) {
    if (!access_allowed(perms, access, ring)) {
      ++stats_.faults;
      return fault_to_error(FaultKind::kProtection);
    }
    PAddr base{pde & kPteAddrMask & ~(kLargePageSize - 1)};
    return Translation{
        .paddr = base.offset(va.value & (kLargePageSize - 1)),
        .frame_base = base,
        .page_size = kLargePageSize,
        .writable = perms.writable,
        .user_accessible = perms.user,
        .executable = perms.executable,
    };
  }

  // Level 1: PT. Always a 4 KiB leaf.
  PAddr pt = PAddr{pde & kPteAddrMask};
  PAddr pte_addr = pt.offset(pt_index(va) * 8);
  ++stats_.walk_loads;
  u64 pte = mem_.read_u64(pte_addr);
  if ((pte & kPtePresent) == 0) {
    ++stats_.faults;
    return fault_to_error(FaultKind::kNotPresent);
  }
  perms.intersect(pte);
  if (!access_allowed(perms, access, ring)) {
    ++stats_.faults;
    return fault_to_error(FaultKind::kProtection);
  }
  PAddr base{pte & kPteAddrMask};
  return Translation{
      .paddr = base.offset(va.page_offset()),
      .frame_base = base,
      .page_size = kPageSize,
      .writable = perms.writable,
      .user_accessible = perms.user,
      .executable = perms.executable,
  };
}

Result<u64> Mmu::load_u64(PAddr cr3, VAddr va, Ring ring) const {
  auto t = translate(cr3, va, Access::kRead, ring);
  if (!t.ok()) {
    return t.error();
  }
  return mem_.read_u64(t.value().paddr);
}

Result<Unit> Mmu::store_u64(PAddr cr3, VAddr va, u64 value, Ring ring) {
  auto t = translate(cr3, va, Access::kWrite, ring);
  if (!t.ok()) {
    return t.error();
  }
  mem_.write_u64(t.value().paddr, value);
  return Unit{};
}

}  // namespace vnros
