// Block device model with a volatile write cache, a crash model, and
// deterministic fault injection.
//
// The paper's component list includes disk controllers and a filesystem with
// persistence; Amazon's S3 storage-node verification (the paper's motivating
// application) is fundamentally about crash consistency. This device gives
// the filesystem and block store something honest to be correct *against*:
//
//   - write() lands in a volatile cache, not on stable media;
//   - flush() moves all cached sectors to stable media (a write barrier);
//   - crash() throws away the volatile cache — except that, to model
//     controller reordering, each cached sector independently *may* have
//     reached media (decided by a seeded Rng), and, to model torn sector
//     writes at power loss, a surviving sector may persist only a prefix;
//   - injection sites "<prefix>/read_error", "<prefix>/write_error" and
//     "<prefix>/torn_write" (src/base/fault.h) let a schedule make read()
//     and write() fail with kIoError — a torn write additionally applies a
//     random prefix of the data before failing, like a controller dying
//     mid-sector.
//
// A filesystem is crash-consistent iff recovery from any crash()-produced
// media state yields a state reachable by the abstract spec; the fs and
// blockstore test suites (and the chaos harness) check exactly that.
#ifndef VNROS_SRC_HW_BLOCK_DEVICE_H_
#define VNROS_SRC_HW_BLOCK_DEVICE_H_

#include <mutex>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/base/fault.h"
#include "src/base/result.h"
#include "src/base/rng.h"
#include "src/base/types.h"

namespace vnros {

inline constexpr u64 kSectorSize = 512;

struct BlockDeviceStats {
  u64 reads = 0;
  u64 writes = 0;
  u64 flushes = 0;
  u64 crashes = 0;
  u64 injected_read_errors = 0;
  u64 injected_write_errors = 0;
  u64 torn_writes = 0;        // injected mid-sector write failures
  u64 torn_crash_sectors = 0; // sectors that persisted only a prefix at crash
  u64 bit_rot_reads = 0;      // reads that silently returned flipped bytes
};

class BlockDevice {
 public:
  // `fault_prefix` namespaces this device's injection sites so a multi-disk
  // harness can fault one node's disk without touching the others.
  BlockDevice(u64 num_sectors, u64 rng_seed = 0x5EC70Full,
              std::string fault_prefix = "blockdev")
      : stable_(num_sectors * kSectorSize, 0),
        rng_(rng_seed),
        fault_prefix_(std::move(fault_prefix)),
        read_error_site_(&FaultRegistry::global().site(fault_prefix_ + "/read_error")),
        write_error_site_(&FaultRegistry::global().site(fault_prefix_ + "/write_error")),
        torn_write_site_(&FaultRegistry::global().site(fault_prefix_ + "/torn_write")),
        bit_rot_site_(&FaultRegistry::global().site(fault_prefix_ + "/bit_rot")) {}

  u64 num_sectors() const { return stable_.size() / kSectorSize; }
  const std::string& fault_prefix() const { return fault_prefix_; }

  // Reads observe the device's current view: cached sector if present,
  // otherwise stable media (a controller serves reads from its cache).
  // Out-of-range sectors are a typed kOutOfRange error; a span that is not
  // exactly one sector is kInvalidArgument. Never clamps.
  Result<Unit> read(u64 sector, std::span<u8> out);

  // Writes go to the volatile cache only. Same bounds contract as read().
  // An injected torn write applies a random nonempty strict prefix of
  // `data` over the sector's current cached/stable content, then fails.
  Result<Unit> write(u64 sector, std::span<const u8> data);

  // Write barrier: all cached sectors become stable, cache empties.
  void flush();

  // Simulated power failure. Each cached sector independently persists with
  // probability `persist_ppm` parts-per-million (0 = nothing un-flushed
  // survives, 1'000'000 = crash behaves like flush). A sector that does
  // persist is additionally torn — only a prefix reaches media — with
  // probability `torn_ppm`. Afterwards the cache is empty and the device is
  // usable again ("reboot").
  void crash(u64 persist_ppm = 500'000, u64 torn_ppm = 0);

  // Exact count of dirty (cached, unflushed) sectors.
  usize dirty_sectors() const;

  const BlockDeviceStats& stats() const { return stats_; }

  // Test hook: a stable-media snapshot for golden comparisons.
  std::vector<u8> snapshot_stable() const;

 private:
  mutable std::mutex mu_;
  std::vector<u8> stable_;                           // persistent media
  std::unordered_map<u64, std::vector<u8>> cache_;   // sector -> pending bytes
  Rng rng_;
  std::string fault_prefix_;
  FaultSite* read_error_site_;
  FaultSite* write_error_site_;
  FaultSite* torn_write_site_;
  FaultSite* bit_rot_site_;
  BlockDeviceStats stats_;
};

}  // namespace vnros

#endif  // VNROS_SRC_HW_BLOCK_DEVICE_H_
