// Block device model with a volatile write cache and a crash model.
//
// The paper's component list includes disk controllers and a filesystem with
// persistence; Amazon's S3 storage-node verification (the paper's motivating
// application) is fundamentally about crash consistency. This device gives
// the filesystem and block store something honest to be correct *against*:
//
//   - write() lands in a volatile cache, not on stable media;
//   - flush() moves all cached sectors to stable media (a write barrier);
//   - crash() throws away the volatile cache — except that, to model
//     controller reordering, each cached sector independently *may* have
//     reached media (decided by a seeded Rng).
//
// A filesystem is crash-consistent iff recovery from any crash()-produced
// media state yields a state reachable by the abstract spec; the fs and
// blockstore test suites check exactly that.
#ifndef VNROS_SRC_HW_BLOCK_DEVICE_H_
#define VNROS_SRC_HW_BLOCK_DEVICE_H_

#include <mutex>
#include <span>
#include <unordered_map>
#include <vector>

#include "src/base/result.h"
#include "src/base/rng.h"
#include "src/base/types.h"

namespace vnros {

inline constexpr u64 kSectorSize = 512;

struct BlockDeviceStats {
  u64 reads = 0;
  u64 writes = 0;
  u64 flushes = 0;
  u64 crashes = 0;
};

class BlockDevice {
 public:
  BlockDevice(u64 num_sectors, u64 rng_seed = 0x5EC70Full)
      : stable_(num_sectors * kSectorSize, 0), rng_(rng_seed) {}

  u64 num_sectors() const { return stable_.size() / kSectorSize; }

  // Reads observe the device's current view: cached sector if present,
  // otherwise stable media (a controller serves reads from its cache).
  Result<Unit> read(u64 sector, std::span<u8> out);

  // Writes go to the volatile cache only.
  Result<Unit> write(u64 sector, std::span<const u8> data);

  // Write barrier: all cached sectors become stable, cache empties.
  void flush();

  // Simulated power failure. Each cached sector independently persists with
  // probability `persist_ppm` parts-per-million (0 = nothing un-flushed
  // survives, 1'000'000 = crash behaves like flush). Afterwards the cache is
  // empty and the device is usable again ("reboot").
  void crash(u64 persist_ppm = 500'000);

  // Exact count of dirty (cached, unflushed) sectors.
  usize dirty_sectors() const;

  const BlockDeviceStats& stats() const { return stats_; }

  // Test hook: a stable-media snapshot for golden comparisons.
  std::vector<u8> snapshot_stable() const;

 private:
  mutable std::mutex mu_;
  std::vector<u8> stable_;                           // persistent media
  std::unordered_map<u64, std::vector<u8>> cache_;   // sector -> pending bytes
  Rng rng_;
  BlockDeviceStats stats_;
};

}  // namespace vnros

#endif  // VNROS_SRC_HW_BLOCK_DEVICE_H_
