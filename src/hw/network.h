// Network devices and fabric.
//
// The paper's component list includes a network controller driver and §6
// calls out a verified high-performance network stack as an open artifact.
// This model provides the hardware half: NetDevice endpoints (NIC with an RX
// ring) attached to a Network fabric that delivers frames with configurable
// loss, duplication, reordering and latency. The protocol stack in src/net
// is verified against its specs *under* this adversarial fabric — reliability
// has to come from the protocol, not from the wire.
#ifndef VNROS_SRC_HW_NETWORK_H_
#define VNROS_SRC_HW_NETWORK_H_

#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <utility>
#include <vector>

#include "src/base/result.h"
#include "src/base/rng.h"
#include "src/base/types.h"

namespace vnros {

// Link-layer address: a flat endpoint id (the fabric is a single segment).
using LinkAddr = u32;
inline constexpr LinkAddr kLinkBroadcast = 0xFFFF'FFFF;

struct Frame {
  LinkAddr src = 0;
  LinkAddr dst = 0;
  std::vector<u8> payload;
};

struct NetDeviceStats {
  u64 tx_frames = 0;
  u64 rx_frames = 0;
  u64 rx_dropped_full = 0;  // RX ring overflow
};

struct FabricConfig {
  u64 loss_ppm = 0;         // per-frame drop probability
  u64 dup_ppm = 0;          // per-frame duplication probability
  u64 reorder_ppm = 0;      // per-frame "delay behind the next frame" probability
  usize rx_ring_capacity = 1024;
};

class Network;

// One NIC. send() hands a frame to the fabric; poll_rx() pops the next
// received frame, as a driver's RX-ring consumer would.
class NetDevice {
 public:
  LinkAddr addr() const { return addr_; }

  Result<Unit> send(LinkAddr dst, std::vector<u8> payload);

  std::optional<Frame> poll_rx();

  usize rx_pending() const;

  const NetDeviceStats& stats() const { return stats_; }

 private:
  friend class Network;

  NetDevice(Network& net, LinkAddr addr, usize ring_capacity)
      : net_(net), addr_(addr), ring_capacity_(ring_capacity) {}

  void deliver(Frame frame);

  Network& net_;
  LinkAddr addr_;
  usize ring_capacity_;
  mutable std::mutex mu_;
  std::deque<Frame> rx_ring_;
  NetDeviceStats stats_;
};

// The shared segment connecting all devices. Delivery is synchronous but
// subject to the configured fault model; "reordering" holds a frame back and
// releases it after the next send. On top of the stochastic faults the
// fabric supports explicit *partitions*: a cut (a, b) silently drops every
// frame between the pair (both directions, including the broadcast copies)
// until healed — loss a retry cannot outwait, only failover can.
class Network {
 public:
  explicit Network(FabricConfig config = {}, u64 rng_seed = 0x4E45'5457'4F52'4Bull)
      : config_(config), rng_(rng_seed) {}

  // Creates a new endpoint attached to this fabric.
  NetDevice& attach();

  // Replaces the endpoint at `addr` with a fresh device (a rebooted host
  // re-appearing at its old address); `addr == size` appends. Any previous
  // NetDevice reference for this slot is invalidated — callers must have
  // torn the old host down first.
  NetDevice& attach_at(LinkAddr addr);

  const FabricConfig& config() const { return config_; }
  void set_config(FabricConfig config) { config_ = config; }

  // Partition control. Cuts are symmetric and idempotent.
  void partition(LinkAddr a, LinkAddr b);
  void heal(LinkAddr a, LinkAddr b);
  void heal_all();
  bool partitioned(LinkAddr a, LinkAddr b) const;
  usize active_cuts() const;

  // Delivers any frames held back for reordering. Tests call this to drain.
  void release_held();

  u64 frames_lost() const { return frames_lost_; }
  u64 frames_partitioned() const { return frames_partitioned_; }

 private:
  friend class NetDevice;

  static std::pair<LinkAddr, LinkAddr> cut_key(LinkAddr a, LinkAddr b) {
    return a < b ? std::pair{a, b} : std::pair{b, a};
  }

  void transmit(Frame frame);
  void deliver_to(LinkAddr dst, const Frame& frame);

  FabricConfig config_;
  Rng rng_;
  mutable std::mutex mu_;
  std::vector<std::unique_ptr<NetDevice>> devices_;
  std::vector<Frame> held_;  // frames delayed for reordering
  std::set<std::pair<LinkAddr, LinkAddr>> cuts_;  // active partition edges
  u64 frames_lost_ = 0;
  u64 frames_partitioned_ = 0;
};

}  // namespace vnros

#endif  // VNROS_SRC_HW_NETWORK_H_
