// Simulated physical memory.
//
// This is the bottom of the hardware spec (§5): a flat array of frames that
// both the OS (writing page-table bits, file data, ...) and the MMU model
// (walking those bits) read and write. Keeping a single PhysMem object shared
// by implementation and hardware model is what makes the refinement check
// meaningful — the checker interprets the *same bytes* the implementation
// wrote, exactly as hardware would.
//
// Accesses are bounds-checked unconditionally (VNROS_CHECK): an out-of-range
// physical access is a broken simulation, not a verifiable-code bug.
#ifndef VNROS_SRC_HW_PHYS_MEM_H_
#define VNROS_SRC_HW_PHYS_MEM_H_

#include <cstring>
#include <span>
#include <vector>

#include "src/base/contracts.h"
#include "src/base/types.h"

namespace vnros {

class PhysMem {
 public:
  explicit PhysMem(u64 num_frames) : bytes_(num_frames * kPageSize, 0) {
    VNROS_CHECK(num_frames > 0);
  }

  u64 num_frames() const { return bytes_.size() / kPageSize; }
  u64 size_bytes() const { return bytes_.size(); }

  bool contains(PAddr addr, u64 len = 1) const {
    return addr.value + len <= bytes_.size() && addr.value + len >= addr.value;
  }

  u64 read_u64(PAddr addr) const {
    VNROS_CHECK(contains(addr, 8));
    VNROS_CHECK(addr.is_aligned(8));
    u64 v;
    std::memcpy(&v, bytes_.data() + addr.value, 8);
    return v;
  }

  void write_u64(PAddr addr, u64 value) {
    VNROS_CHECK(contains(addr, 8));
    VNROS_CHECK(addr.is_aligned(8));
    std::memcpy(bytes_.data() + addr.value, &value, 8);
  }

  u8 read_u8(PAddr addr) const {
    VNROS_CHECK(contains(addr));
    return bytes_[addr.value];
  }

  void write_u8(PAddr addr, u8 value) {
    VNROS_CHECK(contains(addr));
    bytes_[addr.value] = value;
  }

  void read(PAddr addr, std::span<u8> out) const {
    VNROS_CHECK(contains(addr, out.size()));
    std::memcpy(out.data(), bytes_.data() + addr.value, out.size());
  }

  void write(PAddr addr, std::span<const u8> data) {
    VNROS_CHECK(contains(addr, data.size()));
    std::memcpy(bytes_.data() + addr.value, data.data(), data.size());
  }

  void zero_frame(PAddr frame_base) {
    VNROS_CHECK(frame_base.is_page_aligned());
    VNROS_CHECK(contains(frame_base, kPageSize));
    std::memset(bytes_.data() + frame_base.value, 0, kPageSize);
  }

  // Direct view of a frame for bulk operations (file pages, DMA models).
  std::span<u8> frame_span(PAddr frame_base) {
    VNROS_CHECK(frame_base.is_page_aligned());
    VNROS_CHECK(contains(frame_base, kPageSize));
    return std::span<u8>(bytes_.data() + frame_base.value, kPageSize);
  }

  std::span<const u8> frame_span(PAddr frame_base) const {
    VNROS_CHECK(frame_base.is_page_aligned());
    VNROS_CHECK(contains(frame_base, kPageSize));
    return std::span<const u8>(bytes_.data() + frame_base.value, kPageSize);
  }

 private:
  std::vector<u8> bytes_;
};

}  // namespace vnros

#endif  // VNROS_SRC_HW_PHYS_MEM_H_
