// Verification conditions for the hardware models — the "device driver"
// obligations of Table 2. The drivers above these models are only correct if
// the models honour their own specs: flush is a write barrier, crash loses
// only unflushed sectors, the RX ring drops (never corrupts) on overflow,
// raise/ack is exact, serial output preserves order.
#include "src/hw/vcs.h"

#include <string>
#include <thread>
#include <vector>

#include "src/base/fault.h"
#include "src/base/rng.h"
#include "src/hw/block_device.h"
#include "src/hw/interrupts.h"
#include "src/hw/mmu.h"
#include "src/hw/network.h"
#include "src/hw/phys_mem.h"
#include "src/hw/timer.h"
#include "src/hw/topology.h"

namespace vnros {
namespace {

std::vector<u8> sector_of(u8 fill) { return std::vector<u8>(kSectorSize, fill); }

VcOutcome vc_block_flush_barrier(u64 seed) {
  BlockDevice dev(256, seed);
  // Writes before a flush survive any crash; writes after may vanish.
  (void)dev.write(10, sector_of(0xAA));
  (void)dev.write(11, sector_of(0xBB));
  dev.flush();
  (void)dev.write(12, sector_of(0xCC));
  dev.crash(0);  // adversarial crash: nothing unflushed survives

  std::vector<u8> buf(kSectorSize);
  (void)dev.read(10, buf);
  if (buf != sector_of(0xAA)) {
    return VcOutcome::fail("flushed sector 10 lost");
  }
  (void)dev.read(11, buf);
  if (buf != sector_of(0xBB)) {
    return VcOutcome::fail("flushed sector 11 lost");
  }
  (void)dev.read(12, buf);
  if (buf == sector_of(0xCC)) {
    return VcOutcome::fail("unflushed sector survived a 0%-persistence crash");
  }
  return VcOutcome::pass();
}

VcOutcome vc_block_read_sees_cache() {
  BlockDevice dev(64);
  (void)dev.write(5, sector_of(0x11));
  std::vector<u8> buf(kSectorSize);
  (void)dev.read(5, buf);
  if (buf != sector_of(0x11)) {
    return VcOutcome::fail("read did not observe the cached write");
  }
  if (dev.dirty_sectors() != 1) {
    return VcOutcome::fail("dirty accounting wrong");
  }
  dev.flush();
  if (dev.dirty_sectors() != 0) {
    return VcOutcome::fail("flush left dirty sectors");
  }
  return VcOutcome::pass();
}

VcOutcome vc_block_bounds() {
  BlockDevice dev(8);
  std::vector<u8> buf(kSectorSize);
  if (dev.read(8, buf).ok() || dev.write(9, buf).ok()) {
    return VcOutcome::fail("out-of-range sector accepted");
  }
  std::vector<u8> small(10);
  if (dev.read(0, small).ok()) {
    return VcOutcome::fail("partial-sector read accepted");
  }
  return VcOutcome::pass();
}

VcOutcome vc_net_ring_overflow_drops() {
  FabricConfig config;
  config.rx_ring_capacity = 4;
  Network net(config);
  NetDevice& a = net.attach();
  NetDevice& b = net.attach();
  for (int i = 0; i < 10; ++i) {
    (void)a.send(b.addr(), {static_cast<u8>(i)});
  }
  if (b.rx_pending() != 4) {
    return VcOutcome::fail("ring kept more frames than its capacity");
  }
  if (b.stats().rx_dropped_full != 6) {
    return VcOutcome::fail("overflow drops not accounted");
  }
  // The frames kept are the earliest, intact.
  for (u8 i = 0; i < 4; ++i) {
    auto f = b.poll_rx();
    if (!f || f->payload != std::vector<u8>{i}) {
      return VcOutcome::fail("kept frames corrupted or reordered");
    }
  }
  return VcOutcome::pass();
}

VcOutcome vc_net_broadcast() {
  Network net;
  NetDevice& a = net.attach();
  NetDevice& b = net.attach();
  NetDevice& c = net.attach();
  (void)a.send(kLinkBroadcast, {0x5A});
  if (b.rx_pending() != 1 || c.rx_pending() != 1 || a.rx_pending() != 0) {
    return VcOutcome::fail("broadcast delivery wrong (sender must not self-receive)");
  }
  return VcOutcome::pass();
}

VcOutcome vc_irq_raise_ack() {
  InterruptController irq(2);
  if (irq.next_pending(0) != kNumIrqVectors) {
    return VcOutcome::fail("spurious pending interrupt");
  }
  irq.raise(0, 5);
  irq.raise(0, 3);
  irq.raise(0, 5);  // level-triggered: idempotent
  if (irq.next_pending(0) != 3) {
    return VcOutcome::fail("priority (lowest vector first) violated");
  }
  if (!irq.ack(0, 3) || irq.ack(0, 3)) {
    return VcOutcome::fail("ack semantics wrong");
  }
  if (irq.next_pending(0) != 5) {
    return VcOutcome::fail("remaining vector lost");
  }
  if (irq.next_pending(1) != kNumIrqVectors) {
    return VcOutcome::fail("interrupt leaked across cores");
  }
  return VcOutcome::pass();
}

VcOutcome vc_serial_ordering() {
  SerialConsole console;
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&console, t] {
      for (int i = 0; i < 100; ++i) {
        console.write(std::string(1, static_cast<char>('A' + t)));
      }
    });
  }
  for (auto& w : writers) {
    w.join();
  }
  std::string out = console.contents();
  if (out.size() != 400) {
    return VcOutcome::fail("bytes lost under concurrent writes");
  }
  for (char c = 'A'; c <= 'D'; ++c) {
    if (std::count(out.begin(), out.end(), c) != 100) {
      return VcOutcome::fail("per-writer byte counts wrong");
    }
  }
  return VcOutcome::pass();
}


u64 rng_ppm(u8 cycle) { return (cycle % 3) * 400'000ull; }

// The four walk indices plus the page offset reconstruct the address: the
// arithmetic every level of the walker depends on, checked for random and
// boundary addresses.
VcOutcome vc_mmu_index_decomposition(u64 seed) {
  Rng rng(seed);
  std::vector<u64> vals = {0, 1, kPageSize - 1, kPageSize, kMaxVaddrExclusive - 1};
  for (int i = 0; i < 500; ++i) {
    vals.push_back(rng.next_below(kMaxVaddrExclusive));
  }
  for (u64 v : vals) {
    VAddr va{v};
    u64 rebuilt = (pml4_index(va) << 39) | (pdpt_index(va) << 30) | (pd_index(va) << 21) |
                  (pt_index(va) << 12) | va.page_offset();
    if (rebuilt != v) {
      return VcOutcome::fail("index decomposition lost bits");
    }
    if (pml4_index(va) >= kPtEntries || pdpt_index(va) >= kPtEntries ||
        pd_index(va) >= kPtEntries || pt_index(va) >= kPtEntries) {
      return VcOutcome::fail("index out of table range");
    }
  }
  return VcOutcome::pass();
}

// Topology partitions cores: every core belongs to exactly one node, and the
// per-node core lists cover all cores exactly once.
VcOutcome vc_topology_partition() {
  for (u32 cores : {1u, 2u, 7u, 8u, 28u}) {
    for (u32 per_node : {0u, 1u, 3u, 14u}) {
      Topology topo(cores, per_node);
      std::vector<u32> seen(cores, 0);
      for (NodeId n = 0; n < topo.num_nodes(); ++n) {
        for (CoreId c : topo.cores_on_node(n)) {
          if (topo.node_of_core(c) != n) {
            return VcOutcome::fail("node_of_core disagrees with cores_on_node");
          }
          ++seen[c];
        }
      }
      for (u32 c = 0; c < cores; ++c) {
        if (seen[c] != 1) {
          return VcOutcome::fail("core not in exactly one node");
        }
      }
    }
  }
  return VcOutcome::pass();
}

// A device stays usable through repeated crash/reboot cycles, and stable
// bytes never regress to older values once flushed.
VcOutcome vc_block_crash_reboot_cycles(u64 seed) {
  BlockDevice dev(64, seed);
  std::vector<u8> gen(kSectorSize, 0);
  for (u8 cycle = 1; cycle <= 10; ++cycle) {
    std::fill(gen.begin(), gen.end(), cycle);
    if (!dev.write(5, gen).ok()) {
      return VcOutcome::fail("write failed after crash cycle");
    }
    dev.flush();
    dev.crash(rng_ppm(cycle));
    std::vector<u8> back(kSectorSize);
    (void)dev.read(5, back);
    if (back != gen) {
      return VcOutcome::fail("flushed generation lost in cycle " + std::to_string(cycle));
    }
  }
  return VcOutcome::pass();
}

// PhysMem frame spans alias the same storage as element accessors.
VcOutcome vc_physmem_span_aliasing() {
  PhysMem mem(4);
  auto span = mem.frame_span(PAddr::from_frame(2));
  span[100] = 0xEE;
  if (mem.read_u8(PAddr::from_frame(2).offset(100)) != 0xEE) {
    return VcOutcome::fail("span write invisible to read_u8");
  }
  mem.write_u64(PAddr::from_frame(2).offset(8), 0x0102030405060708ull);
  if (span[8] != 0x08) {
    return VcOutcome::fail("write_u64 invisible to span (little-endian byte 0)");
  }
  return VcOutcome::pass();
}


// Conservation: on a fabric with loss only (no dup), frames sent == frames
// delivered + frames lost + ring drops.
VcOutcome vc_net_loss_accounting(u64 seed) {
  FabricConfig config;
  config.loss_ppm = 250'000;
  Network net(config, seed);
  NetDevice& a = net.attach();
  NetDevice& b = net.attach();
  const u64 kSent = 2000;
  for (u64 i = 0; i < kSent; ++i) {
    (void)a.send(b.addr(), {static_cast<u8>(i)});
  }
  u64 delivered = b.stats().rx_frames;
  u64 dropped_ring = b.stats().rx_dropped_full;
  if (delivered + dropped_ring + net.frames_lost() != kSent) {
    return VcOutcome::fail("frame conservation violated");
  }
  if (net.frames_lost() == 0) {
    return VcOutcome::fail("25% loss fabric lost nothing across 2000 frames");
  }
  return VcOutcome::pass();
}

// --- Fault injection ------------------------------------------------------------

// Out-of-range accesses are a *typed* error (kOutOfRange), distinct from the
// kInvalidArgument of a wrong-sized span — callers can tell "you asked past
// the end" from "your buffer is broken" and neither is ever UB or a clamp.
VcOutcome vc_block_typed_bounds() {
  BlockDevice dev(64, 1, "vc/bounds");
  std::vector<u8> buf(kSectorSize);
  if (dev.read(64, buf).error() != ErrorCode::kOutOfRange) {
    return VcOutcome::fail("read at num_sectors not kOutOfRange");
  }
  if (dev.write(1u << 20, buf).error() != ErrorCode::kOutOfRange) {
    return VcOutcome::fail("write far past the end not kOutOfRange");
  }
  std::vector<u8> runt(10);
  if (dev.read(0, runt).error() != ErrorCode::kInvalidArgument) {
    return VcOutcome::fail("wrong-sized span not kInvalidArgument");
  }
  if (!dev.read(63, buf).ok()) {
    return VcOutcome::fail("last valid sector rejected");
  }
  return VcOutcome::pass();
}

// Armed one-shot faults fire exactly once, report kIoError, leave stable
// data untouched (read/write errors) or apply a strict prefix (torn write).
VcOutcome vc_block_fault_injection(u64 seed) {
  auto& reg = FaultRegistry::global();
  reg.reseed(seed);
  BlockDevice dev(64, seed, "vc/faultdev");
  FaultSpec one_shot;
  one_shot.probability_ppm = 1'000'000;
  one_shot.one_shot = true;

  (void)dev.write(5, sector_of(0x11));
  dev.flush();
  reg.arm("vc/faultdev/read_error", one_shot);
  std::vector<u8> buf(kSectorSize);
  if (dev.read(5, buf).error() != ErrorCode::kIoError) {
    return VcOutcome::fail("armed read error did not fire");
  }
  if (!dev.read(5, buf).ok() || buf != sector_of(0x11)) {
    return VcOutcome::fail("one-shot read error did not disarm, or damaged data");
  }
  reg.arm("vc/faultdev/write_error", one_shot);
  if (dev.write(6, sector_of(0x22)).error() != ErrorCode::kIoError) {
    return VcOutcome::fail("armed write error did not fire");
  }
  if (!dev.write(6, sector_of(0x22)).ok()) {
    return VcOutcome::fail("one-shot write error did not disarm");
  }

  // Torn write: the op reports kIoError but a random nonempty strict prefix
  // of the new data landed anyway — exactly what a lost power-during-write
  // leaves behind.
  (void)dev.write(7, sector_of(0x33));
  dev.flush();
  reg.arm("vc/faultdev/torn_write", one_shot);
  if (dev.write(7, sector_of(0x44)).error() != ErrorCode::kIoError) {
    return VcOutcome::fail("torn write must still report failure");
  }
  (void)dev.read(7, buf);
  if (buf[0] != 0x44) {
    return VcOutcome::fail("torn write applied no prefix at all");
  }
  if (buf[kSectorSize - 1] != 0x33) {
    return VcOutcome::fail("torn write applied the whole sector");
  }
  if (dev.stats().injected_read_errors != 1 || dev.stats().injected_write_errors != 1 ||
      dev.stats().torn_writes != 1) {
    return VcOutcome::fail("fault stats do not match the injected schedule");
  }
  reg.disarm_prefix("vc/faultdev");
  return VcOutcome::pass();
}

// Same registry seed => same fire schedule: the property that makes every
// chaos failure replayable from its printed seed.
VcOutcome vc_fault_schedule_deterministic(u64 seed) {
  auto& reg = FaultRegistry::global();
  FaultSpec spec;
  spec.probability_ppm = 300'000;
  auto schedule = [&] {
    reg.reseed(seed);
    reg.arm("vc/det_site", spec);
    auto& site = reg.site("vc/det_site");
    std::string bits;
    for (int i = 0; i < 200; ++i) {
      bits.push_back(site.fire() ? '1' : '0');
    }
    reg.disarm("vc/det_site");
    return bits;
  };
  std::string first = schedule();
  std::string second = schedule();
  if (first != second) {
    return VcOutcome::fail("same seed produced different fire schedules");
  }
  if (first.find('1') == std::string::npos || first.find('0') == std::string::npos) {
    return VcOutcome::fail("p=0.3 schedule degenerate (all fires or none)");
  }
  return VcOutcome::pass();
}

// --- Partitions ------------------------------------------------------------------

// A cut silently drops both directions (including broadcast copies) between
// exactly the cut pair, counts every drop, and healing restores delivery.
VcOutcome vc_net_partition() {
  Network net;
  NetDevice& a = net.attach();
  NetDevice& b = net.attach();
  NetDevice& c = net.attach();

  (void)a.send(b.addr(), {0x01});
  if (!b.poll_rx()) {
    return VcOutcome::fail("pre-cut frame not delivered");
  }
  net.partition(a.addr(), b.addr());
  if (!net.partitioned(a.addr(), b.addr()) || !net.partitioned(b.addr(), a.addr())) {
    return VcOutcome::fail("cut not symmetric");
  }
  (void)a.send(b.addr(), {0x02});
  (void)b.send(a.addr(), {0x03});
  if (b.poll_rx() || a.poll_rx()) {
    return VcOutcome::fail("frame crossed an active cut");
  }
  (void)a.send(c.addr(), {0x04});
  if (!c.poll_rx()) {
    return VcOutcome::fail("cut (a,b) affected pair (a,c)");
  }
  (void)a.send(kLinkBroadcast, {0x05});
  if (b.poll_rx()) {
    return VcOutcome::fail("broadcast copy crossed an active cut");
  }
  if (!c.poll_rx()) {
    return VcOutcome::fail("broadcast to an uncut peer dropped");
  }
  if (net.frames_partitioned() != 3) {
    return VcOutcome::fail("partitioned-frame accounting wrong");
  }
  net.heal(a.addr(), b.addr());
  (void)a.send(b.addr(), {0x06});
  auto healed = b.poll_rx();
  if (!healed || healed->payload != std::vector<u8>{0x06}) {
    return VcOutcome::fail("healed link did not resume delivery");
  }
  if (net.active_cuts() != 0) {
    return VcOutcome::fail("cut set not empty after heal");
  }
  return VcOutcome::pass();
}

}  // namespace

void register_hw_vcs(VcRegistry& reg) {
  for (u64 seed = 1; seed <= 2; ++seed) {
    reg.add("hw/block_flush_barrier_seed" + std::to_string(seed), VcCategory::kDrivers,
            [seed] { return vc_block_flush_barrier(seed); });
  }
  reg.add("hw/block_read_sees_cache", VcCategory::kDrivers,
          [] { return vc_block_read_sees_cache(); });
  reg.add("hw/block_bounds", VcCategory::kDrivers, [] { return vc_block_bounds(); });
  reg.add("hw/net_ring_overflow_drops", VcCategory::kDrivers,
          [] { return vc_net_ring_overflow_drops(); });
  reg.add("hw/net_broadcast", VcCategory::kDrivers, [] { return vc_net_broadcast(); });
  reg.add("hw/irq_raise_ack", VcCategory::kDrivers, [] { return vc_irq_raise_ack(); });
  reg.add("hw/serial_ordering", VcCategory::kDrivers, [] { return vc_serial_ordering(); });
  for (u64 seed = 1; seed <= 2; ++seed) {
    reg.add("hw/mmu_index_decomposition_seed" + std::to_string(seed), VcCategory::kMemorySafety,
            [seed] { return vc_mmu_index_decomposition(seed); });
  }
  reg.add("hw/topology_partition", VcCategory::kDrivers, [] { return vc_topology_partition(); });
  for (u64 seed = 1; seed <= 2; ++seed) {
    reg.add("hw/block_crash_reboot_cycles_seed" + std::to_string(seed), VcCategory::kDrivers,
            [seed] { return vc_block_crash_reboot_cycles(seed); });
  }
  reg.add("hw/physmem_span_aliasing", VcCategory::kMemorySafety,
          [] { return vc_physmem_span_aliasing(); });
  for (u64 seed = 1; seed <= 2; ++seed) {
    reg.add("hw/net_loss_accounting_seed" + std::to_string(seed), VcCategory::kDrivers,
            [seed] { return vc_net_loss_accounting(seed); });
  }
  reg.add("hw/block_typed_bounds", VcCategory::kDrivers, [] { return vc_block_typed_bounds(); });
  for (u64 seed = 1; seed <= 2; ++seed) {
    reg.add("hw/block_fault_injection_seed" + std::to_string(seed), VcCategory::kDrivers,
            [seed] { return vc_block_fault_injection(seed); });
    reg.add("hw/fault_schedule_deterministic_seed" + std::to_string(seed), VcCategory::kDrivers,
            [seed] { return vc_fault_schedule_deterministic(seed); });
  }
  reg.add("hw/net_partition", VcCategory::kDrivers, [] { return vc_net_partition(); });
}

}  // namespace vnros
