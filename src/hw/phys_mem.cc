// PhysMem is header-only; this file anchors the translation unit.
#include "src/hw/phys_mem.h"
