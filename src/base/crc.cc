#include "src/base/crc.h"

#include <array>

namespace vnros {
namespace {

constexpr std::array<u32, 256> make_crc32c_table() {
  std::array<u32, 256> table{};
  for (u32 i = 0; i < 256; ++i) {
    u32 crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc >> 1) ^ ((crc & 1) != 0 ? 0x82F63B78u : 0u);
    }
    table[i] = crc;
  }
  return table;
}

constexpr std::array<u64, 256> make_crc64_table() {
  std::array<u64, 256> table{};
  for (u64 i = 0; i < 256; ++i) {
    u64 crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc >> 1) ^ ((crc & 1) != 0 ? 0xC96C5795D7870F42ull : 0ull);
    }
    table[i] = crc;
  }
  return table;
}

constexpr auto kCrc32cTable = make_crc32c_table();
constexpr auto kCrc64Table = make_crc64_table();

}  // namespace

u32 crc32c(std::span<const u8> data, u32 seed) {
  u32 crc = ~seed;
  for (u8 byte : data) {
    crc = (crc >> 8) ^ kCrc32cTable[(crc ^ byte) & 0xFF];
  }
  return ~crc;
}

u64 crc64(std::span<const u8> data, u64 seed) {
  u64 crc = ~seed;
  for (u8 byte : data) {
    crc = (crc >> 8) ^ kCrc64Table[(crc ^ byte) & 0xFF];
  }
  return ~crc;
}

}  // namespace vnros
