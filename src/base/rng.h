// Deterministic pseudo-random number generation (xoshiro256**).
//
// Everything stochastic in vnros — property-based refinement checks, fault
// injection, network loss — draws from a seeded Rng so every failure is
// replayable from its seed. Tests print the seed on failure.
#ifndef VNROS_SRC_BASE_RNG_H_
#define VNROS_SRC_BASE_RNG_H_

#include <array>

#include "src/base/contracts.h"
#include "src/base/types.h"

namespace vnros {

class Rng {
 public:
  explicit Rng(u64 seed) { reseed(seed); }

  void reseed(u64 seed) {
    // SplitMix64 expansion of the seed into xoshiro state; never all-zero.
    u64 x = seed + 0x9E3779B97F4A7C15ull;
    for (auto& s : state_) {
      u64 z = (x += 0x9E3779B97F4A7C15ull);
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
      s = z ^ (z >> 31);
    }
  }

  u64 next_u64() {
    const u64 result = rotl(state_[1] * 5, 7) * 9;
    const u64 t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  u32 next_u32() { return static_cast<u32>(next_u64() >> 32); }

  // Uniform in [0, bound); bound must be nonzero. Uses rejection sampling to
  // avoid modulo bias (matters for exhaustive-ish sweeps).
  u64 next_below(u64 bound) {
    VNROS_CHECK(bound != 0);
    const u64 threshold = (~bound + 1) % bound;  // == 2^64 mod bound
    for (;;) {
      u64 r = next_u64();
      if (r >= threshold) {
        return r % bound;
      }
    }
  }

  // Uniform in [lo, hi] inclusive.
  u64 next_range(u64 lo, u64 hi) {
    VNROS_CHECK(lo <= hi);
    return lo + next_below(hi - lo + 1);
  }

  // Bernoulli(p) with p expressed in parts-per-million.
  bool chance_ppm(u64 ppm) { return next_below(1'000'000) < ppm; }

  // Bernoulli with probability numer/denom.
  bool chance(u64 numer, u64 denom) {
    VNROS_CHECK(denom != 0);
    return next_below(denom) < numer;
  }

  double next_unit_double() {
    return static_cast<double>(next_u64() >> 11) * (1.0 / 9007199254740992.0);
  }

 private:
  static constexpr u64 rotl(u64 x, int k) { return (x << k) | (x >> (64 - k)); }

  std::array<u64, 4> state_{};
};

}  // namespace vnros

#endif  // VNROS_SRC_BASE_RNG_H_
