// Core integer and address types shared by every vnros module.
//
// Virtual and physical addresses are distinct strong types: mixing them up is
// the classic page-table bug class, and the whole point of this codebase is
// that such bugs are ruled out (here: by the type system; in the paper: by
// Verus' type system plus refinement proofs).
#ifndef VNROS_SRC_BASE_TYPES_H_
#define VNROS_SRC_BASE_TYPES_H_

#include <compare>
#include <cstddef>
#include <cstdint>
#include <functional>

namespace vnros {

using u8 = std::uint8_t;
using u16 = std::uint16_t;
using u32 = std::uint32_t;
using u64 = std::uint64_t;
using i8 = std::int8_t;
using i16 = std::int16_t;
using i32 = std::int32_t;
using i64 = std::int64_t;
using usize = std::size_t;
using isize = std::ptrdiff_t;

// x86-64 page geometry.
inline constexpr u64 kPageShift = 12;
inline constexpr u64 kPageSize = u64{1} << kPageShift;          // 4 KiB
inline constexpr u64 kLargePageSize = u64{1} << 21;             // 2 MiB
inline constexpr u64 kHugePageSize = u64{1} << 30;              // 1 GiB
inline constexpr u64 kPageMask = kPageSize - 1;

// Canonical 48-bit virtual address space (4-level paging).
inline constexpr u64 kVaddrBits = 48;
inline constexpr u64 kMaxVaddrExclusive = u64{1} << kVaddrBits;

// A virtual address as seen by a process.
struct VAddr {
  u64 value = 0;

  constexpr VAddr() = default;
  constexpr explicit VAddr(u64 v) : value(v) {}

  constexpr auto operator<=>(const VAddr&) const = default;

  constexpr bool is_page_aligned() const { return (value & kPageMask) == 0; }
  constexpr bool is_aligned(u64 alignment) const { return (value % alignment) == 0; }
  constexpr bool is_canonical() const { return value < kMaxVaddrExclusive; }
  constexpr VAddr align_down(u64 alignment) const { return VAddr{value - value % alignment}; }
  constexpr VAddr offset(u64 delta) const { return VAddr{value + delta}; }
  constexpr u64 page_offset() const { return value & kPageMask; }
  constexpr VAddr page_base() const { return VAddr{value & ~kPageMask}; }
};

// A physical address in simulated machine memory.
struct PAddr {
  u64 value = 0;

  constexpr PAddr() = default;
  constexpr explicit PAddr(u64 v) : value(v) {}

  constexpr auto operator<=>(const PAddr&) const = default;

  constexpr bool is_page_aligned() const { return (value & kPageMask) == 0; }
  constexpr bool is_aligned(u64 alignment) const { return (value % alignment) == 0; }
  constexpr PAddr offset(u64 delta) const { return PAddr{value + delta}; }
  constexpr u64 frame_number() const { return value >> kPageShift; }
  constexpr u64 page_offset() const { return value & kPageMask; }
  constexpr PAddr page_base() const { return PAddr{value & ~kPageMask}; }

  static constexpr PAddr from_frame(u64 frame) { return PAddr{frame << kPageShift}; }
};

// Identifiers used across the kernel. Strong enough to avoid swapping a pid
// for a core id in a call; cheap enough to pass by value everywhere.
using CoreId = u32;
using NodeId = u32;   // NUMA node
using Pid = u64;
using Tid = u64;
using Fd = i32;

inline constexpr Pid kInvalidPid = ~u64{0};
inline constexpr Fd kInvalidFd = -1;

}  // namespace vnros

template <>
struct std::hash<vnros::VAddr> {
  std::size_t operator()(const vnros::VAddr& a) const noexcept {
    return std::hash<vnros::u64>{}(a.value);
  }
};

template <>
struct std::hash<vnros::PAddr> {
  std::size_t operator()(const vnros::PAddr& a) const noexcept {
    return std::hash<vnros::u64>{}(a.value);
  }
};

#endif  // VNROS_SRC_BASE_TYPES_H_
