// Deterministic fault injection.
//
// The paper's motivating application (the storage node of a distributed
// block store) earns its correctness claim at the failure boundary: disks
// error and tear, allocators run dry, fabrics drop and partition. Every
// component that can fail declares a named *injection site*
// ("disk0/write_error", "frame_alloc/oom", "syscall/io_error"); tests and
// the chaos harness arm sites with a schedule — fire with probability p,
// fire exactly on the nth eligible call, fire once then disarm — and every
// stochastic decision draws from one seeded Rng in the registry, so any
// failing schedule replays bit-identically from its seed.
//
// Sites are process-global (FaultRegistry::global()) and cheap when
// disarmed: components cache the FaultSite* once and fire() is a single
// relaxed atomic load until a schedule is armed.
#ifndef VNROS_SRC_BASE_FAULT_H_
#define VNROS_SRC_BASE_FAULT_H_

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "src/base/result.h"
#include "src/base/rng.h"
#include "src/base/types.h"

namespace vnros {

// How an armed site decides to fire. Exactly one trigger is consulted:
// `nth_call` when nonzero (deterministic count-based firing), otherwise
// `probability_ppm` (seeded-stochastic firing).
struct FaultSpec {
  u64 probability_ppm = 0;                 // Bernoulli per eligible call
  u64 nth_call = 0;                        // 1-based: fire on exactly this call
  bool one_shot = false;                   // disarm after the first fire
  ErrorCode error = ErrorCode::kIoError;   // what the site surfaces
  u64 delay = 0;                           // latency sites: stall duration (virtual polls)
  u64 corrupt_bytes = 0;                   // bit-rot sites: bytes to silently flip
};

struct FaultSiteStats {
  u64 evaluations = 0;  // eligible calls while armed
  u64 fires = 0;        // calls that injected the fault
};

class FaultRegistry;

// One named injection point. Obtained (and cached) via
// FaultRegistry::site(); fire() is called on the component's fallible path.
class FaultSite {
 public:
  // Returns the configured error if this call should fail, nullopt to
  // proceed normally. Fast path when disarmed: one relaxed load.
  std::optional<ErrorCode> fire();

  // Latency variant: returns the configured stall duration (virtual polls)
  // if this call should be delayed, nullopt to proceed at full speed. Used
  // by sites that model slow peers rather than hard failures; a spec with
  // delay == 0 never stalls. Shares the trigger machinery (and stats) with
  // fire(), so delay schedules replay bit-identically too.
  std::optional<u64> fire_delay();

  // Silent-corruption variant (disk bit-rot): returns how many bytes the
  // caller should flip in the data it is about to return — the operation
  // itself SUCCEEDS, so only end-to-end checksums can catch the damage. A
  // spec with corrupt_bytes == 0 never corrupts. Same trigger machinery as
  // fire(), so rot schedules replay bit-identically.
  std::optional<u64> fire_corrupt();

  const std::string& name() const { return name_; }
  bool armed() const { return armed_.load(std::memory_order_relaxed); }
  FaultSiteStats stats() const;

 private:
  friend class FaultRegistry;
  FaultSite(FaultRegistry& registry, std::string name)
      : registry_(registry), name_(std::move(name)) {}

  // Trigger evaluation shared by fire()/fire_delay(): returns the armed spec
  // when this call hits, nullopt otherwise. Takes the registry mutex.
  std::optional<FaultSpec> roll();

  FaultRegistry& registry_;
  const std::string name_;
  std::atomic<bool> armed_{false};
  // The fields below are guarded by the registry mutex.
  FaultSpec spec_;
  u64 calls_while_armed_ = 0;
  FaultSiteStats stats_;
};

// Registry of every injection site, plus the one Rng all stochastic firing
// decisions draw from. Sites live for the process lifetime, so cached
// FaultSite pointers never dangle.
class FaultRegistry {
 public:
  static FaultRegistry& global();

  // Returns the site named `name`, creating it on first use.
  FaultSite& site(std::string_view name);

  // Arms `name` with `spec` (resetting its call counter); creates the site
  // if no component registered it yet (the schedule can outrun the device).
  void arm(std::string_view name, FaultSpec spec);
  void disarm(std::string_view name);
  void disarm_all();

  // Disarms every site whose name starts with `prefix` (e.g. one node's
  // disk: "disk2/"). Returns how many sites were armed.
  usize disarm_prefix(std::string_view prefix);

  // Re-seeds the shared Rng; call at the start of a schedule so the whole
  // run is a pure function of the seed.
  void reseed(u64 seed);

  // Resets all stats and call counters (leaves armed schedules in place).
  void reset_stats();

  std::vector<std::pair<std::string, FaultSiteStats>> stats() const;
  u64 total_fires() const;

 private:
  friend class FaultSite;

  mutable std::mutex mu_;
  Rng rng_{0xFA17ull};
  std::map<std::string, std::unique_ptr<FaultSite>, std::less<>> sites_;
};

}  // namespace vnros

#endif  // VNROS_SRC_BASE_FAULT_H_
