// Executable specification contracts.
//
// The paper writes syscall and page-table specifications as Verus
// requires/ensures clauses that are *statically* discharged and erased from
// the compiled binary. C++ has no production SMT verifier, so vnros makes the
// same clauses *executable*: VNROS_REQUIRES / VNROS_ENSURES / VNROS_INVARIANT
// evaluate their condition when contract checking is enabled and abort with a
// diagnostic when a clause is violated.
//
// Two switches control the cost:
//   - Compile time: defining VNROS_DISABLE_CONTRACTS erases every contract,
//     like Verus erasing ghost code. Benchmarked "verified" binaries use this
//     mode (or the runtime switch below left off), which is why verified and
//     unverified implementations match in Figure 1b/c.
//   - Run time: contracts_enabled() — tests and the VC runner flip this on.
//     The off-state costs one relaxed atomic load per contract.
#ifndef VNROS_SRC_BASE_CONTRACTS_H_
#define VNROS_SRC_BASE_CONTRACTS_H_

#include <atomic>

namespace vnros {

namespace contract_detail {
extern std::atomic<bool> g_contracts_enabled;
extern std::atomic<unsigned long long> g_contracts_checked;

// Aborts the process with a formatted diagnostic. Out of line so the macro
// expansion stays small in hot functions.
[[noreturn]] void contract_failed(const char* kind, const char* condition, const char* file,
                                  int line);
}  // namespace contract_detail

// Globally enables/disables runtime contract evaluation. Returns the previous
// setting so scoped helpers can restore it.
inline bool set_contracts_enabled(bool enabled) {
  return contract_detail::g_contracts_enabled.exchange(enabled, std::memory_order_relaxed);
}

inline bool contracts_enabled() {
  return contract_detail::g_contracts_enabled.load(std::memory_order_relaxed);
}

// Number of contract clauses evaluated since process start; the proof-burden
// accounting in bench/ratio_proof_to_code reports this.
inline unsigned long long contracts_checked_count() {
  return contract_detail::g_contracts_checked.load(std::memory_order_relaxed);
}

// RAII helper: enables contracts for a scope (used by tests and the VC
// engine), restoring the previous mode on exit.
class ScopedContracts {
 public:
  explicit ScopedContracts(bool enabled = true) : previous_(set_contracts_enabled(enabled)) {}
  ~ScopedContracts() { set_contracts_enabled(previous_); }

  ScopedContracts(const ScopedContracts&) = delete;
  ScopedContracts& operator=(const ScopedContracts&) = delete;

 private:
  bool previous_;
};

}  // namespace vnros

#if defined(VNROS_DISABLE_CONTRACTS)

#define VNROS_REQUIRES(cond) ((void)0)
#define VNROS_ENSURES(cond) ((void)0)
#define VNROS_INVARIANT(cond) ((void)0)

#else

#define VNROS_CONTRACT_IMPL(kind, cond)                                                     \
  do {                                                                                      \
    if (::vnros::contracts_enabled()) {                                                     \
      ::vnros::contract_detail::g_contracts_checked.fetch_add(1, std::memory_order_relaxed); \
      if (!(cond)) {                                                                        \
        ::vnros::contract_detail::contract_failed(kind, #cond, __FILE__, __LINE__);         \
      }                                                                                     \
    }                                                                                       \
  } while (0)

// Precondition: caller obligation at function entry.
#define VNROS_REQUIRES(cond) VNROS_CONTRACT_IMPL("requires", cond)
// Postcondition: implementation obligation at function exit.
#define VNROS_ENSURES(cond) VNROS_CONTRACT_IMPL("ensures", cond)
// Data-structure invariant: must hold at every quiescent point.
#define VNROS_INVARIANT(cond) VNROS_CONTRACT_IMPL("invariant", cond)

#endif  // VNROS_DISABLE_CONTRACTS

// Unconditional internal-consistency check, independent of contract mode.
// Used for machine-model integrity (e.g. physical memory bounds), where a
// violation means the simulation itself is broken, not the verified code.
#define VNROS_CHECK(cond)                                                                  \
  do {                                                                                     \
    if (!(cond)) {                                                                         \
      ::vnros::contract_detail::contract_failed("check", #cond, __FILE__, __LINE__);       \
    }                                                                                      \
  } while (0)

#endif  // VNROS_SRC_BASE_CONTRACTS_H_
