// Minimal leveled logging.
//
// The default level is kWarn so tests and benchmarks stay quiet; examples
// raise it to kInfo to narrate what the system does. printf-style because the
// toolchain (GCC 12) predates usable std::format.
#ifndef VNROS_SRC_BASE_LOG_H_
#define VNROS_SRC_BASE_LOG_H_

#include <cstdarg>

namespace vnros {

enum class LogLevel : int {
  kError = 0,
  kWarn = 1,
  kInfo = 2,
  kDebug = 3,
};

void set_log_level(LogLevel level);
LogLevel log_level();

// Core sink; prefer the VNROS_LOG_* macros which skip argument evaluation
// when the level is filtered out.
void log_message(LogLevel level, const char* module, const char* fmt, ...)
    __attribute__((format(printf, 3, 4)));

}  // namespace vnros

#define VNROS_LOG_AT(level, module, ...)                   \
  do {                                                     \
    if (static_cast<int>(::vnros::log_level()) >=          \
        static_cast<int>(level)) {                         \
      ::vnros::log_message(level, module, __VA_ARGS__);    \
    }                                                      \
  } while (0)

#define VNROS_LOG_ERROR(module, ...) VNROS_LOG_AT(::vnros::LogLevel::kError, module, __VA_ARGS__)
#define VNROS_LOG_WARN(module, ...) VNROS_LOG_AT(::vnros::LogLevel::kWarn, module, __VA_ARGS__)
#define VNROS_LOG_INFO(module, ...) VNROS_LOG_AT(::vnros::LogLevel::kInfo, module, __VA_ARGS__)
#define VNROS_LOG_DEBUG(module, ...) VNROS_LOG_AT(::vnros::LogLevel::kDebug, module, __VA_ARGS__)

#endif  // VNROS_SRC_BASE_LOG_H_
