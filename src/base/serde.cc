// serde is header-only; this translation unit exists so the library has at
// least one object file and the header is compiled standalone once.
#include "src/base/serde.h"
