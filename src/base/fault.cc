#include "src/base/fault.h"

#include "src/base/log.h"

namespace vnros {

FaultRegistry& FaultRegistry::global() {
  static FaultRegistry* instance = new FaultRegistry();
  return *instance;
}

FaultSite& FaultRegistry::site(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sites_.find(name);
  if (it == sites_.end()) {
    std::string key(name);
    auto created = std::unique_ptr<FaultSite>(new FaultSite(*this, key));
    it = sites_.emplace(std::move(key), std::move(created)).first;
  }
  return *it->second;
}

void FaultRegistry::arm(std::string_view name, FaultSpec spec) {
  FaultSite& s = site(name);
  std::lock_guard<std::mutex> lock(mu_);
  s.spec_ = spec;
  s.calls_while_armed_ = 0;
  s.armed_.store(true, std::memory_order_relaxed);
  VNROS_LOG_DEBUG("fault", "armed %s (p=%lluppm nth=%llu one_shot=%d -> %s)", s.name_.c_str(),
                  static_cast<unsigned long long>(spec.probability_ppm),
                  static_cast<unsigned long long>(spec.nth_call), spec.one_shot ? 1 : 0,
                  error_name(spec.error));
}

void FaultRegistry::disarm(std::string_view name) {
  FaultSite& s = site(name);
  std::lock_guard<std::mutex> lock(mu_);
  s.armed_.store(false, std::memory_order_relaxed);
}

void FaultRegistry::disarm_all() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, s] : sites_) {
    s->armed_.store(false, std::memory_order_relaxed);
  }
}

usize FaultRegistry::disarm_prefix(std::string_view prefix) {
  std::lock_guard<std::mutex> lock(mu_);
  usize disarmed = 0;
  for (auto& [name, s] : sites_) {
    if (name.size() >= prefix.size() && std::string_view(name).substr(0, prefix.size()) == prefix &&
        s->armed_.load(std::memory_order_relaxed)) {
      s->armed_.store(false, std::memory_order_relaxed);
      ++disarmed;
    }
  }
  return disarmed;
}

void FaultRegistry::reseed(u64 seed) {
  std::lock_guard<std::mutex> lock(mu_);
  rng_.reseed(seed);
}

void FaultRegistry::reset_stats() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, s] : sites_) {
    s->stats_ = FaultSiteStats{};
    s->calls_while_armed_ = 0;
  }
}

std::vector<std::pair<std::string, FaultSiteStats>> FaultRegistry::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, FaultSiteStats>> out;
  out.reserve(sites_.size());
  for (const auto& [name, s] : sites_) {
    out.emplace_back(name, s->stats_);
  }
  return out;
}

u64 FaultRegistry::total_fires() const {
  std::lock_guard<std::mutex> lock(mu_);
  u64 total = 0;
  for (const auto& [name, s] : sites_) {
    total += s->stats_.fires;
  }
  return total;
}

std::optional<FaultSpec> FaultSite::roll() {
  if (!armed_.load(std::memory_order_relaxed)) {
    return std::nullopt;
  }
  std::lock_guard<std::mutex> lock(registry_.mu_);
  if (!armed_.load(std::memory_order_relaxed)) {
    return std::nullopt;  // disarmed while we waited for the lock
  }
  ++stats_.evaluations;
  ++calls_while_armed_;
  bool hit = false;
  if (spec_.nth_call != 0) {
    hit = calls_while_armed_ == spec_.nth_call;
  } else if (spec_.probability_ppm != 0) {
    hit = registry_.rng_.chance_ppm(spec_.probability_ppm);
  }
  if (!hit) {
    return std::nullopt;
  }
  ++stats_.fires;
  if (spec_.one_shot || spec_.nth_call != 0) {
    armed_.store(false, std::memory_order_relaxed);
  }
  VNROS_LOG_DEBUG("fault", "%s fired -> %s (fire #%llu, delay=%llu)", name_.c_str(),
                  error_name(spec_.error), static_cast<unsigned long long>(stats_.fires),
                  static_cast<unsigned long long>(spec_.delay));
  return spec_;
}

std::optional<ErrorCode> FaultSite::fire() {
  auto spec = roll();
  if (!spec) {
    return std::nullopt;
  }
  return spec->error;
}

std::optional<u64> FaultSite::fire_delay() {
  auto spec = roll();
  if (!spec || spec->delay == 0) {
    return std::nullopt;
  }
  return spec->delay;
}

std::optional<u64> FaultSite::fire_corrupt() {
  auto spec = roll();
  if (!spec || spec->corrupt_bytes == 0) {
    return std::nullopt;
  }
  return spec->corrupt_bytes;
}

FaultSiteStats FaultSite::stats() const {
  std::lock_guard<std::mutex> lock(registry_.mu_);
  return stats_;
}

}  // namespace vnros
