#include "src/base/contracts.h"

#include <cstdio>
#include <cstdlib>

namespace vnros {
namespace contract_detail {

std::atomic<bool> g_contracts_enabled{false};
std::atomic<unsigned long long> g_contracts_checked{0};

void contract_failed(const char* kind, const char* condition, const char* file, int line) {
  std::fprintf(stderr, "vnros: %s clause violated: %s\n  at %s:%d\n", kind, condition, file,
               line);
  std::fflush(stderr);
  std::abort();
}

}  // namespace contract_detail
}  // namespace vnros
