// Serialization for syscall marshalling and wire protocols.
//
// Section 3 of the paper lists *marshalling* as one of the three syscall
// verification obligations: arguments and return values must round-trip
// through serialization so user-space and kernel-space agree on them. Writer
// and Reader here are that serialization library; the round-trip property
// ("decode(encode(x)) == x and consumes exactly encode(x).size() bytes") is a
// registered verification condition for every syscall argument frame (see
// src/kernel/syscall_abi.h) and every network header (src/net).
//
// Encoding: little-endian fixed-width integers, u32-length-prefixed byte
// strings. No varints — syscall frames favour auditability over density.
#ifndef VNROS_SRC_BASE_SERDE_H_
#define VNROS_SRC_BASE_SERDE_H_

#include <cstring>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "src/base/types.h"

namespace vnros {

class Writer {
 public:
  Writer() = default;

  void put_u8(u8 v) { buf_.push_back(v); }
  void put_u16(u16 v) { put_le(v); }
  void put_u32(u32 v) { put_le(v); }
  void put_u64(u64 v) { put_le(v); }
  void put_i64(i64 v) { put_le(static_cast<u64>(v)); }
  void put_bool(bool v) { put_u8(v ? 1 : 0); }

  void put_bytes(std::span<const u8> data) {
    put_u32(static_cast<u32>(data.size()));
    buf_.insert(buf_.end(), data.begin(), data.end());
  }

  void put_string(std::string_view s) {
    put_bytes(std::span<const u8>(reinterpret_cast<const u8*>(s.data()), s.size()));
  }

  // Raw append without a length prefix (for fixed-layout trailers).
  void put_raw(std::span<const u8> data) { buf_.insert(buf_.end(), data.begin(), data.end()); }

  const std::vector<u8>& bytes() const { return buf_; }
  std::vector<u8> take() { return std::move(buf_); }
  usize size() const { return buf_.size(); }

 private:
  template <typename T>
  void put_le(T v) {
    for (usize i = 0; i < sizeof(T); ++i) {
      buf_.push_back(static_cast<u8>(v >> (8 * i)));
    }
  }

  std::vector<u8> buf_;
};

// Reader returns std::nullopt on any truncated or malformed input instead of
// reading out of bounds; a syscall frame that fails to decode is rejected as
// kInvalidArgument rather than interpreted partially.
class Reader {
 public:
  explicit Reader(std::span<const u8> data) : data_(data) {}

  std::optional<u8> get_u8() {
    if (pos_ + 1 > data_.size()) {
      return std::nullopt;
    }
    return data_[pos_++];
  }

  std::optional<u16> get_u16() { return get_le<u16>(); }
  std::optional<u32> get_u32() { return get_le<u32>(); }
  std::optional<u64> get_u64() { return get_le<u64>(); }

  std::optional<i64> get_i64() {
    auto v = get_le<u64>();
    if (!v) {
      return std::nullopt;
    }
    return static_cast<i64>(*v);
  }

  std::optional<bool> get_bool() {
    auto v = get_u8();
    if (!v || *v > 1) {
      return std::nullopt;  // non-canonical bool is malformed, not "true"
    }
    return *v == 1;
  }

  std::optional<std::vector<u8>> get_bytes() {
    auto len = get_u32();
    if (!len || pos_ + *len > data_.size()) {
      return std::nullopt;
    }
    std::vector<u8> out(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
                        data_.begin() + static_cast<std::ptrdiff_t>(pos_ + *len));
    pos_ += *len;
    return out;
  }

  std::optional<std::string> get_string() {
    auto bytes = get_bytes();
    if (!bytes) {
      return std::nullopt;
    }
    return std::string(bytes->begin(), bytes->end());
  }

  std::optional<std::vector<u8>> get_raw(usize n) {
    if (pos_ + n > data_.size()) {
      return std::nullopt;
    }
    std::vector<u8> out(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
                        data_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
    pos_ += n;
    return out;
  }

  usize position() const { return pos_; }
  usize remaining() const { return data_.size() - pos_; }
  bool exhausted() const { return pos_ == data_.size(); }

 private:
  template <typename T>
  std::optional<T> get_le() {
    if (pos_ + sizeof(T) > data_.size()) {
      return std::nullopt;
    }
    T v = 0;
    for (usize i = 0; i < sizeof(T); ++i) {
      v |= static_cast<T>(static_cast<T>(data_[pos_ + i]) << (8 * i));
    }
    pos_ += sizeof(T);
    return v;
  }

  std::span<const u8> data_;
  usize pos_ = 0;
};

// Convenience: view a POD buffer as bytes.
template <typename T>
std::span<const u8> as_bytes(const T& v) {
  return std::span<const u8>(reinterpret_cast<const u8*>(&v), sizeof(T));
}

inline std::span<const u8> string_bytes(std::string_view s) {
  return std::span<const u8>(reinterpret_cast<const u8*>(s.data()), s.size());
}

}  // namespace vnros

#endif  // VNROS_SRC_BASE_SERDE_H_
