#include "src/base/log.h"

#include <atomic>
#include <cstdio>

namespace vnros {
namespace {

std::atomic<int> g_level{static_cast<int>(LogLevel::kWarn)};

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kError: return "E";
    case LogLevel::kWarn: return "W";
    case LogLevel::kInfo: return "I";
    case LogLevel::kDebug: return "D";
  }
  return "?";
}

}  // namespace

void set_log_level(LogLevel level) { g_level.store(static_cast<int>(level)); }

LogLevel log_level() { return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed)); }

void log_message(LogLevel level, const char* module, const char* fmt, ...) {
  char body[512];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(body, sizeof(body), fmt, args);
  va_end(args);
  std::fprintf(stderr, "[%s %s] %s\n", level_tag(level), module, body);
}

}  // namespace vnros
