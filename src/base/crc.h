// Checksums used by the storage stack.
//
// crc32c (Castagnoli) guards filesystem journal records and block-store
// payloads; crc64 guards whole-device snapshots in tests. Both are plain
// table-driven software implementations so results are identical on any host.
#ifndef VNROS_SRC_BASE_CRC_H_
#define VNROS_SRC_BASE_CRC_H_

#include <span>

#include "src/base/types.h"

namespace vnros {

// CRC-32C (polynomial 0x1EDC6F41, reflected). `seed` allows incremental use:
// crc32c(b, crc32c(a)) == crc32c(a ++ b).
u32 crc32c(std::span<const u8> data, u32 seed = 0);

// CRC-64/XZ (polynomial 0x42F0E1EBA9EA3693, reflected).
u64 crc64(std::span<const u8> data, u64 seed = 0);

}  // namespace vnros

#endif  // VNROS_SRC_BASE_CRC_H_
