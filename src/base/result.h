// Error handling: kernel-style error codes plus a small Result<T> sum type.
//
// vnros never throws across module boundaries; fallible operations return
// Result<T> (or ErrorCode for void-like operations). This mirrors the paper's
// syscall model where every transition either succeeds with a value or fails
// with a specified error, and the spec covers both branches.
#ifndef VNROS_SRC_BASE_RESULT_H_
#define VNROS_SRC_BASE_RESULT_H_

#include <utility>
#include <variant>

#include "src/base/types.h"

namespace vnros {

enum class ErrorCode : u32 {
  kOk = 0,
  kNoMemory,          // out of physical frames / heap
  kAlreadyMapped,     // map over an existing mapping
  kNotMapped,         // unmap/resolve of an unmapped address
  kInvalidArgument,   // misaligned / non-canonical / malformed input
  kNotFound,          // no such file, process, socket, ...
  kAlreadyExists,     // create of an existing path
  kBadFd,             // fd not open in this process
  kNotPermitted,      // permission bits forbid the access
  kWouldBlock,        // non-blocking op cannot complete now
  kBusy,              // resource temporarily held (e.g. combiner full)
  kNoSpace,           // device or table capacity exhausted
  kIsDirectory,       // file op on a directory
  kNotDirectory,      // directory op on a file
  kNotEmpty,          // rmdir of a non-empty directory
  kPipeClosed,        // peer endpoint gone
  kTimedOut,          // blocking op exceeded its deadline
  kInterrupted,       // blocked op woken by a signal
  kConnRefused,       // no listener at destination
  kConnReset,         // peer aborted the connection
  kNotConnected,      // send/recv on an unconnected stream socket
  kCorrupted,         // checksum / journal integrity failure
  kCrashed,           // device lost state at a simulated crash point
  kUnsupported,       // operation not implemented for this object
  kIoError,           // transient device I/O failure (retryable)
  kOutOfRange,        // index/sector beyond the object's bounds
  kOverloaded,        // admission control shed the request (back off, retry)
};

// Human-readable error name, stable for logs and tests.
constexpr const char* error_name(ErrorCode e) {
  switch (e) {
    case ErrorCode::kOk: return "Ok";
    case ErrorCode::kNoMemory: return "NoMemory";
    case ErrorCode::kAlreadyMapped: return "AlreadyMapped";
    case ErrorCode::kNotMapped: return "NotMapped";
    case ErrorCode::kInvalidArgument: return "InvalidArgument";
    case ErrorCode::kNotFound: return "NotFound";
    case ErrorCode::kAlreadyExists: return "AlreadyExists";
    case ErrorCode::kBadFd: return "BadFd";
    case ErrorCode::kNotPermitted: return "NotPermitted";
    case ErrorCode::kWouldBlock: return "WouldBlock";
    case ErrorCode::kBusy: return "Busy";
    case ErrorCode::kNoSpace: return "NoSpace";
    case ErrorCode::kIsDirectory: return "IsDirectory";
    case ErrorCode::kNotDirectory: return "NotDirectory";
    case ErrorCode::kNotEmpty: return "NotEmpty";
    case ErrorCode::kPipeClosed: return "PipeClosed";
    case ErrorCode::kTimedOut: return "TimedOut";
    case ErrorCode::kInterrupted: return "Interrupted";
    case ErrorCode::kConnRefused: return "ConnRefused";
    case ErrorCode::kConnReset: return "ConnReset";
    case ErrorCode::kNotConnected: return "NotConnected";
    case ErrorCode::kCorrupted: return "Corrupted";
    case ErrorCode::kCrashed: return "Crashed";
    case ErrorCode::kUnsupported: return "Unsupported";
    case ErrorCode::kIoError: return "IoError";
    case ErrorCode::kOutOfRange: return "OutOfRange";
    case ErrorCode::kOverloaded: return "Overloaded";
  }
  return "Unknown";
}

// Result<T>: either a value or an ErrorCode. Minimal expected<>-style type;
// ok() must be checked before value() (enforced by contracts in debug).
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : repr_(std::move(value)) {}                    // NOLINT(google-explicit-constructor)
  Result(ErrorCode error) : repr_(error) {}                       // NOLINT(google-explicit-constructor)

  bool ok() const { return std::holds_alternative<T>(repr_); }
  explicit operator bool() const { return ok(); }

  ErrorCode error() const { return ok() ? ErrorCode::kOk : std::get<ErrorCode>(repr_); }

  T& value() & { return std::get<T>(repr_); }
  const T& value() const& { return std::get<T>(repr_); }
  T&& value() && { return std::get<T>(std::move(repr_)); }

  T value_or(T fallback) const { return ok() ? std::get<T>(repr_) : std::move(fallback); }

 private:
  std::variant<T, ErrorCode> repr_;
};

// Unit type for Result<Unit>-style "fallible void" signatures where callers
// want uniform Result handling.
struct Unit {
  constexpr auto operator<=>(const Unit&) const = default;
};

}  // namespace vnros

#endif  // VNROS_SRC_BASE_RESULT_H_
