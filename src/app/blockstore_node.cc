#include "src/app/blockstore.h"

#include "src/base/contracts.h"
#include "src/base/crc.h"
#include "src/base/log.h"
#include "src/base/serde.h"

namespace vnros {
namespace {

// Block file layout: [u32 crc32c(payload)][u32 len][payload]. The length is
// stored (not derived from file size) so truncation is detected as
// corruption, not silently returned short.
constexpr usize kBlockHeader = 8;

constexpr char kHexDigits[] = "0123456789abcdef";

}  // namespace

std::string BlockStoreNode::key_path(std::string_view key) {
  std::string path = "/blocks/";
  for (char c : key) {
    path.push_back(kHexDigits[(static_cast<u8>(c) >> 4) & 0xF]);
    path.push_back(kHexDigits[static_cast<u8>(c) & 0xF]);
  }
  return path;
}

BlockStoreNode::BlockStoreNode(Sys& sys, Port port, std::vector<BsPeer> peers,
                               std::function<void()> pump)
    : sys_(sys),
      port_(port),
      peers_(std::move(peers)),
      pump_(std::move(pump)),
      obs_prefix_(ObsRegistry::global().instance_prefix("bs")),
      c_puts_(ObsRegistry::global().counter(obs_prefix_ + "puts")),
      c_gets_(ObsRegistry::global().counter(obs_prefix_ + "gets")),
      c_dels_(ObsRegistry::global().counter(obs_prefix_ + "dels")),
      c_corrupt_reads_(ObsRegistry::global().counter(obs_prefix_ + "corrupt_reads")),
      c_replicas_pushed_(ObsRegistry::global().counter(obs_prefix_ + "replicas_pushed")),
      c_replicas_applied_(ObsRegistry::global().counter(obs_prefix_ + "replicas_applied")),
      c_read_repairs_(ObsRegistry::global().counter(obs_prefix_ + "read_repairs")),
      c_failed_repairs_(ObsRegistry::global().counter(obs_prefix_ + "failed_repairs")),
      span_serve_(ObsRegistry::global().tracer().intern_site("bs/serve")) {}

Result<Unit> BlockStoreNode::init() {
  auto md = sys_.mkdir("/blocks");
  if (!md.ok() && md.error() != ErrorCode::kAlreadyExists) {
    return md.error();
  }
  auto sock = sys_.udp_socket();
  if (!sock.ok()) {
    return sock.error();
  }
  sock_ = sock.value();
  auto bound = sys_.udp_bind(sock_, port_);
  if (!bound.ok()) {
    return bound.error();
  }
  return Unit{};
}

Result<Unit> BlockStoreNode::put_local(std::string_view key, std::span<const u8> value) {
  // Write-temp-then-rename: the new bytes go to a sidecar file and replace
  // the block in one atomic (journaled) rename, so a fault anywhere mid-put
  // leaves the previously acknowledged value intact. The ".tmp" suffix can
  // never collide with a block: keys encode to pure hex and view() skips
  // non-hex names.
  std::string path = key_path(key);
  std::string tmp = path + ".tmp";
  auto fd = sys_.open(tmp, kOpenCreate | kOpenTrunc);
  if (!fd.ok()) {
    return fd.error();
  }
  Writer w;
  w.put_u32(crc32c(value));
  w.put_u32(static_cast<u32>(value.size()));
  w.put_raw(value);
  auto written = sys_.write(fd.value(), w.bytes());
  (void)sys_.close(fd.value());
  if (!written.ok() || written.value() != w.size()) {
    (void)sys_.unlink(tmp);  // best effort; a stale .tmp is inert
    return written.ok() ? ErrorCode::kNoSpace : written.error();
  }
  auto renamed = sys_.rename(tmp, path);
  if (!renamed.ok()) {
    (void)sys_.unlink(tmp);
    return renamed.error();
  }
  // Durability before acknowledgement: the put is only acked after fsync, so
  // an acked put survives any later crash (app/crash_recovery VCs).
  return sys_.fsync();
}

Result<Unit> BlockStoreNode::put(std::string_view key, std::span<const u8> value) {
  auto r = put_local(key, value);
  if (!r.ok()) {
    return r;
  }
  c_puts_.inc();
  push_replicas(key, value);
  return Unit{};
}

void BlockStoreNode::push_replicas(std::string_view key, std::span<const u8> value) {
  if (peers_.empty() || sock_ == kInvalidFd) {
    return;
  }
  Writer w;
  w.put_u8(static_cast<u8>(BsOp::kPutReplica));
  w.put_u64(0);  // replication pushes are unacked (client-level retries cover loss)
  w.put_string(key);
  w.put_bytes(value);
  for (const auto& peer : peers_) {
    if (sys_.udp_sendto(sock_, peer.addr, peer.port, w.bytes()).ok()) {
      c_replicas_pushed_.inc();
    }
  }
}

Result<std::vector<u8>> BlockStoreNode::get(std::string_view key) const {
  std::string path = key_path(key);
  auto fd = sys_.open(path, 0);
  if (!fd.ok()) {
    return fd.error();
  }
  auto st = sys_.fstat(fd.value());
  if (!st.ok()) {
    (void)sys_.close(fd.value());
    return st.error();
  }
  auto raw = sys_.read(fd.value(), st.value().size);
  (void)sys_.close(fd.value());
  if (!raw.ok()) {
    return raw.error();
  }
  c_gets_.inc();
  Reader r(raw.value());
  auto crc = r.get_u32();
  auto len = r.get_u32();
  if (!crc || !len || raw.value().size() != kBlockHeader + *len) {
    c_corrupt_reads_.inc();
    return ErrorCode::kCorrupted;
  }
  std::span<const u8> payload(raw.value().data() + kBlockHeader, *len);
  if (crc32c(payload) != *crc) {
    c_corrupt_reads_.inc();
    return ErrorCode::kCorrupted;  // never return bytes that fail the checksum
  }
  return std::vector<u8>(payload.begin(), payload.end());
}

Result<std::vector<u8>> BlockStoreNode::fetch_from_peer(const BsPeer& peer,
                                                        std::string_view key) {
  if (repair_sock_ == kInvalidFd) {
    auto sock = sys_.udp_socket();
    if (!sock.ok()) {
      return sock.error();
    }
    repair_sock_ = sock.value();
  }
  u64 req_id = next_repair_req_id_++;
  Writer w;
  w.put_u8(static_cast<u8>(BsOp::kGet));
  w.put_u64(req_id);
  w.put_string(key);

  constexpr usize kRepairAttempts = 4;
  constexpr usize kRepairPolls = 64;
  for (usize attempt = 0; attempt < kRepairAttempts; ++attempt) {
    auto sent = sys_.udp_sendto(repair_sock_, peer.addr, peer.port, w.bytes());
    if (!sent.ok()) {
      continue;
    }
    for (usize poll = 0; poll < kRepairPolls; ++poll) {
      if (pump_) {
        pump_();
      }
      auto reply = sys_.udp_recvfrom(repair_sock_);
      if (!reply.ok()) {
        continue;
      }
      Reader r(reply.value().payload);
      auto rid = r.get_u64();
      auto err = r.get_u32();
      auto payload = r.get_bytes();
      if (!rid || !err || !payload || *rid != req_id) {
        continue;
      }
      if (static_cast<ErrorCode>(*err) != ErrorCode::kOk) {
        return static_cast<ErrorCode>(*err);
      }
      return std::move(*payload);
    }
  }
  return ErrorCode::kTimedOut;
}

Result<std::vector<u8>> BlockStoreNode::get_or_repair(std::string_view key) {
  auto local = get(key);
  if (local.ok() || local.error() != ErrorCode::kCorrupted) {
    return local;
  }
  // Local copy failed its checksum. Without peers (or while already inside a
  // repair — pump() can recurse into serve_once) the error stands; otherwise
  // pull the block from a replica, re-persist it, and serve the cured bytes.
  if (in_repair_ || peers_.empty() || pump_ == nullptr) {
    return local;
  }
  in_repair_ = true;
  Result<std::vector<u8>> repaired = ErrorCode::kCorrupted;
  for (const auto& peer : peers_) {
    auto fetched = fetch_from_peer(peer, key);
    if (fetched.ok()) {
      repaired = std::move(fetched);
      break;
    }
  }
  in_repair_ = false;
  if (!repaired.ok()) {
    c_failed_repairs_.inc();
    return local;  // every peer failed: the honest answer is still kCorrupted
  }
  auto stored = put_local(key, repaired.value());
  if (stored.ok()) {
    c_read_repairs_.inc();
    VNROS_LOG_DEBUG("blockstore", "read-repaired %zu-byte block from peer",
                    repaired.value().size());
  }
  // Even if re-persisting failed (e.g. injected disk fault) the fetched
  // bytes are checksum-verified by the peer's get(); serve them.
  return repaired;
}

Result<Unit> BlockStoreNode::del(std::string_view key) {
  // "Ensure absent" semantics (like S3 DELETE): deleting a missing key is a
  // success. This is what makes DEL idempotent, so the client's at-least-once
  // retries (a reply can be lost after the delete applied) stay correct.
  auto r = sys_.unlink(key_path(key));
  if (!r.ok() && r.error() != ErrorCode::kNotFound) {
    return r;
  }
  c_dels_.inc();
  return sys_.fsync();
}

std::vector<BlockKeyInfo> BlockStoreNode::list() const {
  std::vector<BlockKeyInfo> out;
  for (const auto& [key, value] : view()) {
    out.push_back(BlockKeyInfo{key, crc32c(value)});
  }
  return out;
}

std::map<std::string, std::vector<u8>> BlockStoreNode::view() const {
  std::map<std::string, std::vector<u8>> out;
  auto names = sys_.readdir("/blocks");
  if (!names.ok()) {
    return out;
  }
  for (const auto& name : names.value()) {
    // Decode the hex filename back into the key.
    std::string key;
    if (name.size() % 2 != 0) {
      continue;
    }
    bool ok = true;
    for (usize i = 0; i < name.size(); i += 2) {
      auto nib = [&](char c) -> int {
        if (c >= '0' && c <= '9') return c - '0';
        if (c >= 'a' && c <= 'f') return c - 'a' + 10;
        return -1;
      };
      int hi = nib(name[i]);
      int lo = nib(name[i + 1]);
      if (hi < 0 || lo < 0) {
        ok = false;
        break;
      }
      key.push_back(static_cast<char>((hi << 4) | lo));
    }
    if (!ok) {
      continue;
    }
    auto value = get(key);
    if (value.ok()) {
      out[key] = value.value();
    }
  }
  return out;
}

bool BlockStoreNode::serve_once() {
  VNROS_CHECK(sock_ != kInvalidFd);
  auto dgram = sys_.udp_recvfrom(sock_);
  if (!dgram.ok()) {
    return false;
  }
  SpanScope span(ObsRegistry::global().tracer(), span_serve_);
  Reader r(dgram.value().payload);
  auto op = r.get_u8();
  auto req_id = r.get_u64();
  auto key = r.get_string();
  if (!op || !req_id || !key) {
    return true;  // malformed request: drop (no reply address semantics)
  }

  ErrorCode err = ErrorCode::kInvalidArgument;
  std::vector<u8> value_out;
  switch (static_cast<BsOp>(*op)) {
    case BsOp::kPut: {
      auto value = r.get_bytes();
      if (value && r.exhausted()) {
        err = put(*key, *value).error();
      }
      break;
    }
    case BsOp::kPutReplica: {
      auto value = r.get_bytes();
      if (value && r.exhausted()) {
        err = put_local(*key, *value).error();
        if (err == ErrorCode::kOk) {
          c_replicas_applied_.inc();
        }
      }
      // Replication pushes carry req_id 0: apply silently, no reply.
      if (*req_id == 0) {
        return true;
      }
      break;
    }
    case BsOp::kGet: {
      if (r.exhausted()) {
        auto v = get_or_repair(*key);
        err = v.error();
        if (v.ok()) {
          err = ErrorCode::kOk;
          value_out = std::move(v.value());
        }
      }
      break;
    }
    case BsOp::kDel: {
      if (r.exhausted()) {
        err = del(*key).error();
      }
      break;
    }
    case BsOp::kPing: {
      if (r.exhausted()) {
        err = ErrorCode::kOk;
      }
      break;
    }
    case BsOp::kList: {
      if (r.exhausted()) {
        Writer lw;
        auto entries = list();
        lw.put_u32(static_cast<u32>(entries.size()));
        for (const auto& e : entries) {
          lw.put_string(e.key);
          lw.put_u32(e.crc);
        }
        value_out = lw.take();
        err = ErrorCode::kOk;
      }
      break;
    }
    default:
      break;
  }

  Writer reply;
  reply.put_u64(*req_id);
  reply.put_u32(static_cast<u32>(err));
  reply.put_bytes(value_out);
  (void)sys_.udp_sendto(sock_, dgram.value().src_addr, dgram.value().src_port, reply.bytes());
  return true;
}

}  // namespace vnros
