#include "src/app/blockstore.h"

#include <algorithm>

#include "src/base/contracts.h"
#include "src/base/crc.h"
#include "src/base/log.h"
#include "src/base/serde.h"

namespace vnros {
namespace {

// Block file layout: [u32 crc32c(seq||payload)][u32 len][u64 seq][payload].
// The length is stored (not derived from file size) so truncation is
// detected as corruption, not silently returned short. `seq` is the write
// sequence stamped when the bytes were written (client stamp on coordinated
// puts, local_seq + 1 on direct ones); every replica-apply path refuses
// bytes older than its local copy, so a handoff, hint, or replication push
// can never regress a key to a stale value. The crc covers the sequence so
// ordering decisions are never made on torn metadata.
constexpr usize kBlockHeader = 16;

constexpr char kHexDigits[] = "0123456789abcdef";

// One admitted op, in admission-bucket units (millionths of an op).
constexpr u64 kOpCostPpm = 1'000'000;

// Decodes a pure-hex name back into the key it encodes; nullopt for names
// that are not hex (".tmp" sidecars, foreign files).
std::optional<std::string> decode_hex_key(std::string_view name) {
  if (name.size() % 2 != 0) {
    return std::nullopt;
  }
  auto nib = [](char c) -> int {
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
    return -1;
  };
  std::string key;
  for (usize i = 0; i < name.size(); i += 2) {
    int hi = nib(name[i]);
    int lo = nib(name[i + 1]);
    if (hi < 0 || lo < 0) {
      return std::nullopt;
    }
    key.push_back(static_cast<char>((hi << 4) | lo));
  }
  return key;
}

// One decoded block-format file: the payload plus its write sequence.
struct DecodedBlock {
  u64 seq = 0;
  std::vector<u8> bytes;
};

// Reads and checksum-verifies one block-format file
// ([crc][len][seq][payload]); kCorrupted on any framing or checksum
// mismatch. Shared by get() and hint delivery (hints use the same layout).
Result<DecodedBlock> read_block_file(Sys& sys, const std::string& path) {
  auto fd = sys.open(path, 0);
  if (!fd.ok()) {
    return fd.error();
  }
  auto st = sys.fstat(fd.value());
  if (!st.ok()) {
    (void)sys.close(fd.value());
    return st.error();
  }
  auto raw = sys.read(fd.value(), st.value().size);
  (void)sys.close(fd.value());
  if (!raw.ok()) {
    return raw.error();
  }
  Reader r(raw.value());
  auto crc = r.get_u32();
  auto len = r.get_u32();
  auto seq = r.get_u64();
  if (!crc || !len || !seq || raw.value().size() != kBlockHeader + *len) {
    return ErrorCode::kCorrupted;
  }
  // The crc covers [seq][payload] so a torn sequence is corruption too.
  std::span<const u8> covered(raw.value().data() + 8, 8 + *len);
  if (crc32c(covered) != *crc) {
    return ErrorCode::kCorrupted;  // never return bytes that fail the checksum
  }
  std::span<const u8> payload(raw.value().data() + kBlockHeader, *len);
  return DecodedBlock{*seq, std::vector<u8>(payload.begin(), payload.end())};
}

}  // namespace

std::string BlockStoreNode::key_path(std::string_view key) {
  std::string path = "/blocks/";
  for (char c : key) {
    path.push_back(kHexDigits[(static_cast<u8>(c) >> 4) & 0xF]);
    path.push_back(kHexDigits[static_cast<u8>(c) & 0xF]);
  }
  return path;
}

BlockStoreNode::BlockStoreNode(Sys& sys, Port port, std::vector<BsPeer> peers,
                               std::function<void()> pump, std::string fault_prefix)
    : sys_(sys),
      port_(port),
      peers_(std::move(peers)),
      pump_(std::move(pump)),
      obs_prefix_(ObsRegistry::global().instance_prefix("bs")),
      c_puts_(ObsRegistry::global().counter(obs_prefix_ + "puts")),
      c_gets_(ObsRegistry::global().counter(obs_prefix_ + "gets")),
      c_dels_(ObsRegistry::global().counter(obs_prefix_ + "dels")),
      c_corrupt_reads_(ObsRegistry::global().counter(obs_prefix_ + "corrupt_reads")),
      c_replicas_pushed_(ObsRegistry::global().counter(obs_prefix_ + "replicas_pushed")),
      c_replicas_applied_(ObsRegistry::global().counter(obs_prefix_ + "replicas_applied")),
      c_read_repairs_(ObsRegistry::global().counter(obs_prefix_ + "read_repairs")),
      c_failed_repairs_(ObsRegistry::global().counter(obs_prefix_ + "failed_repairs")),
      c_sheds_(ObsRegistry::global().counter(obs_prefix_ + "sheds")),
      c_hints_written_(ObsRegistry::global().counter(obs_prefix_ + "hints_written")),
      c_hints_delivered_(ObsRegistry::global().counter(obs_prefix_ + "hints_delivered")),
      c_handoffs_(ObsRegistry::global().counter(obs_prefix_ + "handoffs")),
      c_stale_ignored_(ObsRegistry::global().counter(obs_prefix_ + "stale_ignored")),
      span_serve_(ObsRegistry::global().tracer().intern_site("bs/serve")) {
  if (!fault_prefix.empty()) {
    delay_site_ = &FaultRegistry::global().site(fault_prefix + "/serve_delay");
  }
}

Result<Unit> BlockStoreNode::init() {
  auto md = sys_.mkdir("/blocks");
  if (!md.ok() && md.error() != ErrorCode::kAlreadyExists) {
    return md.error();
  }
  auto hints = sys_.mkdir("/hints");
  if (!hints.ok() && hints.error() != ErrorCode::kAlreadyExists) {
    return hints.error();
  }
  auto sock = sys_.udp_socket();
  if (!sock.ok()) {
    return sock.error();
  }
  sock_ = sock.value();
  auto bound = sys_.udp_bind(sock_, port_);
  if (!bound.ok()) {
    return bound.error();
  }
  return Unit{};
}

namespace {

// Serializes one block-format file: [crc(seq||payload)][len][seq][payload].
// Shared by put_local and write_hint (hints use the same layout).
Writer encode_block(std::span<const u8> value, u64 seq) {
  Writer body;
  body.put_u64(seq);
  body.put_raw(value);
  Writer w;
  w.put_u32(crc32c(body.bytes()));
  w.put_u32(static_cast<u32>(value.size()));
  w.put_raw(body.bytes());
  return w;
}

}  // namespace

Result<Unit> BlockStoreNode::put_local(std::string_view key, std::span<const u8> value,
                                       u64 seq) {
  // Write-temp-then-rename: the new bytes go to a sidecar file and replace
  // the block in one atomic (journaled) rename, so a fault anywhere mid-put
  // leaves the previously acknowledged value intact. The ".tmp" suffix can
  // never collide with a block: keys encode to pure hex and view() skips
  // non-hex names.
  std::string path = key_path(key);
  std::string tmp = path + ".tmp";
  auto fd = sys_.open(tmp, kOpenCreate | kOpenTrunc);
  if (!fd.ok()) {
    return fd.error();
  }
  Writer w = encode_block(value, seq);
  auto written = sys_.write(fd.value(), w.bytes());
  (void)sys_.close(fd.value());
  if (!written.ok() || written.value() != w.size()) {
    (void)sys_.unlink(tmp);  // best effort; a stale .tmp is inert
    return written.ok() ? ErrorCode::kNoSpace : written.error();
  }
  auto renamed = sys_.rename(tmp, path);
  if (!renamed.ok()) {
    (void)sys_.unlink(tmp);
    return renamed.error();
  }
  // Durability before acknowledgement: the put is only acked after fsync, so
  // an acked put survives any later crash (app/crash_recovery VCs).
  return sys_.fsync();
}

Result<Unit> BlockStoreNode::put(std::string_view key, std::span<const u8> value) {
  // Direct (unstamped) puts order after whatever this node already holds.
  return put_stamped(key, value, local_seq(key) + 1);
}

Result<Unit> BlockStoreNode::put_stamped(std::string_view key, std::span<const u8> value,
                                         u64 seq) {
  bool applied = false;
  auto r = apply_replica(key, value, seq, &applied);
  if (!r.ok()) {
    return r;
  }
  c_puts_.inc();
  if (!applied) {
    return Unit{};  // superseded by a newer local write: nothing to replicate
  }
  if (clustered_) {
    replicate_put(key, value, seq);
  } else {
    push_replicas(key, value, seq);
  }
  return Unit{};
}

Result<Unit> BlockStoreNode::apply_replica(std::string_view key, std::span<const u8> value,
                                           u64 seq, bool* applied) {
  auto local = read_block_file(sys_, key_path(key));
  if (!local.ok() && local.error() != ErrorCode::kNotFound &&
      local.error() != ErrorCode::kCorrupted) {
    // Ordering needs the local copy's sequence; a faulting read (as opposed
    // to clean absence or detected corruption) must surface, not guess.
    return local.error();
  }
  if (local.ok() && local.value().seq > seq) {
    // The local intact copy is strictly newer: refusing the write is the
    // success path (the caller's bytes are durably superseded here).
    c_stale_ignored_.inc();
    if (applied != nullptr) {
      *applied = false;
    }
    return Unit{};
  }
  auto r = put_local(key, value, seq);
  if (applied != nullptr) {
    *applied = r.ok();
  }
  return r;
}

u64 BlockStoreNode::local_seq(std::string_view key) const {
  auto r = read_block_file(sys_, key_path(key));
  return r.ok() ? r.value().seq : 0;
}

void BlockStoreNode::push_replicas(std::string_view key, std::span<const u8> value, u64 seq) {
  if (peers_.empty() || sock_ == kInvalidFd) {
    return;
  }
  Writer w;
  w.put_u8(static_cast<u8>(BsOp::kPutReplica));
  w.put_u64(0);  // replication pushes are unacked (client-level retries cover loss)
  w.put_string(key);
  w.put_u64(seq);
  w.put_bytes(value);
  for (const auto& peer : peers_) {
    if (sys_.udp_sendto(sock_, peer.addr, peer.port, w.bytes()).ok()) {
      c_replicas_pushed_.inc();
    }
  }
}

Result<std::vector<u8>> BlockStoreNode::get(std::string_view key) const {
  auto r = read_block_file(sys_, key_path(key));
  if (!r.ok() && r.error() != ErrorCode::kCorrupted) {
    return r.error();  // missing / io error: nothing was decoded
  }
  c_gets_.inc();
  if (!r.ok()) {
    c_corrupt_reads_.inc();
    return ErrorCode::kCorrupted;
  }
  return std::move(r.value().bytes);
}

Result<BlockStoreNode::BlockData> BlockStoreNode::fetch_from_peer(const BsPeer& peer,
                                                                  std::string_view key) {
  if (repair_sock_ == kInvalidFd) {
    auto sock = sys_.udp_socket();
    if (!sock.ok()) {
      return sock.error();
    }
    repair_sock_ = sock.value();
  }
  u64 req_id = next_repair_req_id_++;
  Writer w;
  w.put_u8(static_cast<u8>(BsOp::kGet));
  w.put_u64(req_id);
  w.put_string(key);

  constexpr usize kRepairAttempts = 4;
  constexpr usize kRepairPolls = 64;
  for (usize attempt = 0; attempt < kRepairAttempts; ++attempt) {
    auto sent = sys_.udp_sendto(repair_sock_, peer.addr, peer.port, w.bytes());
    if (!sent.ok()) {
      continue;
    }
    for (usize poll = 0; poll < kRepairPolls; ++poll) {
      if (pump_) {
        pump_();
      }
      auto reply = sys_.udp_recvfrom(repair_sock_);
      if (!reply.ok()) {
        continue;
      }
      Reader r(reply.value().payload);
      auto rid = r.get_u64();
      auto err = r.get_u32();
      auto payload = r.get_bytes();
      if (!rid || !err || !payload || *rid != req_id) {
        continue;
      }
      if (static_cast<ErrorCode>(*err) != ErrorCode::kOk) {
        return static_cast<ErrorCode>(*err);
      }
      // kGet replies carry the block's write sequence after the payload so a
      // read-repair re-persists the bytes at their true position in the
      // write order (not as a fresh write that could shadow a newer value).
      auto seq = r.get_u64();
      return BlockData{std::move(*payload), seq.value_or(0)};
    }
  }
  return ErrorCode::kTimedOut;
}

Result<std::vector<u8>> BlockStoreNode::get_or_repair(std::string_view key) {
  auto r = get_or_repair_block(key);
  if (!r.ok()) {
    return r.error();
  }
  return std::move(r.value().bytes);
}

Result<BlockStoreNode::BlockData> BlockStoreNode::get_or_repair_block(std::string_view key) {
  auto local = read_block_file(sys_, key_path(key));
  if (local.ok()) {
    c_gets_.inc();
    return BlockData{std::move(local.value().bytes), local.value().seq};
  }
  if (local.error() != ErrorCode::kCorrupted) {
    return local.error();
  }
  c_gets_.inc();
  c_corrupt_reads_.inc();
  // Local copy failed its checksum. Without peers (or while already inside a
  // repair — pump() can recurse into serve_once) the error stands; otherwise
  // pull the block from a replica, re-persist it, and serve the cured bytes.
  std::vector<BsPeer> repair_from = repair_peers(key);
  if (in_repair_ || repair_from.empty() || pump_ == nullptr) {
    return ErrorCode::kCorrupted;
  }
  in_repair_ = true;
  Result<BlockData> repaired = ErrorCode::kCorrupted;
  for (const auto& peer : repair_from) {
    auto fetched = fetch_from_peer(peer, key);
    if (fetched.ok()) {
      repaired = std::move(fetched);
      break;
    }
  }
  in_repair_ = false;
  if (!repaired.ok()) {
    c_failed_repairs_.inc();
    return ErrorCode::kCorrupted;  // every peer failed: the honest answer stands
  }
  // Re-persist at the peer's sequence: the cure restores the block's true
  // place in the write order instead of minting a new one.
  auto stored = put_local(key, repaired.value().bytes, repaired.value().seq);
  if (stored.ok()) {
    c_read_repairs_.inc();
    VNROS_LOG_DEBUG("blockstore", "read-repaired %zu-byte block from peer",
                    repaired.value().bytes.size());
  }
  // Even if re-persisting failed (e.g. injected disk fault) the fetched
  // bytes are checksum-verified by the peer's get(); serve them.
  return repaired;
}

Result<Unit> BlockStoreNode::del_local(std::string_view key) {
  // "Ensure absent" semantics (like S3 DELETE): deleting a missing key is a
  // success. This is what makes DEL idempotent, so the client's at-least-once
  // retries (a reply can be lost after the delete applied) stay correct.
  auto r = sys_.unlink(key_path(key));
  if (!r.ok() && r.error() != ErrorCode::kNotFound) {
    return r;
  }
  return sys_.fsync();
}

Result<Unit> BlockStoreNode::del(std::string_view key) {
  auto r = del_local(key);
  if (!r.ok()) {
    return r;
  }
  c_dels_.inc();
  if (clustered_) {
    replicate_del(key);
  }
  return Unit{};
}

std::vector<BlockKeyInfo> BlockStoreNode::list() const {
  std::vector<BlockKeyInfo> out;
  for (const auto& [key, value] : view()) {
    out.push_back(BlockKeyInfo{key, crc32c(value)});
  }
  return out;
}

std::map<std::string, std::vector<u8>> BlockStoreNode::view() const {
  std::map<std::string, std::vector<u8>> out;
  auto names = sys_.readdir("/blocks");
  if (!names.ok()) {
    return out;
  }
  for (const auto& name : names.value()) {
    // Decode the hex filename back into the key.
    auto key = decode_hex_key(name);
    if (!key) {
      continue;
    }
    auto value = get(*key);
    if (value.ok()) {
      out[*key] = value.value();
    }
  }
  return out;
}

void BlockStoreNode::configure_cluster(const ClusterConfig& cfg, const ClusterView& view) {
  cluster_ = cfg;
  view_ = view;
  clustered_ = true;
}

void BlockStoreNode::set_cluster_view(const ClusterView& view) {
  view_ = view;
  clustered_ = true;
}

void BlockStoreNode::grant_tokens(u64 ops_ppm) {
  tokens_ppm_ = std::min(tokens_ppm_ + ops_ppm, admission_.burst_ops * kOpCostPpm);
}

bool BlockStoreNode::admit_op() {
  if (!admission_.enabled) {
    return true;
  }
  if (tokens_ppm_ < kOpCostPpm) {
    c_sheds_.inc();
    return false;
  }
  tokens_ppm_ -= kOpCostPpm;
  return true;
}

std::vector<BsPeer> BlockStoreNode::repair_peers(std::string_view key) const {
  if (!clustered_) {
    return peers_;
  }
  std::vector<BsPeer> out;
  for (BsNodeId id : view_.owners(key)) {
    if (id == cluster_.self) {
      continue;
    }
    auto it = view_.directory.find(id);
    if (it != view_.directory.end()) {
      out.push_back(it->second);
    }
  }
  return out;
}

Result<Unit> BlockStoreNode::push_acked(const BsPeer& peer, BsOp op, std::string_view key,
                                        std::span<const u8> value, u64 seq) {
  if (pump_ == nullptr) {
    return ErrorCode::kUnsupported;  // cannot await an ack without a world pump
  }
  if (repair_sock_ == kInvalidFd) {
    auto sock = sys_.udp_socket();
    if (!sock.ok()) {
      return sock.error();
    }
    repair_sock_ = sock.value();
  }
  u64 req_id = next_repair_req_id_++;
  Writer w;
  w.put_u8(static_cast<u8>(op));
  w.put_u64(req_id);
  w.put_string(key);
  if (op == BsOp::kPutReplica) {
    w.put_u64(seq);
    w.put_bytes(value);
  }
  ErrorCode last = ErrorCode::kTimedOut;
  for (usize attempt = 0; attempt < cluster_.push_attempts; ++attempt) {
    auto sent = sys_.udp_sendto(repair_sock_, peer.addr, peer.port, w.bytes());
    if (!sent.ok()) {
      last = sent.error();
      continue;
    }
    // Every replica datagram put on the wire counts as pushed; the receiver
    // counts at most one apply per datagram, so applied <= pushed (the PR 5
    // obs-coherence invariant) is preserved by construction.
    c_replicas_pushed_.inc();
    for (usize poll = 0; poll < cluster_.push_ack_polls; ++poll) {
      pump_();
      auto reply = sys_.udp_recvfrom(repair_sock_);
      if (!reply.ok()) {
        continue;
      }
      Reader r(reply.value().payload);
      auto rid = r.get_u64();
      auto err = r.get_u32();
      if (!rid || !err || *rid != req_id) {
        continue;  // stale reply from an earlier push/fetch on this socket
      }
      ErrorCode code = static_cast<ErrorCode>(*err);
      if (code == ErrorCode::kOk) {
        return Unit{};
      }
      last = code;
      break;  // the peer answered with an error; maybe the next attempt cures it
    }
  }
  return last;
}

Result<Unit> BlockStoreNode::write_hint(BsNodeId owner, std::string_view key,
                                        std::span<const u8> value, u64 seq) {
  // Hints live beside blocks as "/hints/<owner>_<hexkey>" in block format
  // (the write sequence rides along so delivery keeps its ordering). No
  // fsync: a hint is an availability optimization, not the durability
  // story — the coordinator keeps its own fsynced copy, and anti-entropy
  // remains the backstop if a crash eats parked hints.
  std::string path = "/hints/" + std::to_string(owner) + "_";
  for (char c : key) {
    path.push_back(kHexDigits[(static_cast<u8>(c) >> 4) & 0xF]);
    path.push_back(kHexDigits[static_cast<u8>(c) & 0xF]);
  }
  auto fd = sys_.open(path, kOpenCreate | kOpenTrunc);
  if (!fd.ok()) {
    return fd.error();
  }
  Writer w = encode_block(value, seq);
  auto written = sys_.write(fd.value(), w.bytes());
  (void)sys_.close(fd.value());
  if (!written.ok() || written.value() != w.size()) {
    (void)sys_.unlink(path);
    return written.ok() ? ErrorCode::kNoSpace : written.error();
  }
  c_hints_written_.inc();
  return Unit{};
}

void BlockStoreNode::replicate_put(std::string_view key, std::span<const u8> value,
                                   u64 seq) {
  for (BsNodeId owner : view_.owners(key)) {
    if (owner == cluster_.self) {
      continue;
    }
    auto it = view_.directory.find(owner);
    if (it == view_.directory.end()) {
      continue;
    }
    if (!push_acked(it->second, BsOp::kPutReplica, key, value, seq).ok()) {
      // Owner unreachable (partition/crash/overload): park the handoff.
      (void)write_hint(owner, key, value, seq);
    }
  }
}

void BlockStoreNode::replicate_del(std::string_view key) {
  // Deletes are replicated best-effort and never hinted: with no versioning
  // there are no tombstones, and anti-entropy resolves divergence in favor
  // of presence (DESIGN §9 limitation). We do drop any parked hint for the
  // key so delivery cannot resurrect the value we just deleted.
  for (const auto& [owner, peer] : view_.directory) {
    if (owner == cluster_.self) {
      continue;
    }
    std::string hint = "/hints/" + std::to_string(owner) + "_";
    for (char c : key) {
      hint.push_back(kHexDigits[(static_cast<u8>(c) >> 4) & 0xF]);
      hint.push_back(kHexDigits[static_cast<u8>(c) & 0xF]);
    }
    (void)sys_.unlink(hint);
  }
  for (BsNodeId owner : view_.owners(key)) {
    if (owner == cluster_.self) {
      continue;
    }
    auto it = view_.directory.find(owner);
    if (it != view_.directory.end()) {
      (void)push_acked(it->second, BsOp::kDelReplica, key, {}, 0);
    }
  }
}

Result<RebalanceStats> BlockStoreNode::rebalance(const ClusterView& next) {
  ClusterView old = view_;
  bool was_clustered = clustered_;
  view_ = next;
  clustered_ = true;
  auto had = [](const std::vector<BsNodeId>& owners, BsNodeId id) {
    for (BsNodeId o : owners) {
      if (o == id) {
        return true;
      }
    }
    return false;
  };
  RebalanceStats st;
  auto names = sys_.readdir("/blocks");
  if (!names.ok()) {
    return names.error();
  }
  for (const auto& name : names.value()) {
    auto decoded_key = decode_hex_key(name);
    if (!decoded_key) {
      continue;  // ".tmp" sidecars and foreign files are not blocks
    }
    const std::string& key = *decoded_key;
    auto block = read_block_file(sys_, "/blocks/" + name);
    if (!block.ok()) {
      continue;  // corrupt local copy: read-repair's problem, not rebalance's
    }
    const std::vector<u8>& value = block.value().bytes;
    u64 seq = block.value().seq;
    ++st.scanned;
    std::vector<BsNodeId> new_owners = view_.owners(key);
    std::vector<BsNodeId> old_owners = was_clustered ? old.owners(key) : std::vector<BsNodeId>{};
    bool self_owner = had(new_owners, cluster_.self);
    // Owners gained by the view change lack the shard; everyone else already
    // got it on the write path (or will via hints/anti-entropy).
    std::vector<BsNodeId> targets;
    for (BsNodeId id : new_owners) {
      if (id != cluster_.self && !had(old_owners, id)) {
        targets.push_back(id);
      }
    }
    // Losing ownership with no newly-joined owner still requires proof of
    // placement before dropping: confirm with the primary. The push carries
    // our copy's sequence, so a primary holding something newer refuses the
    // bytes but still acks — either way its ack certifies "I durably hold
    // this key at a sequence >= yours", which is what makes dropping safe.
    if (!self_owner && targets.empty() && !new_owners.empty()) {
      targets.push_back(new_owners[0]);
    }
    usize acks = 0;
    for (BsNodeId id : targets) {
      auto it = view_.directory.find(id);
      if (it == view_.directory.end()) {
        continue;
      }
      if (push_acked(it->second, BsOp::kPutReplica, key, value, seq).ok()) {
        ++acks;
        ++st.moved;
        c_handoffs_.inc();
      } else if (write_hint(id, key, value, seq).ok()) {
        ++st.hinted;
      }
    }
    if (!self_owner) {
      if (acks > 0) {
        // The shard provably lives on a current owner; release our copy.
        (void)sys_.unlink(key_path(key));
        ++st.dropped;
      } else {
        // No owner acked: keep the bytes and flag it — a graceful leave
        // must abort rather than walk away with the only copy.
        ++st.failed;
      }
    }
  }
  auto synced = sys_.fsync();
  if (!synced.ok()) {
    return synced.error();
  }
  return st;
}

u64 BlockStoreNode::deliver_hints() {
  if (!clustered_) {
    return 0;
  }
  auto names = sys_.readdir("/hints");
  if (!names.ok()) {
    return 0;
  }
  u64 delivered = 0;
  for (const auto& name : names.value()) {
    auto us = name.find('_');
    if (us == std::string::npos || us == 0) {
      continue;
    }
    u64 owner_raw = 0;
    bool digits = true;
    for (usize i = 0; i < us; ++i) {
      if (name[i] < '0' || name[i] > '9') {
        digits = false;
        break;
      }
      owner_raw = owner_raw * 10 + static_cast<u64>(name[i] - '0');
    }
    auto key = decode_hex_key(std::string_view(name).substr(us + 1));
    if (!digits || !key) {
      continue;
    }
    BsNodeId owner = static_cast<BsNodeId>(owner_raw);
    std::string path = "/hints/" + name;
    auto it = view_.directory.find(owner);
    if (!view_.ring.contains(owner) || it == view_.directory.end()) {
      (void)sys_.unlink(path);  // owner left the cluster: the hint is stale
      continue;
    }
    auto hint = read_block_file(sys_, path);
    if (!hint.ok()) {
      (void)sys_.unlink(path);  // torn/corrupt hint (no fsync): drop it
      continue;
    }
    if (owner == cluster_.self) {
      // A view change made us the owner: apply locally (if-newer — our own
      // copy may already have overtaken the parked bytes).
      bool applied = false;
      if (!apply_replica(*key, hint.value().bytes, hint.value().seq, &applied).ok()) {
        continue;  // disk fault: retry on a later pass
      }
      (void)sys_.unlink(path);
      if (applied) {
        c_hints_delivered_.inc();
        ++delivered;
      }
      continue;
    }
    if (pump_ == nullptr) {
      continue;
    }
    // The hint rides with its original write sequence, so delivery cannot
    // regress a newer value: the owner applies if-newer and acks either way
    // (a stale refusal still certifies the owner durably holds the key).
    // No ack (unreachable, shedding) keeps the hint parked for a later pass.
    if (push_acked(it->second, BsOp::kPutReplica, *key, hint.value().bytes,
                   hint.value().seq)
            .ok()) {
      (void)sys_.unlink(path);
      c_hints_delivered_.inc();
      ++delivered;
    }
  }
  return delivered;
}

bool BlockStoreNode::serve_once() {
  VNROS_CHECK(sock_ != kInvalidFd);
  // Latency injection: a fired "<prefix>/serve_delay" fault stalls this node
  // for `delay` serve calls. The datagram stays queued in the rx ring — a
  // slow peer, not a dead one.
  if (stall_polls_ > 0) {
    --stall_polls_;
    return false;
  }
  if (delay_site_ != nullptr) {
    if (auto d = delay_site_->fire_delay()) {
      stall_polls_ = *d - 1;
      return false;
    }
  }
  auto dgram = sys_.udp_recvfrom(sock_);
  if (!dgram.ok()) {
    return false;
  }
  SpanScope span(ObsRegistry::global().tracer(), span_serve_);
  Reader r(dgram.value().payload);
  auto op = r.get_u8();
  auto req_id = r.get_u64();
  auto key = r.get_string();
  if (!op || !req_id || !key) {
    return true;  // malformed request: drop (no reply address semantics)
  }

  // Admission control: storage ops (not ping/list — the control plane stays
  // responsive) cost one token. An empty bucket sheds the request with a
  // typed kOverloaded so clients back off instead of failing over.
  BsOp opcode = static_cast<BsOp>(*op);
  bool storage_op = opcode == BsOp::kPut || opcode == BsOp::kGet || opcode == BsOp::kDel ||
                    opcode == BsOp::kPutReplica || opcode == BsOp::kDelReplica;
  if (storage_op && !admit_op()) {
    if (*req_id == 0) {
      return true;  // unacked replica push: shed silently
    }
    Writer shed;
    shed.put_u64(*req_id);
    shed.put_u32(static_cast<u32>(ErrorCode::kOverloaded));
    shed.put_bytes(std::span<const u8>());
    (void)sys_.udp_sendto(sock_, dgram.value().src_addr, dgram.value().src_port, shed.bytes());
    return true;
  }

  ErrorCode err = ErrorCode::kInvalidArgument;
  std::vector<u8> value_out;
  u64 seq_out = 0;  // kGet replies carry the block's write sequence
  switch (static_cast<BsOp>(*op)) {
    case BsOp::kPut: {
      auto seq = r.get_u64();
      auto value = r.get_bytes();
      if (seq && value && r.exhausted()) {
        err = put_stamped(*key, *value, *seq).error();
      }
      break;
    }
    case BsOp::kPutReplica: {
      auto seq = r.get_u64();
      auto value = r.get_bytes();
      if (seq && value && r.exhausted()) {
        bool applied = false;
        err = apply_replica(*key, *value, *seq, &applied).error();
        if (applied) {
          c_replicas_applied_.inc();
        }
      }
      // Replication pushes carry req_id 0: apply silently, no reply.
      if (*req_id == 0) {
        return true;
      }
      break;
    }
    case BsOp::kGet: {
      if (r.exhausted()) {
        auto v = get_or_repair_block(*key);
        err = v.error();
        if (v.ok()) {
          err = ErrorCode::kOk;
          value_out = std::move(v.value().bytes);
          seq_out = v.value().seq;
        }
      }
      break;
    }
    case BsOp::kDel: {
      if (r.exhausted()) {
        err = del(*key).error();
      }
      break;
    }
    case BsOp::kDelReplica: {
      if (r.exhausted()) {
        err = del_local(*key).error();
        if (err == ErrorCode::kOk) {
          c_replicas_applied_.inc();
        }
      }
      // Like kPutReplica: applied locally, never re-forwarded; req_id 0
      // means the sender is not waiting for an ack.
      if (*req_id == 0) {
        return true;
      }
      break;
    }
    case BsOp::kPing: {
      if (r.exhausted()) {
        err = ErrorCode::kOk;
      }
      break;
    }
    case BsOp::kList: {
      if (r.exhausted()) {
        Writer lw;
        auto entries = list();
        lw.put_u32(static_cast<u32>(entries.size()));
        for (const auto& e : entries) {
          lw.put_string(e.key);
          lw.put_u32(e.crc);
        }
        value_out = lw.take();
        err = ErrorCode::kOk;
      }
      break;
    }
    default:
      break;
  }

  Writer reply;
  reply.put_u64(*req_id);
  reply.put_u32(static_cast<u32>(err));
  reply.put_bytes(value_out);
  reply.put_u64(seq_out);  // trailing write sequence (meaningful for kGet)
  (void)sys_.udp_sendto(sock_, dgram.value().src_addr, dgram.value().src_port, reply.bytes());
  return true;
}

}  // namespace vnros
