#include "src/app/blockstore.h"

#include <algorithm>

#include "src/app/anti_entropy.h"
#include "src/base/contracts.h"
#include "src/base/crc.h"
#include "src/base/log.h"
#include "src/base/serde.h"

namespace vnros {
namespace {

// Block file layout: [u32 crc32c(len'||seq||payload)][u32 len'][u64 seq]
// [payload], where len' is the payload length with bit 31 doubling as the
// tombstone flag (payloads are far below 2 GiB). The length is stored (not
// derived from file size) so truncation is detected as corruption, not
// silently returned short. `seq` is the write sequence stamped when the
// bytes were written (client stamp on coordinated puts, local_seq + 1 on
// direct ones); every replica-apply path refuses bytes older than its local
// copy, so a handoff, hint, or replication push can never regress a key to
// a stale value. A tombstone is a first-class sequenced write with an empty
// payload and the flag set — deletes ride the exact same apply-if-newer
// machinery as puts. The crc covers the flagged length AND the sequence, so
// neither ordering decisions nor live-vs-deleted decisions are ever made on
// torn or rotted metadata (a flipped tombstone bit is corruption, not a
// silent resurrection).
constexpr usize kBlockHeader = 16;
constexpr u32 kTombstoneFlag = 0x8000'0000u;

constexpr char kHexDigits[] = "0123456789abcdef";

// One admitted op, in admission-bucket units (millionths of an op).
constexpr u64 kOpCostPpm = 1'000'000;

// Decodes a pure-hex name back into the key it encodes; nullopt for names
// that are not hex (".tmp" sidecars, foreign files).
std::optional<std::string> decode_hex_key(std::string_view name) {
  if (name.size() % 2 != 0) {
    return std::nullopt;
  }
  auto nib = [](char c) -> int {
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
    return -1;
  };
  std::string key;
  for (usize i = 0; i < name.size(); i += 2) {
    int hi = nib(name[i]);
    int lo = nib(name[i + 1]);
    if (hi < 0 || lo < 0) {
      return std::nullopt;
    }
    key.push_back(static_cast<char>((hi << 4) | lo));
  }
  return key;
}

// One decoded block-format file: the payload plus its write sequence and
// whether it is a tombstone (a sequenced delete marker).
struct DecodedBlock {
  u64 seq = 0;
  bool tombstone = false;
  std::vector<u8> bytes;
};

// Reads and checksum-verifies one block-format file
// ([crc][len'][seq][payload]); kCorrupted on any framing or checksum
// mismatch. Shared by get() and hint delivery (hints use the same layout).
Result<DecodedBlock> read_block_file(Sys& sys, const std::string& path) {
  auto fd = sys.open(path, 0);
  if (!fd.ok()) {
    return fd.error();
  }
  auto st = sys.fstat(fd.value());
  if (!st.ok()) {
    (void)sys.close(fd.value());
    return st.error();
  }
  auto raw = sys.read(fd.value(), st.value().size);
  (void)sys.close(fd.value());
  if (!raw.ok()) {
    return raw.error();
  }
  Reader r(raw.value());
  auto crc = r.get_u32();
  auto flagged = r.get_u32();
  auto seq = r.get_u64();
  if (!crc || !flagged || !seq) {
    return ErrorCode::kCorrupted;
  }
  const u32 len = *flagged & ~kTombstoneFlag;
  const bool tombstone = (*flagged & kTombstoneFlag) != 0;
  if (raw.value().size() != kBlockHeader + len || (tombstone && len != 0)) {
    return ErrorCode::kCorrupted;
  }
  // The crc covers [len'][seq][payload]: a torn sequence OR a flipped
  // tombstone bit is corruption — deletion state is never read off
  // unverified metadata.
  std::span<const u8> covered(raw.value().data() + 4, 12 + len);
  if (crc32c(covered) != *crc) {
    return ErrorCode::kCorrupted;  // never return bytes that fail the checksum
  }
  std::span<const u8> payload(raw.value().data() + kBlockHeader, len);
  return DecodedBlock{*seq, tombstone, std::vector<u8>(payload.begin(), payload.end())};
}

}  // namespace

std::string BlockStoreNode::key_path(std::string_view key) {
  std::string path = "/blocks/";
  for (char c : key) {
    path.push_back(kHexDigits[(static_cast<u8>(c) >> 4) & 0xF]);
    path.push_back(kHexDigits[static_cast<u8>(c) & 0xF]);
  }
  return path;
}

BlockStoreNode::BlockStoreNode(Sys& sys, Port port, std::vector<BsPeer> peers,
                               std::function<void()> pump, std::string fault_prefix,
                               BsTransport transport)
    : sys_(sys),
      port_(port),
      peers_(std::move(peers)),
      pump_(std::move(pump)),
      transport_(transport),
      obs_prefix_(ObsRegistry::global().instance_prefix("bs")),
      c_puts_(ObsRegistry::global().counter(obs_prefix_ + "puts")),
      c_gets_(ObsRegistry::global().counter(obs_prefix_ + "gets")),
      c_dels_(ObsRegistry::global().counter(obs_prefix_ + "dels")),
      c_corrupt_reads_(ObsRegistry::global().counter(obs_prefix_ + "corrupt_reads")),
      c_replicas_pushed_(ObsRegistry::global().counter(obs_prefix_ + "replicas_pushed")),
      c_replicas_applied_(ObsRegistry::global().counter(obs_prefix_ + "replicas_applied")),
      c_read_repairs_(ObsRegistry::global().counter(obs_prefix_ + "read_repairs")),
      c_failed_repairs_(ObsRegistry::global().counter(obs_prefix_ + "failed_repairs")),
      c_sheds_(ObsRegistry::global().counter(obs_prefix_ + "sheds")),
      c_hints_written_(ObsRegistry::global().counter(obs_prefix_ + "hints_written")),
      c_hints_delivered_(ObsRegistry::global().counter(obs_prefix_ + "hints_delivered")),
      c_hints_dropped_(ObsRegistry::global().counter(obs_prefix_ + "hints_dropped")),
      c_handoffs_(ObsRegistry::global().counter(obs_prefix_ + "handoffs")),
      c_stale_ignored_(ObsRegistry::global().counter(obs_prefix_ + "stale_ignored")),
      c_tombstones_written_(ObsRegistry::global().counter(obs_prefix_ + "tombstones_written")),
      c_tombstones_gced_(ObsRegistry::global().counter(obs_prefix_ + "tombstones_gced")),
      h_serve_busy_(ObsRegistry::global().histogram(obs_prefix_ + "serve_busy")),
      span_serve_(ObsRegistry::global().tracer().intern_site("bs/serve")) {
  if (!fault_prefix.empty()) {
    delay_site_ = &FaultRegistry::global().site(fault_prefix + "/serve_delay");
  }
}

Result<Unit> BlockStoreNode::init() {
  auto md = sys_.mkdir("/blocks");
  if (!md.ok() && md.error() != ErrorCode::kAlreadyExists) {
    return md.error();
  }
  auto hints = sys_.mkdir("/hints");
  if (!hints.ok() && hints.error() != ErrorCode::kAlreadyExists) {
    return hints.error();
  }
  auto sock = sys_.udp_socket();
  if (!sock.ok()) {
    return sock.error();
  }
  sock_ = sock.value();
  auto bound = sys_.udp_bind(sock_, port_);
  if (!bound.ok()) {
    return bound.error();
  }
  if (transport_ == BsTransport::kVtp && vtp_listener_ == kInvalidFd) {
    // The client-facing stream plane listens on the same port number as the
    // datagram socket (different protocol, no clash). Eager, so clients can
    // connect before the first serve_once arms the accept SQE.
    auto l = sys_.vtp_listen(port_, kVtpBacklog);
    if (!l.ok()) {
      return l.error();
    }
    vtp_listener_ = l.value();
  }
  return Unit{};
}

namespace {

// Serializes one block-format file: [crc(len'||seq||payload)][len'][seq]
// [payload]. Shared by put_local and write_hint (hints use the same layout).
// A tombstone always has an empty payload.
Writer encode_block(std::span<const u8> value, u64 seq, bool tombstone) {
  u32 flagged = static_cast<u32>(value.size());
  if (tombstone) {
    flagged = kTombstoneFlag;  // tombstones carry no payload
  }
  Writer body;
  body.put_u32(flagged);
  body.put_u64(seq);
  if (!tombstone) {
    body.put_raw(value);
  }
  Writer w;
  w.put_u32(crc32c(body.bytes()));
  w.put_raw(body.bytes());
  return w;
}

}  // namespace

Result<Unit> BlockStoreNode::put_local(std::string_view key, std::span<const u8> value,
                                       u64 seq, bool tombstone) {
  // Write-temp-then-rename: the new bytes go to a sidecar file and replace
  // the block in one atomic (journaled) rename, so a fault anywhere mid-put
  // leaves the previously acknowledged value intact. The ".tmp" suffix can
  // never collide with a block: keys encode to pure hex and view() skips
  // non-hex names.
  std::string path = key_path(key);
  std::string tmp = path + ".tmp";
  auto fd = sys_.open(tmp, kOpenCreate | kOpenTrunc);
  if (!fd.ok()) {
    return fd.error();
  }
  Writer w = encode_block(value, seq, tombstone);
  auto written = sys_.write(fd.value(), w.bytes());
  (void)sys_.close(fd.value());
  if (!written.ok() || written.value() != w.size()) {
    (void)sys_.unlink(tmp);  // best effort; a stale .tmp is inert
    return written.ok() ? ErrorCode::kNoSpace : written.error();
  }
  auto renamed = sys_.rename(tmp, path);
  if (!renamed.ok()) {
    (void)sys_.unlink(tmp);
    return renamed.error();
  }
  // Durability before acknowledgement: the put (or sequenced delete) is only
  // acked after fsync, so an acked op survives any later crash
  // (app/crash_recovery + app/tombstone_no_resurrection VCs).
  auto synced = sys_.fsync();
  if (synced.ok() && tombstone) {
    c_tombstones_written_.inc();
  }
  return synced;
}

Result<Unit> BlockStoreNode::put(std::string_view key, std::span<const u8> value) {
  // Direct (unstamped) puts order after whatever this node already holds.
  return put_stamped(key, value, local_seq(key) + 1);
}

Result<Unit> BlockStoreNode::put_stamped(std::string_view key, std::span<const u8> value,
                                         u64 seq) {
  bool applied = false;
  auto r = apply_replica(key, value, seq, /*tombstone=*/false, &applied);
  if (!r.ok()) {
    return r;
  }
  c_puts_.inc();
  if (!applied) {
    return Unit{};  // superseded by a newer local write: nothing to replicate
  }
  if (clustered_) {
    replicate_put(key, value, seq);
  } else {
    push_replicas(key, value, seq);
  }
  return Unit{};
}

Result<Unit> BlockStoreNode::apply_replica(std::string_view key, std::span<const u8> value,
                                           u64 seq, bool tombstone, bool* applied) {
  auto local = read_block_file(sys_, key_path(key));
  if (!local.ok() && local.error() != ErrorCode::kNotFound &&
      local.error() != ErrorCode::kCorrupted) {
    // Ordering needs the local copy's sequence; a faulting read (as opposed
    // to clean absence or detected corruption) must surface, not guess.
    return local.error();
  }
  if (local.ok() && local.value().seq > seq) {
    // The local intact copy is strictly newer: refusing the write is the
    // success path (the caller's bytes are durably superseded here).
    c_stale_ignored_.inc();
    if (applied != nullptr) {
      *applied = false;
    }
    return Unit{};
  }
  auto r = put_local(key, value, seq, tombstone);
  if (applied != nullptr) {
    *applied = r.ok();
  }
  return r;
}

Result<Unit> BlockStoreNode::apply_remote(std::string_view key, std::span<const u8> value,
                                          u64 seq, bool tombstone, bool* applied) {
  return apply_replica(key, value, seq, tombstone, applied);
}

u64 BlockStoreNode::local_seq(std::string_view key) const {
  auto r = read_block_file(sys_, key_path(key));
  return r.ok() ? r.value().seq : 0;
}

void BlockStoreNode::push_replicas(std::string_view key, std::span<const u8> value, u64 seq) {
  if (peers_.empty() || sock_ == kInvalidFd) {
    return;
  }
  Writer w;
  w.put_u8(static_cast<u8>(BsOp::kPutReplica));
  w.put_u64(0);  // replication pushes are unacked (client-level retries cover loss)
  w.put_string(key);
  w.put_u64(seq);
  w.put_bytes(value);
  for (const auto& peer : peers_) {
    if (sys_.udp_sendto(sock_, peer.addr, peer.port, w.bytes()).ok()) {
      c_replicas_pushed_.inc();
    }
  }
}

Result<std::vector<u8>> BlockStoreNode::get(std::string_view key) const {
  auto r = read_block_file(sys_, key_path(key));
  if (!r.ok() && r.error() != ErrorCode::kCorrupted) {
    return r.error();  // missing / io error: nothing was decoded
  }
  c_gets_.inc();
  if (!r.ok()) {
    c_corrupt_reads_.inc();
    return ErrorCode::kCorrupted;
  }
  if (r.value().tombstone) {
    return ErrorCode::kNotFound;  // a sequenced delete reads as clean absence
  }
  return std::move(r.value().bytes);
}

Result<BlockStoreNode::BlockData> BlockStoreNode::fetch_from_peer(const BsPeer& peer,
                                                                  std::string_view key) {
  if (repair_sock_ == kInvalidFd) {
    auto sock = sys_.udp_socket();
    if (!sock.ok()) {
      return sock.error();
    }
    repair_sock_ = sock.value();
  }
  u64 req_id = next_repair_req_id_++;
  Writer w;
  w.put_u8(static_cast<u8>(BsOp::kGet));
  w.put_u64(req_id);
  w.put_string(key);

  constexpr usize kRepairAttempts = 4;
  constexpr usize kRepairPolls = 64;
  for (usize attempt = 0; attempt < kRepairAttempts; ++attempt) {
    auto sent = sys_.udp_sendto(repair_sock_, peer.addr, peer.port, w.bytes());
    if (!sent.ok()) {
      continue;
    }
    auto reply = await_repair_reply(req_id, kRepairPolls);
    if (!reply.ok()) {
      continue;  // timed out (or the repair ring is gone): re-send
    }
    Reader r(reply.value());
    (void)r.get_u64();  // req_id, already matched
    auto err = r.get_u32();
    auto payload = r.get_bytes();
    if (!err || !payload) {
      continue;
    }
    if (static_cast<ErrorCode>(*err) != ErrorCode::kOk) {
      return static_cast<ErrorCode>(*err);
    }
    // kGet replies carry the block's write sequence after the payload so a
    // read-repair re-persists the bytes at their true position in the
    // write order (not as a fresh write that could shadow a newer value).
    auto seq = r.get_u64();
    return BlockData{std::move(*payload), seq.value_or(0)};
  }
  return ErrorCode::kTimedOut;
}

Result<std::vector<u8>> BlockStoreNode::await_repair_reply(u64 req_id, usize polls) {
  VNROS_CHECK(repair_sock_ != kInvalidFd);
  for (usize poll = 0; poll < polls; ++poll) {
    if (repair_ring_ == 0) {
      auto r = sys_.ring_setup(4, 8);
      if (!r.ok()) {
        return r.error();
      }
      repair_ring_ = r.value();
      repair_recv_armed_ = false;
    }
    if (!repair_recv_armed_) {
      // One parked recv at a time: the kernel holds the SQE until a
      // datagram lands, so waiting costs no syscalls beyond the reap below.
      RingSqe sqe{req_id, static_cast<u32>(SysNr::kUdpRecvFrom),
                  ring_args::udp_recvfrom(repair_sock_)};
      auto acc = sys_.ring_submit(repair_ring_, std::span<const RingSqe>(&sqe, 1));
      if (!acc.ok()) {
        if (acc.error() == ErrorCode::kNotFound) {
          repair_ring_ = 0;  // ring torn down (process state rebuilt): retry
          continue;
        }
        return acc.error();
      }
      if (acc.value() != 1) {
        return ErrorCode::kWouldBlock;
      }
      repair_recv_armed_ = true;
    }
    if (pump_) {
      pump_();
    }
    auto cqes = sys_.ring_wait(repair_ring_, 0, 4);
    if (!cqes.ok()) {
      return cqes.error();
    }
    for (RingCqe& cqe : cqes.value()) {
      repair_recv_armed_ = false;  // every CQE consumes the parked recv
      if (static_cast<ErrorCode>(cqe.err) != ErrorCode::kOk) {
        continue;
      }
      Reader dg(cqe.payload);
      auto src = dg.get_u32();
      auto sport = dg.get_u16();
      auto payload = dg.get_bytes();
      if (!src || !sport || !payload) {
        continue;
      }
      Reader r(*payload);
      auto rid = r.get_u64();
      if (!rid || *rid != req_id) {
        continue;  // stale reply from an earlier push/fetch on this socket
      }
      return std::move(*payload);
    }
  }
  return ErrorCode::kTimedOut;
}

Result<std::vector<u8>> BlockStoreNode::get_or_repair(std::string_view key) {
  auto r = get_or_repair_block(key);
  if (!r.ok()) {
    return r.error();
  }
  return std::move(r.value().bytes);
}

Result<BlockStoreNode::BlockData> BlockStoreNode::get_or_repair_block(std::string_view key) {
  auto local = read_block_file(sys_, key_path(key));
  if (local.ok()) {
    c_gets_.inc();
    if (local.value().tombstone) {
      return ErrorCode::kNotFound;  // deleted: absence is the correct answer
    }
    return BlockData{std::move(local.value().bytes), local.value().seq};
  }
  if (local.error() != ErrorCode::kCorrupted) {
    return local.error();
  }
  c_gets_.inc();
  c_corrupt_reads_.inc();
  // Local copy failed its checksum. Without peers (or while already inside a
  // repair — pump() can recurse into serve_once) the error stands; otherwise
  // pull the block from a replica, re-persist it, and serve the cured bytes.
  std::vector<BsPeer> repair_from = repair_peers(key);
  if (in_repair_ || repair_from.empty() || pump_ == nullptr) {
    return ErrorCode::kCorrupted;
  }
  in_repair_ = true;
  Result<BlockData> repaired = ErrorCode::kCorrupted;
  for (const auto& peer : repair_from) {
    auto fetched = fetch_from_peer(peer, key);
    if (fetched.ok()) {
      repaired = std::move(fetched);
      break;
    }
  }
  in_repair_ = false;
  if (!repaired.ok()) {
    c_failed_repairs_.inc();
    return ErrorCode::kCorrupted;  // every peer failed: the honest answer stands
  }
  // Re-persist at the peer's sequence: the cure restores the block's true
  // place in the write order instead of minting a new one.
  auto stored = put_local(key, repaired.value().bytes, repaired.value().seq,
                          /*tombstone=*/false);
  if (stored.ok()) {
    c_read_repairs_.inc();
    VNROS_LOG_DEBUG("blockstore", "read-repaired %zu-byte block from peer",
                    repaired.value().bytes.size());
  }
  // Even if re-persisting failed (e.g. injected disk fault) the fetched
  // bytes are checksum-verified by the peer's get(); serve them.
  return repaired;
}

Result<Unit> BlockStoreNode::del(std::string_view key) {
  // Direct (unstamped) deletes order after whatever this node already holds.
  return del_stamped(key, local_seq(key) + 1);
}

Result<Unit> BlockStoreNode::del_stamped(std::string_view key, u64 seq) {
  // A delete is a first-class sequenced write of a tombstone: apply-if-newer
  // like a put, fsynced before the ack, replicated with acked pushes and
  // hints. "Ensure absent" semantics (like S3 DELETE) are preserved —
  // deleting a missing key persists a tombstone and succeeds — and the
  // client's at-least-once retries stay idempotent (same stamp, same
  // outcome). A lagging replica pushing the old value later is refused as
  // stale by the tombstone's sequence: no resurrection.
  bool applied = false;
  auto r = apply_replica(key, {}, seq, /*tombstone=*/true, &applied);
  if (!r.ok()) {
    return r;
  }
  c_dels_.inc();
  if (applied && clustered_) {
    replicate_del(key, seq);
  }
  return Unit{};
}

std::vector<BlockKeyInfo> BlockStoreNode::list() const {
  std::vector<BlockKeyInfo> out;
  auto names = sys_.readdir("/blocks");
  if (!names.ok()) {
    return out;
  }
  for (const auto& name : names.value()) {
    auto key = decode_hex_key(name);
    if (!key) {
      continue;
    }
    auto block = read_block_file(sys_, "/blocks/" + name);
    if (!block.ok()) {
      continue;  // corrupt: invisible to sync, so a peer's copy wins
    }
    out.push_back(BlockKeyInfo{*key, crc32c(block.value().bytes), block.value().seq,
                               block.value().tombstone});
  }
  std::sort(out.begin(), out.end(),
            [](const BlockKeyInfo& a, const BlockKeyInfo& b) { return a.key < b.key; });
  return out;
}

std::map<std::string, std::vector<u8>> BlockStoreNode::view() const {
  std::map<std::string, std::vector<u8>> out;
  auto names = sys_.readdir("/blocks");
  if (!names.ok()) {
    return out;
  }
  for (const auto& name : names.value()) {
    // Decode the hex filename back into the key. get() maps tombstones to
    // kNotFound, so deleted keys are naturally absent from the view.
    auto key = decode_hex_key(name);
    if (!key) {
      continue;
    }
    auto value = get(*key);
    if (value.ok()) {
      out[*key] = value.value();
    }
  }
  return out;
}

void BlockStoreNode::configure_cluster(const ClusterConfig& cfg, const ClusterView& view) {
  cluster_ = cfg;
  view_ = view;
  clustered_ = true;
}

void BlockStoreNode::set_cluster_view(const ClusterView& view) {
  view_ = view;
  clustered_ = true;
}

void BlockStoreNode::grant_tokens(u64 ops_ppm) {
  tokens_ppm_ = std::min(tokens_ppm_ + ops_ppm, admission_.burst_ops * kOpCostPpm);
}

bool BlockStoreNode::admit_op() {
  if (!admission_.enabled) {
    return true;
  }
  if (tokens_ppm_ < kOpCostPpm) {
    c_sheds_.inc();
    return false;
  }
  tokens_ppm_ -= kOpCostPpm;
  return true;
}

std::vector<BsPeer> BlockStoreNode::repair_peers(std::string_view key) const {
  if (!clustered_) {
    return peers_;
  }
  std::vector<BsPeer> out;
  for (BsNodeId id : view_.owners(key)) {
    if (id == cluster_.self) {
      continue;
    }
    auto it = view_.directory.find(id);
    if (it != view_.directory.end()) {
      out.push_back(it->second);
    }
  }
  return out;
}

Result<Unit> BlockStoreNode::push_acked(const BsPeer& peer, BsOp op, std::string_view key,
                                        std::span<const u8> value, u64 seq) {
  if (pump_ == nullptr) {
    return ErrorCode::kUnsupported;  // cannot await an ack without a world pump
  }
  if (repair_sock_ == kInvalidFd) {
    auto sock = sys_.udp_socket();
    if (!sock.ok()) {
      return sock.error();
    }
    repair_sock_ = sock.value();
  }
  u64 req_id = next_repair_req_id_++;
  Writer w;
  w.put_u8(static_cast<u8>(op));
  w.put_u64(req_id);
  w.put_string(key);
  if (op == BsOp::kPutReplica) {
    w.put_u64(seq);
    w.put_bytes(value);
  } else if (op == BsOp::kDelReplica || op == BsOp::kTombstoneGc) {
    w.put_u64(seq);  // sequenced delete / GC horizon: the stamp rides along
  }
  // The ack deadline splits into two send windows: one re-send at the half
  // mark cures a dropped datagram (either direction) without a spin knob.
  ErrorCode last = ErrorCode::kTimedOut;
  const usize window = std::max<usize>(1, cluster_.ack_deadline_polls / 2);
  for (usize attempt = 0; attempt < 2; ++attempt) {
    auto sent = sys_.udp_sendto(repair_sock_, peer.addr, peer.port, w.bytes());
    if (!sent.ok()) {
      last = sent.error();
      continue;
    }
    // Every replica datagram put on the wire counts as pushed; the receiver
    // counts at most one apply per datagram, so applied <= pushed (the PR 5
    // obs-coherence invariant) is preserved by construction.
    c_replicas_pushed_.inc();
    auto reply = await_repair_reply(req_id, window);
    if (!reply.ok()) {
      continue;  // no ack inside the window: re-send once, then hint
    }
    Reader r(reply.value());
    (void)r.get_u64();  // req_id, already matched
    auto err = r.get_u32();
    if (!err) {
      continue;
    }
    ErrorCode code = static_cast<ErrorCode>(*err);
    if (code == ErrorCode::kOk) {
      return Unit{};
    }
    last = code;  // the peer answered with an error; maybe the re-send cures it
  }
  return last;
}

std::string BlockStoreNode::hint_path(BsNodeId owner, std::string_view key) const {
  std::string path = "/hints/" + std::to_string(owner) + "_";
  for (char c : key) {
    path.push_back(kHexDigits[(static_cast<u8>(c) >> 4) & 0xF]);
    path.push_back(kHexDigits[static_cast<u8>(c) & 0xF]);
  }
  return path;
}

void BlockStoreNode::drop_stale_hints(std::string_view key, u64 seq) {
  // The tombstone-GC barrier: once this node acks a tombstone at `seq`, no
  // parked hint at or below `seq` for the key may survive here — otherwise
  // GC could reclaim the tombstone everywhere and a later hint delivery
  // would resurrect the deleted value.
  auto names = sys_.readdir("/hints");
  if (!names.ok()) {
    return;
  }
  std::string hexkey;
  for (char c : key) {
    hexkey.push_back(kHexDigits[(static_cast<u8>(c) >> 4) & 0xF]);
    hexkey.push_back(kHexDigits[static_cast<u8>(c) & 0xF]);
  }
  for (const auto& name : names.value()) {
    auto us = name.find('_');
    if (us == std::string::npos || std::string_view(name).substr(us + 1) != hexkey) {
      continue;
    }
    std::string path = "/hints/" + name;
    auto hint = read_block_file(sys_, path);
    if (!hint.ok() || hint.value().seq <= seq) {
      (void)sys_.unlink(path);
    }
  }
}

bool BlockStoreNode::reserve_hint_slot(BsNodeId owner, std::string_view key, u64 seq) {
  // Bound the parked-hint queue per unreachable peer: past the cap, evict
  // the lowest-sequence (oldest) hint — or refuse the incoming one when IT
  // is the oldest. Either way the drop is counted; anti-entropy is the
  // backstop that eventually carries what the dropped hint would have.
  if (cluster_.max_hints_per_peer == 0) {
    return true;  // unbounded (legacy behaviour, not used by default)
  }
  auto names = sys_.readdir("/hints");
  if (!names.ok()) {
    return true;  // can't enumerate: fail open, the write may still succeed
  }
  const std::string prefix = std::to_string(owner) + "_";
  const std::string target = hint_path(owner, key);
  usize count = 0;
  u64 min_seq = ~u64{0};
  std::string min_path;
  for (const auto& name : names.value()) {
    if (name.size() < prefix.size() || name.compare(0, prefix.size(), prefix) != 0) {
      continue;
    }
    std::string path = "/hints/" + name;
    if (path == target) {
      return true;  // overwriting this (owner, key)'s own slot: no growth
    }
    auto hint = read_block_file(sys_, path);
    if (!hint.ok()) {
      (void)sys_.unlink(path);  // corrupt hint: free the slot
      continue;
    }
    ++count;
    if (hint.value().seq < min_seq) {
      min_seq = hint.value().seq;
      min_path = path;
    }
  }
  if (count < cluster_.max_hints_per_peer) {
    return true;
  }
  c_hints_dropped_.inc();
  if (min_seq <= seq && !min_path.empty()) {
    (void)sys_.unlink(min_path);  // evict the oldest parked hint
    return true;
  }
  return false;  // the incoming hint is the oldest: drop it instead
}

Result<Unit> BlockStoreNode::write_hint(BsNodeId owner, std::string_view key,
                                        std::span<const u8> value, u64 seq, bool tombstone) {
  // Hints live beside blocks as "/hints/<owner>_<hexkey>" in block format
  // (the write sequence — and the tombstone flag for sequenced deletes —
  // rides along so delivery keeps its ordering). No fsync: a hint is an
  // availability optimization, not the durability story — the coordinator
  // keeps its own fsynced copy, and anti-entropy remains the backstop if a
  // crash eats parked hints.
  if (!reserve_hint_slot(owner, key, seq)) {
    return Unit{};  // per-peer cap: this hint was dropped (counted)
  }
  std::string path = hint_path(owner, key);
  auto fd = sys_.open(path, kOpenCreate | kOpenTrunc);
  if (!fd.ok()) {
    return fd.error();
  }
  Writer w = encode_block(value, seq, tombstone);
  auto written = sys_.write(fd.value(), w.bytes());
  (void)sys_.close(fd.value());
  if (!written.ok() || written.value() != w.size()) {
    (void)sys_.unlink(path);
    return written.ok() ? ErrorCode::kNoSpace : written.error();
  }
  c_hints_written_.inc();
  return Unit{};
}

void BlockStoreNode::replicate_put(std::string_view key, std::span<const u8> value,
                                   u64 seq) {
  for (BsNodeId owner : view_.owners(key)) {
    if (owner == cluster_.self) {
      continue;
    }
    auto it = view_.directory.find(owner);
    if (it == view_.directory.end()) {
      continue;
    }
    if (!push_acked(it->second, BsOp::kPutReplica, key, value, seq).ok()) {
      // Owner unreachable (partition/crash/overload): park the handoff.
      (void)write_hint(owner, key, value, seq, /*tombstone=*/false);
    }
  }
}

void BlockStoreNode::replicate_del(std::string_view key, u64 seq) {
  // Sequenced deletes replicate exactly like puts: an acked tombstone push
  // to every other owner, a parked tombstone hint for whoever is
  // unreachable. Stale parked hints for the key need no special handling —
  // delivery is apply-if-newer, and the tombstone's sequence outranks them.
  for (BsNodeId owner : view_.owners(key)) {
    if (owner == cluster_.self) {
      continue;
    }
    auto it = view_.directory.find(owner);
    if (it == view_.directory.end()) {
      continue;
    }
    if (!push_acked(it->second, BsOp::kDelReplica, key, {}, seq).ok()) {
      (void)write_hint(owner, key, {}, seq, /*tombstone=*/true);
    }
  }
}

Result<RebalanceStats> BlockStoreNode::rebalance(const ClusterView& next) {
  ClusterView old = view_;
  bool was_clustered = clustered_;
  view_ = next;
  clustered_ = true;
  auto had = [](const std::vector<BsNodeId>& owners, BsNodeId id) {
    for (BsNodeId o : owners) {
      if (o == id) {
        return true;
      }
    }
    return false;
  };
  RebalanceStats st;
  auto names = sys_.readdir("/blocks");
  if (!names.ok()) {
    return names.error();
  }
  for (const auto& name : names.value()) {
    auto decoded_key = decode_hex_key(name);
    if (!decoded_key) {
      continue;  // ".tmp" sidecars and foreign files are not blocks
    }
    const std::string& key = *decoded_key;
    auto block = read_block_file(sys_, "/blocks/" + name);
    if (!block.ok()) {
      continue;  // corrupt local copy: read-repair's problem, not rebalance's
    }
    const std::vector<u8>& value = block.value().bytes;
    u64 seq = block.value().seq;
    const bool tomb = block.value().tombstone;
    ++st.scanned;
    std::vector<BsNodeId> new_owners = view_.owners(key);
    std::vector<BsNodeId> old_owners = was_clustered ? old.owners(key) : std::vector<BsNodeId>{};
    bool self_owner = had(new_owners, cluster_.self);
    // Owners gained by the view change lack the shard; everyone else already
    // got it on the write path (or will via hints/anti-entropy).
    std::vector<BsNodeId> targets;
    for (BsNodeId id : new_owners) {
      if (id != cluster_.self && !had(old_owners, id)) {
        targets.push_back(id);
      }
    }
    // Losing ownership with no newly-joined owner still requires proof of
    // placement before dropping: confirm with the primary. The push carries
    // our copy's sequence, so a primary holding something newer refuses the
    // bytes but still acks — either way its ack certifies "I durably hold
    // this key at a sequence >= yours", which is what makes dropping safe.
    if (!self_owner && targets.empty() && !new_owners.empty()) {
      targets.push_back(new_owners[0]);
    }
    usize acks = 0;
    for (BsNodeId id : targets) {
      auto it = view_.directory.find(id);
      if (it == view_.directory.end()) {
        continue;
      }
      // Tombstones migrate too: a new owner that never learns of the delete
      // would serve kNotFound now but could resurrect the key from a stale
      // peer later. The sequenced kDelReplica carries the delete's position
      // in the write order, exactly like a value push carries its own.
      BsOp push_op = tomb ? BsOp::kDelReplica : BsOp::kPutReplica;
      if (push_acked(it->second, push_op, key, value, seq).ok()) {
        ++acks;
        ++st.moved;
        c_handoffs_.inc();
      } else if (write_hint(id, key, value, seq, tomb).ok()) {
        ++st.hinted;
      }
    }
    if (!self_owner) {
      if (acks > 0) {
        // The shard provably lives on a current owner; release our copy.
        (void)sys_.unlink(key_path(key));
        ++st.dropped;
      } else {
        // No owner acked: keep the bytes and flag it — a graceful leave
        // must abort rather than walk away with the only copy.
        ++st.failed;
      }
    }
  }
  auto synced = sys_.fsync();
  if (!synced.ok()) {
    return synced.error();
  }
  return st;
}

u64 BlockStoreNode::gc_tombstones(usize max_batch) {
  // Bounded, acknowledgement-gated tombstone reclamation. A tombstone may
  // only be unlinked once EVERY directory member has (a) durably applied a
  // write at or above its sequence and (b) discarded any parked hint that
  // could re-introduce an older value — both certified by the kDelReplica
  // ack (see serve_once). Members then drop their own copy on the explicit
  // kTombstoneGc; one that misses it just keeps an inert tombstone until a
  // later pass. In-flight writes older than the tombstone are excluded by
  // the caller running GC at quiesce (the deployment analog of a gc_grace
  // period); DESIGN §11 spells out the argument.
  u64 gced = 0;
  for (const auto& e : list()) {
    if (!e.tombstone) {
      continue;
    }
    if (gced >= max_batch) {
      break;
    }
    // Our own parked hints at or below the tombstone are superseded; drop
    // them first so self-delivery can never race the reclamation.
    drop_stale_hints(e.key, e.seq);
    if (clustered_) {
      bool all_acked = true;
      for (const auto& [id, peer] : view_.directory) {
        if (id == cluster_.self) {
          continue;
        }
        if (!push_acked(peer, BsOp::kDelReplica, e.key, {}, e.seq).ok()) {
          all_acked = false;
          break;
        }
      }
      if (!all_acked) {
        continue;  // someone unreachable: the tombstone must outlive them
      }
      for (const auto& [id, peer] : view_.directory) {
        if (id == cluster_.self) {
          continue;
        }
        // Best effort: a lost GC message leaves a harmless tombstone that a
        // later pass (or Merkle repair + next GC) reclaims.
        (void)push_acked(peer, BsOp::kTombstoneGc, e.key, {}, e.seq);
      }
    }
    if (sys_.unlink(key_path(e.key)).ok()) {
      c_tombstones_gced_.inc();
      ++gced;
    }
  }
  if (gced > 0) {
    (void)sys_.fsync();
  }
  return gced;
}

u64 BlockStoreNode::deliver_hints() {
  if (!clustered_) {
    return 0;
  }
  auto names = sys_.readdir("/hints");
  if (!names.ok()) {
    return 0;
  }
  u64 delivered = 0;
  for (const auto& name : names.value()) {
    auto us = name.find('_');
    if (us == std::string::npos || us == 0) {
      continue;
    }
    u64 owner_raw = 0;
    bool digits = true;
    for (usize i = 0; i < us; ++i) {
      if (name[i] < '0' || name[i] > '9') {
        digits = false;
        break;
      }
      owner_raw = owner_raw * 10 + static_cast<u64>(name[i] - '0');
    }
    auto key = decode_hex_key(std::string_view(name).substr(us + 1));
    if (!digits || !key) {
      continue;
    }
    BsNodeId owner = static_cast<BsNodeId>(owner_raw);
    std::string path = "/hints/" + name;
    auto it = view_.directory.find(owner);
    if (!view_.ring.contains(owner) || it == view_.directory.end()) {
      (void)sys_.unlink(path);  // owner left the cluster: the hint is stale
      continue;
    }
    auto hint = read_block_file(sys_, path);
    if (!hint.ok()) {
      (void)sys_.unlink(path);  // torn/corrupt hint (no fsync): drop it
      continue;
    }
    if (owner == cluster_.self) {
      // A view change made us the owner: apply locally (if-newer — our own
      // copy may already have overtaken the parked bytes).
      bool applied = false;
      if (!apply_replica(*key, hint.value().bytes, hint.value().seq,
                         hint.value().tombstone, &applied)
               .ok()) {
        continue;  // disk fault: retry on a later pass
      }
      (void)sys_.unlink(path);
      if (applied) {
        c_hints_delivered_.inc();
        ++delivered;
      }
      continue;
    }
    if (pump_ == nullptr) {
      continue;
    }
    // The hint rides with its original write sequence, so delivery cannot
    // regress a newer value: the owner applies if-newer and acks either way
    // (a stale refusal still certifies the owner durably holds the key).
    // No ack (unreachable, shedding) keeps the hint parked for a later pass.
    // A parked tombstone is delivered as the sequenced delete it is.
    BsOp hint_op = hint.value().tombstone ? BsOp::kDelReplica : BsOp::kPutReplica;
    if (push_acked(it->second, hint_op, *key, hint.value().bytes, hint.value().seq).ok()) {
      (void)sys_.unlink(path);
      c_hints_delivered_.inc();
      ++delivered;
    }
  }
  return delivered;
}

bool BlockStoreNode::ensure_serve_ring() {
  if (serve_ring_ == 0) {
    // Parked SQEs hold their submission slot until they complete, and the
    // stream plane parks one recv per live connection — so the SQ must be
    // sized for the connection fan-in, not the datagram worker complement.
    auto r = sys_.ring_setup(/*sq_slots=*/4096, /*cq_slots=*/256);
    if (!r.ok()) {
      return false;
    }
    serve_ring_ = r.value();
    serve_recvs_ = 0;
  }
  // Keep the worker complement parked: each recv SQE is one serve worker
  // waiting in the kernel for a request datagram. One batched submit — every
  // ring_submit runs a reactor pass over all parked SQEs, which the stream
  // plane can grow to thousands.
  if (serve_recvs_ < kServeWorkers) {
    std::vector<RingSqe> batch;
    for (usize w = serve_recvs_; w < kServeWorkers; ++w) {
      batch.push_back(RingSqe{static_cast<u64>(w), static_cast<u32>(SysNr::kUdpRecvFrom),
                              ring_args::udp_recvfrom(sock_)});
    }
    auto acc = sys_.ring_submit(serve_ring_, batch);
    if (acc.ok()) {
      serve_recvs_ += acc.value();
    }
  }
  return serve_recvs_ > 0;
}

bool BlockStoreNode::serve_once() {
  VNROS_CHECK(sock_ != kInvalidFd);
  // Latency injection: a fired "<prefix>/serve_delay" fault stalls this node
  // for `delay` serve calls. Datagrams stay queued (or parked as completed
  // CQEs) — a slow peer, not a dead one.
  if (stall_polls_ > 0) {
    --stall_polls_;
    return false;
  }
  if (delay_site_ != nullptr) {
    if (auto d = delay_site_->fire_delay()) {
      stall_polls_ = *d - 1;
      return false;
    }
  }
  if (!ensure_serve_ring()) {
    return false;
  }
  auto cqes = sys_.ring_wait(serve_ring_, 0, static_cast<u32>(2 * kServeWorkers + 8));
  if (!cqes.ok()) {
    if (cqes.error() == ErrorCode::kNotFound) {
      serve_ring_ = 0;  // ring torn down (process state rebuilt): recreate
      serve_recvs_ = 0;
      // Parked VTP SQEs died with the ring; stream fds did too, so drop the
      // connection table and let clients reconnect against a fresh listener.
      accept_armed_ = false;
      vtp_listener_ = kInvalidFd;
      vtp_conns_.clear();
    }
    return false;
  }
  usize served = 0;
  for (RingCqe& cqe : cqes.value()) {
    if ((cqe.user_data & kReplyTag) != 0) {
      continue;  // a reply sendto completed: nothing to do
    }
    if ((cqe.user_data & kAcceptTag) != 0) {
      // The parked VTP accept resolved: adopt the connection and let the
      // re-arm pass below park a recv SQE on it (plus a fresh accept).
      accept_armed_ = false;
      if (static_cast<ErrorCode>(cqe.err) == ErrorCode::kOk) {
        Reader ar(cqe.payload);
        if (auto fd = ar.get_u32()) {
          vtp_conns_[next_vtp_slot_++].fd = static_cast<Fd>(*fd);
        }
      }
      continue;
    }
    if ((cqe.user_data & kVtpConnTag) != 0) {
      u64 slot = cqe.user_data & ~kVtpConnTag;
      auto it = vtp_conns_.find(slot);
      if (it == vtp_conns_.end()) {
        continue;  // connection already torn down; drop the stale CQE
      }
      it->second.recv_armed = false;
      if (static_cast<ErrorCode>(cqe.err) != ErrorCode::kOk) {
        // kPipeClosed (client FIN drained) or a typed terminal error: the
        // stream is done — release our end.
        close_vtp_conn(slot);
        continue;
      }
      Reader sr(cqe.payload);
      if (auto bytes = sr.get_bytes()) {
        served += on_vtp_bytes(slot, *bytes);
      }
      continue;
    }
    if (serve_recvs_ > 0) {
      --serve_recvs_;  // this worker's recv completed; re-armed below
    }
    if (static_cast<ErrorCode>(cqe.err) != ErrorCode::kOk) {
      continue;  // e.g. socket rebound mid-flight; the pool re-arms below
    }
    Reader dg(cqe.payload);
    auto src = dg.get_u32();
    auto sport = dg.get_u16();
    auto payload = dg.get_bytes();
    if (!src || !sport || !payload) {
      continue;
    }
    process_request(*src, *sport, *payload);
    ++served;
  }
  if (served > 0) {
    h_serve_busy_.record(served);  // worker-pool occupancy for this drain
  }
  // Retry reply bytes the stream transport refused earlier (window opened?),
  // then re-arm consumed workers, the accept SQE, and per-conn recvs.
  for (auto it = vtp_conns_.begin(); it != vtp_conns_.end();) {
    if (!it->second.outbuf.empty() && it->second.fd != kInvalidFd) {
      vtp_flush(it->second);
    }
    it = it->second.fd == kInvalidFd ? vtp_conns_.erase(it) : ++it;
  }
  ensure_serve_ring();
  ensure_vtp_serve();
  return served > 0;
}

void BlockStoreNode::process_request(NetAddr src, Port src_port,
                                     std::span<const u8> payload) {
  auto reply = handle_request(payload);
  if (!reply) {
    return;
  }
  // On the stream plane only node-to-node datagrams reach this path, and the
  // serve ring carries a parked recv per client connection — a per-reply
  // ring_submit would pay a reactor pass over all of them. Send directly.
  if (transport_ == BsTransport::kVtp) {
    (void)sys_.udp_sendto(sock_, src, src_port, *reply);
    return;
  }
  // Replies ride the serve ring too (tagged so their completions are
  // discarded on reap); a full SQ falls back to the direct send.
  RingSqe sqe{kReplyTag | next_reply_ud_++, static_cast<u32>(SysNr::kUdpSendTo),
              ring_args::udp_sendto(sock_, src, src_port, *reply)};
  auto acc = sys_.ring_submit(serve_ring_, std::span<const RingSqe>(&sqe, 1));
  if (!acc.ok() || acc.value() != 1) {
    (void)sys_.udp_sendto(sock_, src, src_port, *reply);
  }
}

void BlockStoreNode::ensure_vtp_serve() {
  if (transport_ != BsTransport::kVtp || serve_ring_ == 0) {
    return;
  }
  if (vtp_listener_ == kInvalidFd) {
    auto l = sys_.vtp_listen(port_, kVtpBacklog);
    if (!l.ok()) {
      return;
    }
    vtp_listener_ = l.value();
  }
  // One batched submit for everything that needs (re-)arming. Per-SQE
  // submits would run a reactor pass — O(parked SQEs) — per call, turning a
  // busy serve pass into O(completions × connections); a single batch pays
  // one pass total. Acceptance is a strict prefix, so the armed flags are
  // settled in submission order.
  std::vector<RingSqe> batch;
  if (!accept_armed_) {
    batch.push_back(RingSqe{kAcceptTag, static_cast<u32>(SysNr::kVtpAccept),
                            ring_args::vtp_accept(vtp_listener_)});
  }
  std::vector<VtpServeConn*> armed_order;
  for (auto& [slot, conn] : vtp_conns_) {
    if (conn.recv_armed || conn.fd == kInvalidFd) {
      continue;
    }
    batch.push_back(RingSqe{kVtpConnTag | slot, static_cast<u32>(SysNr::kVtpRecv),
                            ring_args::vtp_recv(conn.fd, kVtpRecvChunk)});
    armed_order.push_back(&conn);
  }
  if (batch.empty()) {
    return;
  }
  auto acc = sys_.ring_submit(serve_ring_, batch);
  usize accepted = acc.ok() ? acc.value() : 0;
  usize idx = 0;
  if (!accept_armed_) {
    accept_armed_ = accepted > idx;
    ++idx;
  }
  for (VtpServeConn* conn : armed_order) {
    conn->recv_armed = accepted > idx;
    ++idx;
  }
}

usize BlockStoreNode::on_vtp_bytes(u64 slot, std::span<const u8> bytes) {
  auto it = vtp_conns_.find(slot);
  if (it == vtp_conns_.end()) {
    return 0;
  }
  VtpServeConn& conn = it->second;
  conn.inbuf.insert(conn.inbuf.end(), bytes.begin(), bytes.end());
  // Reassemble [u32 len][body] frames off the stream; each complete body is
  // one request, its reply framed back onto the same stream.
  usize served = 0;
  usize off = 0;
  while (conn.inbuf.size() - off >= 4) {
    Reader fr(std::span<const u8>(conn.inbuf.data() + off, 4));
    u32 len = fr.get_u32().value_or(0);
    if (conn.inbuf.size() - off - 4 < len) {
      break;  // incomplete frame: wait for more stream bytes
    }
    auto reply = handle_request(std::span<const u8>(conn.inbuf.data() + off + 4, len));
    off += 4 + len;
    ++served;
    if (reply) {
      Writer fw;
      fw.put_u32(static_cast<u32>(reply->size()));
      conn.outbuf.insert(conn.outbuf.end(), fw.bytes().begin(), fw.bytes().end());
      conn.outbuf.insert(conn.outbuf.end(), reply->begin(), reply->end());
    }
  }
  conn.inbuf.erase(conn.inbuf.begin(),
                   conn.inbuf.begin() + static_cast<std::ptrdiff_t>(off));
  vtp_flush(conn);
  if (conn.fd != kInvalidFd && conn.outbuf.size() > kVtpOutbufMax) {
    close_vtp_conn(slot);  // slow consumer: bounded memory beats unbounded queue
  }
  return served;
}

void BlockStoreNode::vtp_flush(VtpServeConn& conn) {
  while (!conn.outbuf.empty() && conn.fd != kInvalidFd) {
    auto n = sys_.vtp_send(conn.fd, conn.outbuf);
    if (!n.ok()) {
      if (n.error() != ErrorCode::kWouldBlock) {
        // Terminal connection error: release the fd; the serve loop reaps
        // the slot on its next pass.
        (void)sys_.vtp_close(conn.fd);
        conn.fd = kInvalidFd;
      }
      return;  // kWouldBlock: send buffer full, retried next drain
    }
    conn.outbuf.erase(conn.outbuf.begin(),
                      conn.outbuf.begin() + static_cast<std::ptrdiff_t>(n.value()));
  }
}

void BlockStoreNode::close_vtp_conn(u64 slot) {
  auto it = vtp_conns_.find(slot);
  if (it == vtp_conns_.end()) {
    return;
  }
  if (it->second.fd != kInvalidFd) {
    (void)sys_.vtp_close(it->second.fd);
  }
  vtp_conns_.erase(it);
}

std::optional<std::vector<u8>> BlockStoreNode::handle_request(std::span<const u8> payload) {
  SpanScope span(ObsRegistry::global().tracer(), span_serve_);
  Reader r(payload);
  auto op = r.get_u8();
  auto req_id = r.get_u64();
  auto key = r.get_string();
  if (!op || !req_id || !key) {
    return std::nullopt;  // malformed request: drop (no reply semantics)
  }

  // Admission control: storage ops (not ping/list — the control plane stays
  // responsive) cost one token. An empty bucket sheds the request with a
  // typed kOverloaded so clients back off instead of failing over.
  BsOp opcode = static_cast<BsOp>(*op);
  bool storage_op = opcode == BsOp::kPut || opcode == BsOp::kGet || opcode == BsOp::kDel ||
                    opcode == BsOp::kPutReplica || opcode == BsOp::kDelReplica ||
                    opcode == BsOp::kGetBlock || opcode == BsOp::kMerkleNode ||
                    opcode == BsOp::kMerkleLeaf || opcode == BsOp::kTombstoneGc;
  if (storage_op && !admit_op()) {
    if (*req_id == 0) {
      return std::nullopt;  // unacked replica push: shed silently
    }
    Writer shed;
    shed.put_u64(*req_id);
    shed.put_u32(static_cast<u32>(ErrorCode::kOverloaded));
    shed.put_bytes(std::span<const u8>());
    return shed.take();
  }

  ErrorCode err = ErrorCode::kInvalidArgument;
  std::vector<u8> value_out;
  u64 seq_out = 0;  // kGet replies carry the block's write sequence
  switch (static_cast<BsOp>(*op)) {
    case BsOp::kPut: {
      auto seq = r.get_u64();
      auto value = r.get_bytes();
      if (seq && value && r.exhausted()) {
        err = put_stamped(*key, *value, *seq).error();
      }
      break;
    }
    case BsOp::kPutReplica: {
      auto seq = r.get_u64();
      auto value = r.get_bytes();
      if (seq && value && r.exhausted()) {
        bool applied = false;
        err = apply_replica(*key, *value, *seq, /*tombstone=*/false, &applied).error();
        if (applied) {
          c_replicas_applied_.inc();
        }
      }
      // Replication pushes carry req_id 0: apply silently, no reply.
      if (*req_id == 0) {
        return std::nullopt;
      }
      break;
    }
    case BsOp::kGet: {
      if (r.exhausted()) {
        auto v = get_or_repair_block(*key);
        err = v.error();
        if (v.ok()) {
          err = ErrorCode::kOk;
          value_out = std::move(v.value().bytes);
          seq_out = v.value().seq;
        }
      }
      break;
    }
    case BsOp::kDel: {
      auto seq = r.get_u64();
      if (seq && r.exhausted()) {
        // Coordinated deletes arrive pre-stamped by the client, exactly like
        // coordinated puts: retries replay the same stamp, so at-least-once
        // delivery stays idempotent.
        err = del_stamped(*key, *seq).error();
      }
      break;
    }
    case BsOp::kDelReplica: {
      auto seq = r.get_u64();
      if (seq && r.exhausted()) {
        // The GC barrier: before acking a tombstone we discard every parked
        // hint for the key at or below its sequence. The ack therefore
        // certifies BOTH "I durably hold >= seq" and "no stale hint of mine
        // can resurrect this key" — which is what lets the coordinator
        // reclaim the tombstone once every member has acked.
        drop_stale_hints(*key, *seq);
        bool applied = false;
        err = apply_replica(*key, {}, *seq, /*tombstone=*/true, &applied).error();
        if (applied) {
          c_replicas_applied_.inc();
        }
      }
      // Like kPutReplica: applied locally, never re-forwarded; req_id 0
      // means the sender is not waiting for an ack.
      if (*req_id == 0) {
        return std::nullopt;
      }
      break;
    }
    case BsOp::kGetBlock: {
      if (r.exhausted()) {
        // Repair fetch: unlike kGet, tombstones are first-class here — the
        // reply leads with a tombstone byte so anti-entropy can pull deletes
        // as faithfully as values. Corrupt local copies surface as
        // kCorrupted (the puller tries another peer).
        auto block = read_block_file(sys_, key_path(*key));
        if (block.ok()) {
          Writer bw;
          bw.put_u8(block.value().tombstone ? 1 : 0);
          bw.put_raw(block.value().bytes);
          value_out = bw.take();
          seq_out = block.value().seq;
          err = ErrorCode::kOk;
        } else {
          err = block.error();
        }
      }
      break;
    }
    case BsOp::kMerkleNode: {
      auto idx = r.get_u32();
      if (idx && r.exhausted() && *idx < MerkleTree::kNodes) {
        MerkleTree t = MerkleTree::build(list());
        Writer mw;
        mw.put_u32(t.hash[*idx]);
        if (MerkleTree::is_leaf(*idx)) {
          mw.put_u32(0);
        } else {
          mw.put_u32(static_cast<u32>(MerkleTree::kFanout));
          for (usize c = 0; c < MerkleTree::kFanout; ++c) {
            mw.put_u32(t.hash[*idx * MerkleTree::kFanout + 1 + c]);
          }
        }
        value_out = mw.take();
        err = ErrorCode::kOk;
      }
      break;
    }
    case BsOp::kMerkleLeaf: {
      auto bucket = r.get_u32();
      if (bucket && r.exhausted() && *bucket < MerkleTree::kLeaves) {
        MerkleTree t = MerkleTree::build(list());
        Writer mw;
        mw.put_u32(static_cast<u32>(t.buckets[*bucket].size()));
        for (const auto& e : t.buckets[*bucket]) {
          mw.put_string(e.key);
          mw.put_u64(e.seq);
          mw.put_u8(e.tombstone ? 1 : 0);
        }
        value_out = mw.take();
        err = ErrorCode::kOk;
      }
      break;
    }
    case BsOp::kTombstoneGc: {
      auto seq = r.get_u64();
      if (seq && r.exhausted()) {
        // "Drop your tombstone for this key if it is no newer than S." Only
        // ever sent after every member acked the tombstone at S, so removal
        // cannot re-open a resurrection window. Idempotent: a missing or
        // newer block is already the desired end state.
        auto block = read_block_file(sys_, key_path(*key));
        if (block.ok() && block.value().tombstone && block.value().seq <= *seq) {
          if (sys_.unlink(key_path(*key)).ok()) {
            c_tombstones_gced_.inc();
          }
        }
        err = ErrorCode::kOk;
      }
      break;
    }
    case BsOp::kPing: {
      if (r.exhausted()) {
        err = ErrorCode::kOk;
      }
      break;
    }
    case BsOp::kList: {
      if (r.exhausted()) {
        Writer lw;
        auto entries = list();
        lw.put_u32(static_cast<u32>(entries.size()));
        for (const auto& e : entries) {
          lw.put_string(e.key);
          lw.put_u32(e.crc);
          lw.put_u64(e.seq);
          lw.put_u8(e.tombstone ? 1 : 0);  // flags: bit 0 = tombstone
        }
        value_out = lw.take();
        err = ErrorCode::kOk;
      }
      break;
    }
    default:
      break;
  }

  Writer reply;
  reply.put_u64(*req_id);
  reply.put_u32(static_cast<u32>(err));
  reply.put_bytes(value_out);
  reply.put_u64(seq_out);  // trailing write sequence (meaningful for kGet)
  return reply.take();
}

}  // namespace vnros
