// Merkle-tree anti-entropy: background repair whose bandwidth scales with
// *divergence*, not keyspace.
//
// The PR 7 full-inventory sync (BlockStoreClient::sync_into) ships every
// (key, crc, seq) a replica holds on every pass — O(keyspace) wire bytes even
// when the replicas already agree. This module replaces it as the background
// repair path: each node summarizes its inventory as a fixed-shape hash tree
// over key -> (seq, tombstone); two replicas exchange the tree top-down and
// only descend into subtrees whose hashes differ, so an in-sync pair costs
// one root exchange and a 1%-divergent pair costs O(log + divergent keys).
// The old full-inventory sync is kept as the ablation baseline
// (bench/ablate_anti_entropy measures both through the same byte accounting).
//
// Repair is subordinate to foreground traffic by construction:
//   - every pass runs under a token budget (one token per RPC); an exhausted
//     budget parks the rest of the pass for the next deadline;
//   - repair RPCs are admission-gated server-side like any storage op, and a
//     kOverloaded reply aborts the whole pass (the peer is busy serving
//     clients; divergence can wait);
//   - pass deadlines are jittered per peer so repair load never synchronizes
//     across the cluster.
//
// Correctness leans entirely on the node's apply-if-newer ingress
// (BlockStoreNode::apply_remote): repair can reorder or replay arbitrarily
// and never regress a key, and tombstones travel as first-class sequenced
// writes so repair propagates deletions instead of resurrecting them
// (app/anti_entropy_converges + app/tombstone_no_resurrection VCs).
#ifndef VNROS_SRC_APP_ANTI_ENTROPY_H_
#define VNROS_SRC_APP_ANTI_ENTROPY_H_

#include <array>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "src/app/blockstore.h"
#include "src/base/result.h"
#include "src/base/rng.h"
#include "src/base/types.h"

namespace vnros {

// Fixed-shape Merkle tree over a node's block inventory. Keys hash into 64
// leaf buckets; interior nodes have fanout 4 (85 nodes total, heap-indexed:
// children of i are 4i+1..4i+4, root is 0). A leaf hashes its bucket's
// (key, seq, tombstone) entries in key order; an interior node hashes its
// four child hashes. Equal roots => equal (key -> seq, tombstone) maps
// (modulo crc32c collisions, which the chaos suite's value checks would
// surface as a divergence that "converged" to different bytes).
//
// The shape is fixed (not keyspace-dependent) so two nodes can compare trees
// index-by-index without negotiating structure.
struct MerkleTree {
  static constexpr usize kFanout = 4;
  static constexpr usize kLeaves = 64;
  static constexpr usize kNodes = 1 + 4 + 16 + 64;  // complete 4-ary, depth 3
  static constexpr usize kFirstLeaf = kNodes - kLeaves;

  std::array<u32, kNodes> hash{};
  std::array<std::vector<BlockKeyInfo>, kLeaves> buckets;

  static bool is_leaf(usize idx) { return idx >= kFirstLeaf; }
  static usize bucket_of(std::string_view key);
  u32 root() const { return hash[0]; }

  // Builds the tree from an inventory (BlockStoreNode::list(): key-sorted,
  // tombstones included — deletion state is part of what must converge).
  static MerkleTree build(const std::vector<BlockKeyInfo>& inventory);
};

// One repair pass driver's knobs. All waiting is in pump polls (the
// simulation's clock), all randomness from the scheduler's seeded Rng —
// repair schedules replay bit-identically.
struct AntiEntropyConfig {
  u64 interval_polls = 256;  // base ticks between passes against one peer
  u64 jitter_polls = 64;     // additive per-deadline jitter (de-synchronizes peers)
  u64 tokens_per_pass = 48;  // RPC budget per pass (1 token per request)
  usize rpc_attempts = 2;    // sends per repair RPC
  usize rpc_polls = 64;      // pump polls awaiting each reply
  u64 rng_seed = 0xA17E'0001ull;
};

// Wire/bandwidth accounting for one scheduler (the ablation's measurand).
struct RepairStats {
  u64 passes = 0;            // exchanges started (Merkle or full-inventory)
  u64 clean_passes = 0;      // root hashes matched: nothing shipped
  u64 rpcs = 0;              // repair requests put on the wire
  u64 bytes_sent = 0;        // request bytes (all attempts)
  u64 bytes_received = 0;    // reply bytes
  u64 pulled = 0;            // blocks pulled from a peer and applied locally
  u64 pushed = 0;            // blocks pushed to a peer (acked)
  u64 yields = 0;            // passes aborted on kOverloaded (foreground wins)
  u64 budget_exhausted = 0;  // passes parked by the token budget
};

// Periodic repair driver for one node. tick() is the external clock (call
// once per harness poll); when a peer's jittered deadline expires the
// scheduler runs one Merkle exchange against it. sync_with()/sync_full()
// are also callable directly (quiesce paths, benches).
class AntiEntropyScheduler {
 public:
  AntiEntropyScheduler(Sys& sys, BlockStoreNode& node, std::function<void()> pump,
                       AntiEntropyConfig cfg = {});

  // Advances the repair clock one poll; runs at most the passes whose
  // deadlines expired. A peer first seen at tick T gets a deadline jittered
  // within one full interval so cluster members never phase-lock.
  void tick();

  // One Merkle exchange with `peer`: compare roots, descend into divergent
  // subtrees, pull peer-newer blocks (apply-if-newer), push local-newer
  // blocks (acked). kBusy = token budget exhausted mid-pass (progress was
  // made; the next pass continues), kOverloaded = peer is shedding (yield).
  Result<Unit> sync_with(const BsPeer& peer);

  // Full-inventory exchange (the pre-Merkle PR 7 strategy) through the SAME
  // rpc layer and byte accounting — the ablation baseline differs only in
  // what goes over the wire, never in how it is measured.
  Result<Unit> sync_full(const BsPeer& peer);

  const RepairStats& stats() const { return stats_; }
  void reset_stats() { stats_ = RepairStats{}; }

 private:
  struct NodeReply {
    u32 hash = 0;
    u32 child_count = 0;
    std::array<u32, MerkleTree::kFanout> children{};
  };
  struct RpcReply {
    std::vector<u8> payload;
    u64 seq = 0;
  };

  // Sends a fully-serialized request until its req_id is answered; charges
  // one budget token. The reply's error code is surfaced as-is (kOk =>
  // payload valid); kBusy = budget exhausted before sending.
  Result<RpcReply> do_rpc(const BsPeer& peer, const std::vector<u8>& request);
  std::vector<u8> make_request(BsOp op, std::string_view key, u64 req_id) const;

  Result<NodeReply> fetch_node(const BsPeer& peer, u32 idx);
  Result<std::vector<BlockKeyInfo>> fetch_leaf(const BsPeer& peer, u32 bucket);
  // Reconciles one divergent (key, seq, tombstone) pair: pulls when the peer
  // is newer, pushes when we are. `peer_seq` 0 = peer lacks the key.
  Result<Unit> reconcile(const BsPeer& peer, const BlockKeyInfo* local,
                         const BlockKeyInfo* remote);
  Result<Unit> pull_block(const BsPeer& peer, std::string_view key);
  Result<Unit> push_block(const BsPeer& peer, const BlockKeyInfo& info);

  Sys& sys_;
  BlockStoreNode& node_;
  std::function<void()> pump_;
  AntiEntropyConfig cfg_;
  Rng rng_;
  Fd sock_ = kInvalidFd;
  u64 next_req_id_ = 1;
  u64 now_ = 0;
  u64 budget_ = 0;  // tokens left in the current pass
  std::map<BsNodeId, u64> next_due_;
  RepairStats stats_;
};

}  // namespace vnros

#endif  // VNROS_SRC_APP_ANTI_ENTROPY_H_
