// The chaos harness (robustness counterpart of the app VCs): a multi-node
// block-store cluster driven by a seed-replayable adversarial schedule.
//
// Every source of nondeterminism — client op mix, crash points, partition
// cuts, fault-site arming, torn-write lengths, crash-survival of cached
// sectors — derives from ChaosConfig::seed, so any failing run replays
// exactly from the seed printed in the failure message.
//
// The schedule interleaves client operations with:
//   - node crashes (BlockDevice::crash with partial persistence and torn
//     sectors) followed by reboot + journal recovery at the same fabric
//     address (KernelConfig::link_addr); unrecoverable disks are re-imaged
//     (KernelConfig::format_on_recovery_failure) and repopulated by
//     anti-entropy from the surviving replicas;
//   - network partitions (Network::partition/heal) that the client's
//     failover policy must route around;
//   - fault-site arming: per-node disk read/write errors and torn writes,
//     global syscall kIoError/kNoMemory injection, frame-allocator OOM.
//
// After every `check_every` steps (and at the end) the runner quiesces —
// disarms every fault, heals every cut, drains the fabric — and checks the
// durability invariant:
//   1. no garbage: every block any node stores, and every value any get
//      returned, is byte-identical to some value the client actually wrote
//      to that key;
//   2. acked durability: for every key whose last client op was a
//      *successful* put, the acked bytes are present on at least one node
//      (keys touched by failed/timed-out ops become "uncertain" — any
//      historical value or absence is acceptable, but never garbage);
//   3. detectability: reads never return bytes that fail the block CRC;
//   4. obs coherence: the nodes' obs counters stay mutually consistent across
//      crashes — replicas applied never exceed replicas pushed (the fabric
//      never duplicates), and read repairs never exceed corrupt reads.
//
// Heal mode (ChaosConfig::heal) layers the self-healing storage story on
// top: sequenced delete tombstones in the workload, silent disk bit-rot,
// partition flap storms and sustained slow peers in the schedule, Merkle
// anti-entropy + acknowledgement-gated tombstone GC at quiesce, and a
// per-key linearizability checker that validates every read against the
// "replicated sequenced register with quiesce points" spec — at quiesce the
// converged state must carry the maximum write sequence, deleted keys must
// stay deleted on every node (no resurrection), and all live members'
// Merkle roots must agree.
//
// The global span tracer runs armed for the whole schedule, timestamped by
// the client kernel's virtual clock, so the span trace replays
// bit-identically from the seed along with everything else.
#ifndef VNROS_SRC_APP_CHAOS_H_
#define VNROS_SRC_APP_CHAOS_H_

#include <string>

#include "src/base/types.h"

namespace vnros {

struct ChaosConfig {
  u64 seed = 1;
  usize nodes = 3;            // block-store replicas (>= 2 for repair paths)
  usize steps = 250;          // schedule steps (each is one client op + events)
  usize keys = 10;            // key universe (small: forces overwrite churn)
  usize max_value_bytes = 400;
  usize check_every = 50;     // quiesce + invariant check cadence

  // Per-step event probabilities, parts-per-million.
  u64 crash_ppm = 20'000;          // crash + reboot a random node
  u64 partition_ppm = 25'000;      // cut a random (node|client, node) pair
  u64 heal_ppm = 40'000;           // heal a random active cut
  u64 disk_fault_ppm = 30'000;     // arm a one-shot disk fault on a random node
  u64 torn_write_ppm = 10'000;     // arm a one-shot torn write on a random node
  u64 syscall_fault_ppm = 15'000;  // arm one-shot syscall kIoError injection
  u64 oom_ppm = 8'000;             // arm one-shot frame-allocator OOM + probe it

  // Crash severity: chance each unflushed sector survives, and chance a
  // surviving unflushed sector is torn to a prefix.
  u64 persist_ppm = 500'000;
  u64 torn_crash_ppm = 150'000;

  // --- Cluster mode (membership churn) -------------------------------------
  // Off by default; a legacy config draws exactly the legacy schedule from
  // its seed (every new event is gated on `cluster` before touching the
  // schedule Rng), so the fixed seed matrix replays unchanged.
  bool cluster = false;        // consistent-hash placement instead of static peers
  usize replication = 2;       // ring owners per key
  usize vnodes = 32;           // virtual nodes per member
  usize max_nodes = 6;         // join cap (slots are never reused)
  u64 join_ppm = 0;            // per-step: boot a new member + rebalance all
  u64 leave_ppm = 0;           // per-step: graceful leave (aborts if it would
                               // strand a shard: rebalance reports failed > 0)
  u64 delay_ppm = 0;           // per-step: arm a one-shot serve_delay stall
  u64 delay_polls_max = 80;    // stall length drawn from [8, delay_polls_max]
  u64 admission_rate_ppm = 0;  // tokens/step granted to every node (0 = gate off)
  u64 admission_burst = 4;     // admission bucket capacity, in ops

  // --- Heal mode (self-healing storage: tombstones + Merkle anti-entropy) --
  // Off by default; every heal event is gated on `heal` *before* touching the
  // schedule Rng, so legacy and churn seed matrices replay unchanged.
  bool heal = false;           // heal events + lin checker + Merkle repair at quiesce
  bool del_heavy = false;      // client mix 5/3/2 put/get/del instead of 6/3/1
  u64 bit_rot_ppm = 0;         // per-step: arm one-shot silent disk corruption
  u64 bit_rot_bytes_max = 8;   // flipped bytes per fire, drawn from [1, max]
  u64 flap_ppm = 0;            // per-step: start a partition flap storm (a pair
                               // toggles cut/healed every step for its length)
  u64 flap_toggles_max = 8;    // storm length drawn from [2, flap_toggles_max]
  u64 slow_peer_ppm = 0;       // per-step: start a sustained slow-peer spell
                               // (serve_delay re-arms on EVERY serve: latency
                               // asymmetry, not a one-shot hiccup)
  u64 slow_peer_polls = 12;    // stall per serve during the spell
  u64 slow_spell_steps_max = 40;  // spell length drawn from [8, max]
  usize gc_every = 2;          // run tombstone GC at every Nth quiesce (0 = never)

  // --- Ring faults (async submission/completion syscall rings) --------------
  // Off by default; both draws are gated on a nonzero ppm *before* touching
  // the schedule Rng, so every existing seed matrix replays unchanged. All
  // serve/repair/client traffic rides SysRings, so these sites sit on the
  // cluster's whole syscall data plane.
  u64 ring_submit_fault_ppm = 0;    // per-step: arm one-shot syscall/ring_submit
                                    // (an accepted SQE completes immediately
                                    // with the injected error, exactly once)
  u64 ring_complete_fault_ppm = 0;  // per-step: arm one-shot syscall/ring_complete
                                    // (one pending op is deferred a reactor
                                    // pass — completion jitter, not an error)
};

struct ChaosReport {
  bool ok = false;
  std::string message;  // on failure: what broke, at which step, which seed
  u64 seed = 0;

  // Schedule accounting (what the run actually exercised).
  u64 ops = 0;
  u64 ops_ok = 0;
  u64 ops_failed = 0;   // client-visible failures (timeouts, injected errors)
  u64 crashes = 0;
  u64 reimages = 0;     // recoveries that failed and fell back to re-format
  u64 partitions = 0;
  u64 heals = 0;
  u64 faults_armed = 0;
  u64 fault_fires = 0;  // FaultRegistry fires attributable to this run
  u64 read_repairs = 0;
  // Cumulative across node reboots (obs counters are per-instance, so the
  // runner accumulates each incarnation's totals at crash/finalize time).
  u64 replicas_pushed = 0;
  u64 replicas_applied = 0;
  u64 corrupt_reads = 0;
  u64 spans_recorded = 0;  // span tracer events committed during the run
  u64 client_failovers = 0;
  u64 client_retries = 0;
  u64 checks = 0;       // invariant checkpoints passed

  // Cluster-mode accounting.
  u64 joins = 0;
  u64 leaves = 0;
  u64 aborted_leaves = 0;  // graceful leaves that would have stranded a shard
  u64 rebalanced = 0;      // shards moved by join/leave rebalancing
  u64 hints_written = 0;
  u64 hints_delivered = 0;
  u64 sheds = 0;           // requests refused by admission control
  u64 stale_ignored = 0;   // replica writes refused as older than the local copy
  u64 delays_armed = 0;    // serve_delay stalls injected

  // Heal-mode accounting.
  u64 tombstones_written = 0;  // sequenced deletes persisted (all incarnations)
  u64 tombstones_gced = 0;     // tombstones reclaimed after shard-wide acks
  u64 hints_dropped = 0;       // hints evicted by the per-peer cap
  u64 bit_rot_reads = 0;       // reads that silently returned flipped bytes
  u64 flaps = 0;               // partition flap storms started
  u64 slow_spells = 0;         // sustained slow-peer spells started
  u64 ae_passes = 0;           // Merkle exchanges run (background + quiesce)
  u64 ae_clean_passes = 0;     // exchanges where the roots already matched
  u64 ae_pulled = 0;           // blocks repaired by pulling from a peer
  u64 ae_pushed = 0;           // blocks repaired by pushing to a peer
  u64 ae_bytes = 0;            // repair wire bytes (requests + replies)
  u64 lin_reads_checked = 0;   // reads validated against the sequenced-register spec
  u64 acked_floor_drops = 0;   // keys downgraded after re-image data loss
};

// Runs one seeded chaos schedule to completion (or first invariant
// violation). Uses the process-global FaultRegistry; do not run two
// ChaosRunners concurrently in one process.
ChaosReport run_chaos(const ChaosConfig& config);

}  // namespace vnros

#endif  // VNROS_SRC_APP_CHAOS_H_
