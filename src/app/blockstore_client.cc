#include "src/app/blockstore.h"

#include <algorithm>
#include <map>

#include "src/base/log.h"
#include "src/base/serde.h"

namespace vnros {

namespace {

// Each stream connect needs a distinct source port on its host's stack; a
// process-wide counter keeps concurrent clients from colliding (distinct
// hosts skipping ports is harmless — the namespace is per-stack).
u16 next_vtp_sport() {
  static u16 next = 40000;
  if (next < 40000 || next >= 60000) {
    next = 40000;
  }
  return next++;
}

// One parked stream recv pulls up to this much per completion.
constexpr usize kChanRecvChunk = 32 * 1024;

}  // namespace

BlockStoreClient::BlockStoreClient(Sys& sys, NetAddr server, Port server_port,
                                   std::function<void()> pump, RetryPolicy policy,
                                   BsTransport transport)
    : sys_(sys),
      pump_(std::move(pump)),
      policy_(policy),
      obs_prefix_(ObsRegistry::global().instance_prefix("bsc")),
      c_attempts_(ObsRegistry::global().counter(obs_prefix_ + "attempts")),
      c_retries_(ObsRegistry::global().counter(obs_prefix_ + "retries")),
      c_backoff_polls_(ObsRegistry::global().counter(obs_prefix_ + "backoff_polls")),
      c_failovers_(ObsRegistry::global().counter(obs_prefix_ + "failovers")),
      c_transient_errors_(ObsRegistry::global().counter(obs_prefix_ + "transient_errors")),
      c_send_errors_(ObsRegistry::global().counter(obs_prefix_ + "send_errors")),
      c_overloads_(ObsRegistry::global().counter(obs_prefix_ + "overloads")),
      c_sticky_resumes_(ObsRegistry::global().counter(obs_prefix_ + "sticky_resumes")),
      h_rpc_polls_(ObsRegistry::global().histogram(obs_prefix_ + "rpc_polls")),
      span_rpc_(ObsRegistry::global().tracer().intern_site("bs/rpc")),
      transport_(transport) {
  targets_.push_back(BsPeer{server, server_port});
}

BlockStoreClient::VtpChan* BlockStoreClient::vtp_chan(const BsPeer& peer) {
  auto key = std::make_pair(peer.addr, peer.port);
  auto it = chans_.find(key);
  if (it != chans_.end()) {
    return &it->second;
  }
  // Lazy connect: the SYN goes out asynchronously and send() buffers during
  // the handshake, so the first request rides out as soon as the stream
  // establishes — no blocking wait here.
  auto fd = sys_.vtp_connect(peer.addr, peer.port, next_vtp_sport());
  if (!fd.ok()) {
    return nullptr;
  }
  VtpChan& ch = chans_[key];
  ch.fd = fd.value();
  return &ch;
}

void BlockStoreClient::drop_vtp_chan(const BsPeer& peer) {
  auto it = chans_.find(std::make_pair(peer.addr, peer.port));
  if (it == chans_.end()) {
    return;
  }
  // A recv still parked on this fd completes with a typed error on a later
  // reap; by then the chan is gone from the table, so the CQE is discarded.
  (void)sys_.vtp_close(it->second.fd);
  chans_.erase(it);
}

Result<Unit> BlockStoreClient::init() {
  auto sock = sys_.udp_socket();
  if (!sock.ok()) {
    return sock.error();
  }
  sock_ = sock.value();
  // First send auto-binds an ephemeral port; recvfrom needs a bound socket,
  // so bind eagerly by sending a ping during the first rpc instead.
  return Unit{};
}

void BlockStoreClient::add_failover(NetAddr addr, Port port) {
  targets_.push_back(BsPeer{addr, port});
}

bool BlockStoreClient::transient(ErrorCode err) {
  // Errors a later attempt (possibly against another replica) can cure:
  // injected device/memory faults and momentary contention. Semantic
  // outcomes (kNotFound, kCorrupted, kInvalidArgument, ...) pass through.
  return err == ErrorCode::kIoError || err == ErrorCode::kNoMemory ||
         err == ErrorCode::kBusy || err == ErrorCode::kWouldBlock;
}

Result<std::vector<u8>> BlockStoreClient::rpc(BsOp op, std::string_view key,
                                              std::span<const u8> value, u64* seq_out) {
  if (sock_ == kInvalidFd) {
    auto r = init();  // lazy socket creation: init() is optional for callers
    if (!r.ok()) {
      return r.error();
    }
  }
  SpanScope span(ObsRegistry::global().tracer(), span_rpc_);
  u64 req_id = next_req_id_++;
  Writer w;
  w.put_u8(static_cast<u8>(op));
  w.put_u64(req_id);
  w.put_string(key);
  if (op == BsOp::kPut || op == BsOp::kPutReplica) {
    // Write-sequence stamp: servers order replica applies by it (retries of
    // this rpc reuse the same stamp, so at-least-once delivery stays
    // idempotent; a newer put always carries a higher stamp).
    w.put_u64(++put_seq_);
    w.put_bytes(value);
  } else if (op == BsOp::kDel) {
    // Deletes are sequenced writes (tombstones) and share the same stamp
    // counter as puts: a put-then-del (or del-then-put) from this client is
    // totally ordered on every replica it ever reaches.
    w.put_u64(++put_seq_);
  }

  // Routing. Ring mode (set_cluster + a keyed op): the route is the key's
  // owner list, primary first — placement is the same pure function the
  // servers use, so a fresh view sends every op straight to its owner.
  // Static mode: the constructor/add_failover targets, resuming on the last
  // target that actually answered (stickiness) rather than wherever a failed
  // rpc's rotation happened to stop — re-probing a known-dead primary every
  // call would pay the full timeout on every op.
  std::vector<BsPeer> ring_route;
  bool keyed = op == BsOp::kPut || op == BsOp::kGet || op == BsOp::kDel;
  if (view_.has_value() && keyed) {
    for (BsNodeId id : view_->owners(key)) {
      auto it = view_->directory.find(id);
      if (it != view_->directory.end()) {
        ring_route.push_back(it->second);
      }
    }
  }
  const bool ring_mode = !ring_route.empty();
  const std::vector<BsPeer>& route = ring_mode ? ring_route : targets_;
  usize idx = 0;
  if (!ring_mode) {
    if (have_last_good_ && last_good_target_ < targets_.size() &&
        current_target_ != last_good_target_) {
      current_target_ = last_good_target_;
      c_sticky_resumes_.inc();
    }
    idx = current_target_;
  }
  auto rotate = [&] {
    if (route.size() < 2) {
      return;
    }
    idx = (idx + 1) % route.size();
    if (!ring_mode) {
      current_target_ = idx;
    }
    c_failovers_.inc();
  };
  auto mark_live = [&] {
    // Any reply with our req_id proves this target is up and reachable.
    if (!ring_mode) {
      have_last_good_ = true;
      last_good_target_ = idx;
    }
  };

  u64 polls_used = 0;
  u64 backoff = policy_.backoff_base_polls;
  u64 overload_backoff = policy_.overload_base_polls;
  auto pump_once = [&] {
    if (pump_) {
      pump_();
    }
    ++polls_used;
  };
  // Reply await rides the client's ring: one recv SQE stays parked on sock_
  // (armed only after the first send auto-binds it) and each poll reaps
  // completions instead of spinning on recvfrom.
  auto arm_recv = [&]() -> bool {
    if (recv_armed_) {
      return true;
    }
    if (ring_ == 0) {
      auto r = sys_.ring_setup(/*sq_slots=*/4, /*cq_slots=*/8);
      if (!r.ok()) {
        return false;
      }
      ring_ = r.value();
    }
    RingSqe sqe{req_id, static_cast<u32>(SysNr::kUdpRecvFrom), ring_args::udp_recvfrom(sock_)};
    auto acc = sys_.ring_submit(ring_, std::span<const RingSqe>(&sqe, 1));
    if (!acc.ok()) {
      if (acc.error() == ErrorCode::kNotFound) {
        ring_ = 0;  // ring torn down (process state rebuilt): recreate
      }
      return false;
    }
    if (acc.value() != 1) {
      return false;
    }
    recv_armed_ = true;
    return true;
  };
  // The reply datagram's payload, if a completion was ready this poll. At
  // most one recv is ever parked, so at most one reply per reap.
  auto reap_reply = [&]() -> std::optional<std::vector<u8>> {
    auto cqes = sys_.ring_wait(ring_, 0, 4);
    if (!cqes.ok()) {
      return std::nullopt;
    }
    for (RingCqe& cqe : cqes.value()) {
      recv_armed_ = false;  // the CQE consumed the parked recv
      if (static_cast<ErrorCode>(cqe.err) != ErrorCode::kOk) {
        continue;
      }
      Reader dg(cqe.payload);
      auto src = dg.get_u32();
      auto sport = dg.get_u16();
      auto payload = dg.get_bytes();
      if (!src || !sport || !payload) {
        continue;
      }
      return std::move(*payload);
    }
    return std::nullopt;
  };
  // --- Stream transport (kVtp). One connection per target, [u32 len][body]
  // frames both ways; the reply await still rides the ring (one vtp_recv SQE
  // parked on the active target's stream). The transport retransmits lost
  // segments itself, so loss is paid at the stream's RTO instead of this
  // loop's full attempt timeout.
  auto chan_key = [](const BsPeer& p) { return std::make_pair(p.addr, p.port); };
  auto pop_frame = [](VtpChan& ch) -> std::optional<std::vector<u8>> {
    if (ch.inbuf.size() < 4) {
      return std::nullopt;
    }
    Reader fr(std::span<const u8>(ch.inbuf.data(), 4));
    u32 len = fr.get_u32().value_or(0);
    if (ch.inbuf.size() - 4 < len) {
      return std::nullopt;  // header seen, body still in flight
    }
    std::vector<u8> body(ch.inbuf.begin() + 4,
                         ch.inbuf.begin() + 4 + static_cast<std::ptrdiff_t>(len));
    ch.inbuf.erase(ch.inbuf.begin(),
                   ch.inbuf.begin() + 4 + static_cast<std::ptrdiff_t>(len));
    return body;
  };
  auto vtp_send_request = [&](const BsPeer& target) -> ErrorCode {
    VtpChan* ch = vtp_chan(target);
    if (ch == nullptr) {
      return ErrorCode::kBusy;  // connect refused locally (fd/port pressure)
    }
    Writer framed;
    framed.put_u32(static_cast<u32>(w.bytes().size()));
    framed.put_raw(w.bytes());
    std::span<const u8> rest = framed.bytes();
    // send() buffers even mid-handshake, so this normally accepts in one
    // call; kWouldBlock only means the send buffer is momentarily full.
    for (usize spin = 0; !rest.empty() && spin < policy_.polls_per_attempt; ++spin) {
      auto n = sys_.vtp_send(ch->fd, rest);
      if (!n.ok()) {
        if (n.error() == ErrorCode::kWouldBlock) {
          pump_once();
          continue;
        }
        drop_vtp_chan(target);  // terminal: reconnect on the next attempt
        return n.error();
      }
      rest = rest.subspan(static_cast<usize>(n.value()));
    }
    return rest.empty() ? ErrorCode::kOk : ErrorCode::kWouldBlock;
  };
  auto vtp_poll_reply = [&](const BsPeer& target) -> std::optional<std::vector<u8>> {
    // Reap ring completions into whichever chan the recv was parked on.
    if (ring_ != 0) {
      auto cqes = sys_.ring_wait(ring_, 0, 4);
      if (cqes.ok()) {
        for (RingCqe& cqe : cqes.value()) {
          recv_armed_ = false;
          auto armed = chans_.find(armed_chan_);
          if (armed == chans_.end()) {
            continue;  // chan dropped while the recv was parked
          }
          if (static_cast<ErrorCode>(cqe.err) != ErrorCode::kOk) {
            (void)sys_.vtp_close(armed->second.fd);
            chans_.erase(armed);  // stream died under the parked recv
            continue;
          }
          Reader sr(cqe.payload);
          if (auto bytes = sr.get_bytes()) {
            armed->second.inbuf.insert(armed->second.inbuf.end(), bytes->begin(),
                                       bytes->end());
          }
        }
      } else if (cqes.error() == ErrorCode::kNotFound) {
        ring_ = 0;  // ring torn down (process state rebuilt): recreate
        recv_armed_ = false;
      }
    }
    auto it = chans_.find(chan_key(target));
    if (it == chans_.end()) {
      return std::nullopt;
    }
    // Park a recv on the active stream. If the single ring slot is still
    // occupied by another target's stream (failover mid-park — there is no
    // cancel), read this one directly until that completion drains.
    bool parked_here = recv_armed_ && armed_chan_ == chan_key(target);
    if (!recv_armed_) {
      if (ring_ == 0) {
        auto r = sys_.ring_setup(/*sq_slots=*/4, /*cq_slots=*/8);
        if (r.ok()) {
          ring_ = r.value();
        }
      }
      if (ring_ != 0) {
        RingSqe sqe{req_id, static_cast<u32>(SysNr::kVtpRecv),
                    ring_args::vtp_recv(it->second.fd, kChanRecvChunk)};
        auto acc = sys_.ring_submit(ring_, std::span<const RingSqe>(&sqe, 1));
        if (acc.ok() && acc.value() == 1) {
          recv_armed_ = true;
          armed_chan_ = chan_key(target);
          parked_here = true;
        }
      }
    }
    if (!parked_here) {
      auto got = sys_.vtp_recv(it->second.fd, kChanRecvChunk);
      if (got.ok()) {
        it->second.inbuf.insert(it->second.inbuf.end(), got.value().begin(),
                                got.value().end());
      } else if (got.error() != ErrorCode::kWouldBlock) {
        (void)sys_.vtp_close(it->second.fd);
        chans_.erase(it);
        return std::nullopt;
      }
    }
    return pop_frame(it->second);
  };
  auto deadline_hit = [&] {
    return policy_.deadline_polls != 0 && polls_used >= policy_.deadline_polls;
  };
  // Idles `wait` jittered polls; false if the rpc deadline expired mid-wait.
  auto idle = [&](u64 wait) {
    if (wait > 0 && policy_.jitter_ppm > 0) {
      u64 jspan = wait * policy_.jitter_ppm / 1'000'000;
      if (jspan > 0) {
        wait += rng_.next_range(0, jspan);
      }
    }
    if (policy_.deadline_polls != 0 && wait > 0) {
      // Clamp the backoff to the deadline budget, reserving one attempt's
      // polling window: an rpc never sleeps its whole remaining budget away
      // and then fails without having probed the server one last time.
      // (After the jitter draw, so the rng stream is schedule-independent.)
      u64 remaining =
          policy_.deadline_polls > polls_used ? policy_.deadline_polls - polls_used : 0;
      u64 window = std::min<u64>(policy_.polls_per_attempt, remaining);
      wait = std::min(wait, remaining - window);
    }
    for (u64 i = 0; i < wait; ++i) {
      if (deadline_hit()) {
        return false;
      }
      pump_once();
      c_backoff_polls_.inc();
    }
    return !deadline_hit();
  };
  ErrorCode last_err = ErrorCode::kTimedOut;
  bool overload_wait = false;  // next attempt is backpressure, not a retry probe
  for (usize attempt = 0; attempt < policy_.max_attempts; ++attempt) {
    if (attempt > 0) {
      c_retries_.inc();
      // Exponential backoff with additive jitter, in pump polls. Jitter
      // decorrelates retries from concurrent clients without breaking
      // determinism (the jitter Rng is seeded). kOverloaded replies use
      // their own (multiplicative) ladder: the server is alive and asking
      // for space, which is different from a timeout probing for liveness.
      u64 wait = overload_wait ? overload_backoff : backoff;
      if (overload_wait) {
        overload_backoff *= 2;
        if (policy_.overload_max_polls != 0) {
          overload_backoff = std::min(overload_backoff, policy_.overload_max_polls);
        }
      } else {
        backoff *= 2;
        if (policy_.backoff_max_polls != 0) {
          backoff = std::min(backoff, policy_.backoff_max_polls);
        }
      }
      if (!idle(wait)) {
        break;  // deadline expired mid-backoff
      }
    }
    if (deadline_hit()) {
      break;
    }
    c_attempts_.inc();
    overload_wait = false;
    const BsPeer& target = route[idx];
    ErrorCode send_err = ErrorCode::kOk;
    if (transport_ == BsTransport::kVtp) {
      send_err = vtp_send_request(target);
    } else {
      auto sent = sys_.udp_sendto(sock_, target.addr, target.port, w.bytes());
      send_err = sent.ok() ? ErrorCode::kOk : sent.error();
    }
    if (send_err != ErrorCode::kOk) {
      // Local send failure (e.g. injected syscall fault): count it, back
      // off, and retry — the op has definitely not reached any server.
      c_send_errors_.inc();
      last_err = send_err;
      rotate();
      continue;
    }
    bool transient_reply = false;
    for (usize poll = 0; poll < policy_.polls_per_attempt; ++poll) {
      std::optional<std::vector<u8>> reply;
      if (transport_ == BsTransport::kVtp) {
        pump_once();
        reply = vtp_poll_reply(target);
      } else {
        bool armed = arm_recv();
        pump_once();
        if (armed) {
          reply = reap_reply();
        } else {
          // Ring unavailable (exhausted kernel table): degrade to the direct
          // recvfrom so the rpc still makes progress.
          auto dg = sys_.udp_recvfrom(sock_);
          if (dg.ok()) {
            reply = std::move(dg.value().payload);
          }
        }
      }
      if (!reply) {
        if (deadline_hit()) {
          break;
        }
        continue;
      }
      Reader r(*reply);
      auto rid = r.get_u64();
      auto err = r.get_u32();
      auto payload = r.get_bytes();
      if (!rid || !err || !payload) {
        continue;  // malformed reply: ignore, retry
      }
      if (*rid != req_id) {
        continue;  // stale reply from an earlier (retried) request
      }
      ErrorCode code = static_cast<ErrorCode>(*err);
      mark_live();
      if (code == ErrorCode::kOk) {
        h_rpc_polls_.record(polls_used);
        if (seq_out != nullptr) {
          *seq_out = r.get_u64().value_or(0);
        }
        return std::move(*payload);
      }
      if (code == ErrorCode::kOverloaded) {
        // Backpressure, not failure: the target is alive and shedding.
        // Stay on it and yield (multiplicative backoff) instead of
        // stampeding a healthy-but-busy replica's peers.
        c_overloads_.inc();
        last_err = code;
        transient_reply = true;
        overload_wait = true;
        break;
      }
      if (transient(code)) {
        c_transient_errors_.inc();
        last_err = code;
        transient_reply = true;
        VNROS_LOG_DEBUG("blockstore", "transient %s from target %zu (attempt %zu), retrying",
                        error_name(code), idx, attempt);
        break;  // next attempt, possibly after failover
      }
      h_rpc_polls_.record(polls_used);
      return code;
    }
    // Timed out or bounced with a transient error: rotate targets so a
    // crashed/partitioned/faulting replica does not absorb every attempt.
    // kOverloaded stays put — that target will have tokens again soon.
    if (!overload_wait) {
      rotate();
    }
    if (!transient_reply) {
      last_err = ErrorCode::kTimedOut;
    }
  }
  h_rpc_polls_.record(polls_used);
  VNROS_LOG_DEBUG("blockstore",
                  "rpc gave up: %s (attempts=%llu retries=%llu backoff=%llu failovers=%llu)",
                  error_name(last_err), static_cast<unsigned long long>(c_attempts_.value()),
                  static_cast<unsigned long long>(c_retries_.value()),
                  static_cast<unsigned long long>(c_backoff_polls_.value()),
                  static_cast<unsigned long long>(c_failovers_.value()));
  return last_err == ErrorCode::kOk ? ErrorCode::kTimedOut : last_err;
}

Result<Unit> BlockStoreClient::put(std::string_view key, std::span<const u8> value) {
  auto r = rpc(BsOp::kPut, key, value);
  if (!r.ok()) {
    return r.error();
  }
  return Unit{};
}

Result<std::vector<u8>> BlockStoreClient::get(std::string_view key) {
  return rpc(BsOp::kGet, key, {});
}

Result<std::pair<std::vector<u8>, u64>> BlockStoreClient::get_with_seq(std::string_view key) {
  u64 seq = 0;
  auto r = rpc(BsOp::kGet, key, {}, &seq);
  if (!r.ok()) {
    return r.error();
  }
  return std::make_pair(std::move(r.value()), seq);
}

Result<Unit> BlockStoreClient::del(std::string_view key) {
  auto r = rpc(BsOp::kDel, key, {});
  if (!r.ok()) {
    return r.error();
  }
  return Unit{};
}

Result<std::vector<BlockKeyInfo>> BlockStoreClient::list() {
  auto raw = rpc(BsOp::kList, "", {});
  if (!raw.ok()) {
    return raw.error();
  }
  Reader r(raw.value());
  auto count = r.get_u32();
  if (!count) {
    return ErrorCode::kCorrupted;
  }
  std::vector<BlockKeyInfo> out;
  out.reserve(*count);
  for (u32 i = 0; i < *count; ++i) {
    auto key = r.get_string();
    auto crc = r.get_u32();
    auto seq = r.get_u64();
    auto flags = r.get_u8();
    if (!key || !crc || !seq || !flags) {
      return ErrorCode::kCorrupted;
    }
    out.push_back(BlockKeyInfo{std::move(*key), *crc, *seq, (*flags & 1) != 0});
  }
  return out;
}

Result<u64> BlockStoreClient::sync_into(BlockStoreNode& target) {
  auto remote = list();
  if (!remote.ok()) {
    return remote.error();
  }
  // What the target already holds, by write sequence (tombstones included —
  // a deletion the target missed must land as a deletion, not linger as the
  // old value). The crc breaks same-sequence ties: two copies at the same
  // sequence with different bytes (independently stamped direct writes) are
  // divergence the full sweep repairs in the source's favor.
  std::map<std::string, std::pair<u64, u32>> local;
  for (const auto& e : target.list()) {
    local[e.key] = {e.seq, e.crc};
  }
  u64 repaired = 0;
  for (const auto& e : remote.value()) {
    auto it = local.find(e.key);
    if (it != local.end() && (it->second.first > e.seq ||
                              (it->second.first == e.seq && it->second.second == e.crc))) {
      continue;  // the target's copy is newer, or identical at the same seq
    }
    bool applied = false;
    if (e.tombstone) {
      auto r = target.apply_remote(e.key, {}, e.seq, /*tombstone=*/true, &applied);
      if (!r.ok()) {
        return r.error();
      }
    } else {
      u64 seq = 0;
      auto value = rpc(BsOp::kGet, e.key, {}, &seq);
      if (!value.ok()) {
        if (value.error() == ErrorCode::kNotFound) {
          continue;  // deleted between the listing and the fetch
        }
        return value.error();
      }
      // Write at the source's sequence, not a fresh local stamp: repair must
      // restore the block's true position in the write order, never reorder
      // a stale copy above a newer one.
      auto r = target.apply_remote(e.key, value.value(), seq != 0 ? seq : e.seq,
                                   /*tombstone=*/false, &applied);
      if (!r.ok()) {
        return r.error();
      }
    }
    if (applied) {
      ++repaired;
    }
  }
  return repaired;
}

Result<Unit> BlockStoreClient::ping() {
  auto r = rpc(BsOp::kPing, "", {});
  if (!r.ok()) {
    return r.error();
  }
  return Unit{};
}

}  // namespace vnros
