#include "src/app/blockstore.h"

#include <map>

#include "src/base/serde.h"

namespace vnros {

BlockStoreClient::BlockStoreClient(Sys& sys, NetAddr server, Port server_port,
                                   std::function<void()> pump)
    : sys_(sys), server_(server), server_port_(server_port), pump_(std::move(pump)) {}

Result<Unit> BlockStoreClient::init() {
  auto sock = sys_.udp_socket();
  if (!sock.ok()) {
    return sock.error();
  }
  sock_ = sock.value();
  // First send auto-binds an ephemeral port; recvfrom needs a bound socket,
  // so bind eagerly by sending a ping during the first rpc instead.
  return Unit{};
}

Result<std::vector<u8>> BlockStoreClient::rpc(BsOp op, std::string_view key,
                                              std::span<const u8> value) {
  if (sock_ == kInvalidFd) {
    auto r = init();  // lazy socket creation: init() is optional for callers
    if (!r.ok()) {
      return r.error();
    }
  }
  u64 req_id = next_req_id_++;
  Writer w;
  w.put_u8(static_cast<u8>(op));
  w.put_u64(req_id);
  w.put_string(key);
  if (op == BsOp::kPut || op == BsOp::kPutReplica) {
    w.put_bytes(value);
  }

  for (usize attempt = 0; attempt < kMaxAttempts; ++attempt) {
    if (attempt > 0) {
      ++retries_;
    }
    auto sent = sys_.udp_sendto(sock_, server_, server_port_, w.bytes());
    if (!sent.ok()) {
      return sent.error();
    }
    for (usize poll = 0; poll < kPollsPerAttempt; ++poll) {
      if (pump_) {
        pump_();
      }
      auto reply = sys_.udp_recvfrom(sock_);
      if (!reply.ok()) {
        continue;
      }
      Reader r(reply.value().payload);
      auto rid = r.get_u64();
      auto err = r.get_u32();
      auto payload = r.get_bytes();
      if (!rid || !err || !payload) {
        continue;  // malformed reply: ignore, retry
      }
      if (*rid != req_id) {
        continue;  // stale reply from an earlier (retried) request
      }
      if (static_cast<ErrorCode>(*err) != ErrorCode::kOk) {
        return static_cast<ErrorCode>(*err);
      }
      return std::move(*payload);
    }
  }
  return ErrorCode::kTimedOut;
}

Result<Unit> BlockStoreClient::put(std::string_view key, std::span<const u8> value) {
  auto r = rpc(BsOp::kPut, key, value);
  if (!r.ok()) {
    return r.error();
  }
  return Unit{};
}

Result<std::vector<u8>> BlockStoreClient::get(std::string_view key) {
  return rpc(BsOp::kGet, key, {});
}

Result<Unit> BlockStoreClient::del(std::string_view key) {
  auto r = rpc(BsOp::kDel, key, {});
  if (!r.ok()) {
    return r.error();
  }
  return Unit{};
}

Result<std::vector<BlockKeyInfo>> BlockStoreClient::list() {
  auto raw = rpc(BsOp::kList, "", {});
  if (!raw.ok()) {
    return raw.error();
  }
  Reader r(raw.value());
  auto count = r.get_u32();
  if (!count) {
    return ErrorCode::kCorrupted;
  }
  std::vector<BlockKeyInfo> out;
  out.reserve(*count);
  for (u32 i = 0; i < *count; ++i) {
    auto key = r.get_string();
    auto crc = r.get_u32();
    if (!key || !crc) {
      return ErrorCode::kCorrupted;
    }
    out.push_back(BlockKeyInfo{std::move(*key), *crc});
  }
  return out;
}

Result<u64> BlockStoreClient::sync_into(BlockStoreNode& target) {
  auto remote = list();
  if (!remote.ok()) {
    return remote.error();
  }
  // What the target already holds, by checksum.
  std::map<std::string, u32> local;
  for (const auto& e : target.list()) {
    local[e.key] = e.crc;
  }
  u64 repaired = 0;
  for (const auto& e : remote.value()) {
    auto it = local.find(e.key);
    if (it != local.end() && it->second == e.crc) {
      continue;  // already in sync
    }
    auto value = get(e.key);
    if (!value.ok()) {
      return value.error();
    }
    auto put_result = target.put(e.key, value.value());
    if (!put_result.ok()) {
      return put_result.error();
    }
    ++repaired;
  }
  return repaired;
}

Result<Unit> BlockStoreClient::ping() {
  auto r = rpc(BsOp::kPing, "", {});
  if (!r.ok()) {
    return r.error();
  }
  return Unit{};
}

}  // namespace vnros
