#include "src/app/blockstore.h"

#include <algorithm>
#include <map>

#include "src/base/log.h"
#include "src/base/serde.h"

namespace vnros {

BlockStoreClient::BlockStoreClient(Sys& sys, NetAddr server, Port server_port,
                                   std::function<void()> pump, RetryPolicy policy)
    : sys_(sys),
      pump_(std::move(pump)),
      policy_(policy),
      obs_prefix_(ObsRegistry::global().instance_prefix("bsc")),
      c_attempts_(ObsRegistry::global().counter(obs_prefix_ + "attempts")),
      c_retries_(ObsRegistry::global().counter(obs_prefix_ + "retries")),
      c_backoff_polls_(ObsRegistry::global().counter(obs_prefix_ + "backoff_polls")),
      c_failovers_(ObsRegistry::global().counter(obs_prefix_ + "failovers")),
      c_transient_errors_(ObsRegistry::global().counter(obs_prefix_ + "transient_errors")),
      c_send_errors_(ObsRegistry::global().counter(obs_prefix_ + "send_errors")),
      h_rpc_polls_(ObsRegistry::global().histogram(obs_prefix_ + "rpc_polls")),
      span_rpc_(ObsRegistry::global().tracer().intern_site("bs/rpc")) {
  targets_.push_back(BsPeer{server, server_port});
}

Result<Unit> BlockStoreClient::init() {
  auto sock = sys_.udp_socket();
  if (!sock.ok()) {
    return sock.error();
  }
  sock_ = sock.value();
  // First send auto-binds an ephemeral port; recvfrom needs a bound socket,
  // so bind eagerly by sending a ping during the first rpc instead.
  return Unit{};
}

void BlockStoreClient::add_failover(NetAddr addr, Port port) {
  targets_.push_back(BsPeer{addr, port});
}

bool BlockStoreClient::transient(ErrorCode err) {
  // Errors a later attempt (possibly against another replica) can cure:
  // injected device/memory faults and momentary contention. Semantic
  // outcomes (kNotFound, kCorrupted, kInvalidArgument, ...) pass through.
  return err == ErrorCode::kIoError || err == ErrorCode::kNoMemory ||
         err == ErrorCode::kBusy || err == ErrorCode::kWouldBlock;
}

void BlockStoreClient::fail_over() {
  if (targets_.size() < 2) {
    return;
  }
  current_target_ = (current_target_ + 1) % targets_.size();
  c_failovers_.inc();
  VNROS_LOG_DEBUG("blockstore", "client failover -> target %zu (%llu so far)", current_target_,
                  static_cast<unsigned long long>(c_failovers_.value()));
}

Result<std::vector<u8>> BlockStoreClient::rpc(BsOp op, std::string_view key,
                                              std::span<const u8> value) {
  if (sock_ == kInvalidFd) {
    auto r = init();  // lazy socket creation: init() is optional for callers
    if (!r.ok()) {
      return r.error();
    }
  }
  SpanScope span(ObsRegistry::global().tracer(), span_rpc_);
  u64 req_id = next_req_id_++;
  Writer w;
  w.put_u8(static_cast<u8>(op));
  w.put_u64(req_id);
  w.put_string(key);
  if (op == BsOp::kPut || op == BsOp::kPutReplica) {
    w.put_bytes(value);
  }

  u64 polls_used = 0;
  u64 backoff = policy_.backoff_base_polls;
  auto pump_once = [&] {
    if (pump_) {
      pump_();
    }
    ++polls_used;
  };
  ErrorCode last_err = ErrorCode::kTimedOut;
  for (usize attempt = 0; attempt < policy_.max_attempts; ++attempt) {
    if (attempt > 0) {
      c_retries_.inc();
      // Exponential backoff with additive jitter, in pump polls. Jitter
      // decorrelates retries from concurrent clients without breaking
      // determinism (the jitter Rng is seeded).
      u64 wait = backoff;
      if (wait > 0 && policy_.jitter_ppm > 0) {
        u64 span = wait * policy_.jitter_ppm / 1'000'000;
        if (span > 0) {
          wait += rng_.next_range(0, span);
        }
      }
      c_backoff_polls_.add(wait);
      for (u64 i = 0; i < wait; ++i) {
        pump_once();
      }
      backoff *= 2;
      if (policy_.backoff_max_polls != 0) {
        backoff = std::min(backoff, policy_.backoff_max_polls);
      }
    }
    if (policy_.deadline_polls != 0 && polls_used >= policy_.deadline_polls) {
      break;
    }
    c_attempts_.inc();
    const BsPeer& target = targets_[current_target_];
    auto sent = sys_.udp_sendto(sock_, target.addr, target.port, w.bytes());
    if (!sent.ok()) {
      // Local send failure (e.g. injected syscall fault): count it, back
      // off, and retry — the op has definitely not reached any server.
      c_send_errors_.inc();
      last_err = sent.error();
      fail_over();
      continue;
    }
    bool transient_reply = false;
    for (usize poll = 0; poll < policy_.polls_per_attempt; ++poll) {
      pump_once();
      auto reply = sys_.udp_recvfrom(sock_);
      if (!reply.ok()) {
        if (policy_.deadline_polls != 0 && polls_used >= policy_.deadline_polls) {
          break;
        }
        continue;
      }
      Reader r(reply.value().payload);
      auto rid = r.get_u64();
      auto err = r.get_u32();
      auto payload = r.get_bytes();
      if (!rid || !err || !payload) {
        continue;  // malformed reply: ignore, retry
      }
      if (*rid != req_id) {
        continue;  // stale reply from an earlier (retried) request
      }
      ErrorCode code = static_cast<ErrorCode>(*err);
      if (code == ErrorCode::kOk) {
        h_rpc_polls_.record(polls_used);
        return std::move(*payload);
      }
      if (transient(code)) {
        c_transient_errors_.inc();
        last_err = code;
        transient_reply = true;
        VNROS_LOG_DEBUG("blockstore", "transient %s from target %zu (attempt %zu), retrying",
                        error_name(code), current_target_, attempt);
        break;  // next attempt, possibly after failover
      }
      h_rpc_polls_.record(polls_used);
      return code;
    }
    // Timed out or bounced with a transient error: rotate targets so a
    // crashed/partitioned/faulting replica does not absorb every attempt.
    fail_over();
    if (!transient_reply) {
      last_err = ErrorCode::kTimedOut;
    }
  }
  h_rpc_polls_.record(polls_used);
  VNROS_LOG_DEBUG("blockstore",
                  "rpc gave up: %s (attempts=%llu retries=%llu backoff=%llu failovers=%llu)",
                  error_name(last_err), static_cast<unsigned long long>(c_attempts_.value()),
                  static_cast<unsigned long long>(c_retries_.value()),
                  static_cast<unsigned long long>(c_backoff_polls_.value()),
                  static_cast<unsigned long long>(c_failovers_.value()));
  return last_err == ErrorCode::kOk ? ErrorCode::kTimedOut : last_err;
}

Result<Unit> BlockStoreClient::put(std::string_view key, std::span<const u8> value) {
  auto r = rpc(BsOp::kPut, key, value);
  if (!r.ok()) {
    return r.error();
  }
  return Unit{};
}

Result<std::vector<u8>> BlockStoreClient::get(std::string_view key) {
  return rpc(BsOp::kGet, key, {});
}

Result<Unit> BlockStoreClient::del(std::string_view key) {
  auto r = rpc(BsOp::kDel, key, {});
  if (!r.ok()) {
    return r.error();
  }
  return Unit{};
}

Result<std::vector<BlockKeyInfo>> BlockStoreClient::list() {
  auto raw = rpc(BsOp::kList, "", {});
  if (!raw.ok()) {
    return raw.error();
  }
  Reader r(raw.value());
  auto count = r.get_u32();
  if (!count) {
    return ErrorCode::kCorrupted;
  }
  std::vector<BlockKeyInfo> out;
  out.reserve(*count);
  for (u32 i = 0; i < *count; ++i) {
    auto key = r.get_string();
    auto crc = r.get_u32();
    if (!key || !crc) {
      return ErrorCode::kCorrupted;
    }
    out.push_back(BlockKeyInfo{std::move(*key), *crc});
  }
  return out;
}

Result<u64> BlockStoreClient::sync_into(BlockStoreNode& target) {
  auto remote = list();
  if (!remote.ok()) {
    return remote.error();
  }
  // What the target already holds, by checksum.
  std::map<std::string, u32> local;
  for (const auto& e : target.list()) {
    local[e.key] = e.crc;
  }
  u64 repaired = 0;
  for (const auto& e : remote.value()) {
    auto it = local.find(e.key);
    if (it != local.end() && it->second == e.crc) {
      continue;  // already in sync
    }
    auto value = get(e.key);
    if (!value.ok()) {
      return value.error();
    }
    auto put_result = target.put(e.key, value.value());
    if (!put_result.ok()) {
      return put_result.error();
    }
    ++repaired;
  }
  return repaired;
}

Result<Unit> BlockStoreClient::ping() {
  auto r = rpc(BsOp::kPing, "", {});
  if (!r.ok()) {
    return r.error();
  }
  return Unit{};
}

}  // namespace vnros
