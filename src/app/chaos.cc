#include "src/app/chaos.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "src/app/anti_entropy.h"
#include "src/app/blockstore.h"
#include "src/base/contracts.h"
#include "src/base/fault.h"
#include "src/base/log.h"
#include "src/base/rng.h"
#include "src/hw/block_device.h"
#include "src/hw/network.h"
#include "src/kernel/kernel.h"
#include "src/kernel/syscall.h"
#include "src/obs/registry.h"

namespace vnros {
namespace {

constexpr Port kPort = 9000;
constexpr u64 kDiskSectors = 16384;

// One simulated machine with a ready-to-use process and Sys facade (the
// app_vcs Host pattern, extended with the reboot knobs).
struct ChaosHost {
  Kernel kernel;
  SyscallDispatcher disp;
  Pid pid;
  Sys sys;

  ChaosHost(Network* net, BlockDevice* disk, bool recover, std::optional<LinkAddr> addr)
      : kernel(make_config(net, disk, recover, addr)),
        disp(kernel),
        pid(boot_pid(disp)),
        sys(disp, pid, 0) {}

  static KernelConfig make_config(Network* net, BlockDevice* disk, bool recover,
                                  std::optional<LinkAddr> addr) {
    KernelConfig config;
    config.network = net;
    config.disk = disk;
    config.recover_fs = recover;
    config.link_addr = addr;
    config.format_on_recovery_failure = recover;
    return config;
  }

  static Pid boot_pid(SyscallDispatcher& disp) {
    Sys boot(disp, kInvalidPid, 0);
    auto pid = boot.spawn();
    VNROS_CHECK(pid.ok());
    return pid.value();
  }
};

// What the client believes about one key. `history` is every value ever
// attempted (acked or not) — the universe of non-garbage bytes. `certain`
// is set only while the latest client op on the key was a successful put.
struct KeyBelief {
  std::vector<std::vector<u8>> history;
  std::optional<std::vector<u8>> certain;

  bool in_history(const std::vector<u8>& v) const {
    for (const auto& h : history) {
      if (h == v) {
        return true;
      }
    }
    return false;
  }
};

// Heal mode: the per-key op history the linearizability checker validates.
// The system under test is a replicated sequenced register — not strictly
// linearizable mid-partition (an acked write can leave a hinted-unreachable
// replica stale, so reads may serve old values) — so the sound checkable
// spec is:
//   - every read that returns (bytes, seq) must return EXACTLY the bytes of
//     an attempted write with that stamp (failed writes count: at-least-once
//     delivery means they may have landed);
//   - at quiesce (fabric healed, hints drained, anti-entropy converged) the
//     surviving state must carry a stamp >= every acknowledged write's, and
//     an acknowledged delete with no later attempted write must read as
//     absent on every node (no resurrection);
//   - re-image data loss may lower the acknowledged floor (mirrors
//     downgrade_lost_keys), but only when no surviving copy reaches it.
struct KeyHistory {
  struct Write {
    u64 seq = 0;
    std::vector<u8> bytes;
    bool tombstone = false;
    bool acked = false;
  };
  std::vector<Write> writes;  // every attempted write, in invoke order
  u64 acked_floor = 0;        // highest acknowledged stamp (0 = none)
  bool acked_is_del = false;  // the op at acked_floor was a delete

  const Write* find_seq(u64 seq) const {
    for (const auto& w : writes) {
      if (w.seq == seq) {
        return &w;
      }
    }
    return nullptr;
  }
  u64 max_attempted_seq() const {
    u64 m = 0;
    for (const auto& w : writes) {
      m = std::max(m, w.seq);
    }
    return m;
  }
};

class ChaosRunner {
 public:
  explicit ChaosRunner(const ChaosConfig& cfg) : cfg_(cfg), sched_rng_(cfg.seed) {
    VNROS_CHECK(cfg_.nodes >= 2);
    // Heal mode rides on cluster machinery: Merkle repair discovers peers via
    // the cluster view, and re-image bootstrap must preserve write stamps
    // (the legacy anti_entropy_into re-stamps, which would invalidate the
    // linearizability histories).
    VNROS_CHECK(!cfg_.heal || cfg_.cluster);
    report_.seed = cfg_.seed;
  }

  ChaosReport run() {
    auto& reg = FaultRegistry::global();
    reg.disarm_all();
    reg.reset_stats();
    reg.reseed(cfg_.seed ^ 0xFA17'FA17ull);

    boot_cluster();

    // Arm the span tracer on the client kernel's virtual clock for the whole
    // schedule: spans (blockstore RPCs, fs journal commits, RTP retransmits)
    // replay bit-identically from the seed like everything else.
    SpanTracer& tracer = ObsRegistry::global().tracer();
    const u64 spans_before = tracer.recorded();
    tracer.set_clock(&client_host_->kernel.clock());
    tracer.set_enabled(true);

    for (usize step = 0; step < cfg_.steps && report_.message.empty(); ++step) {
      schedule_events(step);
      if (!report_.message.empty()) {
        break;
      }
      client_op(step);
      if ((step + 1) % cfg_.check_every == 0) {
        quiesce_and_check(step);
      }
    }
    if (report_.message.empty()) {
      quiesce_and_check(cfg_.steps);
    }

    finalize_report();
    report_.spans_recorded = tracer.recorded() - spans_before;
    tracer.set_enabled(false);
    tracer.set_clock(nullptr);
    reg.disarm_all();
    return report_;
  }

 private:
  struct NodeSlot {
    std::unique_ptr<BlockDevice> disk;
    std::unique_ptr<ChaosHost> host;
    std::unique_ptr<BlockStoreNode> node;
    std::unique_ptr<AntiEntropyScheduler> ae;  // heal mode: background Merkle repair
    LinkAddr addr = 0;
    BsNodeId id = 0;
    bool active = true;  // false once the member gracefully left (slots are
                         // never reused, so id == slot index forever)
    std::string fault_prefix;
    std::string node_prefix;  // serve_delay latency-injection site prefix
  };

  void boot_slot_machine(usize i) {
    auto& slot = slots_[i];
    slot.id = static_cast<BsNodeId>(i);
    slot.active = true;
    slot.fault_prefix = "chaos/disk" + std::to_string(i);
    slot.node_prefix = "chaos/node" + std::to_string(i);
    slot.disk = std::make_unique<BlockDevice>(kDiskSectors, cfg_.seed * 1000003ull + i,
                                              slot.fault_prefix);
    slot.host = std::make_unique<ChaosHost>(&net_, slot.disk.get(), /*recover=*/false,
                                            std::nullopt);
    slot.addr = slot.host->kernel.net_addr();
  }

  void boot_cluster() {
    if (cfg_.cluster) {
      view_.ring = PlacementRing(cfg_.vnodes);
      view_.replication = std::min(cfg_.replication, cfg_.nodes);
    }
    slots_.resize(cfg_.nodes);
    for (usize i = 0; i < cfg_.nodes; ++i) {
      boot_slot_machine(i);
      if (cfg_.cluster) {
        view_.ring.add_node(slots_[i].id);
        view_.directory[slots_[i].id] = BsPeer{slots_[i].addr, kPort};
      }
    }
    for (usize i = 0; i < cfg_.nodes; ++i) {
      make_node(i);
    }
    client_host_ = std::make_unique<ChaosHost>(&net_, nullptr, /*recover=*/false, std::nullopt);
    client_addr_ = client_host_->kernel.net_addr();

    RetryPolicy policy;
    policy.max_attempts = 6;
    policy.polls_per_attempt = 48;
    policy.backoff_base_polls = 4;
    policy.backoff_max_polls = 64;
    policy.jitter_ppm = 250'000;
    policy.deadline_polls = 2'000;
    client_ = std::make_unique<BlockStoreClient>(client_host_->sys, slots_[0].addr, kPort,
                                                 [this] { pump_all(); }, policy);
    for (usize i = 1; i < cfg_.nodes; ++i) {
      client_->add_failover(slots_[i].addr, kPort);
    }
    if (cfg_.cluster) {
      client_->set_cluster(view_);
    }
    VNROS_CHECK(client_->init().ok());
  }

  void make_node(usize i) {
    auto& slot = slots_[i];
    std::vector<BsPeer> peers;
    if (!cfg_.cluster) {
      for (usize j = 0; j < cfg_.nodes; ++j) {
        if (j != i) {
          peers.push_back(BsPeer{slots_[j].addr, kPort});
        }
      }
    }
    slot.node = std::make_unique<BlockStoreNode>(slot.host->sys, kPort, std::move(peers),
                                                 [this, i] { pump_except(i); }, slot.node_prefix);
    // A node booting mid-schedule can absorb a pending one-shot fault (e.g.
    // global syscall io_error) on its very first syscall. Boot is retried
    // like an operator would: one-shots are consumed by the failed attempt,
    // so a bounded number of retries either boots or proves the fault
    // persistent (which no schedule arms).
    Result<Unit> booted = ErrorCode::kIoError;
    for (int attempt = 0; attempt < 3 && !(booted = slot.node->init()).ok(); ++attempt) {
      VNROS_LOG_DEBUG("chaos", "node %zu init attempt failed: %s", i,
                      error_name(booted.error()));
    }
    VNROS_CHECK(booted.ok());
    if (cfg_.cluster) {
      ClusterConfig cc;
      cc.self = slot.id;
      slot.node->configure_cluster(cc, view_);
      if (cfg_.admission_rate_ppm > 0) {
        AdmissionConfig ac;
        ac.enabled = true;
        ac.burst_ops = cfg_.admission_burst;
        slot.node->set_admission(ac);
        slot.node->grant_tokens(cfg_.admission_burst * 1'000'000);  // boot with a full bucket
      }
    }
    if (cfg_.heal && cfg_.cluster) {
      // Background Merkle repair. One tick per schedule step, so a peer gets
      // a repair pass every ~64-96 steps. The seed is a pure function of the
      // run seed and the slot, so a rebooted incarnation re-derives the same
      // repair schedule and the whole run stays seed-replayable.
      AntiEntropyConfig ae;
      ae.interval_polls = 64;
      ae.jitter_polls = 32;
      ae.rng_seed = cfg_.seed ^ (0xAE00'0000ull + static_cast<u64>(i) * 0x9E37ull);
      slot.ae = std::make_unique<AntiEntropyScheduler>(slot.host->sys, *slot.node,
                                                       [this, i] { pump_except(i); }, ae);
    }
  }

  usize active_count() const {
    usize n = 0;
    for (const auto& slot : slots_) {
      if (slot.active) {
        ++n;
      }
    }
    return n;
  }

  // Picks a uniformly random active slot. In legacy (non-cluster) runs every
  // slot is active forever, so this draws exactly the stream the fixed seed
  // matrix was recorded against.
  usize pick_active() {
    std::vector<usize> idx;
    for (usize i = 0; i < slots_.size(); ++i) {
      if (slots_[i].active) {
        idx.push_back(i);
      }
    }
    return idx[sched_rng_.next_below(idx.size())];
  }

  void pump_all() {
    net_.release_held();
    for (auto& slot : slots_) {
      if (slot.node) {
        slot.node->serve_once();
      }
    }
  }

  void pump_except(usize skip) {
    net_.release_held();
    for (usize j = 0; j < slots_.size(); ++j) {
      if (j != skip && slots_[j].node) {
        slots_[j].node->serve_once();
      }
    }
  }

  // --- Adversarial events ---------------------------------------------------

  void schedule_events(usize step) {
    auto& reg = FaultRegistry::global();
    if (cfg_.cluster && cfg_.admission_rate_ppm > 0) {
      // The admission clock: one tick of tokens per schedule step. Ops that
      // outrun the rate are shed with kOverloaded and absorbed by the
      // client's backpressure ladder (or fail, leaving the key uncertain).
      for (auto& slot : slots_) {
        if (slot.active && slot.node) {
          slot.node->grant_tokens(cfg_.admission_rate_ppm);
        }
      }
    }
    if (sched_rng_.chance_ppm(cfg_.crash_ppm)) {
      crash_node(pick_active(), step);
      if (!report_.message.empty()) {
        return;
      }
    }
    if (sched_rng_.chance_ppm(cfg_.partition_ppm)) {
      // Cut a random pair among {active nodes, client}.
      std::vector<LinkAddr> ends;
      for (const auto& slot : slots_) {
        if (slot.active) {
          ends.push_back(slot.addr);
        }
      }
      ends.push_back(client_addr_);
      LinkAddr a = ends[sched_rng_.next_below(ends.size())];
      LinkAddr b = ends[sched_rng_.next_below(ends.size())];
      if (a != b && !net_.partitioned(a, b)) {
        net_.partition(a, b);
        cuts_.push_back({a, b});
        ++report_.partitions;
      }
    }
    if (!cuts_.empty() && sched_rng_.chance_ppm(cfg_.heal_ppm)) {
      usize idx = sched_rng_.next_below(cuts_.size());
      net_.heal(cuts_[idx].first, cuts_[idx].second);
      cuts_.erase(cuts_.begin() + static_cast<isize>(idx));
      ++report_.heals;
    }
    FaultSpec one_shot;
    one_shot.probability_ppm = 1'000'000;
    one_shot.one_shot = true;
    if (sched_rng_.chance_ppm(cfg_.disk_fault_ppm)) {
      const auto& slot = slots_[pick_active()];
      const char* kind = sched_rng_.chance_ppm(500'000) ? "/write_error" : "/read_error";
      reg.arm(slot.fault_prefix + kind, one_shot);
      ++report_.faults_armed;
    }
    if (sched_rng_.chance_ppm(cfg_.torn_write_ppm)) {
      const auto& slot = slots_[pick_active()];
      reg.arm(slot.fault_prefix + "/torn_write", one_shot);
      ++report_.faults_armed;
    }
    if (sched_rng_.chance_ppm(cfg_.syscall_fault_ppm)) {
      reg.arm("syscall/io_error", one_shot);
      ++report_.faults_armed;
    }
    if (cfg_.ring_submit_fault_ppm > 0 && sched_rng_.chance_ppm(cfg_.ring_submit_fault_ppm)) {
      // Fires on the next accepted SQE anywhere in the cluster (serve pools,
      // repair RPCs, client reply awaits): it completes immediately with the
      // injected error instead of executing. Every ring user re-arms its
      // parked receives, so the op is absorbed like a dropped datagram.
      reg.arm("syscall/ring_submit", one_shot);
      ++report_.faults_armed;
    }
    if (cfg_.ring_complete_fault_ppm > 0 &&
        sched_rng_.chance_ppm(cfg_.ring_complete_fault_ppm)) {
      // Fires on the next pending ring op: its execution is deferred one
      // reactor pass (completion jitter). Correctness must not depend on
      // completions landing on the earliest possible pass.
      reg.arm("syscall/ring_complete", one_shot);
      ++report_.faults_armed;
    }
    if (sched_rng_.chance_ppm(cfg_.oom_ppm)) {
      reg.arm("frame_alloc/oom", one_shot);
      ++report_.faults_armed;
      // Steady-state block-store traffic allocates no frames, so probe the
      // site from the client host: a small mapping that either succeeds (and
      // is unmapped) or absorbs the injected kNoMemory.
      auto probe = client_host_->sys.mmap(4096, /*writable=*/true);
      if (probe.ok()) {
        (void)client_host_->sys.munmap(probe.value());
      }
    }
    // Cluster-mode events last, each gated on `cluster` *before* touching the
    // schedule Rng, so legacy configs draw the exact legacy stream.
    if (cfg_.cluster && cfg_.join_ppm > 0 && slots_.size() < cfg_.max_nodes &&
        sched_rng_.chance_ppm(cfg_.join_ppm)) {
      join_node(step);
    }
    if (cfg_.cluster && cfg_.leave_ppm > 0 &&
        active_count() > std::max<usize>(2, view_.replication) &&
        sched_rng_.chance_ppm(cfg_.leave_ppm)) {
      leave_node(step);
    }
    if (cfg_.cluster && cfg_.delay_ppm > 0 && sched_rng_.chance_ppm(cfg_.delay_ppm)) {
      const auto& slot = slots_[pick_active()];
      FaultSpec stall;
      stall.probability_ppm = 1'000'000;
      stall.one_shot = true;
      stall.delay = sched_rng_.next_range(8, cfg_.delay_polls_max);
      reg.arm(slot.node_prefix + "/serve_delay", stall);
      ++report_.faults_armed;
      ++report_.delays_armed;
    }
    // Heal-mode events last, each gated on `heal` *before* touching the
    // schedule Rng, so legacy and churn configs draw their exact streams.
    if (cfg_.heal && cfg_.bit_rot_ppm > 0 && sched_rng_.chance_ppm(cfg_.bit_rot_ppm)) {
      // Silent media decay: the next read of some sector returns flipped
      // bytes with no I/O error. Only the block CRC stands between this and
      // serving garbage.
      const auto& slot = slots_[pick_active()];
      FaultSpec rot;
      rot.probability_ppm = 1'000'000;
      rot.one_shot = true;
      rot.corrupt_bytes = sched_rng_.next_range(1, cfg_.bit_rot_bytes_max);
      reg.arm(slot.fault_prefix + "/bit_rot", rot);
      ++report_.faults_armed;
    }
    if (cfg_.heal) {
      if (cfg_.flap_ppm > 0 && sched_rng_.chance_ppm(cfg_.flap_ppm)) {
        start_flap();
      }
      advance_flaps();
      if (cfg_.slow_peer_ppm > 0 && sched_rng_.chance_ppm(cfg_.slow_peer_ppm)) {
        start_slow_spell(step);
      }
      expire_slow_spells(step);
      for (auto& slot : slots_) {
        if (slot.active && slot.ae) {
          slot.ae->tick();
        }
      }
    }
  }

  // A flap storm: one endpoint pair toggles cut/healed on every schedule step
  // until its toggle budget runs out — the pathological case for repair
  // protocols that assume a partition is either up or down for a while.
  void start_flap() {
    std::vector<LinkAddr> ends;
    for (const auto& slot : slots_) {
      if (slot.active) {
        ends.push_back(slot.addr);
      }
    }
    ends.push_back(client_addr_);
    LinkAddr a = ends[sched_rng_.next_below(ends.size())];
    LinkAddr b = ends[sched_rng_.next_below(ends.size())];
    usize toggles = sched_rng_.next_range(2, cfg_.flap_toggles_max);
    if (a == b) {
      return;  // degenerate draw: the storm fizzles (rng already consumed)
    }
    flaps_.push_back(Flap{a, b, toggles, false});
    ++report_.flaps;
  }

  void advance_flaps() {
    for (auto it = flaps_.begin(); it != flaps_.end();) {
      if (it->cut) {
        net_.heal(it->a, it->b);
        it->cut = false;
      } else {
        net_.partition(it->a, it->b);
        it->cut = true;
      }
      if (--it->toggles_left == 0) {
        if (it->cut) {
          net_.heal(it->a, it->b);
        }
        it = flaps_.erase(it);
      } else {
        ++it;
      }
    }
  }

  // A sustained slow peer: serve_delay re-arms on EVERY serve for the spell's
  // length — latency asymmetry (one member consistently slower than the
  // others), not the one-shot hiccup the churn schedule injects.
  void start_slow_spell(usize step) {
    usize i = pick_active();
    usize len = static_cast<usize>(sched_rng_.next_range(8, cfg_.slow_spell_steps_max));
    FaultSpec spell;
    spell.probability_ppm = 1'000'000;
    spell.one_shot = false;
    spell.delay = cfg_.slow_peer_polls;
    FaultRegistry::global().arm(slots_[i].node_prefix + "/serve_delay", spell);
    slow_until_[i] = step + len;
    ++report_.slow_spells;
    ++report_.faults_armed;
  }

  void expire_slow_spells(usize step) {
    for (auto it = slow_until_.begin(); it != slow_until_.end();) {
      if (step >= it->second || !slots_[it->first].active) {
        FaultRegistry::global().disarm(slots_[it->first].node_prefix + "/serve_delay");
        it = slow_until_.erase(it);
      } else {
        ++it;
      }
    }
  }

  // Boots a brand-new member mid-schedule: the joiner starts with the grown
  // view; every pre-existing member rebalances against it, streaming the
  // shards whose owner set now includes the joiner (in-flight client ops keep
  // pumping underneath via the nodes' pump callbacks).
  void join_node(usize step) {
    usize i = slots_.size();
    slots_.emplace_back();
    boot_slot_machine(i);
    auto& slot = slots_[i];
    view_.ring.add_node(slot.id);
    view_.directory[slot.id] = BsPeer{slot.addr, kPort};
    make_node(i);  // configures the joiner with the grown view
    for (usize j = 0; j < slots_.size(); ++j) {
      if (j != i && slots_[j].active && slots_[j].node) {
        rebalance_slot(j, step);
      }
    }
    client_->add_failover(slot.addr, kPort);
    client_->set_cluster(view_);
    ++report_.joins;
    VNROS_LOG_DEBUG("chaos", "node %zu joined at step %zu", i, step);
  }

  // Graceful leave: the leaver rebalances into a view without itself, which
  // moves (acked) every shard it holds to the surviving owners. If any shard
  // could not be acked anywhere (partition, injected faults), the leave is
  // ABORTED — the member stays, keeping its data — rather than risking the
  // last intact copy.
  void leave_node(usize step) {
    usize i = pick_active();
    auto& slot = slots_[i];
    ClusterView candidate = view_;
    candidate.ring.remove_node(slot.id);
    candidate.directory.erase(slot.id);
    auto moved = slot.node->rebalance(candidate);
    if (!moved.ok() || moved.value().failed > 0) {
      slot.node->set_cluster_view(view_);  // restore membership belief
      ++report_.aborted_leaves;
      VNROS_LOG_DEBUG("chaos", "node %zu leave aborted at step %zu", i, step);
      return;
    }
    view_ = candidate;
    harvest_node_stats(slot);
    harvest_ae_stats(slot);
    auto& reg = FaultRegistry::global();
    reg.disarm_prefix(slot.fault_prefix);
    reg.disarm(slot.node_prefix + "/serve_delay");
    slot.ae.reset();
    slot.node.reset();
    slot.host.reset();
    slot.active = false;
    for (usize j = 0; j < slots_.size(); ++j) {
      if (slots_[j].active && slots_[j].node) {
        rebalance_slot(j, step);
      }
    }
    client_->set_cluster(view_);
    ++report_.leaves;
    VNROS_LOG_DEBUG("chaos", "node %zu left at step %zu", i, step);
  }

  // One member adopts the runner's current view and moves its shards.
  // Errors (an injected fault mid-rebalance) are survivable: the member has
  // adopted the view and keeps any block it failed to move, so the next
  // quiesce still finds every acked byte somewhere.
  void rebalance_slot(usize j, usize step) {
    auto st = slots_[j].node->rebalance(view_);
    if (!st.ok()) {
      VNROS_LOG_DEBUG("chaos", "node %zu rebalance error at step %zu: %s", j, step,
                      error_name(st.error()));
    }
  }

  void crash_node(usize i, usize step) {
    auto& reg = FaultRegistry::global();
    auto& slot = slots_[i];
    ++report_.crashes;

    // Global (per-process) sites are always quiesced across a reboot; the
    // node's own disk sites usually are too, but some crashes reboot with
    // them still armed — recovery must then either survive the fault or
    // fail loudly into the re-image + anti-entropy path.
    reg.disarm("syscall/io_error");
    reg.disarm("syscall/no_memory");
    reg.disarm("frame_alloc/oom");
    const bool dirty_reboot = sched_rng_.chance_ppm(300'000);
    if (!dirty_reboot) {
      reg.disarm_prefix(slot.fault_prefix);
    }
    // A crash kills the (possibly stalled) serving process; its armed
    // serve_delay dies with it.
    reg.disarm(slot.node_prefix + "/serve_delay");

    harvest_node_stats(slot);
    harvest_ae_stats(slot);
    slot.ae.reset();
    slot.node.reset();
    slot.host.reset();
    slot.disk->crash(cfg_.persist_ppm, cfg_.torn_crash_ppm);

    // Probe recovery first so the runner knows whether the kernel's
    // format-on-failure fallback will engage (the probe is idempotent:
    // recover() re-checkpoints, so running it twice recovers the same state).
    const bool recoverable = [&] {
      auto probe = MemFs::recover(*slot.disk);
      return probe.ok();
    }();

    slot.host = std::make_unique<ChaosHost>(&net_, slot.disk.get(), /*recover=*/true, slot.addr);
    make_node(i);

    if (!recoverable) {
      ++report_.reimages;
      VNROS_LOG_DEBUG("chaos", "node %zu unrecoverable at step %zu: re-imaged", i, step);
      if (cfg_.heal) {
        merkle_bootstrap(i);
        downgrade_lost_floors();
      } else {
        anti_entropy_into(i);
      }
      downgrade_lost_keys();
    }
  }

  // Heal-mode re-image bootstrap: Merkle passes against every live peer pull
  // the surviving copies back over the wire with their write stamps intact —
  // unlike anti_entropy_into, which re-stamps through node->put() and would
  // invalidate the linearizability histories. Best-effort mid-schedule: a
  // partitioned or shedding peer just leaves divergence for the background
  // scheduler and the quiesce convergence loop to finish.
  void merkle_bootstrap(usize i) {
    auto& slot = slots_[i];
    if (!slot.ae) {
      return;
    }
    for (int round = 0; round < 2; ++round) {
      bool all_clean = true;
      for (auto& peer : slots_) {
        if (&peer == &slot || !peer.active || !peer.node) {
          continue;
        }
        peer.node->grant_tokens(64 * 1'000'000);
        const u64 clean_before = slot.ae->stats().clean_passes;
        (void)slot.ae->sync_with(BsPeer{peer.addr, kPort});
        if (slot.ae->stats().clean_passes != clean_before + 1) {
          all_clean = false;
        }
      }
      if (all_clean) {
        break;
      }
    }
  }

  // The heal-mode analog of downgrade_lost_keys: a re-image may destroy the
  // only copy that carried a key's acknowledged stamp. If no surviving
  // inventory entry (live or tombstone) reaches the acked floor, the floor
  // drops to zero — legitimate data loss under total-disk failure, accounted
  // separately so the report shows how often the schedule forced it.
  void downgrade_lost_floors() {
    std::map<std::string, u64> best;
    for (const auto& slot : slots_) {
      if (!slot.node) {
        continue;
      }
      for (const auto& e : slot.node->list()) {
        auto [it, inserted] = best.try_emplace(e.key, e.seq);
        if (!inserted) {
          it->second = std::max(it->second, e.seq);
        }
      }
    }
    for (auto& [key, h] : histories_) {
      if (h.acked_floor == 0) {
        continue;
      }
      auto it = best.find(key);
      if (it == best.end() || it->second < h.acked_floor) {
        VNROS_LOG_DEBUG("chaos", "acked floor of %s lost with its only replica", key.c_str());
        h.acked_floor = 0;
        h.acked_is_del = false;
        ++report_.acked_floor_drops;
      }
    }
  }

  // Repopulates a re-imaged node from the surviving replicas' local views.
  // In cluster mode only the keys the node actually owns are restored —
  // placement, not mirroring.
  void anti_entropy_into(usize i) {
    for (usize j = 0; j < slots_.size(); ++j) {
      if (j == i || !slots_[j].node) {
        continue;
      }
      for (const auto& [key, value] : slots_[j].node->view()) {
        if (cfg_.cluster) {
          auto owners = view_.owners(key);
          if (std::find(owners.begin(), owners.end(), slots_[i].id) == owners.end()) {
            continue;
          }
        }
        auto have = slots_[i].node->get(key);
        if (have.ok() && have.value() == value) {
          continue;
        }
        if (!have.ok()) {
          (void)slots_[i].node->put(key, value);
        }
      }
    }
  }

  // A re-image destroys everything on one disk. Any certain key whose acked
  // bytes now exist on no replica was only ever held by the re-imaged node
  // (best-effort replication never reached a peer): that is legitimate data
  // loss under total-disk failure, not a correctness bug — downgrade the key
  // to uncertain instead of failing the invariant on it later.
  void downgrade_lost_keys() {
    std::vector<std::map<std::string, std::vector<u8>>> views;
    for (const auto& slot : slots_) {
      if (slot.node) {
        views.push_back(slot.node->view());
      }
    }
    for (auto& [key, belief] : beliefs_) {
      if (!belief.certain) {
        continue;
      }
      bool held = false;
      for (const auto& view : views) {
        auto it = view.find(key);
        if (it != view.end() && it->second == *belief.certain) {
          held = true;
          break;
        }
      }
      if (!held) {
        VNROS_LOG_DEBUG("chaos", "certain key %s lost with its only replica", key.c_str());
        belief.certain.reset();
      }
    }
  }

  // --- Client workload ------------------------------------------------------

  void client_op(usize step) {
    std::string key = "key" + std::to_string(sched_rng_.next_below(cfg_.keys));
    auto& belief = beliefs_[key];
    ++report_.ops;
    // One draw decides the op; the cut points move for the delete-heavy mix
    // (5/3/2 put/get/del instead of 6/3/1) without touching the rng stream,
    // so legacy seeds replay unchanged.
    u64 kind = sched_rng_.next_below(10);
    const u64 put_cut = cfg_.del_heavy ? 5 : 6;
    const u64 get_cut = cfg_.del_heavy ? 8 : 9;
    if (kind < put_cut) {
      std::vector<u8> value(sched_rng_.next_range(1, cfg_.max_value_bytes));
      for (auto& b : value) {
        b = static_cast<u8>(sched_rng_.next_u64());
      }
      belief.history.push_back(value);
      auto r = client_->put(key, value);
      if (cfg_.heal) {
        record_write(key, value, /*tombstone=*/false, r.ok());
      }
      if (r.ok()) {
        ++report_.ops_ok;
        belief.certain = std::move(value);
      } else {
        // Unacked: the put may or may not have applied anywhere (it may even
        // have applied and destroyed the previous copy mid-overwrite), so
        // nothing about this key is certain any more.
        ++report_.ops_failed;
        belief.certain.reset();
      }
    } else if (kind < get_cut) {
      auto r = client_->get_with_seq(key);
      if (r.ok()) {
        ++report_.ops_ok;
        if (!belief.in_history(r.value().first)) {
          fail(step, "get(" + key + ") returned bytes the client never wrote");
        } else if (cfg_.heal) {
          check_read(step, key, r.value().first, r.value().second);
        }
      } else {
        ++report_.ops_failed;  // kNotFound/corrupt/timeout: all acceptable
      }
    } else {
      auto r = client_->del(key);
      if (cfg_.heal) {
        record_write(key, {}, /*tombstone=*/true, r.ok());
      }
      if (r.ok()) {
        ++report_.ops_ok;
      } else {
        ++report_.ops_failed;
      }
      // Acked or not, stale replicas may still hold (and later serve or
      // repair from) older values, so a delete only removes certainty.
      belief.certain.reset();
    }
  }

  // Heal mode: every attempted write lands in the key's history under the
  // stamp the client assigned it (retries reuse the stamp, so one op is one
  // history entry). Acked writes raise the key's acknowledged floor.
  void record_write(const std::string& key, std::vector<u8> value, bool tombstone, bool acked) {
    auto& h = histories_[key];
    const u64 seq = client_->last_write_seq();
    h.writes.push_back(KeyHistory::Write{seq, std::move(value), tombstone, acked});
    if (acked && seq > h.acked_floor) {
      h.acked_floor = seq;
      h.acked_is_del = tombstone;
    }
  }

  // Heal mode, checked at op time: a read that returns (bytes, stamp) must
  // return EXACTLY the bytes of the attempted write that owns the stamp —
  // stamps are globally unique, so a mismatch means a node spliced bytes
  // across writes (or served a tombstone as data).
  void check_read(usize step, const std::string& key, const std::vector<u8>& bytes, u64 seq) {
    ++report_.lin_reads_checked;
    const auto& h = histories_[key];
    const KeyHistory::Write* w = h.find_seq(seq);
    if (w == nullptr) {
      fail(step, "lin: get(" + key + ") returned stamp " + std::to_string(seq) +
                     " that no write ever carried");
    } else if (w->tombstone) {
      fail(step, "lin: get(" + key + ") served bytes under delete stamp " + std::to_string(seq));
    } else if (w->bytes != bytes) {
      fail(step, "lin: get(" + key + ") bytes do not match the write at stamp " +
                     std::to_string(seq));
    }
  }

  // --- Invariant ------------------------------------------------------------

  void quiesce_and_check(usize step) {
    FaultRegistry::global().disarm_all();
    net_.heal_all();
    cuts_.clear();
    flaps_.clear();        // heal_all() flattened the storms
    slow_until_.clear();   // disarm_all() ended the spells
    for (int i = 0; i < 256; ++i) {
      pump_all();  // drain every in-flight datagram through the servers
    }
    if (cfg_.cluster) {
      // Hinted-handoff convergence: with the fabric healed, a few delivery
      // passes must land every parked hint whose owner is still a member.
      // Quiesce is not an overload test, so refill admission buckets first.
      for (int round = 0; round < 4; ++round) {
        for (auto& slot : slots_) {
          if (slot.active && slot.node) {
            slot.node->grant_tokens(64 * 1'000'000);
            (void)slot.node->deliver_hints();
          }
        }
        for (int i = 0; i < 32; ++i) {
          pump_all();
        }
      }
    }
    if (cfg_.heal) {
      // Self-healing convergence: anti-entropy until every pair is clean,
      // then reclaim acknowledged tombstones (quiesce doubles as the
      // gc_grace barrier: the fabric is drained and every hint delivered, so
      // no stale datagram can race the reclaim), then converge again so a
      // member that missed a best-effort kTombstoneGc re-spreads its
      // tombstone instead of diverging.
      ++quiesces_;
      if (!ae_converge(step)) {
        return;
      }
      if (cfg_.gc_every > 0 && quiesces_ % cfg_.gc_every == 0) {
        run_tombstone_gc();
        if (!ae_converge(step)) {
          return;
        }
      }
      if (!check_heal_invariants(step)) {
        return;
      }
    }

    std::vector<std::map<std::string, std::vector<u8>>> views;
    for (const auto& slot : slots_) {
      if (slot.node) {
        views.push_back(slot.node->view());
      }
    }
    for (const auto& [key, belief] : beliefs_) {
      for (usize j = 0; j < views.size(); ++j) {
        auto it = views[j].find(key);
        if (it != views[j].end() && !belief.in_history(it->second)) {
          fail(step, "node " + std::to_string(j) + " stores garbage for " + key);
          return;
        }
      }
      if (belief.certain) {
        bool held = false;
        for (const auto& view : views) {
          auto it = view.find(key);
          if (it != view.end() && it->second == *belief.certain) {
            held = true;
            break;
          }
        }
        if (!held) {
          for (usize j = 0; j < slots_.size(); ++j) {
            if (!slots_[j].node) {
              VNROS_LOG_DEBUG("chaos", "  slot %zu: departed", j);
              continue;
            }
            auto local = slots_[j].node->get(key);
            VNROS_LOG_DEBUG("chaos", "  slot %zu: get(%s) -> %s", j, key.c_str(),
                            local.ok() ? "stale bytes" : error_name(local.error()));
          }
          fail(step, "acked put of " + key + " readable on no node after quiesce");
          return;
        }
      }
    }

    // Obs coherence across the cluster's whole history (incarnations are
    // accumulated at crash time). Every applied replica was pushed by some
    // peer — the runner's fabric never duplicates datagrams, so applications
    // can only lag, not lead — and every read repair was triggered by a
    // corrupt local read.
    BlockStoreStats total = cumulative_stats();
    u64 pushed_bound = total.replicas_pushed;
    if (cfg_.heal) {
      // Anti-entropy ships replicas through its own rpc layer, not the
      // node's push_acked, so its pushes are missing from replicas_pushed.
      // Each repair rpc puts at most kAeRpcAttempts datagrams on the wire,
      // bounding the replica applications it can have caused.
      u64 ae_rpcs = ae_rpcs_harvested_;
      for (const auto& slot : slots_) {
        if (slot.ae) {
          ae_rpcs += slot.ae->stats().rpcs;
        }
      }
      pushed_bound += ae_rpcs * kAeRpcAttempts;
    }
    if (total.replicas_applied > pushed_bound) {
      fail(step, "obs incoherence: " + std::to_string(total.replicas_applied) +
                     " replicas applied > " + std::to_string(pushed_bound) +
                     " pushed (incl. repair rpc bound)");
      return;
    }
    if (total.read_repairs > total.corrupt_reads) {
      fail(step, "obs incoherence: " + std::to_string(total.read_repairs) +
                     " read repairs > " + std::to_string(total.corrupt_reads) +
                     " corrupt reads");
      return;
    }
    if (cfg_.cluster) {
      // Membership belief agreement: after churn quiesces, every live member
      // holds the same ring (version + order-insensitive fingerprint) as the
      // runner's authoritative view.
      for (usize j = 0; j < slots_.size(); ++j) {
        if (!slots_[j].active || !slots_[j].node) {
          continue;
        }
        if (slots_[j].node->ring_version() != view_.ring.version() ||
            slots_[j].node->ring_fingerprint() != view_.ring.fingerprint()) {
          fail(step, "node " + std::to_string(j) + " ring belief diverged (version " +
                         std::to_string(slots_[j].node->ring_version()) + " vs " +
                         std::to_string(view_.ring.version()) + ")");
          return;
        }
      }
      // Hint coherence: a delivered hint was once written (across all
      // incarnations — the same park-then-drain shape as pushed/applied).
      if (total.hints_delivered > total.hints_written) {
        fail(step, "obs incoherence: " + std::to_string(total.hints_delivered) +
                       " hints delivered > " + std::to_string(total.hints_written) + " written");
        return;
      }
    }
    ++report_.checks;
  }

  // Runs Merkle exchanges between every ordered pair of live members until a
  // full round comes back clean (every pass found matching roots). Bounded:
  // with the fabric healed this converges in a handful of rounds — each pass
  // strictly raises some key's seq somewhere or is clean — so a round limit
  // that trips means repair itself is broken.
  bool ae_converge(usize step) {
    for (int round = 0; round < 8; ++round) {
      bool all_clean = true;
      for (auto& slot : slots_) {
        if (!slot.active || !slot.ae) {
          continue;
        }
        for (auto& peer : slots_) {
          if (&peer == &slot || !peer.active || !peer.node) {
            continue;
          }
          peer.node->grant_tokens(64 * 1'000'000);  // quiesce is not an overload test
          const u64 clean_before = slot.ae->stats().clean_passes;
          (void)slot.ae->sync_with(BsPeer{peer.addr, kPort});
          if (slot.ae->stats().clean_passes != clean_before + 1) {
            all_clean = false;
          }
        }
      }
      for (int i = 0; i < 32; ++i) {
        pump_all();
      }
      if (all_clean) {
        return true;
      }
    }
    fail(step, "anti-entropy failed to converge at quiesce");
    return false;
  }

  // Every live member reclaims its acknowledged tombstones. The first
  // member's pass usually clears the cluster (the ack round pushes the
  // tombstone to every peer and kTombstoneGc reclaims it there), leaving the
  // rest clean and cheap.
  void run_tombstone_gc() {
    for (auto& slot : slots_) {
      if (!slot.active || !slot.node) {
        continue;
      }
      for (auto& peer : slots_) {
        if (peer.active && peer.node) {
          peer.node->grant_tokens(64 * 1'000'000);
        }
      }
      (void)slot.node->gc_tombstones(64);
      for (int i = 0; i < 32; ++i) {
        pump_all();
      }
    }
  }

  bool check_heal_invariants(usize step) {
    // Converged means CONVERGED: every live member's Merkle root must agree
    // (quiesce anti-entropy runs whole-inventory passes between all pairs, so
    // at this point the inventories are mirrors).
    std::vector<std::vector<BlockKeyInfo>> invs;
    std::vector<usize> inv_slot;
    for (usize j = 0; j < slots_.size(); ++j) {
      if (slots_[j].active && slots_[j].node) {
        invs.push_back(slots_[j].node->list());
        inv_slot.push_back(j);
      }
    }
    if (invs.empty()) {
      return true;
    }
    const u32 root0 = MerkleTree::build(invs[0]).root();
    for (usize k = 1; k < invs.size(); ++k) {
      if (MerkleTree::build(invs[k]).root() != root0) {
        fail(step, "merkle root of node " + std::to_string(inv_slot[k]) +
                       " diverges from node " + std::to_string(inv_slot[0]) +
                       " after anti-entropy");
        return false;
      }
    }
    // Roots agree, so invs[0] IS the converged cluster state. Check it
    // against every key's recorded history.
    std::map<std::string, const BlockKeyInfo*> converged;
    for (const auto& e : invs[0]) {
      converged[e.key] = &e;
    }
    for (const auto& [key, h] : histories_) {
      if (h.acked_floor == 0) {
        continue;  // nothing acknowledged (or the floor was lost to a re-image)
      }
      auto it = converged.find(key);
      if (it == converged.end()) {
        // Absent everywhere. Legal only if some attempted delete at or above
        // the floor may have landed and its tombstone has been reclaimed.
        bool del_covers = false;
        for (const auto& w : h.writes) {
          if (w.tombstone && w.seq >= h.acked_floor) {
            del_covers = true;
            break;
          }
        }
        if (!del_covers) {
          fail(step, "acked put of " + key + " vanished from the converged state");
          return false;
        }
        continue;
      }
      if (it->second->seq < h.acked_floor) {
        fail(step, "converged " + key + " at stamp " + std::to_string(it->second->seq) +
                       " older than acked floor " + std::to_string(h.acked_floor));
        return false;
      }
      if (h.acked_is_del && h.max_attempted_seq() <= h.acked_floor &&
          !it->second->tombstone) {
        fail(step, "resurrection: " + key + " live at stamp " +
                       std::to_string(it->second->seq) + " after acked delete at " +
                       std::to_string(h.acked_floor) + " with no later write");
        return false;
      }
    }
    return true;
  }

  void fail(usize step, const std::string& what) {
    char seed_hex[32];
    std::snprintf(seed_hex, sizeof(seed_hex), "0x%llx",
                  static_cast<unsigned long long>(cfg_.seed));
    report_.ok = false;
    report_.message = "chaos invariant violated at step " + std::to_string(step) + ": " + what +
                      " — replay with ChaosConfig{.seed = " + seed_hex + "}";
  }

  // Folds a node incarnation's obs counters into the run-cumulative totals.
  // Called right before a crash destroys the incarnation (its registry
  // counters stay put, but the rebooted node gets a fresh instance prefix)
  // and once per surviving node at finalize.
  void harvest_node_stats(const NodeSlot& slot) {
    if (slot.node) {
      BlockStoreStats s = slot.node->stats();
      report_.read_repairs += s.read_repairs;
      report_.replicas_pushed += s.replicas_pushed;
      report_.replicas_applied += s.replicas_applied;
      report_.corrupt_reads += s.corrupt_reads;
      report_.sheds += s.sheds;
      report_.stale_ignored += s.stale_ignored;
      report_.hints_written += s.hints_written;
      report_.hints_delivered += s.hints_delivered;
      report_.rebalanced += s.handoffs;
      report_.hints_dropped += s.hints_dropped;
      report_.tombstones_written += s.tombstones_written;
      report_.tombstones_gced += s.tombstones_gced;
    }
  }

  // Folds a repair scheduler's stats into the run totals (same lifecycle as
  // harvest_node_stats: at crash/leave before the incarnation dies, and once
  // per survivor at finalize).
  void harvest_ae_stats(const NodeSlot& slot) {
    if (slot.ae) {
      const RepairStats& s = slot.ae->stats();
      report_.ae_passes += s.passes;
      report_.ae_clean_passes += s.clean_passes;
      report_.ae_pulled += s.pulled;
      report_.ae_pushed += s.pushed;
      report_.ae_bytes += s.bytes_sent + s.bytes_received;
      ae_rpcs_harvested_ += s.rpcs;
    }
  }

  // Run-cumulative counter totals at this instant: everything harvested from
  // dead incarnations plus the live nodes' current values.
  BlockStoreStats cumulative_stats() const {
    BlockStoreStats total;
    total.replicas_pushed = report_.replicas_pushed;
    total.replicas_applied = report_.replicas_applied;
    total.corrupt_reads = report_.corrupt_reads;
    total.read_repairs = report_.read_repairs;
    total.sheds = report_.sheds;
    total.stale_ignored = report_.stale_ignored;
    total.hints_written = report_.hints_written;
    total.hints_delivered = report_.hints_delivered;
    for (const auto& slot : slots_) {
      if (slot.node) {
        BlockStoreStats s = slot.node->stats();
        total.replicas_pushed += s.replicas_pushed;
        total.replicas_applied += s.replicas_applied;
        total.corrupt_reads += s.corrupt_reads;
        total.read_repairs += s.read_repairs;
        total.sheds += s.sheds;
        total.stale_ignored += s.stale_ignored;
        total.hints_written += s.hints_written;
        total.hints_delivered += s.hints_delivered;
      }
    }
    return total;
  }

  void finalize_report() {
    for (const auto& slot : slots_) {
      harvest_node_stats(slot);
      harvest_ae_stats(slot);
      if (slot.disk) {
        // Devices outlive node incarnations, so bit-rot totals are read once
        // here instead of being harvested per reboot.
        report_.bit_rot_reads += slot.disk->stats().bit_rot_reads;
      }
    }
    report_.fault_fires = FaultRegistry::global().total_fires();
    report_.client_failovers = client_->retry_stats().failovers;
    report_.client_retries = client_->retry_stats().retries;
    if (report_.message.empty()) {
      report_.ok = true;
      report_.message = "chaos schedule completed, invariant intact";
    }
  }

  // A running partition flap storm: `(a, b)` toggles cut/healed once per
  // schedule step until the toggle budget is spent.
  struct Flap {
    LinkAddr a = 0;
    LinkAddr b = 0;
    usize toggles_left = 0;
    bool cut = false;
  };

  static constexpr u64 kAeRpcAttempts = 2;  // AntiEntropyConfig default

  ChaosConfig cfg_;
  Rng sched_rng_;
  Network net_;
  std::vector<NodeSlot> slots_;
  std::unique_ptr<ChaosHost> client_host_;
  LinkAddr client_addr_ = 0;
  std::unique_ptr<BlockStoreClient> client_;
  std::vector<std::pair<LinkAddr, LinkAddr>> cuts_;
  std::map<std::string, KeyBelief> beliefs_;
  ClusterView view_;  // cluster mode: the runner's authoritative membership
  std::vector<Flap> flaps_;              // heal mode: running flap storms
  std::map<usize, usize> slow_until_;    // heal mode: slot -> spell expiry step
  std::map<std::string, KeyHistory> histories_;  // heal mode: lin-checker state
  usize quiesces_ = 0;                   // heal mode: GC cadence counter
  u64 ae_rpcs_harvested_ = 0;            // repair rpcs from dead incarnations
  ChaosReport report_;
};

}  // namespace

ChaosReport run_chaos(const ChaosConfig& config) { return ChaosRunner(config).run(); }

}  // namespace vnros
