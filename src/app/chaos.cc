#include "src/app/chaos.h"

#include <cstdio>
#include <map>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "src/app/blockstore.h"
#include "src/base/contracts.h"
#include "src/base/fault.h"
#include "src/base/log.h"
#include "src/base/rng.h"
#include "src/hw/block_device.h"
#include "src/hw/network.h"
#include "src/kernel/kernel.h"
#include "src/kernel/syscall.h"
#include "src/obs/registry.h"

namespace vnros {
namespace {

constexpr Port kPort = 9000;
constexpr u64 kDiskSectors = 16384;

// One simulated machine with a ready-to-use process and Sys facade (the
// app_vcs Host pattern, extended with the reboot knobs).
struct ChaosHost {
  Kernel kernel;
  SyscallDispatcher disp;
  Pid pid;
  Sys sys;

  ChaosHost(Network* net, BlockDevice* disk, bool recover, std::optional<LinkAddr> addr)
      : kernel(make_config(net, disk, recover, addr)),
        disp(kernel),
        pid(boot_pid(disp)),
        sys(disp, pid, 0) {}

  static KernelConfig make_config(Network* net, BlockDevice* disk, bool recover,
                                  std::optional<LinkAddr> addr) {
    KernelConfig config;
    config.network = net;
    config.disk = disk;
    config.recover_fs = recover;
    config.link_addr = addr;
    config.format_on_recovery_failure = recover;
    return config;
  }

  static Pid boot_pid(SyscallDispatcher& disp) {
    Sys boot(disp, kInvalidPid, 0);
    auto pid = boot.spawn();
    VNROS_CHECK(pid.ok());
    return pid.value();
  }
};

// What the client believes about one key. `history` is every value ever
// attempted (acked or not) — the universe of non-garbage bytes. `certain`
// is set only while the latest client op on the key was a successful put.
struct KeyBelief {
  std::vector<std::vector<u8>> history;
  std::optional<std::vector<u8>> certain;

  bool in_history(const std::vector<u8>& v) const {
    for (const auto& h : history) {
      if (h == v) {
        return true;
      }
    }
    return false;
  }
};

class ChaosRunner {
 public:
  explicit ChaosRunner(const ChaosConfig& cfg) : cfg_(cfg), sched_rng_(cfg.seed) {
    VNROS_CHECK(cfg_.nodes >= 2);
    report_.seed = cfg_.seed;
  }

  ChaosReport run() {
    auto& reg = FaultRegistry::global();
    reg.disarm_all();
    reg.reset_stats();
    reg.reseed(cfg_.seed ^ 0xFA17'FA17ull);

    boot_cluster();

    // Arm the span tracer on the client kernel's virtual clock for the whole
    // schedule: spans (blockstore RPCs, fs journal commits, RTP retransmits)
    // replay bit-identically from the seed like everything else.
    SpanTracer& tracer = ObsRegistry::global().tracer();
    const u64 spans_before = tracer.recorded();
    tracer.set_clock(&client_host_->kernel.clock());
    tracer.set_enabled(true);

    for (usize step = 0; step < cfg_.steps && report_.message.empty(); ++step) {
      schedule_events(step);
      if (!report_.message.empty()) {
        break;
      }
      client_op(step);
      if ((step + 1) % cfg_.check_every == 0) {
        quiesce_and_check(step);
      }
    }
    if (report_.message.empty()) {
      quiesce_and_check(cfg_.steps);
    }

    finalize_report();
    report_.spans_recorded = tracer.recorded() - spans_before;
    tracer.set_enabled(false);
    tracer.set_clock(nullptr);
    reg.disarm_all();
    return report_;
  }

 private:
  struct NodeSlot {
    std::unique_ptr<BlockDevice> disk;
    std::unique_ptr<ChaosHost> host;
    std::unique_ptr<BlockStoreNode> node;
    LinkAddr addr = 0;
    std::string fault_prefix;
  };

  void boot_cluster() {
    slots_.resize(cfg_.nodes);
    for (usize i = 0; i < cfg_.nodes; ++i) {
      auto& slot = slots_[i];
      slot.fault_prefix = "chaos/disk" + std::to_string(i);
      slot.disk = std::make_unique<BlockDevice>(kDiskSectors, cfg_.seed * 1000003ull + i,
                                                slot.fault_prefix);
      slot.host = std::make_unique<ChaosHost>(&net_, slot.disk.get(), /*recover=*/false,
                                              std::nullopt);
      slot.addr = slot.host->kernel.net_addr();
    }
    for (usize i = 0; i < cfg_.nodes; ++i) {
      make_node(i);
    }
    client_host_ = std::make_unique<ChaosHost>(&net_, nullptr, /*recover=*/false, std::nullopt);
    client_addr_ = client_host_->kernel.net_addr();

    RetryPolicy policy;
    policy.max_attempts = 6;
    policy.polls_per_attempt = 48;
    policy.backoff_base_polls = 4;
    policy.backoff_max_polls = 64;
    policy.jitter_ppm = 250'000;
    policy.deadline_polls = 2'000;
    client_ = std::make_unique<BlockStoreClient>(client_host_->sys, slots_[0].addr, kPort,
                                                 [this] { pump_all(); }, policy);
    for (usize i = 1; i < cfg_.nodes; ++i) {
      client_->add_failover(slots_[i].addr, kPort);
    }
    VNROS_CHECK(client_->init().ok());
  }

  void make_node(usize i) {
    auto& slot = slots_[i];
    std::vector<BsPeer> peers;
    for (usize j = 0; j < cfg_.nodes; ++j) {
      if (j != i) {
        peers.push_back(BsPeer{slots_[j].addr, kPort});
      }
    }
    slot.node = std::make_unique<BlockStoreNode>(slot.host->sys, kPort, std::move(peers),
                                                 [this, i] { pump_except(i); });
    VNROS_CHECK(slot.node->init().ok());
  }

  void pump_all() {
    net_.release_held();
    for (auto& slot : slots_) {
      if (slot.node) {
        slot.node->serve_once();
      }
    }
  }

  void pump_except(usize skip) {
    net_.release_held();
    for (usize j = 0; j < slots_.size(); ++j) {
      if (j != skip && slots_[j].node) {
        slots_[j].node->serve_once();
      }
    }
  }

  // --- Adversarial events ---------------------------------------------------

  void schedule_events(usize step) {
    auto& reg = FaultRegistry::global();
    if (sched_rng_.chance_ppm(cfg_.crash_ppm)) {
      crash_node(sched_rng_.next_below(cfg_.nodes), step);
      if (!report_.message.empty()) {
        return;
      }
    }
    if (sched_rng_.chance_ppm(cfg_.partition_ppm)) {
      // Cut a random pair among {nodes, client}.
      std::vector<LinkAddr> ends;
      for (const auto& slot : slots_) {
        ends.push_back(slot.addr);
      }
      ends.push_back(client_addr_);
      LinkAddr a = ends[sched_rng_.next_below(ends.size())];
      LinkAddr b = ends[sched_rng_.next_below(ends.size())];
      if (a != b && !net_.partitioned(a, b)) {
        net_.partition(a, b);
        cuts_.push_back({a, b});
        ++report_.partitions;
      }
    }
    if (!cuts_.empty() && sched_rng_.chance_ppm(cfg_.heal_ppm)) {
      usize idx = sched_rng_.next_below(cuts_.size());
      net_.heal(cuts_[idx].first, cuts_[idx].second);
      cuts_.erase(cuts_.begin() + static_cast<isize>(idx));
      ++report_.heals;
    }
    FaultSpec one_shot;
    one_shot.probability_ppm = 1'000'000;
    one_shot.one_shot = true;
    if (sched_rng_.chance_ppm(cfg_.disk_fault_ppm)) {
      const auto& slot = slots_[sched_rng_.next_below(cfg_.nodes)];
      const char* kind = sched_rng_.chance_ppm(500'000) ? "/write_error" : "/read_error";
      reg.arm(slot.fault_prefix + kind, one_shot);
      ++report_.faults_armed;
    }
    if (sched_rng_.chance_ppm(cfg_.torn_write_ppm)) {
      const auto& slot = slots_[sched_rng_.next_below(cfg_.nodes)];
      reg.arm(slot.fault_prefix + "/torn_write", one_shot);
      ++report_.faults_armed;
    }
    if (sched_rng_.chance_ppm(cfg_.syscall_fault_ppm)) {
      reg.arm("syscall/io_error", one_shot);
      ++report_.faults_armed;
    }
    if (sched_rng_.chance_ppm(cfg_.oom_ppm)) {
      reg.arm("frame_alloc/oom", one_shot);
      ++report_.faults_armed;
      // Steady-state block-store traffic allocates no frames, so probe the
      // site from the client host: a small mapping that either succeeds (and
      // is unmapped) or absorbs the injected kNoMemory.
      auto probe = client_host_->sys.mmap(4096, /*writable=*/true);
      if (probe.ok()) {
        (void)client_host_->sys.munmap(probe.value());
      }
    }
  }

  void crash_node(usize i, usize step) {
    auto& reg = FaultRegistry::global();
    auto& slot = slots_[i];
    ++report_.crashes;

    // Global (per-process) sites are always quiesced across a reboot; the
    // node's own disk sites usually are too, but some crashes reboot with
    // them still armed — recovery must then either survive the fault or
    // fail loudly into the re-image + anti-entropy path.
    reg.disarm("syscall/io_error");
    reg.disarm("syscall/no_memory");
    reg.disarm("frame_alloc/oom");
    const bool dirty_reboot = sched_rng_.chance_ppm(300'000);
    if (!dirty_reboot) {
      reg.disarm_prefix(slot.fault_prefix);
    }

    harvest_node_stats(slot);
    slot.node.reset();
    slot.host.reset();
    slot.disk->crash(cfg_.persist_ppm, cfg_.torn_crash_ppm);

    // Probe recovery first so the runner knows whether the kernel's
    // format-on-failure fallback will engage (the probe is idempotent:
    // recover() re-checkpoints, so running it twice recovers the same state).
    const bool recoverable = [&] {
      auto probe = MemFs::recover(*slot.disk);
      return probe.ok();
    }();

    slot.host = std::make_unique<ChaosHost>(&net_, slot.disk.get(), /*recover=*/true, slot.addr);
    make_node(i);

    if (!recoverable) {
      ++report_.reimages;
      VNROS_LOG_DEBUG("chaos", "node %zu unrecoverable at step %zu: re-imaged", i, step);
      anti_entropy_into(i);
      downgrade_lost_keys();
    }
  }

  // Repopulates a re-imaged node from the surviving replicas' local views.
  void anti_entropy_into(usize i) {
    for (usize j = 0; j < slots_.size(); ++j) {
      if (j == i || !slots_[j].node) {
        continue;
      }
      for (const auto& [key, value] : slots_[j].node->view()) {
        auto have = slots_[i].node->get(key);
        if (have.ok() && have.value() == value) {
          continue;
        }
        if (!have.ok()) {
          (void)slots_[i].node->put(key, value);
        }
      }
    }
  }

  // A re-image destroys everything on one disk. Any certain key whose acked
  // bytes now exist on no replica was only ever held by the re-imaged node
  // (best-effort replication never reached a peer): that is legitimate data
  // loss under total-disk failure, not a correctness bug — downgrade the key
  // to uncertain instead of failing the invariant on it later.
  void downgrade_lost_keys() {
    std::vector<std::map<std::string, std::vector<u8>>> views;
    for (const auto& slot : slots_) {
      views.push_back(slot.node->view());
    }
    for (auto& [key, belief] : beliefs_) {
      if (!belief.certain) {
        continue;
      }
      bool held = false;
      for (const auto& view : views) {
        auto it = view.find(key);
        if (it != view.end() && it->second == *belief.certain) {
          held = true;
          break;
        }
      }
      if (!held) {
        VNROS_LOG_DEBUG("chaos", "certain key %s lost with its only replica", key.c_str());
        belief.certain.reset();
      }
    }
  }

  // --- Client workload ------------------------------------------------------

  void client_op(usize step) {
    std::string key = "key" + std::to_string(sched_rng_.next_below(cfg_.keys));
    auto& belief = beliefs_[key];
    ++report_.ops;
    u64 kind = sched_rng_.next_below(10);
    if (kind < 6) {
      std::vector<u8> value(sched_rng_.next_range(1, cfg_.max_value_bytes));
      for (auto& b : value) {
        b = static_cast<u8>(sched_rng_.next_u64());
      }
      belief.history.push_back(value);
      auto r = client_->put(key, value);
      if (r.ok()) {
        ++report_.ops_ok;
        belief.certain = std::move(value);
      } else {
        // Unacked: the put may or may not have applied anywhere (it may even
        // have applied and destroyed the previous copy mid-overwrite), so
        // nothing about this key is certain any more.
        ++report_.ops_failed;
        belief.certain.reset();
      }
    } else if (kind < 9) {
      auto r = client_->get(key);
      if (r.ok()) {
        ++report_.ops_ok;
        if (!belief.in_history(r.value())) {
          fail(step, "get(" + key + ") returned bytes the client never wrote");
        }
      } else {
        ++report_.ops_failed;  // kNotFound/corrupt/timeout: all acceptable
      }
    } else {
      auto r = client_->del(key);
      if (r.ok()) {
        ++report_.ops_ok;
      } else {
        ++report_.ops_failed;
      }
      // Acked or not, stale replicas may still hold (and later serve or
      // repair from) older values, so a delete only removes certainty.
      belief.certain.reset();
    }
  }

  // --- Invariant ------------------------------------------------------------

  void quiesce_and_check(usize step) {
    FaultRegistry::global().disarm_all();
    net_.heal_all();
    cuts_.clear();
    for (int i = 0; i < 256; ++i) {
      pump_all();  // drain every in-flight datagram through the servers
    }

    std::vector<std::map<std::string, std::vector<u8>>> views;
    for (const auto& slot : slots_) {
      views.push_back(slot.node->view());
    }
    for (const auto& [key, belief] : beliefs_) {
      for (usize j = 0; j < views.size(); ++j) {
        auto it = views[j].find(key);
        if (it != views[j].end() && !belief.in_history(it->second)) {
          fail(step, "node " + std::to_string(j) + " stores garbage for " + key);
          return;
        }
      }
      if (belief.certain) {
        bool held = false;
        for (const auto& view : views) {
          auto it = view.find(key);
          if (it != view.end() && it->second == *belief.certain) {
            held = true;
            break;
          }
        }
        if (!held) {
          fail(step, "acked put of " + key + " readable on no node after quiesce");
          return;
        }
      }
    }

    // Obs coherence across the cluster's whole history (incarnations are
    // accumulated at crash time). Every applied replica was pushed by some
    // peer — the runner's fabric never duplicates datagrams, so applications
    // can only lag, not lead — and every read repair was triggered by a
    // corrupt local read.
    BlockStoreStats total = cumulative_stats();
    if (total.replicas_applied > total.replicas_pushed) {
      fail(step, "obs incoherence: " + std::to_string(total.replicas_applied) +
                     " replicas applied > " + std::to_string(total.replicas_pushed) +
                     " pushed");
      return;
    }
    if (total.read_repairs > total.corrupt_reads) {
      fail(step, "obs incoherence: " + std::to_string(total.read_repairs) +
                     " read repairs > " + std::to_string(total.corrupt_reads) +
                     " corrupt reads");
      return;
    }
    ++report_.checks;
  }

  void fail(usize step, const std::string& what) {
    char seed_hex[32];
    std::snprintf(seed_hex, sizeof(seed_hex), "0x%llx",
                  static_cast<unsigned long long>(cfg_.seed));
    report_.ok = false;
    report_.message = "chaos invariant violated at step " + std::to_string(step) + ": " + what +
                      " — replay with ChaosConfig{.seed = " + seed_hex + "}";
  }

  // Folds a node incarnation's obs counters into the run-cumulative totals.
  // Called right before a crash destroys the incarnation (its registry
  // counters stay put, but the rebooted node gets a fresh instance prefix)
  // and once per surviving node at finalize.
  void harvest_node_stats(const NodeSlot& slot) {
    if (slot.node) {
      BlockStoreStats s = slot.node->stats();
      report_.read_repairs += s.read_repairs;
      report_.replicas_pushed += s.replicas_pushed;
      report_.replicas_applied += s.replicas_applied;
      report_.corrupt_reads += s.corrupt_reads;
    }
  }

  // Run-cumulative counter totals at this instant: everything harvested from
  // dead incarnations plus the live nodes' current values.
  BlockStoreStats cumulative_stats() const {
    BlockStoreStats total;
    total.replicas_pushed = report_.replicas_pushed;
    total.replicas_applied = report_.replicas_applied;
    total.corrupt_reads = report_.corrupt_reads;
    total.read_repairs = report_.read_repairs;
    for (const auto& slot : slots_) {
      if (slot.node) {
        BlockStoreStats s = slot.node->stats();
        total.replicas_pushed += s.replicas_pushed;
        total.replicas_applied += s.replicas_applied;
        total.corrupt_reads += s.corrupt_reads;
        total.read_repairs += s.read_repairs;
      }
    }
    return total;
  }

  void finalize_report() {
    for (const auto& slot : slots_) {
      harvest_node_stats(slot);
    }
    report_.fault_fires = FaultRegistry::global().total_fires();
    report_.client_failovers = client_->retry_stats().failovers;
    report_.client_retries = client_->retry_stats().retries;
    if (report_.message.empty()) {
      report_.ok = true;
      report_.message = "chaos schedule completed, invariant intact";
    }
  }

  ChaosConfig cfg_;
  Rng sched_rng_;
  Network net_;
  std::vector<NodeSlot> slots_;
  std::unique_ptr<ChaosHost> client_host_;
  LinkAddr client_addr_ = 0;
  std::unique_ptr<BlockStoreClient> client_;
  std::vector<std::pair<LinkAddr, LinkAddr>> cuts_;
  std::map<std::string, KeyBelief> beliefs_;
  ChaosReport report_;
};

}  // namespace

ChaosReport run_chaos(const ChaosConfig& config) { return ChaosRunner(config).run(); }

}  // namespace vnros
