// Consistent-hash placement ring with virtual nodes.
//
// Placement — who owns which key — is a pure function of the ring's
// membership set, so two parties holding equal rings compute equal owner
// lists for every key. That is what makes placement a *checkable
// proposition* rather than a config file: the app/placement_refines VC
// compares the ring's owner function against what every replica actually
// stores at each quiesce point, and the chaos harness asserts that every
// node's ring fingerprint matches the coordinator's after membership churn.
//
// Each member contributes `vnodes_per_node` points on a 64-bit hash circle;
// owners(key, n) walks clockwise from hash(key) collecting the first n
// distinct members. Virtual nodes smooth the load split (see
// RingTest.BalancedSplit) and bound the reshuffle on join/leave to roughly
// 1/|members| of the keyspace (RingTest.MinimalDisruption).
//
// Everything here is deterministic and seed-free: hashes are fixed
// functions of (member id, replica index) and of the key bytes, so a ring
// built from the same membership events is bit-identical across processes
// and across runs — the property fingerprint() summarizes.
#ifndef VNROS_SRC_APP_RING_H_
#define VNROS_SRC_APP_RING_H_

#include <map>
#include <string_view>
#include <vector>

#include "src/base/types.h"

namespace vnros {

// Identity of a blockstore cluster member. Distinct from the NUMA NodeId in
// base/types.h: this names a storage node in the application-level cluster.
using BsNodeId = u32;

class PlacementRing {
 public:
  explicit PlacementRing(usize vnodes_per_node = 64);

  // Membership. Both are idempotent (re-adding a present member or removing
  // an absent one is a no-op) and bump version() only on actual change.
  void add_node(BsNodeId id);
  void remove_node(BsNodeId id);

  bool contains(BsNodeId id) const;
  usize num_nodes() const { return members_.size(); }
  std::vector<BsNodeId> nodes() const;  // sorted by id

  // The first `n` distinct members clockwise from hash(key); fewer when the
  // ring has fewer members. owners(key, n)[0] == primary(key).
  std::vector<BsNodeId> owners(std::string_view key, usize n) const;
  BsNodeId primary(std::string_view key) const;  // ring must be non-empty

  // Monotone membership-change counter. Two rings that applied the same
  // change sequence agree on it; chaos uses it as the cheap belief check
  // before comparing fingerprints.
  u64 version() const { return version_; }

  // Order-insensitive digest of the point set: equal membership ⇒ equal
  // fingerprint, regardless of join/leave history. The strong belief check.
  u64 fingerprint() const;

  bool operator==(const PlacementRing& other) const {
    return points_ == other.points_;
  }

  // Pure hash functions, exposed for tests/VCs that re-derive placement.
  static u64 hash_point(BsNodeId id, u32 replica_idx);
  static u64 hash_key(std::string_view key);

 private:
  usize vnodes_per_node_;
  u64 version_ = 0;
  std::map<u64, BsNodeId> points_;       // hash circle, sorted by point
  std::map<BsNodeId, usize> members_;    // id -> points contributed
};

}  // namespace vnros

#endif  // VNROS_SRC_APP_RING_H_
