// Verification conditions for the block-store application — the paper's
// "verified storage node on a verified OS" end-to-end story. Every check
// goes through the full stack: client Sys -> UDP -> fabric -> server Sys ->
// filesystem -> journal -> block device.
#include "src/app/vcs.h"

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/app/anti_entropy.h"
#include "src/app/blockstore.h"
#include "src/base/fault.h"
#include "src/base/rng.h"
#include "src/kernel/kernel.h"
#include "src/kernel/syscall.h"

namespace vnros {
namespace {

// One simulated machine with a ready-to-use process and Sys facade.
struct Host {
  Kernel kernel;
  SyscallDispatcher disp;
  Pid pid;
  Sys sys;

  explicit Host(Network* net, BlockDevice* disk = nullptr, bool recover = false)
      : kernel(make_config(net, disk, recover)),
        disp(kernel),
        pid(boot_pid(disp)),
        sys(disp, pid, 0) {}

  static KernelConfig make_config(Network* net, BlockDevice* disk, bool recover) {
    KernelConfig config;
    config.network = net;
    config.disk = disk;
    config.recover_fs = recover;
    return config;
  }

  static Pid boot_pid(SyscallDispatcher& disp) {
    Sys boot(disp, kInvalidPid, 0);
    auto pid = boot.spawn();
    VNROS_CHECK(pid.ok());
    return pid.value();
  }
};

std::vector<u8> random_value(Rng& rng, usize max_len = 2000) {
  std::vector<u8> v(rng.next_range(1, max_len));
  for (auto& b : v) {
    b = static_cast<u8>(rng.next_u64());
  }
  return v;
}

std::string random_key(Rng& rng) {
  static const char* keys[] = {"alpha", "beta", "gamma", "delta", "epsilon",
                               "zeta",  "eta",  "theta", "iota",  "kappa"};
  return keys[rng.next_below(10)];
}

// --- Local (single-host) behaviour ------------------------------------------------

VcOutcome vc_put_get_roundtrip() {
  Network net;
  Host host(&net);
  BlockStoreNode node(host.sys, 9000);
  if (!node.init().ok()) {
    return VcOutcome::fail("init failed");
  }
  std::vector<u8> v1{1, 2, 3, 4, 5};
  std::vector<u8> v2{9, 9};
  if (!node.put("key", v1).ok()) {
    return VcOutcome::fail("put failed");
  }
  auto got = node.get("key");
  if (!got.ok() || got.value() != v1) {
    return VcOutcome::fail("get returned wrong bytes");
  }
  // Overwrite.
  if (!node.put("key", v2).ok()) {
    return VcOutcome::fail("overwrite failed");
  }
  got = node.get("key");
  if (!got.ok() || got.value() != v2) {
    return VcOutcome::fail("overwrite not visible");
  }
  // Delete.
  if (!node.del("key").ok()) {
    return VcOutcome::fail("del failed");
  }
  auto missing = node.get("key");
  if (missing.ok() || missing.error() != ErrorCode::kNotFound) {
    return VcOutcome::fail("deleted key still readable");
  }
  // DEL is "ensure absent": deleting again is a success (idempotency).
  if (!node.del("key").ok()) {
    return VcOutcome::fail("idempotent delete failed");
  }
  // Empty-ish and binary keys work too (hex encoding).
  std::string weird_key("\x00\xFFpath/../:*", 10);
  if (!node.put(weird_key, v1).ok() || !node.get(weird_key).ok()) {
    return VcOutcome::fail("binary key mishandled");
  }
  return VcOutcome::pass();
}

// --- End-to-end refinement over the network ----------------------------------------

VcOutcome vc_refines_map(u64 seed, FabricConfig fabric, usize ops) {
  Network net(fabric, seed ^ 0xFAB);
  Host server(&net);
  Host client_host(&net);
  BlockStoreNode node(server.sys, 9000);
  if (!node.init().ok()) {
    return VcOutcome::fail("server init failed");
  }
  BlockStoreClient client(client_host.sys, server.kernel.net_addr(), 9000,
                          [&] { node.serve_once(); });
  if (!client.init().ok()) {
    return VcOutcome::fail("client init failed");
  }

  Rng rng(seed);
  std::map<std::string, std::vector<u8>> model;
  for (usize i = 0; i < ops; ++i) {
    std::string key = random_key(rng);
    switch (rng.next_below(3)) {
      case 0: {
        std::vector<u8> value = random_value(rng);
        auto r = client.put(key, value);
        if (!r.ok()) {
          return VcOutcome::fail("put failed: " + std::string(error_name(r.error())));
        }
        model[key] = value;
        break;
      }
      case 1: {
        auto r = client.get(key);
        auto it = model.find(key);
        if (it == model.end()) {
          if (r.ok() || r.error() != ErrorCode::kNotFound) {
            return VcOutcome::fail("get of absent key did not return NotFound");
          }
        } else if (!r.ok() || r.value() != it->second) {
          return VcOutcome::fail("get returned bytes differing from the last acked put");
        }
        break;
      }
      case 2: {
        // DEL is "ensure absent": succeeds whether or not the key existed.
        auto r = client.del(key);
        if (!r.ok()) {
          return VcOutcome::fail("del failed: " + std::string(error_name(r.error())));
        }
        model.erase(key);
        break;
      }
      default:
        break;
    }
  }
  if (node.view() != model) {
    return VcOutcome::fail("node abstract state diverged from the model");
  }
  return VcOutcome::pass();
}

// --- Crash recovery -------------------------------------------------------------------

VcOutcome vc_crash_recovery(u64 seed) {
  Network net;
  BlockDevice disk(16384, seed);
  std::map<std::string, std::vector<u8>> acked;
  {
    Host host(&net, &disk, /*recover=*/false);
    BlockStoreNode node(host.sys, 9000);
    if (!node.init().ok()) {
      return VcOutcome::fail("init failed");
    }
    Rng rng(seed);
    for (int i = 0; i < 25; ++i) {
      std::string key = random_key(rng) + std::to_string(i);
      std::vector<u8> value = random_value(rng, 800);
      if (!node.put(key, value).ok()) {
        return VcOutcome::fail("put failed");
      }
      acked[key] = value;  // put acks only after fsync
    }
    // Power failure: everything unflushed is at the mercy of the cache.
    disk.crash(300'000);
  }
  // Reboot: a fresh kernel mounts the same disk with journal recovery.
  Network net2;
  Host rebooted(&net2, &disk, /*recover=*/true);
  BlockStoreNode node(rebooted.sys, 9000);
  if (!node.init().ok()) {
    return VcOutcome::fail("re-init after recovery failed");
  }
  auto recovered = node.view();
  for (const auto& [key, value] : acked) {
    auto it = recovered.find(key);
    if (it == recovered.end()) {
      return VcOutcome::fail("acknowledged block lost across crash: " + key);
    }
    if (it->second != value) {
      return VcOutcome::fail("block bytes corrupted across crash: " + key);
    }
  }
  return VcOutcome::pass();
}

// --- Corruption detection ----------------------------------------------------------------

VcOutcome vc_corruption_detected() {
  Network net;
  Host host(&net);
  BlockStoreNode node(host.sys, 9000);
  if (!node.init().ok()) {
    return VcOutcome::fail("init failed");
  }
  std::vector<u8> value(300, 0x42);
  if (!node.put("victim", value).ok()) {
    return VcOutcome::fail("put failed");
  }
  // Flip one payload byte behind the node's back (bit rot).
  std::string path = BlockStoreNode::key_path("victim");
  auto fd = host.sys.open(path, 0);
  if (!fd.ok()) {
    return VcOutcome::fail("tamper open failed");
  }
  (void)host.sys.lseek(fd.value(), 100, SeekWhence::kSet);
  std::vector<u8> flip{0x43};
  (void)host.sys.write(fd.value(), flip);
  (void)host.sys.close(fd.value());

  auto got = node.get("victim");
  if (got.ok()) {
    return VcOutcome::fail("corrupted block returned as data");
  }
  if (got.error() != ErrorCode::kCorrupted) {
    return VcOutcome::fail("corruption surfaced as wrong error");
  }
  // Truncation is also corruption, not a short read.
  if (!node.put("victim2", value).ok()) {
    return VcOutcome::fail("second put failed");
  }
  (void)host.sys.truncate(BlockStoreNode::key_path("victim2"), 50);
  auto trunc = node.get("victim2");
  if (trunc.ok() || trunc.error() != ErrorCode::kCorrupted) {
    return VcOutcome::fail("truncated block not detected");
  }
  return VcOutcome::pass();
}

// --- Replication -----------------------------------------------------------------------------

VcOutcome vc_replication_push() {
  Network net;
  Host primary_host(&net);
  Host replica_host(&net);
  Host client_host(&net);

  BlockStoreNode replica(replica_host.sys, 9001);
  if (!replica.init().ok()) {
    return VcOutcome::fail("replica init failed");
  }
  BlockStoreNode primary(primary_host.sys, 9000,
                         {BsPeer{replica_host.kernel.net_addr(), 9001}});
  if (!primary.init().ok()) {
    return VcOutcome::fail("primary init failed");
  }
  BlockStoreClient client(client_host.sys, primary_host.kernel.net_addr(), 9000, [&] {
    primary.serve_once();
    replica.serve_once();
  });
  (void)client.init();

  std::vector<u8> value{7, 7, 7, 7};
  if (!client.put("replicated", value).ok()) {
    return VcOutcome::fail("put failed");
  }
  // Drain any pending replication pushes.
  for (int i = 0; i < 32; ++i) {
    primary.serve_once();
    replica.serve_once();
  }
  auto got = replica.get("replicated");
  if (!got.ok() || got.value() != value) {
    return VcOutcome::fail("block not replicated to the peer");
  }
  if (primary.stats().replicas_pushed == 0 || replica.stats().replicas_applied == 0) {
    return VcOutcome::fail("replication counters not advanced");
  }
  return VcOutcome::pass();
}


// Overwrite durability: an acked overwrite (not just the first put) survives
// a crash — the newest acknowledged value is the one recovered.
VcOutcome vc_overwrite_then_crash(u64 seed) {
  Network net;
  BlockDevice disk(16384, seed);
  std::vector<u8> v1(200, 0x01), v2(300, 0x02), v3(100, 0x03);
  {
    Host host(&net, &disk, false);
    BlockStoreNode node(host.sys, 9000);
    if (!node.init().ok()) {
      return VcOutcome::fail("init failed");
    }
    if (!node.put("k", v1).ok() || !node.put("k", v2).ok() || !node.put("k", v3).ok()) {
      return VcOutcome::fail("puts failed");
    }
    disk.crash(0);
  }
  Network net2;
  Host rebooted(&net2, &disk, true);
  BlockStoreNode node(rebooted.sys, 9000);
  if (!node.init().ok()) {
    return VcOutcome::fail("re-init failed");
  }
  auto got = node.get("k");
  if (!got.ok() || got.value() != v3) {
    return VcOutcome::fail("recovered value is not the last acknowledged overwrite");
  }
  return VcOutcome::pass();
}

// The abstract view stays exact through heavy mixed churn (local API).
VcOutcome vc_view_matches_after_churn(u64 seed) {
  Network net;
  Host host(&net);
  BlockStoreNode node(host.sys, 9000);
  if (!node.init().ok()) {
    return VcOutcome::fail("init failed");
  }
  Rng rng(seed);
  std::map<std::string, std::vector<u8>> model;
  for (int i = 0; i < 200; ++i) {
    std::string key = random_key(rng);
    if (rng.chance(3, 5)) {
      auto value = random_value(rng, 300);
      if (!node.put(key, value).ok()) {
        return VcOutcome::fail("put failed");
      }
      model[key] = value;
    } else {
      if (!node.del(key).ok()) {
        return VcOutcome::fail("del failed");
      }
      model.erase(key);
    }
  }
  if (node.view() != model) {
    return VcOutcome::fail("abstract view diverged from the op-by-op model");
  }
  return VcOutcome::pass();
}


// Anti-entropy: a replica that missed pushes (or rotted a block) converges
// to the primary after one sync pass, and a second pass repairs nothing.
VcOutcome vc_anti_entropy_sync(u64 seed) {
  Network net;
  Host primary_host(&net);
  Host replica_host(&net);
  Host syncer_host(&net);
  BlockStoreNode primary(primary_host.sys, 9000);  // no push peers: replica starts stale
  BlockStoreNode replica(replica_host.sys, 9001);
  if (!primary.init().ok() || !replica.init().ok()) {
    return VcOutcome::fail("init failed");
  }
  Rng rng(seed);
  for (int i = 0; i < 12; ++i) {
    std::string key = "blk" + std::to_string(i);
    if (!primary.put(key, random_value(rng, 400)).ok()) {
      return VcOutcome::fail("put failed");
    }
  }
  // Give the replica one stale block (old checksum must be repaired too).
  if (!replica.put("blk3", std::vector<u8>{0x0}).ok()) {
    return VcOutcome::fail("stale put failed");
  }
  BlockStoreClient syncer(syncer_host.sys, primary_host.kernel.net_addr(), 9000,
                          [&] { primary.serve_once(); });
  auto repaired = syncer.sync_into(replica);
  if (!repaired.ok()) {
    return VcOutcome::fail("sync failed: " + std::string(error_name(repaired.error())));
  }
  if (repaired.value() != 12) {
    return VcOutcome::fail("expected 12 repairs (11 missing + 1 divergent), got " +
                           std::to_string(repaired.value()));
  }
  if (replica.view() != primary.view()) {
    return VcOutcome::fail("replica did not converge to the primary");
  }
  auto second = syncer.sync_into(replica);
  if (!second.ok() || second.value() != 0) {
    return VcOutcome::fail("second sync pass was not a no-op");
  }
  return VcOutcome::pass();
}

// --- Read-repair ---------------------------------------------------------------------

// A locally-corrupted block is cured from a replica instead of surfacing
// kCorrupted to the client: fetch from the peer, verify, re-persist, serve.
VcOutcome vc_read_repair() {
  Network net;
  Host primary_host(&net);
  Host replica_host(&net);
  BlockStoreNode replica(replica_host.sys, 9001);
  if (!replica.init().ok()) {
    return VcOutcome::fail("replica init failed");
  }
  std::vector<BsPeer> peers{BsPeer{replica_host.kernel.net_addr(), 9001}};
  BlockStoreNode primary(primary_host.sys, 9000, peers, [&] { replica.serve_once(); });
  if (!primary.init().ok()) {
    return VcOutcome::fail("primary init failed");
  }

  std::vector<u8> value(300, 0x42);
  if (!primary.put("blk", value).ok()) {
    return VcOutcome::fail("put failed");
  }
  while (replica.serve_once()) {  // drain the replication push
  }
  if (replica.get("blk").error() != ErrorCode::kOk) {
    return VcOutcome::fail("replication push did not reach the replica");
  }

  // Rot a payload byte behind the primary's back.
  auto fd = primary_host.sys.open(BlockStoreNode::key_path("blk"), 0);
  if (!fd.ok()) {
    return VcOutcome::fail("tamper open failed");
  }
  (void)primary_host.sys.lseek(fd.value(), 100, SeekWhence::kSet);
  std::vector<u8> flip{0x43};
  (void)primary_host.sys.write(fd.value(), flip);
  (void)primary_host.sys.close(fd.value());

  if (primary.get("blk").error() != ErrorCode::kCorrupted) {
    return VcOutcome::fail("tampered block not detected as corrupt");
  }
  auto repaired = primary.get_or_repair("blk");
  if (!repaired.ok() || repaired.value() != value) {
    return VcOutcome::fail("read-repair did not return the replica's bytes");
  }
  if (primary.stats().read_repairs != 1) {
    return VcOutcome::fail("read-repair not counted");
  }
  // The cure was persisted: a plain local get succeeds now.
  auto after = primary.get("blk");
  if (!after.ok() || after.value() != value) {
    return VcOutcome::fail("repaired block not re-persisted locally");
  }
  return VcOutcome::pass();
}

// --- Retry policy / failover -----------------------------------------------------------

// With the primary partitioned away, the client's failover rotation lands
// the operation on the second replica instead of timing out.
VcOutcome vc_retry_failover() {
  Network net;
  Host h0(&net);
  Host h1(&net);
  Host client_host(&net);
  BlockStoreNode n0(h0.sys, 9000);
  BlockStoreNode n1(h1.sys, 9000);
  if (!n0.init().ok() || !n1.init().ok()) {
    return VcOutcome::fail("node init failed");
  }
  RetryPolicy policy;
  policy.max_attempts = 6;
  policy.polls_per_attempt = 16;
  policy.backoff_base_polls = 2;
  policy.backoff_max_polls = 16;
  policy.jitter_ppm = 250'000;
  BlockStoreClient client(client_host.sys, h0.kernel.net_addr(), 9000,
                          [&] {
                            n0.serve_once();
                            n1.serve_once();
                          },
                          policy);
  client.add_failover(h1.kernel.net_addr(), 9000);
  (void)client.init();

  net.partition(client_host.kernel.net_addr(), h0.kernel.net_addr());
  std::vector<u8> value{9, 9, 9};
  if (!client.put("k", value).ok()) {
    return VcOutcome::fail("put did not fail over around the partition");
  }
  if (client.retry_stats().failovers == 0) {
    return VcOutcome::fail("failover not counted");
  }
  auto held = n1.get("k");
  if (!held.ok() || held.value() != value) {
    return VcOutcome::fail("failover target does not hold the value");
  }
  net.heal_all();
  auto got = client.get("k");
  if (!got.ok() || got.value() != value) {
    return VcOutcome::fail("get after heal failed");
  }
  return VcOutcome::pass();
}

// An injected transient server error (syscall kIoError) is absorbed by the
// retry policy: the op still succeeds and the absorption is visible in the
// retry stats.
VcOutcome vc_retry_transient(u64 seed) {
  auto& reg = FaultRegistry::global();
  reg.reseed(seed);
  Network net;
  Host server_host(&net);
  Host client_host(&net);
  BlockStoreNode node(server_host.sys, 9000);
  if (!node.init().ok()) {
    return VcOutcome::fail("node init failed");
  }
  RetryPolicy policy;
  policy.max_attempts = 8;
  policy.polls_per_attempt = 16;
  policy.backoff_base_polls = 1;
  BlockStoreClient client(client_host.sys, server_host.kernel.net_addr(), 9000,
                          [&] { node.serve_once(); }, policy);
  (void)client.init();

  FaultSpec one_shot;
  one_shot.probability_ppm = 1'000'000;
  one_shot.one_shot = true;
  reg.arm("syscall/io_error", one_shot);
  std::vector<u8> value(64, 0xAB);
  if (!client.put("k", value).ok()) {
    return VcOutcome::fail("put did not survive a transient server fault");
  }
  if (client.retry_stats().transient_errors == 0) {
    return VcOutcome::fail("transient error not absorbed via retry stats");
  }
  auto got = node.get("k");
  if (!got.ok() || got.value() != value) {
    return VcOutcome::fail("value not durable after retried put");
  }
  return VcOutcome::pass();
}

// --- Cluster placement / rebalancing ---------------------------------------------

// N simulated machines, each running a cluster-mode node on its own kernel,
// sharing one fabric. Node i's pump drains every other active node, the
// same topology the chaos harness uses, so acked replica pushes complete
// inside a single caller poll.
struct MiniCluster {
  Network net;
  std::vector<std::unique_ptr<Host>> hosts;
  std::vector<std::unique_ptr<BlockStoreNode>> nodes;
  std::vector<bool> active;
  ClusterView view;

  MiniCluster(usize n, usize replication) {
    view.replication = replication;
    for (usize i = 0; i < n; ++i) {
      add_member();
    }
    announce();
  }

  // Boots a new member and adds it to the shared view. Existing members
  // keep their old belief on purpose: a join is only complete once they
  // rebalance() into (or are announce()d) the new view — exactly the diff
  // rebalance needs to compute which shards move.
  BsNodeId add_member() {
    BsNodeId id = static_cast<BsNodeId>(nodes.size());
    Port port = static_cast<Port>(9100 + id);
    usize slot = nodes.size();
    hosts.push_back(std::make_unique<Host>(&net));
    nodes.push_back(std::make_unique<BlockStoreNode>(hosts[slot]->sys, port,
                                                    std::vector<BsPeer>{},
                                                    [this, slot] { pump_except(slot); }));
    active.push_back(true);
    VNROS_CHECK(nodes[slot]->init().ok());
    view.ring.add_node(id);
    view.directory[id] = BsPeer{hosts[slot]->kernel.net_addr(), port};
    ClusterConfig cfg;
    cfg.self = id;
    nodes[slot]->configure_cluster(cfg, view);
    return id;
  }

  // Adopts the current view everywhere without moving data.
  void announce() {
    for (usize i = 0; i < nodes.size(); ++i) {
      if (active[i]) {
        nodes[i]->set_cluster_view(view);
      }
    }
  }

  void pump_except(usize skip) {
    for (usize i = 0; i < nodes.size(); ++i) {
      if (i != skip && active[i]) {
        nodes[i]->serve_once();
      }
    }
  }
  void pump_all() { pump_except(nodes.size()); }

  void drain(usize polls = 64) {
    for (usize i = 0; i < polls; ++i) {
      pump_all();
    }
  }

  bool is_owner(const std::string& key, BsNodeId id) const {
    for (BsNodeId o : view.owners(key)) {
      if (o == id) {
        return true;
      }
    }
    return false;
  }
};

// app/placement_refines: after a seeded op mix against a clean 4-node
// cluster, (a) every node's belief about the ring (version + fingerprint)
// matches the coordinator view, (b) every model key is byte-identical on
// every ring owner, (c) non-owners do not hold the key, and (d) nothing
// needed hinted handoff — on a clean fabric the owner function and the data
// placement agree exactly.
VcOutcome vc_placement_refines(u64 seed) {
  MiniCluster c(4, 2);
  Host client_host(&c.net);
  BlockStoreClient client(client_host.sys, c.hosts[0]->kernel.net_addr(), 9100,
                          [&] { c.pump_all(); });
  (void)client.init();
  client.set_cluster(c.view);

  Rng rng(seed);
  std::map<std::string, std::vector<u8>> model;
  for (usize i = 0; i < 40; ++i) {
    std::string key = random_key(rng);
    if (rng.chance(7, 10)) {
      auto value = random_value(rng, 400);
      if (!client.put(key, value).ok()) {
        return VcOutcome::fail("clustered put failed");
      }
      model[key] = value;
    } else {
      if (!client.del(key).ok()) {
        return VcOutcome::fail("clustered del failed");
      }
      model.erase(key);
    }
  }
  c.drain();

  for (usize i = 0; i < c.nodes.size(); ++i) {
    if (c.nodes[i]->ring_version() != c.view.ring.version() ||
        c.nodes[i]->ring_fingerprint() != c.view.ring.fingerprint()) {
      return VcOutcome::fail("node " + std::to_string(i) + " belief diverged from the view");
    }
    if (c.nodes[i]->stats().hints_written != 0) {
      return VcOutcome::fail("clean fabric should never need hinted handoff");
    }
  }
  for (const auto& [key, value] : model) {
    auto owners = c.view.owners(key);
    if (owners.size() != 2) {
      return VcOutcome::fail("owner set has wrong arity");
    }
    for (usize i = 0; i < c.nodes.size(); ++i) {
      auto got = c.nodes[i]->get(key);
      if (c.is_owner(key, static_cast<BsNodeId>(i))) {
        if (!got.ok() || got.value() != value) {
          return VcOutcome::fail("owner " + std::to_string(i) + " missing/divergent for " + key);
        }
      } else if (got.ok() || got.error() != ErrorCode::kNotFound) {
        return VcOutcome::fail("non-owner " + std::to_string(i) + " holds " + key);
      }
    }
  }
  // Deleted keys are gone everywhere (kDelReplica reached every owner).
  for (usize i = 0; i < c.nodes.size(); ++i) {
    for (const auto& [key, value] : c.nodes[i]->view()) {
      if (model.count(key) == 0) {
        return VcOutcome::fail("deleted key survives on node " + std::to_string(i));
      }
    }
  }
  return VcOutcome::pass();
}

// app/rebalance_preserves_durability: every acked put stays readable (on
// its current owner set and through the client) across a node join, a
// graceful leave, and a hinted handoff through a partition.
VcOutcome vc_rebalance_preserves_durability(u64 seed) {
  MiniCluster c(3, 2);
  Host client_host(&c.net);
  BlockStoreClient client(client_host.sys, c.hosts[0]->kernel.net_addr(), 9100,
                          [&] { c.pump_all(); });
  (void)client.init();
  client.set_cluster(c.view);

  Rng rng(seed);
  std::map<std::string, std::vector<u8>> model;
  for (usize i = 0; i < 12; ++i) {
    std::string key = "shard" + std::to_string(i);
    auto value = random_value(rng, 300);
    if (!client.put(key, value).ok()) {
      return VcOutcome::fail("seed put failed");
    }
    model[key] = value;
  }

  auto check_placement = [&](const char* phase) -> std::optional<std::string> {
    for (const auto& [key, value] : model) {
      for (usize i = 0; i < c.nodes.size(); ++i) {
        if (!c.active[i]) {
          continue;
        }
        if (c.is_owner(key, static_cast<BsNodeId>(i))) {
          auto got = c.nodes[i]->get(key);
          if (!got.ok() || got.value() != value) {
            return std::string(phase) + ": owner " + std::to_string(i) + " lost " + key;
          }
        }
      }
      auto via_client = client.get(key);
      if (!via_client.ok() || via_client.value() != value) {
        return std::string(phase) + ": client cannot read " + key;
      }
    }
    return std::nullopt;
  };

  // --- Join: a fourth node enters; everyone rebalances to the new view.
  BsNodeId joined = c.add_member();
  for (usize i = 0; i < c.nodes.size(); ++i) {
    if (static_cast<BsNodeId>(i) == joined) {
      continue;
    }
    auto st = c.nodes[i]->rebalance(c.view);
    if (!st.ok() || st.value().failed != 0) {
      return VcOutcome::fail("join rebalance failed on node " + std::to_string(i));
    }
  }
  client.set_cluster(c.view);
  c.drain();
  if (auto err = check_placement("after join")) {
    return VcOutcome::fail(*err);
  }
  // Shards actually moved onto the joiner (it owns ~replication/n of keys).
  if (c.nodes[joined]->view().empty()) {
    return VcOutcome::fail("joiner received no shards");
  }
  // Non-owners released their copies after the acked handoff.
  for (const auto& [key, value] : model) {
    for (usize i = 0; i < c.nodes.size(); ++i) {
      if (c.active[i] && !c.is_owner(key, static_cast<BsNodeId>(i)) &&
          c.nodes[i]->get(key).ok()) {
        return VcOutcome::fail("node " + std::to_string(i) + " kept a dropped shard: " + key);
      }
    }
  }

  // --- Graceful leave: node 0 hands everything off, aborting if any shard
  // could not be placed (failed > 0 would mean walking off with data).
  ClusterView candidate = c.view;
  candidate.ring.remove_node(0);
  candidate.directory.erase(0);
  auto leave = c.nodes[0]->rebalance(candidate);
  if (!leave.ok()) {
    return VcOutcome::fail("leave rebalance errored");
  }
  if (leave.value().failed != 0) {
    return VcOutcome::fail("graceful leave would strand shards; abort path taken");
  }
  c.view = candidate;
  c.active[0] = false;
  for (usize i = 1; i < c.nodes.size(); ++i) {
    auto st = c.nodes[i]->rebalance(c.view);
    if (!st.ok() || st.value().failed != 0) {
      return VcOutcome::fail("post-leave rebalance failed on node " + std::to_string(i));
    }
  }
  client.set_cluster(c.view);
  c.drain();
  if (auto err = check_placement("after leave")) {
    return VcOutcome::fail(*err);
  }

  // --- Hinted handoff: cut the link between one key's two owners, write
  // through the primary (ack + parked hint), heal, deliver.
  std::string hkey = "hinted-key";
  auto owners = c.view.owners(hkey);
  if (owners.size() != 2) {
    return VcOutcome::fail("expected 2 owners for the hint scenario");
  }
  BsNodeId p = owners[0], q = owners[1];
  c.net.partition(c.hosts[p]->kernel.net_addr(), c.hosts[q]->kernel.net_addr());
  std::vector<u8> hval = random_value(rng, 200);
  if (!client.put(hkey, hval).ok()) {
    return VcOutcome::fail("put through a partitioned owner pair failed");
  }
  model[hkey] = hval;
  if (c.nodes[p]->stats().hints_written == 0) {
    return VcOutcome::fail("partitioned co-owner did not produce a hint");
  }
  if (c.nodes[q]->get(hkey).ok()) {
    return VcOutcome::fail("partitioned co-owner mysteriously holds the value");
  }
  c.net.heal_all();
  if (c.nodes[p]->deliver_hints() == 0) {
    return VcOutcome::fail("hint delivery after heal delivered nothing");
  }
  auto cured = c.nodes[q]->get(hkey);
  if (!cured.ok() || cured.value() != hval) {
    return VcOutcome::fail("co-owner lacks the value after hint delivery");
  }
  if (c.nodes[p]->stats().hints_delivered == 0) {
    return VcOutcome::fail("hint delivery not counted");
  }
  if (auto err = check_placement("after heal")) {
    return VcOutcome::fail(*err);
  }
  return VcOutcome::pass();
}

// --- Self-healing: tombstones + Merkle anti-entropy ------------------------------

// app/tombstone_no_resurrection: an acknowledged delete whose replica push
// was severed by a partition still wins. The tombstone reaches the lagging
// co-owner through Merkle anti-entropy (not hint delivery — the parked hint
// must be dropped as superseded, never replayed), acknowledgement-gated GC
// then reclaims the tombstone on every member, and the deleted bytes never
// reappear anywhere afterwards.
VcOutcome vc_tombstone_no_resurrection(u64 seed) {
  MiniCluster c(2, 2);
  Host client_host(&c.net);
  BlockStoreClient client(client_host.sys, c.hosts[0]->kernel.net_addr(), 9100,
                          [&] { c.pump_all(); });
  (void)client.init();
  client.set_cluster(c.view);

  Rng rng(seed);
  std::vector<u8> value = random_value(rng, 300);
  if (!client.put("doomed", value).ok()) {
    return VcOutcome::fail("seed put failed");
  }
  c.drain();
  if (!c.nodes[0]->get("doomed").ok() || !c.nodes[1]->get("doomed").ok()) {
    return VcOutcome::fail("put did not replicate to both owners");
  }

  // Partition the owners: the delete acks on the reachable owner and parks
  // a tombstone hint for the unreachable one.
  c.net.partition(c.hosts[0]->kernel.net_addr(), c.hosts[1]->kernel.net_addr());
  if (!client.del("doomed").ok()) {
    return VcOutcome::fail("del through the partition failed");
  }
  u64 tomb_seq = 0;
  for (const auto& e : c.nodes[0]->list()) {
    if (e.key == "doomed" && e.tombstone) {
      tomb_seq = e.seq;
    }
  }
  if (tomb_seq == 0) {
    return VcOutcome::fail("delete did not leave a sequenced tombstone");
  }
  if (c.nodes[0]->get("doomed").error() != ErrorCode::kNotFound) {
    return VcOutcome::fail("deleting owner still serves the key");
  }
  // The lagging co-owner still holds the doomed bytes — resurrection fuel.
  auto stale = c.nodes[1]->get("doomed");
  if (!stale.ok() || stale.value() != value) {
    return VcOutcome::fail("co-owner unexpectedly lost the pre-delete value");
  }

  // Heal and repair through anti-entropy alone: the tombstone travels as a
  // first-class sequenced write and supersedes the stale copy.
  c.net.heal_all();
  AntiEntropyScheduler ae(c.hosts[0]->sys, *c.nodes[0], [&] { c.pump_except(0); });
  if (!ae.sync_with(BsPeer{c.hosts[1]->kernel.net_addr(), 9101}).ok()) {
    return VcOutcome::fail("anti-entropy pass failed");
  }
  if (ae.stats().pushed == 0) {
    return VcOutcome::fail("anti-entropy did not push the tombstone");
  }
  if (c.nodes[1]->get("doomed").error() != ErrorCode::kNotFound) {
    return VcOutcome::fail("tombstone did not supersede the stale copy");
  }

  // Acknowledgement-gated GC: the deleting owner certifies every member
  // applied the delete, drops its own superseded hint, reclaims its
  // tombstone, and tells the peer to reclaim too.
  if (c.nodes[0]->gc_tombstones() == 0) {
    return VcOutcome::fail("gc reclaimed nothing despite full acknowledgement");
  }
  (void)c.nodes[1]->gc_tombstones();
  if (c.nodes[0]->stats().tombstones_gced == 0) {
    return VcOutcome::fail("gc not counted");
  }
  for (usize i = 0; i < 2; ++i) {
    (void)c.nodes[i]->deliver_hints();  // any surviving hint would replay now
    if (c.nodes[i]->get("doomed").error() != ErrorCode::kNotFound) {
      return VcOutcome::fail("key resurrected on node " + std::to_string(i));
    }
    for (const auto& e : c.nodes[i]->list()) {
      if (e.key == "doomed") {
        return VcOutcome::fail("tombstone survives GC on node " + std::to_string(i));
      }
    }
  }
  return VcOutcome::pass();
}

// app/anti_entropy_converges: two replicas with seeded random divergence —
// keys missing on either side, stale versions, and tombstones — converge
// under bidirectional Merkle exchange to exactly the max-sequence union of
// their histories: equal roots, every key at its newest version, deletes
// deleted. A further pass in each direction is a clean root exchange.
VcOutcome vc_anti_entropy_converges(u64 seed) {
  Network net;
  Host a_host(&net);
  Host b_host(&net);
  BlockStoreNode a(a_host.sys, 9000);
  BlockStoreNode b(b_host.sys, 9001);
  if (!a.init().ok() || !b.init().ok()) {
    return VcOutcome::fail("init failed");
  }

  // Build a sequenced history; each version lands on a, on b, or on both,
  // so `truth` (the newest version per key) is the union both must reach.
  struct Truth {
    u64 seq = 0;
    bool tombstone = false;
    std::vector<u8> bytes;
  };
  Rng rng(seed);
  std::map<std::string, Truth> truth;
  u64 seq = 0;
  for (usize i = 0; i < 24; ++i) {
    std::string key = "blk" + std::to_string(i);
    usize versions = rng.chance(1, 3) ? 2 : 1;
    for (usize v = 0; v < versions; ++v) {
      ++seq;
      bool tomb = rng.chance(1, 5);
      std::vector<u8> bytes = tomb ? std::vector<u8>{} : random_value(rng, 200);
      u64 where = rng.next_range(0, 2);  // 0 = a only, 1 = b only, 2 = both
      if (where != 1 && !a.apply_remote(key, bytes, seq, tomb).ok()) {
        return VcOutcome::fail("apply to a failed");
      }
      if (where != 0 && !b.apply_remote(key, bytes, seq, tomb).ok()) {
        return VcOutcome::fail("apply to b failed");
      }
      truth[key] = Truth{seq, tomb, bytes};
    }
  }

  AntiEntropyConfig cfg;
  cfg.tokens_per_pass = 1'000'000;  // convergence VC: budget is not under test
  AntiEntropyScheduler ab(a_host.sys, a, [&] { b.serve_once(); }, cfg);
  AntiEntropyScheduler ba(b_host.sys, b, [&] { a.serve_once(); }, cfg);
  BsPeer peer_a{a_host.kernel.net_addr(), 9000};
  BsPeer peer_b{b_host.kernel.net_addr(), 9001};
  if (!ab.sync_with(peer_b).ok() || !ba.sync_with(peer_a).ok()) {
    return VcOutcome::fail("repair pass failed");
  }
  if (ab.stats().pulled + ab.stats().pushed + ba.stats().pulled + ba.stats().pushed == 0) {
    return VcOutcome::fail("seeded divergence repaired nothing");
  }

  // Converged: equal roots, and both inventories are exactly the truth map.
  if (MerkleTree::build(a.list()).root() != MerkleTree::build(b.list()).root()) {
    return VcOutcome::fail("roots differ after bidirectional repair");
  }
  for (BlockStoreNode* n : {&a, &b}) {
    auto inv = n->list();
    if (inv.size() != truth.size()) {
      return VcOutcome::fail("inventory size diverged from the union of histories");
    }
    for (const auto& e : inv) {
      auto it = truth.find(e.key);
      if (it == truth.end() || e.seq != it->second.seq || e.tombstone != it->second.tombstone) {
        return VcOutcome::fail("key " + e.key + " did not converge to its newest version");
      }
    }
    for (const auto& [key, t] : truth) {
      auto got = n->get(key);
      if (t.tombstone) {
        if (got.error() != ErrorCode::kNotFound) {
          return VcOutcome::fail("deleted key " + key + " still readable");
        }
      } else if (!got.ok() || got.value() != t.bytes) {
        return VcOutcome::fail("key " + key + " holds the wrong bytes");
      }
    }
  }

  // Already-converged pair: one root exchange each way, nothing shipped.
  u64 pulled = ab.stats().pulled + ba.stats().pulled;
  u64 pushed = ab.stats().pushed + ba.stats().pushed;
  if (!ab.sync_with(peer_b).ok() || !ba.sync_with(peer_a).ok()) {
    return VcOutcome::fail("clean pass failed");
  }
  if (ab.stats().clean_passes == 0 || ba.stats().clean_passes == 0 ||
      ab.stats().pulled + ba.stats().pulled != pulled ||
      ab.stats().pushed + ba.stats().pushed != pushed) {
    return VcOutcome::fail("pass over a converged pair was not a clean no-op");
  }
  return VcOutcome::pass();
}

}  // namespace

void register_app_vcs(VcRegistry& reg) {
  reg.add("app/put_get_roundtrip", VcCategory::kApplication,
          [] { return vc_put_get_roundtrip(); });
  for (u64 seed = 1; seed <= 2; ++seed) {
    reg.add("app/refines_map_clean_seed" + std::to_string(seed), VcCategory::kApplication,
            [seed] { return vc_refines_map(seed, FabricConfig{}, 60); });
    reg.add("app/refines_map_lossy_seed" + std::to_string(seed), VcCategory::kApplication,
            [seed] {
              FabricConfig fabric;
              fabric.loss_ppm = 200'000;  // 20% loss: retries must cover it
              fabric.dup_ppm = 50'000;
              return vc_refines_map(seed ^ 0x10557, fabric, 40);
            });
  }
  for (u64 seed = 1; seed <= 3; ++seed) {
    reg.add("app/crash_recovery_seed" + std::to_string(seed), VcCategory::kApplication,
            [seed] { return vc_crash_recovery(seed); });
  }
  reg.add("app/corruption_detected", VcCategory::kApplication,
          [] { return vc_corruption_detected(); });
  reg.add("app/replication_push", VcCategory::kApplication,
          [] { return vc_replication_push(); });
  for (u64 seed = 1; seed <= 2; ++seed) {
    reg.add("app/overwrite_then_crash_seed" + std::to_string(seed), VcCategory::kApplication,
            [seed] { return vc_overwrite_then_crash(seed); });
    reg.add("app/view_matches_after_churn_seed" + std::to_string(seed),
            VcCategory::kApplication, [seed] { return vc_view_matches_after_churn(seed); });
  }
  for (u64 seed = 1; seed <= 2; ++seed) {
    reg.add("app/anti_entropy_sync_seed" + std::to_string(seed), VcCategory::kApplication,
            [seed] { return vc_anti_entropy_sync(seed); });
  }
  reg.add("app/read_repair", VcCategory::kApplication, [] { return vc_read_repair(); });
  reg.add("app/retry_failover", VcCategory::kApplication, [] { return vc_retry_failover(); });
  for (u64 seed = 1; seed <= 2; ++seed) {
    reg.add("app/retry_transient_seed" + std::to_string(seed), VcCategory::kApplication,
            [seed] { return vc_retry_transient(seed); });
  }
  for (u64 seed = 1; seed <= 2; ++seed) {
    reg.add("app/placement_refines_seed" + std::to_string(seed), VcCategory::kApplication,
            [seed] { return vc_placement_refines(seed); });
    reg.add("app/rebalance_preserves_durability_seed" + std::to_string(seed),
            VcCategory::kApplication, [seed] { return vc_rebalance_preserves_durability(seed); });
  }
  for (u64 seed = 1; seed <= 2; ++seed) {
    reg.add("app/tombstone_no_resurrection_seed" + std::to_string(seed),
            VcCategory::kApplication, [seed] { return vc_tombstone_no_resurrection(seed); });
    reg.add("app/anti_entropy_converges_seed" + std::to_string(seed),
            VcCategory::kApplication, [seed] { return vc_anti_entropy_converges(seed); });
  }
}

}  // namespace vnros
