#include "src/app/ring.h"

#include "src/base/contracts.h"

namespace vnros {
namespace {

// splitmix64 finalizer: cheap, well-mixed, and a fixed function — placement
// must be identical across processes, so no seeding.
u64 mix64(u64 x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

}  // namespace

PlacementRing::PlacementRing(usize vnodes_per_node) : vnodes_per_node_(vnodes_per_node) {
  VNROS_CHECK(vnodes_per_node_ > 0);
}

u64 PlacementRing::hash_point(BsNodeId id, u32 replica_idx) {
  return mix64((u64{id} << 32) | replica_idx);
}

u64 PlacementRing::hash_key(std::string_view key) {
  // FNV-1a over the bytes, then a splitmix finalizer to spread short keys
  // across the full circle.
  u64 h = 0xCBF29CE484222325ull;
  for (char c : key) {
    h ^= static_cast<u8>(c);
    h *= 0x100000001B3ull;
  }
  return mix64(h);
}

void PlacementRing::add_node(BsNodeId id) {
  if (members_.count(id) != 0) {
    return;
  }
  usize added = 0;
  for (u32 r = 0; r < vnodes_per_node_; ++r) {
    // On the (astronomically unlikely) point collision the earlier member
    // keeps the point; the ring stays a function, just slightly unbalanced.
    added += points_.emplace(hash_point(id, r), id).second ? 1 : 0;
  }
  members_[id] = added;
  ++version_;
}

void PlacementRing::remove_node(BsNodeId id) {
  auto it = members_.find(id);
  if (it == members_.end()) {
    return;
  }
  for (auto p = points_.begin(); p != points_.end();) {
    p = (p->second == id) ? points_.erase(p) : std::next(p);
  }
  members_.erase(it);
  ++version_;
}

bool PlacementRing::contains(BsNodeId id) const { return members_.count(id) != 0; }

std::vector<BsNodeId> PlacementRing::nodes() const {
  std::vector<BsNodeId> out;
  out.reserve(members_.size());
  for (const auto& [id, pts] : members_) {
    out.push_back(id);
  }
  return out;
}

std::vector<BsNodeId> PlacementRing::owners(std::string_view key, usize n) const {
  std::vector<BsNodeId> out;
  if (points_.empty() || n == 0) {
    return out;
  }
  usize want = n < members_.size() ? n : members_.size();
  out.reserve(want);
  auto it = points_.lower_bound(hash_key(key));
  while (out.size() < want) {
    if (it == points_.end()) {
      it = points_.begin();  // wrap the circle
    }
    bool seen = false;
    for (BsNodeId got : out) {
      seen = seen || got == it->second;
    }
    if (!seen) {
      out.push_back(it->second);
    }
    ++it;
  }
  return out;
}

BsNodeId PlacementRing::primary(std::string_view key) const {
  auto first = owners(key, 1);
  VNROS_CHECK(!first.empty());
  return first[0];
}

u64 PlacementRing::fingerprint() const {
  // XOR of per-point digests: order-insensitive, so rings that reached the
  // same membership via different histories agree.
  u64 fp = 0;
  for (const auto& [point, id] : points_) {
    fp ^= mix64(point ^ (u64{id} + 1));
  }
  return fp;
}

}  // namespace vnros
