#include "src/app/anti_entropy.h"

#include <algorithm>

#include "src/base/crc.h"
#include "src/base/log.h"
#include "src/base/serde.h"

namespace vnros {

usize MerkleTree::bucket_of(std::string_view key) {
  std::span<const u8> bytes(reinterpret_cast<const u8*>(key.data()), key.size());
  return crc32c(bytes) % kLeaves;
}

MerkleTree MerkleTree::build(const std::vector<BlockKeyInfo>& inventory) {
  MerkleTree t;
  // inventory is key-sorted (list() sorts), so each bucket stays key-sorted
  // and leaf hashes are canonical for a given key -> (seq, tombstone) map.
  for (const auto& e : inventory) {
    t.buckets[bucket_of(e.key)].push_back(e);
  }
  for (usize b = 0; b < kLeaves; ++b) {
    Writer w;
    for (const auto& e : t.buckets[b]) {
      w.put_string(e.key);
      w.put_u64(e.seq);
      w.put_u8(e.tombstone ? 1 : 0);
    }
    t.hash[kFirstLeaf + b] = crc32c(w.bytes());
  }
  for (usize idx = kFirstLeaf; idx-- > 0;) {
    Writer w;
    for (usize c = 0; c < kFanout; ++c) {
      w.put_u32(t.hash[idx * kFanout + 1 + c]);
    }
    t.hash[idx] = crc32c(w.bytes());
  }
  return t;
}

AntiEntropyScheduler::AntiEntropyScheduler(Sys& sys, BlockStoreNode& node,
                                           std::function<void()> pump, AntiEntropyConfig cfg)
    : sys_(sys), node_(node), pump_(std::move(pump)), cfg_(cfg), rng_(cfg.rng_seed) {}

void AntiEntropyScheduler::tick() {
  ++now_;
  if (!node_.clustered()) {
    return;
  }
  for (const auto& [id, peer] : node_.cluster_view().directory) {
    if (id == node_.self_id()) {
      continue;
    }
    auto [it, inserted] = next_due_.try_emplace(id, 0);
    if (inserted) {
      // First sighting: spread the initial deadline across one full interval
      // so members that boot together do not repair in lockstep.
      it->second = now_ + 1 + rng_.next_below(cfg_.interval_polls + 1);
      continue;
    }
    if (now_ < it->second) {
      continue;
    }
    (void)sync_with(peer);
    it->second = now_ + cfg_.interval_polls + rng_.next_below(cfg_.jitter_polls + 1);
  }
}

std::vector<u8> AntiEntropyScheduler::make_request(BsOp op, std::string_view key,
                                                   u64 req_id) const {
  Writer w;
  w.put_u8(static_cast<u8>(op));
  w.put_u64(req_id);
  w.put_string(key);
  return w.take();
}

Result<AntiEntropyScheduler::RpcReply> AntiEntropyScheduler::do_rpc(
    const BsPeer& peer, const std::vector<u8>& request) {
  if (budget_ == 0) {
    return ErrorCode::kBusy;  // pass budget spent: park the rest
  }
  --budget_;
  if (sock_ == kInvalidFd) {
    auto sock = sys_.udp_socket();
    if (!sock.ok()) {
      return sock.error();
    }
    sock_ = sock.value();
  }
  // The req_id is embedded at offset 1 by the caller; recover it for reply
  // matching (stale replies from earlier RPCs share this socket).
  Reader req(request);
  (void)req.get_u8();
  u64 req_id = req.get_u64().value_or(0);
  ++stats_.rpcs;
  ErrorCode last = ErrorCode::kTimedOut;
  for (usize attempt = 0; attempt < cfg_.rpc_attempts; ++attempt) {
    auto sent = sys_.udp_sendto(sock_, peer.addr, peer.port, request);
    if (!sent.ok()) {
      last = sent.error();
      continue;
    }
    stats_.bytes_sent += request.size();
    for (usize poll = 0; poll < cfg_.rpc_polls; ++poll) {
      if (pump_) {
        pump_();
      }
      auto reply = sys_.udp_recvfrom(sock_);
      if (!reply.ok()) {
        continue;
      }
      Reader r(reply.value().payload);
      auto rid = r.get_u64();
      auto err = r.get_u32();
      auto payload = r.get_bytes();
      if (!rid || !err || !payload || *rid != req_id) {
        continue;
      }
      stats_.bytes_received += reply.value().payload.size();
      ErrorCode code = static_cast<ErrorCode>(*err);
      if (code != ErrorCode::kOk) {
        return code;
      }
      return RpcReply{std::move(*payload), r.get_u64().value_or(0)};
    }
  }
  return last;
}

Result<AntiEntropyScheduler::NodeReply> AntiEntropyScheduler::fetch_node(const BsPeer& peer,
                                                                         u32 idx) {
  std::vector<u8> req = make_request(BsOp::kMerkleNode, "", next_req_id_++);
  Writer extra;
  extra.put_u32(idx);
  req.insert(req.end(), extra.bytes().begin(), extra.bytes().end());
  auto reply = do_rpc(peer, req);
  if (!reply.ok()) {
    return reply.error();
  }
  Reader r(reply.value().payload);
  NodeReply out;
  auto hash = r.get_u32();
  auto count = r.get_u32();
  if (!hash || !count || *count > MerkleTree::kFanout) {
    return ErrorCode::kCorrupted;
  }
  out.hash = *hash;
  out.child_count = *count;
  for (u32 c = 0; c < *count; ++c) {
    auto child = r.get_u32();
    if (!child) {
      return ErrorCode::kCorrupted;
    }
    out.children[c] = *child;
  }
  return out;
}

Result<std::vector<BlockKeyInfo>> AntiEntropyScheduler::fetch_leaf(const BsPeer& peer,
                                                                   u32 bucket) {
  std::vector<u8> req = make_request(BsOp::kMerkleLeaf, "", next_req_id_++);
  Writer extra;
  extra.put_u32(bucket);
  req.insert(req.end(), extra.bytes().begin(), extra.bytes().end());
  auto reply = do_rpc(peer, req);
  if (!reply.ok()) {
    return reply.error();
  }
  Reader r(reply.value().payload);
  auto count = r.get_u32();
  if (!count) {
    return ErrorCode::kCorrupted;
  }
  std::vector<BlockKeyInfo> out;
  out.reserve(*count);
  for (u32 i = 0; i < *count; ++i) {
    auto key = r.get_string();
    auto seq = r.get_u64();
    auto flags = r.get_u8();
    if (!key || !seq || !flags) {
      return ErrorCode::kCorrupted;
    }
    out.push_back(BlockKeyInfo{std::move(*key), 0, *seq, (*flags & 1) != 0});
  }
  return out;
}

Result<Unit> AntiEntropyScheduler::pull_block(const BsPeer& peer, std::string_view key) {
  auto reply = do_rpc(peer, make_request(BsOp::kGetBlock, key, next_req_id_++));
  if (!reply.ok()) {
    return reply.error();
  }
  Reader r(reply.value().payload);
  auto tomb = r.get_u8();
  if (!tomb) {
    return ErrorCode::kCorrupted;
  }
  std::vector<u8> bytes(reply.value().payload.begin() + 1, reply.value().payload.end());
  bool applied = false;
  auto stored =
      node_.apply_remote(key, bytes, reply.value().seq, (*tomb & 1) != 0, &applied);
  if (!stored.ok()) {
    return stored;
  }
  if (applied) {
    ++stats_.pulled;
  }
  return Unit{};
}

Result<Unit> AntiEntropyScheduler::push_block(const BsPeer& peer, const BlockKeyInfo& info) {
  std::vector<u8> req;
  if (info.tombstone) {
    req = make_request(BsOp::kDelReplica, info.key, next_req_id_++);
    Writer extra;
    extra.put_u64(info.seq);
    req.insert(req.end(), extra.bytes().begin(), extra.bytes().end());
  } else {
    auto value = node_.get(info.key);
    if (!value.ok()) {
      // The block changed (deleted/corrupted) since list(): let the next
      // pass ship whatever it settled into.
      return Unit{};
    }
    req = make_request(BsOp::kPutReplica, info.key, next_req_id_++);
    Writer extra;
    extra.put_u64(info.seq);
    extra.put_bytes(value.value());
    req.insert(req.end(), extra.bytes().begin(), extra.bytes().end());
  }
  auto reply = do_rpc(peer, req);
  if (!reply.ok()) {
    return reply.error();
  }
  ++stats_.pushed;
  return Unit{};
}

Result<Unit> AntiEntropyScheduler::reconcile(const BsPeer& peer, const BlockKeyInfo* local,
                                             const BlockKeyInfo* remote) {
  const u64 lseq = local != nullptr ? local->seq : 0;
  const u64 rseq = remote != nullptr ? remote->seq : 0;
  if (remote != nullptr && (local == nullptr || rseq > lseq)) {
    return pull_block(peer, remote->key);
  }
  if (local != nullptr && (remote == nullptr || lseq > rseq)) {
    return push_block(peer, *local);
  }
  // Equal sequences: apply-if-newer made the copies identical when they were
  // written; nothing to ship.
  return Unit{};
}

namespace {

// Key-ordered diff of two sorted entry lists, invoking `fn(local, remote)`
// (either side nullptr when absent) for every key present in either.
template <typename Fn>
Result<Unit> diff_entries(const std::vector<BlockKeyInfo>& local,
                          const std::vector<BlockKeyInfo>& remote, Fn&& fn) {
  usize li = 0;
  usize ri = 0;
  while (li < local.size() || ri < remote.size()) {
    const BlockKeyInfo* l = li < local.size() ? &local[li] : nullptr;
    const BlockKeyInfo* r = ri < remote.size() ? &remote[ri] : nullptr;
    if (l != nullptr && r != nullptr && l->key == r->key) {
      if (l->seq != r->seq) {
        auto res = fn(l, r);
        if (!res.ok()) {
          return res;
        }
      }
      ++li;
      ++ri;
    } else if (r == nullptr || (l != nullptr && l->key < r->key)) {
      auto res = fn(l, nullptr);
      if (!res.ok()) {
        return res;
      }
      ++li;
    } else {
      auto res = fn(nullptr, r);
      if (!res.ok()) {
        return res;
      }
      ++ri;
    }
  }
  return Unit{};
}

}  // namespace

Result<Unit> AntiEntropyScheduler::sync_with(const BsPeer& peer) {
  ++stats_.passes;
  budget_ = cfg_.tokens_per_pass;
  MerkleTree local = MerkleTree::build(node_.list());
  auto classify = [this](ErrorCode err) {
    if (err == ErrorCode::kOverloaded) {
      ++stats_.yields;  // the peer is shedding: foreground traffic wins
    } else if (err == ErrorCode::kBusy) {
      ++stats_.budget_exhausted;
    }
    return err;
  };
  auto root = fetch_node(peer, 0);
  if (!root.ok()) {
    return classify(root.error());
  }
  if (root.value().hash == local.root()) {
    ++stats_.clean_passes;
    return Unit{};
  }
  // Top-down descent: only subtrees whose hashes differ are expanded, so
  // wire cost tracks divergence. The node reply carries child hashes, so
  // each interior fetch prunes four subtrees at once.
  std::vector<std::pair<usize, NodeReply>> frontier;
  frontier.emplace_back(0, root.value());
  std::vector<u32> divergent_leaves;
  while (!frontier.empty()) {
    auto [idx, nr] = frontier.back();
    frontier.pop_back();
    for (usize c = 0; c < MerkleTree::kFanout && c < nr.child_count; ++c) {
      usize child = idx * MerkleTree::kFanout + 1 + c;
      if (nr.children[c] == local.hash[child]) {
        continue;
      }
      if (MerkleTree::is_leaf(child)) {
        divergent_leaves.push_back(static_cast<u32>(child - MerkleTree::kFirstLeaf));
      } else {
        auto fetched = fetch_node(peer, static_cast<u32>(child));
        if (!fetched.ok()) {
          return classify(fetched.error());
        }
        frontier.emplace_back(child, fetched.value());
      }
    }
  }
  for (u32 bucket : divergent_leaves) {
    auto remote = fetch_leaf(peer, bucket);
    if (!remote.ok()) {
      return classify(remote.error());
    }
    auto reconciled =
        diff_entries(local.buckets[bucket], remote.value(),
                     [&](const BlockKeyInfo* l, const BlockKeyInfo* r) {
                       return reconcile(peer, l, r);
                     });
    if (!reconciled.ok()) {
      return classify(reconciled.error());
    }
  }
  return Unit{};
}

Result<Unit> AntiEntropyScheduler::sync_full(const BsPeer& peer) {
  ++stats_.passes;
  budget_ = ~u64{0};  // baseline is unmetered: it measures full-inventory cost
  auto reply = do_rpc(peer, make_request(BsOp::kList, "", next_req_id_++));
  if (!reply.ok()) {
    if (reply.error() == ErrorCode::kOverloaded) {
      ++stats_.yields;
    }
    return reply.error();
  }
  Reader r(reply.value().payload);
  auto count = r.get_u32();
  if (!count) {
    return ErrorCode::kCorrupted;
  }
  std::vector<BlockKeyInfo> remote;
  remote.reserve(*count);
  for (u32 i = 0; i < *count; ++i) {
    auto key = r.get_string();
    auto crc = r.get_u32();
    auto seq = r.get_u64();
    auto flags = r.get_u8();
    if (!key || !crc || !seq || !flags) {
      return ErrorCode::kCorrupted;
    }
    remote.push_back(BlockKeyInfo{std::move(*key), *crc, *seq, (*flags & 1) != 0});
  }
  std::vector<BlockKeyInfo> local = node_.list();
  return diff_entries(local, remote, [&](const BlockKeyInfo* l, const BlockKeyInfo* rr) {
    return reconcile(peer, l, rr);
  });
}

}  // namespace vnros
