// Registration hook for the block-store application verification conditions.
#ifndef VNROS_SRC_APP_VCS_H_
#define VNROS_SRC_APP_VCS_H_

#include "src/spec/vc.h"

namespace vnros {

// Registers app/* VCs: the storage node refines the abstract key->bytes map
// end-to-end over the network, acknowledged puts survive crashes, storage
// corruption is detected (never returned as data), and replication pushes
// blocks to peers.
void register_app_vcs(VcRegistry& registry);

}  // namespace vnros

#endif  // VNROS_SRC_APP_VCS_H_
