// The verified client application: a data-storage node of a distributed
// block store (§1: "consider the data-storage node in a distributed block
// store like GFS or S3 ... Amazon even describes their use of lightweight
// formal methods to verify such a storage node").
//
// The node is written entirely against the Sys syscall facade — the client
// application contract of §3. It never touches kernel internals: blocks are
// files (create/write/fsync/read/unlink), the wire is UDP sockets, and
// durability comes from fsync before acknowledging. That is the paper's
// whole point: with the OS contract verified below and this logic verified
// above, the stack composes.
//
// Abstract spec (checked by app/* VCs): the node refines the map
// key -> bytes with operations
//   put(k, v):  ack  =>  get(k) returns exactly v until overwritten/deleted,
//               and v survives a crash (fsync-before-ack);
//   get(k):     returns the last acknowledged put, kNotFound if none,
//               kCorrupted (never garbage) if storage bits rotted;
//   del(k):     ack  =>  get(k) returns kNotFound.
//
// Replication: a put to the primary is forwarded to its peers (best-effort
// push; the client retries end-to-end, so at-least-once overall).
#ifndef VNROS_SRC_APP_BLOCKSTORE_H_
#define VNROS_SRC_APP_BLOCKSTORE_H_

#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "src/base/result.h"
#include "src/kernel/syscall.h"

namespace vnros {

// Wire protocol opcodes.
enum class BsOp : u8 {
  kPut = 1,
  kGet = 2,
  kDel = 3,
  kPing = 4,
  kPutReplica = 5,  // replication push: applied locally, never re-forwarded
  kList = 6,        // anti-entropy: enumerate (key, crc32c) pairs
};

// One entry of a kList reply: enough to detect a missing or divergent block
// without shipping its bytes.
struct BlockKeyInfo {
  std::string key;
  u32 crc = 0;

  bool operator==(const BlockKeyInfo&) const = default;
};

struct BsPeer {
  NetAddr addr = 0;
  Port port = 0;
};

struct BlockStoreStats {
  u64 puts = 0;
  u64 gets = 0;
  u64 dels = 0;
  u64 corrupt_reads = 0;
  u64 replicas_pushed = 0;
  u64 replicas_applied = 0;
};

class BlockStoreNode {
 public:
  // `sys` is this node's (process's) view of its OS. The node binds `port`.
  BlockStoreNode(Sys& sys, Port port, std::vector<BsPeer> peers = {});

  // Creates /blocks and binds the service socket. Idempotent across
  // restarts of the same filesystem (recovery path).
  Result<Unit> init();

  // Serves at most one pending request; returns whether one was served.
  bool serve_once();

  // Local storage operations (also reachable via the wire).
  Result<Unit> put(std::string_view key, std::span<const u8> value);
  Result<std::vector<u8>> get(std::string_view key) const;
  Result<Unit> del(std::string_view key);

  // Abstract view: every (key, bytes) currently stored and intact.
  std::map<std::string, std::vector<u8>> view() const;

  // Anti-entropy inventory: (key, crc32c) for every intact block.
  std::vector<BlockKeyInfo> list() const;

  const BlockStoreStats& stats() const { return stats_; }
  Port port() const { return port_; }

  // Path of the file backing `key` ("/blocks/<hex>"): public so tests can
  // inject storage corruption at the right place.
  static std::string key_path(std::string_view key);

 private:
  Result<Unit> put_local(std::string_view key, std::span<const u8> value);
  void push_replicas(std::string_view key, std::span<const u8> value);

  Sys& sys_;
  Port port_;
  std::vector<BsPeer> peers_;
  Fd sock_ = kInvalidFd;
  mutable BlockStoreStats stats_;
};

// Client library: request/response over UDP with timeout + retry (the
// fabric may drop datagrams; operations are idempotent, so at-least-once
// retries preserve the abstract map semantics).
class BlockStoreClient {
 public:
  // `pump` advances the simulated world (drives the server and the fabric)
  // between poll attempts — the simulation's stand-in for wall-clock time.
  BlockStoreClient(Sys& sys, NetAddr server, Port server_port, std::function<void()> pump);

  Result<Unit> init();

  Result<Unit> put(std::string_view key, std::span<const u8> value);
  Result<std::vector<u8>> get(std::string_view key);
  Result<Unit> del(std::string_view key);
  Result<Unit> ping();
  Result<std::vector<BlockKeyInfo>> list();

  // Anti-entropy repair: pulls every block that `target` is missing (or
  // holds with a different checksum) from the server this client talks to,
  // writing it into `target` via its local API. Returns blocks repaired.
  Result<u64> sync_into(BlockStoreNode& target);

  u64 retries() const { return retries_; }

 private:
  static constexpr usize kMaxAttempts = 16;
  static constexpr usize kPollsPerAttempt = 64;

  // Sends `request` until a reply with its req_id arrives; returns payload.
  Result<std::vector<u8>> rpc(BsOp op, std::string_view key, std::span<const u8> value);

  Sys& sys_;
  NetAddr server_;
  Port server_port_;
  std::function<void()> pump_;
  Fd sock_ = kInvalidFd;
  u64 next_req_id_ = 1;
  u64 retries_ = 0;
};

}  // namespace vnros

#endif  // VNROS_SRC_APP_BLOCKSTORE_H_
