// The verified client application: a data-storage node of a distributed
// block store (§1: "consider the data-storage node in a distributed block
// store like GFS or S3 ... Amazon even describes their use of lightweight
// formal methods to verify such a storage node").
//
// The node is written entirely against the Sys syscall facade — the client
// application contract of §3. It never touches kernel internals: blocks are
// files (create/write/fsync/read/unlink), the wire is UDP sockets, and
// durability comes from fsync before acknowledging. That is the paper's
// whole point: with the OS contract verified below and this logic verified
// above, the stack composes.
//
// Abstract spec (checked by app/* VCs): the node refines the map
// key -> bytes with operations
//   put(k, v):  ack  =>  get(k) returns exactly v until overwritten/deleted,
//               and v survives a crash (fsync-before-ack);
//   get(k):     returns the last acknowledged put, kNotFound if none,
//               kCorrupted (never garbage) if storage bits rotted;
//   del(k):     ack  =>  get(k) returns kNotFound.
//
// Replication: a put to the primary is forwarded to its peers (best-effort
// push; the client retries end-to-end, so at-least-once overall).
#ifndef VNROS_SRC_APP_BLOCKSTORE_H_
#define VNROS_SRC_APP_BLOCKSTORE_H_

#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "src/base/result.h"
#include "src/base/rng.h"
#include "src/kernel/syscall.h"
#include "src/obs/registry.h"

namespace vnros {

// Wire protocol opcodes.
enum class BsOp : u8 {
  kPut = 1,
  kGet = 2,
  kDel = 3,
  kPing = 4,
  kPutReplica = 5,  // replication push: applied locally, never re-forwarded
  kList = 6,        // anti-entropy: enumerate (key, crc32c) pairs
};

// One entry of a kList reply: enough to detect a missing or divergent block
// without shipping its bytes.
struct BlockKeyInfo {
  std::string key;
  u32 crc = 0;

  bool operator==(const BlockKeyInfo&) const = default;
};

struct BsPeer {
  NetAddr addr = 0;
  Port port = 0;
};

// Snapshot of a node's obs counters (see stats()).
struct BlockStoreStats {
  u64 puts = 0;
  u64 gets = 0;
  u64 dels = 0;
  u64 corrupt_reads = 0;
  u64 replicas_pushed = 0;
  u64 replicas_applied = 0;
  u64 read_repairs = 0;        // corrupt blocks restored from a peer
  u64 failed_repairs = 0;      // corrupt blocks no peer could supply
};

class BlockStoreNode {
 public:
  // `sys` is this node's (process's) view of its OS. The node binds `port`.
  // `pump` (optional) advances the simulated world; when set and peers are
  // configured, a kCorrupted local read triggers read-repair: the block is
  // fetched from a peer, re-persisted locally, and served instead of the
  // corruption error.
  BlockStoreNode(Sys& sys, Port port, std::vector<BsPeer> peers = {},
                 std::function<void()> pump = {});

  // Creates /blocks and binds the service socket. Idempotent across
  // restarts of the same filesystem (recovery path).
  Result<Unit> init();

  // Serves at most one pending request; returns whether one was served.
  bool serve_once();

  // Local storage operations (also reachable via the wire).
  Result<Unit> put(std::string_view key, std::span<const u8> value);
  Result<std::vector<u8>> get(std::string_view key) const;
  Result<Unit> del(std::string_view key);

  // get(), but a kCorrupted local block is repaired from the peer list (if
  // any) before failing: fetch from a peer over the repair socket, verify,
  // re-persist locally, return the repaired bytes. This is what serve_once
  // uses for kGet, so clients never see corruption a peer can cure.
  Result<std::vector<u8>> get_or_repair(std::string_view key);

  // Abstract view: every (key, bytes) currently stored and intact.
  std::map<std::string, std::vector<u8>> view() const;

  // Anti-entropy inventory: (key, crc32c) for every intact block.
  std::vector<BlockKeyInfo> list() const;

  // Thin view over the obs counters ("bs<N>/..."): race-free merged reads.
  BlockStoreStats stats() const {
    return BlockStoreStats{c_puts_.value(),           c_gets_.value(),
                           c_dels_.value(),           c_corrupt_reads_.value(),
                           c_replicas_pushed_.value(), c_replicas_applied_.value(),
                           c_read_repairs_.value(),   c_failed_repairs_.value()};
  }
  Port port() const { return port_; }

  // Reads one of the kernel's contract counters (e.g. "fs/fsyncs") through
  // the kstat syscall — the §3 way for the application to introspect the OS.
  // The node never touches kernel internals, here or anywhere.
  Result<u64> kernel_stat(std::string_view name) const { return sys_.kstat(name); }

  // Path of the file backing `key` ("/blocks/<hex>"): public so tests can
  // inject storage corruption at the right place.
  static std::string key_path(std::string_view key);

 private:
  Result<Unit> put_local(std::string_view key, std::span<const u8> value);
  void push_replicas(std::string_view key, std::span<const u8> value);
  Result<std::vector<u8>> fetch_from_peer(const BsPeer& peer, std::string_view key);

  Sys& sys_;
  Port port_;
  std::vector<BsPeer> peers_;
  std::function<void()> pump_;
  Fd sock_ = kInvalidFd;
  Fd repair_sock_ = kInvalidFd;  // dedicated socket: repair RPCs never steal
                                 // datagrams destined for the service socket
  bool in_repair_ = false;       // re-entrancy guard (pump may recurse into us)
  u64 next_repair_req_id_ = 1;

  // Metrics ("bs<N>/..."): registry-owned per-core counters — mutable from
  // const readers (get() counts), race-free for concurrent observers.
  const std::string obs_prefix_;
  Counter& c_puts_;
  Counter& c_gets_;
  Counter& c_dels_;
  Counter& c_corrupt_reads_;
  Counter& c_replicas_pushed_;
  Counter& c_replicas_applied_;
  Counter& c_read_repairs_;
  Counter& c_failed_repairs_;
  const u32 span_serve_;
};

// Client retry behaviour. All waiting is measured in pump polls — the
// simulation's stand-in for wall-clock time — so schedules replay
// deterministically from a seed.
struct RetryPolicy {
  usize max_attempts = 16;       // sends per rpc (across all targets)
  usize polls_per_attempt = 64;  // pump polls awaiting each reply
  u64 backoff_base_polls = 0;    // idle polls before retry 1; doubles per retry
  u64 backoff_max_polls = 0;     // exponential backoff cap (0 = uncapped)
  u64 jitter_ppm = 0;            // additive jitter: up to this fraction of the backoff
  u64 deadline_polls = 0;        // total poll budget per rpc (0 = unlimited)
};

// Visible retry behaviour, for tests and for kDebug logging: how hard did
// the client have to work to get an answer? Snapshot of the client's obs
// counters (see retry_stats()).
struct RetryStats {
  u64 attempts = 0;          // request datagrams sent
  u64 retries = 0;           // attempts beyond the first, per rpc
  u64 backoff_polls = 0;     // pump polls spent idling in backoff
  u64 failovers = 0;         // switches to a different target
  u64 transient_errors = 0;  // kIoError/kNoMemory/kBusy replies absorbed by retry
  u64 send_errors = 0;       // local sendto failures absorbed by retry
};

// Client library: request/response over UDP with timeout + retry (the
// fabric may drop datagrams; operations are idempotent, so at-least-once
// retries preserve the abstract map semantics). Transient server errors
// (fault-injected kIoError/kNoMemory, kBusy) are retried with exponential
// backoff + jitter; when failover targets are configured, timeouts and
// transient errors rotate the client to the next replica.
class BlockStoreClient {
 public:
  // `pump` advances the simulated world (drives the server and the fabric)
  // between poll attempts — the simulation's stand-in for wall-clock time.
  BlockStoreClient(Sys& sys, NetAddr server, Port server_port, std::function<void()> pump,
                   RetryPolicy policy = {});

  Result<Unit> init();

  // Adds a replica the client may rotate to when the current target times
  // out or keeps returning transient errors.
  void add_failover(NetAddr addr, Port port);

  Result<Unit> put(std::string_view key, std::span<const u8> value);
  Result<std::vector<u8>> get(std::string_view key);
  Result<Unit> del(std::string_view key);
  Result<Unit> ping();
  Result<std::vector<BlockKeyInfo>> list();

  // Anti-entropy repair: pulls every block that `target` is missing (or
  // holds with a different checksum) from the server this client talks to,
  // writing it into `target` via its local API. Returns blocks repaired.
  Result<u64> sync_into(BlockStoreNode& target);

  u64 retries() const { return c_retries_.value(); }

  // Thin view over the obs counters ("bsc<N>/..."): race-free merged reads.
  RetryStats retry_stats() const {
    return RetryStats{c_attempts_.value(),         c_retries_.value(),
                      c_backoff_polls_.value(),    c_failovers_.value(),
                      c_transient_errors_.value(), c_send_errors_.value()};
  }
  const RetryPolicy& policy() const { return policy_; }

  // The target the next rpc will be sent to (index 0 = the constructor's
  // server; failover targets follow in add_failover order).
  usize current_target() const { return current_target_; }

 private:
  static bool transient(ErrorCode err);

  // Sends `request` until a reply with its req_id arrives; returns payload.
  Result<std::vector<u8>> rpc(BsOp op, std::string_view key, std::span<const u8> value);
  void fail_over();

  Sys& sys_;
  std::vector<BsPeer> targets_;  // [0] = primary, rest = failover replicas
  usize current_target_ = 0;
  std::function<void()> pump_;
  RetryPolicy policy_;
  Rng rng_{0xC11E47ull};  // jitter; fixed seed keeps runs replayable
  Fd sock_ = kInvalidFd;
  u64 next_req_id_ = 1;

  // Metrics ("bsc<N>/..."): per-core counters plus a span per rpc and a
  // histogram of pump polls per rpc (the simulation's latency unit, so the
  // distribution replays bit-identically from a seed).
  const std::string obs_prefix_;
  Counter& c_attempts_;
  Counter& c_retries_;
  Counter& c_backoff_polls_;
  Counter& c_failovers_;
  Counter& c_transient_errors_;
  Counter& c_send_errors_;
  Histogram& h_rpc_polls_;
  const u32 span_rpc_;
};

}  // namespace vnros

#endif  // VNROS_SRC_APP_BLOCKSTORE_H_
