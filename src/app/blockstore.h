// The verified client application: a data-storage node of a distributed
// block store (§1: "consider the data-storage node in a distributed block
// store like GFS or S3 ... Amazon even describes their use of lightweight
// formal methods to verify such a storage node").
//
// The node is written entirely against the Sys syscall facade — the client
// application contract of §3. It never touches kernel internals: blocks are
// files (create/write/fsync/read/unlink), the wire is UDP sockets, and
// durability comes from fsync before acknowledging. That is the paper's
// whole point: with the OS contract verified below and this logic verified
// above, the stack composes.
//
// Abstract spec (checked by app/* VCs): the node refines the map
// key -> bytes with operations
//   put(k, v):  ack  =>  get(k) returns exactly v until overwritten/deleted,
//               and v survives a crash (fsync-before-ack);
//   get(k):     returns the last acknowledged put, kNotFound if none,
//               kCorrupted (never garbage) if storage bits rotted;
//   del(k):     ack  =>  get(k) returns kNotFound.
//
// Replication: a put to the primary is forwarded to its peers (best-effort
// push in the static-peer configuration; acked pushes to the ring owner set
// with hinted handoff in cluster mode — see ClusterView below).
#ifndef VNROS_SRC_APP_BLOCKSTORE_H_
#define VNROS_SRC_APP_BLOCKSTORE_H_

#include <functional>
#include <map>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "src/app/ring.h"
#include "src/base/fault.h"
#include "src/base/result.h"
#include "src/base/rng.h"
#include "src/kernel/syscall.h"
#include "src/obs/registry.h"

namespace vnros {

// Wire protocol opcodes.
enum class BsOp : u8 {
  kPut = 1,
  kGet = 2,
  kDel = 3,  // sequenced: carries the client's write-sequence stamp
  kPing = 4,
  kPutReplica = 5,   // replication push: applied locally, never re-forwarded
  kList = 6,         // anti-entropy: enumerate (key, crc, seq, tombstone)
  kDelReplica = 7,   // replicated (sequenced) delete: tombstone apply-if-newer
  kGetBlock = 8,     // repair fetch: raw block (tombstone flag + seq + bytes)
  kMerkleNode = 9,   // anti-entropy: one Merkle node's hash + child hashes
  kMerkleLeaf = 10,  // anti-entropy: one Merkle leaf bucket's (key, seq, flag)s
  kTombstoneGc = 11, // tombstone GC: drop your tombstone for key if seq <= S
};

// Which wire the client-facing RPC plane rides. kDatagram is the original
// UDP request/reply transport: every loss is the application's problem, paid
// for with client timeout/retry windows. kVtp moves the client-facing plane
// onto VTP stream connections: the transport retransmits at its own (much
// tighter) RTO, requests/replies are length-framed on the byte stream, and
// the node serves connections through ring-parked accept/recv SQEs. The
// node-to-node plane (replication pushes, repair fetches, anti-entropy)
// stays on datagrams in both modes.
enum class BsTransport : u8 {
  kDatagram = 0,
  kVtp = 1,
};

// One entry of a kList reply / local inventory: enough to detect a missing
// or divergent block without shipping its bytes. Tombstones (sequenced
// deletes) are first-class entries so divergence over deletion is visible.
struct BlockKeyInfo {
  std::string key;
  u32 crc = 0;  // crc32c of the payload bytes (crc of "" for tombstones)
  u64 seq = 0;  // write sequence of the local copy
  bool tombstone = false;

  bool operator==(const BlockKeyInfo&) const = default;
};

struct BsPeer {
  NetAddr addr = 0;
  Port port = 0;

  bool operator==(const BsPeer&) const = default;
};

// Shared cluster belief: the placement ring plus the directory mapping each
// member to its wire endpoint. Every node and every client holds a copy;
// the app/placement_refines VC and the chaos churn schedules check that all
// copies agree (ring version + fingerprint) at every quiesce point.
struct ClusterView {
  PlacementRing ring;
  std::map<BsNodeId, BsPeer> directory;
  usize replication = 2;  // owners per key (capped by cluster size)

  std::vector<BsNodeId> owners(std::string_view key) const {
    return ring.owners(key, replication);
  }
};

// Per-node cluster parameters (fixed at configure_cluster time).
struct ClusterConfig {
  BsNodeId self = 0;
  // Total pump-poll budget awaiting each replica ack. Replies arrive as ring
  // completions (the repair socket keeps one recv SQE parked in the kernel),
  // so this is a deadline, not a spin count: the push is re-sent once at
  // half the deadline and abandoned (hinted) when the budget runs out.
  usize ack_deadline_polls = 192;
  // Hinted-handoff bound: at most this many hints parked per unreachable
  // peer. Past the cap the lowest-sequence (oldest) hint for that peer is
  // dropped (counted in hints_dropped) — anti-entropy remains the backstop
  // for whatever a dropped hint would have carried.
  usize max_hints_per_peer = 64;
};

// Admission control: a token bucket over served storage ops. Tokens are in
// millionths of an op so sub-op/tick refill rates are expressible; the
// *clock* is external — the harness (or a deployment's timer) calls
// grant_tokens() per tick, keeping the node itself free of wall-clock
// dependencies and every overload schedule replayable.
struct AdmissionConfig {
  bool enabled = false;
  u64 burst_ops = 4;  // bucket capacity, in whole ops
};

// Outcome of one rebalance() pass (shard movement after a view change).
struct RebalanceStats {
  u64 scanned = 0;  // intact local blocks examined
  u64 moved = 0;    // acked handoffs to new owners
  u64 dropped = 0;  // local copies released (no longer an owner, ack held)
  u64 hinted = 0;   // unreachable new owner: durable hint written instead
  u64 failed = 0;   // no new owner acked AND we are not an owner: kept local,
                    // flagged so graceful leave can abort instead of losing data
};

// Snapshot of a node's obs counters (see stats()).
struct BlockStoreStats {
  u64 puts = 0;
  u64 gets = 0;
  u64 dels = 0;
  u64 corrupt_reads = 0;
  u64 replicas_pushed = 0;
  u64 replicas_applied = 0;
  u64 read_repairs = 0;        // corrupt blocks restored from a peer
  u64 failed_repairs = 0;      // corrupt blocks no peer could supply
  u64 sheds = 0;               // requests refused with kOverloaded
  u64 hints_written = 0;       // handoffs parked for a partitioned owner
  u64 hints_delivered = 0;     // parked handoffs later delivered + acked
  u64 hints_dropped = 0;       // hints evicted by the per-peer cap
  u64 handoffs = 0;            // blocks moved to a new owner by rebalance()
  u64 stale_ignored = 0;       // replica writes refused: local copy was newer
  u64 tombstones_written = 0;  // sequenced deletes persisted locally
  u64 tombstones_gced = 0;     // tombstones reclaimed after shard-wide acks
};

class BlockStoreNode {
 public:
  // `sys` is this node's (process's) view of its OS. The node binds `port`.
  // `pump` (optional) advances the simulated world; when set and peers are
  // configured, a kCorrupted local read triggers read-repair: the block is
  // fetched from a peer, re-persisted locally, and served instead of the
  // corruption error. `fault_prefix` (optional) registers a
  // "<prefix>/serve_delay" latency injection site: when armed with a
  // FaultSpec whose delay is nonzero, serve_once() stalls for that many
  // calls before touching its socket — a deterministic slow peer.
  // `transport` selects the client-facing RPC plane (see BsTransport).
  BlockStoreNode(Sys& sys, Port port, std::vector<BsPeer> peers = {},
                 std::function<void()> pump = {}, std::string fault_prefix = {},
                 BsTransport transport = BsTransport::kDatagram);

  // Creates /blocks (and /hints) and binds the service socket. Idempotent
  // across restarts of the same filesystem (recovery path).
  Result<Unit> init();

  // Switches the node to cluster mode: placement and replication follow
  // `view`'s ring instead of the static peer list. Call again after a
  // reboot to restore the node's belief about the cluster.
  void configure_cluster(const ClusterConfig& cfg, const ClusterView& view);

  // Adopts `next` and moves shards: every intact local block whose owner set
  // changed is pushed (acked, carrying its write sequence) to its new owners;
  // unreachable owners get a durable hint; blocks this node no longer owns
  // are released only once at least one new owner acked. An ack means "I
  // durably hold this key at a sequence >= yours" (stale pushes are refused
  // but still acked), so dropping after an ack can never lose the newest
  // write. Safe to call on every member after any membership change — a node
  // whose placement is unaffected does no work.
  Result<RebalanceStats> rebalance(const ClusterView& next);

  // Adopts a view without moving data (reboot/recovery path).
  void set_cluster_view(const ClusterView& view);

  // Attempts delivery of parked handoffs (hinted handoff). For each hint:
  // stale owners (gone from the view) are dropped; reachable owners receive
  // the hinted bytes with their original write sequence — the owner applies
  // only if the hint is at least as new as its own copy (a hint can never
  // regress a newer value) and acks either way. The hint is unlinked only
  // after that ack. Returns hints delivered (applied) this pass.
  u64 deliver_hints();

  bool clustered() const { return clustered_; }
  BsNodeId self_id() const { return cluster_.self; }
  const ClusterView& cluster_view() const { return view_; }
  u64 ring_version() const { return view_.ring.version(); }
  u64 ring_fingerprint() const { return view_.ring.fingerprint(); }

  // Admission control. grant_tokens() is the external clock: adds
  // `ops_ppm` millionths of an op to the bucket (capped at burst_ops).
  void set_admission(const AdmissionConfig& cfg) { admission_ = cfg; }
  void grant_tokens(u64 ops_ppm);

  // Drains the serve ring once: reaps every completed receive (a fixed pool
  // of kServeWorkers recv SQEs parked in the kernel), processes each request,
  // submits the replies back through the ring, and re-arms the pool. Returns
  // whether at least one request was served. The name and call discipline are
  // unchanged from the synchronous era — harness loops still call it per
  // tick — but a single call now serves up to a whole batch.
  bool serve_once();

  // Local storage operations (also reachable via the wire).
  Result<Unit> put(std::string_view key, std::span<const u8> value);
  Result<std::vector<u8>> get(std::string_view key) const;
  Result<Unit> del(std::string_view key);

  // Apply-if-newer ingress for repair/anti-entropy: persists (value, seq) —
  // or a tombstone at seq when `tombstone` — unless the local intact copy is
  // strictly newer. `applied` (optional) reports whether the bytes landed.
  // This is the only sanctioned way for an external repair driver to write
  // into a node: the sequence rides along, so repair can never resurrect a
  // value the cluster has already superseded.
  Result<Unit> apply_remote(std::string_view key, std::span<const u8> value, u64 seq,
                            bool tombstone, bool* applied = nullptr);

  // Bounded tombstone GC (cluster mode). For up to `max_batch` local
  // tombstones: every other cluster member must ack the tombstone's
  // sequence (the ack certifies "I durably hold this key at seq >= yours
  // AND hold no older parked hint for it" — the kDelReplica handler drops
  // matching hints before acking). Only then is the tombstone dropped,
  // cluster-wide (kTombstoneGc) then locally — so a lagging replica can
  // never resurrect the deleted key. Returns tombstones reclaimed.
  u64 gc_tombstones(usize max_batch = 32);

  // get(), but a kCorrupted local block is repaired from the peer list (if
  // any) before failing: fetch from a peer over the repair socket, verify,
  // re-persist locally, return the repaired bytes. This is what serve_once
  // uses for kGet, so clients never see corruption a peer can cure.
  Result<std::vector<u8>> get_or_repair(std::string_view key);

  // Abstract view: every live (key, bytes) currently stored and intact
  // (tombstones are deletion markers, not values — they are excluded).
  std::map<std::string, std::vector<u8>> view() const;

  // Anti-entropy inventory: (key, crc, seq, tombstone) for every intact
  // block, tombstones included — sync must see deletions to propagate them.
  std::vector<BlockKeyInfo> list() const;

  // Thin view over the obs counters ("bs<N>/..."): race-free merged reads.
  BlockStoreStats stats() const {
    return BlockStoreStats{c_puts_.value(),           c_gets_.value(),
                           c_dels_.value(),           c_corrupt_reads_.value(),
                           c_replicas_pushed_.value(), c_replicas_applied_.value(),
                           c_read_repairs_.value(),   c_failed_repairs_.value(),
                           c_sheds_.value(),          c_hints_written_.value(),
                           c_hints_delivered_.value(), c_hints_dropped_.value(),
                           c_handoffs_.value(),       c_stale_ignored_.value(),
                           c_tombstones_written_.value(), c_tombstones_gced_.value()};
  }
  Port port() const { return port_; }
  BsTransport transport() const { return transport_; }

  // Reads one of the kernel's contract counters (e.g. "fs/fsyncs") through
  // the kstat syscall — the §3 way for the application to introspect the OS.
  // The node never touches kernel internals, here or anywhere.
  Result<u64> kernel_stat(std::string_view name) const { return sys_.kstat(name); }

  // Path of the file backing `key` ("/blocks/<hex>"): public so tests can
  // inject storage corruption at the right place.
  static std::string key_path(std::string_view key);

 private:
  // One fetched/decoded block: payload bytes plus the write sequence stamped
  // by the client (or assigned locally) when the bytes were stored.
  struct BlockData {
    std::vector<u8> bytes;
    u64 seq = 0;
  };

  Result<Unit> put_local(std::string_view key, std::span<const u8> value, u64 seq,
                         bool tombstone);
  // The coordinator write path with an explicit sequence (serve_once passes
  // the client's stamp; the seq-less public put() assigns local_seq + 1).
  Result<Unit> put_stamped(std::string_view key, std::span<const u8> value, u64 seq);
  // The coordinator delete path: a sequenced tombstone write (apply-if-newer
  // like every other write), replicated with acked pushes + hints like a put.
  Result<Unit> del_stamped(std::string_view key, u64 seq);
  // Apply-if-newer: persists (value, seq) — or a tombstone — unless the
  // local intact copy has a strictly newer sequence, in which case the write
  // is refused as stale but still reported kOk (the caller's bytes are
  // durably superseded). Sets `applied` so callers can count real applies
  // apart from stale refusals.
  Result<Unit> apply_replica(std::string_view key, std::span<const u8> value, u64 seq,
                             bool tombstone, bool* applied);
  // Sequence of the local intact copy (live or tombstone); 0 when missing or
  // corrupt (so any incoming write, including a re-pushed seq-0 legacy
  // block, may land).
  u64 local_seq(std::string_view key) const;
  void push_replicas(std::string_view key, std::span<const u8> value, u64 seq);
  Result<BlockData> fetch_from_peer(const BsPeer& peer, std::string_view key);
  Result<BlockData> get_or_repair_block(std::string_view key);

  // Cluster-mode plumbing.
  void replicate_put(std::string_view key, std::span<const u8> value, u64 seq);
  void replicate_del(std::string_view key, u64 seq);
  // Sends `op` to `peer` over the repair socket and awaits the ack as a ring
  // completion, pumping up to cluster_.ack_deadline_polls polls (one re-send
  // at half the deadline).
  Result<Unit> push_acked(const BsPeer& peer, BsOp op, std::string_view key,
                          std::span<const u8> value, u64 seq);
  Result<Unit> write_hint(BsNodeId owner, std::string_view key, std::span<const u8> value,
                          u64 seq, bool tombstone);
  // "/hints/<owner>_<hexkey>" for this (owner, key) pair.
  std::string hint_path(BsNodeId owner, std::string_view key) const;
  // Drops every parked hint for `key` (any owner) whose sequence is <= seq:
  // the tombstone GC barrier — an ack of a tombstone must also certify no
  // older hint for the key survives on the acking node.
  void drop_stale_hints(std::string_view key, u64 seq);
  // Per-peer hint bound: evicts the lowest-sequence hint for `owner` when
  // the cap is reached. Returns false when the incoming hint (at `seq`) is
  // itself the oldest and should be dropped instead of written.
  bool reserve_hint_slot(BsNodeId owner, std::string_view key, u64 seq);
  // Replica peers consulted by get_or_repair: the key's other ring owners
  // in cluster mode, the static peer list otherwise.
  std::vector<BsPeer> repair_peers(std::string_view key) const;
  // Admission gate for one served op: true = admitted (a token was taken),
  // false = shed. Always admits when admission is disabled.
  bool admit_op();

  // --- Serve/repair rings (async syscall path) ------------------------------
  // Lazily creates the serve ring and keeps kServeWorkers recv SQEs parked
  // on the service socket. False when the kernel refuses (ring exhausted).
  bool ensure_serve_ring();
  // Handles one received request datagram (the old serve_once body below the
  // recvfrom). Replies go back through the serve ring tagged kReplyTag.
  void process_request(NetAddr src, Port src_port, std::span<const u8> payload);
  // The transport-independent request core: decodes one request payload,
  // executes it, and returns the reply bytes — or nullopt when the request
  // warrants no reply (malformed, or an unacked replica push).
  std::optional<std::vector<u8>> handle_request(std::span<const u8> payload);

  // --- VTP stream serve plane (transport == kVtp) ----------------------------
  // One accepted client connection: inbuf reassembles [u32 len][body] frames
  // off the byte stream; outbuf holds reply bytes the transport has not yet
  // accepted (flushed every drain, closed past kVtpOutbufMax — slow consumer).
  struct VtpServeConn {
    Fd fd = kInvalidFd;
    std::vector<u8> inbuf;
    std::vector<u8> outbuf;
    bool recv_armed = false;
  };
  // Keeps the VTP listener up, one accept SQE parked (kAcceptTag), and one
  // recv SQE parked per accepted connection (kVtpConnTag | slot).
  void ensure_vtp_serve();
  // Consumes newly received stream bytes for `slot`: reassembles frames,
  // runs handle_request on each, frames the replies into outbuf, flushes.
  usize on_vtp_bytes(u64 slot, std::span<const u8> bytes);
  void vtp_flush(VtpServeConn& conn);
  void close_vtp_conn(u64 slot);
  // Awaits one repair-socket reply whose leading req_id matches: keeps a
  // single recv SQE parked on repair_sock_ (via the repair ring), pumping up
  // to `polls` times. Returns the whole matched reply payload (req_id word
  // included); kTimedOut when the budget runs out. Stale replies from
  // earlier timed-out RPCs on this socket are consumed and dropped.
  Result<std::vector<u8>> await_repair_reply(u64 req_id, usize polls);

  Sys& sys_;
  Port port_;
  std::vector<BsPeer> peers_;
  std::function<void()> pump_;
  Fd sock_ = kInvalidFd;
  Fd repair_sock_ = kInvalidFd;  // dedicated socket: repair RPCs never steal
                                 // datagrams destined for the service socket
  bool in_repair_ = false;       // re-entrancy guard (pump may recurse into us)
  u64 next_repair_req_id_ = 1;

  // Serve worker pool: a ring with a fixed complement of parked receives.
  static constexpr usize kServeWorkers = 4;
  static constexpr u64 kReplyTag = 1ull << 63;  // user_data bit: reply sendto CQE
  static constexpr u64 kAcceptTag = 1ull << 62;    // the parked VTP accept SQE
  static constexpr u64 kVtpConnTag = 1ull << 61;   // VTP recv CQE; low bits = slot
  static constexpr usize kVtpRecvChunk = 32 * 1024;  // per-recv byte bound
  static constexpr usize kVtpOutbufMax = 1 << 20;    // slow-consumer close bound
  // Accept-queue + in-progress-handshake bound. Accepts drain one per serve
  // pass, so the backlog must absorb a whole client fleet connecting at once
  // (handshakes complete and requests buffer while the conn awaits accept).
  static constexpr usize kVtpBacklog = 2048;
  u32 serve_ring_ = 0;        // 0 = not yet set up
  usize serve_recvs_ = 0;     // recv SQEs currently parked (<= kServeWorkers)
  u64 next_reply_ud_ = 0;     // user_data minting for reply submissions
  u32 repair_ring_ = 0;       // dedicated ring for repair/ack RPC replies
  bool repair_recv_armed_ = false;  // one recv SQE parked on repair_sock_

  BsTransport transport_ = BsTransport::kDatagram;
  Fd vtp_listener_ = kInvalidFd;
  bool accept_armed_ = false;          // one accept SQE parked on the listener
  std::map<u64, VtpServeConn> vtp_conns_;  // slot -> accepted connection
  u64 next_vtp_slot_ = 0;

  bool clustered_ = false;
  ClusterConfig cluster_;
  ClusterView view_;
  AdmissionConfig admission_;
  u64 tokens_ppm_ = 0;   // admission bucket (millionths of an op)
  u64 stall_polls_ = 0;  // serve_once calls left to sit out (latency fault)
  FaultSite* delay_site_ = nullptr;

  // Metrics ("bs<N>/..."): registry-owned per-core counters — mutable from
  // const readers (get() counts), race-free for concurrent observers.
  const std::string obs_prefix_;
  Counter& c_puts_;
  Counter& c_gets_;
  Counter& c_dels_;
  Counter& c_corrupt_reads_;
  Counter& c_replicas_pushed_;
  Counter& c_replicas_applied_;
  Counter& c_read_repairs_;
  Counter& c_failed_repairs_;
  Counter& c_sheds_;
  Counter& c_hints_written_;
  Counter& c_hints_delivered_;
  Counter& c_hints_dropped_;
  Counter& c_handoffs_;
  Counter& c_stale_ignored_;
  Counter& c_tombstones_written_;
  Counter& c_tombstones_gced_;
  Histogram& h_serve_busy_;  // request CQEs reaped per serve_once drain:
                             // worker-pool occupancy (0..kServeWorkers)
  const u32 span_serve_;
};

// Client retry behaviour. All waiting is measured in pump polls — the
// simulation's stand-in for wall-clock time — so schedules replay
// deterministically from a seed.
struct RetryPolicy {
  usize max_attempts = 16;       // sends per rpc (across all targets)
  usize polls_per_attempt = 64;  // pump polls awaiting each reply
  u64 backoff_base_polls = 0;    // idle polls before retry 1; doubles per retry
  u64 backoff_max_polls = 0;     // exponential backoff cap (0 = uncapped)
  u64 jitter_ppm = 0;            // additive jitter: up to this fraction of the backoff
  u64 deadline_polls = 0;        // total poll budget per rpc (0 = unlimited).
                                 // Backoffs are clamped to the remaining budget
                                 // (reserving one attempt window), so the rpc
                                 // never sleeps a full backoff past its deadline.
  // kOverloaded backpressure: the server is alive and explicitly shedding,
  // so do NOT fail over — wait (multiplicatively growing, jittered like the
  // timeout backoff) and retry the same target.
  u64 overload_base_polls = 8;
  u64 overload_max_polls = 256;
};

// Visible retry behaviour, for tests and for kDebug logging: how hard did
// the client have to work to get an answer? Snapshot of the client's obs
// counters (see retry_stats()).
struct RetryStats {
  u64 attempts = 0;          // request datagrams sent
  u64 retries = 0;           // attempts beyond the first, per rpc
  u64 backoff_polls = 0;     // pump polls spent idling in backoff
  u64 failovers = 0;         // switches to a different target
  u64 transient_errors = 0;  // kIoError/kNoMemory/kBusy replies absorbed by retry
  u64 send_errors = 0;       // local sendto failures absorbed by retry
  u64 overloads = 0;         // kOverloaded replies absorbed by backpressure
  u64 sticky_resumes = 0;    // rpcs that resumed on the last known-live target
                             // instead of re-probing a dead rotation residue
};

// Client library: request/response over UDP with timeout + retry (the
// fabric may drop datagrams; operations are idempotent, so at-least-once
// retries preserve the abstract map semantics). Transient server errors
// (fault-injected kIoError/kNoMemory, kBusy) are retried with exponential
// backoff + jitter; when failover targets are configured, timeouts and
// transient errors rotate the client to the next replica.
class BlockStoreClient {
 public:
  // `pump` advances the simulated world (drives the server and the fabric)
  // between poll attempts — the simulation's stand-in for wall-clock time.
  // `transport` must match the servers': kVtp rpcs ride one stream
  // connection per target (lazily connected, reconnected after any terminal
  // connection error) with [u32 len][body] framing both ways.
  BlockStoreClient(Sys& sys, NetAddr server, Port server_port, std::function<void()> pump,
                   RetryPolicy policy = {}, BsTransport transport = BsTransport::kDatagram);

  Result<Unit> init();

  // Adds a replica the client may rotate to when the current target times
  // out or keeps returning transient errors.
  void add_failover(NetAddr addr, Port port);

  // Switches keyed ops (put/get/del) to ring routing: each rpc is sent to
  // the key's owner list (primary first), falling back to the static target
  // list when the view maps to nothing. Ping/list keep the static targets.
  void set_cluster(const ClusterView& view) { view_ = view; }

  Result<Unit> put(std::string_view key, std::span<const u8> value);
  Result<std::vector<u8>> get(std::string_view key);
  // get() plus the write sequence the serving replica stamped on the bytes —
  // the observable the linearizability checker orders reads by.
  Result<std::pair<std::vector<u8>, u64>> get_with_seq(std::string_view key);
  Result<Unit> del(std::string_view key);
  Result<Unit> ping();
  Result<std::vector<BlockKeyInfo>> list();

  // Full-inventory anti-entropy repair (the baseline the Merkle scheduler in
  // src/app/anti_entropy.h is ablated against): ships the complete remote
  // inventory, then pulls every entry — tombstones included — that is newer
  // than `target`'s copy, writing it into `target` at its original sequence.
  // Returns blocks repaired.
  Result<u64> sync_into(BlockStoreNode& target);

  u64 retries() const { return c_retries_.value(); }

  // Stamp of the most recent put/del rpc (retries reuse it). The chaos
  // linearizability checker reads this right after each write op to learn
  // the sequence the op occupies in the per-key write order.
  u64 last_write_seq() const { return put_seq_; }

  // Thin view over the obs counters ("bsc<N>/..."): race-free merged reads.
  RetryStats retry_stats() const {
    return RetryStats{c_attempts_.value(),         c_retries_.value(),
                      c_backoff_polls_.value(),    c_failovers_.value(),
                      c_transient_errors_.value(), c_send_errors_.value(),
                      c_overloads_.value(),        c_sticky_resumes_.value()};
  }
  const RetryPolicy& policy() const { return policy_; }

  // The target the next rpc will be sent to (index 0 = the constructor's
  // server; failover targets follow in add_failover order).
  usize current_target() const { return current_target_; }

 private:
  static bool transient(ErrorCode err);

  // Sends `request` until a reply with its req_id arrives; returns payload.
  // `seq_out` (optional) receives the reply's trailing write sequence
  // (meaningful for kGet: the serving replica's stamp on the bytes).
  Result<std::vector<u8>> rpc(BsOp op, std::string_view key, std::span<const u8> value,
                              u64* seq_out = nullptr);

  // One VTP stream to a server (transport == kVtp): the connection plus the
  // reassembly buffer for reply frames that arrived on it.
  struct VtpChan {
    Fd fd = kInvalidFd;
    std::vector<u8> inbuf;
  };
  // The channel to `peer`, connecting on first use. nullptr when connect
  // fails (the attempt machinery treats that as a send error and retries).
  VtpChan* vtp_chan(const BsPeer& peer);
  void drop_vtp_chan(const BsPeer& peer);

  Sys& sys_;
  std::vector<BsPeer> targets_;  // [0] = primary, rest = failover replicas
  usize current_target_ = 0;
  bool have_last_good_ = false;  // stickiness: resume rpcs on the last target
  usize last_good_target_ = 0;   // that actually answered (static routing only)
  std::optional<ClusterView> view_;  // set_cluster: ring routing for keyed ops
  std::function<void()> pump_;
  RetryPolicy policy_;
  Rng rng_{0xC11E47ull};  // jitter; fixed seed keeps runs replayable
  Fd sock_ = kInvalidFd;
  u32 ring_ = 0;             // reply ring: one recv SQE parked on sock_
  bool recv_armed_ = false;  // armed only after the first send binds sock_
  BsTransport transport_ = BsTransport::kDatagram;
  std::map<std::pair<NetAddr, Port>, VtpChan> chans_;  // kVtp: conn per target
  std::pair<NetAddr, Port> armed_chan_{};  // target the parked vtp recv is on
  u64 next_req_id_ = 1;
  u64 put_seq_ = 0;  // write-sequence stamp: orders this client's puts per key
                     // across replicas (apply-if-newer on every server path)

  // Metrics ("bsc<N>/..."): per-core counters plus a span per rpc and a
  // histogram of pump polls per rpc (the simulation's latency unit, so the
  // distribution replays bit-identically from a seed).
  const std::string obs_prefix_;
  Counter& c_attempts_;
  Counter& c_retries_;
  Counter& c_backoff_polls_;
  Counter& c_failovers_;
  Counter& c_transient_errors_;
  Counter& c_send_errors_;
  Counter& c_overloads_;
  Counter& c_sticky_resumes_;
  Histogram& h_rpc_polls_;
  const u32 span_rpc_;
};

}  // namespace vnros

#endif  // VNROS_SRC_APP_BLOCKSTORE_H_
