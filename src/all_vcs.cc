// The whole-system verification project: every module's verification
// conditions in one registry. bench/fig1a_vc_cdf runs this universe and
// prints the timing CDF; the Table 1/2 reports derive vnros' coverage from
// which categories pass.
#include "src/app/vcs.h"
#include "src/hw/vcs.h"
#include "src/kernel/vcs.h"
#include "src/net/vcs.h"
#include "src/nr/vcs.h"
#include "src/obs/vcs.h"
#include "src/pt/vcs.h"
#include "src/spec/self_vcs.h"
#include "src/spec/vc.h"
#include "src/ulib/vcs.h"

namespace vnros {

void register_all_vcs(VcRegistry& registry) {
  register_spec_vcs(registry);
  register_obs_vcs(registry);
  register_hw_vcs(registry);
  register_nr_vcs(registry);
  register_pt_vcs(registry);
  register_kernel_vcs(registry);
  register_net_vcs(registry);
  register_vtp_vcs(registry);
  register_ulib_vcs(registry);
  register_app_vcs(registry);
}

}  // namespace vnros
