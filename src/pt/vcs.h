// Registration hook for the page-table verification conditions.
#ifndef VNROS_SRC_PT_VCS_H_
#define VNROS_SRC_PT_VCS_H_

#include "src/spec/vc.h"

namespace vnros {

// Registers the pt/* verification conditions: refinement of the high-level
// spec, agreement with the MMU hardware spec, structural invariants,
// allocator balance, rollback atomicity, TLB-shootdown necessity and the
// differential check against the unverified implementation.
void register_pt_vcs(VcRegistry& registry);

}  // namespace vnros

#endif  // VNROS_SRC_PT_VCS_H_
