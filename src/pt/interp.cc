#include "src/pt/interp.h"

#include "src/hw/mmu.h"

namespace vnros {
namespace {

Perms perms_of(u64 entry) {
  return Perms{
      .writable = (entry & kPteWritable) != 0,
      .user = (entry & kPteUser) != 0,
      .executable = (entry & kPteNoExecute) == 0,
  };
}

void interp_table(const PhysMem& mem, PAddr table, int level, u64 vbase_prefix, AbsMap& out) {
  for (u64 i = 0; i < kPtEntries; ++i) {
    if (!mem.contains(table.offset(i * 8), 8)) {
      continue;  // truncated table: hardware would fault; interpret as holes
    }
    u64 entry = mem.read_u64(table.offset(i * 8));
    if ((entry & kPtePresent) == 0) {
      continue;
    }
    const u64 shift = 12 + 9 * static_cast<u64>(level - 1);
    const u64 vbase = vbase_prefix | (i << shift);
    const bool is_leaf = (level == 1) || (entry & kPtePageSize) != 0;
    if (is_leaf) {
      if (level == 4) {
        continue;  // PS at PML4 is reserved; hardware faults, spec: no mapping
      }
      const u64 size = level == 3 ? kHugePageSize : (level == 2 ? kLargePageSize : kPageSize);
      PAddr frame{entry & kPteAddrMask & ~(size - 1)};
      out[vbase] = AbsPte{frame, size, perms_of(entry)};
    } else {
      PAddr child{entry & kPteAddrMask};
      if (mem.contains(child, kPageSize)) {
        interp_table(mem, child, level - 1, vbase, out);
      }
    }
  }
}

}  // namespace

AbsMap interpret_page_table(const PhysMem& mem, PAddr cr3) {
  AbsMap out;
  interp_table(mem, cr3, 4, 0, out);
  return out;
}

}  // namespace vnros
