// The unverified baseline page table — the stand-in for NrOS' original
// (unverified Rust) implementation that Figure 1b/c compares against.
//
// Independently written (recursive where PageTable is iterative, no
// contracts, no ghost accounting), but implementing the same x86-64 entry
// encodings over the same PhysMem. The fig1b/fig1c benches run both under
// identical NR workloads; differential tests (tests/pt_differential_test.cc)
// additionally use it as a cross-check oracle for the verified one.
#ifndef VNROS_SRC_PT_UNVERIFIED_H_
#define VNROS_SRC_PT_UNVERIFIED_H_

#include <span>

#include "src/base/result.h"
#include "src/base/types.h"
#include "src/hw/phys_mem.h"
#include "src/pt/abs_pte.h"
#include "src/pt/frame_source.h"
#include "src/pt/page_table.h"

namespace vnros {

class UnverifiedPageTable {
 public:
  static Result<UnverifiedPageTable> create(PhysMem& mem, FrameSource& frames);

  Result<Unit> map_frame(VAddr vbase, PAddr frame, u64 size, Perms perms);
  Result<Unit> unmap(VAddr vbase);
  Result<ResolveOk> resolve(VAddr va) const;

  // Range operations with the same atomic contract as PageTable's (either
  // the whole 4 KiB-page range takes effect or none of it), written the
  // straightforward way: pre-check, per-page apply, rollback on failure.
  Result<Unit> map_range(VAddr vbase, PAddr frame_base, u64 num_pages, Perms perms);
  Result<Unit> map_range(VAddr vbase, std::span<const PAddr> frames, Perms perms);
  Result<Unit> unmap_range(VAddr vbase, u64 num_pages);

  PAddr root() const { return cr3_; }

 private:
  UnverifiedPageTable(PhysMem& mem, FrameSource& frames, PAddr cr3)
      : mem_(&mem), frames_(&frames), cr3_(cr3) {}

  Result<Unit> map_rec(PAddr table, int level, VAddr vbase, PAddr frame, int leaf_level,
                       u64 flags);
  // Returns: kOk and sets `now_empty` if the subtree entry was removed.
  Result<Unit> unmap_rec(PAddr table, int level, VAddr vbase, bool& now_empty);

  // True iff `va` is the base of a present 4 KiB leaf (not covered by a
  // 2M/1G mapping).
  bool leaf4k_present(VAddr va) const;
  template <typename FrameOf>
  Result<Unit> map_range_impl(VAddr vbase, u64 num_pages, FrameOf&& frame_of, Perms perms);

  PhysMem* mem_;
  FrameSource* frames_;
  PAddr cr3_;
};

}  // namespace vnros

#endif  // VNROS_SRC_PT_UNVERIFIED_H_
