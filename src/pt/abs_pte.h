// Abstract page-table entries and mapping permissions.
//
// The high-level spec (§5) "describes the page table as a mathematical map
// from virtual addresses to page table entries storing the physical address
// and permission bits". AbsPte is that entry: no bit encodings, no tree
// structure — just where a region maps and with which rights.
#ifndef VNROS_SRC_PT_ABS_PTE_H_
#define VNROS_SRC_PT_ABS_PTE_H_

#include <compare>

#include "src/base/types.h"

namespace vnros {

// Mapping permissions, as a user process reasons about them.
struct Perms {
  bool writable = false;
  bool user = true;
  bool executable = false;

  auto operator<=>(const Perms&) const = default;

  static Perms rw() { return Perms{true, true, false}; }
  static Perms ro() { return Perms{false, true, false}; }
  static Perms rx() { return Perms{false, true, true}; }
  static Perms rwx() { return Perms{true, true, true}; }
  static Perms kernel_rw() { return Perms{true, false, false}; }
};

// One abstract mapping: `size` bytes at some virtual base translate to the
// physical frame starting at `frame`.
struct AbsPte {
  PAddr frame;
  u64 size = kPageSize;  // 4 KiB, 2 MiB or 1 GiB
  Perms perms;

  auto operator<=>(const AbsPte&) const = default;
};

// Valid mapping sizes for x86-64 4-level paging.
constexpr bool is_valid_page_size(u64 size) {
  return size == kPageSize || size == kLargePageSize || size == kHugePageSize;
}

}  // namespace vnros

#endif  // VNROS_SRC_PT_ABS_PTE_H_
