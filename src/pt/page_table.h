// The verified x86-64 page-table implementation (§5, implementation (3) in
// Figure 2).
//
// "We implement executable, concrete functions ... for the map, unmap and
// resolve operations. Those functions read and write memory locations of the
// page table to perform mapping or unmapping of frames, as well as allocate
// or free memory used to store the page table."
//
// The tree lives entirely inside simulated PhysMem as raw 64-bit x86-64
// entries; the only state PageTable itself holds is the root (CR3) and a
// reference to the frame allocator. Correctness statement (discharged by the
// pt/* verification conditions):
//
//   interpret_page_table(mem, cr3)  evolves per  PtHighLevelSpec
//
// and, against the hardware spec:  for every VAddr, Mmu::translate agrees
// with the abstract map (pt/mmu_agrees VC).
//
// Structural invariants maintained (and checked by check_invariants()):
//   I1: every intermediate table is reachable from CR3 exactly once;
//   I2: no intermediate table is empty (unmap frees emptied tables);
//   I3: intermediate entries carry permissive flags (P|RW|US), so leaf bits
//       alone determine effective permissions;
//   I4: all table frames lie within physical memory and are page-aligned.
#ifndef VNROS_SRC_PT_PAGE_TABLE_H_
#define VNROS_SRC_PT_PAGE_TABLE_H_

#include <span>

#include "src/base/result.h"
#include "src/base/types.h"
#include "src/hw/mmu.h"
#include "src/hw/phys_mem.h"
#include "src/pt/abs_pte.h"
#include "src/pt/frame_source.h"

namespace vnros {

// Result of resolve(): where the address translates and with which rights.
struct ResolveOk {
  PAddr paddr;
  Perms perms;

  bool operator==(const ResolveOk&) const = default;
};

class PageTable {
 public:
  // Allocates the (zeroed) root table from `frames`.
  static Result<PageTable> create(PhysMem& mem, FrameSource& frames);

  // Maps `size` bytes at `vbase` to the physical region starting at `frame`.
  // Errors: kInvalidArgument (malformed args), kAlreadyMapped (overlap),
  // kNoMemory (directory allocation failed; no partial effect).
  Result<Unit> map_frame(VAddr vbase, PAddr frame, u64 size, Perms perms);

  // Removes the mapping whose base is exactly `vbase` (any size). Frees
  // directory tables that become empty. Error: kNotMapped.
  Result<Unit> unmap(VAddr vbase);

  // Range operations: one call maps/unmaps `num_pages` consecutive 4 KiB
  // pages. Semantically each is the composition of the per-page single
  // transitions (see PtHighLevelSpec::MapRangeLabel), but *atomic*: any
  // failure (kInvalidArgument, kAlreadyMapped, kNoMemory) leaves the tree
  // exactly as it was — no half-applied region is ever observable.
  //
  // The implementation reuses the last-touched directory chain
  // (PML4E/PDPTE/PDE) across consecutive pages — a "walk cache" — so pages
  // after the first within a 2 MiB-aligned chunk cost one leaf store instead
  // of a fresh 4-level walk.

  // Maps `num_pages` pages at `vbase` to the contiguous physical region
  // starting at `frame_base`.
  Result<Unit> map_range(VAddr vbase, PAddr frame_base, u64 num_pages, Perms perms);

  // Maps page i at `vbase + i*4K` to `frames[i]` (arbitrary, per-page
  // frames — the shape VmManager's mmap path produces).
  Result<Unit> map_range(VAddr vbase, std::span<const PAddr> frames, Perms perms);

  // Unmaps `num_pages` pages starting at `vbase`. Succeeds iff *every* page
  // in the range is the base of a 4 KiB mapping; otherwise kNotMapped with
  // no effect. Frees directory tables that become empty.
  Result<Unit> unmap_range(VAddr vbase, u64 num_pages);

  // Translates `va` through the tree (software walk, not the MMU model).
  Result<ResolveOk> resolve(VAddr va) const;

  // Releases every mapping and directory frame. After this the table is
  // empty but still usable.
  void clear();

  PAddr root() const { return cr3_; }

  // Walks the whole tree checking structural invariants I1-I4; returns false
  // with no side effects on violation. Used by VCs after every op batch.
  bool check_invariants() const;

  // Number of directory frames currently allocated (root included).
  u64 table_frames() const { return table_frames_; }

 private:
  PageTable(PhysMem& mem, FrameSource& frames, PAddr cr3)
      : mem_(&mem), frames_(&frames), cr3_(cr3) {}

  // Level numbering: 4 = PML4, 3 = PDPT, 2 = PD, 1 = PT.
  static u64 level_shift(int level) { return 12 + 9 * (level - 1); }
  static u64 index_at(VAddr va, int level) { return (va.value >> level_shift(level)) & 0x1FF; }
  static int leaf_level_for(u64 size) {
    return size == kHugePageSize ? 3 : (size == kLargePageSize ? 2 : 1);
  }

  Result<Unit> map_impl(VAddr vbase, PAddr frame, u64 size, Perms perms);
  Result<Unit> unmap_impl(VAddr vbase);

  // Walk cache for range operations: the directory chain last descended.
  // `tag` is va >> 21 (all bits above the level-1 index), so a hit means the
  // cached level-1 table `pt` — and, for unmap, the recorded parent chain —
  // is the one covering va. Valid only within one range-op call: tables can
  // be freed between calls.
  struct WalkCache {
    static constexpr u64 kNoTag = ~u64{0};  // > any canonical va >> 21
    u64 tag = kNoTag;
    PAddr pt;             // level-1 table for the tagged 2 MiB chunk
    PAddr chain_table[3]; // tables at levels 4,3,2 (chain_table[0] = PML4)
    PAddr chain_entry[3]; // entry followed in each (addresses of PML4E/PDPTE/PDE)
  };

  // Descends to (creating directories as needed) the level-1 table covering
  // `va`, consulting/filling `cache`. Errors: kAlreadyMapped when a 2M/1G
  // leaf covers va, kNoMemory on allocation failure (own creations rolled
  // back).
  Result<PAddr> walk_to_pt_create(VAddr va, WalkCache& cache);

  // Like walk_to_pt_create but never allocates: kNotMapped when the chain is
  // absent or a larger leaf covers va. Records the parent chain in `cache`
  // for bottom-up freeing.
  Result<PAddr> walk_to_pt_find(VAddr va, WalkCache& cache) const;

  // Shared core of the two map_range overloads: `frame_of(i)` yields the
  // frame for page i. Defined in page_table.cc (both callers live there).
  template <typename FrameOf>
  Result<Unit> map_range_impl(VAddr vbase, u64 num_pages, FrameOf&& frame_of, Perms perms);

  // True iff the table at `table` has no present entries.
  bool table_is_empty(PAddr table) const;

  // Recursively frees a subtree of intermediate tables (leaves were already
  // checked absent by the caller, clear() passes free_leaves).
  void free_subtree(PAddr table, int level);

  PhysMem* mem_;
  FrameSource* frames_;
  PAddr cr3_;
  u64 table_frames_ = 1;
};

}  // namespace vnros

#endif  // VNROS_SRC_PT_PAGE_TABLE_H_
